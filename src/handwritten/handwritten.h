// Handwritten "expert" kernels — the baseline the paper compares libraries
// against, and the realization of the operators no library supports
// (hashing: hash join, hash-based grouped aggregation).
//
// These kernels are fused: selection emits its result in ONE kernel (atomic
// ticketing) instead of the library's transform + scan + gather pipeline;
// filter+aggregate queries run as a single pass; joins and grouping use
// open-addressing hash tables built and probed with device atomics.
#ifndef HANDWRITTEN_HANDWRITTEN_H_
#define HANDWRITTEN_HANDWRITTEN_H_

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "gpusim/algorithms.h"
#include "gpusim/atomic_ops.h"
#include "gpusim/kernel.h"
#include "gpusim/memory.h"

namespace handwritten {

/// The default stream used by handwritten kernels (CUDA profile).
inline gpusim::Stream& default_stream() {
  static gpusim::Stream* stream =
      new gpusim::Stream(gpusim::Device::Default(), gpusim::ApiProfile::Cuda());
  return *stream;
}

namespace detail {
inline size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Finalizer mixing for hash tables (Murmur3).
inline uint64_t MixHash(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Fused selection
// ---------------------------------------------------------------------------

/// Single-kernel selection: writes the row ids of all rows satisfying
/// pred(col[i]) into out_indices via an atomic ticket counter and returns the
/// match count. Result order is nondeterministic (a deliberate trade the
/// hand-tuned kernel makes that libraries cannot).
template <typename T, typename Pred>
size_t SelectIndices(gpusim::Stream& stream, const T* col, size_t n,
                     uint32_t* out_indices, Pred pred) {
  gpusim::DeviceArray<uint32_t> counter(1, stream.device());
  gpusim::MemsetDevice(stream, counter.data(), 0, sizeof(uint32_t));
  gpusim::KernelStats stats;
  stats.name = "hw::select_fused";
  stats.bytes_read = n * sizeof(T);
  stats.bytes_written = n * sizeof(uint32_t);  // upper bound
  uint32_t* c = counter.data();
  gpusim::ParallelFor(stream, n, stats, [=](size_t i) {
    if (pred(col[i])) {
      const uint32_t slot = gpusim::AtomicAdd(c, uint32_t{1});
      out_indices[slot] = static_cast<uint32_t>(i);
    }
  });
  uint32_t count = 0;
  gpusim::CopyDeviceToHost(stream, &count, counter.data(), sizeof(uint32_t));
  return count;
}

/// Single-pass fused filter + aggregate: sum of value(i) over rows where
/// pred(i), computed with per-block partials and a tree reduction (no
/// intermediate materialization at all). `bytes_per_row` should account for
/// every column the two callbacks read.
template <typename Acc, typename Pred, typename Value>
Acc FusedFilterSum(gpusim::Stream& stream, size_t n, Pred pred, Value value,
                   uint64_t bytes_per_row) {
  if (n == 0) return Acc{};
  gpusim::Device& device = stream.device();
  const size_t num_tiles = (n + gpusim::kTileSize - 1) / gpusim::kTileSize;
  gpusim::DeviceArray<Acc> partials(num_tiles, device);
  gpusim::KernelStats stats;
  stats.name = "hw::fused_filter_sum";
  stats.bytes_read = n * bytes_per_row;
  stats.bytes_written = num_tiles * sizeof(Acc);
  stats.ops = 2 * n;
  Acc* p = partials.data();
  gpusim::LaunchBlocks(stream, num_tiles, gpusim::kDefaultBlockSize, stats,
                       [=](const gpusim::BlockContext& ctx) {
                         const size_t begin = ctx.block_id * gpusim::kTileSize;
                         const size_t end =
                             std::min(begin + gpusim::kTileSize, n);
                         Acc acc{};
                         for (size_t i = begin; i < end; ++i) {
                           if (pred(i)) acc += value(i);
                         }
                         p[ctx.block_id] = acc;
                       });
  return gpusim::Reduce(stream, partials.data(), num_tiles, Acc{},
                        [](Acc a, Acc b) { return a + b; },
                        "hw::fused_filter_sum_final");
}

// ---------------------------------------------------------------------------
// Hash join (the primitive the paper found missing from every library)
// ---------------------------------------------------------------------------

/// Open-addressing hash table over device memory for a unique (PK) build
/// side. Key slots start at the empty sentinel (numeric_limits<K>::max());
/// keys must not equal the sentinel.
template <typename K>
class HashJoin {
 public:
  /// Builds the table from build_keys (one kernel, atomic CAS insertion).
  HashJoin(gpusim::Stream& stream, const K* build_keys, size_t n)
      : stream_(stream),
        capacity_(detail::NextPow2(n < 8 ? 16 : 2 * n)),
        keys_(capacity_, stream.device()),
        rows_(capacity_, stream.device()) {
    gpusim::Fill(stream, keys_.data(), capacity_, kEmpty);
    gpusim::KernelStats stats;
    stats.name = "hw::hash_build";
    stats.bytes_read = n * sizeof(K);
    stats.bytes_written = n * (sizeof(K) + sizeof(uint32_t));
    stats.ops = 2 * n;
    K* table_keys = keys_.data();
    uint32_t* table_rows = rows_.data();
    const size_t mask = capacity_ - 1;
    gpusim::ParallelFor(stream, n, stats, [=](size_t i) {
      const K key = build_keys[i];
      size_t slot = detail::MixHash(static_cast<uint64_t>(key)) & mask;
      while (true) {
        const K prev = gpusim::AtomicCas(&table_keys[slot], kEmpty, key);
        if (prev == kEmpty) {
          table_rows[slot] = static_cast<uint32_t>(i);
          return;
        }
        if (prev == key) return;  // duplicate PK: keep first
        slot = (slot + 1) & mask;
      }
    });
  }

  /// Probes with probe_keys; appends (build_row, probe_row) pairs for every
  /// match via an atomic ticket. out_* must have room for probe n entries
  /// (PK side is unique, so each probe row matches at most once). Returns
  /// the number of result pairs.
  size_t Probe(const K* probe_keys, size_t n, uint32_t* out_build_rows,
               uint32_t* out_probe_rows) const {
    gpusim::DeviceArray<uint32_t> counter(1, stream_.device());
    gpusim::MemsetDevice(stream_, counter.data(), 0, sizeof(uint32_t));
    gpusim::KernelStats stats;
    stats.name = "hw::hash_probe";
    stats.bytes_read = n * (sizeof(K) + sizeof(K) + sizeof(uint32_t));
    stats.bytes_written = n * 2 * sizeof(uint32_t);
    stats.ops = 3 * n;
    const K* table_keys = keys_.data();
    const uint32_t* table_rows = rows_.data();
    const size_t mask = capacity_ - 1;
    uint32_t* c = counter.data();
    gpusim::ParallelFor(stream_, n, stats, [=](size_t i) {
      const K key = probe_keys[i];
      size_t slot = detail::MixHash(static_cast<uint64_t>(key)) & mask;
      while (true) {
        const K stored = table_keys[slot];
        if (stored == kEmpty) return;  // no match
        if (stored == key) {
          const uint32_t ticket = gpusim::AtomicAdd(c, uint32_t{1});
          out_build_rows[ticket] = table_rows[slot];
          out_probe_rows[ticket] = static_cast<uint32_t>(i);
          return;
        }
        slot = (slot + 1) & mask;
      }
    });
    uint32_t count = 0;
    gpusim::CopyDeviceToHost(stream_, &count, counter.data(),
                             sizeof(uint32_t));
    return count;
  }

  size_t capacity() const { return capacity_; }

 private:
  static constexpr K kEmpty = std::numeric_limits<K>::max();

  gpusim::Stream& stream_;
  size_t capacity_;
  gpusim::DeviceArray<K> keys_;
  gpusim::DeviceArray<uint32_t> rows_;
};

// ---------------------------------------------------------------------------
// Hash-based grouped aggregation
// ---------------------------------------------------------------------------

/// Result of HashGroupBySum: parallel arrays of group keys and aggregates.
template <typename K, typename V>
struct GroupedSums {
  gpusim::DeviceArray<K> keys;
  gpusim::DeviceArray<V> sums;
  gpusim::DeviceArray<uint64_t> counts;
  size_t num_groups = 0;
};

/// One-pass grouped sum+count using an open-addressing hash table with
/// atomic accumulation, then a compaction of occupied slots. Contrast with
/// the libraries' only option: sort_by_key + reduce_by_key (Table II).
/// Keys must not equal numeric_limits<K>::max().
template <typename K, typename V>
GroupedSums<K, V> HashGroupBySum(gpusim::Stream& stream, const K* keys,
                                 const V* values, size_t n,
                                 size_t expected_groups = 0) {
  constexpr K kEmpty = std::numeric_limits<K>::max();
  gpusim::Device& device = stream.device();
  const size_t hint = expected_groups > 0 ? expected_groups : n;
  const size_t capacity = detail::NextPow2(hint < 8 ? 16 : 2 * hint);
  gpusim::DeviceArray<K> table_keys(capacity, device);
  gpusim::DeviceArray<V> table_sums(capacity, device);
  gpusim::DeviceArray<uint64_t> table_counts(capacity, device);
  gpusim::Fill(stream, table_keys.data(), capacity, kEmpty);
  gpusim::Fill(stream, table_sums.data(), capacity, V{});
  gpusim::Fill(stream, table_counts.data(), capacity, uint64_t{0});

  {
    gpusim::KernelStats stats;
    stats.name = "hw::hash_group_by";
    stats.bytes_read = n * (sizeof(K) + sizeof(V));
    stats.bytes_written = n * (sizeof(V) + sizeof(uint64_t));
    stats.ops = 4 * n;
    K* tk = table_keys.data();
    V* ts = table_sums.data();
    uint64_t* tc = table_counts.data();
    const size_t mask = capacity - 1;
    gpusim::ParallelFor(stream, n, stats, [=](size_t i) {
      const K key = keys[i];
      size_t slot = detail::MixHash(static_cast<uint64_t>(key)) & mask;
      while (true) {
        const K stored = gpusim::AtomicLoad(&tk[slot]);
        if (stored == key) break;
        if (stored == kEmpty) {
          if (gpusim::AtomicCas(&tk[slot], kEmpty, key) == kEmpty) break;
          continue;  // lost the race; re-read this slot
        }
        slot = (slot + 1) & mask;
      }
      gpusim::detail::AtomicCombine(&ts[slot], values[i],
                                    [](V a, V b) { return a + b; });
      gpusim::AtomicAdd(&tc[slot], uint64_t{1});
    });
  }

  // Compact occupied slots (flags over the slot space + scan + scatter).
  GroupedSums<K, V> out;
  out.keys = gpusim::DeviceArray<K>(capacity, device);
  out.sums = gpusim::DeviceArray<V>(capacity, device);
  out.counts = gpusim::DeviceArray<uint64_t>(capacity, device);
  gpusim::DeviceArray<uint32_t> flags(capacity, device);
  gpusim::DeviceArray<uint32_t> positions(capacity, device);
  {
    gpusim::KernelStats stats;
    stats.name = "hw::group_slot_flags";
    stats.bytes_read = capacity * sizeof(K);
    stats.bytes_written = capacity * sizeof(uint32_t);
    const K* tk = table_keys.data();
    uint32_t* f = flags.data();
    gpusim::ParallelFor(stream, capacity, stats,
                        [=](size_t i) { f[i] = tk[i] != kEmpty ? 1u : 0u; });
  }
  gpusim::ExclusiveScan(stream, flags.data(), positions.data(), capacity,
                        uint32_t{0},
                        [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t last_pos = 0, last_flag = 0;
  gpusim::CopyDeviceToHost(stream, &last_pos,
                           positions.data() + (capacity - 1),
                           sizeof(uint32_t));
  gpusim::CopyDeviceToHost(stream, &last_flag, flags.data() + (capacity - 1),
                           sizeof(uint32_t));
  out.num_groups = last_pos + last_flag;
  {
    gpusim::KernelStats stats;
    stats.name = "hw::group_compact";
    stats.bytes_read =
        capacity * (sizeof(K) + sizeof(V) + sizeof(uint64_t) +
                    2 * sizeof(uint32_t));
    stats.bytes_written =
        out.num_groups * (sizeof(K) + sizeof(V) + sizeof(uint64_t));
    const K* tk = table_keys.data();
    const V* ts = table_sums.data();
    const uint64_t* tc = table_counts.data();
    const uint32_t* f = flags.data();
    const uint32_t* pos = positions.data();
    K* ok = out.keys.data();
    V* os = out.sums.data();
    uint64_t* oc = out.counts.data();
    gpusim::ParallelFor(stream, capacity, stats, [=](size_t i) {
      if (f[i]) {
        const uint32_t p = pos[i];
        ok[p] = tk[i];
        os[p] = ts[i];
        oc[p] = tc[i];
      }
    });
  }
  return out;
}

/// Generic one-pass hash grouped reduction (sum/min/max with the matching
/// identity). Same structure as HashGroupBySum but with a caller-provided
/// combine. Returns compacted (keys, values).
template <typename K, typename V, typename BinOp>
GroupedSums<K, V> HashGroupByReduce(gpusim::Stream& stream, const K* keys,
                                    const V* values, size_t n, V identity,
                                    BinOp op, size_t expected_groups = 0) {
  constexpr K kEmpty = std::numeric_limits<K>::max();
  gpusim::Device& device = stream.device();
  const size_t hint = expected_groups > 0 ? expected_groups : n;
  const size_t capacity = detail::NextPow2(hint < 8 ? 16 : 2 * hint);
  gpusim::DeviceArray<K> table_keys(capacity, device);
  gpusim::DeviceArray<V> table_vals(capacity, device);
  gpusim::Fill(stream, table_keys.data(), capacity, kEmpty);
  gpusim::Fill(stream, table_vals.data(), capacity, identity);

  {
    gpusim::KernelStats stats;
    stats.name = "hw::hash_group_reduce";
    stats.bytes_read = n * (sizeof(K) + sizeof(V));
    stats.bytes_written = n * sizeof(V);
    stats.ops = 4 * n;
    K* tk = table_keys.data();
    V* tv = table_vals.data();
    const size_t mask = capacity - 1;
    gpusim::ParallelFor(stream, n, stats, [=](size_t i) {
      const K key = keys[i];
      size_t slot = detail::MixHash(static_cast<uint64_t>(key)) & mask;
      while (true) {
        const K stored = gpusim::AtomicLoad(&tk[slot]);
        if (stored == key) break;
        if (stored == kEmpty) {
          if (gpusim::AtomicCas(&tk[slot], kEmpty, key) == kEmpty) break;
          continue;
        }
        slot = (slot + 1) & mask;
      }
      gpusim::detail::AtomicCombine(&tv[slot], values[i], op);
    });
  }

  GroupedSums<K, V> out;
  out.keys = gpusim::DeviceArray<K>(capacity, device);
  out.sums = gpusim::DeviceArray<V>(capacity, device);
  gpusim::DeviceArray<uint32_t> flags(capacity, device);
  gpusim::DeviceArray<uint32_t> positions(capacity, device);
  {
    gpusim::KernelStats stats;
    stats.name = "hw::group_slot_flags";
    stats.bytes_read = capacity * sizeof(K);
    stats.bytes_written = capacity * sizeof(uint32_t);
    const K* tk = table_keys.data();
    uint32_t* f = flags.data();
    gpusim::ParallelFor(stream, capacity, stats,
                        [=](size_t i) { f[i] = tk[i] != kEmpty ? 1u : 0u; });
  }
  gpusim::ExclusiveScan(stream, flags.data(), positions.data(), capacity,
                        uint32_t{0},
                        [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t last_pos = 0, last_flag = 0;
  gpusim::CopyDeviceToHost(stream, &last_pos,
                           positions.data() + (capacity - 1),
                           sizeof(uint32_t));
  gpusim::CopyDeviceToHost(stream, &last_flag, flags.data() + (capacity - 1),
                           sizeof(uint32_t));
  out.num_groups = last_pos + last_flag;
  {
    gpusim::KernelStats stats;
    stats.name = "hw::group_compact";
    stats.bytes_read =
        capacity * (sizeof(K) + sizeof(V) + 2 * sizeof(uint32_t));
    stats.bytes_written = out.num_groups * (sizeof(K) + sizeof(V));
    const K* tk = table_keys.data();
    const V* tv = table_vals.data();
    const uint32_t* f = flags.data();
    const uint32_t* pos = positions.data();
    K* ok = out.keys.data();
    V* os = out.sums.data();
    gpusim::ParallelFor(stream, capacity, stats, [=](size_t i) {
      if (f[i]) {
        const uint32_t p = pos[i];
        ok[p] = tk[i];
        os[p] = tv[i];
      }
    });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Nested-loops join (for completeness; what the libraries are forced to do)
// ---------------------------------------------------------------------------

/// Count-then-fill nested-loops equi-join: one kernel counting matches per
/// outer row, a prefix sum over the counts, and one kernel writing pairs.
/// Deterministic output order; O(|R|*|S|) work. Returns the pair count.
template <typename K>
size_t NestedLoopsJoin(gpusim::Stream& stream, const K* outer, size_t n_outer,
                       const K* inner, size_t n_inner,
                       gpusim::DeviceArray<uint32_t>* out_outer_rows,
                       gpusim::DeviceArray<uint32_t>* out_inner_rows) {
  gpusim::Device& device = stream.device();
  if (n_outer == 0 || n_inner == 0) {
    *out_outer_rows = gpusim::DeviceArray<uint32_t>(0, device);
    *out_inner_rows = gpusim::DeviceArray<uint32_t>(0, device);
    return 0;
  }
  gpusim::DeviceArray<uint32_t> counts(n_outer, device);
  gpusim::DeviceArray<uint32_t> offsets(n_outer, device);
  {
    gpusim::KernelStats stats;
    stats.name = "hw::nlj_count";
    stats.bytes_read =
        n_outer * sizeof(K) +
        static_cast<uint64_t>(n_outer) * n_inner * sizeof(K);
    stats.bytes_written = n_outer * sizeof(uint32_t);
    stats.ops = static_cast<uint64_t>(n_outer) * n_inner;
    uint32_t* c = counts.data();
    gpusim::ParallelFor(stream, n_outer, stats, [=](size_t i) {
      const K key = outer[i];
      uint32_t matches = 0;
      for (size_t j = 0; j < n_inner; ++j) {
        if (inner[j] == key) ++matches;
      }
      c[i] = matches;
    });
  }
  gpusim::ExclusiveScan(stream, counts.data(), offsets.data(), n_outer,
                        uint32_t{0},
                        [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t last_off = 0, last_count = 0;
  gpusim::CopyDeviceToHost(stream, &last_off, offsets.data() + (n_outer - 1),
                           sizeof(uint32_t));
  gpusim::CopyDeviceToHost(stream, &last_count, counts.data() + (n_outer - 1),
                           sizeof(uint32_t));
  const size_t total = last_off + last_count;

  *out_outer_rows = gpusim::DeviceArray<uint32_t>(total, device);
  *out_inner_rows = gpusim::DeviceArray<uint32_t>(total, device);
  {
    gpusim::KernelStats stats;
    stats.name = "hw::nlj_fill";
    stats.bytes_read =
        n_outer * (sizeof(K) + sizeof(uint32_t)) +
        static_cast<uint64_t>(n_outer) * n_inner * sizeof(K);
    stats.bytes_written = total * 2 * sizeof(uint32_t);
    stats.ops = static_cast<uint64_t>(n_outer) * n_inner;
    const uint32_t* off = offsets.data();
    uint32_t* oo = out_outer_rows->data();
    uint32_t* oi = out_inner_rows->data();
    gpusim::ParallelFor(stream, n_outer, stats, [=](size_t i) {
      const K key = outer[i];
      uint32_t w = off[i];
      for (size_t j = 0; j < n_inner; ++j) {
        if (inner[j] == key) {
          oo[w] = static_cast<uint32_t>(i);
          oi[w] = static_cast<uint32_t>(j);
          ++w;
        }
      }
    });
  }
  return total;
}

}  // namespace handwritten

#endif  // HANDWRITTEN_HANDWRITTEN_H_
