// In-process TPC-H data generator (dbgen equivalent for the columns the
// paper's query experiments touch).
//
// Deterministic for a given (scale factor, seed). Dates are encoded as days
// since 1992-01-01; flag columns as small integers:
//   l_returnflag: 0='A' 1='N' 2='R';  l_linestatus: 0='F' 1='O'.
// The generator also materializes l_rfls = returnflag*2 + linestatus, the
// composite grouping key Q1 needs (the framework's operator set groups by a
// single int32 key, as all three libraries' reduce-by-key functions do).
#ifndef TPCH_DATAGEN_H_
#define TPCH_DATAGEN_H_

#include <cstdint>

#include "storage/table.h"

namespace tpch {

/// Generation parameters. scale_factor 1.0 = 6M lineitem rows (TPC-H SF1).
struct Config {
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

/// Days since 1992-01-01 for a calendar date (proleptic Gregorian).
int32_t DaysFromDate(int year, int month, int day);

/// Number of orders at this scale factor (1,500,000 * SF).
size_t NumOrders(const Config& config);

/// The LINEITEM relation. Columns: l_orderkey(i32), l_partkey(i32),
/// l_suppkey(i32), l_quantity(f64), l_extendedprice(f64), l_discount(f64),
/// l_tax(f64), l_returnflag(i32), l_linestatus(i32), l_shipdate(i32),
/// l_commitdate(i32), l_receiptdate(i32), l_rfls(i32).
storage::Table GenerateLineitem(const Config& config);

/// The ORDERS relation. Columns: o_orderkey(i32), o_custkey(i32),
/// o_orderdate(i32), o_orderpriority(i32, 1..5), o_shippriority(i32),
/// o_totalprice(f64).
storage::Table GenerateOrders(const Config& config);

/// The CUSTOMER relation. Columns: c_custkey(i32), c_nationkey(i32),
/// c_mktsegment(i32, 0..4), c_acctbal(f64).
storage::Table GenerateCustomer(const Config& config);

/// The PART relation. Columns: p_partkey(i32), p_retailprice(f64),
/// p_size(i32).
storage::Table GeneratePart(const Config& config);

/// The SUPPLIER relation. Columns: s_suppkey(i32), s_nationkey(i32),
/// s_acctbal(f64).
storage::Table GenerateSupplier(const Config& config);

/// The NATION relation (fixed 25 rows). Columns: n_nationkey(i32),
/// n_regionkey(i32).
storage::Table GenerateNation();

/// The REGION relation (fixed 5 rows). Columns: r_regionkey(i32).
storage::Table GenerateRegion();

}  // namespace tpch

#endif  // TPCH_DATAGEN_H_
