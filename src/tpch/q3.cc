// TPC-H Q3 over the framework operator set (join-heavy plan).
#include <algorithm>
#include <map>

#include "tpch/queries.h"

namespace tpch {
namespace {

/// Dispatches a PK-FK equi-join per the requested strategy.
core::JoinResult RunJoin(core::Backend& backend,
                         const storage::DeviceColumn& pk_keys,
                         const storage::DeviceColumn& fk_keys,
                         JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kNestedLoops:
      return backend.NestedLoopsJoin(pk_keys, fk_keys);
    case JoinStrategy::kHash:
      return backend.HashJoin(pk_keys, fk_keys);
    case JoinStrategy::kAuto:
      break;
  }
  const bool has_hash =
      backend.Realization(core::DbOperator::kHashJoin).level !=
      core::SupportLevel::kNone;
  return has_hash ? backend.HashJoin(pk_keys, fk_keys)
                  : backend.NestedLoopsJoin(pk_keys, fk_keys);
}

}  // namespace

std::vector<Q3Row> RunQ3(core::Backend& backend,
                         const storage::DeviceTable& customer,
                         const storage::DeviceTable& orders,
                         const storage::DeviceTable& lineitem,
                         const Q3Params& params, JoinStrategy strategy) {
  using core::AggOp;
  using core::CompareOp;
  using core::Predicate;

  // sigma_customer: c_mktsegment = :segment.
  const auto sel_cust = backend.Select(
      customer.column("c_mktsegment"),
      Predicate::Make("c_mktsegment", CompareOp::kEq,
                      static_cast<double>(params.segment)));
  const auto cust_keys =
      backend.Gather(customer.column("c_custkey"), sel_cust.row_ids);

  // sigma_orders: o_orderdate < :date.
  const auto sel_ord = backend.Select(
      orders.column("o_orderdate"),
      Predicate::Make("o_orderdate", CompareOp::kLt,
                      static_cast<double>(params.date)));
  const auto ord_keys = backend.Gather(orders.column("o_orderkey"),
                                       sel_ord.row_ids);
  const auto ord_cust = backend.Gather(orders.column("o_custkey"),
                                       sel_ord.row_ids);

  // customer |X| orders on custkey (customer side unique).
  const auto join_co = RunJoin(backend, cust_keys, ord_cust, strategy);
  // Orders surviving the join (orderkey is a PK: still unique).
  const auto surv_ord_keys = backend.Gather(ord_keys, join_co.right_rows);

  // sigma_lineitem: l_shipdate > :date.
  const auto sel_li = backend.Select(
      lineitem.column("l_shipdate"),
      Predicate::Make("l_shipdate", CompareOp::kGt,
                      static_cast<double>(params.date)));
  const auto li_keys = backend.Gather(lineitem.column("l_orderkey"),
                                      sel_li.row_ids);
  const auto li_price = backend.Gather(lineitem.column("l_extendedprice"),
                                       sel_li.row_ids);
  const auto li_disc = backend.Gather(lineitem.column("l_discount"),
                                      sel_li.row_ids);

  // orders' |X| lineitem' on orderkey.
  const auto join_ol = RunJoin(backend, surv_ord_keys, li_keys, strategy);

  // Project revenue = price*(1-disc) over matched lineitems; group by key.
  const auto keys = backend.Gather(li_keys, join_ol.right_rows);
  const auto price = backend.Gather(li_price, join_ol.right_rows);
  const auto disc = backend.Gather(li_disc, join_ol.right_rows);
  const auto revenue =
      backend.Product(price, backend.SubtractFromScalar(1.0, disc));
  const auto grouped = backend.GroupByAggregate(keys, revenue, AggOp::kSum);

  // Top-k by revenue: sort (revenue, orderkey) ascending, take the tail.
  std::vector<Q3Row> rows;
  if (grouped.num_groups > 0) {
    auto [sorted_rev, sorted_keys] =
        backend.SortByKey(grouped.aggregate, grouped.keys);
    const auto rev = sorted_rev.ToHost(backend.stream()).values<double>();
    const auto key = sorted_keys.ToHost(backend.stream()).values<int32_t>();
    const size_t k = std::min(params.limit, rev.size());
    for (size_t i = 0; i < k; ++i) {
      const size_t j = rev.size() - 1 - i;
      rows.push_back(Q3Row{key[j], rev[j]});
    }
  }
  return rows;
}

std::vector<Q3Row> ReferenceQ3(const storage::Table& customer,
                               const storage::Table& orders,
                               const storage::Table& lineitem,
                               const Q3Params& params) {
  const auto& c_key = customer.column("c_custkey").values<int32_t>();
  const auto& c_seg = customer.column("c_mktsegment").values<int32_t>();
  const auto& o_key = orders.column("o_orderkey").values<int32_t>();
  const auto& o_cust = orders.column("o_custkey").values<int32_t>();
  const auto& o_date = orders.column("o_orderdate").values<int32_t>();
  const auto& l_key = lineitem.column("l_orderkey").values<int32_t>();
  const auto& l_ship = lineitem.column("l_shipdate").values<int32_t>();
  const auto& l_price = lineitem.column("l_extendedprice").values<double>();
  const auto& l_disc = lineitem.column("l_discount").values<double>();

  std::map<int32_t, bool> building_customer;
  for (size_t i = 0; i < c_key.size(); ++i) {
    if (c_seg[i] == params.segment) building_customer[c_key[i]] = true;
  }
  std::map<int32_t, bool> qualifying_order;
  for (size_t i = 0; i < o_key.size(); ++i) {
    if (o_date[i] < params.date && building_customer.count(o_cust[i])) {
      qualifying_order[o_key[i]] = true;
    }
  }
  std::map<int32_t, double> revenue;
  for (size_t i = 0; i < l_key.size(); ++i) {
    if (l_ship[i] > params.date && qualifying_order.count(l_key[i])) {
      revenue[l_key[i]] += l_price[i] * (1.0 - l_disc[i]);
    }
  }
  std::vector<Q3Row> rows;
  for (const auto& [key, rev] : revenue) rows.push_back(Q3Row{key, rev});
  std::sort(rows.begin(), rows.end(), [](const Q3Row& a, const Q3Row& b) {
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    return a.orderkey < b.orderkey;
  });
  if (rows.size() > params.limit) rows.resize(params.limit);
  return rows;
}

}  // namespace tpch
