// TPC-H Q14 over the framework operator set (join + conditional aggregate).
#include "tpch/queries.h"

namespace tpch {

double RunQ14(core::Backend& backend, const storage::DeviceTable& part,
              const storage::DeviceTable& lineitem, const Q14Params& params,
              JoinStrategy strategy) {
  using core::AggOp;
  using core::CompareOp;
  using core::Predicate;

  // sigma_lineitem: l_shipdate in [:date_lo, :date_hi).
  const storage::DeviceColumn& shipdate = lineitem.column("l_shipdate");
  const auto sel = backend.SelectConjunctive(
      {&shipdate, &shipdate},
      {Predicate::Make("l_shipdate", CompareOp::kGe,
                       static_cast<double>(params.date_lo)),
       Predicate::Make("l_shipdate", CompareOp::kLt,
                       static_cast<double>(params.date_hi))});

  const auto li_part =
      backend.Gather(lineitem.column("l_partkey"), sel.row_ids);
  const auto li_price =
      backend.Gather(lineitem.column("l_extendedprice"), sel.row_ids);
  const auto li_disc =
      backend.Gather(lineitem.column("l_discount"), sel.row_ids);
  const auto revenue =
      backend.Product(li_price, backend.SubtractFromScalar(1.0, li_disc));

  // lineitem' |X| part on partkey (part side unique PK).
  const storage::DeviceColumn& part_keys = part.column("p_partkey");
  core::JoinResult join;
  switch (strategy) {
    case JoinStrategy::kNestedLoops:
      join = backend.NestedLoopsJoin(part_keys, li_part);
      break;
    case JoinStrategy::kHash:
      join = backend.HashJoin(part_keys, li_part);
      break;
    case JoinStrategy::kAuto:
      join = backend.Realization(core::DbOperator::kHashJoin).level !=
                     core::SupportLevel::kNone
                 ? backend.HashJoin(part_keys, li_part)
                 : backend.NestedLoopsJoin(part_keys, li_part);
      break;
  }

  // CASE WHEN p_type LIKE 'PROMO%': select the matched rows whose part is
  // promotional and sum their revenue separately from the total.
  const auto promo_flags = backend.Gather(part.column("p_promo"),
                                          join.left_rows);
  const auto rev_matched = backend.Gather(revenue, join.right_rows);
  const double total = backend.ReduceColumn(rev_matched, AggOp::kSum);
  if (total == 0.0) return 0.0;

  const auto promo_sel = backend.Select(
      promo_flags, Predicate::Make("p_promo", CompareOp::kEq, 1.0));
  const auto rev_promo = backend.Gather(rev_matched, promo_sel.row_ids);
  const double promo = backend.ReduceColumn(rev_promo, AggOp::kSum);
  return 100.0 * promo / total;
}

double ReferenceQ14(const storage::Table& part,
                    const storage::Table& lineitem, const Q14Params& params) {
  const auto& p_key = part.column("p_partkey").values<int32_t>();
  const auto& p_promo = part.column("p_promo").values<int32_t>();
  const auto& l_part = lineitem.column("l_partkey").values<int32_t>();
  const auto& l_ship = lineitem.column("l_shipdate").values<int32_t>();
  const auto& l_price = lineitem.column("l_extendedprice").values<double>();
  const auto& l_disc = lineitem.column("l_discount").values<double>();

  std::vector<int32_t> promo_by_key(p_key.size() + 1, 0);
  for (size_t i = 0; i < p_key.size(); ++i) {
    promo_by_key[static_cast<size_t>(p_key[i])] = p_promo[i];
  }
  double total = 0.0, promo = 0.0;
  for (size_t i = 0; i < l_part.size(); ++i) {
    if (l_ship[i] < params.date_lo || l_ship[i] >= params.date_hi) continue;
    const double rev = l_price[i] * (1.0 - l_disc[i]);
    total += rev;
    if (promo_by_key[static_cast<size_t>(l_part[i])]) promo += rev;
  }
  return total == 0.0 ? 0.0 : 100.0 * promo / total;
}

}  // namespace tpch
