// TPC-H Q6 over the framework operator set, plus a fully fused handwritten
// variant (one kernel for the whole query body).
#include "handwritten/handwritten.h"
#include "tpch/queries.h"

namespace tpch {

double RunQ6(core::Backend& backend, const storage::DeviceTable& lineitem,
             const Q6Params& params) {
  using core::AggOp;
  using core::CompareOp;
  using core::Predicate;

  // sigma: shipdate in [date_lo, date_hi) AND discount in [lo, hi] AND
  // quantity < 24 — a 5-way conjunctive selection.
  const std::vector<Predicate> preds = {
      Predicate::Make("l_shipdate", CompareOp::kGe,
                      static_cast<double>(params.date_lo)),
      Predicate::Make("l_shipdate", CompareOp::kLt,
                      static_cast<double>(params.date_hi)),
      Predicate::Make("l_discount", CompareOp::kGe, params.discount_lo),
      Predicate::Make("l_discount", CompareOp::kLe, params.discount_hi),
      Predicate::Make("l_quantity", CompareOp::kLt, params.quantity_hi),
  };

  core::SelectionResult sel;
  if (lineitem.HasEncoded("l_shipdate") || lineitem.HasEncoded("l_discount") ||
      lineitem.HasEncoded("l_quantity")) {
    // Compressed scan: predicates fold to code-space comparisons, the
    // selection never decodes a value.
    const auto ref = [&](const char* name) {
      return lineitem.HasEncoded(name)
                 ? core::ScanColumnRef::Encoded(lineitem.encoded(name))
                 : core::ScanColumnRef::Raw(lineitem.column(name));
    };
    const std::vector<core::ScanColumnRef> columns = {
        ref("l_shipdate"), ref("l_shipdate"), ref("l_discount"),
        ref("l_discount"), ref("l_quantity")};
    sel = backend.SelectConjunctiveEncoded(columns, preds);
  } else {
    const storage::DeviceColumn& shipdate = lineitem.column("l_shipdate");
    const storage::DeviceColumn& discount = lineitem.column("l_discount");
    const storage::DeviceColumn& quantity = lineitem.column("l_quantity");
    const std::vector<const storage::DeviceColumn*> columns = {
        &shipdate, &shipdate, &discount, &discount, &quantity};
    sel = backend.SelectConjunctive(columns, preds);
  }

  // revenue = sum(l_extendedprice * l_discount) over the selection; only
  // survivors materialize (l_extendedprice stays raw, l_discount decodes
  // late when encoded).
  const auto gather = [&](const char* name,
                          const storage::DeviceColumn& rows) {
    return lineitem.HasEncoded(name)
               ? backend.GatherDecode(lineitem.encoded(name), rows)
               : backend.Gather(lineitem.column(name), rows);
  };
  const storage::DeviceColumn price_sel =
      gather("l_extendedprice", sel.row_ids);
  const storage::DeviceColumn disc_sel = gather("l_discount", sel.row_ids);
  const storage::DeviceColumn revenue = backend.Product(price_sel, disc_sel);
  return backend.ReduceColumn(revenue, AggOp::kSum);
}

double RunQ6FusedHandwritten(gpusim::Stream& stream,
                             const storage::DeviceTable& lineitem,
                             const Q6Params& params) {
  const int32_t* shipdate = lineitem.column("l_shipdate").data<int32_t>();
  const double* discount = lineitem.column("l_discount").data<double>();
  const double* quantity = lineitem.column("l_quantity").data<double>();
  const double* price = lineitem.column("l_extendedprice").data<double>();
  const size_t n = lineitem.num_rows();
  const Q6Params p = params;
  return handwritten::FusedFilterSum<double>(
      stream, n,
      [=](size_t i) {
        return shipdate[i] >= p.date_lo && shipdate[i] < p.date_hi &&
               discount[i] >= p.discount_lo && discount[i] <= p.discount_hi &&
               quantity[i] < p.quantity_hi;
      },
      [=](size_t i) { return price[i] * discount[i]; },
      /*bytes_per_row=*/sizeof(int32_t) + 3 * sizeof(double));
}

double ReferenceQ6(const storage::Table& lineitem, const Q6Params& params) {
  const auto& shipdate = lineitem.column("l_shipdate").values<int32_t>();
  const auto& discount = lineitem.column("l_discount").values<double>();
  const auto& quantity = lineitem.column("l_quantity").values<double>();
  const auto& price = lineitem.column("l_extendedprice").values<double>();

  double revenue = 0.0;
  for (size_t i = 0; i < shipdate.size(); ++i) {
    if (shipdate[i] >= params.date_lo && shipdate[i] < params.date_hi &&
        discount[i] >= params.discount_lo &&
        discount[i] <= params.discount_hi &&
        quantity[i] < params.quantity_hi) {
      revenue += price[i] * discount[i];
    }
  }
  return revenue;
}

}  // namespace tpch
