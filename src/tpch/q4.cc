// TPC-H Q4 over the framework operator set (semi-join / EXISTS plan).
#include <algorithm>
#include <map>
#include <set>

#include "tpch/queries.h"

namespace tpch {

std::vector<Q4Row> RunQ4(core::Backend& backend,
                         const storage::DeviceTable& orders,
                         const storage::DeviceTable& lineitem,
                         const Q4Params& params, JoinStrategy strategy) {
  using core::AggOp;
  using core::CompareOp;
  using core::Predicate;

  // EXISTS subquery: lineitems with l_commitdate < l_receiptdate, projected
  // to their (deduplicated) order keys — the semi-join build side.
  const auto late = backend.SelectCompareColumns(
      lineitem.column("l_commitdate"), CompareOp::kLt,
      lineitem.column("l_receiptdate"));
  const auto late_keys =
      backend.Gather(lineitem.column("l_orderkey"), late.row_ids);
  const auto distinct_late = backend.Unique(late_keys);

  // sigma_orders: o_orderdate in [:date_lo, :date_hi).
  const storage::DeviceColumn& odate = orders.column("o_orderdate");
  const auto sel_ord = backend.SelectConjunctive(
      {&odate, &odate},
      {Predicate::Make("o_orderdate", CompareOp::kGe,
                       static_cast<double>(params.date_lo)),
       Predicate::Make("o_orderdate", CompareOp::kLt,
                       static_cast<double>(params.date_hi))});
  const auto ord_keys =
      backend.Gather(orders.column("o_orderkey"), sel_ord.row_ids);
  const auto ord_prio =
      backend.Gather(orders.column("o_orderpriority"), sel_ord.row_ids);

  // Semi-join: filtered orders (unique keys) probed by the distinct late
  // order keys; each probe key matches at most one order.
  core::JoinResult join;
  switch (strategy) {
    case JoinStrategy::kNestedLoops:
      join = backend.NestedLoopsJoin(ord_keys, distinct_late);
      break;
    case JoinStrategy::kHash:
      join = backend.HashJoin(ord_keys, distinct_late);
      break;
    case JoinStrategy::kAuto:
      join = backend.Realization(core::DbOperator::kHashJoin).level !=
                     core::SupportLevel::kNone
                 ? backend.HashJoin(ord_keys, distinct_late)
                 : backend.NestedLoopsJoin(ord_keys, distinct_late);
      break;
  }

  // Count matched orders per priority.
  const auto prio = backend.Gather(ord_prio, join.left_rows);
  const auto grouped = backend.GroupByAggregate(prio, prio, AggOp::kCount);

  std::vector<Q4Row> rows;
  const auto keys = grouped.keys.ToHost(backend.stream()).values<int32_t>();
  const auto counts =
      grouped.aggregate.ToHost(backend.stream()).values<int64_t>();
  for (size_t i = 0; i < grouped.num_groups; ++i) {
    rows.push_back(Q4Row{keys[i], counts[i]});
  }
  std::sort(rows.begin(), rows.end(), [](const Q4Row& a, const Q4Row& b) {
    return a.orderpriority < b.orderpriority;
  });
  return rows;
}

std::vector<Q4Row> ReferenceQ4(const storage::Table& orders,
                               const storage::Table& lineitem,
                               const Q4Params& params) {
  const auto& l_key = lineitem.column("l_orderkey").values<int32_t>();
  const auto& l_commit = lineitem.column("l_commitdate").values<int32_t>();
  const auto& l_receipt = lineitem.column("l_receiptdate").values<int32_t>();
  const auto& o_key = orders.column("o_orderkey").values<int32_t>();
  const auto& o_date = orders.column("o_orderdate").values<int32_t>();
  const auto& o_prio = orders.column("o_orderpriority").values<int32_t>();

  std::set<int32_t> late_orders;
  for (size_t i = 0; i < l_key.size(); ++i) {
    if (l_commit[i] < l_receipt[i]) late_orders.insert(l_key[i]);
  }
  std::map<int32_t, int64_t> counts;
  for (size_t i = 0; i < o_key.size(); ++i) {
    if (o_date[i] >= params.date_lo && o_date[i] < params.date_hi &&
        late_orders.count(o_key[i])) {
      ++counts[o_prio[i]];
    }
  }
  std::vector<Q4Row> rows;
  for (const auto& [prio, count] : counts) rows.push_back(Q4Row{prio, count});
  return rows;
}

}  // namespace tpch
