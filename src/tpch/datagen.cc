#include "tpch/datagen.h"

#include <cmath>

namespace tpch {
namespace {

/// splitmix64: deterministic, seedable, fast.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    return lo + (hi - lo) * (Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

/// Days from civil date algorithm (Howard Hinnant's days_from_civil).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

}  // namespace

int32_t DaysFromDate(int year, int month, int day) {
  static const int64_t kEpoch = DaysFromCivil(1992, 1, 1);
  return static_cast<int32_t>(DaysFromCivil(year, month, day) - kEpoch);
}

size_t NumOrders(const Config& config) {
  return static_cast<size_t>(1'500'000.0 * config.scale_factor);
}

storage::Table GenerateLineitem(const Config& config) {
  Rng rng(config.seed ^ 0x11e17e11ULL);
  const size_t num_orders = NumOrders(config);
  const int32_t min_orderdate = DaysFromDate(1992, 1, 1);
  const int32_t max_orderdate = DaysFromDate(1998, 8, 2);
  const int32_t status_cutoff = DaysFromDate(1995, 6, 17);
  const size_t parts = static_cast<size_t>(200'000.0 * config.scale_factor) + 1;
  const size_t suppliers =
      static_cast<size_t>(10'000.0 * config.scale_factor) + 1;

  std::vector<int32_t> orderkey, partkey, suppkey, returnflag, linestatus,
      shipdate, commitdate, receiptdate, rfls;
  std::vector<double> quantity, extendedprice, discount, tax;

  for (size_t o = 0; o < num_orders; ++o) {
    const int32_t odate = static_cast<int32_t>(
        rng.Uniform(min_orderdate, max_orderdate));
    const int lines = static_cast<int>(rng.Uniform(1, 7));
    for (int l = 0; l < lines; ++l) {
      orderkey.push_back(static_cast<int32_t>(o + 1));
      partkey.push_back(static_cast<int32_t>(rng.Uniform(1, parts)));
      suppkey.push_back(static_cast<int32_t>(rng.Uniform(1, suppliers)));
      const double qty = static_cast<double>(rng.Uniform(1, 50));
      quantity.push_back(qty);
      // extendedprice = qty * part price; parts are priced 900.."100k".
      extendedprice.push_back(qty * rng.UniformReal(900.0, 2100.0));
      discount.push_back(rng.Uniform(0, 10) / 100.0);  // 0.00..0.10
      tax.push_back(rng.Uniform(0, 8) / 100.0);        // 0.00..0.08
      const int32_t sdate =
          odate + static_cast<int32_t>(rng.Uniform(1, 121));
      shipdate.push_back(sdate);
      // TPC-H: commitdate = orderdate + [30..90], receiptdate =
      // shipdate + [1..30]; roughly half the lines are late.
      commitdate.push_back(odate + static_cast<int32_t>(rng.Uniform(30, 90)));
      receiptdate.push_back(sdate + static_cast<int32_t>(rng.Uniform(1, 30)));
      const int32_t ls = sdate > status_cutoff ? 1 : 0;  // 'O' : 'F'
      // TPC-H: returned ('R'/'A') only for already-delivered lines.
      int32_t rf;
      if (ls == 1) {
        rf = 1;  // 'N'
      } else {
        rf = rng.Uniform(0, 1) == 0 ? 0 : 2;  // 'A' or 'R'
      }
      returnflag.push_back(rf);
      linestatus.push_back(ls);
      rfls.push_back(rf * 2 + ls);
    }
  }

  storage::Table t("lineitem");
  t.AddColumn("l_orderkey", storage::Column(std::move(orderkey)));
  t.AddColumn("l_partkey", storage::Column(std::move(partkey)));
  t.AddColumn("l_suppkey", storage::Column(std::move(suppkey)));
  t.AddColumn("l_quantity", storage::Column(std::move(quantity)));
  t.AddColumn("l_extendedprice", storage::Column(std::move(extendedprice)));
  t.AddColumn("l_discount", storage::Column(std::move(discount)));
  t.AddColumn("l_tax", storage::Column(std::move(tax)));
  t.AddColumn("l_returnflag", storage::Column(std::move(returnflag)));
  t.AddColumn("l_linestatus", storage::Column(std::move(linestatus)));
  t.AddColumn("l_shipdate", storage::Column(std::move(shipdate)));
  t.AddColumn("l_commitdate", storage::Column(std::move(commitdate)));
  t.AddColumn("l_receiptdate", storage::Column(std::move(receiptdate)));
  t.AddColumn("l_rfls", storage::Column(std::move(rfls)));
  return t;
}

storage::Table GenerateOrders(const Config& config) {
  Rng rng(config.seed ^ 0x0bde75ULL);
  const size_t num_orders = NumOrders(config);
  const size_t customers =
      static_cast<size_t>(150'000.0 * config.scale_factor) + 1;
  const int32_t min_orderdate = DaysFromDate(1992, 1, 1);
  const int32_t max_orderdate = DaysFromDate(1998, 8, 2);

  std::vector<int32_t> orderkey(num_orders), custkey(num_orders),
      orderdate(num_orders), orderpriority(num_orders),
      shippriority(num_orders);
  std::vector<double> totalprice(num_orders);
  for (size_t o = 0; o < num_orders; ++o) {
    orderkey[o] = static_cast<int32_t>(o + 1);
    custkey[o] = static_cast<int32_t>(rng.Uniform(1, customers));
    orderdate[o] =
        static_cast<int32_t>(rng.Uniform(min_orderdate, max_orderdate));
    orderpriority[o] = static_cast<int32_t>(rng.Uniform(1, 5));
    shippriority[o] = 0;  // constant in TPC-H
    totalprice[o] = rng.UniformReal(1000.0, 450000.0);
  }

  storage::Table t("orders");
  t.AddColumn("o_orderkey", storage::Column(std::move(orderkey)));
  t.AddColumn("o_custkey", storage::Column(std::move(custkey)));
  t.AddColumn("o_orderdate", storage::Column(std::move(orderdate)));
  t.AddColumn("o_orderpriority", storage::Column(std::move(orderpriority)));
  t.AddColumn("o_shippriority", storage::Column(std::move(shippriority)));
  t.AddColumn("o_totalprice", storage::Column(std::move(totalprice)));
  return t;
}

storage::Table GenerateCustomer(const Config& config) {
  Rng rng(config.seed ^ 0xc057ULL);
  const size_t n = static_cast<size_t>(150'000.0 * config.scale_factor) + 1;
  std::vector<int32_t> custkey(n), nationkey(n), mktsegment(n);
  std::vector<double> acctbal(n);
  for (size_t i = 0; i < n; ++i) {
    custkey[i] = static_cast<int32_t>(i + 1);
    nationkey[i] = static_cast<int32_t>(rng.Uniform(0, 24));
    mktsegment[i] = static_cast<int32_t>(rng.Uniform(0, 4));  // 5 segments
    acctbal[i] = rng.UniformReal(-999.99, 9999.99);
  }
  storage::Table t("customer");
  t.AddColumn("c_custkey", storage::Column(std::move(custkey)));
  t.AddColumn("c_nationkey", storage::Column(std::move(nationkey)));
  t.AddColumn("c_mktsegment", storage::Column(std::move(mktsegment)));
  t.AddColumn("c_acctbal", storage::Column(std::move(acctbal)));
  return t;
}

storage::Table GeneratePart(const Config& config) {
  Rng rng(config.seed ^ 0x9a47ULL);
  const size_t n = static_cast<size_t>(200'000.0 * config.scale_factor) + 1;
  std::vector<int32_t> partkey(n), size(n), promo(n);
  std::vector<double> retailprice(n);
  for (size_t i = 0; i < n; ++i) {
    partkey[i] = static_cast<int32_t>(i + 1);
    size[i] = static_cast<int32_t>(rng.Uniform(1, 50));
    // p_type begins with PROMO for 1 of the 5 type groups.
    promo[i] = rng.Uniform(0, 4) == 0 ? 1 : 0;
    retailprice[i] = 900.0 + (static_cast<double>(i % 200001) / 10.0);
  }
  storage::Table t("part");
  t.AddColumn("p_partkey", storage::Column(std::move(partkey)));
  t.AddColumn("p_retailprice", storage::Column(std::move(retailprice)));
  t.AddColumn("p_size", storage::Column(std::move(size)));
  t.AddColumn("p_promo", storage::Column(std::move(promo)));
  return t;
}

storage::Table GenerateSupplier(const Config& config) {
  Rng rng(config.seed ^ 0x5a99ULL);
  const size_t n = static_cast<size_t>(10'000.0 * config.scale_factor) + 1;
  std::vector<int32_t> suppkey(n), nationkey(n);
  std::vector<double> acctbal(n);
  for (size_t i = 0; i < n; ++i) {
    suppkey[i] = static_cast<int32_t>(i + 1);
    nationkey[i] = static_cast<int32_t>(rng.Uniform(0, 24));
    acctbal[i] = rng.UniformReal(-999.99, 9999.99);
  }
  storage::Table t("supplier");
  t.AddColumn("s_suppkey", storage::Column(std::move(suppkey)));
  t.AddColumn("s_nationkey", storage::Column(std::move(nationkey)));
  t.AddColumn("s_acctbal", storage::Column(std::move(acctbal)));
  return t;
}

storage::Table GenerateNation() {
  std::vector<int32_t> nationkey(25), regionkey(25);
  for (int i = 0; i < 25; ++i) {
    nationkey[i] = i;
    regionkey[i] = i % 5;
  }
  storage::Table t("nation");
  t.AddColumn("n_nationkey", storage::Column(std::move(nationkey)));
  t.AddColumn("n_regionkey", storage::Column(std::move(regionkey)));
  return t;
}

storage::Table GenerateRegion() {
  std::vector<int32_t> regionkey(5);
  for (int i = 0; i < 5; ++i) regionkey[i] = i;
  storage::Table t("region");
  t.AddColumn("r_regionkey", storage::Column(std::move(regionkey)));
  return t;
}

}  // namespace tpch
