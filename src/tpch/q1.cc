// TPC-H Q1 over the framework operator set.
#include <algorithm>
#include <map>

#include "tpch/queries.h"

namespace tpch {
namespace {

/// Downloads a grouped-aggregation result into key -> value on the host.
/// (Q1 has at most 6 groups; the download is a few dozen bytes.)
std::map<int32_t, double> DownloadGroups(core::Backend& backend,
                                         const core::GroupByResult& result) {
  std::map<int32_t, double> out;
  const storage::Column keys = result.keys.ToHost(backend.stream());
  const storage::Column vals = result.aggregate.ToHost(backend.stream());
  const auto& k = keys.values<int32_t>();
  if (result.aggregate.type() == storage::DataType::kInt64) {
    const auto& v = vals.values<int64_t>();
    for (size_t i = 0; i < k.size(); ++i) out[k[i]] = static_cast<double>(v[i]);
  } else {
    const auto& v = vals.values<double>();
    for (size_t i = 0; i < k.size(); ++i) out[k[i]] = v[i];
  }
  return out;
}

}  // namespace

std::vector<Q1Row> RunQ1(core::Backend& backend,
                         const storage::DeviceTable& lineitem,
                         const Q1Params& params) {
  using core::AggOp;
  using core::CompareOp;
  using core::Predicate;

  // Encoded-resident columns stay encoded: the predicate folds into code
  // space and survivors decode during the gather (late materialization).
  const auto gather = [&](const char* name,
                          const storage::DeviceColumn& rows) {
    return lineitem.HasEncoded(name)
               ? backend.GatherDecode(lineitem.encoded(name), rows)
               : backend.Gather(lineitem.column(name), rows);
  };

  // sigma: l_shipdate <= cutoff.
  const Predicate ship_pred =
      Predicate::Make("l_shipdate", CompareOp::kLe,
                      static_cast<double>(params.CutoffDays()));
  const core::SelectionResult sel =
      lineitem.HasEncoded("l_shipdate")
          ? backend.SelectConjunctiveEncoded(
                {core::ScanColumnRef::Encoded(lineitem.encoded("l_shipdate"))},
                {ship_pred})
          : backend.Select(lineitem.column("l_shipdate"), ship_pred);

  // Group keys stay encoded when the column went up dictionary- or
  // bit-packed: the grouped aggregations read packed codes directly (no key
  // gather, no decode — dense-domain aggregation on backends that support
  // it). Raw-resident keys materialize through the ordinary gather.
  const bool encoded_keys = lineitem.HasEncoded("l_rfls");
  const storage::DeviceColumn key =
      encoded_keys ? storage::DeviceColumn() : gather("l_rfls", sel.row_ids);
  const auto group_by = [&](const storage::DeviceColumn& vals, AggOp op) {
    return encoded_keys ? backend.GroupByAggregateEncoded(
                              lineitem.encoded("l_rfls"), sel, vals, op)
                        : backend.GroupByAggregate(key, vals, op);
  };

  // Materialize the selected rows of every referenced column.
  const storage::DeviceColumn qty = gather("l_quantity", sel.row_ids);
  const storage::DeviceColumn price = gather("l_extendedprice", sel.row_ids);
  const storage::DeviceColumn disc = gather("l_discount", sel.row_ids);
  const storage::DeviceColumn tax = gather("l_tax", sel.row_ids);

  // Projection arithmetic: disc_price = price*(1-disc); charge =
  // disc_price*(1+tax). Every step is a separate library call that
  // materializes its result — the interoperability cost the paper discusses.
  const storage::DeviceColumn one_minus_disc =
      backend.SubtractFromScalar(1.0, disc);
  const storage::DeviceColumn disc_price =
      backend.Product(price, one_minus_disc);
  const storage::DeviceColumn one_plus_tax = backend.AddScalar(tax, 1.0);
  const storage::DeviceColumn charge =
      backend.Product(disc_price, one_plus_tax);

  // Grouped aggregation per measure.
  auto sum_qty = DownloadGroups(backend, group_by(qty, AggOp::kSum));
  auto sum_price = DownloadGroups(backend, group_by(price, AggOp::kSum));
  auto sum_disc_price =
      DownloadGroups(backend, group_by(disc_price, AggOp::kSum));
  auto sum_charge = DownloadGroups(backend, group_by(charge, AggOp::kSum));
  auto sum_disc = DownloadGroups(backend, group_by(disc, AggOp::kSum));
  auto counts = DownloadGroups(backend, group_by(qty, AggOp::kCount));

  std::vector<Q1Row> rows;
  for (const auto& [k, count] : counts) {
    // Dense encoded-domain realizations report every key code, including
    // ones with no surviving rows: an empty group is the same as an absent
    // one.
    if (count == 0) continue;
    Q1Row row;
    row.returnflag = k / 2;
    row.linestatus = k % 2;
    row.count_order = static_cast<int64_t>(count);
    row.sum_qty = sum_qty[k];
    row.sum_base_price = sum_price[k];
    row.sum_disc_price = sum_disc_price[k];
    row.sum_charge = sum_charge[k];
    row.avg_qty = row.sum_qty / count;
    row.avg_price = row.sum_base_price / count;
    row.avg_disc = sum_disc[k] / count;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const Q1Row& a, const Q1Row& b) {
    return std::pair(a.returnflag, a.linestatus) <
           std::pair(b.returnflag, b.linestatus);
  });
  return rows;
}

std::vector<Q1Row> ReferenceQ1(const storage::Table& lineitem,
                               const Q1Params& params) {
  const auto& shipdate = lineitem.column("l_shipdate").values<int32_t>();
  const auto& rfls = lineitem.column("l_rfls").values<int32_t>();
  const auto& qty = lineitem.column("l_quantity").values<double>();
  const auto& price = lineitem.column("l_extendedprice").values<double>();
  const auto& disc = lineitem.column("l_discount").values<double>();
  const auto& tax = lineitem.column("l_tax").values<double>();
  const int32_t cutoff = params.CutoffDays();

  std::map<int32_t, Q1Row> groups;
  for (size_t i = 0; i < shipdate.size(); ++i) {
    if (shipdate[i] > cutoff) continue;
    Q1Row& row = groups[rfls[i]];
    row.returnflag = rfls[i] / 2;
    row.linestatus = rfls[i] % 2;
    row.sum_qty += qty[i];
    row.sum_base_price += price[i];
    const double disc_price = price[i] * (1.0 - disc[i]);
    row.sum_disc_price += disc_price;
    row.sum_charge += disc_price * (1.0 + tax[i]);
    row.avg_disc += disc[i];  // running sum; divided below
    ++row.count_order;
  }
  std::vector<Q1Row> rows;
  for (auto& [k, row] : groups) {
    (void)k;
    row.avg_qty = row.sum_qty / row.count_order;
    row.avg_price = row.sum_base_price / row.count_order;
    row.avg_disc = row.avg_disc / row.count_order;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace tpch
