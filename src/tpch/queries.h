// TPC-H queries executed through the framework's Backend interface.
//
// Each query is a chain of framework operator calls — exactly the "chained
// library calls with materialized intermediates" execution model the paper's
// query experiments measure. Reference (host, scalar) implementations are
// provided for correctness checks.
#ifndef TPCH_QUERIES_H_
#define TPCH_QUERIES_H_

#include <cstdint>
#include <vector>

#include "core/backend.h"
#include "storage/device_column.h"
#include "tpch/datagen.h"

namespace tpch {

// ---------------------------------------------------------------------------
// Q1: pricing summary report
// ---------------------------------------------------------------------------

/// One result row of Q1, keyed by (l_returnflag, l_linestatus).
struct Q1Row {
  int32_t returnflag = 0;
  int32_t linestatus = 0;
  double sum_qty = 0;
  double sum_base_price = 0;
  double sum_disc_price = 0;
  double sum_charge = 0;
  double avg_qty = 0;
  double avg_price = 0;
  double avg_disc = 0;
  int64_t count_order = 0;
};

/// Q1 parameters: shipdate <= 1998-12-01 - delta days (TPC-H delta=90).
struct Q1Params {
  int32_t delta_days = 90;
  int32_t CutoffDays() const {
    return DaysFromDate(1998, 12, 1) - delta_days;
  }
};

/// Runs Q1 on a device-resident lineitem through the backend's operators:
/// selection, gathers, projection arithmetic, 6x grouped aggregation.
/// Rows are returned sorted by (returnflag, linestatus). When the table
/// uploaded encoded (storage::UploadTableEncoded) the shipdate predicate
/// folds into the encoded domain, survivors decode during the gathers, and
/// the group keys never decode at all (GroupByAggregateEncoded reads packed
/// key codes directly).
std::vector<Q1Row> RunQ1(core::Backend& backend,
                         const storage::DeviceTable& lineitem,
                         const Q1Params& params = Q1Params());

/// Host reference implementation for verification.
std::vector<Q1Row> ReferenceQ1(const storage::Table& lineitem,
                               const Q1Params& params = Q1Params());

// ---------------------------------------------------------------------------
// Q6: forecasting revenue change
// ---------------------------------------------------------------------------

/// Q6 parameters (TPC-H defaults: 1994, discount 0.06 +- 0.01, qty < 24).
struct Q6Params {
  int32_t date_lo = DaysFromDate(1994, 1, 1);
  int32_t date_hi = DaysFromDate(1995, 1, 1);
  double discount_lo = 0.05;
  double discount_hi = 0.07;
  double quantity_hi = 24.0;
};

/// Runs Q6 through the backend's operators: conjunctive selection (5
/// predicates), 2x gather, product, reduction. Returns the revenue sum.
/// When the table uploaded encoded, the selection compares bit-packed codes
/// in place (no decode) and only the surviving price/discount rows
/// materialize through GatherDecode.
double RunQ6(core::Backend& backend, const storage::DeviceTable& lineitem,
             const Q6Params& params = Q6Params());

/// Host reference implementation for verification.
double ReferenceQ6(const storage::Table& lineitem,
                   const Q6Params& params = Q6Params());

/// Fully fused handwritten Q6: selection, projection and aggregation in ONE
/// device kernel — the "expert-written query" upper bound the libraries'
/// chained-operator execution is compared against.
double RunQ6FusedHandwritten(gpusim::Stream& stream,
                             const storage::DeviceTable& lineitem,
                             const Q6Params& params = Q6Params());

// ---------------------------------------------------------------------------
// Q3: shipping priority (join-heavy)
// ---------------------------------------------------------------------------

/// Which join realization a query should ask the backend for.
enum class JoinStrategy {
  kAuto,         ///< hash join if the backend supports it, else nested loops
  kNestedLoops,  ///< force the library realization
  kHash,         ///< force hash join (throws on library backends)
};

/// One result row of Q3 (simplified: grouped by l_orderkey only; o_orderdate
/// and o_shippriority are functionally dependent on it and omitted).
struct Q3Row {
  int32_t orderkey = 0;
  double revenue = 0;
};

/// Q3 parameters (TPC-H defaults: segment BUILDING, date 1995-03-15).
struct Q3Params {
  int32_t segment = 0;  ///< c_mktsegment code
  int32_t date = DaysFromDate(1995, 3, 15);
  size_t limit = 10;
};

/// Runs Q3 through the backend: two selections, a customer-orders join, an
/// orders-lineitem join, projection arithmetic, grouped aggregation, and a
/// sort for the top-k. The joins are where the library/handwritten gap bites.
std::vector<Q3Row> RunQ3(core::Backend& backend,
                         const storage::DeviceTable& customer,
                         const storage::DeviceTable& orders,
                         const storage::DeviceTable& lineitem,
                         const Q3Params& params = Q3Params(),
                         JoinStrategy strategy = JoinStrategy::kAuto);

/// Host reference implementation for verification.
std::vector<Q3Row> ReferenceQ3(const storage::Table& customer,
                               const storage::Table& orders,
                               const storage::Table& lineitem,
                               const Q3Params& params = Q3Params());

// ---------------------------------------------------------------------------
// Q4: order priority checking (semi-join / EXISTS)
// ---------------------------------------------------------------------------

/// One result row of Q4.
struct Q4Row {
  int32_t orderpriority = 0;
  int64_t order_count = 0;
};

/// Q4 parameters (TPC-H defaults: quarter starting 1993-07-01).
struct Q4Params {
  int32_t date_lo = DaysFromDate(1993, 7, 1);
  int32_t date_hi = DaysFromDate(1993, 10, 1);
};

/// Runs Q4: column-column selection (l_commitdate < l_receiptdate), key
/// deduplication (Unique — the semi-join), a join against the filtered
/// orders, and a grouped count. Rows are sorted by priority.
std::vector<Q4Row> RunQ4(core::Backend& backend,
                         const storage::DeviceTable& orders,
                         const storage::DeviceTable& lineitem,
                         const Q4Params& params = Q4Params(),
                         JoinStrategy strategy = JoinStrategy::kAuto);

/// Host reference implementation for verification.
std::vector<Q4Row> ReferenceQ4(const storage::Table& orders,
                               const storage::Table& lineitem,
                               const Q4Params& params = Q4Params());

// ---------------------------------------------------------------------------
// Q14: promotion effect (join + conditional aggregation)
// ---------------------------------------------------------------------------

/// Q14 parameters (TPC-H defaults: month starting 1995-09-01).
struct Q14Params {
  int32_t date_lo = DaysFromDate(1995, 9, 1);
  int32_t date_hi = DaysFromDate(1995, 10, 1);
};

/// Runs Q14: date selection, part-lineitem join, and the CASE-WHEN promo
/// revenue share realized as a second selection over the joined rows.
/// Returns promo_revenue in percent.
double RunQ14(core::Backend& backend, const storage::DeviceTable& part,
              const storage::DeviceTable& lineitem,
              const Q14Params& params = Q14Params(),
              JoinStrategy strategy = JoinStrategy::kAuto);

/// Host reference implementation for verification.
double ReferenceQ14(const storage::Table& part,
                    const storage::Table& lineitem,
                    const Q14Params& params = Q14Params());

}  // namespace tpch

#endif  // TPCH_QUERIES_H_
