// Umbrella header for the Thrust-like library simulation.
#ifndef THRUSTSIM_THRUSTSIM_H_
#define THRUSTSIM_THRUSTSIM_H_

#include "thrustsim/algorithm.h"
#include "thrustsim/device_vector.h"
#include "thrustsim/execution_policy.h"
#include "thrustsim/functional.h"

#endif  // THRUSTSIM_THRUSTSIM_H_
