// thrustsim: a Thrust-compatible API surface over the gpusim device.
//
// Mirrors thrust::device_vector: a device-resident, contiguously allocated
// vector whose construction from host data performs an explicit (priced)
// host-to-device transfer. Iterators are raw device pointers, as in Thrust's
// pointer-based algorithm entry points.
#ifndef THRUSTSIM_DEVICE_VECTOR_H_
#define THRUSTSIM_DEVICE_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "gpusim/memory.h"
#include "thrustsim/execution_policy.h"

namespace thrustsim {

/// Device-resident vector of trivially copyable T (thrust::device_vector).
template <typename T>
class device_vector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  device_vector() = default;

  explicit device_vector(size_t n) : array_(n, device()) {}

  device_vector(size_t n, T value) : array_(n, device()) {
    gpusim::Fill(stream(), array_.data(), n, value);
  }

  /// Uploads a host vector (priced H2D transfer), like
  /// thrust::device_vector's host-container constructor.
  explicit device_vector(const std::vector<T>& host)
      : array_(host.size(), device()) {
    if (!host.empty()) {
      gpusim::CopyHostToDevice(stream(), array_.data(), host.data(),
                               host.size() * sizeof(T));
    }
  }

  device_vector(std::initializer_list<T> init)
      : device_vector(std::vector<T>(init)) {}

  device_vector(device_vector&&) noexcept = default;
  device_vector& operator=(device_vector&&) noexcept = default;

  /// Copy construction performs a priced device-to-device copy.
  device_vector(const device_vector& other) : array_(other.size(), device()) {
    if (other.size() > 0) {
      gpusim::CopyDeviceToDevice(stream(), array_.data(), other.data(),
                                 other.size() * sizeof(T));
    }
  }
  device_vector& operator=(const device_vector& other) {
    if (this != &other) {
      array_ = gpusim::DeviceArray<T>(other.size(), device());
      if (other.size() > 0) {
        gpusim::CopyDeviceToDevice(stream(), array_.data(), other.data(),
                                   other.size() * sizeof(T));
      }
    }
    return *this;
  }

  iterator begin() { return array_.data(); }
  iterator end() { return array_.data() + array_.size(); }
  const_iterator begin() const { return array_.data(); }
  const_iterator end() const { return array_.data() + array_.size(); }
  T* data() { return array_.data(); }
  const T* data() const { return array_.data(); }
  size_t size() const { return array_.size(); }
  bool empty() const { return array_.size() == 0; }

  void resize(size_t n) {
    if (n == array_.size()) return;
    gpusim::DeviceArray<T> next(n, device());
    const size_t keep = std::min(n, array_.size());
    if (keep > 0) {
      gpusim::CopyDeviceToDevice(stream(), next.data(), array_.data(),
                                 keep * sizeof(T));
    }
    array_ = std::move(next);
  }

  /// Downloads the contents to the host (priced D2H transfer).
  std::vector<T> to_host() const {
    std::vector<T> out(array_.size());
    if (!out.empty()) {
      gpusim::CopyDeviceToHost(stream(), out.data(), array_.data(),
                               out.size() * sizeof(T));
    }
    return out;
  }

 private:
  static gpusim::Device& device() { return default_stream().device(); }
  static gpusim::Stream& stream() { return default_stream(); }

  gpusim::DeviceArray<T> array_;
};

}  // namespace thrustsim

#endif  // THRUSTSIM_DEVICE_VECTOR_H_
