// Thrust-style algorithm entry points.
//
// Every algorithm is eager: each call issues its kernels immediately on the
// policy's stream (one transform = one kernel; scans/sorts = their full GPU
// pass structure from gpusim/algorithms.h). This is Thrust's execution model
// and the root of the "chained library calls materialize intermediates"
// effect the paper discusses.
#ifndef THRUSTSIM_ALGORITHM_H_
#define THRUSTSIM_ALGORITHM_H_

#include <cstdint>
#include <iterator>
#include <utility>

#include "gpusim/algorithms.h"
#include "thrustsim/execution_policy.h"
#include "thrustsim/functional.h"

namespace thrustsim {

namespace detail {
template <typename It>
using value_type_of = typename std::iterator_traits<It>::value_type;
}

/// thrust::counting_iterator: a virtual sequence base, base+1, ... that
/// algorithms can read without materializing row ids in device memory.
template <typename T>
struct counting_iterator {
  using value_type = T;
  using difference_type = std::ptrdiff_t;
  using pointer = const T*;
  using reference = T;
  using iterator_category = std::random_access_iterator_tag;

  T base{};

  T operator[](size_t i) const { return base + static_cast<T>(i); }
  T operator*() const { return base; }
  counting_iterator operator+(std::ptrdiff_t d) const {
    return counting_iterator{static_cast<T>(base + d)};
  }
  std::ptrdiff_t operator-(const counting_iterator& o) const {
    return static_cast<std::ptrdiff_t>(base - o.base);
  }
};

template <typename T>
counting_iterator<T> make_counting_iterator(T base) {
  return counting_iterator<T>{base};
}

// --------------------------------------------------------------------------
// transform / for_each / fill / sequence
// --------------------------------------------------------------------------

/// Unary transform: out[i] = op(in[i]).
template <typename InIt, typename OutIt, typename UnaryOp>
OutIt transform(execution_policy policy, InIt first, InIt last, OutIt out,
                UnaryOp op) {
  using T = detail::value_type_of<InIt>;
  using U = detail::value_type_of<OutIt>;
  const size_t n = static_cast<size_t>(last - first);
  gpusim::KernelStats stats;
  stats.name = "thrust::transform";
  stats.bytes_read = n * sizeof(T);
  stats.bytes_written = n * sizeof(U);
  gpusim::ParallelFor(policy.get(), n, stats,
                      [=](size_t i) { out[i] = op(first[i]); });
  return out + n;
}

template <typename InIt, typename OutIt, typename UnaryOp>
OutIt transform(InIt first, InIt last, OutIt out, UnaryOp op) {
  return transform(device, first, last, out, op);
}

/// Binary transform: out[i] = op(a[i], b[i]).
template <typename InIt1, typename InIt2, typename OutIt, typename BinaryOp>
OutIt transform(execution_policy policy, InIt1 first1, InIt1 last1,
                InIt2 first2, OutIt out, BinaryOp op) {
  using T1 = detail::value_type_of<InIt1>;
  using T2 = detail::value_type_of<InIt2>;
  using U = detail::value_type_of<OutIt>;
  const size_t n = static_cast<size_t>(last1 - first1);
  gpusim::KernelStats stats;
  stats.name = "thrust::transform2";
  stats.bytes_read = n * (sizeof(T1) + sizeof(T2));
  stats.bytes_written = n * sizeof(U);
  gpusim::ParallelFor(policy.get(), n, stats,
                      [=](size_t i) { out[i] = op(first1[i], first2[i]); });
  return out + n;
}

template <typename InIt1, typename InIt2, typename OutIt, typename BinaryOp>
OutIt transform(InIt1 first1, InIt1 last1, InIt2 first2, OutIt out,
                BinaryOp op) {
  return transform(device, first1, last1, first2, out, op);
}

/// for_each_n: f(x) for each of the first n elements. Table II uses this to
/// realize the nested-loops join.
template <typename It, typename F>
It for_each_n(execution_policy policy, It first, size_t n, F f) {
  using T = detail::value_type_of<It>;
  gpusim::KernelStats stats;
  stats.name = "thrust::for_each_n";
  stats.bytes_read = n * sizeof(T);
  gpusim::ParallelFor(policy.get(), n, stats, [=](size_t i) { f(first[i]); });
  return first + n;
}

template <typename It, typename F>
It for_each_n(It first, size_t n, F f) {
  return for_each_n(device, first, n, f);
}

/// Like thrust::counting_iterator-driven for_each: f(i) for i in [0, n).
/// Convenience used by join kernels (index-space iteration).
template <typename F>
void for_each_index(execution_policy policy, size_t n, F f,
                    uint64_t extra_read_bytes = 0, uint64_t extra_ops = 0,
                    uint64_t extra_written_bytes = 0) {
  gpusim::KernelStats stats;
  stats.name = "thrust::for_each(counting)";
  stats.bytes_read = extra_read_bytes;
  stats.bytes_written = extra_written_bytes;
  stats.ops = extra_ops;
  gpusim::ParallelFor(policy.get(), n, stats, f);
}

template <typename It, typename T>
void fill(execution_policy policy, It first, It last, T value) {
  gpusim::Fill(policy.get(), &*first, static_cast<size_t>(last - first),
               detail::value_type_of<It>(value));
}

template <typename It, typename T>
void fill(It first, It last, T value) {
  fill(device, first, last, value);
}

template <typename It>
void sequence(execution_policy policy, It first, It last,
              detail::value_type_of<It> start = {}) {
  gpusim::Sequence(policy.get(), &*first, static_cast<size_t>(last - first),
                   start, detail::value_type_of<It>{1});
}

template <typename It>
void sequence(It first, It last, detail::value_type_of<It> start = {}) {
  sequence(device, first, last, start);
}

// --------------------------------------------------------------------------
// copy / gather / scatter
// --------------------------------------------------------------------------

template <typename InIt, typename OutIt>
OutIt copy(execution_policy policy, InIt first, InIt last, OutIt out) {
  using T = detail::value_type_of<InIt>;
  const size_t n = static_cast<size_t>(last - first);
  if (n > 0) {
    gpusim::CopyDeviceToDevice(policy.get(), &*out, &*first, n * sizeof(T));
  }
  return out + n;
}

template <typename InIt, typename OutIt>
OutIt copy(InIt first, InIt last, OutIt out) {
  return copy(device, first, last, out);
}

/// result[i] = input[map[i]].
template <typename MapIt, typename InIt, typename OutIt>
OutIt gather(execution_policy policy, MapIt map_first, MapIt map_last,
             InIt input, OutIt result) {
  const size_t n = static_cast<size_t>(map_last - map_first);
  gpusim::Gather(policy.get(), &*map_first, n, &*input, &*result);
  return result + n;
}

template <typename MapIt, typename InIt, typename OutIt>
OutIt gather(MapIt map_first, MapIt map_last, InIt input, OutIt result) {
  return gather(device, map_first, map_last, input, result);
}

/// result[map[i]] = first[i] where stencil[i] is truthy (thrust::scatter_if).
template <typename InIt, typename MapIt, typename StencilIt, typename OutIt>
void scatter_if(execution_policy policy, InIt first, InIt last, MapIt map,
                StencilIt stencil, OutIt result) {
  using T = detail::value_type_of<InIt>;
  using M = detail::value_type_of<MapIt>;
  using S = detail::value_type_of<StencilIt>;
  const size_t n = static_cast<size_t>(last - first);
  gpusim::KernelStats stats;
  stats.name = "thrust::scatter_if";
  stats.bytes_read = n * (sizeof(M) + sizeof(S));
  stats.bytes_written = n * sizeof(T);
  gpusim::ParallelFor(policy.get(), n, stats, [=](size_t i) {
    if (stencil[i]) result[static_cast<size_t>(map[i])] = first[i];
  });
}

template <typename InIt, typename MapIt, typename StencilIt, typename OutIt>
void scatter_if(InIt first, InIt last, MapIt map, StencilIt stencil,
                OutIt result) {
  scatter_if(device, first, last, map, stencil, result);
}

/// result[map[i]] = input[i].
template <typename InIt, typename MapIt, typename OutIt>
void scatter(execution_policy policy, InIt first, InIt last, MapIt map,
             OutIt result) {
  const size_t n = static_cast<size_t>(last - first);
  gpusim::Scatter(policy.get(), &*first, &*map, n, &*result);
}

template <typename InIt, typename MapIt, typename OutIt>
void scatter(InIt first, InIt last, MapIt map, OutIt result) {
  scatter(device, first, last, map, result);
}

// --------------------------------------------------------------------------
// reduce / counting
// --------------------------------------------------------------------------

template <typename It, typename T, typename BinOp>
T reduce(execution_policy policy, It first, It last, T init, BinOp op) {
  return gpusim::Reduce(policy.get(), &*first,
                        static_cast<size_t>(last - first), init, op,
                        "thrust::reduce");
}

template <typename It, typename T, typename BinOp>
T reduce(It first, It last, T init, BinOp op) {
  return reduce(device, first, last, init, op);
}

template <typename It, typename T>
T reduce(It first, It last, T init) {
  return reduce(device, first, last, init, plus<T>());
}

template <typename It>
detail::value_type_of<It> reduce(It first, It last) {
  using T = detail::value_type_of<It>;
  return reduce(device, first, last, T{}, plus<T>());
}

/// transform_reduce: reduce(op2, map(op1, input)) in two kernels (transform
/// materializes, then tree reduction), as Thrust stages it internally.
template <typename It, typename UnaryOp, typename T, typename BinOp>
T transform_reduce(execution_policy policy, It first, It last, UnaryOp u,
                   T init, BinOp op) {
  const size_t n = static_cast<size_t>(last - first);
  gpusim::DeviceArray<T> tmp(n, policy.get().device());
  using In = detail::value_type_of<It>;
  gpusim::KernelStats stats;
  stats.name = "thrust::transform_reduce(map)";
  stats.bytes_read = n * sizeof(In);
  stats.bytes_written = n * sizeof(T);
  T* t = tmp.data();
  gpusim::ParallelFor(policy.get(), n, stats,
                      [=](size_t i) { t[i] = u(first[i]); });
  return gpusim::Reduce(policy.get(), tmp.data(), n, init, op,
                        "thrust::transform_reduce(reduce)");
}

template <typename It, typename UnaryOp, typename T, typename BinOp>
T transform_reduce(It first, It last, UnaryOp u, T init, BinOp op) {
  return transform_reduce(device, first, last, u, init, op);
}

template <typename It, typename Pred>
size_t count_if(execution_policy policy, It first, It last, Pred pred) {
  return gpusim::CountIf(policy.get(), &*first,
                         static_cast<size_t>(last - first), pred);
}

template <typename It, typename Pred>
size_t count_if(It first, It last, Pred pred) {
  return count_if(device, first, last, pred);
}

// --------------------------------------------------------------------------
// scans
// --------------------------------------------------------------------------

template <typename InIt, typename OutIt, typename T, typename BinOp>
OutIt exclusive_scan(execution_policy policy, InIt first, InIt last, OutIt out,
                     T init, BinOp op) {
  const size_t n = static_cast<size_t>(last - first);
  gpusim::ExclusiveScan(policy.get(), &*first, &*out, n, init, op);
  return out + n;
}

template <typename InIt, typename OutIt, typename T>
OutIt exclusive_scan(InIt first, InIt last, OutIt out, T init) {
  return exclusive_scan(device, first, last, out, init, plus<T>());
}

template <typename InIt, typename OutIt>
OutIt exclusive_scan(InIt first, InIt last, OutIt out) {
  using T = detail::value_type_of<InIt>;
  return exclusive_scan(device, first, last, out, T{}, plus<T>());
}

template <typename InIt, typename OutIt, typename BinOp>
OutIt inclusive_scan(execution_policy policy, InIt first, InIt last, OutIt out,
                     BinOp op) {
  const size_t n = static_cast<size_t>(last - first);
  gpusim::InclusiveScan(policy.get(), &*first, &*out, n, op);
  return out + n;
}

template <typename InIt, typename OutIt>
OutIt inclusive_scan(InIt first, InIt last, OutIt out) {
  using T = detail::value_type_of<InIt>;
  return inclusive_scan(device, first, last, out, plus<T>());
}

// --------------------------------------------------------------------------
// compaction
// --------------------------------------------------------------------------

template <typename InIt, typename OutIt, typename Pred>
OutIt copy_if(execution_policy policy, InIt first, InIt last, OutIt out,
              Pred pred) {
  const size_t n = static_cast<size_t>(last - first);
  const size_t count = gpusim::CopyIf(policy.get(), &*first, n, &*out, pred);
  return out + count;
}

template <typename InIt, typename OutIt, typename Pred>
OutIt copy_if(InIt first, InIt last, OutIt out, Pred pred) {
  return copy_if(device, first, last, out, pred);
}

/// Stencil form: copies value[i] when pred(stencil[i]). Accepts fancy
/// iterators (e.g. counting_iterator) as the value source.
template <typename InIt, typename StencilIt, typename OutIt, typename Pred>
OutIt copy_if(execution_policy policy, InIt first, InIt last,
              StencilIt stencil, OutIt out, Pred pred) {
  using T = detail::value_type_of<InIt>;
  using S = detail::value_type_of<StencilIt>;
  const size_t n = static_cast<size_t>(last - first);
  if (n == 0) return out;
  gpusim::Device& device = policy.get().device();
  gpusim::DeviceArray<uint32_t> flags(n, device);
  gpusim::DeviceArray<uint32_t> positions(n, device);
  {
    gpusim::KernelStats stats;
    stats.name = "thrust::copy_if_stencil(flags)";
    stats.bytes_read = n * sizeof(S);
    stats.bytes_written = n * sizeof(uint32_t);
    uint32_t* f = flags.data();
    gpusim::ParallelFor(policy.get(), n, stats,
                        [=](size_t i) { f[i] = pred(stencil[i]) ? 1u : 0u; });
  }
  gpusim::ExclusiveScan(policy.get(), flags.data(), positions.data(), n,
                        uint32_t{0},
                        [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t last_pos = 0, last_flag = 0;
  gpusim::CopyDeviceToHost(policy.get(), &last_pos,
                           positions.data() + (n - 1), sizeof(uint32_t));
  gpusim::CopyDeviceToHost(policy.get(), &last_flag, flags.data() + (n - 1),
                           sizeof(uint32_t));
  const size_t count = last_pos + last_flag;
  {
    gpusim::KernelStats stats;
    stats.name = "thrust::copy_if_stencil(scatter)";
    stats.bytes_read = n * (sizeof(T) + 2 * sizeof(uint32_t));
    stats.bytes_written = count * sizeof(T);
    const uint32_t* f = flags.data();
    const uint32_t* pos = positions.data();
    gpusim::ParallelFor(policy.get(), n, stats, [=](size_t i) {
      if (f[i]) out[pos[i]] = first[i];
    });
  }
  return out + count;
}

template <typename InIt, typename StencilIt, typename OutIt, typename Pred>
OutIt copy_if(InIt first, InIt last, StencilIt stencil, OutIt out, Pred pred) {
  return copy_if(device, first, last, stencil, out, pred);
}

// --------------------------------------------------------------------------
// sorting / grouping
// --------------------------------------------------------------------------

template <typename It>
void sort(execution_policy policy, It first, It last) {
  gpusim::RadixSortKeys(policy.get(), &*first,
                        static_cast<size_t>(last - first));
}

template <typename It>
void sort(It first, It last) {
  sort(device, first, last);
}

template <typename KeyIt, typename ValIt>
void sort_by_key(execution_policy policy, KeyIt keys_first, KeyIt keys_last,
                 ValIt values_first) {
  gpusim::RadixSortPairs(policy.get(), &*keys_first, &*values_first,
                         static_cast<size_t>(keys_last - keys_first));
}

template <typename KeyIt, typename ValIt>
void sort_by_key(KeyIt keys_first, KeyIt keys_last, ValIt values_first) {
  sort_by_key(device, keys_first, keys_last, values_first);
}

/// reduce_by_key over sorted keys. Returns iterators one past the last
/// written key/value, like Thrust.
template <typename KeyIt, typename ValIt, typename KeyOutIt, typename ValOutIt,
          typename BinOp>
std::pair<KeyOutIt, ValOutIt> reduce_by_key(execution_policy policy,
                                            KeyIt keys_first, KeyIt keys_last,
                                            ValIt values_first,
                                            KeyOutIt keys_out,
                                            ValOutIt values_out, BinOp op) {
  const size_t n = static_cast<size_t>(keys_last - keys_first);
  const size_t groups =
      gpusim::ReduceByKey(policy.get(), &*keys_first, &*values_first, n,
                          &*keys_out, &*values_out, op);
  return {keys_out + groups, values_out + groups};
}

template <typename KeyIt, typename ValIt, typename KeyOutIt, typename ValOutIt>
std::pair<KeyOutIt, ValOutIt> reduce_by_key(KeyIt keys_first, KeyIt keys_last,
                                            ValIt values_first,
                                            KeyOutIt keys_out,
                                            ValOutIt values_out) {
  using V = detail::value_type_of<ValIt>;
  return reduce_by_key(device, keys_first, keys_last, values_first, keys_out,
                       values_out, plus<V>());
}

// --------------------------------------------------------------------------
// Additional Thrust surface: element search, comparison, adjacent ops
// --------------------------------------------------------------------------

/// thrust::inner_product: op1-reduction of op2(a[i], b[i]); Thrust stages it
/// as a transform into a temporary followed by a tree reduction.
template <typename It1, typename It2, typename T, typename Op1, typename Op2>
T inner_product(execution_policy policy, It1 first1, It1 last1, It2 first2,
                T init, Op1 op1, Op2 op2) {
  using A = detail::value_type_of<It1>;
  using B = detail::value_type_of<It2>;
  const size_t n = static_cast<size_t>(last1 - first1);
  gpusim::DeviceArray<T> tmp(n, policy.get().device());
  gpusim::KernelStats stats;
  stats.name = "thrust::inner_product(map)";
  stats.bytes_read = n * (sizeof(A) + sizeof(B));
  stats.bytes_written = n * sizeof(T);
  T* t = tmp.data();
  gpusim::ParallelFor(policy.get(), n, stats,
                      [=](size_t i) { t[i] = op2(first1[i], first2[i]); });
  return gpusim::Reduce(policy.get(), tmp.data(), n, init, op1,
                        "thrust::inner_product(reduce)");
}

template <typename It1, typename It2, typename T>
T inner_product(It1 first1, It1 last1, It2 first2, T init) {
  return inner_product(device, first1, last1, first2, init, plus<T>(),
                       multiplies<T>());
}

/// thrust::adjacent_difference: out[0] = in[0], out[i] = op(in[i], in[i-1]).
template <typename InIt, typename OutIt, typename BinOp>
OutIt adjacent_difference(execution_policy policy, InIt first, InIt last,
                          OutIt out, BinOp op) {
  using T = detail::value_type_of<InIt>;
  const size_t n = static_cast<size_t>(last - first);
  gpusim::KernelStats stats;
  stats.name = "thrust::adjacent_difference";
  stats.bytes_read = 2 * n * sizeof(T);
  stats.bytes_written = n * sizeof(T);
  gpusim::ParallelFor(policy.get(), n, stats, [=](size_t i) {
    out[i] = i == 0 ? first[0] : op(first[i], first[i - 1]);
  });
  return out + n;
}

template <typename InIt, typename OutIt>
OutIt adjacent_difference(InIt first, InIt last, OutIt out) {
  using T = detail::value_type_of<InIt>;
  return adjacent_difference(device, first, last, out, minus<T>());
}

/// thrust::equal: true if the ranges match element-wise.
template <typename It1, typename It2>
bool equal(execution_policy policy, It1 first1, It1 last1, It2 first2) {
  using A = detail::value_type_of<It1>;
  const size_t n = static_cast<size_t>(last1 - first1);
  gpusim::DeviceArray<uint32_t> flags(n, policy.get().device());
  gpusim::KernelStats stats;
  stats.name = "thrust::equal(flags)";
  stats.bytes_read = 2 * n * sizeof(A);
  stats.bytes_written = n * sizeof(uint32_t);
  uint32_t* f = flags.data();
  gpusim::ParallelFor(policy.get(), n, stats, [=](size_t i) {
    f[i] = first1[i] == first2[i] ? 1u : 0u;
  });
  const uint32_t matches = gpusim::Reduce(
      policy.get(), flags.data(), n, uint32_t{0},
      [](uint32_t a, uint32_t b) { return a + b; }, "thrust::equal(reduce)");
  return matches == n;
}

template <typename It1, typename It2>
bool equal(It1 first1, It1 last1, It2 first2) {
  return equal(device, first1, last1, first2);
}

/// thrust::max_element / min_element: iterator to the extremum (first
/// occurrence). Realized as an index-payload reduction.
template <typename It, typename Comp>
It max_element(execution_policy policy, It first, It last, Comp comp) {
  const size_t n = static_cast<size_t>(last - first);
  if (n == 0) return last;
  gpusim::DeviceArray<uint64_t> idx(n, policy.get().device());
  gpusim::KernelStats stats;
  stats.name = "thrust::max_element(iota)";
  stats.bytes_written = n * sizeof(uint64_t);
  uint64_t* ix = idx.data();
  gpusim::ParallelFor(policy.get(), n, stats,
                      [=](size_t i) { ix[i] = i; });
  const uint64_t best = gpusim::Reduce(
      policy.get(), idx.data(), n, uint64_t{0},
      [=](uint64_t a, uint64_t b) {
        if (comp(first[a], first[b])) return b;
        if (comp(first[b], first[a])) return a;
        return a < b ? a : b;  // first occurrence wins
      },
      "thrust::max_element(reduce)");
  return first + best;
}

template <typename It>
It max_element(It first, It last) {
  using T = detail::value_type_of<It>;
  return max_element(device, first, last, less<T>());
}

template <typename It>
It min_element(It first, It last) {
  using T = detail::value_type_of<It>;
  return max_element(device, first, last, greater<T>());
}

/// thrust::replace: substitute old_value with new_value in place.
template <typename It, typename T>
void replace(execution_policy policy, It first, It last, T old_value,
             T new_value) {
  using U = detail::value_type_of<It>;
  const size_t n = static_cast<size_t>(last - first);
  gpusim::KernelStats stats;
  stats.name = "thrust::replace";
  stats.bytes_read = n * sizeof(U);
  stats.bytes_written = n * sizeof(U);
  gpusim::ParallelFor(policy.get(), n, stats, [=](size_t i) {
    if (first[i] == old_value) first[i] = new_value;
  });
}

template <typename It, typename T>
void replace(It first, It last, T old_value, T new_value) {
  replace(device, first, last, old_value, new_value);
}

/// thrust::all_of / any_of / none_of.
template <typename It, typename Pred>
bool all_of(It first, It last, Pred pred) {
  const size_t n = static_cast<size_t>(last - first);
  return gpusim::CountIf(default_stream(), &*first, n, pred) == n;
}

template <typename It, typename Pred>
bool any_of(It first, It last, Pred pred) {
  const size_t n = static_cast<size_t>(last - first);
  return gpusim::CountIf(default_stream(), &*first, n, pred) > 0;
}

template <typename It, typename Pred>
bool none_of(It first, It last, Pred pred) {
  return !any_of(first, last, pred);
}

/// unique over sorted input; returns one past the last unique element.
template <typename It>
It unique(execution_policy policy, It first, It last) {
  using T = detail::value_type_of<It>;
  const size_t n = static_cast<size_t>(last - first);
  gpusim::DeviceArray<T> tmp(n, policy.get().device());
  const size_t count =
      gpusim::UniqueSorted(policy.get(), &*first, n, tmp.data());
  if (count > 0) {
    gpusim::CopyDeviceToDevice(policy.get(), &*first, tmp.data(),
                               count * sizeof(T));
  }
  return first + count;
}

template <typename It>
It unique(It first, It last) {
  return unique(device, first, last);
}

}  // namespace thrustsim

#endif  // THRUSTSIM_ALGORITHM_H_
