// Execution policies (thrust::device / thrust::cuda::par.on(stream)).
//
// thrustsim algorithms execute on a gpusim::Stream with a CUDA API profile.
// The default policy uses a library-wide default stream; par.on(stream)
// targets a caller-provided stream, mirroring Thrust's stream support.
#ifndef THRUSTSIM_EXECUTION_POLICY_H_
#define THRUSTSIM_EXECUTION_POLICY_H_

#include "gpusim/algorithms.h"
#include "gpusim/stream.h"

namespace thrustsim {

/// The library-wide default CUDA stream (thrust's implicit stream 0).
inline gpusim::Stream& default_stream() {
  static gpusim::Stream* stream =
      new gpusim::Stream(gpusim::Device::Default(), gpusim::ApiProfile::Cuda());
  return *stream;
}

/// Execution policy carrying the target stream.
struct execution_policy {
  gpusim::Stream* stream = nullptr;
  gpusim::Stream& get() const { return stream ? *stream : default_stream(); }
};

/// thrust::device analogue: execute on the default stream.
inline constexpr execution_policy device{};

namespace cuda {

/// thrust::cuda::par.on(stream) analogue.
struct par_t {
  execution_policy on(gpusim::Stream& s) const { return execution_policy{&s}; }
};
inline constexpr par_t par{};

}  // namespace cuda
}  // namespace thrustsim

#endif  // THRUSTSIM_EXECUTION_POLICY_H_
