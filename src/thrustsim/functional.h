// Functors mirroring thrust/functional.h.
#ifndef THRUSTSIM_FUNCTIONAL_H_
#define THRUSTSIM_FUNCTIONAL_H_

namespace thrustsim {

template <typename T>
struct plus {
  T operator()(const T& a, const T& b) const { return a + b; }
};

template <typename T>
struct minus {
  T operator()(const T& a, const T& b) const { return a - b; }
};

template <typename T>
struct multiplies {
  T operator()(const T& a, const T& b) const { return a * b; }
};

template <typename T>
struct divides {
  T operator()(const T& a, const T& b) const { return a / b; }
};

template <typename T>
struct bit_and {
  T operator()(const T& a, const T& b) const { return a & b; }
};

template <typename T>
struct bit_or {
  T operator()(const T& a, const T& b) const { return a | b; }
};

template <typename T>
struct maximum {
  T operator()(const T& a, const T& b) const { return a < b ? b : a; }
};

template <typename T>
struct minimum {
  T operator()(const T& a, const T& b) const { return b < a ? b : a; }
};

template <typename T>
struct negate {
  T operator()(const T& a) const { return -a; }
};

template <typename T>
struct identity {
  const T& operator()(const T& a) const { return a; }
};

template <typename T>
struct less {
  bool operator()(const T& a, const T& b) const { return a < b; }
};

template <typename T>
struct greater {
  bool operator()(const T& a, const T& b) const { return b < a; }
};

template <typename T>
struct equal_to {
  bool operator()(const T& a, const T& b) const { return a == b; }
};

template <typename T>
struct not_equal_to {
  bool operator()(const T& a, const T& b) const { return !(a == b); }
};

template <typename T>
struct logical_and {
  bool operator()(const T& a, const T& b) const { return a && b; }
};

template <typename T>
struct logical_or {
  bool operator()(const T& a, const T& b) const { return a || b; }
};

}  // namespace thrustsim

#endif  // THRUSTSIM_FUNCTIONAL_H_
