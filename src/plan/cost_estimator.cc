#include "plan/cost_estimator.h"

#include <algorithm>

#include "backends/backends.h"
#include "gpusim/algorithms.h"

namespace plan {
namespace {

using gpusim::ApiProfile;
using gpusim::CostModel;

bool Is(const std::string& b, const char* name) { return b == name; }

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

uint64_t Tiles(uint64_t n) {
  return gpusim::detail::NumTiles(std::max<uint64_t>(n, 1));
}

// At the scale factors the paper measures, most kernels finish in the
// launch-overhead shadow, so estimates must count launches the way the
// simulated primitives actually issue them — not just bytes moved.

uint64_t Kern(const CostModel* m, const ApiProfile& api, uint64_t read,
              uint64_t written, uint64_t ops = 0) {
  gpusim::KernelStats s;
  s.bytes_read = read;
  s.bytes_written = written;
  s.ops = ops;
  return m->KernelTime(s, api);
}

uint64_t Xfer(const CostModel* m, const ApiProfile& api, uint64_t bytes) {
  return m->TransferTime(bytes, api);
}

uint64_t Copy(const CostModel* m, const ApiProfile& api, uint64_t bytes) {
  return m->DeviceCopyTime(bytes, api);
}

/// gpusim::ExclusiveScan / InclusiveScan: per-tile scan kernel, then a
/// recursive scan of the tile totals plus a uniform-add kernel when more
/// than one tile exists (3 launches for 1k < n <= 1M).
uint64_t ScanCost(const CostModel* m, const ApiProfile& api, uint64_t n,
                  uint64_t elem) {
  const uint64_t tiles = Tiles(n);
  uint64_t t = Kern(m, api, n * elem, (n + tiles) * elem, n);
  if (tiles > 1) {
    t += ScanCost(m, api, tiles, elem);
    t += Kern(m, api, (n + tiles) * elem, n * elem, n);
  }
  return t;
}

/// gpusim::Reduce: per-tile partials kernel, then folds of the partials
/// until one value remains, then a single-element D2H readback.
uint64_t ReduceCost(const CostModel* m, const ApiProfile& api, uint64_t n,
                    uint64_t elem) {
  uint64_t t = Kern(m, api, n * elem, Tiles(n) * elem, n);
  uint64_t left = Tiles(n);
  while (left > 1) {
    t += Kern(m, api, left * elem, Tiles(left) * elem, left);
    left = Tiles(left);
  }
  return t + Xfer(m, api, elem);
}

/// gpusim::RadixSort{Keys,Pairs}: encode to sortable bits, then one
/// histogram + counts-scan + scatter round per key byte (4 rounds for
/// 32-bit keys, 8 for 64-bit keys — doubles sort twice as many passes),
/// then decode. val_bytes == 0 models the keys-only variant.
uint64_t RadixSortCost(const CostModel* m, const ApiProfile& api, uint64_t n,
                       uint64_t key_bytes, uint64_t val_bytes) {
  const uint64_t u = key_bytes <= 4 ? 4 : 8;  // sortable-bits width
  const uint64_t tiles = Tiles(n);
  uint64_t t = Kern(m, api, n * key_bytes, n * u, n);  // encode
  const uint64_t per_pass = Kern(m, api, n * u, tiles * 256 * 4, n) +
                            ScanCost(m, api, tiles * 256, 4) +
                            Kern(m, api, n * (u + val_bytes),
                                 n * (u + val_bytes), n);
  t += u * per_pass;
  t += Kern(m, api, n * u, n * key_bytes, n);  // decode
  return t;
}

/// gpusim::ReduceByKey over sorted runs: head-flags kernel, inclusive scan
/// of segment ids, a 4-byte count readback, then seed + combine kernels.
uint64_t ReduceByKeyCost(const CostModel* m, const ApiProfile& api, uint64_t n,
                         uint64_t groups, uint64_t key_bytes,
                         uint64_t val_bytes) {
  return Kern(m, api, 2 * n * key_bytes, n * 4, n) + ScanCost(m, api, n, 4) +
         Xfer(m, api, 4) +
         Kern(m, api, n * (key_bytes + val_bytes + 8),
              groups * (key_bytes + val_bytes), n) +
         Kern(m, api, n * (val_bytes + 8), groups * val_bytes, 2 * n);
}

/// Flags kernel + exclusive scan + two 4-byte count readbacks + scatter:
/// the compaction tail shared by copy_if-style selections and unique.
uint64_t CompactTailCost(const CostModel* m, const ApiProfile& api, uint64_t n,
                         uint64_t out_rows, uint64_t out_elem) {
  return ScanCost(m, api, n, 4) + 2 * Xfer(m, api, 4) +
         Kern(m, api, n * 8, out_rows * out_elem, n);
}

}  // namespace

gpusim::ApiProfile CostEstimator::ProfileFor(const std::string& backend) {
  if (backend == backends::kBoostCompute) return gpusim::ApiProfile::OpenCl();
  return gpusim::ApiProfile::Cuda();
}

uint64_t CostEstimator::K(const gpusim::ApiProfile& api, uint64_t read,
                          uint64_t written, uint64_t ops,
                          uint64_t serial_ns) const {
  gpusim::KernelStats s;
  s.bytes_read = read;
  s.bytes_written = written;
  s.ops = ops;
  s.serial_ns = serial_ns;
  return model_->KernelTime(s, api);
}

uint64_t CostEstimator::D2H(const gpusim::ApiProfile& api,
                            uint64_t bytes) const {
  return model_->TransferTime(bytes, api);
}

uint64_t CostEstimator::D2D(const gpusim::ApiProfile& api,
                            uint64_t bytes) const {
  return model_->DeviceCopyTime(bytes, api);
}

uint64_t CostEstimator::Select(const std::string& b, size_t n, size_t m,
                               uint64_t bpr, size_t k) const {
  const auto api = ProfileFor(b);
  const uint64_t per_col = k ? bpr / k : bpr;
  if (Is(b, backends::kHandwritten)) {
    // memset counter + ONE fused predicate kernel + 4B count D2H + shrink.
    return K(api, 0, 4) + K(api, n * bpr, n * 4, n * k) + D2H(api, 4) +
           D2D(api, m * 4);
  }
  if (Is(b, backends::kArrayFire)) {
    // where() per predicate: JIT evaluation of the boolean expression, then
    // the flags/scan/readback/scatter compaction; (k-1) sorted-set
    // intersections merge the per-predicate index sets.
    const uint64_t one_where =
        3 * kAfJitNodeOverheadNs + K(api, n * per_col, n, n) +
        K(api, n, n * 4, n) + CompactTailCost(model_, api, n, m, 4);
    uint64_t t = k * one_where;
    if (k > 1) t += (k - 1) * (3 * K(api, n * 4, n * 4) + D2H(api, 4));
    return t;
  }
  // Thrust / Boost.Compute: per-predicate transform into flag vectors,
  // bitwise combines, then the scan/readback/scatter compaction tail.
  uint64_t t = k * K(api, n * per_col, n * 4, n);
  if (k > 1) t += (k - 1) * K(api, n * 8, n * 4, n);
  t += CompactTailCost(model_, api, n, m, 4);
  if (Is(b, backends::kBoostCompute)) t += (k + 1) * Compile(api);
  return t;
}

uint64_t CostEstimator::SelectCompare(const std::string& b, size_t n, size_t m,
                                      uint64_t elem_bytes) const {
  const auto api = ProfileFor(b);
  if (Is(b, backends::kHandwritten)) {
    return K(api, 0, 4) + K(api, n * 2 * elem_bytes, n * 4, n) + D2H(api, 4) +
           D2D(api, m * 4);
  }
  if (Is(b, backends::kArrayFire)) {
    return 3 * kAfJitNodeOverheadNs + K(api, n * 2 * elem_bytes, n, n) +
           K(api, n, n * 4, n) + CompactTailCost(model_, api, n, m, 4);
  }
  uint64_t t = K(api, n * 2 * elem_bytes, n * 4, n) +
               CompactTailCost(model_, api, n, m, 4);
  if (Is(b, backends::kBoostCompute)) t += 2 * Compile(api);
  return t;
}

uint64_t CostEstimator::Gather(const std::string& b, size_t m,
                               uint64_t elem_bytes) const {
  const auto api = ProfileFor(b);
  uint64_t t = K(api, m * (4 + elem_bytes), m * elem_bytes, m);
  if (Is(b, backends::kArrayFire)) t += kAfJitNodeOverheadNs;
  if (Is(b, backends::kBoostCompute)) t += Compile(api);
  return t;
}

uint64_t CostEstimator::GatherDecode(const std::string& b, size_t m,
                                     uint64_t encoded_elem_bytes,
                                     uint64_t decoded_elem_bytes) const {
  // One fused kernel: read the row ids + the packed payload of each
  // survivor, decode (shift/mask or dictionary lookup — a few ops per
  // element), write decoded values. Library backends without the fused
  // kernel still issue a single gather-shaped launch over the packed data.
  const auto api = ProfileFor(b);
  uint64_t t = K(api, m * (4 + encoded_elem_bytes), m * decoded_elem_bytes,
                 4 * m);
  if (Is(b, backends::kArrayFire)) t += kAfJitNodeOverheadNs;
  if (Is(b, backends::kBoostCompute)) t += Compile(api);
  return t;
}

uint64_t CostEstimator::DecodeColumn(const std::string& b, size_t n,
                                     uint64_t encoded_bytes,
                                     uint64_t decoded_bytes) const {
  // Full-column materialization: read the packed payload once, write the
  // decoded column, a few decode ops per element.
  const auto api = ProfileFor(b);
  uint64_t t = K(api, encoded_bytes, decoded_bytes, 4 * n);
  if (Is(b, backends::kBoostCompute)) t += Compile(api);
  return t;
}

uint64_t CostEstimator::Map(const std::string& b, size_t n,
                            uint64_t elem_bytes, int inputs) const {
  const auto api = ProfileFor(b);
  uint64_t t = K(api, n * inputs * elem_bytes, n * elem_bytes, n);
  if (Is(b, backends::kArrayFire)) t += 2 * kAfJitNodeOverheadNs;
  if (Is(b, backends::kBoostCompute)) t += Compile(api);
  return t;
}

uint64_t CostEstimator::Join(const std::string& b, JoinAlgo algo,
                             size_t n_build, size_t n_probe, size_t m) const {
  const auto api = ProfileFor(b);
  if (algo == JoinAlgo::kHash) {
    // Only the handwritten backend realizes this: table fill over the
    // next-pow2 capacity + CAS build + probe with atomic ticketing + count
    // D2H + pair shrinks.
    const uint64_t cap = NextPow2(2 * std::max<uint64_t>(n_build, 8));
    return K(api, 0, cap * 8) +
           K(api, n_build * 4, n_build * 8, 2 * n_build) + K(api, 0, 4) +
           K(api, n_probe * 12, n_probe * 8, 3 * n_probe) + D2H(api, 4) +
           2 * D2D(api, m * 4);
  }
  const uint64_t quad = static_cast<uint64_t>(n_probe) * n_build;
  if (Is(b, backends::kArrayFire)) {
    // No relational join: a host loop issuing where(probe == key) per build
    // row — a full JIT + compaction pipeline and a host readback each time.
    const uint64_t per_row = kAfJitNodeOverheadNs +
                             K(api, n_probe * 4, n_probe, n_probe) +
                             K(api, n_probe, n_probe * 4, n_probe) +
                             CompactTailCost(model_, api, n_probe, 16, 4) +
                             D2H(api, 64);
    return n_build * per_row + D2H(api, n_build * 4);
  }
  if (Is(b, backends::kHandwritten)) {
    // count kernel + positions scan + 2 count readbacks + fill kernel +
    // pair shrinks: the quadratic scan runs twice.
    return K(api, n_probe * 4 + quad * 4, n_probe * 4, quad) +
           ScanCost(model_, api, n_probe, 4) + 2 * D2H(api, 4) +
           K(api, n_probe * 4 + quad * 4, m * 8, quad) + 2 * D2D(api, m * 4);
  }
  // Thrust / Boost.Compute: memset counter + ONE ticketed quadratic
  // for_each + count D2H + pair shrinks.
  uint64_t t = K(api, 0, 4) + K(api, n_probe * 4 + quad * 4, m * 8, quad) +
               D2H(api, 4) + 2 * D2D(api, m * 4);
  if (Is(b, backends::kBoostCompute)) t += Compile(api);
  return t;
}

uint64_t CostEstimator::GroupBy(const std::string& b, size_t n, size_t groups,
                                uint64_t val_bytes) const {
  const auto api = ProfileFor(b);
  const uint64_t g = std::max<size_t>(groups, 1);
  if (Is(b, backends::kHandwritten)) {
    // Hash aggregation sized for the worst case (no group-count hint):
    // capacity = next-pow2(2n). Key/value fills + one atomic accumulate
    // pass + slot flags + scan over capacity + count readbacks + compaction
    // + aggregate conversion.
    const uint64_t cap = NextPow2(2 * std::max<uint64_t>(n, 8));
    return K(api, 0, cap * 4) + K(api, 0, cap * val_bytes) +
           K(api, n * (4 + val_bytes), n * (val_bytes + 8), 4 * n) +
           K(api, cap * 4, cap * 4, cap) + ScanCost(model_, api, cap, 4) +
           2 * D2H(api, 4) +
           K(api, cap * (4 + val_bytes + 8), g * (4 + val_bytes), cap) +
           D2D(api, g * 4) + K(api, g * val_bytes, g * 8, g);
  }
  // Library route (Table II): copy keys and values, radix sort_by_key on
  // 32-bit keys, reduce_by_key over the sorted runs, shrink + convert.
  uint64_t t = D2D(api, n * 4) + D2D(api, n * val_bytes) +
               RadixSortCost(model_, api, n, 4, val_bytes) +
               ReduceByKeyCost(model_, api, n, g, 4, val_bytes) +
               D2D(api, g * 4) + K(api, g * val_bytes, g * 8, g);
  if (Is(b, backends::kArrayFire)) {
    // Shrink evaluations of the keys/values views plus the cast to f64.
    t += 2 * K(api, g * (4 + val_bytes), g * (4 + val_bytes)) +
         4 * kAfJitNodeOverheadNs;
  }
  if (Is(b, backends::kBoostCompute)) t += 2 * Compile(api);
  return t;
}

uint64_t CostEstimator::Reduce(const std::string& b, size_t n,
                               uint64_t elem_bytes) const {
  const auto api = ProfileFor(b);
  uint64_t t = ReduceCost(model_, api, n, elem_bytes);
  if (Is(b, backends::kArrayFire)) t += kAfJitNodeOverheadNs;
  if (Is(b, backends::kBoostCompute)) t += Compile(api);
  return t;
}

uint64_t CostEstimator::Sort(const std::string& b, size_t n,
                             uint64_t elem_bytes) const {
  const auto api = ProfileFor(b);
  uint64_t t = D2D(api, n * elem_bytes) +
               RadixSortCost(model_, api, n, elem_bytes, 0);
  if (Is(b, backends::kBoostCompute)) t += Compile(api);
  return t;
}

uint64_t CostEstimator::SortByKey(const std::string& b, size_t n,
                                  uint64_t key_bytes,
                                  uint64_t val_bytes) const {
  const auto api = ProfileFor(b);
  uint64_t t = D2D(api, n * key_bytes) + D2D(api, n * val_bytes) +
               RadixSortCost(model_, api, n, key_bytes, val_bytes);
  if (Is(b, backends::kBoostCompute)) t += Compile(api);
  return t;
}

uint64_t CostEstimator::Unique(const std::string& b, size_t n, size_t m,
                               uint64_t elem_bytes) const {
  // Sort + unique-sorted (head flags + compaction) + final shrink copy.
  const auto api = ProfileFor(b);
  return Sort(b, n, elem_bytes) + K(api, 2 * n * elem_bytes, n * 4, n) +
         CompactTailCost(model_, api, n, m, elem_bytes) +
         D2D(api, m * elem_bytes);
}

uint64_t CostEstimator::FetchGroups(const std::string& b, size_t groups,
                                    uint64_t agg_bytes) const {
  const auto api = ProfileFor(b);
  return D2H(api, groups * 4) + D2H(api, groups * agg_bytes);
}

uint64_t CostEstimator::FetchPair(const std::string& b, size_t n) const {
  const auto api = ProfileFor(b);
  return D2H(api, n * 8) + D2H(api, n * 4);
}

uint64_t CostEstimator::FusedMap(size_t n) const {
  const auto api = gpusim::ApiProfile::Cuda();
  return K(api, n * 16, n * 8, 2 * n);
}

uint64_t CostEstimator::FusedFilterSum(size_t n, uint64_t bytes_per_row) const {
  const auto api = gpusim::ApiProfile::Cuda();
  const uint64_t tiles = Tiles(n);
  return K(api, n * bytes_per_row, tiles * 8, 2 * n) + K(api, tiles * 8, 8) +
         D2H(api, 8);
}

uint64_t CostEstimator::BoundaryTransfer(const std::string& consumer,
                                         uint64_t bytes) const {
  return D2D(ProfileFor(consumer), bytes);
}

uint64_t CostEstimator::Exchange(const std::string& b, uint64_t bytes) const {
  return D2H(ProfileFor(b), bytes);  // one PCIe hop, either direction
}

}  // namespace plan
