// Logical query-plan IR.
//
// A Plan is a small operator DAG over device-resident table columns. Nodes
// are stored in insertion order and the executor runs them strictly in that
// order, so a plan whose nodes were inserted in the same order as a
// hand-coded query's backend calls replays the *identical* call sequence —
// the property the golden timing-equivalence tests pin (a plan pinned to one
// backend must charge a bit-identical simulated timeline).
//
// The optimizer (plan/optimizer.h) rewrites plans in place: merged or fused
// nodes keep their slot (stable node ids) and consumed intermediates are
// marked dead rather than erased, which preserves both execution order and
// the node references held by result extractors.
#ifndef PLAN_IR_H_
#define PLAN_IR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.h"
#include "storage/device_column.h"

namespace plan {

/// Operator kinds. kFusedMap / kFusedFilterSum exist only after the
/// optimizer's fusion rewrites (hybrid plans); logical builders never emit
/// them.
enum class NodeKind {
  kScan,           ///< base-table column reference (no device work)
  kFilter,         ///< 1..k predicates, conjunctive or disjunctive
  kFilterCompare,  ///< column-vs-column predicate (e.g. Q4's commit < receipt)
  kGather,         ///< materialize src[indices]
  kMap,            ///< element-wise arithmetic (product / +- scalar)
  kJoin,           ///< equi-join, build side unique (PK)
  kUnique,         ///< distinct values (semi-join build side)
  kGroupBy,        ///< grouped aggregation
  kReduce,         ///< full-column reduction to a host scalar
  kSort,           ///< ascending sort
  kSortByKey,      ///< key-value sort
  kFetchGroups,    ///< download a GroupBy result (keys then aggregate)
  kFetchPair,      ///< download a SortByKey result (first then second)
  kFusedMap,       ///< a*(alpha-b) or a*(b+alpha) in one kernel (rewrite)
  kFusedFilterSum, ///< filter+project+sum in one pass (rewrite)
  // Exchange operators (multi-device plans; see plan/exchange.h). In a
  // single-stream executor they charge the priced transfer on the executing
  // stream; the sharded runner realizes them as actual per-device uploads /
  // partial downloads routed over DeviceGroup links.
  kExchangeScatter,   ///< ship one shard's slice host -> its device
  kExchangeGather,    ///< collect one device's partials back to the host
  kExchangeBroadcast, ///< replicate a small build side to one device
};

const char* NodeKindName(NodeKind kind);

/// Element-wise arithmetic ops for kMap.
enum class MapOp {
  kMul,            ///< out[i] = a[i] * b[i]
  kAddScalar,      ///< out[i] = a[i] + alpha
  kSubFromScalar,  ///< out[i] = alpha - a[i]
};

/// Join algorithm; kAuto is resolved by the optimizer per assigned backend
/// (hash when Realization(kHashJoin) != kNone, else nested loops — the same
/// rule the hand-coded queries apply).
enum class JoinAlgo { kAuto, kNestedLoops, kHash };

/// Which output of a producer node an edge consumes.
enum class Part {
  kValue,          ///< the node's column (scan/gather/map/unique/fused map)
  kRowIds,         ///< a selection's matching row ids
  kLeftRows,       ///< a join's build-side row ids
  kRightRows,      ///< a join's probe-side row ids
  kGroupKeys,      ///< a group-by's key column
  kGroupAggregate, ///< a group-by's aggregate column
  kPairFirst,      ///< a sort-by-key's sorted keys
  kPairSecond,     ///< a sort-by-key's reordered values
};

/// An edge: output `part` of node `node`.
struct NodeInput {
  int node = -1;
  Part part = Part::kValue;
};

/// One plan node. Only the fields relevant to `kind` are meaningful.
struct PlanNode {
  NodeKind kind = NodeKind::kScan;
  std::string label;  ///< short human-readable tag for EXPLAIN output

  // kScan. Exactly one of scan_col / scan_enc is set: a table column lives
  // on the device either raw or encoded (storage/encoded_column.h), and the
  // executor picks the encoded-domain operator realizations when scan_enc
  // feeds a filter, gather, or reduce.
  std::string table, column;
  const storage::DeviceColumn* scan_col = nullptr;
  const storage::EncodedDeviceColumn* scan_enc = nullptr;

  // kFilter: pred_cols[i] produces the column pred[i] applies to.
  std::vector<NodeInput> pred_cols;
  std::vector<core::Predicate> preds;
  bool conjunctive = true;
  /// Chained filter this one refines (-1 = none). The optimizer folds
  /// conjunctive chains into one multi-predicate node; the executor refuses
  /// unmerged chains.
  int filter_source = -1;

  // kFilterCompare
  NodeInput cmp_lhs, cmp_rhs;
  core::CompareOp cmp_op = core::CompareOp::kLt;

  // kGather
  NodeInput gather_src, gather_indices;

  // kMap / kFusedMap. kMul uses (map_a, map_b); scalar forms use map_a and
  // alpha. kFusedMap computes map_a * (alpha - map_b) for kSubFromScalar or
  // map_a * (map_b + alpha) for kAddScalar (fused_inner names the folded op).
  MapOp map_op = MapOp::kMul;
  NodeInput map_a, map_b;
  double alpha = 0.0;
  MapOp fused_inner = MapOp::kSubFromScalar;

  // kJoin
  NodeInput join_build, join_probe;
  JoinAlgo join_algo = JoinAlgo::kAuto;

  // kUnique / kSort / kReduce / kGroupBy / kSortByKey
  NodeInput unary_in;            ///< unique/sort/reduce input column
  NodeInput group_keys, group_values;
  core::AggOp agg = core::AggOp::kSum;
  NodeInput sort_keys, sort_values;

  // kFetchGroups / kFetchPair
  NodeInput fetch_from;  ///< the group-by / sort-by-key node (node id only)

  // kFusedFilterSum: sum over rows i of the filter domain where the
  // predicates hold of value_a[i] (* value_b[i] when value_b is set).
  NodeInput fused_value_a, fused_value_b;
  bool fused_has_b = false;

  // kExchangeScatter / kExchangeGather / kExchangeBroadcast. `exch_device`
  // names the remote end (the host is always the other); `exch_bytes` /
  // `exch_rows` size the payload for costing and EXPLAIN. Gather may name a
  // producer edge via exch_in (exch_in.node == -1 when the payload is
  // described by bytes alone).
  int exch_device = 0;
  uint64_t exch_bytes = 0;
  size_t exch_rows = 0;
  NodeInput exch_in;

  /// Guard: when set (>= 0), the node (and transitively its consumers) is
  /// skipped unless the guard node produced a non-zero result — a group-by
  /// with > 0 groups or a reduction with a non-zero scalar. Mirrors the
  /// hand-coded queries' host-side early exits (Q3, Q14).
  int guard = -1;

  /// Set by optimizer rewrites when this node's work was absorbed by another
  /// node. Dead nodes keep their slot (stable ids) but are never executed.
  bool dead = false;
};

/// A query plan: nodes in insertion (execution) order.
struct Plan {
  std::vector<PlanNode> nodes;

  int Add(PlanNode node) {
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
  }

  // -- Builder helpers (each returns the new node's id) ---------------------

  int Scan(std::string table, std::string column,
           const storage::DeviceColumn& col) {
    PlanNode n;
    n.kind = NodeKind::kScan;
    n.table = std::move(table);
    n.column = std::move(column);
    n.scan_col = &col;
    n.label = n.table + "." + n.column;
    return Add(std::move(n));
  }

  int ScanEncoded(std::string table, std::string column,
                  const storage::EncodedDeviceColumn& col) {
    PlanNode n;
    n.kind = NodeKind::kScan;
    n.table = std::move(table);
    n.column = std::move(column);
    n.scan_enc = &col;
    n.label = n.table + "." + n.column;
    return Add(std::move(n));
  }

  /// Scans `column` however the device table holds it — encoded when an
  /// encoded-resident copy exists, raw otherwise. Plan builders use this so
  /// the same builder works over raw and encoded uploads.
  int Scan(std::string table, std::string column,
           const storage::DeviceTable& from) {
    if (from.HasEncoded(column)) {
      return ScanEncoded(std::move(table), column, from.encoded(column));
    }
    return Scan(std::move(table), column, from.column(column));
  }

  int Filter(NodeInput col, core::Predicate pred, int source = -1) {
    PlanNode n;
    n.kind = NodeKind::kFilter;
    n.pred_cols = {col};
    n.label = "Filter(" + pred.column + ")";
    n.preds = {std::move(pred)};
    n.filter_source = source;
    return Add(std::move(n));
  }

  int FilterCompare(NodeInput lhs, core::CompareOp op, NodeInput rhs,
                    std::string label) {
    PlanNode n;
    n.kind = NodeKind::kFilterCompare;
    n.cmp_lhs = lhs;
    n.cmp_rhs = rhs;
    n.cmp_op = op;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int Gather(NodeInput src, NodeInput indices, std::string label) {
    PlanNode n;
    n.kind = NodeKind::kGather;
    n.gather_src = src;
    n.gather_indices = indices;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int Map(MapOp op, NodeInput a, NodeInput b, double alpha,
          std::string label) {
    PlanNode n;
    n.kind = NodeKind::kMap;
    n.map_op = op;
    n.map_a = a;
    n.map_b = b;
    n.alpha = alpha;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int Join(NodeInput build, NodeInput probe, std::string label,
           JoinAlgo algo = JoinAlgo::kAuto) {
    PlanNode n;
    n.kind = NodeKind::kJoin;
    n.join_build = build;
    n.join_probe = probe;
    n.join_algo = algo;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int Unique(NodeInput in, std::string label) {
    PlanNode n;
    n.kind = NodeKind::kUnique;
    n.unary_in = in;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int GroupBy(NodeInput keys, NodeInput values, core::AggOp agg,
              std::string label) {
    PlanNode n;
    n.kind = NodeKind::kGroupBy;
    n.group_keys = keys;
    n.group_values = values;
    n.agg = agg;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int Reduce(NodeInput in, core::AggOp agg, std::string label,
             int guard = -1) {
    PlanNode n;
    n.kind = NodeKind::kReduce;
    n.unary_in = in;
    n.agg = agg;
    n.label = std::move(label);
    n.guard = guard;
    return Add(std::move(n));
  }

  int SortByKey(NodeInput keys, NodeInput values, std::string label,
                int guard = -1) {
    PlanNode n;
    n.kind = NodeKind::kSortByKey;
    n.sort_keys = keys;
    n.sort_values = values;
    n.label = std::move(label);
    n.guard = guard;
    return Add(std::move(n));
  }

  int FetchGroups(int group_by_node) {
    PlanNode n;
    n.kind = NodeKind::kFetchGroups;
    n.fetch_from = NodeInput{group_by_node, Part::kGroupKeys};
    n.label = "FetchGroups";
    return Add(std::move(n));
  }

  int ExchangeScatter(int dst_device, uint64_t bytes, size_t rows,
                      std::string label) {
    PlanNode n;
    n.kind = NodeKind::kExchangeScatter;
    n.exch_device = dst_device;
    n.exch_bytes = bytes;
    n.exch_rows = rows;
    n.exch_in.node = -1;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int ExchangeGather(int src_device, uint64_t bytes, size_t rows,
                     std::string label, NodeInput from = NodeInput{}) {
    PlanNode n;
    n.kind = NodeKind::kExchangeGather;
    n.exch_device = src_device;
    n.exch_bytes = bytes;
    n.exch_rows = rows;
    n.exch_in = from;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int ExchangeBroadcast(int dst_device, uint64_t bytes, size_t rows,
                        std::string label) {
    PlanNode n;
    n.kind = NodeKind::kExchangeBroadcast;
    n.exch_device = dst_device;
    n.exch_bytes = bytes;
    n.exch_rows = rows;
    n.exch_in.node = -1;
    n.label = std::move(label);
    return Add(std::move(n));
  }

  int FetchPair(int sort_by_key_node) {
    PlanNode n;
    n.kind = NodeKind::kFetchPair;
    n.fetch_from = NodeInput{sort_by_key_node, Part::kPairFirst};
    n.label = "FetchPair";
    return Add(std::move(n));
  }
};

/// The device-work inputs of a node (excludes guards), in evaluation order.
std::vector<NodeInput> NodeInputs(const PlanNode& node);

}  // namespace plan

#endif  // PLAN_IR_H_
