// Plan-cache fingerprints.
//
// A cached physical plan is only reusable when everything the optimizer
// looked at is unchanged: the query shape (which query, with which
// parameters, over raw or encoded residency), the table statistics (row
// counts, per-column types and encoding choices — cardinalities drive both
// cost-based dispatch and the footprint estimate), the backend the plan was
// pinned to, and the device count it was laid out for. These helpers reduce
// each of those to a stable 64-bit fingerprint; serve/plan_cache.h composes
// them into the cache key. Eiger (PAPERS.md) motivates the idea: repeated
// query shapes should reuse optimization decisions instead of paying the
// optimizer per request.
#ifndef PLAN_FINGERPRINT_H_
#define PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "plan/partition.h"
#include "storage/device_column.h"
#include "storage/table.h"
#include "tpch/queries.h"

namespace plan {

/// Everything that identifies "the same query" for plan reuse: the query,
/// its parameters, and whether it runs against encoded residency (encoded
/// tables take different operator paths). Only the parameter struct of
/// `query` enters the hash.
struct QueryShape {
  TpchQuery query = TpchQuery::kQ1;
  tpch::Q1Params q1;
  tpch::Q3Params q3;
  tpch::Q4Params q4;
  tpch::Q6Params q6;
  tpch::Q14Params q14;
  bool use_encoding = false;
};

/// Stable hash of the shape (FNV-1a over the discriminating fields).
uint64_t QueryShapeHash(const QueryShape& shape);

/// Stable fingerprint of one resident table's statistics: per-column (in the
/// host table's insertion order) the name, logical type, row count, and —
/// when the column is resident encoded — the encoding kind, bit width, and
/// encoded byte size. Any change that could alter the optimizer's choices
/// (row count, encoding decision, added/dropped column) changes the value.
uint64_t TableStatsFingerprint(const storage::Table& host,
                               const storage::DeviceTable& resident);

/// Order-sensitive combiner for multi-table fingerprints (fold the
/// per-table values in a fixed table order).
uint64_t CombineFingerprint(uint64_t seed, uint64_t value);

/// Full plan-cache key: shape x stats x backend x device layout.
struct PlanCacheKey {
  uint64_t shape_hash = 0;
  uint64_t stats_fingerprint = 0;
  std::string backend;
  int device_count = 1;

  bool operator==(const PlanCacheKey& o) const {
    return shape_hash == o.shape_hash &&
           stats_fingerprint == o.stats_fingerprint && backend == o.backend &&
           device_count == o.device_count;
  }
};

struct PlanCacheKeyHash {
  size_t operator()(const PlanCacheKey& k) const;
};

}  // namespace plan

#endif  // PLAN_FINGERPRINT_H_
