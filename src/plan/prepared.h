// Resident tables and prepared (cacheable) query plans.
//
// The one-shot execution paths (plan/partition.h) upload tables, build and
// optimize a plan, run it, and throw everything away. A serving process
// amortizes all of that: tables upload once and stay device-resident across
// requests ("Accelerating Presto with GPUs", PAPERS.md), and an optimized
// physical plan over those resident tables is reusable for every later
// request with the same shape — a PreparedTpchQuery, the value stored in the
// serving tier's plan cache.
//
// Lifetime is the safety argument: a physical plan binds raw pointers to the
// DeviceColumns it scans, so a PreparedTpchQuery co-owns its
// ResidentTpchTables via shared_ptr. A stale plan — one prepared against a
// residency generation that has since been replaced — keeps its own tables
// alive and merely computes against the old (consistent) snapshot; dangling
// reuse is impossible by construction. The plan cache additionally drops
// stale entries eagerly (serve/plan_cache.h) so lookups never return them.
#ifndef PLAN_PREPARED_H_
#define PLAN_PREPARED_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/backend.h"
#include "gpusim/stream.h"
#include "plan/fingerprint.h"
#include "plan/optimizer.h"
#include "plan/partition.h"
#include "plan/tpch_plans.h"
#include "storage/device_column.h"

namespace plan {

/// Device-resident TPC-H tables plus the statistics fingerprint of what was
/// uploaded. Immutable after MakeResident — plan nodes hold pointers into
/// the DeviceTables, so the struct is only handed out as shared_ptr<const>.
struct ResidentTpchTables {
  storage::DeviceTable lineitem;
  storage::DeviceTable orders;
  storage::DeviceTable customer;
  storage::DeviceTable part;
  bool has_orders = false;
  bool has_customer = false;
  bool has_part = false;
  bool encoded = false;          ///< uploaded via UploadTableEncoded
  uint64_t uploaded_bytes = 0;   ///< bytes that crossed the link
  uint64_t resident_bytes = 0;   ///< device bytes the residency occupies
  /// Combined TableStatsFingerprint over the resident tables, folded in the
  /// fixed order lineitem, orders, customer, part.
  uint64_t stats_fingerprint = 0;
};

/// Uploads every non-null table of `host` on `stream` (encoded when
/// `use_encoding`) and fingerprints the result. Lineitem is required.
std::shared_ptr<const ResidentTpchTables> MakeResident(
    gpusim::Stream& stream, const TpchHostTables& host, bool use_encoding);

/// An optimized physical plan bound to resident tables, ready for repeated
/// execution. Run() is const and thread-safe: concurrent scheduler clients
/// may execute the same prepared query simultaneously (RunPinned keeps all
/// mutable state per call).
class PreparedTpchQuery {
 public:
  PreparedTpchQuery(QueryShape shape,
                    std::shared_ptr<const ResidentTpchTables> tables,
                    QueryPlanBundle bundle, PhysicalPlan physical);

  /// Executes the cached physical plan on `backend` (no optimizer, no
  /// upload) and extracts the query result.
  TpchQueryResult Run(core::Backend& backend) const;

  const QueryShape& shape() const { return shape_; }
  const PhysicalPlan& physical() const { return physical_; }
  const std::shared_ptr<const ResidentTpchTables>& tables() const {
    return tables_;
  }
  /// Admission footprint of one execution: intermediates only — the scanned
  /// base tables are already resident and charge nothing per run.
  uint64_t footprint_bytes() const { return footprint_bytes_; }

 private:
  QueryShape shape_;
  std::shared_ptr<const ResidentTpchTables> tables_;
  QueryPlanBundle bundle_;
  PhysicalPlan physical_;
  uint64_t footprint_bytes_ = 0;
};

/// The cache-miss path: builds the shape's logical plan over the resident
/// tables (with the shape's parameters) and optimizes it pinned to
/// `backend_name`. Throws std::invalid_argument when the shape's query needs
/// a table the residency does not hold.
std::shared_ptr<const PreparedTpchQuery> PrepareTpchQuery(
    const QueryShape& shape,
    std::shared_ptr<const ResidentTpchTables> tables,
    const std::string& backend_name);

}  // namespace plan

#endif  // PLAN_PREPARED_H_
