#include "plan/partition.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "gpusim/device.h"
#include "gpusim/trace.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/partition_detail.h"
#include "plan/tpch_plans.h"
#include "storage/device_column.h"
#include "storage/encoded_column.h"
#include "storage/encoding.h"

namespace plan {
namespace detail {

bool NeedsOrders(TpchQuery q) {
  return q == TpchQuery::kQ3 || q == TpchQuery::kQ4;
}
bool NeedsCustomer(TpchQuery q) { return q == TpchQuery::kQ3; }
bool NeedsPart(TpchQuery q) { return q == TpchQuery::kQ14; }

void RequireTables(TpchQuery q, const TpchHostTables& tables) {
  auto require = [&](const storage::Table* t, const char* name) {
    if (t == nullptr) {
      throw std::invalid_argument(std::string(TpchQueryName(q)) +
                                  " requires the " + name + " table");
    }
  };
  require(tables.lineitem, "lineitem");
  if (NeedsOrders(q)) require(tables.orders, "orders");
  if (NeedsCustomer(q)) require(tables.customer, "customer");
  if (NeedsPart(q)) require(tables.part, "part");
}

QueryPlanBundle BuildBundle(TpchQuery q, const storage::DeviceTable& lineitem,
                            const storage::DeviceTable& orders,
                            const storage::DeviceTable& customer,
                            const storage::DeviceTable& part) {
  switch (q) {
    case TpchQuery::kQ1:
      return BuildQ1Plan(lineitem);
    case TpchQuery::kQ3:
      return BuildQ3Plan(customer, orders, lineitem);
    case TpchQuery::kQ4:
      return BuildQ4Plan(orders, lineitem);
    case TpchQuery::kQ6:
      return BuildQ6Plan(lineitem);
    case TpchQuery::kQ14:
      return BuildQ14Plan(part, lineitem);
  }
  throw std::logic_error("unknown TpchQuery");
}

}  // namespace detail

using namespace detail;  // the shared helpers read naturally unqualified

namespace {

/// A device table whose columns carry type and row count but no storage —
/// enough for plan building and cost estimation, with zero device traffic.
storage::DeviceTable MetaTable(const storage::Table& table, size_t rows) {
  storage::DeviceTable out;
  for (const std::string& name : table.column_names()) {
    out.AddColumn(name, storage::DeviceColumn(
                            table.column(name).type(), rows,
                            std::make_shared<gpusim::DeviceBuffer>()));
  }
  return out;
}

/// Like MetaTable, but sized as UploadTableEncoded would upload it: columns
/// whose ChooseEncoding beats raw become metadata-only encoded columns. The
/// whole-table encoding decision is reused for slices (per-slice bytes scale
/// by row count at the whole-table code width), so a K-partition footprint
/// prices slice uploads without re-analyzing K sub-columns.
storage::DeviceTable MetaTableEncoded(const storage::Table& table,
                                      size_t rows) {
  storage::DeviceTable out;
  const size_t n = table.num_rows();
  for (const std::string& name : table.column_names()) {
    const storage::Column& c = table.column(name);
    const storage::EncodingChoice choice =
        storage::ChooseEncoding(storage::AnalyzeColumn(c), n, c.type());
    if (choice.encoding == storage::Encoding::kNone) {
      out.AddColumn(name, storage::DeviceColumn(
                              c.type(), rows,
                              std::make_shared<gpusim::DeviceBuffer>()));
      continue;
    }
    uint64_t bytes = 0;
    switch (choice.encoding) {
      case storage::Encoding::kBitPack:
      case storage::Encoding::kFor:
        bytes = storage::PackedWordCount(rows, choice.bit_width) * 8;
        break;
      case storage::Encoding::kDictionary: {
        // The dictionary itself is a fixed cost every slice repeats.
        const uint64_t full_packed =
            storage::PackedWordCount(n, choice.bit_width) * 8;
        const uint64_t dict_bytes =
            choice.encoded_bytes > full_packed
                ? choice.encoded_bytes - full_packed
                : 0;
        bytes = storage::PackedWordCount(rows, choice.bit_width) * 8 +
                dict_bytes;
        break;
      }
      case storage::Encoding::kRle:
        // Runs scale with row count to first order.
        bytes = n == 0 ? 8
                       : std::max<uint64_t>(
                             8, choice.encoded_bytes * rows / n);
        break;
      case storage::Encoding::kNone:
        break;
    }
    out.AddEncodedColumn(
        name, std::make_shared<storage::EncodedDeviceColumn>(
                  storage::MakeEncodedMeta(choice.encoding, c.type(), rows,
                                           choice.bit_width, bytes)));
  }
  return out;
}

}  // namespace

namespace detail {

/// Host-side row-range copy [lo, hi) of every column.
storage::Table SliceTable(const storage::Table& table, size_t lo, size_t hi) {
  storage::Table out(table.name());
  for (const std::string& name : table.column_names()) {
    const storage::Column& c = table.column(name);
    switch (c.type()) {
      case storage::DataType::kInt32: {
        const auto& v = c.values<int32_t>();
        out.AddColumn(name, storage::Column(std::vector<int32_t>(
                                v.begin() + lo, v.begin() + hi)));
        break;
      }
      case storage::DataType::kInt64: {
        const auto& v = c.values<int64_t>();
        out.AddColumn(name, storage::Column(std::vector<int64_t>(
                                v.begin() + lo, v.begin() + hi)));
        break;
      }
      case storage::DataType::kFloat64: {
        const auto& v = c.values<double>();
        out.AddColumn(name, storage::Column(std::vector<double>(
                                v.begin() + lo, v.begin() + hi)));
        break;
      }
      case storage::DataType::kFloat32: {
        const auto& v = c.values<float>();
        out.AddColumn(name, storage::Column(std::vector<float>(
                                v.begin() + lo, v.begin() + hi)));
        break;
      }
    }
  }
  return out;
}

/// K+1 partition boundaries over lineitem. With `align_orderkey`, each
/// boundary moves forward to the next l_orderkey change point, so no order's
/// lineitems straddle two partitions (the generator emits them contiguously
/// with nondecreasing keys) — which keeps per-partition group-key sets
/// disjoint for Q3's group-by and Q4's semi-join. Pure function of (rows,
/// keys, k): partition shapes — and with them simulated timings — replay.
std::vector<size_t> PartitionBounds(const storage::Table& lineitem, size_t k,
                                    bool align_orderkey) {
  const size_t n = lineitem.num_rows();
  const std::vector<int32_t>* keys =
      align_orderkey ? &lineitem.column("l_orderkey").values<int32_t>()
                     : nullptr;
  std::vector<size_t> bounds{0};
  for (size_t p = 1; p < k; ++p) {
    size_t b = std::min(n, n * p / k);
    if (keys != nullptr) {
      while (b > 0 && b < n && (*keys)[b] == (*keys)[b - 1]) ++b;
    }
    bounds.push_back(std::max(b, bounds.back()));
  }
  bounds.push_back(n);
  return bounds;
}

/// Worst-case device footprint of one pinned plan execution: upload bytes of
/// every scanned column plus materialized intermediates with row counts
/// propagated pessimistically (filters and joins pass every row), each
/// rounded to the allocator's block granularity. The x2 headroom covers
/// operator scratch the plan does not name — hash-table fills (2n slots),
/// sort ping-pong buffers, selection scan temporaries — and applies to the
/// intermediates only: base-table uploads are exact (and encoded scans are
/// priced at their encoded size, the whole point of compressed admission).
/// An encoded scan consumed by an operator with no encoded-domain
/// realization additionally contributes one full raw decode as an
/// intermediate, mirroring the executor's ColDecoded fallback.
///
/// With include_scans false the base-table upload terms drop out — the
/// admission footprint of a plan over *already-resident* tables (the serving
/// tier's prepared queries), where only the intermediates are new bytes.
uint64_t FootprintOfPlan(const PhysicalPlan& phys, bool include_scans) {
  const std::vector<PlanNode>& nodes = phys.plan.nodes;
  std::vector<size_t> rows(nodes.size(), 0);
  std::vector<size_t> width(nodes.size(), 0);
  std::unordered_set<const storage::DeviceColumn*> scanned;
  std::unordered_set<const storage::EncodedDeviceColumn*> scanned_enc;
  uint64_t scan_bytes = 0;
  uint64_t intermediate_bytes = 0;

  const auto block = [](uint64_t b) -> uint64_t {
    return b == 0 ? 0 : gpusim::Device::PoolBlockBytes(b);
  };
  const auto in_rows = [&](const NodeInput& in) -> size_t {
    return in.node >= 0 ? rows[in.node] : 0;
  };
  const auto in_width = [&](const NodeInput& in) -> size_t {
    return in.node >= 0 ? width[in.node] : sizeof(double);
  };

  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& n = nodes[i];
    if (n.dead) continue;
    switch (n.kind) {
      case NodeKind::kScan:
        if (n.scan_enc != nullptr) {
          rows[i] = n.scan_enc->size;
          width[i] = storage::DataTypeSize(n.scan_enc->type);
          if (scanned_enc.insert(n.scan_enc).second) {
            scan_bytes += block(n.scan_enc->encoded_byte_size());
          }
          break;
        }
        rows[i] = n.scan_col != nullptr ? n.scan_col->size() : 0;
        width[i] = n.scan_col != nullptr
                       ? storage::DataTypeSize(n.scan_col->type())
                       : sizeof(int32_t);
        if (n.scan_col != nullptr && scanned.insert(n.scan_col).second) {
          scan_bytes += block(n.scan_col->byte_size());
        }
        break;
      case NodeKind::kFilter:
        rows[i] = n.pred_cols.empty() ? 0 : in_rows(n.pred_cols[0]);
        width[i] = sizeof(int32_t);  // matching row ids
        intermediate_bytes += block(rows[i] * width[i]);
        break;
      case NodeKind::kFilterCompare:
        rows[i] = in_rows(n.cmp_lhs);
        width[i] = sizeof(int32_t);
        intermediate_bytes += block(rows[i] * width[i]);
        break;
      case NodeKind::kGather:
        rows[i] = in_rows(n.gather_indices);
        width[i] = in_width(n.gather_src);
        intermediate_bytes += block(rows[i] * width[i]);
        break;
      case NodeKind::kMap:
      case NodeKind::kFusedMap:
        rows[i] = in_rows(n.map_a);
        width[i] = sizeof(double);
        intermediate_bytes += block(rows[i] * width[i]);
        break;
      case NodeKind::kJoin:
        // Build sides are unique keys, so each probe row matches at most
        // once: output is two int32 row-id columns of probe length.
        rows[i] = in_rows(n.join_probe);
        width[i] = sizeof(int32_t);
        intermediate_bytes += 2 * block(rows[i] * sizeof(int32_t));
        break;
      case NodeKind::kUnique:
        rows[i] = in_rows(n.unary_in);
        width[i] = in_width(n.unary_in);
        intermediate_bytes += block(rows[i] * width[i]);
        break;
      case NodeKind::kGroupBy:
        rows[i] = in_rows(n.group_keys);
        width[i] = sizeof(double);  // consumers mostly read the aggregate
        intermediate_bytes += block(rows[i] * sizeof(int32_t)) +
                              block(rows[i] * sizeof(double));
        break;
      case NodeKind::kSort:
        rows[i] = in_rows(n.unary_in);
        width[i] = in_width(n.unary_in);
        intermediate_bytes += block(rows[i] * width[i]);
        break;
      case NodeKind::kSortByKey:
        rows[i] = in_rows(n.sort_keys);
        width[i] = sizeof(double);
        intermediate_bytes += block(rows[i] * sizeof(double)) +
                              block(rows[i] * sizeof(int32_t));
        break;
      case NodeKind::kReduce:
      case NodeKind::kFusedFilterSum:
        rows[i] = 1;
        width[i] = sizeof(double);
        break;
      case NodeKind::kFetchGroups:
      case NodeKind::kFetchPair:
        rows[i] = in_rows(n.fetch_from);  // host download, no device bytes
        break;
      case NodeKind::kExchangeScatter:
      case NodeKind::kExchangeBroadcast:
        // Shard/broadcast payload lands as device-resident input.
        rows[i] = n.exch_rows;
        width[i] = n.exch_rows > 0
                       ? static_cast<size_t>(n.exch_bytes / n.exch_rows)
                       : sizeof(int32_t);
        intermediate_bytes += block(n.exch_bytes);
        break;
      case NodeKind::kExchangeGather:
        rows[i] = n.exch_rows;  // host-bound download, no device bytes
        break;
    }
  }

  // Encoded scans feeding operators without an encoded realization decode in
  // full on first use (the executor caches one raw copy).
  std::unordered_set<const storage::EncodedDeviceColumn*> decoded;
  for (const PlanNode& n : nodes) {
    if (n.dead || n.kind == NodeKind::kScan) continue;
    const bool encoded_aware = n.kind == NodeKind::kFilter ||
                               n.kind == NodeKind::kFilterCompare ||
                               n.kind == NodeKind::kReduce;
    for (const NodeInput& in : NodeInputs(n)) {
      if (in.node < 0 || in.part != Part::kValue) continue;
      const PlanNode& src = nodes[in.node];
      if (src.kind != NodeKind::kScan || src.scan_enc == nullptr) continue;
      if (encoded_aware) continue;
      if (n.kind == NodeKind::kGather && in.node == n.gather_src.node) {
        continue;  // GatherDecode materializes survivors only
      }
      if (decoded.insert(src.scan_enc).second) {
        intermediate_bytes += block(src.scan_enc->raw_byte_size());
      }
    }
  }
  return (include_scans ? scan_bytes : 0) + 2 * intermediate_bytes;
}

}  // namespace detail

namespace {

void Emit(const GovernedQueryOptions& options, gpusim::Stream& stream,
          PressureEvent::Kind kind, std::string detail, uint64_t bytes,
          size_t partitions) {
  gpusim::Tracer* tracer = stream.device().tracer();
  if (tracer != nullptr) {
    gpusim::TraceEvent e;
    e.name = std::string(PressureEventKindName(kind)) + ": " + detail;
    e.category = "memory";
    e.start_ns = stream.now_ns();
    e.stream_id = stream.id();
    tracer->Record(std::move(e));
  }
  if (!options.on_event) return;
  PressureEvent event;
  event.kind = kind;
  event.detail = std::move(detail);
  event.bytes = bytes;
  event.partitions = partitions;
  options.on_event(event);
}

}  // namespace

namespace detail {

void Accumulate(TpchQuery q, const QueryPlanBundle& bundle,
                const ExecutionResult& res, Partials& acc) {
  switch (q) {
    case TpchQuery::kQ1:
      acc.q1.Merge(ExtractQ1Partials(bundle, res));
      break;
    case TpchQuery::kQ3: {
      const std::vector<tpch::Q3Row> groups = ExtractQ3Groups(bundle, res);
      acc.q3_groups.insert(acc.q3_groups.end(), groups.begin(), groups.end());
      break;
    }
    case TpchQuery::kQ4:
      for (const tpch::Q4Row& row : ExtractQ4(bundle, res)) {
        acc.q4_counts[row.orderpriority] += row.order_count;
      }
      break;
    case TpchQuery::kQ6:
      acc.q6_sum += ExtractQ6(bundle, res);
      break;
    case TpchQuery::kQ14: {
      const NodeValue& total = res.values[bundle.marks.at("total")];
      const NodeValue& promo = res.values[bundle.marks.at("promo")];
      if (total.computed) acc.q14_total += total.scalar;
      if (promo.computed) acc.q14_promo += promo.scalar;
      break;
    }
  }
}

void MergePartials(TpchQuery q, Partials& acc, const Partials& other) {
  switch (q) {
    case TpchQuery::kQ1:
      acc.q1.Merge(other.q1);
      break;
    case TpchQuery::kQ3:
      acc.q3_groups.insert(acc.q3_groups.end(), other.q3_groups.begin(),
                           other.q3_groups.end());
      break;
    case TpchQuery::kQ4:
      for (const auto& [prio, count] : other.q4_counts) {
        acc.q4_counts[prio] += count;
      }
      break;
    case TpchQuery::kQ6:
      acc.q6_sum += other.q6_sum;
      break;
    case TpchQuery::kQ14:
      acc.q14_total += other.q14_total;
      acc.q14_promo += other.q14_promo;
      break;
  }
}

TpchQueryResult Finalize(TpchQuery q, Partials acc) {
  TpchQueryResult r;
  switch (q) {
    case TpchQuery::kQ1:
      r.q1 = FinalizeQ1(acc.q1);
      break;
    case TpchQuery::kQ3:
      r.q3 = FinalizeQ3(std::move(acc.q3_groups), tpch::Q3Params());
      break;
    case TpchQuery::kQ4:
      for (const auto& [prio, count] : acc.q4_counts) {
        r.q4.push_back(tpch::Q4Row{prio, count});
      }
      break;
    case TpchQuery::kQ6:
      r.scalar = acc.q6_sum;
      break;
    case TpchQuery::kQ14:
      r.scalar = acc.q14_total == 0.0
                     ? 0.0
                     : 100.0 * acc.q14_promo / acc.q14_total;
      break;
  }
  return r;
}

/// Host bytes the marked fetch/reduce nodes downloaded from the device.
uint64_t DownloadedBytes(const QueryPlanBundle& bundle,
                         const ExecutionResult& res) {
  uint64_t bytes = 0;
  for (const auto& [name, node] : bundle.marks) {
    const NodeValue& v = res.values[node];
    if (!v.computed) continue;
    bytes += v.host_keys.size() * sizeof(int32_t) +
             v.host_vals_f.size() * sizeof(double) +
             v.host_vals_i.size() * sizeof(int64_t) +
             v.host_first.size() * sizeof(double) +
             v.host_second.size() * sizeof(int32_t);
    if (bundle.plan.nodes[node].kind == NodeKind::kReduce) {
      bytes += sizeof(double);  // the scalar itself comes down
    }
  }
  return bytes;
}

uint64_t HostTableBytes(const storage::Table& t) {
  uint64_t bytes = 0;
  for (const std::string& name : t.column_names()) {
    bytes += t.column(name).byte_size();
  }
  return bytes;
}

}  // namespace detail

namespace {

/// One execution attempt at a fixed partition count. Throws
/// gpusim::OutOfDeviceMemory when K is still too coarse for the live memory
/// state; the caller owns the repartitioning ladder.
TpchQueryResult RunAttempt(TpchQuery q, const TpchHostTables& tables,
                           core::Backend& backend, size_t k,
                           const GovernedQueryOptions& options,
                           GovernedRunStats& stats) {
  gpusim::Stream& stream = backend.stream();
  OptimizerOptions opt;
  opt.pin_backend = backend.name();

  const auto upload = [&](const storage::Table& t,
                          uint64_t* bytes = nullptr) {
    return options.use_encoding ? storage::UploadTableEncoded(stream, t, bytes)
                                : storage::UploadTable(stream, t);
  };

  storage::DeviceTable orders, customer, part;
  if (NeedsOrders(q)) orders = upload(*tables.orders);
  if (NeedsCustomer(q)) customer = upload(*tables.customer);
  if (NeedsPart(q)) part = upload(*tables.part);

  if (k <= 1) {
    // Unpartitioned: byte-for-byte the ordinary upload + pinned-plan run.
    const storage::DeviceTable lineitem = upload(*tables.lineitem);
    const QueryPlanBundle bundle =
        BuildBundle(q, lineitem, orders, customer, part);
    const PhysicalPlan phys = Optimize(bundle.plan, opt);
    const ExecutionResult res = RunPinned(phys, backend);
    TpchQueryResult r;
    switch (q) {
      case TpchQuery::kQ1:
        r.q1 = ExtractQ1(bundle, res);
        break;
      case TpchQuery::kQ3:
        r.q3 = ExtractQ3(bundle, res, tpch::Q3Params());
        break;
      case TpchQuery::kQ4:
        r.q4 = ExtractQ4(bundle, res);
        break;
      case TpchQuery::kQ6:
        r.scalar = ExtractQ6(bundle, res);
        break;
      case TpchQuery::kQ14:
        r.scalar = ExtractQ14(bundle, res);
        break;
    }
    return r;
  }

  const bool align = NeedsOrders(q);  // q3/q4 group or join on l_orderkey
  const std::vector<size_t> bounds =
      PartitionBounds(*tables.lineitem, k, align);
  Partials acc;
  for (size_t p = 0; p + 1 < bounds.size(); ++p) {
    const size_t lo = bounds[p];
    const size_t hi = bounds[p + 1];
    if (lo >= hi) continue;  // orderkey alignment emptied this range
    const storage::Table slice = SliceTable(*tables.lineitem, lo, hi);
    // Slice upload, per-partition plan, partial extraction; the slice's
    // device memory is freed (credited back to the reservation) when the
    // scope ends, before the next slice uploads. With encoding on, the
    // slice crosses the link (and counts as spill) at its encoded size.
    uint64_t slice_bytes = 0;
    const storage::DeviceTable lineitem = upload(slice, &slice_bytes);
    if (!options.use_encoding) slice_bytes = HostTableBytes(slice);
    const QueryPlanBundle bundle =
        BuildBundle(q, lineitem, orders, customer, part);
    const PhysicalPlan phys = Optimize(bundle.plan, opt);
    const ExecutionResult res = RunPinned(phys, backend);
    Accumulate(q, bundle, res, acc);
    const uint64_t down = DownloadedBytes(bundle, res);
    stats.spill_h2d_bytes += slice_bytes;
    stats.spill_d2h_bytes += down;
    Emit(options, stream, PressureEvent::Kind::kSpill,
         "partition " + std::to_string(p) + "/" + std::to_string(k) +
             " rows [" + std::to_string(lo) + ", " + std::to_string(hi) +
             ") h2d " + std::to_string(slice_bytes) + " B, d2h " +
             std::to_string(down) + " B",
         slice_bytes + down, k);
  }
  return Finalize(q, std::move(acc));
}

}  // namespace

const char* TpchQueryName(TpchQuery query) {
  switch (query) {
    case TpchQuery::kQ1: return "q1";
    case TpchQuery::kQ3: return "q3";
    case TpchQuery::kQ4: return "q4";
    case TpchQuery::kQ6: return "q6";
    case TpchQuery::kQ14: return "q14";
  }
  return "?";
}

TpchQuery ParseTpchQuery(const std::string& name) {
  if (name == "q1") return TpchQuery::kQ1;
  if (name == "q3") return TpchQuery::kQ3;
  if (name == "q4") return TpchQuery::kQ4;
  if (name == "q6") return TpchQuery::kQ6;
  if (name == "q14") return TpchQuery::kQ14;
  throw std::invalid_argument("unknown TPC-H query '" + name +
                              "' (expected q1|q3|q4|q6|q14)");
}

const char* PressureEventKindName(PressureEvent::Kind kind) {
  switch (kind) {
    case PressureEvent::Kind::kAdmission: return "admission";
    case PressureEvent::Kind::kPartition: return "partition";
    case PressureEvent::Kind::kSpill: return "spill";
    case PressureEvent::Kind::kFallback: return "fallback";
  }
  return "?";
}

uint64_t EstimateQueryFootprint(TpchQuery query, const TpchHostTables& tables,
                                const std::string& backend_name,
                                size_t partitions, bool use_encoding) {
  RequireTables(query, tables);
  if (partitions == 0) partitions = 1;
  const auto meta = [&](const storage::Table& t, size_t rows) {
    return use_encoding ? MetaTableEncoded(t, rows) : MetaTable(t, rows);
  };
  const size_t li_rows = tables.lineitem->num_rows();
  const size_t slice_rows = (li_rows + partitions - 1) / partitions;
  const storage::DeviceTable lineitem = meta(*tables.lineitem, slice_rows);
  storage::DeviceTable orders, customer, part;
  if (NeedsOrders(query)) {
    orders = meta(*tables.orders, tables.orders->num_rows());
  }
  if (NeedsCustomer(query)) {
    customer = meta(*tables.customer, tables.customer->num_rows());
  }
  if (NeedsPart(query)) {
    part = meta(*tables.part, tables.part->num_rows());
  }
  const QueryPlanBundle bundle =
      BuildBundle(query, lineitem, orders, customer, part);
  OptimizerOptions opt;
  opt.pin_backend = backend_name;
  return FootprintOfPlan(Optimize(bundle.plan, opt));
}

TpchQueryResult RunGoverned(TpchQuery query, const TpchHostTables& tables,
                            core::Backend& backend,
                            const GovernedQueryOptions& options,
                            GovernedRunStats* stats) {
  RequireTables(query, tables);
  gpusim::Stream& stream = backend.stream();
  gpusim::Device& device = stream.device();
  const size_t max_k =
      options.max_partitions == 0 ? 256 : options.max_partitions;

  GovernedRunStats local;
  GovernedRunStats& st = stats != nullptr ? *stats : local;
  st = GovernedRunStats();

  const uint64_t footprint = EstimateQueryFootprint(
      query, tables, backend.name(), 1, options.use_encoding);
  const uint64_t grant = device.ReservationRemaining(stream.id());
  const uint64_t budget = grant > 0 ? grant : device.memory_capacity();
  st.footprint_bytes = footprint;
  st.grant_bytes = grant;

  size_t k = 1;
  if (options.force_partitions > 0) {
    k = options.force_partitions;
  } else {
    while (k < max_k &&
           EstimateQueryFootprint(query, tables, backend.name(), k,
                                  options.use_encoding) > budget) {
      k *= 2;
    }
    k = std::min(k, max_k);
  }
  Emit(options, stream, PressureEvent::Kind::kAdmission,
       std::string(TpchQueryName(query)) + " footprint " +
           std::to_string(footprint) + " B, budget " +
           std::to_string(budget) + " B (" +
           (grant > 0 ? "granted" : "ungoverned") + ") -> " +
           std::to_string(k) + " partition(s)",
       budget, k);

  // Bind this thread's allocations to the stream's admission reservation
  // (no-op without one): every pool-miss upload/intermediate below draws
  // from the grant instead of racing concurrent clients for capacity.
  gpusim::Device::ReservationScope scope(device, stream.id());
  const uint64_t sim_start = stream.now_ns();
  for (;;) {
    if (k > 1) {
      Emit(options, stream, PressureEvent::Kind::kPartition,
           std::string(TpchQueryName(query)) + " executing in " +
               std::to_string(k) + " row-range partitions",
           0, k);
    }
    try {
      st.spill_h2d_bytes = 0;  // an abandoned attempt's traffic is not spill
      st.spill_d2h_bytes = 0;
      TpchQueryResult result =
          RunAttempt(query, tables, backend, k, options, st);
      st.partitions = k;
      st.simulated_ns = stream.now_ns() - sim_start;
      return result;
    } catch (const gpusim::OutOfDeviceMemory&) {
      device.TrimPool();
      if (options.force_partitions > 0 || k >= max_k) throw;
      k = std::min(max_k, k * 2);
      ++st.oom_fallbacks;
      Emit(options, stream, PressureEvent::Kind::kFallback,
           std::string(TpchQueryName(query)) +
               " hit device OOM; repartitioning to " + std::to_string(k),
           0, k);
    }
  }
}

core::QueryFn MakeGovernedQuery(TpchQuery query, TpchHostTables tables,
                                GovernedQueryOptions options,
                                TpchQueryResult* out,
                                GovernedRunStats* stats) {
  return [query, tables, options = std::move(options), out,
          stats](core::Backend& backend) {
    TpchQueryResult result =
        RunGoverned(query, tables, backend, options, stats);
    if (out != nullptr) *out = std::move(result);
  };
}

}  // namespace plan
