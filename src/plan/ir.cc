#include "plan/ir.h"

namespace plan {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kScan: return "Scan";
    case NodeKind::kFilter: return "Filter";
    case NodeKind::kFilterCompare: return "FilterCompare";
    case NodeKind::kGather: return "Gather";
    case NodeKind::kMap: return "Map";
    case NodeKind::kJoin: return "Join";
    case NodeKind::kUnique: return "Unique";
    case NodeKind::kGroupBy: return "GroupBy";
    case NodeKind::kReduce: return "Reduce";
    case NodeKind::kSort: return "Sort";
    case NodeKind::kSortByKey: return "SortByKey";
    case NodeKind::kFetchGroups: return "FetchGroups";
    case NodeKind::kFetchPair: return "FetchPair";
    case NodeKind::kFusedMap: return "FusedMap";
    case NodeKind::kFusedFilterSum: return "FusedFilterSum";
    case NodeKind::kExchangeScatter: return "ExchangeScatter";
    case NodeKind::kExchangeGather: return "ExchangeGather";
    case NodeKind::kExchangeBroadcast: return "ExchangeBroadcast";
  }
  return "?";
}

std::vector<NodeInput> NodeInputs(const PlanNode& node) {
  std::vector<NodeInput> in;
  switch (node.kind) {
    case NodeKind::kScan:
      break;
    case NodeKind::kFilter:
      in = node.pred_cols;
      if (node.filter_source >= 0) {
        in.push_back(NodeInput{node.filter_source, Part::kRowIds});
      }
      break;
    case NodeKind::kFilterCompare:
      in = {node.cmp_lhs, node.cmp_rhs};
      break;
    case NodeKind::kGather:
      in = {node.gather_src, node.gather_indices};
      break;
    case NodeKind::kMap:
      in = {node.map_a};
      if (node.map_op == MapOp::kMul) in.push_back(node.map_b);
      break;
    case NodeKind::kFusedMap:
      in = {node.map_a, node.map_b};
      break;
    case NodeKind::kJoin:
      in = {node.join_build, node.join_probe};
      break;
    case NodeKind::kUnique:
    case NodeKind::kSort:
    case NodeKind::kReduce:
      in = {node.unary_in};
      break;
    case NodeKind::kGroupBy:
      in = {node.group_keys, node.group_values};
      break;
    case NodeKind::kSortByKey:
      in = {node.sort_keys, node.sort_values};
      break;
    case NodeKind::kFetchGroups:
    case NodeKind::kFetchPair:
      in = {node.fetch_from};
      break;
    case NodeKind::kFusedFilterSum:
      in = node.pred_cols;
      in.push_back(node.fused_value_a);
      if (node.fused_has_b) in.push_back(node.fused_value_b);
      break;
    case NodeKind::kExchangeScatter:
    case NodeKind::kExchangeBroadcast:
      break;  // payload comes from the host
    case NodeKind::kExchangeGather:
      if (node.exch_in.node >= 0) in = {node.exch_in};
      break;
  }
  return in;
}

}  // namespace plan
