// Per-backend operator cost estimates for the plan optimizer.
//
// Each estimate mirrors the command sequence the named backend's binding
// actually issues for the operator (kernels, host<->device transfers,
// program compiles) and prices it with the same gpusim::CostModel the
// simulator charges at run time, under the backend's ApiProfile (CUDA-style
// for Thrust/ArrayFire/Handwritten, OpenCL-style for Boost.Compute). The
// estimates drive per-operator backend dispatch; they do not need to be
// exact, but they must preserve the orderings the paper measured (e.g.
// hand-written fused selection beats transform+scan+scatter chains, nested
// loops explode quadratically, OpenCL pays per-program compiles).
#ifndef PLAN_COST_ESTIMATOR_H_
#define PLAN_COST_ESTIMATOR_H_

#include <cstdint>
#include <string>

#include "gpusim/device.h"
#include "plan/ir.h"

namespace plan {

/// ArrayFire-style lazy-JIT bookkeeping overhead per expression node
/// (mirrors afsim::kJitNodeOverheadNs).
inline constexpr uint64_t kAfJitNodeOverheadNs = 700;

class CostEstimator {
 public:
  explicit CostEstimator(gpusim::Device& device = gpusim::Device::Default())
      : model_(&device.cost_model()) {}

  /// API profile a backend's stream runs under ("Boost.Compute" is
  /// OpenCL-style, everything else CUDA-style).
  static gpusim::ApiProfile ProfileFor(const std::string& backend);

  // -- Operator estimates ---------------------------------------------------
  // n: input rows; m: estimated output rows; *_bytes: bytes per element.

  /// Single- or multi-predicate selection; pred_bytes_per_row sums the
  /// predicate columns' element sizes.
  uint64_t Select(const std::string& b, size_t n, size_t m,
                  uint64_t pred_bytes_per_row, size_t num_preds) const;

  uint64_t SelectCompare(const std::string& b, size_t n, size_t m,
                         uint64_t elem_bytes) const;

  uint64_t Gather(const std::string& b, size_t m, uint64_t elem_bytes) const;

  /// Late-materializing gather out of an encoded base column
  /// (Backend::GatherDecode): reads the packed payload per survivor, pays
  /// per-element decode arithmetic, writes decoded values. Pricing this —
  /// instead of assuming encoded == raw — is what lets dispatch weigh an
  /// encoded scan's cheaper selection against its decode tail.
  uint64_t GatherDecode(const std::string& b, size_t m,
                        uint64_t encoded_elem_bytes,
                        uint64_t decoded_elem_bytes) const;

  /// Full-column decode (Backend::DecodeColumn), charged when an encoded
  /// scan feeds an operator with no encoded-domain realization. The executor
  /// caches the decode per column; the estimator prices it per consuming
  /// node (a deliberate over-bound, like the footprint estimator's).
  uint64_t DecodeColumn(const std::string& b, size_t n,
                        uint64_t encoded_bytes,
                        uint64_t decoded_bytes) const;

  /// Element-wise arithmetic with `inputs` (1 or 2) input columns.
  uint64_t Map(const std::string& b, size_t n, uint64_t elem_bytes,
               int inputs) const;

  uint64_t Join(const std::string& b, JoinAlgo algo, size_t n_build,
                size_t n_probe, size_t m) const;

  uint64_t GroupBy(const std::string& b, size_t n, size_t groups,
                   uint64_t val_bytes) const;

  uint64_t Reduce(const std::string& b, size_t n, uint64_t elem_bytes) const;

  uint64_t Sort(const std::string& b, size_t n, uint64_t elem_bytes) const;

  uint64_t SortByKey(const std::string& b, size_t n, uint64_t key_bytes,
                     uint64_t val_bytes) const;

  uint64_t Unique(const std::string& b, size_t n, size_t m,
                  uint64_t elem_bytes) const;

  uint64_t FetchGroups(const std::string& b, size_t groups,
                       uint64_t agg_bytes) const;

  uint64_t FetchPair(const std::string& b, size_t n) const;

  /// Fused rewrites always run as handwritten CUDA kernels.
  uint64_t FusedMap(size_t n) const;
  uint64_t FusedFilterSum(size_t n, uint64_t bytes_per_row) const;

  /// Materialization cost charged when a node consumes a column produced by
  /// a different backend: a device-to-device copy on the consumer's profile.
  uint64_t BoundaryTransfer(const std::string& consumer,
                            uint64_t bytes) const;

  /// One host<->device hop of an exchange operator (scatter shard upload,
  /// partial gather, broadcast replica) executed on a single stream. The
  /// multi-device runner prices cross-device routes with
  /// gpusim::DeviceGroup::TransferNs instead; this is the degenerate
  /// single-stream realization the executor charges.
  uint64_t Exchange(const std::string& b, uint64_t bytes) const;

 private:
  uint64_t K(const gpusim::ApiProfile& api, uint64_t read, uint64_t written,
             uint64_t ops = 0, uint64_t serial_ns = 0) const;
  uint64_t D2H(const gpusim::ApiProfile& api, uint64_t bytes) const;
  uint64_t D2D(const gpusim::ApiProfile& api, uint64_t bytes) const;
  /// One OpenCL program build when the profile compiles at run time.
  uint64_t Compile(const gpusim::ApiProfile& api) const {
    return api.program_compile_ns;
  }

  const gpusim::CostModel* model_;
};

}  // namespace plan

#endif  // PLAN_COST_ESTIMATOR_H_
