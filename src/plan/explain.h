// EXPLAIN rendering for optimized plans: one line per live node with the
// chosen backend, join algorithm, estimated cost (and its boundary-transfer
// share), and — when an ExecutionResult is supplied — the measured simulated
// time and actual row count next to the estimate.
#ifndef PLAN_EXPLAIN_H_
#define PLAN_EXPLAIN_H_

#include <string>

#include "plan/executor.h"
#include "plan/optimizer.h"

namespace plan {

/// Renders the optimized plan (estimates only).
std::string Explain(const PhysicalPlan& plan);

/// Renders the plan with measured per-node simulated time from an execution.
std::string Explain(const PhysicalPlan& plan, const ExecutionResult& result);

}  // namespace plan

#endif  // PLAN_EXPLAIN_H_
