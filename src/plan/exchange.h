// Multi-device sharded query execution over a gpusim::DeviceGroup.
//
// The partitioned path (plan/partition.h) runs K lineitem slices one after
// another on one device; this module places the same slices across N devices
// and runs them in parallel, one host thread per device, each against a
// private backend instance bound to its device (gpusim::Device::DeviceGuard).
// Small build-side tables (orders/customer/part) are broadcast to every
// device; each device's partial result is exchanged to device 0 over the
// group's fabric — a direct peer link inside an island, a two-hop via-host
// path across islands — before the host merges partials exactly as the
// single-device spill path does (plan/partition_detail.h).
//
// Correctness inherits from the partitioned path: shard boundaries snap to
// l_orderkey change points for the join/group queries, so per-shard partials
// merge by addition or disjoint concatenation regardless of which device
// computed them. Simulated time stays deterministic: each device's stream
// timeline is a pure function of the commands charged to it, the exchange
// charges happen in fixed device order, and the reported makespan is the
// maximum per-device timeline delta — independent of host thread scheduling.
// A 1-device group degenerates to RunGoverned and is bit-identical to it.
//
// Device loss degrades the run instead of failing it. A worker whose device
// fires a sticky gpusim::DeviceLost marks the device dead in the group,
// keeps the partials of the slices it already finished (they are in host
// memory after Accumulate), and reports its unfinished slices. RunSharded
// then re-places those slices deterministically — sorted by row_begin,
// round-robin over the surviving devices in ascending order — re-uploading
// the broadcast tables once on each device that takes replacement work, and
// repeats until every slice has run somewhere or no device survives
// (DeviceLost is rethrown only then). The gather re-routes around dead
// devices: a dead device's partials are drained from host staging without a
// fabric charge, the coordinator moves to the lowest surviving device, and
// transient TransferFaults on a gather edge retry a bounded number of times
// before falling back to a host-staged drain.
//
// Loss is no longer forever. Completed slices checkpoint to host memory as
// they finish (each worker records the ranges it has accumulated), so when a
// device dies only its *unfinished* slices re-deal — the checkpointed ones
// merge into the final answer without recompute (counted in
// checkpointed_slices_reused). Between recovery rounds RunSharded drives the
// group's lifecycle machine: an armed auto-reset policy ticks Lost devices
// back to Probing (DeviceGroup::ArmAutoReset), every Probing device gets a
// half-open probe kernel, and a device that passes is readmitted — its
// breakers healed via ResilienceManager::SyncDeviceProbe, its worker (and
// the host checkpoints of the slices it finished before dying) retained,
// broadcast tables re-uploaded when the next round hands it slices. Probing
// also runs
// once before initial placement, so a group whose operator called MarkReset
// between queries re-admits on the next run. When no fault fires, none of
// this machinery charges anything, so the healthy-path simulated timeline
// is bit-identical to the fault-free build.
#ifndef PLAN_EXCHANGE_H_
#define PLAN_EXCHANGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/governor.h"
#include "core/scheduler.h"
#include "gpusim/device_group.h"
#include "plan/ir.h"
#include "plan/partition.h"

namespace plan {

/// One shard's placement: a lineitem row range pinned to a device.
struct ShardPlacement {
  int device = 0;
  size_t row_begin = 0;
  size_t row_end = 0;
  uint64_t upload_bytes = 0;  ///< estimated slice upload (raw host bytes)
};

/// One exchange edge of a sharded plan, for EXPLAIN and the benches.
struct ExchangeEdge {
  enum class Kind { kScatter, kBroadcast, kGather };
  Kind kind = Kind::kScatter;
  int device = 0;        ///< destination (scatter/broadcast) or source (gather)
  uint64_t bytes = 0;    ///< estimated payload
  size_t rows = 0;
  std::string what;      ///< payload description ("lineitem[0,8192)", "orders")
  bool peer = false;     ///< gather edges: routed over a direct peer link?
  int hops = 0;          ///< gather edges: 1 = p2p, 2 = via host
};

const char* ExchangeEdgeKindName(ExchangeEdge::Kind kind);

/// Static placement + exchange structure of a sharded execution, computed
/// without touching a device. `exchange_plan` realizes the edges as IR nodes
/// (kExchangeScatter/kExchangeBroadcast/kExchangeGather) so the optimizer's
/// cost estimator can price them for EXPLAIN output.
struct ShardedPlanSpec {
  int devices = 1;
  size_t shards = 1;
  std::vector<ShardPlacement> placements;
  std::vector<ExchangeEdge> edges;
  Plan exchange_plan;
};

/// Plans a sharded execution: orderkey-snapped shard bounds (one shard per
/// device unless `force_shards` overrides), round-robin shard->device
/// placement, broadcast edges for every non-lineitem table the query reads,
/// and one gather edge per non-coordinator device routed per the group
/// topology. Pure function of its inputs.
ShardedPlanSpec PlanShardedExecution(TpchQuery query,
                                     const TpchHostTables& tables,
                                     const gpusim::DeviceGroup& group,
                                     size_t force_shards = 0);

/// Renders the spec: placement table, exchange edges with link routes, and
/// the cost-estimated exchange plan pinned to `backend_name`.
std::string ExplainSharded(const ShardedPlanSpec& spec,
                           const gpusim::DeviceGroup& group,
                           const std::string& backend_name);

struct ShardedQueryOptions {
  /// Number of lineitem shards; 0 = one per device. Shards are dealt
  /// round-robin to devices, so forcing more shards than devices makes each
  /// device run several slices in sequence (the differential tests use this
  /// to decouple shard count from device count).
  size_t force_shards = 0;
  /// Upload tables (and shard slices) compressed, as in GovernedQueryOptions.
  bool use_encoding = false;
  /// Per-device admission control; nullptr = ungoverned. Each device thread
  /// admits its own footprint against its own device's governor before
  /// uploading anything, and releases on completion.
  core::MultiGovernor* governor = nullptr;
  /// Admission timeout passed to MultiGovernor::Admit (0 = governor default).
  uint64_t admit_timeout_ms = 0;
};

/// Per-device accounting of one sharded run.
struct DeviceShardStats {
  int device = 0;
  size_t shards = 0;          ///< slices this device executed
  size_t rows = 0;            ///< lineitem rows across those slices
  uint64_t upload_bytes = 0;  ///< h2d: broadcast tables + shard slices
  uint64_t download_bytes = 0;  ///< d2h: partial-result fetches
  uint64_t busy_ns = 0;       ///< stream delta of the device's own work
  uint64_t granted_bytes = 0; ///< admission grant (0 = ungoverned)
  uint64_t peak_bytes = 0;    ///< device allocator high-water over the run
  bool lost = false;          ///< device died (sticky DeviceLost) this run
  bool readmitted = false;    ///< device re-joined after a reset + probe
};

/// Accounting of one sharded run.
struct ShardedRunStats {
  int devices = 1;
  size_t shards = 1;
  /// Makespan: max per-device timeline delta, including the partial-result
  /// exchanges into device 0. For a 1-device group this equals
  /// GovernedRunStats::simulated_ns of the equivalent governed run.
  uint64_t simulated_ns = 0;
  uint64_t exchange_bytes = 0;           ///< partials moved between devices
  uint64_t exchange_p2p_bytes = 0;       ///< share over direct peer links
  uint64_t exchange_via_host_bytes = 0;  ///< share routed through the host
  uint64_t broadcast_bytes = 0;  ///< build-side tables replicated per device
  // Degraded-mode accounting (all zero on a healthy run).
  int devices_lost = 0;          ///< devices that died during this run
  int recovery_rounds = 0;       ///< re-placement passes after a loss
  size_t replaced_shards = 0;    ///< slices re-run on a surviving device
  uint64_t transfer_retries = 0; ///< gather exchanges replayed after a
                                 ///< transient TransferFault
  int devices_readmitted = 0;    ///< devices probed healthy and re-placed
  /// Slices a dying device had already finished whose host-checkpointed
  /// partials merged into the answer without recompute.
  size_t checkpointed_slices_reused = 0;
  uint64_t probe_failures = 0;   ///< readmission probes that faulted
  std::vector<DeviceShardStats> per_device;
};

/// Runs `query` sharded across every live device of `group` on
/// `backend_name` instances (one per device, each on its own host thread).
/// Throws std::invalid_argument when the backend is not concurrency-safe and
/// the group has more than one device, and std::runtime_error when a
/// device's admission is rejected. A 1-device group delegates to RunGoverned
/// (force_shards becomes force_partitions), so its simulated timeline is
/// bit-identical to the governed single-device path. A device lost mid-run
/// is marked dead in the group and its unfinished slices complete on the
/// survivors (see the file comment); gpusim::DeviceLost escapes only when
/// every device of the group is dead.
TpchQueryResult RunSharded(TpchQuery query, const TpchHostTables& tables,
                           gpusim::DeviceGroup& group,
                           const std::string& backend_name,
                           const ShardedQueryOptions& options = {},
                           ShardedRunStats* stats = nullptr);

/// Adapts RunSharded for core::QueryScheduler submission: the sharded run
/// executes on the client thread (spawning its own device threads) and the
/// client's stream is advanced by the run's makespan, so scheduler latency
/// percentiles see the multi-device query at its true simulated cost.
core::QueryFn MakeShardedQuery(TpchQuery query, TpchHostTables tables,
                               gpusim::DeviceGroup& group,
                               ShardedQueryOptions options = {},
                               TpchQueryResult* out = nullptr,
                               ShardedRunStats* stats = nullptr);

}  // namespace plan

#endif  // PLAN_EXCHANGE_H_
