// TPC-H queries expressed as logical plans.
//
// Each builder inserts nodes in the exact order the hand-coded query
// (tpch/queries.h) issues backend calls, so a plan pinned to one backend
// replays the identical call sequence — and charges a bit-identical
// simulated timeline. Extractors rebuild the query's result rows from the
// executed node values with the same host-side assembly the hand-coded
// query performs.
#ifndef PLAN_TPCH_PLANS_H_
#define PLAN_TPCH_PLANS_H_

#include <map>
#include <string>
#include <vector>

#include "plan/executor.h"
#include "plan/ir.h"
#include "storage/device_column.h"
#include "tpch/queries.h"

namespace plan {

/// A built query plan plus named node ids ("marks") the extractor reads.
struct QueryPlanBundle {
  Plan plan;
  std::map<std::string, int> marks;
};

QueryPlanBundle BuildQ1Plan(const storage::DeviceTable& lineitem,
                            const tpch::Q1Params& params = tpch::Q1Params());

QueryPlanBundle BuildQ6Plan(const storage::DeviceTable& lineitem,
                            const tpch::Q6Params& params = tpch::Q6Params());

QueryPlanBundle BuildQ3Plan(const storage::DeviceTable& customer,
                            const storage::DeviceTable& orders,
                            const storage::DeviceTable& lineitem,
                            const tpch::Q3Params& params = tpch::Q3Params());

QueryPlanBundle BuildQ4Plan(const storage::DeviceTable& orders,
                            const storage::DeviceTable& lineitem,
                            const tpch::Q4Params& params = tpch::Q4Params());

QueryPlanBundle BuildQ14Plan(const storage::DeviceTable& part,
                             const storage::DeviceTable& lineitem,
                             const tpch::Q14Params& params = tpch::Q14Params());

std::vector<tpch::Q1Row> ExtractQ1(const QueryPlanBundle& bundle,
                                   const ExecutionResult& result);

/// Mergeable partial state of Q1: the six per-group running sums. A
/// partitioned run (plan/partition.h) extracts one Q1Partials per row-range
/// partition and merges them by per-key addition — associative and exact for
/// the integer counts, re-associated (tolerance-compared) for the float
/// sums.
struct Q1Partials {
  std::map<int32_t, double> sum_qty;
  std::map<int32_t, double> sum_base_price;
  std::map<int32_t, double> sum_disc_price;
  std::map<int32_t, double> sum_charge;
  std::map<int32_t, double> sum_disc;
  std::map<int32_t, double> count_order;

  /// Adds `other`'s per-key sums into this one.
  void Merge(const Q1Partials& other);
};

Q1Partials ExtractQ1Partials(const QueryPlanBundle& bundle,
                             const ExecutionResult& result);

/// Assembles final Q1 rows (averages, sort order) from merged partials.
/// FinalizeQ1(ExtractQ1Partials(b, r)) == ExtractQ1(b, r).
std::vector<tpch::Q1Row> FinalizeQ1(const Q1Partials& partials);

double ExtractQ6(const QueryPlanBundle& bundle,
                 const ExecutionResult& result);

std::vector<tpch::Q3Row> ExtractQ3(const QueryPlanBundle& bundle,
                                   const ExecutionResult& result,
                                   const tpch::Q3Params& params);

/// Every (orderkey, revenue) group of a Q3 run, before the top-k cut.
/// Partitioned runs concatenate these across partitions (row ranges aligned
/// to orderkey boundaries keep the key sets disjoint) and apply FinalizeQ3.
std::vector<tpch::Q3Row> ExtractQ3Groups(const QueryPlanBundle& bundle,
                                         const ExecutionResult& result);

/// Top-k cut over merged groups: sorts by (revenue, orderkey) ascending and
/// returns the top `params.limit` rows in descending-revenue order — the
/// same back-to-front read ExtractQ3 performs on the device-sorted result.
std::vector<tpch::Q3Row> FinalizeQ3(std::vector<tpch::Q3Row> groups,
                                    const tpch::Q3Params& params);

std::vector<tpch::Q4Row> ExtractQ4(const QueryPlanBundle& bundle,
                                   const ExecutionResult& result);

double ExtractQ14(const QueryPlanBundle& bundle,
                  const ExecutionResult& result);

}  // namespace plan

#endif  // PLAN_TPCH_PLANS_H_
