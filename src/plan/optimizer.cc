#include "plan/optimizer.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "core/registry.h"
#include "storage/column.h"

namespace plan {
namespace {

// -- Graph helpers ----------------------------------------------------------

/// Applies `fn` to every NodeInput field of `node` (mutating), plus the
/// integer node references (guard, filter_source) via `fn_id`.
template <typename Fn, typename FnId>
void RemapNode(PlanNode& node, Fn fn, FnId fn_id) {
  for (NodeInput& in : node.pred_cols) fn(in);
  fn(node.cmp_lhs);
  fn(node.cmp_rhs);
  fn(node.gather_src);
  fn(node.gather_indices);
  fn(node.map_a);
  fn(node.map_b);
  fn(node.join_build);
  fn(node.join_probe);
  fn(node.unary_in);
  fn(node.group_keys);
  fn(node.group_values);
  fn(node.sort_keys);
  fn(node.sort_values);
  fn(node.fetch_from);
  fn(node.fused_value_a);
  fn(node.fused_value_b);
  fn(node.exch_in);
  fn_id(node.guard);
  fn_id(node.filter_source);
}

/// Ids of alive nodes that consume any output of `producer` (data inputs,
/// filter chaining, or guard references).
std::vector<int> Users(const Plan& p, int producer) {
  std::vector<int> users;
  for (int j = 0; j < static_cast<int>(p.nodes.size()); ++j) {
    const PlanNode& n = p.nodes[j];
    if (n.dead || j == producer) continue;
    bool uses = n.guard == producer || n.filter_source == producer;
    if (!uses) {
      for (const NodeInput& in : NodeInputs(n)) {
        if (in.node == producer) {
          uses = true;
          break;
        }
      }
    }
    if (uses) users.push_back(j);
  }
  return users;
}

/// True when `producer` is consumed exactly by the nodes in `consumers`
/// (order-insensitive).
bool UsedOnlyBy(const Plan& p, int producer, std::vector<int> consumers) {
  std::vector<int> users = Users(p, producer);
  std::sort(users.begin(), users.end());
  std::sort(consumers.begin(), consumers.end());
  return users == consumers;
}

/// Element type of an edge, when statically known.
std::optional<storage::DataType> InferType(const Plan& p, NodeInput in) {
  if (in.node < 0) return std::nullopt;
  switch (in.part) {
    case Part::kRowIds:
    case Part::kLeftRows:
    case Part::kRightRows:
    case Part::kGroupKeys:
    case Part::kPairSecond:
      return storage::DataType::kInt32;
    case Part::kGroupAggregate:
      return p.nodes[in.node].agg == core::AggOp::kCount
                 ? storage::DataType::kInt64
                 : storage::DataType::kFloat64;
    case Part::kPairFirst:
      return InferType(p, p.nodes[in.node].sort_keys);
    case Part::kValue:
      break;
  }
  const PlanNode& n = p.nodes[in.node];
  switch (n.kind) {
    case NodeKind::kScan:
      if (n.scan_col != nullptr) return n.scan_col->type();
      if (n.scan_enc != nullptr) return n.scan_enc->type;
      return std::nullopt;
    case NodeKind::kGather:
      return InferType(p, n.gather_src);
    case NodeKind::kMap:
    case NodeKind::kFusedMap:
      return storage::DataType::kFloat64;
    case NodeKind::kUnique:
    case NodeKind::kSort:
      return InferType(p, n.unary_in);
    default:
      return std::nullopt;
  }
}

uint64_t ElemBytes(const Plan& p, NodeInput in) {
  auto t = InferType(p, in);
  return t ? storage::DataTypeSize(*t) : 8;
}

bool IsEncodedScan(const Plan& p, NodeInput in) {
  return in.node >= 0 && in.part == Part::kValue &&
         p.nodes[in.node].kind == NodeKind::kScan &&
         p.nodes[in.node].scan_enc != nullptr;
}

/// Bytes one sequential scan of the edge reads per row — the encoded payload
/// width for compressed base columns, the element size otherwise.
uint64_t ScanElemBytes(const Plan& p, NodeInput in) {
  if (IsEncodedScan(p, in)) {
    const storage::EncodedDeviceColumn* e = p.nodes[in.node].scan_enc;
    if (e->size == 0) return 1;
    return std::max<uint64_t>(1, e->encoded_byte_size() / e->size);
  }
  return ElemBytes(p, in);
}

/// Collects the single guard governing a set of nodes; nullopt when two
/// distinct guards would have to be merged (the rewrite then bails).
std::optional<int> MergedGuard(const Plan& p, const std::vector<int>& ids) {
  int guard = -1;
  for (int id : ids) {
    int g = p.nodes[id].guard;
    if (g < 0) continue;
    if (guard >= 0 && guard != g) return std::nullopt;
    guard = g;
  }
  return guard;
}

std::string PredListLabel(const std::vector<core::Predicate>& preds) {
  std::string s = "Filter(";
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i) s += " & ";
    s += preds[i].column;
  }
  return s + ")";
}

// -- Pass 1: filter-chain merging -------------------------------------------

void MergeFilterChains(Plan& p) {
  for (int i = 0; i < static_cast<int>(p.nodes.size()); ++i) {
    PlanNode& node = p.nodes[i];
    if (node.dead || node.kind != NodeKind::kFilter || node.filter_source < 0)
      continue;
    const int src = node.filter_source;
    PlanNode& head = p.nodes[src];
    if (head.kind != NodeKind::kFilter || head.dead) continue;
    if (!head.conjunctive || !node.conjunctive) continue;
    // The chain head's row ids must feed only this refinement — merging
    // would otherwise change what other consumers see.
    if (!UsedOnlyBy(p, src, {i})) continue;
    head.pred_cols.insert(head.pred_cols.end(), node.pred_cols.begin(),
                          node.pred_cols.end());
    head.preds.insert(head.preds.end(), node.preds.begin(), node.preds.end());
    head.label = PredListLabel(head.preds);
    node.dead = true;
    node.filter_source = -1;
    // Redirect every reference to the absorbed refinement at its head right
    // away, so longer chains keep collapsing into the same node.
    for (PlanNode& other : p.nodes) {
      if (other.dead) continue;
      RemapNode(
          other, [&](NodeInput& in) { if (in.node == i) in.node = src; },
          [&](int& id) { if (id == i) id = src; });
    }
  }
}

// -- Pass 2: fusion rewrites (hybrid only) ----------------------------------

/// Fusion requires *raw* base-table scans: the fused kernels read typed
/// device pointers directly, so encoded scans stay on the encoded operator
/// path instead.
bool IsScanValue(const Plan& p, NodeInput in) {
  return in.node >= 0 && in.part == Part::kValue &&
         p.nodes[in.node].kind == NodeKind::kScan &&
         p.nodes[in.node].scan_enc == nullptr;
}

/// Reduce(sum, Product(Gather(scan, F), Gather(scan, F))) over a merged
/// conjunctive filter on base-table columns -> one handwritten fused
/// filter+multiply+sum pass (the RunQ6FusedHandwritten shape).
bool TryFuseFilterProductSum(Plan& p, int i) {
  PlanNode& r = p.nodes[i];
  if (r.unary_in.part != Part::kValue || r.unary_in.node < 0) return false;
  const int vi = r.unary_in.node;
  const PlanNode& v = p.nodes[vi];
  if (v.kind != NodeKind::kMap || v.map_op != MapOp::kMul) return false;
  if (v.map_a.part != Part::kValue || v.map_b.part != Part::kValue)
    return false;
  const int gai = v.map_a.node, gbi = v.map_b.node;
  if (gai < 0 || gbi < 0 || gai == gbi) return false;
  const PlanNode& ga = p.nodes[gai];
  const PlanNode& gb = p.nodes[gbi];
  if (ga.kind != NodeKind::kGather || gb.kind != NodeKind::kGather)
    return false;
  if (ga.gather_indices.part != Part::kRowIds ||
      gb.gather_indices.part != Part::kRowIds ||
      ga.gather_indices.node != gb.gather_indices.node)
    return false;
  const int fi = ga.gather_indices.node;
  const PlanNode& f = p.nodes[fi];
  if (f.kind != NodeKind::kFilter || !f.conjunctive || f.filter_source >= 0)
    return false;
  for (const NodeInput& pc : f.pred_cols)
    if (!IsScanValue(p, pc)) return false;
  if (!IsScanValue(p, ga.gather_src) || !IsScanValue(p, gb.gather_src))
    return false;
  if (InferType(p, ga.gather_src) != storage::DataType::kFloat64 ||
      InferType(p, gb.gather_src) != storage::DataType::kFloat64)
    return false;
  // Every intermediate must be private to the chain.
  if (!UsedOnlyBy(p, fi, {gai, gbi}) || !UsedOnlyBy(p, gai, {vi}) ||
      !UsedOnlyBy(p, gbi, {vi}) || !UsedOnlyBy(p, vi, {i}))
    return false;
  auto guard = MergedGuard(p, {fi, gai, gbi, vi, i});
  if (!guard) return false;

  r.kind = NodeKind::kFusedFilterSum;
  r.pred_cols = f.pred_cols;
  r.preds = f.preds;
  r.conjunctive = true;
  r.fused_value_a = ga.gather_src;
  r.fused_value_b = gb.gather_src;
  r.fused_has_b = true;
  r.guard = *guard;
  r.label = "FusedFilterSum(" + p.nodes[ga.gather_src.node].column + "*" +
            p.nodes[gb.gather_src.node].column + ")";
  p.nodes[fi].dead = p.nodes[gai].dead = p.nodes[gbi].dead = p.nodes[vi].dead =
      true;
  return true;
}

/// Reduce(sum, Gather(x, F.row_ids)) -> fused filter+sum with identity
/// value (the Q14 promo-revenue tail shape). The filter domain and `x` must
/// be co-indexed; the executor checks their lengths agree.
bool TryFuseFilterSum(Plan& p, int i) {
  PlanNode& r = p.nodes[i];
  if (r.unary_in.part != Part::kValue || r.unary_in.node < 0) return false;
  const int vi = r.unary_in.node;
  const PlanNode& v = p.nodes[vi];
  if (v.kind != NodeKind::kGather || v.gather_indices.part != Part::kRowIds)
    return false;
  const int fi = v.gather_indices.node;
  if (fi < 0) return false;
  const PlanNode& f = p.nodes[fi];
  if (f.kind != NodeKind::kFilter || f.filter_source >= 0) return false;
  for (const NodeInput& pc : f.pred_cols)
    if (IsEncodedScan(p, pc)) return false;
  if (IsEncodedScan(p, v.gather_src)) return false;
  if (InferType(p, v.gather_src) != storage::DataType::kFloat64) return false;
  if (!UsedOnlyBy(p, fi, {vi}) || !UsedOnlyBy(p, vi, {i})) return false;
  auto guard = MergedGuard(p, {fi, vi, i});
  if (!guard) return false;

  r.kind = NodeKind::kFusedFilterSum;
  r.pred_cols = f.pred_cols;
  r.preds = f.preds;
  r.conjunctive = f.conjunctive;
  r.fused_value_a = v.gather_src;
  r.fused_has_b = false;
  r.guard = *guard;
  r.label = "FusedFilterSum(" + r.preds[0].column + ")";
  p.nodes[fi].dead = p.nodes[vi].dead = true;
  return true;
}

/// Product(a, Map(+-scalar, b)) with a private inner map -> one kernel
/// computing a*(alpha-b) or a*(b+alpha).
bool TryFuseMapChain(Plan& p, int i) {
  PlanNode& m2 = p.nodes[i];
  if (m2.map_op != MapOp::kMul || m2.map_b.part != Part::kValue ||
      m2.map_b.node < 0)
    return false;
  const int mi = m2.map_b.node;
  const PlanNode& inner = p.nodes[mi];
  if (inner.kind != NodeKind::kMap || inner.map_op == MapOp::kMul)
    return false;
  if (IsEncodedScan(p, m2.map_a) || IsEncodedScan(p, inner.map_a))
    return false;
  if (InferType(p, m2.map_a) != storage::DataType::kFloat64 ||
      InferType(p, inner.map_a) != storage::DataType::kFloat64)
    return false;
  if (!UsedOnlyBy(p, mi, {i})) return false;
  auto guard = MergedGuard(p, {mi, i});
  if (!guard) return false;

  m2.kind = NodeKind::kFusedMap;
  m2.fused_inner = inner.map_op;
  m2.alpha = inner.alpha;
  m2.map_b = inner.map_a;
  m2.guard = *guard;
  m2.label = "FusedMap(" + m2.label + "<-" + inner.label + ")";
  p.nodes[mi].dead = true;
  return true;
}

void ApplyFusion(Plan& p) {
  for (int i = 0; i < static_cast<int>(p.nodes.size()); ++i) {
    const PlanNode& n = p.nodes[i];
    if (n.dead) continue;
    if (n.kind == NodeKind::kReduce && n.agg == core::AggOp::kSum) {
      if (!TryFuseFilterProductSum(p, i)) TryFuseFilterSum(p, i);
    }
  }
  for (int i = 0; i < static_cast<int>(p.nodes.size()); ++i) {
    if (!p.nodes[i].dead && p.nodes[i].kind == NodeKind::kMap)
      TryFuseMapChain(p, i);
  }
}

// -- Pass 3: cardinality estimation -----------------------------------------

double PredSelectivity(const core::Predicate& pred) {
  switch (pred.op) {
    case core::CompareOp::kEq: return 0.1;
    case core::CompareOp::kNe: return 0.9;
    default: return 1.0 / 3.0;
  }
}

std::vector<size_t> EstimateRows(const Plan& p) {
  std::vector<size_t> rows(p.nodes.size(), 0);
  auto in_rows = [&](NodeInput in) {
    return in.node >= 0 ? rows[in.node] : size_t{0};
  };
  for (size_t i = 0; i < p.nodes.size(); ++i) {
    const PlanNode& n = p.nodes[i];
    if (n.dead) continue;
    switch (n.kind) {
      case NodeKind::kScan:
        rows[i] = n.scan_col   ? n.scan_col->size()
                  : n.scan_enc ? n.scan_enc->size
                               : 0;
        break;
      case NodeKind::kFilter: {
        const size_t domain = in_rows(n.pred_cols.empty() ? NodeInput{}
                                                          : n.pred_cols[0]);
        double sel = n.conjunctive ? 1.0 : 1.0;
        if (n.conjunctive) {
          for (const auto& pr : n.preds) sel *= PredSelectivity(pr);
        } else {
          double none = 1.0;
          for (const auto& pr : n.preds) none *= 1.0 - PredSelectivity(pr);
          sel = 1.0 - none;
        }
        rows[i] = std::max<size_t>(1, static_cast<size_t>(domain * sel));
        break;
      }
      case NodeKind::kFilterCompare:
        rows[i] = std::max<size_t>(1, in_rows(n.cmp_lhs) / 2);
        break;
      case NodeKind::kGather:
        rows[i] = in_rows(n.gather_indices);
        break;
      case NodeKind::kMap:
      case NodeKind::kFusedMap:
        rows[i] = in_rows(n.map_a);
        break;
      case NodeKind::kJoin:
        rows[i] = std::max<size_t>(1, in_rows(n.join_probe) / 2);
        break;
      case NodeKind::kUnique:
        rows[i] = std::max<size_t>(1, in_rows(n.unary_in) / 2);
        break;
      case NodeKind::kGroupBy:
        rows[i] = std::min<size_t>(std::max<size_t>(1, in_rows(n.group_keys)),
                                   128);
        break;
      case NodeKind::kReduce:
      case NodeKind::kFusedFilterSum:
        rows[i] = 1;
        break;
      case NodeKind::kSort:
        rows[i] = in_rows(n.unary_in);
        break;
      case NodeKind::kSortByKey:
        rows[i] = in_rows(n.sort_keys);
        break;
      case NodeKind::kFetchGroups:
      case NodeKind::kFetchPair:
        rows[i] = in_rows(n.fetch_from);
        break;
      case NodeKind::kExchangeScatter:
      case NodeKind::kExchangeGather:
      case NodeKind::kExchangeBroadcast:
        rows[i] = n.exch_rows;
        break;
    }
  }
  return rows;
}

// -- Pass 4: dispatch --------------------------------------------------------

class Dispatcher {
 public:
  Dispatcher(PhysicalPlan& phys, const CostEstimator& est,
             const OptimizerOptions& opts)
      : phys_(phys), est_(est), opts_(opts) {}

  void Run() {
    Plan& p = phys_.plan;
    const size_t n = p.nodes.size();
    phys_.node_backend.assign(n, "");
    phys_.est_ns.assign(n, 0);
    phys_.est_boundary_ns.assign(n, 0);

    for (size_t i = 0; i < n; ++i) {
      PlanNode& node = p.nodes[i];
      if (node.dead || node.kind == NodeKind::kScan) continue;

      if (node.kind == NodeKind::kFetchGroups ||
          node.kind == NodeKind::kFetchPair) {
        // Downloads run on the stream that produced the device result.
        const std::string& b = phys_.node_backend[node.fetch_from.node];
        phys_.node_backend[i] = b;
        phys_.est_ns[i] =
            node.kind == NodeKind::kFetchGroups
                ? est_.FetchGroups(b, Rows(node.fetch_from.node), 8)
                : est_.FetchPair(b, Rows(node.fetch_from.node));
        continue;
      }

      std::vector<std::string> cands;
      const bool fused = node.kind == NodeKind::kFusedMap ||
                         node.kind == NodeKind::kFusedFilterSum;
      if (!opts_.pin_backend.empty()) {
        cands = {opts_.pin_backend};
      } else {
        // Fused nodes carry the handwritten kernels but execute raw on the
        // assigned backend's stream, so any candidate can host them when
        // the handwritten streams are unhealthy.
        cands = fused ? std::vector<std::string>{"Handwritten"}
                      : opts_.candidates;
        if (opts_.route_around_open_breakers) {
          // Skip candidates whose circuit breaker denies traffic; with all
          // breakers closed this is a no-op and dispatch is unchanged.
          core::ResilienceManager& rm =
              opts_.resilience != nullptr ? *opts_.resilience
                                          : core::ResilienceManager::Global();
          std::vector<std::string> healthy;
          for (const std::string& c : cands) {
            if (rm.Allow(c)) healthy.push_back(c);
          }
          if (healthy.empty() && fused) {
            for (const std::string& c : opts_.candidates) {
              if (rm.Allow(c)) healthy.push_back(c);
            }
          }
          if (!healthy.empty()) cands = std::move(healthy);
        }
      }

      std::string best;
      uint64_t best_cost = 0, best_boundary = 0;
      JoinAlgo best_algo = node.join_algo;
      for (const std::string& c : cands) {
        JoinAlgo algo = node.join_algo;
        if (node.kind == NodeKind::kJoin && algo == JoinAlgo::kAuto) {
          algo = HashCapable(c) ? JoinAlgo::kHash : JoinAlgo::kNestedLoops;
        }
        const uint64_t op = OpEstimate(i, node, c, algo);
        const uint64_t boundary = BoundaryEstimate(node, c);
        if (best.empty() || op + boundary < best_cost) {
          best = c;
          best_cost = op + boundary;
          best_boundary = boundary;
          best_algo = algo;
        }
      }
      phys_.node_backend[i] = best;
      phys_.est_ns[i] = best_cost;
      phys_.est_boundary_ns[i] = best_boundary;
      if (node.kind == NodeKind::kJoin) node.join_algo = best_algo;
    }
  }

 private:
  size_t Rows(int id) const { return id >= 0 ? phys_.est_rows[id] : 0; }

  bool HashCapable(const std::string& name) {
    auto it = hash_capable_.find(name);
    if (it != hash_capable_.end()) return it->second;
    auto& reg = core::BackendRegistry::Instance();
    if (!reg.Contains(name)) {
      throw std::invalid_argument("plan::Optimize: unknown backend '" + name +
                                  "'");
    }
    const bool cap =
        reg.Create(name)->Realization(core::DbOperator::kHashJoin).level !=
        core::SupportLevel::kNone;
    hash_capable_[name] = cap;
    return cap;
  }

  uint64_t OpEstimate(size_t i, const PlanNode& n, const std::string& c,
                      JoinAlgo algo) const {
    return OpBase(i, n, c, algo) + DecodeExtra(n, c);
  }

  /// Full-decode cost for encoded base columns this node consumes through an
  /// operator with no encoded-domain realization (the executor's ColDecoded
  /// path). Selection and gather stay in code space and are priced by their
  /// own encoded-aware estimates; group-by keys stay encoded only on the
  /// handwritten backend (GroupByAggregateEncoded).
  uint64_t DecodeExtra(const PlanNode& n, const std::string& c) const {
    const Plan& p = phys_.plan;
    uint64_t extra = 0;
    auto add = [&](NodeInput in) {
      if (!IsEncodedScan(p, in)) return;
      const storage::EncodedDeviceColumn* e = p.nodes[in.node].scan_enc;
      extra += est_.DecodeColumn(
          c, e->size, e->encoded_byte_size(),
          e->size * storage::DataTypeSize(e->type));
    };
    switch (n.kind) {
      case NodeKind::kMap:
        add(n.map_a);
        if (n.map_op == MapOp::kMul) add(n.map_b);
        break;
      case NodeKind::kFilterCompare:
        add(n.cmp_lhs);
        add(n.cmp_rhs);
        break;
      case NodeKind::kJoin:
        add(n.join_build);
        add(n.join_probe);
        break;
      case NodeKind::kUnique:
      case NodeKind::kReduce:
      case NodeKind::kSort:
        add(n.unary_in);
        break;
      case NodeKind::kSortByKey:
        add(n.sort_keys);
        add(n.sort_values);
        break;
      case NodeKind::kGroupBy:
        if (c != "Handwritten") add(n.group_keys);
        add(n.group_values);
        break;
      default:
        break;
    }
    return extra;
  }

  uint64_t OpBase(size_t i, const PlanNode& n, const std::string& c,
                  JoinAlgo algo) const {
    const Plan& p = phys_.plan;
    switch (n.kind) {
      case NodeKind::kFilter: {
        uint64_t bpr = 0;
        for (const NodeInput& pc : n.pred_cols) bpr += ScanElemBytes(p, pc);
        return est_.Select(c, Rows(n.pred_cols[0].node), phys_.est_rows[i],
                           bpr, n.preds.size());
      }
      case NodeKind::kFilterCompare:
        return est_.SelectCompare(c, Rows(n.cmp_lhs.node), phys_.est_rows[i],
                                  ScanElemBytes(p, n.cmp_lhs));
      case NodeKind::kGather:
        if (IsEncodedScan(p, n.gather_src)) {
          return est_.GatherDecode(c, phys_.est_rows[i],
                                   ScanElemBytes(p, n.gather_src),
                                   ElemBytes(p, n.gather_src));
        }
        return est_.Gather(c, phys_.est_rows[i], ElemBytes(p, n.gather_src));
      case NodeKind::kMap:
        return est_.Map(c, phys_.est_rows[i], 8,
                        n.map_op == MapOp::kMul ? 2 : 1);
      case NodeKind::kJoin:
        return est_.Join(c, algo, Rows(n.join_build.node),
                         Rows(n.join_probe.node), phys_.est_rows[i]);
      case NodeKind::kUnique:
        return est_.Unique(c, Rows(n.unary_in.node), phys_.est_rows[i],
                           ElemBytes(p, n.unary_in));
      case NodeKind::kGroupBy:
        return est_.GroupBy(c, Rows(n.group_keys.node), phys_.est_rows[i],
                            ElemBytes(p, n.group_values));
      case NodeKind::kReduce:
        return est_.Reduce(c, Rows(n.unary_in.node), ElemBytes(p, n.unary_in));
      case NodeKind::kSort:
        return est_.Sort(c, Rows(n.unary_in.node), ElemBytes(p, n.unary_in));
      case NodeKind::kSortByKey:
        return est_.SortByKey(c, Rows(n.sort_keys.node),
                              ElemBytes(p, n.sort_keys),
                              ElemBytes(p, n.sort_values));
      case NodeKind::kFusedMap:
        return est_.FusedMap(phys_.est_rows[i]);
      case NodeKind::kFusedFilterSum: {
        uint64_t bpr = 0;
        for (const NodeInput& pc : n.pred_cols) bpr += ElemBytes(p, pc);
        bpr += ElemBytes(p, n.fused_value_a);
        if (n.fused_has_b) bpr += ElemBytes(p, n.fused_value_b);
        return est_.FusedFilterSum(Rows(n.pred_cols[0].node), bpr);
      }
      case NodeKind::kExchangeScatter:
      case NodeKind::kExchangeGather:
      case NodeKind::kExchangeBroadcast:
        return est_.Exchange(c, n.exch_bytes);
      default:
        return 0;
    }
  }

  uint64_t BoundaryEstimate(const PlanNode& n, const std::string& c) const {
    uint64_t total = 0;
    for (const NodeInput& in : NodeInputs(n)) {
      if (in.node < 0) continue;
      const PlanNode& producer = phys_.plan.nodes[in.node];
      if (producer.kind == NodeKind::kScan) continue;  // shared base column
      const std::string& pb = phys_.node_backend[in.node];
      if (pb.empty() || pb == c) continue;
      total += est_.BoundaryTransfer(
          c, Rows(in.node) * ElemBytes(phys_.plan, in));
    }
    return total;
  }

  PhysicalPlan& phys_;
  const CostEstimator& est_;
  const OptimizerOptions& opts_;
  std::map<std::string, bool> hash_capable_;
};

}  // namespace

PhysicalPlan Optimize(const Plan& logical, const OptimizerOptions& options,
                      const CostEstimator& estimator) {
  PhysicalPlan phys;
  phys.plan = logical;
  phys.hybrid = options.pin_backend.empty();

  // Validate every backend name up front (capability probes are lazy and
  // would otherwise only reject unknown names on plans containing joins).
  auto& registry = core::BackendRegistry::Instance();
  const std::vector<std::string> named =
      phys.hybrid ? options.candidates
                  : std::vector<std::string>{options.pin_backend};
  for (const std::string& name : named) {
    if (!registry.Contains(name)) {
      throw std::invalid_argument("plan::Optimize: unknown backend '" + name +
                                  "'");
    }
  }

  if (phys.hybrid) phys.candidates = options.candidates;
  MergeFilterChains(phys.plan);
  if (phys.hybrid && options.enable_fusion) ApplyFusion(phys.plan);
  phys.est_rows = EstimateRows(phys.plan);
  Dispatcher(phys, estimator, options).Run();
  return phys;
}

}  // namespace plan
