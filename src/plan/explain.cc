#include "plan/explain.h"

#include <iomanip>
#include <set>
#include <sstream>

#include "gpusim/cost_model.h"
#include "storage/encoding.h"

namespace plan {
namespace {

const char* AlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kAuto: return "auto";
    case JoinAlgo::kNestedLoops: return "nested-loops";
    case JoinAlgo::kHash: return "hash";
  }
  return "?";
}

std::string NodeTitle(const PlanNode& n) {
  std::string title = NodeKindName(n.kind);
  if (n.kind == NodeKind::kJoin) {
    title += std::string("[") + AlgoName(n.join_algo) + "]";
  }
  if (!n.label.empty()) title += " " + n.label;
  return title;
}

/// One line per distinct base-table scan: storage encoding, encoded vs raw
/// bytes, and the estimated PCIe upload time those bytes cost (the default
/// device profile at CUDA latency — indicative, not a stream measurement).
void RenderScans(const PhysicalPlan& phys, std::ostringstream& os) {
  const gpusim::CostModel model{gpusim::DeviceProperties{}};
  const gpusim::ApiProfile api = gpusim::ApiProfile::Cuda();
  std::set<std::string> seen;
  bool header = false;
  for (const PlanNode& n : phys.plan.nodes) {
    if (n.dead || n.kind != NodeKind::kScan) continue;
    if (!seen.insert(n.table + "." + n.column).second) continue;
    if (!header) {
      header = true;
      os << "scans\n"
         << std::left << std::setw(28) << "  column" << std::setw(12)
         << "encoding" << std::right << std::setw(12) << "bytes"
         << std::setw(12) << "raw_bytes" << std::setw(10) << "ratio"
         << std::setw(13) << "transfer_ns" << "\n";
    }
    uint64_t bytes = 0, raw = 0;
    const char* enc = "raw";
    if (n.scan_enc != nullptr) {
      enc = storage::EncodingName(n.scan_enc->encoding);
      bytes = n.scan_enc->encoded_byte_size();
      raw = n.scan_enc->raw_byte_size();
    } else if (n.scan_col != nullptr) {
      bytes = raw = n.scan_col->byte_size();
    }
    os << std::left << "  " << std::setw(26)
       << (n.table + "." + n.column).substr(0, 25) << std::setw(12) << enc
       << std::right << std::setw(12) << bytes << std::setw(12) << raw
       << std::setw(10) << std::fixed << std::setprecision(2)
       << (bytes == 0 ? 1.0 : static_cast<double>(raw) / bytes)
       << std::setw(13) << model.TransferTime(bytes, api) << "\n";
    os.unsetf(std::ios::fixed);
  }
}

std::string Render(const PhysicalPlan& phys, const ExecutionResult* result) {
  std::ostringstream os;
  os << (phys.hybrid ? "hybrid plan" : "pinned plan") << " ("
     << phys.plan.nodes.size() << " nodes)\n";
  RenderScans(phys, os);
  os << std::left << std::setw(4) << "id" << std::setw(44) << "operator"
     << std::setw(15) << "backend" << std::right << std::setw(8) << "rows"
     << std::setw(13) << "est_ns" << std::setw(12) << "boundary";
  if (result != nullptr) os << std::setw(13) << "measured_ns";
  os << "\n";
  uint64_t est_total = 0, measured_total = 0;
  for (size_t i = 0; i < phys.plan.nodes.size(); ++i) {
    const PlanNode& n = phys.plan.nodes[i];
    if (n.dead || n.kind == NodeKind::kScan) continue;
    const std::string& backend =
        phys.node_backend[i].empty() ? "-" : phys.node_backend[i];
    est_total += phys.est_ns[i];
    os << std::left << std::setw(4) << i << std::setw(44)
       << NodeTitle(n).substr(0, 43) << std::setw(15) << backend << std::right
       << std::setw(8) << phys.est_rows[i] << std::setw(13) << phys.est_ns[i]
       << std::setw(12) << phys.est_boundary_ns[i];
    if (result != nullptr) {
      const NodeValue& v = result->values[i];
      if (v.skipped) {
        os << std::setw(13) << "skipped";
      } else {
        os << std::setw(13) << v.measured_ns;
        measured_total += v.measured_ns;
      }
    }
    os << "\n";
  }
  os << "estimated total: " << est_total << " ns";
  if (result != nullptr) {
    os << "; measured total: " << measured_total << " ns";
  }
  os << "\n";
  return os.str();
}

}  // namespace

std::string Explain(const PhysicalPlan& plan) { return Render(plan, nullptr); }

std::string Explain(const PhysicalPlan& plan, const ExecutionResult& result) {
  return Render(plan, &result);
}

}  // namespace plan
