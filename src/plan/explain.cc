#include "plan/explain.h"

#include <iomanip>
#include <sstream>

namespace plan {
namespace {

const char* AlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kAuto: return "auto";
    case JoinAlgo::kNestedLoops: return "nested-loops";
    case JoinAlgo::kHash: return "hash";
  }
  return "?";
}

std::string NodeTitle(const PlanNode& n) {
  std::string title = NodeKindName(n.kind);
  if (n.kind == NodeKind::kJoin) {
    title += std::string("[") + AlgoName(n.join_algo) + "]";
  }
  if (!n.label.empty()) title += " " + n.label;
  return title;
}

std::string Render(const PhysicalPlan& phys, const ExecutionResult* result) {
  std::ostringstream os;
  os << (phys.hybrid ? "hybrid plan" : "pinned plan") << " ("
     << phys.plan.nodes.size() << " nodes)\n";
  os << std::left << std::setw(4) << "id" << std::setw(44) << "operator"
     << std::setw(15) << "backend" << std::right << std::setw(8) << "rows"
     << std::setw(13) << "est_ns" << std::setw(12) << "boundary";
  if (result != nullptr) os << std::setw(13) << "measured_ns";
  os << "\n";
  uint64_t est_total = 0, measured_total = 0;
  for (size_t i = 0; i < phys.plan.nodes.size(); ++i) {
    const PlanNode& n = phys.plan.nodes[i];
    if (n.dead || n.kind == NodeKind::kScan) continue;
    const std::string& backend =
        phys.node_backend[i].empty() ? "-" : phys.node_backend[i];
    est_total += phys.est_ns[i];
    os << std::left << std::setw(4) << i << std::setw(44)
       << NodeTitle(n).substr(0, 43) << std::setw(15) << backend << std::right
       << std::setw(8) << phys.est_rows[i] << std::setw(13) << phys.est_ns[i]
       << std::setw(12) << phys.est_boundary_ns[i];
    if (result != nullptr) {
      const NodeValue& v = result->values[i];
      if (v.skipped) {
        os << std::setw(13) << "skipped";
      } else {
        os << std::setw(13) << v.measured_ns;
        measured_total += v.measured_ns;
      }
    }
    os << "\n";
  }
  os << "estimated total: " << est_total << " ns";
  if (result != nullptr) {
    os << "; measured total: " << measured_total << " ns";
  }
  os << "\n";
  return os.str();
}

}  // namespace

std::string Explain(const PhysicalPlan& plan) { return Render(plan, nullptr); }

std::string Explain(const PhysicalPlan& plan, const ExecutionResult& result) {
  return Render(plan, &result);
}

}  // namespace plan
