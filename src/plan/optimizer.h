// Rule- and cost-based plan optimizer.
//
// Passes, in order:
//  1. Filter merging / predicate pushdown: adjacent conjunctive Filter nodes
//     (chains built from single-predicate sigmas) fold into one
//     multi-predicate node that executes as a single SelectConjunctive call —
//     the canonical shape the hand-coded queries use, and a prerequisite for
//     the golden timing-equivalence property of pinned plans.
//  2. Fusion rewrites (hybrid plans only): eligible Filter->Gather->Map->
//     Reduce chains become one handwritten fused filter+sum pass
//     (kFusedFilterSum), and Map(mul, a, Map(+-scalar, b)) chains become one
//     kernel (kFusedMap) — the rewrites a plan-driven layer can apply that
//     chained per-call library execution cannot.
//  3. Join-algorithm selection: kAuto joins resolve to hash join when the
//     assigned backend's Realization(kHashJoin) is not kNone, else nested
//     loops — the same capability rule the hand-coded queries apply.
//  4. Cost-based backend dispatch: each node is assigned the candidate
//     backend minimizing estimated operator cost plus boundary
//     materialization cost (a priced device-to-device copy for every input
//     produced by a differently-assigned backend). Ties go to the earlier
//     candidate, making dispatch deterministic.
#ifndef PLAN_OPTIMIZER_H_
#define PLAN_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/resilience.h"
#include "plan/cost_estimator.h"
#include "plan/ir.h"

namespace plan {

struct OptimizerOptions {
  /// Pin every node to this registry backend (the golden-equivalence mode).
  /// Empty selects hybrid per-operator dispatch over `candidates`.
  std::string pin_backend;

  /// Fusion rewrites; only applied in hybrid mode (a pinned plan must replay
  /// the hand-coded call sequence verbatim).
  bool enable_fusion = true;

  /// Dispatch candidates in preference (tie-break) order.
  std::vector<std::string> candidates = {"Handwritten", "Thrust", "ArrayFire",
                                         "Boost.Compute"};

  /// Hybrid dispatch skips candidates whose circuit breaker denies traffic
  /// (unless every candidate is denied — then the full list is used). With
  /// all breakers closed the assignment is identical to ignoring breakers,
  /// so fault-free plans stay deterministic.
  bool route_around_open_breakers = true;

  /// Breaker source; nullptr = core::ResilienceManager::Global().
  core::ResilienceManager* resilience = nullptr;
};

/// An optimized plan: the rewritten node list plus per-node backend
/// assignment and cost estimates (indexed by node id; dead and scan nodes
/// have empty backend and zero cost).
struct PhysicalPlan {
  Plan plan;
  bool hybrid = false;
  std::vector<std::string> node_backend;
  /// Dispatch candidates the plan was optimized over (hybrid mode); the
  /// executor uses them as fallback targets when an assigned backend fails
  /// fatally at run time.
  std::vector<std::string> candidates;
  std::vector<uint64_t> est_ns;           ///< operator + boundary estimate
  std::vector<uint64_t> est_boundary_ns;  ///< boundary share of est_ns
  std::vector<size_t> est_rows;           ///< estimated output cardinality

  uint64_t total_est_ns() const {
    uint64_t t = 0;
    for (uint64_t e : est_ns) t += e;
    return t;
  }
};

/// Optimizes a logical plan. Backends named in `options` (pin or candidates)
/// must be registered with core::BackendRegistry (capability queries
/// instantiate them). Throws std::invalid_argument for unknown names.
PhysicalPlan Optimize(const Plan& logical, const OptimizerOptions& options,
                      const CostEstimator& estimator = CostEstimator());

}  // namespace plan

#endif  // PLAN_OPTIMIZER_H_
