// Partitioned (spill-to-host) query execution under memory pressure.
//
// The paper's whole-query measurements assume every working set fits in
// device memory. This module is the degradation path for when it does not:
// a query whose estimated footprint exceeds its admission grant
// (core::MemoryGovernor) re-runs morsel-wise — the scan side is split into K
// row-range partitions, the operator DAG executes per partition against a
// sliced upload, and per-partition partials merge host-side. Host tables
// stay the source of truth, so the only extra cost is the priced
// host<->device traffic of the slices and partial downloads ("spill" bytes).
//
// Correctness: partials merge by addition (Q1/Q4/Q6/Q14 sums and counts) or
// disjoint concatenation (Q3 per-orderkey groups; lineitem is generated
// grouped by order with nondecreasing l_orderkey, and partition boundaries
// snap to orderkey change points, so per-partition key sets are disjoint).
// Integer results are exact; float sums are re-associated and compared with
// tolerance. Simulated time stays deterministic: partition sizes and counts
// are pure functions of the inputs, so a partitioned run's simulated-ns is
// as replayable as an unpartitioned one.
#ifndef PLAN_PARTITION_H_
#define PLAN_PARTITION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/scheduler.h"
#include "storage/table.h"
#include "tpch/queries.h"

namespace plan {

/// The five TPC-H queries of the paper's query experiments.
enum class TpchQuery { kQ1, kQ3, kQ4, kQ6, kQ14 };

const char* TpchQueryName(TpchQuery query);

/// Parses "q1"/"q3"/"q4"/"q6"/"q14" (throws std::invalid_argument).
TpchQuery ParseTpchQuery(const std::string& name);

/// Host-side inputs of a query; only the tables the query reads need be set.
struct TpchHostTables {
  const storage::Table* lineitem = nullptr;  ///< all queries
  const storage::Table* orders = nullptr;    ///< q3, q4
  const storage::Table* customer = nullptr;  ///< q3
  const storage::Table* part = nullptr;      ///< q14
};

/// Result of any of the five queries (the member matching the query is set).
struct TpchQueryResult {
  std::vector<tpch::Q1Row> q1;
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
  double scalar = 0.0;  ///< q6 revenue / q14 promo share
};

/// Estimated device footprint in bytes of running `query` split into
/// `partitions` row ranges of lineitem: upload bytes of every scanned column
/// plus worst-case materialized intermediates (a headroom factor covers
/// operator scratch like hash-table fills and sort ping-pong buffers). Row
/// counts propagate worst-case (filters pass everything), so the estimate is
/// a deliberate over-bound: a query admitted at its estimate does not OOM.
/// Deterministic for fixed inputs — admission decisions built on it replay.
///
/// With `use_encoding`, base-table scan terms are priced at their encoded
/// size (the same ChooseEncoding decision the upload path takes) while
/// materialized intermediates stay raw-sized — including a full raw decode
/// for encoded columns consumed by operators with no encoded realization —
/// and only the intermediates carry the x2 scratch headroom.
uint64_t EstimateQueryFootprint(TpchQuery query, const TpchHostTables& tables,
                                const std::string& backend_name,
                                size_t partitions = 1,
                                bool use_encoding = false);

/// One memory-pressure event of a governed run, for inline reporting
/// (tools/trace_query) and the tracer's "memory" category.
struct PressureEvent {
  enum class Kind {
    kAdmission,  ///< grant observed at query start
    kPartition,  ///< a partitioned execution attempt begins
    kSpill,      ///< one partition's host<->device traffic
    kFallback,   ///< recurring OOM absorbed by repartitioning
  };
  Kind kind = Kind::kAdmission;
  std::string detail;   ///< human-readable summary
  uint64_t bytes = 0;   ///< grant / slice / spill bytes (kind-dependent)
  size_t partitions = 0;
};

const char* PressureEventKindName(PressureEvent::Kind kind);

struct GovernedQueryOptions {
  /// Skip grant-driven sizing and use exactly this many partitions (0 =
  /// derive from the grant). Used by the timing-invariance golden test.
  size_t force_partitions = 0;
  /// Upper bound on the repartitioning ladder; past it OOM propagates.
  size_t max_partitions = 256;
  /// Observer for admission/partition/spill events; may be null. Called on
  /// the executing thread.
  std::function<void(const PressureEvent&)> on_event;
  /// Upload tables (and partition slices) compressed: columns where a
  /// lightweight encoding beats the raw layout cross the link encoded and
  /// run on the encoded operator path. Shrinks both the admission footprint
  /// and the spill traffic.
  bool use_encoding = false;
};

/// Accounting of one governed run.
struct GovernedRunStats {
  uint64_t footprint_bytes = 0;  ///< estimated unpartitioned footprint
  uint64_t grant_bytes = 0;      ///< reservation observed (0 = ungoverned)
  size_t partitions = 1;         ///< K of the successful attempt
  size_t oom_fallbacks = 0;      ///< attempts abandoned to a larger K
  uint64_t spill_h2d_bytes = 0;  ///< partition-slice upload traffic (K > 1)
  uint64_t spill_d2h_bytes = 0;  ///< partial-result download traffic (K > 1)
  uint64_t simulated_ns = 0;     ///< stream-timeline delta of the whole run
};

/// Runs `query` on `backend`, degrading to partitioned execution when the
/// stream's admission grant (gpusim::Device::ReservationRemaining) — or, for
/// ungoverned streams, the device capacity — is smaller than the estimated
/// footprint. Recurring OutOfDeviceMemory doubles K and restarts (the
/// partials accumulated so far are discarded; queries are idempotent) until
/// max_partitions, then propagates. K == 1 is byte-for-byte the ordinary
/// unpartitioned plan execution.
TpchQueryResult RunGoverned(TpchQuery query, const TpchHostTables& tables,
                            core::Backend& backend,
                            const GovernedQueryOptions& options = {},
                            GovernedRunStats* stats = nullptr);

/// Adapts RunGoverned for core::QueryScheduler submission. `tables` is
/// captured by value (a struct of pointers — the caller keeps the host
/// tables alive); `out` and `stats` may be null and are written on the
/// client thread when the query completes.
core::QueryFn MakeGovernedQuery(TpchQuery query, TpchHostTables tables,
                                GovernedQueryOptions options = {},
                                TpchQueryResult* out = nullptr,
                                GovernedRunStats* stats = nullptr);

}  // namespace plan

#endif  // PLAN_PARTITION_H_
