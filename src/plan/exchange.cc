#include "plan/exchange.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/registry.h"
#include "core/resilience.h"
#include "gpusim/fault.h"
#include "plan/explain.h"
#include "plan/optimizer.h"
#include "plan/partition_detail.h"
#include "storage/encoded_column.h"

namespace plan {
namespace {

/// Host bytes of one device's accumulated partials — the payload the gather
/// exchange moves. Exact for the run that produced the partials, so the
/// charged exchange traffic is deterministic for fixed inputs.
uint64_t PartialBytes(TpchQuery q, const detail::Partials& p) {
  switch (q) {
    case TpchQuery::kQ1:
      return p.q1.sum_qty.size() * (sizeof(int32_t) + 6 * sizeof(double));
    case TpchQuery::kQ3:
      return p.q3_groups.size() * sizeof(tpch::Q3Row);
    case TpchQuery::kQ4:
      return p.q4_counts.size() * (sizeof(int32_t) + sizeof(int64_t));
    case TpchQuery::kQ6:
      return sizeof(double);
    case TpchQuery::kQ14:
      return 2 * sizeof(double);
  }
  return 0;
}

/// Planning-time estimate of PartialBytes (before anything runs): group
/// counts are bounded by the query shape — Q1 groups on two flag columns
/// (a handful of combinations), Q4 on five priorities, Q3's join survivors
/// are a small fraction of the shard.
uint64_t EstimatePartialBytes(TpchQuery q, size_t shard_rows) {
  switch (q) {
    case TpchQuery::kQ1:
      return 4 * (sizeof(int32_t) + 6 * sizeof(double));
    case TpchQuery::kQ3:
      return std::max<uint64_t>(shard_rows / 50, 1) * sizeof(tpch::Q3Row);
    case TpchQuery::kQ4:
      return 5 * (sizeof(int32_t) + sizeof(int64_t));
    case TpchQuery::kQ6:
      return sizeof(double);
    case TpchQuery::kQ14:
      return 2 * sizeof(double);
  }
  return 0;
}

/// Per-device state of one sharded run; the backend outlives the worker
/// thread so the coordinator can charge exchanges against its stream. The
/// state persists across recovery rounds: a surviving device that takes
/// replacement slices keeps its backend, stream timeline, and accumulated
/// partials.
struct WorkerState {
  std::unique_ptr<core::Backend> backend;
  detail::Partials partials;
  DeviceShardStats stats;
  uint64_t broadcast_bytes = 0;
  uint64_t start_ns = 0;
  std::exception_ptr error;
  /// The device fired a sticky DeviceLost during this round. Unlike `error`
  /// this is recoverable: `unfinished` holds the slices that still need a
  /// home, and `partials` keeps everything the device finished before dying.
  bool device_lost = false;
  std::vector<std::pair<size_t, size_t>> unfinished;
  /// Checkpoint ledger: row ranges whose results have been accumulated into
  /// `partials` (host memory). A loss reuses these instead of recomputing;
  /// `checkpoints_counted` marks how many have already been credited to
  /// ShardedRunStats::checkpointed_slices_reused, so a device that dies,
  /// readmits, and dies again never double-counts.
  std::vector<std::pair<size_t, size_t>> checkpoints;
  size_t checkpoints_counted = 0;
};

/// Runs one device's shard list: bind the device, build a private backend
/// (or reuse the round-1 backend on a recovery round), admit against the
/// device's governor, broadcast the build-side tables, then execute each
/// slice exactly as the single-device partitioned path does (upload, pinned
/// plan, accumulate). A sticky DeviceLost is caught here: the device is
/// marked dead in the group, its per-device breaker records the failure, the
/// governor grant is returned, and the slices that did not finish are
/// reported for re-placement.
void RunDeviceShards(TpchQuery q, const TpchHostTables& tables,
                     gpusim::DeviceGroup& group, int d,
                     const std::string& backend_name,
                     const std::vector<std::pair<size_t, size_t>>& ranges,
                     const ShardedQueryOptions& options, uint64_t footprint,
                     WorkerState& ws) {
  bool admitted = false;
  uint64_t stream_id = 0;
  size_t next_range = 0;  // first range not yet accumulated
  ws.device_lost = false;
  ws.unfinished.clear();
  try {
    gpusim::Device& dev = group.device(d);
    gpusim::Device::DeviceGuard guard(dev);
    if (ws.backend == nullptr) {
      ws.backend = core::BackendRegistry::Instance().Create(backend_name);
      ws.start_ns = ws.backend->stream().now_ns();
    }
    gpusim::Stream& stream = ws.backend->stream();
    stream_id = stream.id();

    if (options.governor != nullptr) {
      const core::AdmissionTicket ticket = options.governor->Admit(
          d, stream_id, footprint, options.admit_timeout_ms);
      if (!ticket.admitted()) {
        throw std::runtime_error("device " + std::to_string(d) +
                                 " admission rejected for " +
                                 TpchQueryName(q));
      }
      admitted = true;
      ws.stats.granted_bytes = ticket.granted_bytes;
    }
    {
      gpusim::Device::ReservationScope scope(dev, stream_id);
      const auto upload = [&](const storage::Table& t, uint64_t* bytes) {
        // Transient wire faults replay the upload, mirroring the executor's
        // node-replay policy; simulated time of failed attempts stays
        // charged. DeviceLost is sticky and escapes to the recovery path.
        for (int attempt = 1;; ++attempt) {
          try {
            if (options.use_encoding) {
              return storage::UploadTableEncoded(stream, t, bytes);
            }
            if (bytes != nullptr) *bytes = detail::HostTableBytes(t);
            return storage::UploadTable(stream, t);
          } catch (const gpusim::TransferFault&) {
            core::ResilienceManager::Global().NoteFaultSeen();
            if (attempt >= 4) throw;
            core::ResilienceManager::Global().NoteRetry(0);
          }
        }
      };

      storage::DeviceTable orders, customer, part;
      uint64_t bcast = 0;
      uint64_t b = 0;
      if (detail::NeedsOrders(q)) {
        orders = upload(*tables.orders, &b);
        bcast += b;
      }
      if (detail::NeedsCustomer(q)) {
        customer = upload(*tables.customer, &b);
        bcast += b;
      }
      if (detail::NeedsPart(q)) {
        part = upload(*tables.part, &b);
        bcast += b;
      }
      ws.broadcast_bytes += bcast;
      ws.stats.upload_bytes += bcast;

      OptimizerOptions opt;
      opt.pin_backend = ws.backend->name();
      for (; next_range < ranges.size(); ++next_range) {
        const auto& [lo, hi] = ranges[next_range];
        if (lo >= hi) continue;  // orderkey alignment emptied this range
        const storage::Table slice = detail::SliceTable(*tables.lineitem, lo, hi);
        uint64_t slice_bytes = 0;
        const storage::DeviceTable lineitem = upload(slice, &slice_bytes);
        const QueryPlanBundle bundle =
            detail::BuildBundle(q, lineitem, orders, customer, part);
        const PhysicalPlan phys = Optimize(bundle.plan, opt);
        const ExecutionResult res = RunPinned(phys, *ws.backend);
        detail::Accumulate(q, bundle, res, ws.partials);
        ws.checkpoints.emplace_back(lo, hi);  // host partials now cover [lo,hi)
        ws.stats.upload_bytes += slice_bytes;
        ws.stats.download_bytes += detail::DownloadedBytes(bundle, res);
        ws.stats.rows += hi - lo;
        ++ws.stats.shards;
      }
    }
    ws.stats.busy_ns = ws.backend->stream().now_ns() - ws.start_ns;
    if (admitted) options.governor->Release(d, stream_id);
  } catch (const gpusim::DeviceLost&) {
    if (admitted) options.governor->Release(d, stream_id);
    group.MarkLost(d);
    core::ResilienceManager::Global().RecordFailure(backend_name, d);
    ws.device_lost = true;
    ws.stats.lost = true;
    // The slice in flight (nothing of it was accumulated) and everything
    // after it still need a home; finished slices stay in ws.partials.
    for (size_t i = next_range; i < ranges.size(); ++i) {
      ws.unfinished.push_back(ranges[i]);
    }
    if (ws.backend != nullptr) {
      ws.stats.busy_ns = ws.backend->stream().now_ns() - ws.start_ns;
    }
  } catch (...) {
    if (admitted) options.governor->Release(d, stream_id);
    ws.error = std::current_exception();
  }
}

/// Drives the group's lifecycle machine at a round boundary. When `tick` is
/// set the armed auto-reset policy advances first (Lost devices that have
/// waited their drawn number of rounds move to Probing); then every Probing
/// device gets its half-open probe, and the outcome is mirrored into every
/// backend@ordinal breaker at that ordinal (SyncDeviceProbe). A device that
/// passes is readmitted on the spot: its worker keeps its backend (the
/// stream is just a timeline; nothing device-resident survives a round) and
/// its checkpointed host partials, and the next round's broadcast upload
/// restores build-side state before any slice runs on it. On a healthy run
/// no device is ever Probing, so nothing here executes or charges.
void ProbeAndReadmit(gpusim::DeviceGroup& group,
                     std::vector<WorkerState>& workers, bool tick,
                     ShardedRunStats& st) {
  if (tick) group.TickLostDevices();
  for (int d : group.ProbingDevices()) {
    const bool ok = group.Probe(d);
    core::ResilienceManager::Global().SyncDeviceProbe(d, ok);
    if (!ok) {
      ++st.probe_failures;
      continue;
    }
    workers[static_cast<size_t>(d)].stats.readmitted = true;
    group.CompleteReadmission(d);
    ++st.devices_readmitted;
  }
}

}  // namespace

const char* ExchangeEdgeKindName(ExchangeEdge::Kind kind) {
  switch (kind) {
    case ExchangeEdge::Kind::kScatter: return "scatter";
    case ExchangeEdge::Kind::kBroadcast: return "broadcast";
    case ExchangeEdge::Kind::kGather: return "gather";
  }
  return "?";
}

ShardedPlanSpec PlanShardedExecution(TpchQuery query,
                                     const TpchHostTables& tables,
                                     const gpusim::DeviceGroup& group,
                                     size_t force_shards) {
  detail::RequireTables(query, tables);
  ShardedPlanSpec spec;
  spec.devices = group.size();
  spec.shards = force_shards > 0 ? force_shards
                                 : static_cast<size_t>(group.size());
  const bool align = detail::NeedsOrders(query);
  const std::vector<size_t> bounds =
      detail::PartitionBounds(*tables.lineitem, spec.shards, align);
  const size_t li_rows = tables.lineitem->num_rows();
  const uint64_t li_bytes = detail::HostTableBytes(*tables.lineitem);
  const uint64_t row_bytes = li_rows > 0 ? li_bytes / li_rows : 0;

  // Shard s lands on device s % N (round-robin, same as RunSharded).
  for (size_t s = 0; s + 1 < bounds.size(); ++s) {
    ShardPlacement p;
    p.device = static_cast<int>(s % static_cast<size_t>(group.size()));
    p.row_begin = bounds[s];
    p.row_end = bounds[s + 1];
    p.upload_bytes = (p.row_end - p.row_begin) * row_bytes;
    spec.placements.push_back(p);

    ExchangeEdge e;
    e.kind = ExchangeEdge::Kind::kScatter;
    e.device = p.device;
    e.bytes = p.upload_bytes;
    e.rows = p.row_end - p.row_begin;
    e.what = "lineitem[" + std::to_string(p.row_begin) + "," +
             std::to_string(p.row_end) + ")";
    spec.edges.push_back(e);
    spec.exchange_plan.ExchangeScatter(e.device, e.bytes, e.rows, e.what);
  }

  // Devices that received at least one shard get the build-side broadcasts.
  std::vector<bool> used(static_cast<size_t>(group.size()), false);
  for (const ShardPlacement& p : spec.placements) {
    used[static_cast<size_t>(p.device)] = true;
  }
  const auto broadcast = [&](const char* name, const storage::Table& t) {
    for (int d = 0; d < group.size(); ++d) {
      if (!used[static_cast<size_t>(d)]) continue;
      ExchangeEdge e;
      e.kind = ExchangeEdge::Kind::kBroadcast;
      e.device = d;
      e.bytes = detail::HostTableBytes(t);
      e.rows = t.num_rows();
      e.what = name;
      spec.edges.push_back(e);
      spec.exchange_plan.ExchangeBroadcast(d, e.bytes, e.rows,
                                           std::string(name) + "->dev" +
                                               std::to_string(d));
    }
  };
  if (detail::NeedsOrders(query)) broadcast("orders", *tables.orders);
  if (detail::NeedsCustomer(query)) broadcast("customer", *tables.customer);
  if (detail::NeedsPart(query)) broadcast("part", *tables.part);

  // One gather edge per non-coordinator device, routed by the topology.
  const size_t shard_rows =
      spec.shards > 0 ? (li_rows + spec.shards - 1) / spec.shards : li_rows;
  for (int d = 1; d < group.size(); ++d) {
    if (!used[static_cast<size_t>(d)]) continue;
    const gpusim::LinkPath link = group.Link(d, 0);
    ExchangeEdge e;
    e.kind = ExchangeEdge::Kind::kGather;
    e.device = d;
    e.bytes = EstimatePartialBytes(query, shard_rows);
    e.rows = shard_rows;
    e.what = "partials";
    e.peer = link.peer;
    e.hops = link.hops;
    spec.edges.push_back(e);
    spec.exchange_plan.ExchangeGather(d, e.bytes, e.rows,
                                      "partials dev" + std::to_string(d) +
                                          "->dev0");
  }
  return spec;
}

std::string ExplainSharded(const ShardedPlanSpec& spec,
                           const gpusim::DeviceGroup& group,
                           const std::string& backend_name) {
  std::ostringstream os;
  os << "sharded execution: " << spec.devices << " device(s), " << spec.shards
     << " shard(s), peer islands of " << group.topology().peer_island_size
     << "\n";
  os << "shard placement:\n";
  for (size_t s = 0; s < spec.placements.size(); ++s) {
    const ShardPlacement& p = spec.placements[s];
    os << "  shard " << s << " -> device " << p.device << "  rows ["
       << p.row_begin << ", " << p.row_end << ")  " << p.upload_bytes
       << " B\n";
  }
  os << "exchange edges:\n";
  for (const ExchangeEdge& e : spec.edges) {
    os << "  " << ExchangeEdgeKindName(e.kind) << "  " << e.what;
    if (e.kind == ExchangeEdge::Kind::kGather) {
      os << "  dev" << e.device << " -> dev0  " << e.bytes << " B  "
         << (e.peer ? "p2p link (1 hop)" : "via host (2 hops)");
    } else {
      os << "  host -> dev" << e.device << "  " << e.bytes << " B  pcie";
    }
    os << "\n";
  }
  os << "exchange plan (cost-estimated, " << backend_name << "):\n";
  OptimizerOptions opt;
  opt.pin_backend = backend_name;
  os << Explain(Optimize(spec.exchange_plan, opt));
  return os.str();
}

TpchQueryResult RunSharded(TpchQuery query, const TpchHostTables& tables,
                           gpusim::DeviceGroup& group,
                           const std::string& backend_name,
                           const ShardedQueryOptions& options,
                           ShardedRunStats* stats) {
  detail::RequireTables(query, tables);
  const int nd = group.size();
  if (nd <= 0) throw std::invalid_argument("empty device group");

  ShardedRunStats local;
  ShardedRunStats& st = stats != nullptr ? *stats : local;
  st = ShardedRunStats();
  st.devices = nd;

  if (nd == 1) {
    // Degenerate case: exactly the governed single-device path (bit-identical
    // simulated timeline), with the group's device bound for the backend.
    gpusim::Device::DeviceGuard guard(group.device(0));
    std::unique_ptr<core::Backend> backend =
        core::BackendRegistry::Instance().Create(backend_name);
    gpusim::Stream& stream = backend->stream();
    bool admitted = false;
    uint64_t granted = 0;
    if (options.governor != nullptr) {
      const uint64_t footprint = EstimateQueryFootprint(
          query, tables, backend_name, 1, options.use_encoding);
      const core::AdmissionTicket ticket = options.governor->Admit(
          0, stream.id(), footprint, options.admit_timeout_ms);
      if (!ticket.admitted()) {
        throw std::runtime_error("device 0 admission rejected for " +
                                 std::string(TpchQueryName(query)));
      }
      admitted = true;
      granted = ticket.granted_bytes;
    }
    GovernedQueryOptions gopt;
    gopt.force_partitions = options.force_shards;
    gopt.use_encoding = options.use_encoding;
    GovernedRunStats gstats;
    TpchQueryResult result;
    try {
      result = RunGoverned(query, tables, *backend, gopt, &gstats);
    } catch (...) {
      if (admitted) options.governor->Release(0, stream.id());
      throw;
    }
    if (admitted) options.governor->Release(0, stream.id());
    st.shards = gstats.partitions;
    st.simulated_ns = gstats.simulated_ns;
    DeviceShardStats ds;
    ds.device = 0;
    ds.shards = gstats.partitions;
    ds.rows = tables.lineitem->num_rows();
    ds.upload_bytes = gstats.spill_h2d_bytes;
    ds.download_bytes = gstats.spill_d2h_bytes;
    ds.busy_ns = gstats.simulated_ns;
    ds.granted_bytes = granted;
    ds.peak_bytes = group.PerDevicePeakBytes()[0];
    st.per_device.push_back(ds);
    return result;
  }

  {
    // Probe once: a backend routed through process-global library state
    // (ArrayFire's implicit JIT stream, the adaptive hybrid) cannot run one
    // instance per device-thread.
    gpusim::Device::DeviceGuard guard(group.device(0));
    const std::unique_ptr<core::Backend> probe =
        core::BackendRegistry::Instance().Create(backend_name);
    if (!probe->concurrency_safe()) {
      throw std::invalid_argument(
          "backend '" + backend_name +
          "' is not concurrency-safe and cannot shard across " +
          std::to_string(nd) + " devices");
    }
  }

  std::vector<WorkerState> workers(static_cast<size_t>(nd));
  // A group whose operator reset a lost device between runs (MarkReset)
  // re-admits here, before placement, so this run plans onto the recovered
  // ordinal. No-op — and charge-free — unless some device is Probing.
  ProbeAndReadmit(group, workers, /*tick=*/false, st);

  const size_t shards =
      options.force_shards > 0 ? options.force_shards : static_cast<size_t>(nd);
  st.shards = shards;
  const bool align = detail::NeedsOrders(query);
  const std::vector<size_t> bounds =
      detail::PartitionBounds(*tables.lineitem, shards, align);
  // Shards are dealt round-robin over the devices alive at planning time —
  // with every device healthy this is exactly `s % nd`, so the healthy-path
  // placement (and therefore the simulated timeline) is unchanged.
  std::vector<std::vector<std::pair<size_t, size_t>>> assigned(
      static_cast<size_t>(nd));
  {
    const std::vector<int> alive = group.AliveDevices();
    if (alive.empty()) {
      throw gpusim::DeviceLost("sharded run: no live device in the group");
    }
    for (size_t s = 0; s + 1 < bounds.size(); ++s) {
      const int d = alive[s % alive.size()];
      assigned[static_cast<size_t>(d)].emplace_back(bounds[s], bounds[s + 1]);
    }
  }
  // Each device's grant covers its largest single slice plus the broadcast
  // tables — the same per-slice footprint the governed ladder would size.
  const uint64_t footprint = EstimateQueryFootprint(
      query, tables, backend_name, shards, options.use_encoding);

  // Run rounds until every slice has executed somewhere. Round 1 is the
  // normal sharded run; a round ends by collecting the unfinished slices of
  // workers that lost their device and dealing them — sorted by row_begin,
  // round-robin in ascending device order — onto the survivors. Placement
  // depends only on which devices died, never on host thread timing, so a
  // given fault schedule always yields the same degraded placement.
  while (true) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(nd));
    for (int d = 0; d < nd; ++d) {
      if (assigned[static_cast<size_t>(d)].empty()) continue;
      threads.emplace_back([&, d] {
        RunDeviceShards(query, tables, group, d, backend_name,
                        assigned[static_cast<size_t>(d)], options, footprint,
                        workers[static_cast<size_t>(d)]);
      });
    }
    for (std::thread& t : threads) t.join();
    for (const WorkerState& ws : workers) {
      if (ws.error != nullptr) std::rethrow_exception(ws.error);
    }

    std::vector<std::pair<size_t, size_t>> unfinished;
    for (int d = 0; d < nd; ++d) {
      WorkerState& ws = workers[static_cast<size_t>(d)];
      assigned[static_cast<size_t>(d)].clear();
      if (!ws.device_lost) continue;
      ws.device_lost = false;
      ++st.devices_lost;
      // Everything the dead device had finished is checkpointed in host
      // memory (ws.partials); those slices merge into the answer without
      // ever re-running. Credit each checkpoint at most once across
      // repeated losses of the same device.
      st.checkpointed_slices_reused +=
          ws.checkpoints.size() - ws.checkpoints_counted;
      ws.checkpoints_counted = ws.checkpoints.size();
      unfinished.insert(unfinished.end(), ws.unfinished.begin(),
                        ws.unfinished.end());
      ws.unfinished.clear();
    }
    if (unfinished.empty()) break;

    // Round boundary: advance the lifecycle machine before re-dealing, so a
    // device whose reset came through in time takes replacement slices
    // itself instead of leaving the survivors to absorb them.
    ProbeAndReadmit(group, workers, /*tick=*/true, st);

    const std::vector<int> alive = group.AliveDevices();
    if (alive.empty()) {
      throw gpusim::DeviceLost(
          "sharded run: every device of the group was lost; " +
          std::to_string(unfinished.size()) + " slice(s) of " +
          std::string(TpchQueryName(query)) + " never ran");
    }
    std::sort(unfinished.begin(), unfinished.end());
    for (size_t i = 0; i < unfinished.size(); ++i) {
      const int d = alive[i % alive.size()];
      assigned[static_cast<size_t>(d)].push_back(unfinished[i]);
    }
    ++st.recovery_rounds;
    st.replaced_shards += unfinished.size();
  }

  // Gather: every non-coordinator device ships its partials to the
  // coordinator — the lowest live device that ran work; device 0 on the
  // healthy path — over the fabric (in fixed device order, so the
  // coordinator stream's timeline is deterministic); the host merge itself
  // is free. Dead devices cannot touch the fabric: their partials are
  // already host-resident (Accumulate downloads every slice result), so
  // they are drained from host staging without an exchange charge.
  int coord = -1;
  for (int d = 0; d < nd; ++d) {
    if (workers[static_cast<size_t>(d)].backend != nullptr &&
        group.IsAlive(d)) {
      coord = d;
      break;
    }
  }
  if (coord < 0) {
    throw gpusim::DeviceLost(
        "sharded run: no live device left to coordinate the gather");
  }
  detail::Partials acc = std::move(workers[static_cast<size_t>(coord)].partials);
  gpusim::Stream& dst = workers[static_cast<size_t>(coord)].backend->stream();
  for (int d = 0; d < nd; ++d) {
    if (d == coord) continue;
    WorkerState& ws = workers[static_cast<size_t>(d)];
    if (ws.backend == nullptr) continue;  // no shards landed on this device
    const uint64_t bytes = std::max<uint64_t>(PartialBytes(query, ws.partials),
                                              sizeof(double));
    bool charged = false;
    if (group.IsAlive(d)) {
      // A transient TransferFault on the gather edge replays the exchange (a
      // fault fires before any pricing, so the successful attempt charges
      // exactly once). After the retry budget — or a DeviceLost on the edge
      // — fall back to draining the host-resident partials uncharged.
      for (int attempt = 0; attempt < 4; ++attempt) {
        try {
          group.ChargeExchange(d, ws.backend->stream(), coord, dst, bytes);
          charged = true;
          break;
        } catch (const gpusim::TransferFault&) {
          ++st.transfer_retries;
          core::ResilienceManager::Global().NoteFaultSeen();
        } catch (const gpusim::DeviceLost&) {
          group.MarkLost(d);
          core::ResilienceManager::Global().RecordFailure(backend_name, d);
          ws.stats.lost = true;
          ++st.devices_lost;
          break;
        }
      }
    }
    if (charged) {
      st.exchange_bytes += bytes;
      if (group.IsPeer(d, coord)) {
        st.exchange_p2p_bytes += bytes;
      } else {
        st.exchange_via_host_bytes += bytes;
      }
    }
    detail::MergePartials(query, acc, ws.partials);
  }

  const std::vector<uint64_t> peaks = group.PerDevicePeakBytes();
  uint64_t makespan = 0;
  for (int d = 0; d < nd; ++d) {
    WorkerState& ws = workers[static_cast<size_t>(d)];
    if (ws.backend == nullptr) continue;
    DeviceShardStats ds = ws.stats;
    ds.device = d;
    ds.peak_bytes = peaks[static_cast<size_t>(d)];
    st.broadcast_bytes += ws.broadcast_bytes;
    makespan = std::max(makespan, ws.backend->stream().now_ns() - ws.start_ns);
    st.per_device.push_back(ds);
  }
  st.simulated_ns = makespan;
  return detail::Finalize(query, std::move(acc));
}

core::QueryFn MakeShardedQuery(TpchQuery query, TpchHostTables tables,
                               gpusim::DeviceGroup& group,
                               ShardedQueryOptions options,
                               TpchQueryResult* out, ShardedRunStats* stats) {
  // `group` is captured by reference: the caller keeps it (and the host
  // tables) alive until the scheduler drains.
  return [query, tables, &group, options = std::move(options), out,
          stats](core::Backend& backend) {
    ShardedRunStats local;
    ShardedRunStats& st = stats != nullptr ? *stats : local;
    TpchQueryResult result =
        RunSharded(query, tables, group, backend.name(), options, &st);
    // The sharded run happened on the group's own streams; advance the
    // client's timeline by its makespan so scheduler latency percentiles
    // price the query at its true simulated cost.
    backend.stream().ChargeOverhead(st.simulated_ns);
    if (out != nullptr) *out = std::move(result);
  };
}

}  // namespace plan
