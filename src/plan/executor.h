// Physical-plan executor.
//
// Nodes run eagerly in insertion order; for a plan whose nodes mirror a
// hand-coded query's backend-call order, a pinned run issues the *identical*
// call sequence (including host downloads) and therefore charges a
// bit-identical simulated timeline — the golden property
// tests/timing_invariance_test.cc pins.
//
// RunHybrid executes each node on its dispatched registry backend and
// charges a device-to-device materialization transfer on the consumer's
// stream whenever an input crosses a backend boundary.
//
// Execution is resilient (core/error.h taxonomy): transient faults replay
// the node on the same backend, device OOM reclaims the pool and retries
// once, and — in hybrid mode — a fatally-failing backend feeds its circuit
// breaker and the node falls back to the next capable dispatch candidate,
// so a dead sub-backend degrades the plan instead of failing the query.
#ifndef PLAN_EXECUTOR_H_
#define PLAN_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/backend.h"
#include "core/scheduler.h"
#include "plan/optimizer.h"
#include "storage/device_column.h"

namespace plan {

/// Runtime value of one node. Only the member matching the node kind is
/// populated.
struct NodeValue {
  bool computed = false;  ///< ran (false: scan, dead, or skipped)
  bool skipped = false;   ///< guard was falsy or an input was skipped
  bool decoded = false;   ///< encoded scan materialized into `column` (once)

  core::SelectionResult sel;                              // filter kinds
  core::JoinResult join;                                  // join
  core::GroupByResult groups;                             // group-by
  storage::DeviceColumn column;                           // gather/map/...
  std::pair<storage::DeviceColumn, storage::DeviceColumn> pair;  // sort-by-key
  double scalar = 0.0;                                    // reduce / fused sum

  // Host downloads (fetch nodes).
  std::vector<int32_t> host_keys;    ///< FetchGroups keys
  std::vector<double> host_vals_f;   ///< FetchGroups float aggregate
  std::vector<int64_t> host_vals_i;  ///< FetchGroups count aggregate
  std::vector<double> host_first;    ///< FetchPair sorted keys
  std::vector<int32_t> host_second;  ///< FetchPair reordered values

  uint64_t measured_ns = 0;  ///< simulated time this node charged
  uint64_t boundary_ns = 0;  ///< share spent on cross-backend transfers
  size_t out_rows = 0;
};

struct ExecutionResult {
  std::vector<NodeValue> values;  ///< indexed by node id
  uint64_t total_ns = 0;          ///< sum of per-node measured time
};

/// Runs every node on `backend`, ignoring the plan's dispatch assignments
/// (single-backend / pinned execution). Throws std::logic_error if the plan
/// still contains an unmerged filter chain (run Optimize first).
ExecutionResult RunPinned(const PhysicalPlan& plan, core::Backend& backend);

/// Runs each node on its assigned backend (instantiated from the registry),
/// pricing boundary materializations. Requires RegisterBuiltinBackends().
ExecutionResult RunHybrid(const PhysicalPlan& plan);

/// Adapts a plan for core::QueryScheduler submission: the returned functor
/// executes the plan pinned to the scheduler client's backend.
core::QueryFn MakePlanQuery(std::shared_ptr<const PhysicalPlan> plan);

/// Adapts a *logical* plan for scheduler submission with adaptive dispatch:
/// every execution re-optimizes against the current circuit-breaker state
/// and runs hybrid, so queries route around backends that went unhealthy
/// after planning. The client's stream is charged the plan's total
/// simulated time, keeping QueryRecord::simulated_ns meaningful.
core::QueryFn MakeAdaptivePlanQuery(std::shared_ptr<const Plan> logical,
                                    OptimizerOptions options = {});

}  // namespace plan

#endif  // PLAN_EXECUTOR_H_
