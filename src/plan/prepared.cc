#include "plan/prepared.h"

#include <stdexcept>
#include <utility>

#include "plan/executor.h"
#include "plan/partition_detail.h"
#include "storage/encoded_column.h"

namespace plan {
namespace {

uint64_t ResidentBytes(const storage::Table& host,
                       const storage::DeviceTable& resident) {
  uint64_t bytes = 0;
  for (const std::string& name : host.column_names()) {
    if (resident.HasEncoded(name)) {
      bytes += resident.encoded(name).encoded_byte_size();
    } else if (resident.HasColumn(name)) {
      bytes += resident.column(name).byte_size();
    }
  }
  return bytes;
}

}  // namespace

std::shared_ptr<const ResidentTpchTables> MakeResident(
    gpusim::Stream& stream, const TpchHostTables& host, bool use_encoding) {
  if (host.lineitem == nullptr) {
    throw std::invalid_argument("MakeResident: lineitem table is required");
  }
  auto out = std::make_shared<ResidentTpchTables>();
  out->encoded = use_encoding;

  const auto upload = [&](const storage::Table& t) {
    uint64_t bytes = 0;
    storage::DeviceTable dev =
        use_encoding ? storage::UploadTableEncoded(stream, t, &bytes)
                     : storage::UploadTable(stream, t);
    if (!use_encoding) bytes = detail::HostTableBytes(t);
    out->uploaded_bytes += bytes;
    out->resident_bytes += ResidentBytes(t, dev);
    out->stats_fingerprint = CombineFingerprint(
        out->stats_fingerprint, TableStatsFingerprint(t, dev));
    return dev;
  };

  out->lineitem = upload(*host.lineitem);
  if (host.orders != nullptr) {
    out->orders = upload(*host.orders);
    out->has_orders = true;
  }
  if (host.customer != nullptr) {
    out->customer = upload(*host.customer);
    out->has_customer = true;
  }
  if (host.part != nullptr) {
    out->part = upload(*host.part);
    out->has_part = true;
  }
  return out;
}

PreparedTpchQuery::PreparedTpchQuery(
    QueryShape shape, std::shared_ptr<const ResidentTpchTables> tables,
    QueryPlanBundle bundle, PhysicalPlan physical)
    : shape_(shape),
      tables_(std::move(tables)),
      bundle_(std::move(bundle)),
      physical_(std::move(physical)),
      footprint_bytes_(
          detail::FootprintOfPlan(physical_, /*include_scans=*/false)) {}

TpchQueryResult PreparedTpchQuery::Run(core::Backend& backend) const {
  const ExecutionResult res = RunPinned(physical_, backend);
  TpchQueryResult r;
  switch (shape_.query) {
    case TpchQuery::kQ1:
      r.q1 = ExtractQ1(bundle_, res);
      break;
    case TpchQuery::kQ3:
      r.q3 = ExtractQ3(bundle_, res, shape_.q3);
      break;
    case TpchQuery::kQ4:
      r.q4 = ExtractQ4(bundle_, res);
      break;
    case TpchQuery::kQ6:
      r.scalar = ExtractQ6(bundle_, res);
      break;
    case TpchQuery::kQ14:
      r.scalar = ExtractQ14(bundle_, res);
      break;
  }
  return r;
}

std::shared_ptr<const PreparedTpchQuery> PrepareTpchQuery(
    const QueryShape& shape,
    std::shared_ptr<const ResidentTpchTables> tables,
    const std::string& backend_name) {
  if (tables == nullptr) {
    throw std::invalid_argument("PrepareTpchQuery: null resident tables");
  }
  const TpchQuery q = shape.query;
  const auto require = [&](bool present, const char* name) {
    if (!present) {
      throw std::invalid_argument(std::string(TpchQueryName(q)) +
                                  " requires resident table " + name);
    }
  };
  if (detail::NeedsOrders(q)) require(tables->has_orders, "orders");
  if (detail::NeedsCustomer(q)) require(tables->has_customer, "customer");
  if (detail::NeedsPart(q)) require(tables->has_part, "part");

  QueryPlanBundle bundle;
  switch (q) {
    case TpchQuery::kQ1:
      bundle = BuildQ1Plan(tables->lineitem, shape.q1);
      break;
    case TpchQuery::kQ3:
      bundle = BuildQ3Plan(tables->customer, tables->orders,
                           tables->lineitem, shape.q3);
      break;
    case TpchQuery::kQ4:
      bundle = BuildQ4Plan(tables->orders, tables->lineitem, shape.q4);
      break;
    case TpchQuery::kQ6:
      bundle = BuildQ6Plan(tables->lineitem, shape.q6);
      break;
    case TpchQuery::kQ14:
      bundle = BuildQ14Plan(tables->part, tables->lineitem, shape.q14);
      break;
  }
  OptimizerOptions opt;
  opt.pin_backend = backend_name;
  PhysicalPlan physical = Optimize(bundle.plan, opt);
  return std::make_shared<const PreparedTpchQuery>(
      shape, std::move(tables), std::move(bundle), std::move(physical));
}

}  // namespace plan
