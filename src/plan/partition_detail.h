// Shared internals of the partitioned execution paths.
//
// plan/partition.cc (single-device spill-to-host execution) and
// plan/exchange.cc (multi-device sharded execution) split the same tables on
// the same orderkey-snapped boundaries, build the same per-slice plans, and
// merge the same per-slice partials — one slice at a time on one device in
// the former, one slice per device in parallel in the latter. These helpers
// are that common core. They are implementation detail: no stability
// promises, not part of the plan/ public API.
#ifndef PLAN_PARTITION_DETAIL_H_
#define PLAN_PARTITION_DETAIL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/partition.h"
#include "plan/tpch_plans.h"
#include "storage/table.h"

namespace plan {
namespace detail {

bool NeedsOrders(TpchQuery q);
bool NeedsCustomer(TpchQuery q);
bool NeedsPart(TpchQuery q);

/// Throws std::invalid_argument naming the first missing required table.
void RequireTables(TpchQuery q, const TpchHostTables& tables);

/// Builds the query's plan over the given device-resident tables (only the
/// tables the query reads are touched).
QueryPlanBundle BuildBundle(TpchQuery q, const storage::DeviceTable& lineitem,
                            const storage::DeviceTable& orders,
                            const storage::DeviceTable& customer,
                            const storage::DeviceTable& part);

/// Host-side row-range copy [lo, hi) of every column.
storage::Table SliceTable(const storage::Table& table, size_t lo, size_t hi);

/// K+1 partition boundaries over lineitem; with `align_orderkey` each
/// boundary snaps forward to the next l_orderkey change point so no order
/// straddles two slices. Pure function of (rows, keys, k).
std::vector<size_t> PartitionBounds(const storage::Table& lineitem, size_t k,
                                    bool align_orderkey);

/// Mergeable per-partition state across the five queries. Merging is
/// addition (Q1/Q4/Q6/Q14) or disjoint concatenation (Q3), so partials can
/// accumulate in any order — including across devices.
struct Partials {
  Q1Partials q1;
  std::vector<tpch::Q3Row> q3_groups;
  std::map<int32_t, int64_t> q4_counts;
  double q6_sum = 0;
  double q14_total = 0;
  double q14_promo = 0;
};

/// Folds one slice's execution result into `acc`.
void Accumulate(TpchQuery q, const QueryPlanBundle& bundle,
                const ExecutionResult& res, Partials& acc);

/// Merges `other` into `acc` (slice-order-independent for exact results;
/// float sums re-associate within the usual tolerance).
void MergePartials(TpchQuery q, Partials& acc, const Partials& other);

/// Converts the accumulated partials into the query's final result.
TpchQueryResult Finalize(TpchQuery q, Partials acc);

/// Host bytes the marked fetch/reduce nodes downloaded from the device.
uint64_t DownloadedBytes(const QueryPlanBundle& bundle,
                         const ExecutionResult& res);

/// Worst-case device footprint of executing `phys` once: base-table upload
/// bytes (skipped with include_scans == false — the tables are already
/// resident, as in the serving tier's prepared queries) plus 2x the
/// materialized intermediates. See the definition in partition.cc for the
/// full model.
uint64_t FootprintOfPlan(const PhysicalPlan& phys, bool include_scans = true);

uint64_t HostTableBytes(const storage::Table& t);

}  // namespace detail
}  // namespace plan

#endif  // PLAN_PARTITION_DETAIL_H_
