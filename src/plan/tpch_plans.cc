#include "plan/tpch_plans.h"

#include <algorithm>
#include <utility>

namespace plan {
namespace {

using core::AggOp;
using core::CompareOp;
using core::Predicate;

NodeInput V(int node) { return NodeInput{node, Part::kValue}; }
NodeInput Rows(int node) { return NodeInput{node, Part::kRowIds}; }

/// The executed FetchGroups result as key -> value (mirrors Q1's
/// DownloadGroups).
std::map<int32_t, double> GroupMap(const NodeValue& fetch) {
  std::map<int32_t, double> out;
  for (size_t i = 0; i < fetch.host_keys.size(); ++i) {
    out[fetch.host_keys[i]] = fetch.host_vals_f.empty()
                                  ? static_cast<double>(fetch.host_vals_i[i])
                                  : fetch.host_vals_f[i];
  }
  return out;
}

/// Map lookup defaulting to 0 (a group missing from one partial sum).
double Lookup(const std::map<int32_t, double>& m, int32_t key) {
  const auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

}  // namespace

QueryPlanBundle BuildQ1Plan(const storage::DeviceTable& lineitem,
                            const tpch::Q1Params& params) {
  QueryPlanBundle b;
  Plan& p = b.plan;
  const int s_ship = p.Scan("lineitem", "l_shipdate", lineitem);
  const int s_rfls = p.Scan("lineitem", "l_rfls", lineitem);
  const int s_qty = p.Scan("lineitem", "l_quantity", lineitem);
  const int s_price = p.Scan("lineitem", "l_extendedprice", lineitem);
  const int s_disc = p.Scan("lineitem", "l_discount", lineitem);
  const int s_tax = p.Scan("lineitem", "l_tax", lineitem);

  const int f = p.Filter(
      V(s_ship), Predicate::Make("l_shipdate", CompareOp::kLe,
                                 static_cast<double>(params.CutoffDays())));
  const int g_key = p.Gather(V(s_rfls), Rows(f), "l_rfls[sel]");
  const int g_qty = p.Gather(V(s_qty), Rows(f), "l_quantity[sel]");
  const int g_price = p.Gather(V(s_price), Rows(f), "l_extendedprice[sel]");
  const int g_disc = p.Gather(V(s_disc), Rows(f), "l_discount[sel]");
  const int g_tax = p.Gather(V(s_tax), Rows(f), "l_tax[sel]");

  const int m1 = p.Map(MapOp::kSubFromScalar, V(g_disc), NodeInput{}, 1.0,
                       "1-disc");
  const int m2 = p.Map(MapOp::kMul, V(g_price), V(m1), 0.0, "disc_price");
  const int m3 = p.Map(MapOp::kAddScalar, V(g_tax), NodeInput{}, 1.0,
                       "1+tax");
  const int m4 = p.Map(MapOp::kMul, V(m2), V(m3), 0.0, "charge");

  auto grouped = [&](NodeInput values, AggOp agg, const std::string& name) {
    const int gb = p.GroupBy(V(g_key), values, agg, name);
    b.marks[name] = p.FetchGroups(gb);
  };
  grouped(V(g_qty), AggOp::kSum, "sum_qty");
  grouped(V(g_price), AggOp::kSum, "sum_base_price");
  grouped(V(m2), AggOp::kSum, "sum_disc_price");
  grouped(V(m4), AggOp::kSum, "sum_charge");
  grouped(V(g_disc), AggOp::kSum, "sum_disc");
  grouped(V(g_qty), AggOp::kCount, "count_order");
  return b;
}

void Q1Partials::Merge(const Q1Partials& other) {
  auto add = [](std::map<int32_t, double>& into,
                const std::map<int32_t, double>& from) {
    for (const auto& [k, v] : from) into[k] += v;
  };
  add(sum_qty, other.sum_qty);
  add(sum_base_price, other.sum_base_price);
  add(sum_disc_price, other.sum_disc_price);
  add(sum_charge, other.sum_charge);
  add(sum_disc, other.sum_disc);
  add(count_order, other.count_order);
}

Q1Partials ExtractQ1Partials(const QueryPlanBundle& bundle,
                             const ExecutionResult& result) {
  auto fetch = [&](const char* name) {
    return GroupMap(result.values[bundle.marks.at(name)]);
  };
  Q1Partials p;
  p.sum_qty = fetch("sum_qty");
  p.sum_base_price = fetch("sum_base_price");
  p.sum_disc_price = fetch("sum_disc_price");
  p.sum_charge = fetch("sum_charge");
  p.sum_disc = fetch("sum_disc");
  p.count_order = fetch("count_order");
  return p;
}

std::vector<tpch::Q1Row> FinalizeQ1(const Q1Partials& partials) {
  std::vector<tpch::Q1Row> rows;
  for (const auto& [k, count] : partials.count_order) {
    tpch::Q1Row row;
    row.returnflag = k / 2;
    row.linestatus = k % 2;
    row.count_order = static_cast<int64_t>(count);
    row.sum_qty = Lookup(partials.sum_qty, k);
    row.sum_base_price = Lookup(partials.sum_base_price, k);
    row.sum_disc_price = Lookup(partials.sum_disc_price, k);
    row.sum_charge = Lookup(partials.sum_charge, k);
    row.avg_qty = row.sum_qty / count;
    row.avg_price = row.sum_base_price / count;
    row.avg_disc = Lookup(partials.sum_disc, k) / count;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const tpch::Q1Row& a, const tpch::Q1Row& b) {
              return std::pair(a.returnflag, a.linestatus) <
                     std::pair(b.returnflag, b.linestatus);
            });
  return rows;
}

std::vector<tpch::Q1Row> ExtractQ1(const QueryPlanBundle& bundle,
                                   const ExecutionResult& result) {
  return FinalizeQ1(ExtractQ1Partials(bundle, result));
}

QueryPlanBundle BuildQ6Plan(const storage::DeviceTable& lineitem,
                            const tpch::Q6Params& params) {
  QueryPlanBundle b;
  Plan& p = b.plan;
  const int s_ship = p.Scan("lineitem", "l_shipdate", lineitem);
  const int s_disc = p.Scan("lineitem", "l_discount", lineitem);
  const int s_qty = p.Scan("lineitem", "l_quantity", lineitem);
  const int s_price = p.Scan("lineitem", "l_extendedprice", lineitem);

  // Five chained single-predicate sigmas; the optimizer folds them into one
  // SelectConjunctive (same column/predicate order as the hand-coded query).
  const int f1 = p.Filter(
      V(s_ship), Predicate::Make("l_shipdate", CompareOp::kGe,
                                 static_cast<double>(params.date_lo)));
  const int f2 = p.Filter(
      V(s_ship), Predicate::Make("l_shipdate", CompareOp::kLt,
                                 static_cast<double>(params.date_hi)),
      f1);
  const int f3 = p.Filter(
      V(s_disc),
      Predicate::Make("l_discount", CompareOp::kGe, params.discount_lo), f2);
  const int f4 = p.Filter(
      V(s_disc),
      Predicate::Make("l_discount", CompareOp::kLe, params.discount_hi), f3);
  const int f5 = p.Filter(
      V(s_qty),
      Predicate::Make("l_quantity", CompareOp::kLt, params.quantity_hi), f4);

  const int g_price = p.Gather(V(s_price), Rows(f5), "l_extendedprice[sel]");
  const int g_disc = p.Gather(V(s_disc), Rows(f5), "l_discount[sel]");
  const int m = p.Map(MapOp::kMul, V(g_price), V(g_disc), 0.0, "revenue");
  b.marks["revenue"] = p.Reduce(V(m), AggOp::kSum, "sum(revenue)");
  return b;
}

double ExtractQ6(const QueryPlanBundle& bundle,
                 const ExecutionResult& result) {
  const NodeValue& v = result.values[bundle.marks.at("revenue")];
  return v.computed ? v.scalar : 0.0;
}

QueryPlanBundle BuildQ3Plan(const storage::DeviceTable& customer,
                            const storage::DeviceTable& orders,
                            const storage::DeviceTable& lineitem,
                            const tpch::Q3Params& params) {
  QueryPlanBundle b;
  Plan& p = b.plan;
  const int s_cseg = p.Scan("customer", "c_mktsegment", customer);
  const int s_ckey = p.Scan("customer", "c_custkey", customer);
  const int s_odate = p.Scan("orders", "o_orderdate", orders);
  const int s_okey = p.Scan("orders", "o_orderkey", orders);
  const int s_ocust = p.Scan("orders", "o_custkey", orders);
  const int s_lship = p.Scan("lineitem", "l_shipdate", lineitem);
  const int s_lkey = p.Scan("lineitem", "l_orderkey", lineitem);
  const int s_lprice = p.Scan("lineitem", "l_extendedprice", lineitem);
  const int s_ldisc = p.Scan("lineitem", "l_discount", lineitem);

  const int f_cust = p.Filter(
      V(s_cseg), Predicate::Make("c_mktsegment", CompareOp::kEq,
                                 static_cast<double>(params.segment)));
  const int g_ckey = p.Gather(V(s_ckey), Rows(f_cust), "c_custkey[sel]");

  const int f_ord = p.Filter(
      V(s_odate), Predicate::Make("o_orderdate", CompareOp::kLt,
                                  static_cast<double>(params.date)));
  const int g_okey = p.Gather(V(s_okey), Rows(f_ord), "o_orderkey[sel]");
  const int g_ocust = p.Gather(V(s_ocust), Rows(f_ord), "o_custkey[sel]");

  const int j1 = p.Join(V(g_ckey), V(g_ocust), "customer|X|orders");
  const int g_surv = p.Gather(V(g_okey),
                              NodeInput{j1, Part::kRightRows},
                              "o_orderkey[join]");

  const int f_li = p.Filter(
      V(s_lship), Predicate::Make("l_shipdate", CompareOp::kGt,
                                  static_cast<double>(params.date)));
  const int g_lkey = p.Gather(V(s_lkey), Rows(f_li), "l_orderkey[sel]");
  const int g_lprice = p.Gather(V(s_lprice), Rows(f_li),
                                "l_extendedprice[sel]");
  const int g_ldisc = p.Gather(V(s_ldisc), Rows(f_li), "l_discount[sel]");

  const int j2 = p.Join(V(g_surv), V(g_lkey), "orders|X|lineitem");
  const int g_keys = p.Gather(V(g_lkey), NodeInput{j2, Part::kRightRows},
                              "l_orderkey[join]");
  const int g_price = p.Gather(V(g_lprice), NodeInput{j2, Part::kRightRows},
                               "l_extendedprice[join]");
  const int g_disc = p.Gather(V(g_ldisc), NodeInput{j2, Part::kRightRows},
                              "l_discount[join]");
  const int m1 = p.Map(MapOp::kSubFromScalar, V(g_disc), NodeInput{}, 1.0,
                       "1-disc");
  const int m2 = p.Map(MapOp::kMul, V(g_price), V(m1), 0.0, "revenue");
  const int gb = p.GroupBy(V(g_keys), V(m2), AggOp::kSum,
                           "revenue by orderkey");
  const int sbk = p.SortByKey(NodeInput{gb, Part::kGroupAggregate},
                              NodeInput{gb, Part::kGroupKeys},
                              "sort by revenue", /*guard=*/gb);
  b.marks["fetch"] = p.FetchPair(sbk);
  return b;
}

std::vector<tpch::Q3Row> ExtractQ3(const QueryPlanBundle& bundle,
                                   const ExecutionResult& result,
                                   const tpch::Q3Params& params) {
  const NodeValue& fetch = result.values[bundle.marks.at("fetch")];
  std::vector<tpch::Q3Row> rows;
  if (!fetch.computed) return rows;
  const auto& rev = fetch.host_first;
  const auto& key = fetch.host_second;
  const size_t k = std::min(params.limit, rev.size());
  for (size_t i = 0; i < k; ++i) {
    const size_t j = rev.size() - 1 - i;
    rows.push_back(tpch::Q3Row{key[j], rev[j]});
  }
  return rows;
}

std::vector<tpch::Q3Row> ExtractQ3Groups(const QueryPlanBundle& bundle,
                                         const ExecutionResult& result) {
  const NodeValue& fetch = result.values[bundle.marks.at("fetch")];
  std::vector<tpch::Q3Row> groups;
  if (!fetch.computed) return groups;
  groups.reserve(fetch.host_first.size());
  for (size_t i = 0; i < fetch.host_first.size(); ++i) {
    groups.push_back(tpch::Q3Row{fetch.host_second[i], fetch.host_first[i]});
  }
  return groups;
}

std::vector<tpch::Q3Row> FinalizeQ3(std::vector<tpch::Q3Row> groups,
                                    const tpch::Q3Params& params) {
  std::sort(groups.begin(), groups.end(),
            [](const tpch::Q3Row& a, const tpch::Q3Row& b) {
              return std::pair(a.revenue, a.orderkey) <
                     std::pair(b.revenue, b.orderkey);
            });
  std::vector<tpch::Q3Row> rows;
  const size_t k = std::min(params.limit, groups.size());
  for (size_t i = 0; i < k; ++i) {
    rows.push_back(groups[groups.size() - 1 - i]);
  }
  return rows;
}

QueryPlanBundle BuildQ4Plan(const storage::DeviceTable& orders,
                            const storage::DeviceTable& lineitem,
                            const tpch::Q4Params& params) {
  QueryPlanBundle b;
  Plan& p = b.plan;
  const int s_commit = p.Scan("lineitem", "l_commitdate", lineitem);
  const int s_receipt = p.Scan("lineitem", "l_receiptdate", lineitem);
  const int s_lkey = p.Scan("lineitem", "l_orderkey", lineitem);
  const int s_odate = p.Scan("orders", "o_orderdate", orders);
  const int s_okey = p.Scan("orders", "o_orderkey", orders);
  const int s_oprio = p.Scan("orders", "o_orderpriority", orders);

  const int late = p.FilterCompare(V(s_commit), CompareOp::kLt, V(s_receipt),
                                   "commit<receipt");
  const int g_late = p.Gather(V(s_lkey), Rows(late), "l_orderkey[late]");
  const int distinct = p.Unique(V(g_late), "distinct late keys");

  const int f1 = p.Filter(
      V(s_odate), Predicate::Make("o_orderdate", CompareOp::kGe,
                                  static_cast<double>(params.date_lo)));
  const int f2 = p.Filter(
      V(s_odate), Predicate::Make("o_orderdate", CompareOp::kLt,
                                  static_cast<double>(params.date_hi)),
      f1);
  const int g_okey = p.Gather(V(s_okey), Rows(f2), "o_orderkey[sel]");
  const int g_oprio = p.Gather(V(s_oprio), Rows(f2), "o_orderpriority[sel]");

  const int j = p.Join(V(g_okey), V(distinct), "orders|X|late");
  const int g_prio = p.Gather(V(g_oprio), NodeInput{j, Part::kLeftRows},
                              "priority[join]");
  const int gb = p.GroupBy(V(g_prio), V(g_prio), AggOp::kCount,
                           "count by priority");
  b.marks["fetch"] = p.FetchGroups(gb);
  return b;
}

std::vector<tpch::Q4Row> ExtractQ4(const QueryPlanBundle& bundle,
                                   const ExecutionResult& result) {
  const NodeValue& fetch = result.values[bundle.marks.at("fetch")];
  std::vector<tpch::Q4Row> rows;
  for (size_t i = 0; i < fetch.out_rows; ++i) {
    rows.push_back(tpch::Q4Row{fetch.host_keys[i], fetch.host_vals_i[i]});
  }
  std::sort(rows.begin(), rows.end(),
            [](const tpch::Q4Row& a, const tpch::Q4Row& b) {
              return a.orderpriority < b.orderpriority;
            });
  return rows;
}

QueryPlanBundle BuildQ14Plan(const storage::DeviceTable& part,
                             const storage::DeviceTable& lineitem,
                             const tpch::Q14Params& params) {
  QueryPlanBundle b;
  Plan& p = b.plan;
  const int s_ship = p.Scan("lineitem", "l_shipdate", lineitem);
  const int s_lpart = p.Scan("lineitem", "l_partkey", lineitem);
  const int s_price = p.Scan("lineitem", "l_extendedprice", lineitem);
  const int s_disc = p.Scan("lineitem", "l_discount", lineitem);
  const int s_pkey = p.Scan("part", "p_partkey", part);
  const int s_promo = p.Scan("part", "p_promo", part);

  const int f1 = p.Filter(
      V(s_ship), Predicate::Make("l_shipdate", CompareOp::kGe,
                                 static_cast<double>(params.date_lo)));
  const int f2 = p.Filter(
      V(s_ship), Predicate::Make("l_shipdate", CompareOp::kLt,
                                 static_cast<double>(params.date_hi)),
      f1);
  const int g_part = p.Gather(V(s_lpart), Rows(f2), "l_partkey[sel]");
  const int g_price = p.Gather(V(s_price), Rows(f2), "l_extendedprice[sel]");
  const int g_disc = p.Gather(V(s_disc), Rows(f2), "l_discount[sel]");
  const int m1 = p.Map(MapOp::kSubFromScalar, V(g_disc), NodeInput{}, 1.0,
                       "1-disc");
  const int m2 = p.Map(MapOp::kMul, V(g_price), V(m1), 0.0, "revenue");

  const int j = p.Join(V(s_pkey), V(g_part), "part|X|lineitem");
  const int g_promo = p.Gather(V(s_promo), NodeInput{j, Part::kLeftRows},
                               "p_promo[join]");
  const int g_revm = p.Gather(V(m2), NodeInput{j, Part::kRightRows},
                              "revenue[join]");
  const int r_total = p.Reduce(V(g_revm), AggOp::kSum, "total revenue");

  const int f_promo = p.Filter(
      V(g_promo), Predicate::Make("p_promo", CompareOp::kEq, 1.0));
  p.nodes[f_promo].guard = r_total;  // hand-coded: if (total == 0) return 0
  const int g_revp = p.Gather(V(g_revm), Rows(f_promo), "revenue[promo]");
  b.marks["total"] = r_total;
  b.marks["promo"] = p.Reduce(V(g_revp), AggOp::kSum, "promo revenue");
  return b;
}

double ExtractQ14(const QueryPlanBundle& bundle,
                  const ExecutionResult& result) {
  const NodeValue& total = result.values[bundle.marks.at("total")];
  const NodeValue& promo = result.values[bundle.marks.at("promo")];
  if (!total.computed || total.scalar == 0.0 || !promo.computed) return 0.0;
  return 100.0 * promo.scalar / total.scalar;
}

}  // namespace plan
