#include "plan/executor.h"

#include <exception>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "backends/common.h"
#include "core/error.h"
#include "core/registry.h"
#include "core/resilience.h"
#include "gpusim/algorithms.h"
#include "gpusim/kernel.h"
#include "handwritten/handwritten.h"

namespace plan {
namespace {

using storage::DataType;
using storage::DeviceColumn;

/// POD predicate evaluator for the fused filter+sum kernel (mirrors the
/// handwritten backend's).
struct PredEval {
  DataType type = DataType::kInt32;
  const void* data = nullptr;
  core::CompareOp op = core::CompareOp::kLt;
  double lit_f = 0.0;
  int64_t lit_i = 0;

  bool operator()(size_t row) const {
    switch (type) {
      case DataType::kInt32:
        return backends::ApplyCompare(
            op,
            static_cast<int64_t>(static_cast<const int32_t*>(data)[row]),
            lit_i);
      case DataType::kInt64:
        return backends::ApplyCompare(
            op, static_cast<const int64_t*>(data)[row], lit_i);
      case DataType::kFloat64:
        return backends::ApplyCompare(
            op, static_cast<const double*>(data)[row], lit_f);
      case DataType::kFloat32:
        return backends::ApplyCompare(
            op, static_cast<double>(static_cast<const float*>(data)[row]),
            lit_f);
    }
    return false;
  }
};

class Executor {
 public:
  /// `pinned`: run everything there. Null: hybrid mode, backends come from
  /// the registry per the plan's dispatch.
  Executor(const PhysicalPlan& phys, core::Backend* pinned)
      : phys_(phys), pinned_(pinned), assigned_(phys.node_backend) {
    result_.values.resize(phys.plan.nodes.size());
  }

  ExecutionResult Run() {
    const Plan& p = phys_.plan;
    for (size_t i = 0; i < p.nodes.size(); ++i) {
      const PlanNode& node = p.nodes[i];
      if (node.dead) continue;
      NodeValue& value = result_.values[i];
      if (node.kind == NodeKind::kScan) {
        value.computed = true;
        value.out_rows = node.scan_col   ? node.scan_col->size()
                         : node.scan_enc ? node.scan_enc->size
                                         : 0;
        continue;
      }
      if (ShouldSkip(node)) {
        value.skipped = true;
        continue;
      }
      RunNode(i, node, value);
      result_.total_ns += value.measured_ns;
    }
    return std::move(result_);
  }

 private:
  // -- Input resolution -----------------------------------------------------

  const NodeValue& ValueOf(int id) const { return result_.values[id]; }

  const DeviceColumn& Col(NodeInput in) const {
    const PlanNode& n = phys_.plan.nodes[in.node];
    const NodeValue& v = ValueOf(in.node);
    switch (in.part) {
      case Part::kValue:
        return n.kind == NodeKind::kScan ? *n.scan_col : v.column;
      case Part::kRowIds: return v.sel.row_ids;
      case Part::kLeftRows: return v.join.left_rows;
      case Part::kRightRows: return v.join.right_rows;
      case Part::kGroupKeys: return v.groups.keys;
      case Part::kGroupAggregate: return v.groups.aggregate;
      case Part::kPairFirst: return v.pair.first;
      case Part::kPairSecond: return v.pair.second;
    }
    throw std::logic_error("plan: bad NodeInput part");
  }

  /// The encoded column behind `in`, or null when the input is not an
  /// encoded base-table scan.
  const storage::EncodedDeviceColumn* EncOf(NodeInput in) const {
    if (in.node < 0 || in.part != Part::kValue) return nullptr;
    const PlanNode& n = phys_.plan.nodes[in.node];
    return n.kind == NodeKind::kScan ? n.scan_enc : nullptr;
  }

  /// Like Col, but materializes encoded scans: consumers with no
  /// encoded-domain realization (join build sides, disjunctive filters, map
  /// inputs) get the column decoded in full — once, cached in the scan
  /// node's value so later consumers reuse it.
  const DeviceColumn& ColDecoded(NodeInput in, core::Backend& backend) {
    const storage::EncodedDeviceColumn* enc = EncOf(in);
    if (enc == nullptr) return Col(in);
    NodeValue& v = result_.values[in.node];
    if (!v.decoded) {
      v.column = backend.DecodeColumn(*enc);
      v.decoded = true;
    }
    return v.column;
  }

  // -- Guard / skip handling ------------------------------------------------

  bool ShouldSkip(const PlanNode& node) const {
    for (const NodeInput& in : NodeInputs(node)) {
      if (in.node >= 0 && ValueOf(in.node).skipped) return true;
    }
    if (node.guard < 0) return false;
    const NodeValue& g = ValueOf(node.guard);
    if (g.skipped) return true;
    switch (phys_.plan.nodes[node.guard].kind) {
      case NodeKind::kGroupBy:
        return g.groups.num_groups == 0;
      case NodeKind::kReduce:
      case NodeKind::kFusedFilterSum:
        return g.scalar == 0.0;
      default:
        return !g.computed;
    }
  }

  // -- Backend resolution & boundary pricing --------------------------------

  core::Backend& BackendByName(const std::string& name) {
    auto it = backends_.find(name);
    if (it == backends_.end()) {
      it = backends_
               .emplace(name, core::BackendRegistry::Instance().Create(name))
               .first;
    }
    return *it->second;
  }

  core::Backend& BackendFor(size_t i) {
    if (pinned_ != nullptr) return *pinned_;
    const std::string& name = assigned_[i];
    if (name.empty()) {
      throw std::logic_error("plan: node " + std::to_string(i) +
                             " has no backend assignment");
    }
    return BackendByName(name);
  }

  /// In hybrid mode, charges a device-to-device copy on `backend`'s stream
  /// for every input materialized by a differently-assigned backend.
  /// Consults the *effective* assignment, so a node that fell back to
  /// another backend prices boundaries against where its inputs really live.
  uint64_t ChargeBoundaries(size_t i, const PlanNode& node,
                            core::Backend& backend) {
    if (pinned_ != nullptr) return 0;
    gpusim::Stream& stream = backend.stream();
    const uint64_t t0 = stream.now_ns();
    for (const NodeInput& in : NodeInputs(node)) {
      if (in.node < 0) continue;
      if (phys_.plan.nodes[in.node].kind == NodeKind::kScan) continue;
      const std::string& producer = assigned_[in.node];
      if (producer.empty() || producer == assigned_[i]) continue;
      stream.ChargeTransfer(gpusim::Stream::TransferKind::kDeviceToDevice,
                            Col(in).byte_size());
    }
    return stream.now_ns() - t0;
  }

  // -- Resilient node execution ---------------------------------------------

  /// A fallback candidate must actually be able to run the node: a join
  /// already resolved to the hash algorithm needs hash-join support (kAuto
  /// re-resolves per backend, and fused nodes run raw on any stream).
  bool CanRun(const std::string& name, const PlanNode& node) {
    if (node.kind == NodeKind::kJoin && node.join_algo == JoinAlgo::kHash) {
      return BackendByName(name)
                 .Realization(core::DbOperator::kHashJoin)
                 .level != core::SupportLevel::kNone;
    }
    return true;
  }

  /// Executes one node with recovery: transient faults replay the node on
  /// the same backend (up to the retry budget), device OOM trims the pool
  /// and retries once, and a fatal failure feeds the backend's circuit
  /// breaker and — in hybrid mode — falls the node back to the next capable
  /// dispatch candidate. Simulated time of failed attempts stays charged
  /// (the device really spent it), accumulated into measured_ns.
  void RunNode(size_t i, const PlanNode& node, NodeValue& value) {
    core::ResilienceManager& rm = core::ResilienceManager::Global();
    std::exception_ptr last_error;
    std::vector<std::string> fallbacks;
    size_t next_fallback = 0;
    bool enumerated = false;
    for (;;) {
      core::Backend& backend = BackendFor(i);
      gpusim::Stream& stream = backend.stream();
      bool reclaimed = false;
      bool fatal = false;
      for (int attempt = 1; !fatal; ++attempt) {
        const uint64_t t0 = stream.now_ns();
        try {
          value.boundary_ns += ChargeBoundaries(i, node, backend);
          Execute(i, node, backend, value);
          value.computed = true;
          value.measured_ns += stream.now_ns() - t0;
          if (pinned_ == nullptr) rm.RecordSuccess(assigned_[i]);
          return;
        } catch (...) {
          value.measured_ns += stream.now_ns() - t0;
          last_error = std::current_exception();
          const core::ErrorClass cls = core::Classify(last_error);
          rm.NoteFaultSeen();
          if (cls == core::ErrorClass::kTransient &&
              attempt < retry_.max_attempts) {
            rm.NoteRetry(0);  // node replay; backoff is the scheduler's job
            continue;
          }
          if (cls == core::ErrorClass::kResource && !reclaimed) {
            reclaimed = true;
            stream.device().TrimPool();
            rm.NoteOomReclaim();
            continue;
          }
          fatal = true;
        }
      }
      if (pinned_ != nullptr) break;  // pinned runs never re-route
      rm.RecordFailure(assigned_[i]);
      if (!enumerated) {
        enumerated = true;
        for (const std::string& c : phys_.candidates) {
          if (c != assigned_[i] && CanRun(c, node)) fallbacks.push_back(c);
        }
      }
      if (next_fallback >= fallbacks.size()) break;
      assigned_[i] = fallbacks[next_fallback++];
      rm.NoteReroute();
    }
    std::rethrow_exception(last_error);
  }

  // -- Node execution -------------------------------------------------------

  void Execute(size_t i, const PlanNode& node, core::Backend& backend,
               NodeValue& value) {
    switch (node.kind) {
      case NodeKind::kScan:
        break;
      case NodeKind::kFilter: {
        if (node.filter_source >= 0) {
          throw std::logic_error(
              "plan: unmerged filter chain at node " + std::to_string(i) +
              " — run Optimize() before executing");
        }
        bool any_enc = false;
        for (const NodeInput& pc : node.pred_cols) {
          if (EncOf(pc) != nullptr) any_enc = true;
        }
        if (any_enc && node.conjunctive) {
          // Encoded-domain selection: predicates fold into code-space
          // comparisons, nothing decodes.
          std::vector<core::ScanColumnRef> cols;
          cols.reserve(node.pred_cols.size());
          for (const NodeInput& pc : node.pred_cols) {
            const storage::EncodedDeviceColumn* e = EncOf(pc);
            cols.push_back(e != nullptr ? core::ScanColumnRef::Encoded(*e)
                                        : core::ScanColumnRef::Raw(Col(pc)));
          }
          value.sel = backend.SelectConjunctiveEncoded(cols, node.preds);
        } else if (node.preds.size() == 1 && node.conjunctive) {
          value.sel = backend.Select(ColDecoded(node.pred_cols[0], backend),
                                     node.preds[0]);
        } else {
          std::vector<const DeviceColumn*> cols;
          cols.reserve(node.pred_cols.size());
          for (const NodeInput& pc : node.pred_cols) {
            cols.push_back(&ColDecoded(pc, backend));
          }
          value.sel = node.conjunctive
                          ? backend.SelectConjunctive(cols, node.preds)
                          : backend.SelectDisjunctive(cols, node.preds);
        }
        value.out_rows = value.sel.count;
        break;
      }
      case NodeKind::kFilterCompare: {
        const storage::EncodedDeviceColumn* el = EncOf(node.cmp_lhs);
        const storage::EncodedDeviceColumn* er = EncOf(node.cmp_rhs);
        if (el != nullptr || er != nullptr) {
          const core::ScanColumnRef lhs =
              el != nullptr ? core::ScanColumnRef::Encoded(*el)
                            : core::ScanColumnRef::Raw(Col(node.cmp_lhs));
          const core::ScanColumnRef rhs =
              er != nullptr ? core::ScanColumnRef::Encoded(*er)
                            : core::ScanColumnRef::Raw(Col(node.cmp_rhs));
          value.sel = backend.SelectCompareColumnsEncoded(lhs, node.cmp_op,
                                                          rhs);
        } else {
          value.sel = backend.SelectCompareColumns(Col(node.cmp_lhs),
                                                   node.cmp_op,
                                                   Col(node.cmp_rhs));
        }
        value.out_rows = value.sel.count;
        break;
      }
      case NodeKind::kGather: {
        const storage::EncodedDeviceColumn* e = EncOf(node.gather_src);
        value.column =
            e != nullptr
                ? backend.GatherDecode(*e, Col(node.gather_indices))
                : backend.Gather(ColDecoded(node.gather_src, backend),
                                 Col(node.gather_indices));
        value.out_rows = value.column.size();
        break;
      }
      case NodeKind::kMap:
        switch (node.map_op) {
          case MapOp::kMul:
            value.column = backend.Product(ColDecoded(node.map_a, backend),
                                           ColDecoded(node.map_b, backend));
            break;
          case MapOp::kAddScalar:
            value.column =
                backend.AddScalar(ColDecoded(node.map_a, backend), node.alpha);
            break;
          case MapOp::kSubFromScalar:
            value.column = backend.SubtractFromScalar(
                node.alpha, ColDecoded(node.map_a, backend));
            break;
        }
        value.out_rows = value.column.size();
        break;
      case NodeKind::kJoin: {
        const DeviceColumn& build = ColDecoded(node.join_build, backend);
        const DeviceColumn& probe = ColDecoded(node.join_probe, backend);
        JoinAlgo algo = node.join_algo;
        if (algo == JoinAlgo::kAuto) {
          algo = backend.Realization(core::DbOperator::kHashJoin).level !=
                         core::SupportLevel::kNone
                     ? JoinAlgo::kHash
                     : JoinAlgo::kNestedLoops;
        }
        value.join = algo == JoinAlgo::kHash
                         ? backend.HashJoin(build, probe)
                         : backend.NestedLoopsJoin(build, probe);
        value.out_rows = value.join.count;
        break;
      }
      case NodeKind::kUnique:
        value.column = backend.Unique(ColDecoded(node.unary_in, backend));
        value.out_rows = value.column.size();
        break;
      case NodeKind::kGroupBy:
        value.groups = backend.GroupByAggregate(
            ColDecoded(node.group_keys, backend),
            ColDecoded(node.group_values, backend), node.agg);
        value.out_rows = value.groups.num_groups;
        break;
      case NodeKind::kReduce: {
        const storage::EncodedDeviceColumn* e = EncOf(node.unary_in);
        value.scalar =
            e != nullptr
                ? backend.ReduceEncoded(*e, node.agg)
                : backend.ReduceColumn(ColDecoded(node.unary_in, backend),
                                       node.agg);
        value.out_rows = 1;
        break;
      }
      case NodeKind::kSort:
        value.column = backend.Sort(ColDecoded(node.unary_in, backend));
        value.out_rows = value.column.size();
        break;
      case NodeKind::kSortByKey:
        value.pair = backend.SortByKey(ColDecoded(node.sort_keys, backend),
                                       ColDecoded(node.sort_values, backend));
        value.out_rows = value.pair.first.size();
        break;
      case NodeKind::kFetchGroups: {
        // Same download order as the hand-coded queries: keys, then
        // aggregate.
        const core::GroupByResult& g = ValueOf(node.fetch_from.node).groups;
        gpusim::Stream& stream = backend.stream();
        const storage::Column keys = g.keys.ToHost(stream);
        const storage::Column agg = g.aggregate.ToHost(stream);
        value.host_keys = keys.values<int32_t>();
        if (g.aggregate.type() == DataType::kInt64) {
          value.host_vals_i = agg.values<int64_t>();
        } else {
          value.host_vals_f = agg.values<double>();
        }
        value.out_rows = g.num_groups;
        break;
      }
      case NodeKind::kFetchPair: {
        const auto& pr = ValueOf(node.fetch_from.node).pair;
        gpusim::Stream& stream = backend.stream();
        value.host_first = pr.first.ToHost(stream).values<double>();
        value.host_second = pr.second.ToHost(stream).values<int32_t>();
        value.out_rows = value.host_first.size();
        break;
      }
      case NodeKind::kFusedMap:
        ExecuteFusedMap(node, backend.stream(), value);
        break;
      case NodeKind::kFusedFilterSum:
        ExecuteFusedFilterSum(node, backend.stream(), value);
        break;
      // Exchange operators on a single stream degenerate to one priced PCIe
      // hop each (the multi-device runner routes them over DeviceGroup links
      // instead and never takes this path).
      case NodeKind::kExchangeScatter:
      case NodeKind::kExchangeBroadcast:
        backend.stream().ChargeTransfer(
            gpusim::Stream::TransferKind::kHostToDevice, node.exch_bytes);
        value.out_rows = node.exch_rows;
        break;
      case NodeKind::kExchangeGather:
        backend.stream().ChargeTransfer(
            gpusim::Stream::TransferKind::kDeviceToHost, node.exch_bytes);
        value.out_rows = node.exch_rows;
        break;
    }
  }

  void ExecuteFusedMap(const PlanNode& node, gpusim::Stream& stream,
                       NodeValue& value) {
    const DeviceColumn& a = Col(node.map_a);
    const DeviceColumn& b = Col(node.map_b);
    const size_t n = a.size();
    if (b.size() != n) {
      throw std::logic_error("plan: fused-map input lengths differ");
    }
    DeviceColumn out(DataType::kFloat64, n, stream.device());
    const double* pa = a.data<double>();
    const double* pb = b.data<double>();
    double* po = out.data<double>();
    const double alpha = node.alpha;
    const bool sub = node.fused_inner == MapOp::kSubFromScalar;
    gpusim::KernelStats stats;
    stats.name = "plan::fused_map";
    stats.bytes_read = 2 * n * sizeof(double);
    stats.bytes_written = n * sizeof(double);
    stats.ops = 2 * n;
    gpusim::ParallelFor(stream, n, stats, [=](size_t i) {
      po[i] = pa[i] * (sub ? (alpha - pb[i]) : (pb[i] + alpha));
    });
    value.column = std::move(out);
    value.out_rows = n;
  }

  void ExecuteFusedFilterSum(const PlanNode& node, gpusim::Stream& stream,
                             NodeValue& value) {
    const size_t n = Col(node.pred_cols[0]).size();
    std::vector<PredEval> evals;
    std::set<const void*> buffers;
    uint64_t bytes_per_row = 0;
    auto account = [&](const DeviceColumn& c) {
      if (buffers.insert(c.raw_data()).second) {
        bytes_per_row += storage::DataTypeSize(c.type());
      }
    };
    for (size_t k = 0; k < node.pred_cols.size(); ++k) {
      const DeviceColumn& c = Col(node.pred_cols[k]);
      if (c.size() != n) {
        throw std::logic_error("plan: fused filter-sum domains differ");
      }
      account(c);
      PredEval e;
      e.type = c.type();
      e.data = c.raw_data();
      e.op = node.preds[k].op;
      e.lit_f = node.preds[k].value_f;
      e.lit_i = node.preds[k].value_i;
      evals.push_back(e);
    }
    const DeviceColumn& va = Col(node.fused_value_a);
    if (va.size() != n) {
      throw std::logic_error("plan: fused filter-sum value length differs");
    }
    account(va);
    const double* pa = va.data<double>();
    const double* pb = nullptr;
    if (node.fused_has_b) {
      const DeviceColumn& vb = Col(node.fused_value_b);
      if (vb.size() != n) {
        throw std::logic_error("plan: fused filter-sum value length differs");
      }
      account(vb);
      pb = vb.data<double>();
    }
    const bool conj = node.conjunctive;
    const std::vector<PredEval>* pe = &evals;
    auto pred = [pe, conj](size_t i) {
      for (const PredEval& e : *pe) {
        const bool ok = e(i);
        if (conj && !ok) return false;
        if (!conj && ok) return true;
      }
      return conj;
    };
    value.scalar = handwritten::FusedFilterSum<double>(
        stream, n,
        pred,
        [=](size_t i) { return pb ? pa[i] * pb[i] : pa[i]; },
        bytes_per_row);
    value.out_rows = 1;
  }

  const PhysicalPlan& phys_;
  core::Backend* pinned_;
  /// Effective per-node backend: starts as the optimizer's assignment and is
  /// updated when a node falls back, so boundary pricing and downstream
  /// consumers see where values were actually materialized.
  std::vector<std::string> assigned_;
  core::RetryPolicy retry_;
  std::map<std::string, std::unique_ptr<core::Backend>> backends_;
  ExecutionResult result_;
};

}  // namespace

ExecutionResult RunPinned(const PhysicalPlan& plan, core::Backend& backend) {
  return Executor(plan, &backend).Run();
}

ExecutionResult RunHybrid(const PhysicalPlan& plan) {
  return Executor(plan, nullptr).Run();
}

core::QueryFn MakePlanQuery(std::shared_ptr<const PhysicalPlan> plan) {
  return [plan = std::move(plan)](core::Backend& backend) {
    RunPinned(*plan, backend);
  };
}

core::QueryFn MakeAdaptivePlanQuery(std::shared_ptr<const Plan> logical,
                                    OptimizerOptions options) {
  return [logical = std::move(logical),
          options = std::move(options)](core::Backend& backend) {
    // Re-optimize per execution: with route_around_open_breakers set, a
    // backend whose breaker opened after planning gets no nodes assigned.
    PhysicalPlan phys = Optimize(*logical, options);
    ExecutionResult r = RunHybrid(phys);
    backend.stream().ChargeOverhead(r.total_ns);
  };
}

}  // namespace plan
