#include "plan/fingerprint.h"

#include <cstring>

#include "storage/encoded_column.h"

namespace plan {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t FnvI64(uint64_t h, int64_t v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t FnvF64(uint64_t h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvU64(h, bits);
}

uint64_t FnvStr(uint64_t h, const std::string& s) {
  h = FnvU64(h, s.size());
  return FnvBytes(h, s.data(), s.size());
}

}  // namespace

uint64_t QueryShapeHash(const QueryShape& shape) {
  uint64_t h = kFnvOffset;
  h = FnvU64(h, static_cast<uint64_t>(shape.query));
  h = FnvU64(h, shape.use_encoding ? 1 : 0);
  switch (shape.query) {
    case TpchQuery::kQ1:
      h = FnvI64(h, shape.q1.delta_days);
      break;
    case TpchQuery::kQ3:
      h = FnvI64(h, shape.q3.segment);
      h = FnvI64(h, shape.q3.date);
      h = FnvU64(h, shape.q3.limit);
      break;
    case TpchQuery::kQ4:
      h = FnvI64(h, shape.q4.date_lo);
      h = FnvI64(h, shape.q4.date_hi);
      break;
    case TpchQuery::kQ6:
      h = FnvI64(h, shape.q6.date_lo);
      h = FnvI64(h, shape.q6.date_hi);
      h = FnvF64(h, shape.q6.discount_lo);
      h = FnvF64(h, shape.q6.discount_hi);
      h = FnvF64(h, shape.q6.quantity_hi);
      break;
    case TpchQuery::kQ14:
      h = FnvI64(h, shape.q14.date_lo);
      h = FnvI64(h, shape.q14.date_hi);
      break;
  }
  return h;
}

uint64_t TableStatsFingerprint(const storage::Table& host,
                               const storage::DeviceTable& resident) {
  uint64_t h = kFnvOffset;
  h = FnvStr(h, host.name());
  h = FnvU64(h, host.num_rows());
  for (const std::string& name : host.column_names()) {
    h = FnvStr(h, name);
    h = FnvU64(h, static_cast<uint64_t>(host.column(name).type()));
    if (resident.HasEncoded(name)) {
      const storage::EncodedDeviceColumn& enc = resident.encoded(name);
      h = FnvU64(h, static_cast<uint64_t>(enc.encoding));
      h = FnvU64(h, enc.bit_width);
      h = FnvU64(h, enc.encoded_bytes);
      h = FnvU64(h, enc.size);
    } else if (resident.HasColumn(name)) {
      h = FnvU64(h, 0);  // raw residency
      h = FnvU64(h, resident.column(name).size());
    }
  }
  return h;
}

uint64_t CombineFingerprint(uint64_t seed, uint64_t value) {
  return FnvU64(seed == 0 ? kFnvOffset : seed, value);
}

size_t PlanCacheKeyHash::operator()(const PlanCacheKey& k) const {
  uint64_t h = kFnvOffset;
  h = FnvU64(h, k.shape_hash);
  h = FnvU64(h, k.stats_fingerprint);
  h = FnvStr(h, k.backend);
  h = FnvI64(h, k.device_count);
  return static_cast<size_t>(h);
}

}  // namespace plan
