// Materializing operations: where/lookup, reductions, scans, sorts,
// *-ByKey, set operations, join. Each forces evaluation of its inputs
// (ending JIT fusion) and runs the standard GPU pass structure from
// gpusim/algorithms.h on the ArrayFire default (CUDA-profile) stream.
#include <stdexcept>

#include "afsim/array.h"
#include "gpusim/algorithms.h"

namespace afsim {
namespace {

using detail::make_data_node;
using detail::node;
using detail::node_ptr;

gpusim::Stream& S() { return default_stream(); }

[[noreturn]] void unsupported(const char* what, dtype t) {
  throw std::invalid_argument(std::string("afsim: ") + what +
                              " unsupported for dtype " + dtype_name(t));
}

// Dispatch a statement with `T` bound to the C++ type of a numeric dtype.
#define AFSIM_DISPATCH_NUMERIC(DT, WHAT, STMT)                    \
  switch (DT) {                                                   \
    case dtype::s32: { using T = int32_t; STMT; break; }          \
    case dtype::s64: { using T = int64_t; STMT; break; }          \
    case dtype::u32: { using T = uint32_t; STMT; break; }         \
    case dtype::f32: { using T = float; STMT; break; }            \
    case dtype::f64: { using T = double; STMT; break; }           \
    default: unsupported(WHAT, DT);                               \
  }

// Dispatch including b8.
#define AFSIM_DISPATCH_ALL(DT, WHAT, STMT)                        \
  switch (DT) {                                                   \
    case dtype::b8: { using T = uint8_t; STMT; break; }           \
    case dtype::s32: { using T = int32_t; STMT; break; }          \
    case dtype::s64: { using T = int64_t; STMT; break; }          \
    case dtype::u32: { using T = uint32_t; STMT; break; }         \
    case dtype::f32: { using T = float; STMT; break; }            \
    case dtype::f64: { using T = double; STMT; break; }           \
  }

/// Shrinks a data node to `count` elements with one device copy.
array shrink(const node_ptr& full, size_t count) {
  node_ptr out = make_data_node(full->type, count);
  if (count > 0) {
    gpusim::CopyDeviceToDevice(S(), out->buffer->data(), full->buffer->data(),
                               count * dtype_size(full->type));
  }
  return array(std::move(out));
}

}  // namespace

array range(size_t n, dtype t) {
  node_ptr out = make_data_node(t, n);
  AFSIM_DISPATCH_NUMERIC(t, "range", {
    gpusim::Sequence(S(), static_cast<T*>(out->buffer->data()), n, T{0}, T{1});
  });
  return array(std::move(out));
}

array where(const array& mask) {
  mask.eval();
  const node_ptr in = mask.node();
  const size_t n = mask.elements();
  if (n == 0) return array(make_data_node(dtype::u32, 0));
  gpusim::Device& device = S().device();

  gpusim::DeviceArray<uint32_t> flags(n, device);
  gpusim::DeviceArray<uint32_t> positions(n, device);
  {
    gpusim::KernelStats stats;
    stats.name = "af::where_flags";
    stats.bytes_read = n * dtype_size(in->type);
    stats.bytes_written = n * sizeof(uint32_t);
    uint32_t* f = flags.data();
    AFSIM_DISPATCH_ALL(in->type, "where", {
      const T* data = static_cast<const T*>(in->buffer->data());
      gpusim::ParallelFor(S(), n, stats,
                          [=](size_t i) { f[i] = data[i] != T{} ? 1u : 0u; });
    });
  }
  gpusim::ExclusiveScan(S(), flags.data(), positions.data(), n, uint32_t{0},
                        [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t last_pos = 0, last_flag = 0;
  gpusim::CopyDeviceToHost(S(), &last_pos, positions.data() + (n - 1),
                           sizeof(uint32_t));
  gpusim::CopyDeviceToHost(S(), &last_flag, flags.data() + (n - 1),
                           sizeof(uint32_t));
  const size_t count = last_pos + last_flag;

  node_ptr out = make_data_node(dtype::u32, count);
  {
    gpusim::KernelStats stats;
    stats.name = "af::where_scatter";
    stats.bytes_read = n * 2 * sizeof(uint32_t);
    stats.bytes_written = count * sizeof(uint32_t);
    const uint32_t* f = flags.data();
    const uint32_t* pos = positions.data();
    uint32_t* o = static_cast<uint32_t*>(out->buffer->data());
    gpusim::ParallelFor(S(), n, stats, [=](size_t i) {
      if (f[i]) o[pos[i]] = static_cast<uint32_t>(i);
    });
  }
  return array(std::move(out));
}

array lookup(const array& in, const array& indices) {
  if (indices.type() != dtype::u32 && indices.type() != dtype::s32) {
    unsupported("lookup index", indices.type());
  }
  in.eval();
  indices.eval();
  const size_t n = indices.elements();
  node_ptr out = make_data_node(in.type(), n);
  const uint32_t* map =
      static_cast<const uint32_t*>(indices.node()->buffer->data());
  AFSIM_DISPATCH_ALL(in.type(), "lookup", {
    gpusim::Gather(S(), map, n,
                   static_cast<const T*>(in.node()->buffer->data()),
                   static_cast<T*>(out->buffer->data()));
  });
  return array(std::move(out));
}

namespace detail {

double reduce_sum(const array& a) {
  a.eval();
  double out = 0.0;
  AFSIM_DISPATCH_ALL(a.type(), "sum", {
    out = static_cast<double>(gpusim::Reduce(
        S(), static_cast<const T*>(a.node()->buffer->data()), a.elements(),
        T{}, [](T x, T y) { return static_cast<T>(x + y); }, "af::sum"));
  });
  return out;
}

int64_t reduce_sum_integral(const array& a) {
  a.eval();
  int64_t out = 0;
  AFSIM_DISPATCH_ALL(a.type(), "sum", {
    out = static_cast<int64_t>(gpusim::Reduce(
        S(), static_cast<const T*>(a.node()->buffer->data()), a.elements(),
        T{}, [](T x, T y) { return static_cast<T>(x + y); }, "af::sum"));
  });
  return out;
}

double reduce_min(const array& a) {
  a.eval();
  if (a.is_empty()) throw std::out_of_range("afsim: min of empty array");
  double out = 0.0;
  AFSIM_DISPATCH_NUMERIC(a.type(), "min", {
    const T* data = static_cast<const T*>(a.node()->buffer->data());
    T first;
    gpusim::CopyDeviceToHost(S(), &first, data, sizeof(T));
    out = static_cast<double>(gpusim::Reduce(
        S(), data, a.elements(), first,
        [](T x, T y) { return y < x ? y : x; }, "af::min"));
  });
  return out;
}

double reduce_max(const array& a) {
  a.eval();
  if (a.is_empty()) throw std::out_of_range("afsim: max of empty array");
  double out = 0.0;
  AFSIM_DISPATCH_NUMERIC(a.type(), "max", {
    const T* data = static_cast<const T*>(a.node()->buffer->data());
    T first;
    gpusim::CopyDeviceToHost(S(), &first, data, sizeof(T));
    out = static_cast<double>(gpusim::Reduce(
        S(), data, a.elements(), first,
        [](T x, T y) { return x < y ? y : x; }, "af::max"));
  });
  return out;
}

int64_t reduce_min_integral(const array& a) {
  return static_cast<int64_t>(reduce_min(a));
}

int64_t reduce_max_integral(const array& a) {
  return static_cast<int64_t>(reduce_max(a));
}

}  // namespace detail

size_t count(const array& mask) {
  mask.eval();
  size_t out = 0;
  AFSIM_DISPATCH_ALL(mask.type(), "count", {
    out = gpusim::CountIf(S(),
                          static_cast<const T*>(mask.node()->buffer->data()),
                          mask.elements(), [](T v) { return v != T{}; });
  });
  return out;
}

double mean(const array& a) {
  if (a.is_empty()) throw std::out_of_range("afsim: mean of empty array");
  return detail::reduce_sum(a) / static_cast<double>(a.elements());
}

bool anyTrue(const array& a) { return count(a) > 0; }

bool allTrue(const array& a) { return count(a) == a.elements(); }

array diff1(const array& a) {
  a.eval();
  const size_t n = a.elements();
  if (n < 2) return array(make_data_node(a.type(), 0));
  node_ptr out = make_data_node(a.type(), n - 1);
  AFSIM_DISPATCH_NUMERIC(a.type(), "diff1", {
    const T* in = static_cast<const T*>(a.node()->buffer->data());
    T* o = static_cast<T*>(out->buffer->data());
    gpusim::KernelStats stats;
    stats.name = "af::diff1";
    stats.bytes_read = n * sizeof(T);
    stats.bytes_written = (n - 1) * sizeof(T);
    gpusim::ParallelFor(S(), n - 1, stats, [=](size_t i) {
      o[i] = static_cast<T>(in[i + 1] - in[i]);
    });
  });
  return array(std::move(out));
}

array flip(const array& a) {
  a.eval();
  const size_t n = a.elements();
  node_ptr out = make_data_node(a.type(), n);
  AFSIM_DISPATCH_ALL(a.type(), "flip", {
    const T* in = static_cast<const T*>(a.node()->buffer->data());
    T* o = static_cast<T*>(out->buffer->data());
    gpusim::KernelStats stats;
    stats.name = "af::flip";
    stats.bytes_read = n * sizeof(T);
    stats.bytes_written = n * sizeof(T);
    gpusim::ParallelFor(S(), n, stats,
                        [=](size_t i) { o[i] = in[n - 1 - i]; });
  });
  return array(std::move(out));
}

array scan(const array& a, bool inclusive_scan) {
  a.eval();
  const size_t n = a.elements();
  node_ptr out = make_data_node(a.type(), n);
  AFSIM_DISPATCH_NUMERIC(a.type(), "scan", {
    const T* in = static_cast<const T*>(a.node()->buffer->data());
    T* o = static_cast<T*>(out->buffer->data());
    auto plus = [](T x, T y) { return static_cast<T>(x + y); };
    if (inclusive_scan) {
      gpusim::InclusiveScan(S(), in, o, n, plus);
    } else {
      gpusim::ExclusiveScan(S(), in, o, n, T{}, plus);
    }
  });
  return array(std::move(out));
}

array accum(const array& a) { return scan(a, /*inclusive_scan=*/true); }

array sort(const array& a) {
  a.eval();
  const size_t n = a.elements();
  node_ptr out = make_data_node(a.type(), n);
  if (n > 0) {
    gpusim::CopyDeviceToDevice(S(), out->buffer->data(),
                               a.node()->buffer->data(),
                               n * dtype_size(a.type()));
  }
  AFSIM_DISPATCH_NUMERIC(a.type(), "sort", {
    gpusim::RadixSortKeys(S(), static_cast<T*>(out->buffer->data()), n);
  });
  return array(std::move(out));
}

void sort(array* out_keys, array* out_values, const array& keys,
          const array& values) {
  if (keys.elements() != values.elements()) {
    throw std::invalid_argument("afsim: sort key/value size mismatch");
  }
  keys.eval();
  values.eval();
  const size_t n = keys.elements();
  node_ptr ok = make_data_node(keys.type(), n);
  node_ptr ov = make_data_node(values.type(), n);
  if (n > 0) {
    gpusim::CopyDeviceToDevice(S(), ok->buffer->data(),
                               keys.node()->buffer->data(),
                               n * dtype_size(keys.type()));
    gpusim::CopyDeviceToDevice(S(), ov->buffer->data(),
                               values.node()->buffer->data(),
                               n * dtype_size(values.type()));
  }
  AFSIM_DISPATCH_NUMERIC(keys.type(), "sort_by_key", {
    using K = T;
    K* kp = static_cast<K*>(ok->buffer->data());
    switch (values.type()) {
      case dtype::s32:
        gpusim::RadixSortPairs(S(), kp, static_cast<int32_t*>(ov->buffer->data()), n);
        break;
      case dtype::u32:
        gpusim::RadixSortPairs(S(), kp, static_cast<uint32_t*>(ov->buffer->data()), n);
        break;
      case dtype::s64:
        gpusim::RadixSortPairs(S(), kp, static_cast<int64_t*>(ov->buffer->data()), n);
        break;
      case dtype::f64:
        gpusim::RadixSortPairs(S(), kp, static_cast<double*>(ov->buffer->data()), n);
        break;
      case dtype::f32:
        gpusim::RadixSortPairs(S(), kp, static_cast<float*>(ov->buffer->data()), n);
        break;
      default:
        unsupported("sort_by_key value", values.type());
    }
  });
  *out_keys = array(std::move(ok));
  *out_values = array(std::move(ov));
}

void sumByKey(array* keys_out, array* vals_out, const array& keys,
              const array& values) {
  if (keys.elements() != values.elements()) {
    throw std::invalid_argument("afsim: sumByKey size mismatch");
  }
  keys.eval();
  values.eval();
  const size_t n = keys.elements();
  if (n == 0) {
    *keys_out = array(make_data_node(keys.type(), 0));
    *vals_out = array(make_data_node(values.type(), 0));
    return;
  }
  node_ptr ok = make_data_node(keys.type(), n);
  node_ptr ov = make_data_node(values.type(), n);
  size_t groups = 0;
  AFSIM_DISPATCH_NUMERIC(keys.type(), "sumByKey key", {
    using K = T;
    const K* kp = static_cast<const K*>(keys.node()->buffer->data());
    K* kop = static_cast<K*>(ok->buffer->data());
    switch (values.type()) {
      case dtype::s32:
        groups = gpusim::ReduceByKey(
            S(), kp, static_cast<const int32_t*>(values.node()->buffer->data()),
            n, kop, static_cast<int32_t*>(ov->buffer->data()),
            [](int32_t x, int32_t y) { return x + y; });
        break;
      case dtype::s64:
        groups = gpusim::ReduceByKey(
            S(), kp, static_cast<const int64_t*>(values.node()->buffer->data()),
            n, kop, static_cast<int64_t*>(ov->buffer->data()),
            [](int64_t x, int64_t y) { return x + y; });
        break;
      case dtype::u32:
        groups = gpusim::ReduceByKey(
            S(), kp, static_cast<const uint32_t*>(values.node()->buffer->data()),
            n, kop, static_cast<uint32_t*>(ov->buffer->data()),
            [](uint32_t x, uint32_t y) { return x + y; });
        break;
      case dtype::f64:
        groups = gpusim::ReduceByKey(
            S(), kp, static_cast<const double*>(values.node()->buffer->data()),
            n, kop, static_cast<double*>(ov->buffer->data()),
            [](double x, double y) { return x + y; });
        break;
      case dtype::f32:
        groups = gpusim::ReduceByKey(
            S(), kp, static_cast<const float*>(values.node()->buffer->data()),
            n, kop, static_cast<float*>(ov->buffer->data()),
            [](float x, float y) { return x + y; });
        break;
      default:
        unsupported("sumByKey value", values.type());
    }
  });
  *keys_out = shrink(ok, groups);
  *vals_out = shrink(ov, groups);
}

void countByKey(array* keys_out, array* counts_out, const array& keys) {
  keys.eval();
  const size_t n = keys.elements();
  if (n == 0) {
    *keys_out = array(make_data_node(keys.type(), 0));
    *counts_out = array(make_data_node(dtype::u32, 0));
    return;
  }
  // ArrayFire realizes countByKey as a segmented reduction over ones.
  gpusim::DeviceArray<uint32_t> ones(n, S().device());
  gpusim::Fill(S(), ones.data(), n, uint32_t{1});
  node_ptr ok = make_data_node(keys.type(), n);
  node_ptr oc = make_data_node(dtype::u32, n);
  size_t groups = 0;
  AFSIM_DISPATCH_NUMERIC(keys.type(), "countByKey", {
    groups = gpusim::ReduceByKey(
        S(), static_cast<const T*>(keys.node()->buffer->data()), ones.data(),
        n, static_cast<T*>(ok->buffer->data()),
        static_cast<uint32_t*>(oc->buffer->data()),
        [](uint32_t x, uint32_t y) { return x + y; });
  });
  *keys_out = shrink(ok, groups);
  *counts_out = shrink(oc, groups);
}

namespace {

/// Shared realization of min/max-ByKey: segmented reduction with the
/// appropriate identity. kIsMin selects the direction.
template <bool kIsMin>
void extremum_by_key(array* keys_out, array* vals_out, const array& keys,
                     const array& values) {
  if (keys.elements() != values.elements()) {
    throw std::invalid_argument("afsim: *ByKey size mismatch");
  }
  keys.eval();
  values.eval();
  const size_t n = keys.elements();
  if (n == 0) {
    *keys_out = array(make_data_node(keys.type(), 0));
    *vals_out = array(make_data_node(values.type(), 0));
    return;
  }
  node_ptr ok = make_data_node(keys.type(), n);
  node_ptr ov = make_data_node(values.type(), n);
  size_t groups = 0;
  AFSIM_DISPATCH_NUMERIC(keys.type(), "minmaxByKey key", {
    using K = T;
    const K* kp = static_cast<const K*>(keys.node()->buffer->data());
    K* kop = static_cast<K*>(ok->buffer->data());
    AFSIM_DISPATCH_NUMERIC(values.type(), "minmaxByKey value", {
      using V = T;
      groups = gpusim::ReduceByKey(
          S(), kp, static_cast<const V*>(values.node()->buffer->data()), n,
          kop, static_cast<V*>(ov->buffer->data()),
          [](V x, V y) { return kIsMin ? (y < x ? y : x) : (x < y ? y : x); });
    });
  });
  *keys_out = shrink(ok, groups);
  *vals_out = shrink(ov, groups);
}

}  // namespace

void minByKey(array* keys_out, array* vals_out, const array& keys,
              const array& values) {
  extremum_by_key<true>(keys_out, vals_out, keys, values);
}

void maxByKey(array* keys_out, array* vals_out, const array& keys,
              const array& values) {
  extremum_by_key<false>(keys_out, vals_out, keys, values);
}

void assign_indexed(const array& target, const array& indices,
                    const array& values) {
  if (indices.type() != dtype::u32 && indices.type() != dtype::s32) {
    unsupported("assign_indexed index", indices.type());
  }
  if (target.type() != values.type()) {
    unsupported("assign_indexed value", values.type());
  }
  target.eval();
  indices.eval();
  values.eval();
  const size_t n = indices.elements();
  const uint32_t* map =
      static_cast<const uint32_t*>(indices.node()->buffer->data());
  AFSIM_DISPATCH_ALL(target.type(), "assign_indexed", {
    gpusim::Scatter(S(), static_cast<const T*>(values.node()->buffer->data()),
                    map, n, static_cast<T*>(target.node()->buffer->data()));
  });
}

array setUnique(const array& a, bool is_sorted) {
  array sorted = is_sorted ? a : sort(a);
  sorted.eval();
  const size_t n = sorted.elements();
  if (n == 0) return sorted;
  node_ptr tmp = make_data_node(sorted.type(), n);
  size_t uniq = 0;
  AFSIM_DISPATCH_NUMERIC(sorted.type(), "setUnique", {
    uniq = gpusim::UniqueSorted(
        S(), static_cast<const T*>(sorted.node()->buffer->data()), n,
        static_cast<T*>(tmp->buffer->data()));
  });
  return shrink(tmp, uniq);
}

array setIntersect(const array& a, const array& b, bool is_unique) {
  array ua = is_unique ? a : setUnique(a);
  array ub = is_unique ? b : setUnique(b);
  ua.eval();
  ub.eval();
  if (ua.type() != ub.type()) unsupported("setIntersect rhs", ub.type());
  const size_t na = ua.elements();
  if (na == 0 || ub.elements() == 0) {
    return array(make_data_node(ua.type(), 0));
  }
  node_ptr tmp = make_data_node(ua.type(), na);
  size_t out_n = 0;
  AFSIM_DISPATCH_NUMERIC(ua.type(), "setIntersect", {
    out_n = gpusim::SetIntersectSorted(
        S(), static_cast<const T*>(ua.node()->buffer->data()), na,
        static_cast<const T*>(ub.node()->buffer->data()), ub.elements(),
        static_cast<T*>(tmp->buffer->data()));
  });
  return shrink(tmp, out_n);
}

array setUnion(const array& a, const array& b, bool is_unique) {
  (void)is_unique;  // union must re-sort the concatenation regardless
  if (a.type() != b.type()) unsupported("setUnion rhs", b.type());
  return setUnique(join(a, b), /*is_sorted=*/false);
}

array join(const array& a, const array& b) {
  if (a.type() != b.type()) unsupported("join rhs", b.type());
  a.eval();
  b.eval();
  const size_t na = a.elements(), nb = b.elements();
  node_ptr out = make_data_node(a.type(), na + nb);
  char* dst = static_cast<char*>(out->buffer->data());
  const size_t es = dtype_size(a.type());
  if (na > 0) {
    gpusim::CopyDeviceToDevice(S(), dst, a.node()->buffer->data(), na * es);
  }
  if (nb > 0) {
    gpusim::CopyDeviceToDevice(S(), dst + na * es, b.node()->buffer->data(),
                               nb * es);
  }
  return array(std::move(out));
}

}  // namespace afsim
