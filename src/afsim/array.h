// afsim: an ArrayFire-compatible API surface over the gpusim device.
//
// `array` is a runtime-typed handle onto a lazy expression graph
// (afsim/node.h). Element-wise operators are O(1) graph builders; data is
// materialized by eval(), host(), or any non-element-wise consumer (where,
// sort, reductions, ...-ByKey, set ops), at which point the whole
// element-wise subtree is fused into one kernel.
#ifndef AFSIM_ARRAY_H_
#define AFSIM_ARRAY_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "afsim/node.h"
#include "gpusim/stream.h"

namespace afsim {

/// The library's default (CUDA-backend) stream.
gpusim::Stream& default_stream();

/// Host-side bookkeeping cost charged per lazy node created; models
/// ArrayFire's JIT graph construction overhead.
inline constexpr uint64_t kJitNodeOverheadNs = 700;

/// Expression subtrees larger than this are evaluated eagerly, mirroring
/// ArrayFire's bounded JIT kernel size.
inline constexpr uint32_t kMaxJitTreeSize = 48;

/// Compile-time dtype of a C++ element type.
template <typename T>
constexpr dtype dtype_of();
template <>
constexpr dtype dtype_of<uint8_t>() { return dtype::b8; }
template <>
constexpr dtype dtype_of<int32_t>() { return dtype::s32; }
template <>
constexpr dtype dtype_of<int64_t>() { return dtype::s64; }
template <>
constexpr dtype dtype_of<uint32_t>() { return dtype::u32; }
template <>
constexpr dtype dtype_of<float>() { return dtype::f32; }
template <>
constexpr dtype dtype_of<double>() { return dtype::f64; }

/// Runtime-typed, lazily evaluated device array (af::array).
class array {
 public:
  /// Null array (0 elements).
  array() = default;

  /// Wraps an existing graph node (internal; used by the free functions).
  explicit array(detail::node_ptr n) : node_(std::move(n)) {}

  size_t elements() const { return node_ ? node_->n : 0; }
  bool is_empty() const { return elements() == 0; }
  dtype type() const {
    return node_ ? node_->type : dtype::f32;
  }

  /// True while the handle points at an unevaluated expression.
  bool is_lazy() const { return node_ && !node_->materialized(); }

  /// Materializes the expression (single fused kernel for the element-wise
  /// subtree). Idempotent. Returns *this for chaining, like af::eval.
  const array& eval() const;

  /// Downloads to host. T must match the array's dtype exactly.
  template <typename T>
  std::vector<T> host() const {
    require_dtype<T>("host<T>()");
    eval();
    std::vector<T> out(elements());
    if (!out.empty()) {
      gpusim::CopyDeviceToHost(default_stream(), out.data(),
                               node_->buffer->data(), out.size() * sizeof(T));
    }
    return out;
  }

  /// First element, downloaded to host (af::array::scalar<T>()).
  template <typename T>
  T scalar() const {
    require_dtype<T>("scalar<T>()");
    if (is_empty()) throw std::out_of_range("afsim: scalar() on empty array");
    eval();
    T out;
    gpusim::CopyDeviceToHost(default_stream(), &out, node_->buffer->data(),
                             sizeof(T));
    return out;
  }

  /// Raw device pointer; array must be evaluated first (internal interop).
  void* device_ptr() const {
    eval();
    return node_ ? node_->buffer->data() : nullptr;
  }

  detail::node_ptr node() const { return node_; }

 private:
  template <typename T>
  void require_dtype(const char* what) const {
    if (!node_ || node_->type != dtype_of<T>()) {
      throw std::invalid_argument(
          std::string("afsim: ") + what + " type mismatch: array is " +
          dtype_name(type()));
    }
  }

  detail::node_ptr node_;
};

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

/// n copies of a scalar (af::constant). Lazy: costs no memory until eval.
array constant(double value, size_t n, dtype t = dtype::f32);

/// [0, 1, ..., n-1] (af::range / af::iota). Materialized.
array range(size_t n, dtype t = dtype::s32);

/// Uploads host data (af::array(n, host_ptr)).
template <typename T>
array from_vector(const std::vector<T>& host);

/// Zero-copy view over an existing device buffer (interop constructor, the
/// analogue of af::array(dim, device_ptr, afDevice)).
array from_buffer(std::shared_ptr<gpusim::DeviceBuffer> buffer, dtype t,
                  size_t n);

// ---------------------------------------------------------------------------
// Element-wise operators (lazy graph builders)
// ---------------------------------------------------------------------------

array operator+(const array& a, const array& b);
array operator-(const array& a, const array& b);
array operator*(const array& a, const array& b);
array operator/(const array& a, const array& b);
array operator>(const array& a, const array& b);
array operator<(const array& a, const array& b);
array operator>=(const array& a, const array& b);
array operator<=(const array& a, const array& b);
array operator==(const array& a, const array& b);
array operator!=(const array& a, const array& b);
array operator&&(const array& a, const array& b);
array operator||(const array& a, const array& b);
array operator!(const array& a);
array operator-(const array& a);

array operator+(const array& a, double b);
array operator-(const array& a, double b);
array operator*(const array& a, double b);
array operator/(const array& a, double b);
array operator>(const array& a, double b);
array operator<(const array& a, double b);
array operator>=(const array& a, double b);
array operator<=(const array& a, double b);
array operator==(const array& a, double b);
array operator!=(const array& a, double b);
array operator+(double a, const array& b);
array operator-(double a, const array& b);
array operator*(double a, const array& b);
array operator>(double a, const array& b);
array operator<(double a, const array& b);

array min_of(const array& a, const array& b);  ///< af::min element-wise
array max_of(const array& a, const array& b);  ///< af::max element-wise

/// Type conversion node (af::array::as).
array cast(const array& a, dtype t);

// ---------------------------------------------------------------------------
// Materializing operations
// ---------------------------------------------------------------------------

/// Indices of non-zero elements as u32 (af::where). Table II realizes the
/// selection operator with where(<predicate expression>).
array where(const array& mask);

/// out[i] = in[idx[i]] (af::lookup); the gather used to materialize selected
/// rows from a where() index vector.
array lookup(const array& in, const array& indices);

/// Total (af::sum<T>). T must be the array's dtype.
template <typename T>
T sum(const array& a);

/// Minimum / maximum element (af::min<T> / af::max<T>).
template <typename T>
T min_all(const array& a);
template <typename T>
T max_all(const array& a);

/// Number of non-zero elements (af::count).
size_t count(const array& mask);

/// Arithmetic mean (af::mean), as double.
double mean(const array& a);

/// True if any / every element is non-zero (af::anyTrue / af::allTrue).
bool anyTrue(const array& a);
bool allTrue(const array& a);

/// First-order forward difference: out[i] = in[i+1] - in[i], n-1 elements
/// (af::diff1).
array diff1(const array& a);

/// Reversed copy (af::flip along dim 0).
array flip(const array& a);

/// Inclusive prefix sum (af::accum).
array accum(const array& a);

/// Prefix sum with selectable semantics (af::scan, AF_BINARY_ADD).
array scan(const array& a, bool inclusive_scan = true);

/// Ascending sort (af::sort).
array sort(const array& a);

/// Key-value sort (af::sort(out_keys, out_vals, keys, vals)).
void sort(array* out_keys, array* out_values, const array& keys,
          const array& values);

/// Segmented sum over equal consecutive keys (af::sumByKey). As in
/// ArrayFire, keys must already be grouped (e.g. sorted).
void sumByKey(array* keys_out, array* vals_out, const array& keys,
              const array& values);

/// Segmented count (af::countByKey).
void countByKey(array* keys_out, array* counts_out, const array& keys);

/// Segmented min/max (af::minByKey / af::maxByKey); keys must be grouped.
void minByKey(array* keys_out, array* vals_out, const array& keys,
              const array& values);
void maxByKey(array* keys_out, array* vals_out, const array& keys,
              const array& values);

/// Indexed assignment target(indices[i]) = values[i] (af subscript
/// assignment, the closest ArrayFire gets to a scatter primitive).
void assign_indexed(const array& target, const array& indices,
                    const array& values);

/// Distinct elements (af::setUnique). Sorts unless is_sorted.
array setUnique(const array& a, bool is_sorted = false);

/// Set intersection of two arrays of unique elements (af::setIntersect).
array setIntersect(const array& a, const array& b, bool is_unique = false);

/// Set union (af::setUnion).
array setUnion(const array& a, const array& b, bool is_unique = false);

/// Concatenation along dim 0 (af::join).
array join(const array& a, const array& b);

// ---------------------------------------------------------------------------
// Template definitions
// ---------------------------------------------------------------------------

namespace detail {
/// Allocates a materialized data node of `t` with n elements.
node_ptr make_data_node(dtype t, size_t n);
/// Typed reductions implemented in algorithm.cc.
double reduce_sum(const array& a);
double reduce_min(const array& a);
double reduce_max(const array& a);
int64_t reduce_sum_integral(const array& a);
int64_t reduce_min_integral(const array& a);
int64_t reduce_max_integral(const array& a);
}  // namespace detail

template <typename T>
array from_vector(const std::vector<T>& host) {
  static_assert(dtype_of<T>() == dtype_of<T>(), "unsupported element type");
  detail::node_ptr n = detail::make_data_node(dtype_of<T>(), host.size());
  if (!host.empty()) {
    gpusim::CopyHostToDevice(default_stream(), n->buffer->data(), host.data(),
                             host.size() * sizeof(T));
  }
  return array(std::move(n));
}

template <typename T>
T sum(const array& a) {
  if constexpr (dtype_of<T>() == dtype::f32 || dtype_of<T>() == dtype::f64) {
    return static_cast<T>(detail::reduce_sum(a));
  } else {
    return static_cast<T>(detail::reduce_sum_integral(a));
  }
}

template <typename T>
T min_all(const array& a) {
  if constexpr (dtype_of<T>() == dtype::f32 || dtype_of<T>() == dtype::f64) {
    return static_cast<T>(detail::reduce_min(a));
  } else {
    return static_cast<T>(detail::reduce_min_integral(a));
  }
}

template <typename T>
T max_all(const array& a) {
  if constexpr (dtype_of<T>() == dtype::f32 || dtype_of<T>() == dtype::f64) {
    return static_cast<T>(detail::reduce_max(a));
  } else {
    return static_cast<T>(detail::reduce_max_integral(a));
  }
}

}  // namespace afsim

#endif  // AFSIM_ARRAY_H_
