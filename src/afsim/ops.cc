// Element-wise operator graph builders (lazy).
#include <algorithm>
#include <cmath>

#include "afsim/array.h"

namespace afsim {
namespace {

using detail::binary_op;
using detail::node;
using detail::node_ptr;
using detail::unary_op;

/// Type promotion rank: wider/floatier wins (b8 < s32 < u32 < s64 < f32 < f64).
int rank(dtype t) {
  switch (t) {
    case dtype::b8: return 0;
    case dtype::s32: return 1;
    case dtype::u32: return 2;
    case dtype::s64: return 3;
    case dtype::f32: return 4;
    case dtype::f64: return 5;
  }
  return 0;
}

dtype promote(dtype a, dtype b) { return rank(a) >= rank(b) ? a : b; }

/// Broadcast scalar literal typed to pair with `peer`.
node_ptr make_literal(double value, const node_ptr& peer) {
  auto nd = std::make_shared<node>();
  nd->k = node::kind::scalar;
  nd->n = peer->n;
  const bool fractional = value != std::floor(value);
  nd->type = (is_floating(peer->type) || fractional) ? dtype::f64 : peer->type;
  nd->value.f = value;
  nd->value.i = static_cast<int64_t>(value);
  return nd;
}

array finish(node_ptr nd) {
  default_stream().ChargeOverhead(kJitNodeOverheadNs);
  array out(std::move(nd));
  // Bound the fused kernel size like ArrayFire's JIT does.
  if (out.node()->tree_size > kMaxJitTreeSize) out.eval();
  return out;
}

array make_binary(binary_op op, const node_ptr& a, const node_ptr& b) {
  if (!a || !b) throw std::invalid_argument("afsim: binary op on null array");
  if (a->n != b->n && a->k != node::kind::scalar &&
      b->k != node::kind::scalar) {
    throw std::invalid_argument("afsim: size mismatch in binary op");
  }
  auto nd = std::make_shared<node>();
  nd->k = node::kind::binary;
  nd->bop = op;
  nd->lhs = a;
  nd->rhs = b;
  nd->n = std::max(a->n, b->n);
  nd->type = detail::is_predicate(op) ? dtype::b8 : promote(a->type, b->type);
  nd->tree_size = 1 + a->tree_size + b->tree_size;
  return finish(std::move(nd));
}

array make_binary(binary_op op, const array& a, const array& b) {
  return make_binary(op, a.node(), b.node());
}

array make_binary_scalar(binary_op op, const array& a, double b) {
  return make_binary(op, a.node(), make_literal(b, a.node()));
}

array make_scalar_binary(binary_op op, double a, const array& b) {
  return make_binary(op, make_literal(a, b.node()), b.node());
}

array make_unary(unary_op op, const array& a, dtype result) {
  if (!a.node()) throw std::invalid_argument("afsim: unary op on null array");
  auto nd = std::make_shared<node>();
  nd->k = node::kind::unary;
  nd->uop = op;
  nd->lhs = a.node();
  nd->n = a.node()->n;
  nd->type = result;
  nd->tree_size = 1 + a.node()->tree_size;
  return finish(std::move(nd));
}

}  // namespace

array constant(double value, size_t n, dtype t) {
  auto nd = std::make_shared<node>();
  nd->k = node::kind::scalar;
  nd->n = n;
  nd->type = t;
  nd->value.f = value;
  nd->value.i = static_cast<int64_t>(value);
  default_stream().ChargeOverhead(kJitNodeOverheadNs);
  return array(std::move(nd));
}

array operator+(const array& a, const array& b) { return make_binary(binary_op::add, a, b); }
array operator-(const array& a, const array& b) { return make_binary(binary_op::sub, a, b); }
array operator*(const array& a, const array& b) { return make_binary(binary_op::mul, a, b); }
array operator/(const array& a, const array& b) { return make_binary(binary_op::div, a, b); }
array operator>(const array& a, const array& b) { return make_binary(binary_op::gt, a, b); }
array operator<(const array& a, const array& b) { return make_binary(binary_op::lt, a, b); }
array operator>=(const array& a, const array& b) { return make_binary(binary_op::ge, a, b); }
array operator<=(const array& a, const array& b) { return make_binary(binary_op::le, a, b); }
array operator==(const array& a, const array& b) { return make_binary(binary_op::eq, a, b); }
array operator!=(const array& a, const array& b) { return make_binary(binary_op::ne, a, b); }
array operator&&(const array& a, const array& b) { return make_binary(binary_op::logical_and, a, b); }
array operator||(const array& a, const array& b) { return make_binary(binary_op::logical_or, a, b); }

array operator!(const array& a) { return make_unary(unary_op::logical_not, a, dtype::b8); }
array operator-(const array& a) { return make_unary(unary_op::neg, a, a.type()); }

array operator+(const array& a, double b) { return make_binary_scalar(binary_op::add, a, b); }
array operator-(const array& a, double b) { return make_binary_scalar(binary_op::sub, a, b); }
array operator*(const array& a, double b) { return make_binary_scalar(binary_op::mul, a, b); }
array operator/(const array& a, double b) { return make_binary_scalar(binary_op::div, a, b); }
array operator>(const array& a, double b) { return make_binary_scalar(binary_op::gt, a, b); }
array operator<(const array& a, double b) { return make_binary_scalar(binary_op::lt, a, b); }
array operator>=(const array& a, double b) { return make_binary_scalar(binary_op::ge, a, b); }
array operator<=(const array& a, double b) { return make_binary_scalar(binary_op::le, a, b); }
array operator==(const array& a, double b) { return make_binary_scalar(binary_op::eq, a, b); }
array operator!=(const array& a, double b) { return make_binary_scalar(binary_op::ne, a, b); }
array operator+(double a, const array& b) { return make_scalar_binary(binary_op::add, a, b); }
array operator-(double a, const array& b) { return make_scalar_binary(binary_op::sub, a, b); }
array operator*(double a, const array& b) { return make_scalar_binary(binary_op::mul, a, b); }
array operator>(double a, const array& b) { return make_scalar_binary(binary_op::gt, a, b); }
array operator<(double a, const array& b) { return make_scalar_binary(binary_op::lt, a, b); }

array min_of(const array& a, const array& b) { return make_binary(binary_op::min, a, b); }
array max_of(const array& a, const array& b) { return make_binary(binary_op::max, a, b); }

array cast(const array& a, dtype t) {
  if (a.type() == t) return a;
  return make_unary(unary_op::cast, a, t);
}

}  // namespace afsim
