// JIT evaluation: fuses an element-wise expression tree into a single kernel.
#include <unordered_set>

#include "afsim/array.h"
#include "gpusim/algorithms.h"

namespace afsim {

gpusim::Stream& default_stream() {
  static gpusim::Stream* stream =
      new gpusim::Stream(gpusim::Device::Default(), gpusim::ApiProfile::Cuda());
  return *stream;
}

namespace detail {

node_ptr make_data_node(dtype t, size_t n) {
  auto nd = std::make_shared<node>();
  nd->k = node::kind::data;
  nd->type = t;
  nd->n = n;
  nd->buffer = std::make_shared<gpusim::DeviceBuffer>(
      n * dtype_size(t), default_stream().device());
  return nd;
}

namespace {

/// Typed load from a data node's buffer into an evaluation cell.
inline cell load_cell(const node* nd, size_t i) {
  cell c;
  const void* p = nd->buffer->data();
  switch (nd->type) {
    case dtype::b8: c.i = static_cast<const uint8_t*>(p)[i]; break;
    case dtype::s32: c.i = static_cast<const int32_t*>(p)[i]; break;
    case dtype::s64: c.i = static_cast<const int64_t*>(p)[i]; break;
    case dtype::u32: c.i = static_cast<const uint32_t*>(p)[i]; break;
    case dtype::f32: c.f = static_cast<const float*>(p)[i]; break;
    case dtype::f64: c.f = static_cast<const double*>(p)[i]; break;
  }
  return c;
}

inline double to_f(const cell& c, dtype t) {
  return is_floating(t) ? c.f : static_cast<double>(c.i);
}

inline int64_t to_i(const cell& c, dtype t) {
  return is_floating(t) ? static_cast<int64_t>(c.f) : c.i;
}

inline bool truthy(const cell& c, dtype t) {
  return is_floating(t) ? c.f != 0.0 : c.i != 0;
}

/// Recursive per-element interpretation of the fused subtree — the stand-in
/// for the code ArrayFire's JIT would have generated for this tree.
cell eval_cell(const node* nd, size_t i) {
  switch (nd->k) {
    case node::kind::data:
      return load_cell(nd, i);
    case node::kind::scalar: {
      cell c;
      if (is_floating(nd->type)) {
        c.f = nd->value.f;
      } else {
        c.i = nd->value.i;
      }
      return c;
    }
    case node::kind::unary: {
      const cell a = eval_cell(nd->lhs.get(), i);
      cell c;
      switch (nd->uop) {
        case unary_op::neg:
          if (is_floating(nd->type)) {
            c.f = -to_f(a, nd->lhs->type);
          } else {
            c.i = -to_i(a, nd->lhs->type);
          }
          break;
        case unary_op::logical_not:
          c.i = truthy(a, nd->lhs->type) ? 0 : 1;
          break;
        case unary_op::cast:
          if (is_floating(nd->type)) {
            c.f = to_f(a, nd->lhs->type);
          } else if (nd->type == dtype::b8) {
            c.i = truthy(a, nd->lhs->type) ? 1 : 0;
          } else {
            c.i = to_i(a, nd->lhs->type);
          }
          break;
      }
      return c;
    }
    case node::kind::binary: {
      const cell a = eval_cell(nd->lhs.get(), i);
      const cell b = eval_cell(nd->rhs.get(), i);
      const dtype lt = nd->lhs->type;
      const dtype rt = nd->rhs->type;
      const bool float_args = is_floating(lt) || is_floating(rt);
      cell c;
      switch (nd->bop) {
        case binary_op::add:
        case binary_op::sub:
        case binary_op::mul:
        case binary_op::div:
        case binary_op::min:
        case binary_op::max:
          if (is_floating(nd->type)) {
            const double x = to_f(a, lt), y = to_f(b, rt);
            switch (nd->bop) {
              case binary_op::add: c.f = x + y; break;
              case binary_op::sub: c.f = x - y; break;
              case binary_op::mul: c.f = x * y; break;
              case binary_op::div: c.f = x / y; break;
              case binary_op::min: c.f = y < x ? y : x; break;
              case binary_op::max: c.f = x < y ? y : x; break;
              default: break;
            }
          } else {
            const int64_t x = to_i(a, lt), y = to_i(b, rt);
            switch (nd->bop) {
              case binary_op::add: c.i = x + y; break;
              case binary_op::sub: c.i = x - y; break;
              case binary_op::mul: c.i = x * y; break;
              case binary_op::div: c.i = y == 0 ? 0 : x / y; break;
              case binary_op::min: c.i = y < x ? y : x; break;
              case binary_op::max: c.i = x < y ? y : x; break;
              default: break;
            }
          }
          break;
        case binary_op::gt:
        case binary_op::lt:
        case binary_op::ge:
        case binary_op::le:
        case binary_op::eq:
        case binary_op::ne:
          if (float_args) {
            const double x = to_f(a, lt), y = to_f(b, rt);
            switch (nd->bop) {
              case binary_op::gt: c.i = x > y; break;
              case binary_op::lt: c.i = x < y; break;
              case binary_op::ge: c.i = x >= y; break;
              case binary_op::le: c.i = x <= y; break;
              case binary_op::eq: c.i = x == y; break;
              case binary_op::ne: c.i = x != y; break;
              default: break;
            }
          } else {
            const int64_t x = to_i(a, lt), y = to_i(b, rt);
            switch (nd->bop) {
              case binary_op::gt: c.i = x > y; break;
              case binary_op::lt: c.i = x < y; break;
              case binary_op::ge: c.i = x >= y; break;
              case binary_op::le: c.i = x <= y; break;
              case binary_op::eq: c.i = x == y; break;
              case binary_op::ne: c.i = x != y; break;
              default: break;
            }
          }
          break;
        case binary_op::logical_and:
          c.i = truthy(a, lt) && truthy(b, rt);
          break;
        case binary_op::logical_or:
          c.i = truthy(a, lt) || truthy(b, rt);
          break;
      }
      return c;
    }
  }
  return cell{};
}

/// Typed store of a cell into the output buffer.
inline void store_cell(void* p, dtype t, size_t i, const cell& c) {
  switch (t) {
    case dtype::b8:
      static_cast<uint8_t*>(p)[i] = static_cast<uint8_t>(c.i != 0);
      break;
    case dtype::s32:
      static_cast<int32_t*>(p)[i] = static_cast<int32_t>(c.i);
      break;
    case dtype::s64: static_cast<int64_t*>(p)[i] = c.i; break;
    case dtype::u32:
      static_cast<uint32_t*>(p)[i] = static_cast<uint32_t>(c.i);
      break;
    case dtype::f32:
      static_cast<float*>(p)[i] = static_cast<float>(c.f);
      break;
    case dtype::f64: static_cast<double*>(p)[i] = c.f; break;
  }
}

/// Collects the distinct data leaves of the subtree for byte accounting.
void collect_leaves(const node* nd, std::unordered_set<const node*>* leaves) {
  if (nd->k == node::kind::data) {
    leaves->insert(nd);
    return;
  }
  if (nd->lhs) collect_leaves(nd->lhs.get(), leaves);
  if (nd->rhs) collect_leaves(nd->rhs.get(), leaves);
}

}  // namespace
}  // namespace detail

array from_buffer(std::shared_ptr<gpusim::DeviceBuffer> buffer, dtype t,
                  size_t n) {
  auto nd = std::make_shared<detail::node>();
  nd->k = detail::node::kind::data;
  nd->type = t;
  nd->n = n;
  nd->buffer = std::move(buffer);
  return array(std::move(nd));
}

const array& array::eval() const {
  using detail::node;
  if (!node_ || node_->k == node::kind::data) return *this;
  const size_t n = node_->n;
  auto buffer = std::make_shared<gpusim::DeviceBuffer>(
      n * dtype_size(node_->type), default_stream().device());

  std::unordered_set<const node*> leaves;
  detail::collect_leaves(node_.get(), &leaves);
  uint64_t bytes_read = 0;
  for (const node* leaf : leaves) bytes_read += leaf->n * dtype_size(leaf->type);

  gpusim::KernelStats stats;
  stats.name = "af::jit_fused";
  stats.bytes_read = bytes_read;
  stats.bytes_written = n * dtype_size(node_->type);
  stats.ops = static_cast<uint64_t>(n) * node_->tree_size;
  void* out = buffer->data();
  const node* root = node_.get();
  const dtype t = node_->type;
  gpusim::ParallelFor(default_stream(), n, stats, [=](size_t i) {
    detail::store_cell(out, t, i, detail::eval_cell(root, i));
  });

  // Mutate the shared node into a data node so every aliasing handle sees
  // the materialized result (af semantics).
  node_->k = node::kind::data;
  node_->buffer = std::move(buffer);
  node_->lhs.reset();
  node_->rhs.reset();
  node_->tree_size = 1;
  return *this;
}

}  // namespace afsim
