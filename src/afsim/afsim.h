// Umbrella header for the ArrayFire-like library simulation.
#ifndef AFSIM_AFSIM_H_
#define AFSIM_AFSIM_H_

#include "afsim/array.h"
#include "afsim/node.h"

#endif  // AFSIM_AFSIM_H_
