// Internal expression-DAG node of the ArrayFire-like library.
//
// ArrayFire arrays are runtime-typed handles onto a lazy expression graph;
// element-wise operations build JIT nodes and only materialize when a
// consumer needs real memory (eval(), reductions, sort, host copies). At
// eval time the whole element-wise subtree is fused into ONE generated
// kernel — a single pass over the leaf buffers — which is ArrayFire's
// signature performance behaviour that the paper's experiments surface.
#ifndef AFSIM_NODE_H_
#define AFSIM_NODE_H_

#include <cstdint>
#include <memory>

#include "gpusim/memory.h"

namespace afsim {

/// Runtime element type of an array (af::dtype).
enum class dtype : uint8_t {
  b8,   ///< boolean stored as uint8_t
  s32,  ///< int32_t
  s64,  ///< int64_t
  u32,  ///< uint32_t
  f32,  ///< float
  f64,  ///< double
};

/// Size in bytes of one element of `t`.
inline size_t dtype_size(dtype t) {
  switch (t) {
    case dtype::b8: return 1;
    case dtype::s32: return 4;
    case dtype::s64: return 8;
    case dtype::u32: return 4;
    case dtype::f32: return 4;
    case dtype::f64: return 8;
  }
  return 0;
}

inline const char* dtype_name(dtype t) {
  switch (t) {
    case dtype::b8: return "b8";
    case dtype::s32: return "s32";
    case dtype::s64: return "s64";
    case dtype::u32: return "u32";
    case dtype::f32: return "f32";
    case dtype::f64: return "f64";
  }
  return "?";
}

/// True for f32/f64.
inline bool is_floating(dtype t) { return t == dtype::f32 || t == dtype::f64; }

namespace detail {

enum class unary_op : uint8_t { neg, logical_not, cast };

enum class binary_op : uint8_t {
  add, sub, mul, div,
  gt, lt, ge, le, eq, ne,
  logical_and, logical_or,
  min, max,
};

/// True if `op` yields a b8 result regardless of operand types.
inline bool is_predicate(binary_op op) {
  switch (op) {
    case binary_op::gt:
    case binary_op::lt:
    case binary_op::ge:
    case binary_op::le:
    case binary_op::eq:
    case binary_op::ne:
    case binary_op::logical_and:
    case binary_op::logical_or:
      return true;
    default:
      return false;
  }
}

/// Untyped scalar literal; interpretation depends on the node's dtype.
struct literal {
  double f = 0.0;
  int64_t i = 0;
};

/// One node of the lazy graph. A node is either materialized device data or
/// an element-wise expression over child nodes. eval() mutates expression
/// nodes into data nodes in place, so every handle sharing the node benefits.
struct node {
  enum class kind : uint8_t { data, scalar, unary, binary } k = kind::data;
  dtype type = dtype::f32;
  size_t n = 0;  ///< element count (scalar nodes broadcast, n is peer count)

  // kind::data
  std::shared_ptr<gpusim::DeviceBuffer> buffer;

  // kind::scalar
  literal value;

  // kind::unary / kind::binary
  unary_op uop = unary_op::neg;
  binary_op bop = binary_op::add;
  std::shared_ptr<node> lhs;
  std::shared_ptr<node> rhs;

  /// Number of nodes in this expression subtree (1 for leaves). Used both
  /// for the fusion-length heuristic and for op-count cost accounting.
  uint32_t tree_size = 1;

  bool materialized() const { return k == kind::data; }
};

using node_ptr = std::shared_ptr<node>;

/// Per-element evaluation cell: floating and integral lanes. The interpreter
/// keeps values in the widest lane of their class, mirroring how the real
/// JIT emits typed registers.
struct cell {
  double f = 0.0;
  int64_t i = 0;
};

}  // namespace detail
}  // namespace afsim

#endif  // AFSIM_NODE_H_
