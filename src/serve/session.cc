#include "serve/session.h"

#include <utility>

#include "core/registry.h"

namespace serve {

ResidentCatalog::ResidentCatalog(CatalogOptions options)
    : options_(std::move(options)),
      backend_(core::BackendRegistry::Instance().Create(options_.backend)) {
  Generate();
  Upload();
}

plan::TpchHostTables ResidentCatalog::host() const {
  plan::TpchHostTables t;
  t.lineitem = &lineitem_;
  t.orders = &orders_;
  t.customer = &customer_;
  t.part = &part_;
  return t;
}

std::shared_ptr<const plan::ResidentTpchTables> ResidentCatalog::resident()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

uint64_t ResidentCatalog::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

void ResidentCatalog::Reload(double scale_factor) {
  options_.scale_factor = scale_factor;
  Generate();
  Upload();
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
}

void ResidentCatalog::Rebalance(gpusim::Device* device) {
  // Build the new upload backend on the target device (the backend's stream
  // binds to the thread's current device at construction).
  std::unique_ptr<core::Backend> fresh;
  if (device != nullptr) {
    gpusim::Device::DeviceGuard guard(*device);
    fresh = core::BackendRegistry::Instance().Create(options_.backend);
  } else {
    fresh = core::BackendRegistry::Instance().Create(options_.backend);
  }
  // Upload outside the lock: queries read resident() throughout, and the
  // host tables are untouched, so nothing here needs the server to drain.
  std::shared_ptr<const plan::ResidentTpchTables> snapshot =
      plan::MakeResident(fresh->stream(), host(), options_.use_encoding);
  std::lock_guard<std::mutex> lock(mu_);
  retired_backends_.push_back(std::move(backend_));
  backend_ = std::move(fresh);
  resident_ = std::move(snapshot);
  ++generation_;
}

void ResidentCatalog::Generate() {
  tpch::Config config;
  config.scale_factor = options_.scale_factor;
  config.seed = options_.seed;
  lineitem_ = tpch::GenerateLineitem(config);
  orders_ = tpch::GenerateOrders(config);
  customer_ = tpch::GenerateCustomer(config);
  part_ = tpch::GeneratePart(config);
}

void ResidentCatalog::Upload() {
  std::shared_ptr<const plan::ResidentTpchTables> fresh =
      plan::MakeResident(backend_->stream(), host(), options_.use_encoding);
  std::lock_guard<std::mutex> lock(mu_);
  resident_ = std::move(fresh);
}

}  // namespace serve
