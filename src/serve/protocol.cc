#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace serve {
namespace {

void EncodeResult(plan::TpchQuery q, const plan::TpchQueryResult& r,
                  Writer& w) {
  switch (q) {
    case plan::TpchQuery::kQ1:
      w.U32(static_cast<uint32_t>(r.q1.size()));
      for (const tpch::Q1Row& row : r.q1) {
        w.I32(row.returnflag);
        w.I32(row.linestatus);
        w.F64(row.sum_qty);
        w.F64(row.sum_base_price);
        w.F64(row.sum_disc_price);
        w.F64(row.sum_charge);
        w.F64(row.avg_qty);
        w.F64(row.avg_price);
        w.F64(row.avg_disc);
        w.I64(row.count_order);
      }
      break;
    case plan::TpchQuery::kQ3:
      w.U32(static_cast<uint32_t>(r.q3.size()));
      for (const tpch::Q3Row& row : r.q3) {
        w.I32(row.orderkey);
        w.F64(row.revenue);
      }
      break;
    case plan::TpchQuery::kQ4:
      w.U32(static_cast<uint32_t>(r.q4.size()));
      for (const tpch::Q4Row& row : r.q4) {
        w.I32(row.orderpriority);
        w.I64(row.order_count);
      }
      break;
    case plan::TpchQuery::kQ6:
    case plan::TpchQuery::kQ14:
      w.F64(r.scalar);
      break;
  }
}

plan::TpchQueryResult DecodeResult(plan::TpchQuery q, Reader& r) {
  plan::TpchQueryResult out;
  switch (q) {
    case plan::TpchQuery::kQ1: {
      const uint32_t n = r.U32();
      out.q1.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        tpch::Q1Row row;
        row.returnflag = r.I32();
        row.linestatus = r.I32();
        row.sum_qty = r.F64();
        row.sum_base_price = r.F64();
        row.sum_disc_price = r.F64();
        row.sum_charge = r.F64();
        row.avg_qty = r.F64();
        row.avg_price = r.F64();
        row.avg_disc = r.F64();
        row.count_order = r.I64();
        out.q1.push_back(row);
      }
      break;
    }
    case plan::TpchQuery::kQ3: {
      const uint32_t n = r.U32();
      out.q3.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        tpch::Q3Row row;
        row.orderkey = r.I32();
        row.revenue = r.F64();
        out.q3.push_back(row);
      }
      break;
    }
    case plan::TpchQuery::kQ4: {
      const uint32_t n = r.U32();
      out.q4.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        tpch::Q4Row row;
        row.orderpriority = r.I32();
        row.order_count = r.I64();
        out.q4.push_back(row);
      }
      break;
    }
    case plan::TpchQuery::kQ6:
    case plan::TpchQuery::kQ14:
      out.scalar = r.F64();
      break;
  }
  return out;
}

void WriteAll(int fd, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that hung up mid-reply surfaces as EPIPE instead
    // of a process-killing SIGPIPE.
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: write failed: ") +
                               std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
}

/// Returns bytes read (stops early only on EOF).
size_t ReadUpTo(int fd, void* data, size_t n) {
  auto* p = static_cast<unsigned char*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: read failed: ") +
                               std::strerror(errno));
    }
    if (r == 0) break;  // EOF
    got += static_cast<size_t>(r);
  }
  return got;
}

}  // namespace

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void Writer::F64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

uint8_t Reader::U8() {
  if (pos_ + 1 > buf_.size()) throw ProtocolError("serve: short payload");
  return buf_[pos_++];
}

uint32_t Reader::U32() {
  if (pos_ + 4 > buf_.size()) throw ProtocolError("serve: short payload");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

uint64_t Reader::U64() {
  if (pos_ + 8 > buf_.size()) throw ProtocolError("serve: short payload");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

double Reader::F64() {
  const uint64_t bits = U64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::Str() {
  const uint32_t n = U32();
  if (n > buf_.size() || pos_ + n > buf_.size()) {
    throw ProtocolError("serve: short payload");
  }
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

void Encode(const HelloRequest& m, Writer& w) {
  w.Str(m.tenant);
  w.U8(static_cast<uint8_t>(m.cls));
}

void Encode(const HelloReply& m, Writer& w) {
  w.F64(m.scale_factor);
  w.U64(m.seed);
  w.Str(m.backend);
  w.U8(m.encoded ? 1 : 0);
  w.U64(m.session_id);
}

void Encode(const QueryRequest& m, Writer& w) { w.Str(m.query); }

void Encode(const QueryReply& m, Writer& w) {
  w.U8(static_cast<uint8_t>(m.query));
  w.U8(m.cache_hit ? 1 : 0);
  w.U8(m.rejected ? 1 : 0);
  w.U8(m.aged ? 1 : 0);
  w.U64(m.simulated_ns);
  w.F64(m.wall_ms);
  w.F64(m.queue_wait_ms);
  w.F64(m.admission_wait_ms);
  if (!m.rejected) EncodeResult(m.query, m.result, w);
}

void Encode(const StatsReply& m, Writer& w) {
  w.U64(m.queries);
  w.U64(m.rejected);
  w.U64(m.failed);
  w.U64(m.cache_hits);
  w.U64(m.cache_misses);
  w.U64(m.cache_size);
  w.U64(m.cache_evictions);
  w.U64(m.resident_bytes);
  w.U64(m.uploaded_bytes);
  w.U64(m.catalog_generation);
  w.U64(m.overloaded);
  w.U64(m.malformed);
  w.U64(m.devices_readmitted);
  w.U64(m.catalog_rebalances);
}

void Encode(const ErrorReply& m, Writer& w) { w.Str(m.message); }

void Encode(const OverloadReply& m, Writer& w) {
  w.U64(m.retry_after_ms);
  w.Str(m.reason);
}

HelloRequest DecodeHelloRequest(Reader& r) {
  HelloRequest m;
  m.tenant = r.Str();
  m.cls = static_cast<TenantClass>(r.U8());
  return m;
}

HelloReply DecodeHelloReply(Reader& r) {
  HelloReply m;
  m.scale_factor = r.F64();
  m.seed = r.U64();
  m.backend = r.Str();
  m.encoded = r.U8() != 0;
  m.session_id = r.U64();
  return m;
}

QueryRequest DecodeQueryRequest(Reader& r) {
  QueryRequest m;
  m.query = r.Str();
  return m;
}

QueryReply DecodeQueryReply(Reader& r) {
  QueryReply m;
  m.query = static_cast<plan::TpchQuery>(r.U8());
  m.cache_hit = r.U8() != 0;
  m.rejected = r.U8() != 0;
  m.aged = r.U8() != 0;
  m.simulated_ns = r.U64();
  m.wall_ms = r.F64();
  m.queue_wait_ms = r.F64();
  m.admission_wait_ms = r.F64();
  if (!m.rejected) m.result = DecodeResult(m.query, r);
  return m;
}

StatsReply DecodeStatsReply(Reader& r) {
  StatsReply m;
  m.queries = r.U64();
  m.rejected = r.U64();
  m.failed = r.U64();
  m.cache_hits = r.U64();
  m.cache_misses = r.U64();
  m.cache_size = r.U64();
  m.cache_evictions = r.U64();
  m.resident_bytes = r.U64();
  m.uploaded_bytes = r.U64();
  m.catalog_generation = r.U64();
  m.overloaded = r.U64();
  m.malformed = r.U64();
  // Appended fields: absent in frames from a pre-lifecycle server.
  if (!r.AtEnd()) m.devices_readmitted = r.U64();
  if (!r.AtEnd()) m.catalog_rebalances = r.U64();
  return m;
}

ErrorReply DecodeErrorReply(Reader& r) {
  ErrorReply m;
  m.message = r.Str();
  return m;
}

OverloadReply DecodeOverloadReply(Reader& r) {
  OverloadReply m;
  m.retry_after_ms = r.U64();
  m.reason = r.Str();
  return m;
}

void WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("serve: frame payload too large");
  }
  Writer header;
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U8(static_cast<uint8_t>(type));
  WriteAll(fd, header.bytes().data(), header.bytes().size());
  if (!payload.empty()) WriteAll(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, MsgType* type, std::vector<uint8_t>* payload) {
  unsigned char header[5];
  const size_t got = ReadUpTo(fd, header, sizeof(header));
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(header)) {
    throw ProtocolError("serve: truncated frame header");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
  // Reject before resize(): a corrupt length prefix must never allocate.
  if (len > kMaxFrameBytes) {
    throw ProtocolError("serve: frame length exceeds limit");
  }
  *type = static_cast<MsgType>(header[4]);
  payload->resize(len);
  if (len > 0 && ReadUpTo(fd, payload->data(), len) < len) {
    throw ProtocolError("serve: truncated frame payload");
  }
  return true;
}

}  // namespace serve
