#include "serve/plan_cache.h"

#include <utility>

namespace serve {

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const plan::PreparedTpchQuery> PlanCache::Lookup(
    const plan::PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->plan;
}

void PlanCache::Insert(const plan::PlanCacheKey& key,
                       std::shared_ptr<const plan::PreparedTpchQuery> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++insertions_;
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_.emplace(key, lru_.begin());
  ++insertions_;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.size = lru_.size();
  return s;
}

}  // namespace serve
