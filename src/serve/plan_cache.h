// Plan cache: optimized physical plans keyed by shape x stats x layout.
//
// Modeled on gpusim's OpenCL-style program cache (bcsim caches compiled
// kernels per source hash): the expensive artifact — here an optimized
// physical plan bound to resident tables — is produced once per key and
// reused for every later request with the same key. The key
// (plan::PlanCacheKey) covers everything the optimizer consumed: query shape
// hash (query + parameters + encoding mode), table-stats fingerprint, pinned
// backend, and device count, so any change that could invalidate the plan
// changes the key and misses. On top of that, Clear() drops every entry when
// the catalog's residency is replaced (reload/regeneration) — cached plans
// point into the old residency, which stays alive (and correct) for
// in-flight runs via the PreparedTpchQuery's shared_ptr, but must not be
// served to new requests.
#ifndef SERVE_PLAN_CACHE_H_
#define SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "plan/fingerprint.h"
#include "plan/prepared.h"

namespace serve {

class PlanCache {
 public:
  /// `capacity` bounds the entry count; least-recently-used entries evict.
  explicit PlanCache(size_t capacity = 64);

  /// Returns the cached plan and refreshes its recency, or nullptr (a miss).
  std::shared_ptr<const plan::PreparedTpchQuery> Lookup(
      const plan::PlanCacheKey& key);

  /// Inserts (or replaces) the entry for `key`, evicting the LRU entry when
  /// over capacity.
  void Insert(const plan::PlanCacheKey& key,
              std::shared_ptr<const plan::PreparedTpchQuery> plan);

  /// Drops every entry (catalog residency replaced). In-flight executions of
  /// dropped plans finish safely — they co-own their tables.
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t size = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    plan::PlanCacheKey key;
    std::shared_ptr<const plan::PreparedTpchQuery> plan;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<plan::PlanCacheKey, std::list<Entry>::iterator,
                     plan::PlanCacheKeyHash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace serve

#endif  // SERVE_PLAN_CACHE_H_
