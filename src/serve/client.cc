#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace serve {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error("serve client: " + what + ": " +
                           std::strerror(errno));
}

// SplitMix64 step for the retry jitter — the same generator the fault
// injectors use, so a fixed seed gives a fixed sleep schedule.
uint64_t NextRandom(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Client::Client(const std::string& socket_path, const std::string& tenant,
               TenantClass cls) {
  if (socket_path.size() + 1 > sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("serve client: socket path too long: " +
                             socket_path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    ThrowErrno("connect(" + socket_path + ") failed");
  }

  HelloRequest req;
  req.tenant = tenant;
  req.cls = cls;
  Writer w;
  Encode(req, w);
  WriteFrame(fd_, MsgType::kHello, w.bytes());

  MsgType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(fd_, &type, &payload)) {
    throw std::runtime_error("serve client: server hung up during hello");
  }
  Reader r(payload);
  if (type == MsgType::kError) {
    throw std::runtime_error("serve client: hello rejected: " +
                             DecodeErrorReply(r).message);
  }
  if (type == MsgType::kOverloaded) {
    throw std::runtime_error("serve client: server overloaded: " +
                             DecodeOverloadReply(r).reason);
  }
  if (type != MsgType::kHelloOk) {
    throw std::runtime_error("serve client: unexpected hello reply type");
  }
  hello_ = DecodeHelloReply(r);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), hello_(std::move(other.hello_)) {
  other.fd_ = -1;
}

QueryReply Client::Query(const std::string& query_name) {
  QueryRequest req;
  req.query = query_name;
  Writer w;
  Encode(req, w);
  WriteFrame(fd_, MsgType::kQuery, w.bytes());

  MsgType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(fd_, &type, &payload)) {
    throw std::runtime_error("serve client: server hung up during query");
  }
  Reader r(payload);
  if (type == MsgType::kError) {
    throw std::runtime_error("serve client: " + DecodeErrorReply(r).message);
  }
  if (type == MsgType::kOverloaded) {
    const OverloadReply shed = DecodeOverloadReply(r);
    QueryReply reply;
    reply.overloaded = true;
    reply.retry_after_ms = shed.retry_after_ms;
    return reply;
  }
  if (type != MsgType::kQueryOk) {
    throw std::runtime_error("serve client: unexpected query reply type");
  }
  return DecodeQueryReply(r);
}

QueryReply Client::QueryWithRetry(const std::string& query_name,
                                  const RetryOptions& retry) {
  uint64_t rng = retry.seed;
  QueryReply reply;
  for (int attempt = 1;; ++attempt) {
    reply = Query(query_name);
    if (!reply.overloaded || attempt >= retry.max_attempts) return reply;
    ++retries_;
    // Honor the server's hint, then add exponential headroom with seeded
    // jitter (up to half the base on top), capped per sleep.
    uint64_t base = reply.retry_after_ms > 0 ? reply.retry_after_ms : 1;
    for (int i = 1; i < attempt && base < retry.max_backoff_ms; ++i) {
      base <<= 1;
    }
    base = std::min(base, retry.max_backoff_ms);
    const uint64_t jitter = NextRandom(rng) % (base / 2 + 1);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(base + jitter,
                                           retry.max_backoff_ms)));
  }
}

StatsReply Client::Stats() {
  WriteFrame(fd_, MsgType::kStats, {});
  MsgType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(fd_, &type, &payload)) {
    throw std::runtime_error("serve client: server hung up during stats");
  }
  Reader r(payload);
  if (type != MsgType::kStatsOk) {
    throw std::runtime_error("serve client: unexpected stats reply type");
  }
  return DecodeStatsReply(r);
}

void Client::Shutdown() {
  WriteFrame(fd_, MsgType::kShutdown, {});
  MsgType type;
  std::vector<uint8_t> payload;
  if (ReadFrame(fd_, &type, &payload) && type != MsgType::kShutdownOk) {
    throw std::runtime_error("serve client: unexpected shutdown reply type");
  }
}

}  // namespace serve
