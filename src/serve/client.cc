#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace serve {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error("serve client: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::Client(const std::string& socket_path, const std::string& tenant,
               TenantClass cls) {
  if (socket_path.size() + 1 > sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("serve client: socket path too long: " +
                             socket_path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    ThrowErrno("connect(" + socket_path + ") failed");
  }

  HelloRequest req;
  req.tenant = tenant;
  req.cls = cls;
  Writer w;
  Encode(req, w);
  WriteFrame(fd_, MsgType::kHello, w.bytes());

  MsgType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(fd_, &type, &payload)) {
    throw std::runtime_error("serve client: server hung up during hello");
  }
  Reader r(payload);
  if (type == MsgType::kError) {
    throw std::runtime_error("serve client: hello rejected: " +
                             DecodeErrorReply(r).message);
  }
  if (type == MsgType::kOverloaded) {
    throw std::runtime_error("serve client: server overloaded: " +
                             DecodeOverloadReply(r).reason);
  }
  if (type != MsgType::kHelloOk) {
    throw std::runtime_error("serve client: unexpected hello reply type");
  }
  hello_ = DecodeHelloReply(r);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), hello_(std::move(other.hello_)) {
  other.fd_ = -1;
}

QueryReply Client::Query(const std::string& query_name) {
  QueryRequest req;
  req.query = query_name;
  Writer w;
  Encode(req, w);
  WriteFrame(fd_, MsgType::kQuery, w.bytes());

  MsgType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(fd_, &type, &payload)) {
    throw std::runtime_error("serve client: server hung up during query");
  }
  Reader r(payload);
  if (type == MsgType::kError) {
    throw std::runtime_error("serve client: " + DecodeErrorReply(r).message);
  }
  if (type == MsgType::kOverloaded) {
    const OverloadReply shed = DecodeOverloadReply(r);
    QueryReply reply;
    reply.overloaded = true;
    reply.retry_after_ms = shed.retry_after_ms;
    return reply;
  }
  if (type != MsgType::kQueryOk) {
    throw std::runtime_error("serve client: unexpected query reply type");
  }
  return DecodeQueryReply(r);
}

StatsReply Client::Stats() {
  WriteFrame(fd_, MsgType::kStats, {});
  MsgType type;
  std::vector<uint8_t> payload;
  if (!ReadFrame(fd_, &type, &payload)) {
    throw std::runtime_error("serve client: server hung up during stats");
  }
  Reader r(payload);
  if (type != MsgType::kStatsOk) {
    throw std::runtime_error("serve client: unexpected stats reply type");
  }
  return DecodeStatsReply(r);
}

void Client::Shutdown() {
  WriteFrame(fd_, MsgType::kShutdown, {});
  MsgType type;
  std::vector<uint8_t> payload;
  if (ReadFrame(fd_, &type, &payload) && type != MsgType::kShutdownOk) {
    throw std::runtime_error("serve client: unexpected shutdown reply type");
  }
}

}  // namespace serve
