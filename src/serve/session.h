// The server's resident catalog: host tables plus their device residency.
//
// A serving process generates (or, in a real system, loads) its tables once
// and keeps them device-resident across every request — the coordinator/
// long-lived-GPU-worker shape of "Accelerating Presto with GPUs" (PAPERS.md).
// The catalog owns the host source of truth, the resident upload
// (plan::ResidentTpchTables), and a generation counter: Reload() replaces
// both and bumps the generation, which is the server's signal to clear the
// plan cache. Residency snapshots are handed out as shared_ptr<const>, so
// queries prepared against an old generation keep computing against their
// own (consistent) snapshot while new requests see the new one.
#ifndef SERVE_SESSION_H_
#define SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/scheduler.h"
#include "plan/prepared.h"
#include "serve/tenant.h"
#include "storage/table.h"
#include "tpch/datagen.h"

namespace serve {

struct CatalogOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// Upload via storage::UploadTableEncoded (encoded residency).
  bool use_encoding = true;
  /// Backend whose stream carries the uploads; also the backend every
  /// cached plan is pinned to (must match the scheduler's backend).
  std::string backend = "Handwritten";
};

/// Owns the TPC-H tables — host and device-resident — the server queries.
/// Thread-safe for resident()/generation() against a concurrent Reload();
/// the host-table accessors are only safe while no Reload is in flight (the
/// server serializes reloads behind its own lock).
class ResidentCatalog {
 public:
  explicit ResidentCatalog(CatalogOptions options);

  const CatalogOptions& options() const { return options_; }

  const storage::Table& lineitem() const { return lineitem_; }
  const storage::Table& orders() const { return orders_; }
  const storage::Table& customer() const { return customer_; }
  const storage::Table& part() const { return part_; }
  plan::TpchHostTables host() const;

  /// Current residency snapshot (never null).
  std::shared_ptr<const plan::ResidentTpchTables> resident() const;

  /// Bumps on every Reload; generation 0 is the construction upload.
  uint64_t generation() const;

  /// Regenerates the tables at `scale_factor` (same seed) and replaces the
  /// residency. Old snapshots stay alive as long as prepared plans hold
  /// them. The caller must clear any plan cache keyed on the old stats.
  void Reload(double scale_factor);

  /// Re-uploads the *same* host tables as a fresh residency snapshot,
  /// optionally onto `device` (a readmitted ordinal of a fleet) — the
  /// drain-free half of recovery. Unlike Reload the host source of truth
  /// never changes, so queries keep running throughout: in-flight prepared
  /// plans hold the old snapshot by shared_ptr (its upload stream is
  /// retired, not destroyed), new prepares see the new one, and the bumped
  /// generation tells the server to clear its plan cache. Safe to call from
  /// a background thread concurrently with resident()/generation().
  void Rebalance(gpusim::Device* device = nullptr);

  /// The stream the residency lives on (uploads are charged here).
  gpusim::Stream& stream() { return backend_->stream(); }

 private:
  void Generate();  ///< fills host tables from options_.scale_factor
  void Upload();    ///< replaces resident_ from the host tables

  CatalogOptions options_;
  std::unique_ptr<core::Backend> backend_;  ///< owns the upload stream
  storage::Table lineitem_;
  storage::Table orders_;
  storage::Table customer_;
  storage::Table part_;

  mutable std::mutex mu_;  ///< guards resident_, generation_, backends
  std::shared_ptr<const plan::ResidentTpchTables> resident_;
  uint64_t generation_ = 0;
  /// Upload streams of superseded residencies: a snapshot an in-flight
  /// prepared plan still holds must outlive neither its stream nor its
  /// device, so Rebalance retires the old backend here instead of
  /// destroying it.
  std::vector<std::unique_ptr<core::Backend>> retired_backends_;
};

/// One client connection's registered identity.
struct Session {
  uint64_t id = 0;
  core::TenantSpec tenant;
  TenantClass cls = TenantClass::kBestEffort;
};

}  // namespace serve

#endif  // SERVE_SESSION_H_
