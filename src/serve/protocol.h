// Wire protocol of the serving tier.
//
// Length-prefixed binary frames over a stream socket (UNIX domain socket in
// practice; anything with read/write semantics works):
//
//   [u32 payload length (LE)] [u8 message type] [payload bytes]
//
// Payloads are flat little-endian field sequences written/parsed by the
// Writer/Reader helpers below — no external serialization dependency, in
// keeping with the repo's no-new-packages constraint. The conversation is
// strictly request/response per connection: a client sends Hello once, then
// any number of Query/Stats requests, and optionally Shutdown. Multiplexing
// across queries comes from opening multiple connections (one session each),
// exactly how bench_serving simulates thousands of client sessions.
#ifndef SERVE_PROTOCOL_H_
#define SERVE_PROTOCOL_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "plan/partition.h"
#include "serve/tenant.h"

namespace serve {

/// Frame payloads are capped to keep a corrupt length prefix from driving a
/// giant allocation; generously above any real result at bench scale. The
/// cap is checked before any buffer is sized, so an adversarial length
/// prefix never allocates.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Malformed bytes from the peer: truncated payload, oversized length
/// prefix, a frame cut off mid-read. Distinct from the std::runtime_error
/// used for genuine socket failures so the server can answer a garbage
/// frame with a typed kError reply and keep the connection (and the accept
/// loop) alive instead of tearing the session down.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

enum class MsgType : uint8_t {
  kHello = 1,       ///< client -> server: tenant name + QoS class
  kQuery = 2,       ///< client -> server: run one TPC-H query
  kStats = 3,       ///< client -> server: server counters snapshot
  kShutdown = 4,    ///< client -> server: stop the server
  kHelloOk = 5,     ///< server -> client: dataset + backend description
  kQueryOk = 6,     ///< server -> client: result + execution metadata
  kStatsOk = 7,     ///< server -> client: counters
  kShutdownOk = 8,  ///< server -> client: shutdown acknowledged
  kError = 9,       ///< server -> client: request failed
  kOverloaded = 10, ///< server -> client: load shed; retry after a delay
};

struct HelloRequest {
  std::string tenant;                          ///< session's tenant name
  TenantClass cls = TenantClass::kBestEffort;  ///< QoS class
};

struct HelloReply {
  double scale_factor = 0;
  uint64_t seed = 0;
  std::string backend;
  bool encoded = false;      ///< tables resident via UploadTableEncoded
  uint64_t session_id = 0;
};

struct QueryRequest {
  std::string query;  ///< "q1" | "q3" | "q4" | "q6" | "q14"
};

/// Result plus the execution metadata bench_serving reports on.
struct QueryReply {
  plan::TpchQuery query = plan::TpchQuery::kQ1;
  plan::TpchQueryResult result;
  bool cache_hit = false;   ///< plan served from the plan cache
  bool rejected = false;    ///< memory admission rejected; no result
  bool aged = false;        ///< dequeued via the starvation aging rule
  uint64_t simulated_ns = 0;
  double wall_ms = 0;            ///< server-side execution wall time
  double queue_wait_ms = 0;      ///< scheduler-queue wait
  double admission_wait_ms = 0;  ///< governor-queue wait
  // Client-side only (never encoded): the server shed this request with
  // kOverloaded; retry after the hinted delay.
  bool overloaded = false;
  uint64_t retry_after_ms = 0;
};

struct StatsReply {
  uint64_t queries = 0;        ///< completed (ok) queries
  uint64_t rejected = 0;       ///< admission rejections
  uint64_t failed = 0;         ///< execution failures
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_size = 0;     ///< entries currently cached
  uint64_t cache_evictions = 0;
  uint64_t resident_bytes = 0;   ///< device bytes of the resident tables
  uint64_t uploaded_bytes = 0;   ///< link bytes spent making them resident
  uint64_t catalog_generation = 0;  ///< bumps on every Reload/Rebalance
  uint64_t overloaded = 0;       ///< requests shed with kOverloaded
  uint64_t malformed = 0;        ///< garbage frames answered with kError
  // Fleet lifecycle (appended fields; decoders tolerate their absence so an
  // old server's stats frame still parses).
  uint64_t devices_readmitted = 0;  ///< devices probed healthy + readmitted
  uint64_t catalog_rebalances = 0;  ///< background residency re-uploads
};

struct ErrorReply {
  std::string message;
};

/// Load-shed notice: the server refused the request (queue depth, breaker,
/// or connection cap) and suggests when to retry.
struct OverloadReply {
  uint64_t retry_after_ms = 0;
  std::string reason;
};

/// Little-endian payload builder.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Str(const std::string& s);
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

/// Little-endian payload parser; throws ProtocolError on truncation.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}
  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

// Message payload encode/decode (the frame header is WriteFrame's job).
void Encode(const HelloRequest& m, Writer& w);
void Encode(const HelloReply& m, Writer& w);
void Encode(const QueryRequest& m, Writer& w);
void Encode(const QueryReply& m, Writer& w);
void Encode(const StatsReply& m, Writer& w);
void Encode(const ErrorReply& m, Writer& w);
void Encode(const OverloadReply& m, Writer& w);
HelloRequest DecodeHelloRequest(Reader& r);
HelloReply DecodeHelloReply(Reader& r);
QueryRequest DecodeQueryRequest(Reader& r);
QueryReply DecodeQueryReply(Reader& r);
StatsReply DecodeStatsReply(Reader& r);
ErrorReply DecodeErrorReply(Reader& r);
OverloadReply DecodeOverloadReply(Reader& r);

/// Writes one frame; throws std::runtime_error on socket error.
void WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload);

/// Reads one frame. Returns false on clean EOF before any header byte;
/// throws ProtocolError on mid-frame truncation or an oversized length
/// prefix (checked before any allocation), std::runtime_error on socket
/// failure.
bool ReadFrame(int fd, MsgType* type, std::vector<uint8_t>* payload);

}  // namespace serve

#endif  // SERVE_PROTOCOL_H_
