#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <stdexcept>
#include <utility>

#include "core/resilience.h"

namespace serve {
namespace {

int MakeListener(const std::string& path) {
  if (path.size() + 1 > sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale socket file from a dead server
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: bind/listen on " + path + " failed: " +
                             err);
  }
  return fd;
}

}  // namespace

QueryServer::QueryServer(ServerOptions options)
    : options_(std::move(options)),
      catalog_(std::make_unique<ResidentCatalog>(options_.catalog)),
      plan_cache_(options_.plan_cache_capacity) {
  if (options_.use_governor) {
    core::GovernorOptions gov;
    gov.max_grant_fraction = options_.max_grant_fraction;
    governor_ = std::make_unique<core::MemoryGovernor>(gov);
  }
  core::SchedulerOptions sched;
  sched.backend_name = options_.catalog.backend;
  sched.num_clients = options_.num_clients;
  sched.queue_capacity = options_.queue_capacity;
  sched.governor = governor_.get();
  scheduler_ = std::make_unique<core::QueryScheduler>(sched);
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Start() {
  if (options_.socket_path.empty()) return;  // in-process only
  listen_fd_ = MakeListener(options_.socket_path);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();

  // Wake the accept loop with shutdown() but close the listener only
  // after the join: the loop re-reads listen_fd_ between accepts, so the
  // close and the -1 store must happen-after it exits (and the fd number
  // can't be recycled into a connection the loop would then accept on).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    // Sessions only read/write their fd; the owner closes it after the
    // join, so a shutdown() here can never hit a recycled descriptor.
    for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    ::close(c->fd);
  }

  {
    std::lock_guard<std::mutex> lock(rebalance_mu_);
    if (rebalance_thread_.joinable()) rebalance_thread_.join();
  }
  if (scheduler_ != nullptr) scheduler_->Shutdown();
  if (governor_ != nullptr) governor_->Shutdown();
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

void QueryServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

Session QueryServer::OpenSession(const std::string& tenant, TenantClass cls) {
  Session s;
  s.id = next_session_.fetch_add(1);
  s.cls = cls;
  s.tenant = tenants_.Register(tenant, cls);
  return s;
}

void QueryServer::CheckAdmission(TenantClass cls) {
  const TenantPolicy policy = PolicyFor(cls);
  const uint64_t retry_after =
      options_.retry_after_ms * policy.retry_after_multiplier;
  // Per-device backend health first: a sticky DeviceLost on the serving
  // device opens its breaker after failure_threshold query failures, and
  // Allow() both gates admission and advances the open-state cooldown so a
  // half-open probe eventually tests recovery.
  if (!core::ResilienceManager::Global().Allow(options_.catalog.backend, 0)) {
    overloaded_.fetch_add(1);
    throw Overloaded("backend '" + options_.catalog.backend +
                         "' breaker open on device 0",
                     retry_after);
  }
  // Queue bounds scale by the class's shed fraction, so as depth grows the
  // classes shed in priority order: best-effort at half the bound, batch at
  // three quarters, interactive only at the full bound.
  const auto class_bound = [&](size_t bound) {
    const auto scaled =
        static_cast<size_t>(static_cast<double>(bound) *
                            policy.shed_depth_fraction);
    return scaled > 0 ? scaled : size_t{1};
  };
  const size_t queue_bound = options_.shed_queue_depth > 0
                                 ? options_.shed_queue_depth
                                 : options_.queue_capacity;
  if (queue_bound > 0 &&
      scheduler_->queue_depth() >= class_bound(queue_bound)) {
    overloaded_.fetch_add(1);
    throw Overloaded(std::string("scheduler queue at ") +
                         TenantClassName(cls) + " bound",
                     retry_after);
  }
  if (governor_ != nullptr && options_.shed_governor_depth > 0 &&
      governor_->queue_depth() >= class_bound(options_.shed_governor_depth)) {
    overloaded_.fetch_add(1);
    throw Overloaded(std::string("governor admission queue at ") +
                         TenantClassName(cls) + " bound",
                     retry_after);
  }
}

QueryReply QueryServer::Execute(const Session& session,
                                const std::string& query_name) {
  plan::QueryShape shape;
  shape.query = plan::ParseTpchQuery(query_name);
  CheckAdmission(session.cls);
  shape.use_encoding = options_.catalog.use_encoding;

  // Plan-cache lookup under the current residency snapshot. The key carries
  // the snapshot's stats fingerprint, so a reloaded catalog (new row counts
  // or encodings) can never serve a plan prepared against the old one.
  const std::shared_ptr<const plan::ResidentTpchTables> resident =
      catalog_->resident();
  plan::PlanCacheKey key;
  key.shape_hash = plan::QueryShapeHash(shape);
  key.stats_fingerprint = resident->stats_fingerprint;
  key.backend = options_.catalog.backend;
  key.device_count = options_.device_count;

  std::shared_ptr<const plan::PreparedTpchQuery> prepared =
      plan_cache_.Lookup(key);
  const bool cache_hit = prepared != nullptr;
  if (!cache_hit) {
    prepared = plan::PrepareTpchQuery(shape, resident,
                                      options_.catalog.backend);
    plan_cache_.Insert(key, prepared);
  }

  auto result = std::make_shared<plan::TpchQueryResult>();
  auto done = std::make_shared<std::promise<core::QueryRecord>>();
  std::future<core::QueryRecord> record_future = done->get_future();

  core::SubmitOptions submit;
  submit.footprint_bytes = prepared->footprint_bytes();
  submit.deadline_ms = PolicyFor(session.cls).deadline_ms;
  submit.tenant = session.tenant;
  submit.on_complete = [done](const core::QueryRecord& r) {
    done->set_value(r);
  };
  const core::ScheduledQueryStatus status = scheduler_->Submit(
      query_name,
      [prepared, result](core::Backend& backend) {
        *result = prepared->Run(backend);
      },
      std::move(submit));
  if (status != core::ScheduledQueryStatus::kAccepted) {
    throw std::runtime_error("serve: scheduler is shut down");
  }
  const core::QueryRecord record = record_future.get();

  QueryReply reply;
  reply.query = shape.query;
  reply.cache_hit = cache_hit;
  reply.aged = record.aged;
  reply.simulated_ns = record.simulated_ns;
  reply.wall_ms = record.wall_ms;
  reply.queue_wait_ms = record.queue_wait_ms;
  reply.admission_wait_ms = record.admission_wait_ms;
  if (record.admission_rejected) {
    reply.rejected = true;
    rejected_.fetch_add(1);
    return reply;
  }
  if (!record.ok) {
    failed_.fetch_add(1);
    // Feed the serving device's breaker so repeated failures (a sticky
    // DeviceLost) trip it and CheckAdmission starts shedding.
    core::ResilienceManager::Global().RecordFailure(options_.catalog.backend,
                                                    0);
    throw std::runtime_error("serve: query failed: " + record.error);
  }
  core::ResilienceManager::Global().RecordSuccess(options_.catalog.backend, 0);
  reply.result = std::move(*result);
  ok_queries_.fetch_add(1);
  return reply;
}

size_t QueryServer::ActiveConnections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  size_t live = 0;
  for (const auto& c : conns_) {
    if (!c->done.load()) ++live;
  }
  return live;
}

void QueryServer::ReloadCatalog(double scale_factor) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  // Drain first so no in-flight query straddles the swap, then replace the
  // residency and drop every cached plan — they point into the old snapshot.
  scheduler_->Drain();
  catalog_->Reload(scale_factor);
  plan_cache_.Clear();
}

bool QueryServer::ReadmitDevice(int ordinal) {
  gpusim::DeviceGroup* fleet = options_.fleet;
  if (fleet == nullptr || ordinal < 0 || ordinal >= fleet->size()) {
    return false;
  }
  if (fleet->state(ordinal) == gpusim::DeviceState::kLost) {
    fleet->MarkReset(ordinal);
  }
  if (fleet->state(ordinal) != gpusim::DeviceState::kProbing) {
    return fleet->IsAlive(ordinal);  // already healthy (or mid-readmission)
  }
  const bool ok = fleet->Probe(ordinal);
  core::ResilienceManager::Global().SyncDeviceProbe(ordinal, ok);
  if (!ok) return false;
  // Drain-aware rebalance: unlike ReloadCatalog nothing here drains the
  // scheduler — the host tables are untouched and the residency snapshot is
  // refcounted, so queries keep running on the survivors while the new
  // snapshot uploads to the readmitted ordinal in the background. The
  // generation bump redirects new prepares; in-flight prepared plans keep
  // their old snapshot alive. Only then does the ordinal complete
  // readmission, so it is never considered alive before its state is back.
  std::lock_guard<std::mutex> lock(rebalance_mu_);
  if (rebalance_thread_.joinable()) rebalance_thread_.join();
  rebalance_thread_ = std::thread([this, fleet, ordinal] {
    catalog_->Rebalance(&fleet->device(ordinal));
    plan_cache_.Clear();
    fleet->CompleteReadmission(ordinal);
    catalog_rebalances_.fetch_add(1);
    devices_readmitted_.fetch_add(1);
  });
  return true;
}

void QueryServer::WaitForRebalance() {
  std::lock_guard<std::mutex> lock(rebalance_mu_);
  if (rebalance_thread_.joinable()) rebalance_thread_.join();
}

StatsReply QueryServer::Stats() const {
  StatsReply s;
  s.queries = ok_queries_.load();
  s.rejected = rejected_.load();
  s.failed = failed_.load();
  const PlanCache::Stats cache = plan_cache_.stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_size = cache.size;
  s.cache_evictions = cache.evictions;
  const std::shared_ptr<const plan::ResidentTpchTables> resident =
      catalog_->resident();
  s.resident_bytes = resident->resident_bytes;
  s.uploaded_bytes = resident->uploaded_bytes;
  s.catalog_generation = catalog_->generation();
  s.overloaded = overloaded_.load();
  s.malformed = malformed_.load();
  s.devices_readmitted = devices_readmitted_.load();
  s.catalog_rebalances = catalog_rebalances_.load();
  return s;
}

void QueryServer::ReapFinishedLocked() {
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    // Reap sessions that ended since the last accept: their threads join
    // here, so a connect-and-die client costs one bounded slot, not a
    // thread leaked until Stop().
    ReapFinishedLocked();
    if (conns_.size() >= options_.max_connections) {
      overloaded_.fetch_add(1);
      OverloadReply shed;
      shed.retry_after_ms = options_.retry_after_ms;
      shed.reason = "connection limit";
      Writer w;
      Encode(shed, w);
      try {
        WriteFrame(fd, MsgType::kOverloaded, w.bytes());
      } catch (const std::exception&) {
        // Peer already gone; nothing to tell it.
      }
      ::close(fd);
      continue;
    }
    conns_.push_back(std::make_unique<Connection>());
    Connection& conn = *conns_.back();
    conn.fd = fd;
    conn.thread = std::thread([this, &conn] { ServeConnection(conn); });
  }
}

void QueryServer::ServeConnection(Connection& conn) {
  const int fd = conn.fd;
  Session session;
  bool greeted = false;

  const auto send = [&](MsgType type, const auto& msg) {
    Writer w;
    Encode(msg, w);
    WriteFrame(fd, type, w.bytes());
  };
  const auto send_error = [&](const std::string& message) {
    ErrorReply err;
    err.message = message;
    send(MsgType::kError, err);
  };

  try {
    MsgType type;
    std::vector<uint8_t> payload;
    for (;;) {
      try {
        if (!ReadFrame(fd, &type, &payload)) break;  // clean EOF
      } catch (const ProtocolError& e) {
        // Garbage framing (truncated header/payload, oversized length). The
        // byte stream is desynchronized past recovery, so answer with a
        // typed error and end this session — the accept loop and every
        // other session keep running.
        malformed_.fetch_add(1);
        try {
          send_error(e.what());
        } catch (const std::exception&) {
        }
        break;
      }
      Reader r(payload);
      try {
        switch (type) {
          case MsgType::kHello: {
            const HelloRequest req = DecodeHelloRequest(r);
            session = OpenSession(req.tenant, req.cls);
            greeted = true;
            HelloReply reply;
            reply.scale_factor = options_.catalog.scale_factor;
            reply.seed = options_.catalog.seed;
            reply.backend = options_.catalog.backend;
            reply.encoded = options_.catalog.use_encoding;
            reply.session_id = session.id;
            send(MsgType::kHelloOk, reply);
            break;
          }
          case MsgType::kQuery: {
            if (!greeted) {
              send_error("query before hello");
              break;
            }
            const QueryRequest req = DecodeQueryRequest(r);
            try {
              send(MsgType::kQueryOk, Execute(session, req.query));
            } catch (const Overloaded& e) {
              OverloadReply shed;
              shed.retry_after_ms = e.retry_after_ms;
              shed.reason = e.what();
              send(MsgType::kOverloaded, shed);
            } catch (const std::exception& e) {
              send_error(e.what());
            }
            break;
          }
          case MsgType::kStats:
            send(MsgType::kStatsOk, Stats());
            break;
          case MsgType::kShutdown: {
            WriteFrame(fd, MsgType::kShutdownOk, {});
            std::lock_guard<std::mutex> lock(shutdown_mu_);
            shutdown_requested_ = true;
            shutdown_cv_.notify_all();
            break;
          }
          default:
            // Unknown message type: typed reply, connection stays up — a
            // well-framed but unrecognized request is not a reason to hang
            // up on the client.
            malformed_.fetch_add(1);
            send_error("unexpected message type");
            break;
        }
      } catch (const ProtocolError& e) {
        // Frame was well-formed, payload was short for its message type.
        // The stream itself is still framed, so reply and keep serving.
        malformed_.fetch_add(1);
        send_error(e.what());
      }
    }
  } catch (const std::exception&) {
    // Socket torn down mid-frame (client died or Stop() hung up) — nothing
    // to report to; the connection just ends. The fd is closed by whoever
    // reaps this Connection (AcceptLoop or Stop), after joining the thread.
  }
  conn.done.store(true);
}

}  // namespace serve
