// Per-tenant QoS policy of the serving tier.
//
// Tenants declare a priority class at Hello time; the class maps to a
// core::TenantSpec (fair-share weight + starvation bound) and a deadline
// class that the server attaches to every query the session submits. The
// weights give an interactive tenant 4x a batch tenant's slots and 8x a
// best-effort tenant's under contention, while the aging bounds guarantee
// even the weight-1 class is served within its horizon of a flood
// (core/scheduler.h documents the dequeue rule).
#ifndef SERVE_TENANT_H_
#define SERVE_TENANT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/scheduler.h"

namespace serve {

enum class TenantClass : uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kBestEffort = 2,
};

const char* TenantClassName(TenantClass cls);

/// Parses "interactive" | "batch" | "besteffort"/"best-effort" (throws
/// std::invalid_argument).
TenantClass ParseTenantClass(const std::string& name);

/// The scheduling contract of one QoS class.
struct TenantPolicy {
  double weight = 1.0;               ///< fair-share weight
  uint64_t starvation_bound_ms = 0;  ///< aging horizon (0 = none)
  uint64_t deadline_ms = 0;          ///< per-query deadline class (0 = none)
  /// Fraction of the server's queue-depth shed bound this class may fill
  /// before its requests are shed. At one and the same queue depth the
  /// classes therefore shed in priority order: best-effort first (half the
  /// bound), batch next (three quarters), interactive last (the full bound).
  double shed_depth_fraction = 1.0;
  /// Multiplier on the server's base retry_after_ms in this class's
  /// kOverloaded replies — lower classes are told to stay away longer, so
  /// retrying interactive traffic reclaims headroom first.
  uint64_t retry_after_multiplier = 1;
};

/// Fixed class -> policy mapping (documented in DESIGN.md §12).
TenantPolicy PolicyFor(TenantClass cls);

/// Assigns stable small ids to tenant names and builds the TenantSpec a
/// session submits under. Thread-safe (sessions register concurrently).
class TenantRegistry {
 public:
  /// Returns the spec for (name, cls); the same name always maps to the
  /// same id, so all of a tenant's sessions share one fair-share account.
  core::TenantSpec Register(const std::string& name, TenantClass cls);

 private:
  std::mutex mu_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace serve

#endif  // SERVE_TENANT_H_
