// The resident query server.
//
// QueryServer ties the serving tier together: a ResidentCatalog (tables
// uploaded once, device-resident across requests), a PlanCache (optimized
// physical plans reused across same-shape requests), a TenantRegistry
// (QoS-class -> fair-share weights and deadline classes), and a
// core::QueryScheduler + core::MemoryGovernor (tenant-weighted dequeue with
// aging; memory admission for the per-run intermediates). Requests arrive
// over the length-prefixed protocol (serve/protocol.h) on a UNIX domain
// socket; each connection is one session served by its own thread, and
// concurrency across sessions comes from the scheduler's client pool.
//
// Execute() is also callable in-process (no socket), which is how the tests
// and the local mode of bench_serving drive the server.
#ifndef SERVE_SERVER_H_
#define SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/governor.h"
#include "core/scheduler.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "serve/tenant.h"

namespace serve {

struct ServerOptions {
  /// UNIX-domain socket path; empty = in-process only (Start() still builds
  /// the catalog/scheduler but no listener).
  std::string socket_path;
  CatalogOptions catalog;
  unsigned num_clients = 4;      ///< scheduler client threads
  size_t queue_capacity = 64;    ///< scheduler submission queue bound
  size_t plan_cache_capacity = 64;
  bool use_governor = true;      ///< memory admission for intermediates
  double max_grant_fraction = 0.5;
  /// Device layout the cached plans are keyed under. Execution here is
  /// single-device; the key component exists so a relayout (sharded
  /// execution across N devices) can never reuse a single-device plan.
  int device_count = 1;
};

class QueryServer {
 public:
  explicit QueryServer(ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds + listens on the socket (when configured) and starts accepting.
  /// Throws std::runtime_error on socket errors.
  void Start();

  /// Stops accepting, hangs up every connection, drains the scheduler, and
  /// joins all threads. Idempotent; called by the destructor. Must not be
  /// called from a connection thread (a Shutdown request instead signals
  /// WaitForShutdown and lets the waiter call Stop).
  void Stop();

  /// Blocks until a client sends Shutdown or Stop() is called.
  void WaitForShutdown();

  /// Registers a session (the in-process analogue of Hello).
  Session OpenSession(const std::string& tenant, TenantClass cls);

  /// Runs one query for a session: plan-cache lookup (miss -> prepare +
  /// insert), tenant-weighted scheduling, memory admission, execution
  /// against the resident tables. Throws std::invalid_argument for a bad
  /// query name and std::runtime_error when execution fails; an admission
  /// rejection is NOT an error — the reply comes back with rejected = true.
  QueryReply Execute(const Session& session, const std::string& query_name);

  /// Replaces the catalog residency (regenerate at `scale_factor` +
  /// re-upload) and clears the plan cache. Serialized internally.
  void ReloadCatalog(double scale_factor);

  StatsReply Stats() const;

  ResidentCatalog& catalog() { return *catalog_; }
  PlanCache& plan_cache() { return plan_cache_; }
  core::QueryScheduler& scheduler() { return *scheduler_; }
  const ServerOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  ServerOptions options_;
  std::unique_ptr<ResidentCatalog> catalog_;
  std::unique_ptr<core::MemoryGovernor> governor_;
  std::unique_ptr<core::QueryScheduler> scheduler_;
  PlanCache plan_cache_;
  TenantRegistry tenants_;

  std::mutex reload_mu_;  ///< serializes ReloadCatalog
  std::atomic<uint64_t> next_session_{0};
  std::atomic<uint64_t> ok_queries_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> failed_{0};

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conn_mu_;  ///< guards conn_fds_ and conn_threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
};

}  // namespace serve

#endif  // SERVE_SERVER_H_
