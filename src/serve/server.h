// The resident query server.
//
// QueryServer ties the serving tier together: a ResidentCatalog (tables
// uploaded once, device-resident across requests), a PlanCache (optimized
// physical plans reused across same-shape requests), a TenantRegistry
// (QoS-class -> fair-share weights and deadline classes), and a
// core::QueryScheduler + core::MemoryGovernor (tenant-weighted dequeue with
// aging; memory admission for the per-run intermediates). Requests arrive
// over the length-prefixed protocol (serve/protocol.h) on a UNIX domain
// socket; each connection is one session served by its own thread, and
// concurrency across sessions comes from the scheduler's client pool.
//
// Execute() is also callable in-process (no socket), which is how the tests
// and the local mode of bench_serving drive the server.
//
// The server protects itself instead of trusting its clients. Admission
// consults the per-device circuit breaker for the serving backend and sheds
// with a typed kOverloaded reply (carrying a retry-after hint) when the
// scheduler queue or the governor queue crosses its bound — rather than
// stacking unbounded work behind a sick device. The accept loop caps live
// connections (excess connects get kOverloaded and a clean close) and reaps
// finished connection threads as it goes, so a client that connects and
// dies mid-query leaks neither a thread nor an fd. Malformed frames —
// truncated, oversized, unknown type — are answered with a typed kError
// and never tear down the accept loop.
#ifndef SERVE_SERVER_H_
#define SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <stdexcept>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/governor.h"
#include "core/scheduler.h"
#include "gpusim/device_group.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "serve/tenant.h"

namespace serve {

struct ServerOptions {
  /// UNIX-domain socket path; empty = in-process only (Start() still builds
  /// the catalog/scheduler but no listener).
  std::string socket_path;
  CatalogOptions catalog;
  unsigned num_clients = 4;      ///< scheduler client threads
  size_t queue_capacity = 64;    ///< scheduler submission queue bound
  size_t plan_cache_capacity = 64;
  bool use_governor = true;      ///< memory admission for intermediates
  double max_grant_fraction = 0.5;
  /// Device layout the cached plans are keyed under. Execution here is
  /// single-device; the key component exists so a relayout (sharded
  /// execution across N devices) can never reuse a single-device plan.
  int device_count = 1;
  /// Live-connection cap: further connects are answered kOverloaded and
  /// closed instead of spawning yet another thread.
  size_t max_connections = 64;
  /// Shed when the scheduler queue reaches this depth (0 = queue_capacity).
  size_t shed_queue_depth = 0;
  /// Shed when the governor's admission queue reaches this depth.
  size_t shed_governor_depth = 32;
  /// Base retry-after hint carried in kOverloaded replies; each tenant
  /// class scales it by its TenantPolicy::retry_after_multiplier.
  uint64_t retry_after_ms = 50;
  /// The device fleet this server runs over (not owned; must outlive the
  /// server). Optional: with no fleet attached, ReadmitDevice is a no-op
  /// and everything else behaves exactly as before.
  gpusim::DeviceGroup* fleet = nullptr;
};

/// Thrown by Execute when the request is shed instead of queued: the
/// scheduler or governor queue is past its bound, or the serving backend's
/// per-device circuit breaker is open. Socket sessions see it as a typed
/// kOverloaded reply with the retry-after hint.
class Overloaded : public std::runtime_error {
 public:
  Overloaded(const std::string& why, uint64_t retry_after_ms)
      : std::runtime_error(why), retry_after_ms(retry_after_ms) {}
  uint64_t retry_after_ms = 0;
};

class QueryServer {
 public:
  explicit QueryServer(ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds + listens on the socket (when configured) and starts accepting.
  /// Throws std::runtime_error on socket errors.
  void Start();

  /// Stops accepting, hangs up every connection, drains the scheduler, and
  /// joins all threads. Idempotent; called by the destructor. Must not be
  /// called from a connection thread (a Shutdown request instead signals
  /// WaitForShutdown and lets the waiter call Stop).
  void Stop();

  /// Blocks until a client sends Shutdown or Stop() is called.
  void WaitForShutdown();

  /// Registers a session (the in-process analogue of Hello).
  Session OpenSession(const std::string& tenant, TenantClass cls);

  /// Runs one query for a session: plan-cache lookup (miss -> prepare +
  /// insert), tenant-weighted scheduling, memory admission, execution
  /// against the resident tables. Throws std::invalid_argument for a bad
  /// query name, Overloaded when the request is shed (queue bound or open
  /// breaker), and std::runtime_error when execution fails; an admission
  /// rejection is NOT an error — the reply comes back with rejected = true.
  QueryReply Execute(const Session& session, const std::string& query_name);

  /// Live (not yet reaped) socket connections right now.
  size_t ActiveConnections() const;

  /// Replaces the catalog residency (regenerate at `scale_factor` +
  /// re-upload) and clears the plan cache. Serialized internally.
  void ReloadCatalog(double scale_factor);

  /// Drain-aware re-admission of a reset fleet device: resets it if still
  /// Lost, runs the half-open probe, and mirrors the outcome into every
  /// backend@ordinal breaker. On a passing probe the catalog residency is
  /// re-uploaded to the ordinal on a background thread while queries keep
  /// running (no Drain — only the refcounted residency snapshot changes),
  /// the generation bumps, the plan cache clears, and the device completes
  /// readmission. Returns true when the probe passed and the rebalance was
  /// started (or the device was already alive); false on probe failure or
  /// when no fleet is attached.
  bool ReadmitDevice(int ordinal);

  /// Joins an in-flight background rebalance (tests/benches; Stop() also
  /// joins it).
  void WaitForRebalance();

  StatsReply Stats() const;

  ResidentCatalog& catalog() { return *catalog_; }
  PlanCache& plan_cache() { return plan_cache_; }
  core::QueryScheduler& scheduler() { return *scheduler_; }
  const ServerOptions& options() const { return options_; }

 private:
  /// One socket session: its fd, its thread, and a done flag the accept
  /// loop uses to reap the thread without blocking on it.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection& conn);
  /// Joins and erases finished connections. Caller must hold conn_mu_.
  void ReapFinishedLocked();
  /// Throws Overloaded when the request should be shed right now. The
  /// session's tenant class scales both the shed bound (best-effort sheds
  /// before batch before interactive at the same queue depth) and the
  /// retry-after hint.
  void CheckAdmission(TenantClass cls);

  ServerOptions options_;
  std::unique_ptr<ResidentCatalog> catalog_;
  std::unique_ptr<core::MemoryGovernor> governor_;
  std::unique_ptr<core::QueryScheduler> scheduler_;
  PlanCache plan_cache_;
  TenantRegistry tenants_;

  std::mutex reload_mu_;  ///< serializes ReloadCatalog
  std::atomic<uint64_t> next_session_{0};
  std::atomic<uint64_t> ok_queries_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> overloaded_{0};
  std::atomic<uint64_t> malformed_{0};
  std::atomic<uint64_t> devices_readmitted_{0};
  std::atomic<uint64_t> catalog_rebalances_{0};

  std::mutex rebalance_mu_;  ///< serializes ReadmitDevice's background work
  std::thread rebalance_thread_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  mutable std::mutex conn_mu_;  ///< guards conns_
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
};

}  // namespace serve

#endif  // SERVE_SERVER_H_
