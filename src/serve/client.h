// Client library for the resident query server.
//
// One Client is one session: it connects to the server's UNIX socket, sends
// Hello (tenant name + QoS class), and then issues synchronous Query/Stats
// requests. Not thread-safe — the protocol is strict request/response per
// connection; concurrency comes from opening more clients (bench_serving
// opens one per simulated session).
#ifndef SERVE_CLIENT_H_
#define SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "serve/tenant.h"

namespace serve {

/// Budget + backoff curve for QueryWithRetry. The backoff is seeded, so a
/// bench that replays the same seed replays the same sleep schedule.
struct RetryOptions {
  int max_attempts = 5;            ///< total tries including the first
  uint64_t seed = 0;               ///< jitter seed (deterministic schedule)
  uint64_t max_backoff_ms = 1000;  ///< cap on any single sleep
};

class Client {
 public:
  /// Connects and performs the Hello handshake. Throws std::runtime_error
  /// when the socket or handshake fails.
  Client(const std::string& socket_path, const std::string& tenant,
         TenantClass cls);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Dataset/backend description from the Hello handshake.
  const HelloReply& hello() const { return hello_; }

  /// Runs one query ("q1" | "q3" | "q4" | "q6" | "q14"). Throws
  /// std::runtime_error on a server-side error reply or transport failure;
  /// an admission rejection returns normally with reply.rejected == true,
  /// and a load shed returns normally with reply.overloaded == true plus
  /// the server's retry-after hint.
  QueryReply Query(const std::string& query_name);

  /// Query with retry-on-shed: a kOverloaded reply sleeps for the server's
  /// retry_after_ms hint plus seeded exponential jitter (capped by
  /// max_backoff_ms) and tries again, up to max_attempts. Returns the final
  /// reply — overloaded still true when the budget ran out — so tools and
  /// benches stop hand-rolling this loop. Errors still throw, exactly as
  /// Query does.
  QueryReply QueryWithRetry(const std::string& query_name,
                            const RetryOptions& retry = {});

  /// Shed replies QueryWithRetry slept through since construction.
  uint64_t retries() const { return retries_; }

  /// Server counters snapshot.
  StatsReply Stats();

  /// Asks the server to shut down (acknowledged before it begins).
  void Shutdown();

 private:
  int fd_ = -1;
  HelloReply hello_;
  uint64_t retries_ = 0;
};

}  // namespace serve

#endif  // SERVE_CLIENT_H_
