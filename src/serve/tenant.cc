#include "serve/tenant.h"

#include <stdexcept>

namespace serve {

const char* TenantClassName(TenantClass cls) {
  switch (cls) {
    case TenantClass::kInteractive: return "interactive";
    case TenantClass::kBatch: return "batch";
    case TenantClass::kBestEffort: return "besteffort";
  }
  return "?";
}

TenantClass ParseTenantClass(const std::string& name) {
  if (name == "interactive") return TenantClass::kInteractive;
  if (name == "batch") return TenantClass::kBatch;
  if (name == "besteffort" || name == "best-effort") {
    return TenantClass::kBestEffort;
  }
  throw std::invalid_argument(
      "unknown tenant class '" + name +
      "' (expected interactive|batch|besteffort)");
}

TenantPolicy PolicyFor(TenantClass cls) {
  TenantPolicy p;
  switch (cls) {
    case TenantClass::kInteractive:
      p.weight = 8.0;
      p.starvation_bound_ms = 250;
      p.deadline_ms = 30'000;
      p.shed_depth_fraction = 1.0;
      p.retry_after_multiplier = 1;
      break;
    case TenantClass::kBatch:
      p.weight = 2.0;
      p.starvation_bound_ms = 2'000;
      p.deadline_ms = 120'000;
      p.shed_depth_fraction = 0.75;
      p.retry_after_multiplier = 2;
      break;
    case TenantClass::kBestEffort:
      p.weight = 1.0;
      p.starvation_bound_ms = 5'000;
      p.deadline_ms = 0;
      p.shed_depth_fraction = 0.5;
      p.retry_after_multiplier = 5;
      break;
  }
  return p;
}

core::TenantSpec TenantRegistry::Register(const std::string& name,
                                          TenantClass cls) {
  const TenantPolicy policy = PolicyFor(cls);
  core::TenantSpec spec;
  spec.name = name;
  spec.weight = policy.weight;
  spec.starvation_bound_ms = policy.starvation_bound_ms;
  std::lock_guard<std::mutex> lock(mu_);
  spec.id = ids_.emplace(name, static_cast<int>(ids_.size())).first->second;
  return spec;
}

}  // namespace serve
