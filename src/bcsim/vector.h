// boost::compute::vector analogue: device-resident vector bound to a context.
#ifndef BCSIM_VECTOR_H_
#define BCSIM_VECTOR_H_

#include <cstddef>
#include <vector>

#include "bcsim/core.h"
#include "gpusim/memory.h"

namespace bcsim {

/// Device vector of trivially copyable T (boost::compute::vector<T>).
/// Unlike thrust, construction from host data is done with bcsim::copy()
/// through a queue, mirroring Boost.Compute's explicit-queue style; a
/// convenience constructor taking a queue is also provided.
template <typename T>
class vector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  vector() = default;

  explicit vector(size_t n, const context& ctx = command_queue::default_context())
      : array_(n, ctx.get_device()) {}

  vector(size_t n, T value, command_queue& queue)
      : array_(n, queue.get_context().get_device()) {
    queue.ensure_program("bcsim.fill." + detail::type_tag<T>());
    gpusim::Fill(queue.stream(), array_.data(), n, value);
  }

  /// Uploads host data through the queue (clEnqueueWriteBuffer).
  vector(const std::vector<T>& host, command_queue& queue)
      : array_(host.size(), queue.get_context().get_device()) {
    if (!host.empty()) {
      gpusim::CopyHostToDevice(queue.stream(), array_.data(), host.data(),
                               host.size() * sizeof(T));
    }
  }

  vector(vector&&) noexcept = default;
  vector& operator=(vector&&) noexcept = default;
  vector(const vector&) = delete;
  vector& operator=(const vector&) = delete;

  iterator begin() { return array_.data(); }
  iterator end() { return array_.data() + array_.size(); }
  const_iterator begin() const { return array_.data(); }
  const_iterator end() const { return array_.data() + array_.size(); }
  T* data() { return array_.data(); }
  const T* data() const { return array_.data(); }
  size_t size() const { return array_.size(); }
  bool empty() const { return array_.size() == 0; }

  /// Downloads to host through the queue (clEnqueueReadBuffer).
  std::vector<T> to_host(command_queue& queue) const {
    std::vector<T> out(array_.size());
    if (!out.empty()) {
      gpusim::CopyDeviceToHost(queue.stream(), out.data(), array_.data(),
                               out.size() * sizeof(T));
    }
    return out;
  }

 private:
  gpusim::DeviceArray<T> array_;
};

/// bcsim::copy for host->device upload (subset of boost::compute::copy).
template <typename T>
void copy(const T* host_first, const T* host_last, typename vector<T>::iterator
          device_first, command_queue& queue) {
  const size_t n = static_cast<size_t>(host_last - host_first);
  if (n > 0) {
    gpusim::CopyHostToDevice(queue.stream(), device_first, host_first,
                             n * sizeof(T));
  }
}

}  // namespace bcsim

#endif  // BCSIM_VECTOR_H_
