// Named functors (boost/compute/functional.hpp).
//
// Boost.Compute functors carry the OpenCL source they expand to; here each
// functor carries a stable name that participates in the program-cache key,
// so two algorithm calls with different functors compile different programs —
// exactly the Boost.Compute behaviour.
#ifndef BCSIM_FUNCTIONAL_H_
#define BCSIM_FUNCTIONAL_H_

#include <concepts>
#include <string>
#include <typeinfo>
#include <utility>

namespace bcsim {

template <typename T>
struct plus {
  static constexpr const char* kName = "plus";
  T operator()(const T& a, const T& b) const { return a + b; }
};

template <typename T>
struct minus {
  static constexpr const char* kName = "minus";
  T operator()(const T& a, const T& b) const { return a - b; }
};

template <typename T>
struct multiplies {
  static constexpr const char* kName = "multiplies";
  T operator()(const T& a, const T& b) const { return a * b; }
};

template <typename T>
struct bit_and {
  static constexpr const char* kName = "bit_and";
  T operator()(const T& a, const T& b) const { return a & b; }
};

template <typename T>
struct bit_or {
  static constexpr const char* kName = "bit_or";
  T operator()(const T& a, const T& b) const { return a | b; }
};

template <typename T>
struct min_op {
  static constexpr const char* kName = "min";
  T operator()(const T& a, const T& b) const { return b < a ? b : a; }
};

template <typename T>
struct max_op {
  static constexpr const char* kName = "max";
  T operator()(const T& a, const T& b) const { return a < b ? b : a; }
};

template <typename T>
struct identity {
  static constexpr const char* kName = "identity";
  const T& operator()(const T& a) const { return a; }
};

/// User-defined function with explicit source name, the analogue of
/// BOOST_COMPUTE_FUNCTION(...) which carries its own OpenCL source string.
template <typename F>
struct function {
  std::string name;
  F fn;
  template <typename... Args>
  auto operator()(Args&&... args) const {
    return fn(std::forward<Args>(args)...);
  }
};

/// Wraps a host callable as a named Boost.Compute-style function. The name
/// stands in for the function's OpenCL source in the program-cache key.
template <typename F>
function<F> make_function(std::string name, F f) {
  return function<F>{std::move(name), std::move(f)};
}

namespace detail {

template <typename F>
concept has_static_name = requires { F::kName; };

template <typename F>
concept has_member_name = requires(const F& f) {
  { f.name } -> std::convertible_to<std::string>;
};

/// Name of a functor for program-cache keys: built-in functors expose kName,
/// bcsim::function exposes .name, anything else keys on its C++ type.
template <typename F>
std::string functor_name(const F& f) {
  if constexpr (has_static_name<F>) {
    return F::kName;
  } else if constexpr (has_member_name<F>) {
    return f.name;
  } else {
    return typeid(F).name();
  }
}

}  // namespace detail

}  // namespace bcsim

#endif  // BCSIM_FUNCTIONAL_H_
