// bcsim: a Boost.Compute-compatible API surface over the gpusim device.
//
// Boost.Compute generates OpenCL C kernel source from C++ expressions and
// compiles it at run time through the OpenCL driver, caching built programs
// per context. bcsim reproduces that behaviour: every algorithm assembles a
// source key (algorithm x value types x functor name); the first use of a key
// in a context charges the OpenCL JIT compile cost from the API profile,
// subsequent uses hit the program cache. Kernel launches use the OpenCL
// profile (higher launch latency than CUDA, slightly lower effective
// throughput — cf. gpusim::ApiProfile::OpenCl()).
#ifndef BCSIM_CORE_H_
#define BCSIM_CORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <unordered_set>

#include "gpusim/algorithms.h"
#include "gpusim/stream.h"

namespace bcsim {

/// An OpenCL device (boost::compute::device).
class device {
 public:
  explicit device(gpusim::Device& d = gpusim::Device::Default()) : dev_(&d) {}
  gpusim::Device& get() const { return *dev_; }
  std::string name() const { return dev_->properties().name; }

 private:
  gpusim::Device* dev_;
};

/// Returns the default OpenCL device (boost::compute::system::default_device).
inline device default_device() { return device(); }

/// An OpenCL context owning the per-context program cache
/// (boost::compute::context).
class context {
 public:
  explicit context(const device& dev = default_device())
      : state_(std::make_shared<State>(dev)) {}

  gpusim::Device& get_device() const { return state_->dev.get(); }

  /// Returns true (and records the key) if `source_key` was not yet built in
  /// this context; the caller must then charge the compile.
  bool register_program(const std::string& source_key) const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->built.insert(source_key).second;
  }

  size_t num_programs_built() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->built.size();
  }

 private:
  struct State {
    explicit State(const device& d) : dev(d) {}
    device dev;
    mutable std::mutex mu;
    std::unordered_set<std::string> built;
  };
  std::shared_ptr<State> state_;
};

/// An in-order OpenCL command queue (boost::compute::command_queue).
class command_queue {
 public:
  explicit command_queue(const context& ctx = default_context())
      : ctx_(ctx),
        stream_(std::make_shared<gpusim::Stream>(ctx.get_device(),
                                                 gpusim::ApiProfile::OpenCl())) {
  }

  gpusim::Stream& stream() const { return *stream_; }
  const context& get_context() const { return ctx_; }

  /// Looks up `source_key` in the context's program cache; on a miss the
  /// simulated clBuildProgram cost is charged to this queue.
  void ensure_program(const std::string& source_key) const {
    if (ctx_.register_program(source_key)) {
      stream_->ChargeProgramCompile();
    }
  }

  void finish() const { stream_->Synchronize(); }

  static context& default_context() {
    static context* ctx = new context();
    return *ctx;
  }

 private:
  context ctx_;
  std::shared_ptr<gpusim::Stream> stream_;
};

/// The process-wide default queue (boost::compute::system::default_queue).
inline command_queue& default_queue() {
  static command_queue* q = new command_queue(command_queue::default_context());
  return *q;
}

namespace detail {

/// Short, stable type tag used in program source keys.
template <typename T>
std::string type_tag() {
  return typeid(T).name();
}

}  // namespace detail

}  // namespace bcsim

#endif  // BCSIM_CORE_H_
