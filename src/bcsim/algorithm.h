// Boost.Compute-style algorithms.
//
// Every algorithm (1) assembles the source keys of the OpenCL kernels it
// would generate — one per internal kernel, parameterized by value types and
// functor names — and ensures they are built in the queue's context (first
// use pays the JIT compile), then (2) executes the same GPU pass structure
// as the other libraries, but on the queue's OpenCL-profile stream.
#ifndef BCSIM_ALGORITHM_H_
#define BCSIM_ALGORITHM_H_

#include <iterator>
#include <limits>
#include <string>
#include <utility>

#include "bcsim/core.h"
#include "bcsim/functional.h"
#include "bcsim/vector.h"
#include "gpusim/algorithms.h"

namespace bcsim {

namespace detail {
template <typename It>
using value_type_of = typename std::iterator_traits<It>::value_type;
}  // namespace detail

/// boost::compute::counting_iterator equivalent.
template <typename T>
struct counting_iterator {
  using value_type = T;
  using difference_type = std::ptrdiff_t;
  using pointer = const T*;
  using reference = T;
  using iterator_category = std::random_access_iterator_tag;

  T base{};

  T operator[](size_t i) const { return base + static_cast<T>(i); }
  T operator*() const { return base; }
  counting_iterator operator+(std::ptrdiff_t d) const {
    return counting_iterator{static_cast<T>(base + d)};
  }
  std::ptrdiff_t operator-(const counting_iterator& o) const {
    return static_cast<std::ptrdiff_t>(base - o.base);
  }
};

template <typename T>
counting_iterator<T> make_counting_iterator(T base) {
  return counting_iterator<T>{base};
}

// --------------------------------------------------------------------------
// transform / fill / iota / for_each
// --------------------------------------------------------------------------

/// Unary transform: out[i] = op(in[i]).
template <typename InIt, typename OutIt, typename UnaryOp>
OutIt transform(InIt first, InIt last, OutIt out, UnaryOp op,
                command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  using U = detail::value_type_of<OutIt>;
  queue.ensure_program("bcsim.transform." + detail::type_tag<T>() + "." +
                       detail::type_tag<U>() + "." + detail::functor_name(op));
  const size_t n = static_cast<size_t>(last - first);
  gpusim::KernelStats stats;
  stats.name = "compute::transform";
  stats.bytes_read = n * sizeof(T);
  stats.bytes_written = n * sizeof(U);
  gpusim::ParallelFor(queue.stream(), n, stats,
                      [=](size_t i) { out[i] = op(first[i]); });
  return out + n;
}

/// Binary transform: out[i] = op(a[i], b[i]).
template <typename InIt1, typename InIt2, typename OutIt, typename BinaryOp>
OutIt transform(InIt1 first1, InIt1 last1, InIt2 first2, OutIt out,
                BinaryOp op, command_queue& queue) {
  using T1 = detail::value_type_of<InIt1>;
  using T2 = detail::value_type_of<InIt2>;
  using U = detail::value_type_of<OutIt>;
  queue.ensure_program("bcsim.transform2." + detail::type_tag<T1>() + "." +
                       detail::type_tag<T2>() + "." + detail::type_tag<U>() +
                       "." + detail::functor_name(op));
  const size_t n = static_cast<size_t>(last1 - first1);
  gpusim::KernelStats stats;
  stats.name = "compute::transform2";
  stats.bytes_read = n * (sizeof(T1) + sizeof(T2));
  stats.bytes_written = n * sizeof(U);
  gpusim::ParallelFor(queue.stream(), n, stats,
                      [=](size_t i) { out[i] = op(first1[i], first2[i]); });
  return out + n;
}

template <typename It, typename T>
void fill(It first, It last, T value, command_queue& queue) {
  using U = detail::value_type_of<It>;
  queue.ensure_program("bcsim.fill." + detail::type_tag<U>());
  gpusim::Fill(queue.stream(), &*first, static_cast<size_t>(last - first),
               U(value));
}

template <typename It>
void iota(It first, It last, detail::value_type_of<It> start,
          command_queue& queue) {
  using U = detail::value_type_of<It>;
  queue.ensure_program("bcsim.iota." + detail::type_tag<U>());
  gpusim::Sequence(queue.stream(), &*first, static_cast<size_t>(last - first),
                   start, U{1});
}

/// for_each_n, Table II's building block for the nested-loops join.
template <typename It, typename F>
It for_each_n(It first, size_t n, F f, command_queue& queue) {
  using T = detail::value_type_of<It>;
  queue.ensure_program("bcsim.for_each." + detail::type_tag<T>() + "." +
                       detail::functor_name(f));
  gpusim::KernelStats stats;
  stats.name = "compute::for_each_n";
  stats.bytes_read = n * sizeof(T);
  gpusim::ParallelFor(queue.stream(), n, stats, [=](size_t i) { f(first[i]); });
  return first + n;
}

// --------------------------------------------------------------------------
// gather / scatter / copy
// --------------------------------------------------------------------------

template <typename MapIt, typename InIt, typename OutIt>
OutIt gather(MapIt map_first, MapIt map_last, InIt input, OutIt result,
             command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  queue.ensure_program("bcsim.gather." + detail::type_tag<T>());
  const size_t n = static_cast<size_t>(map_last - map_first);
  gpusim::Gather(queue.stream(), &*map_first, n, &*input, &*result);
  return result + n;
}

template <typename InIt, typename MapIt, typename OutIt>
void scatter(InIt first, InIt last, MapIt map, OutIt result,
             command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  queue.ensure_program("bcsim.scatter." + detail::type_tag<T>());
  const size_t n = static_cast<size_t>(last - first);
  gpusim::Scatter(queue.stream(), &*first, &*map, n, &*result);
}

/// result[map[i]] = first[i] where stencil[i] is truthy (scatter_if).
template <typename InIt, typename MapIt, typename StencilIt, typename OutIt>
void scatter_if(InIt first, InIt last, MapIt map, StencilIt stencil,
                OutIt result, command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  using M = detail::value_type_of<MapIt>;
  using S = detail::value_type_of<StencilIt>;
  queue.ensure_program("bcsim.scatter_if." + detail::type_tag<T>());
  const size_t n = static_cast<size_t>(last - first);
  gpusim::KernelStats stats;
  stats.name = "compute::scatter_if";
  stats.bytes_read = n * (sizeof(M) + sizeof(S));
  stats.bytes_written = n * sizeof(T);
  gpusim::ParallelFor(queue.stream(), n, stats, [=](size_t i) {
    if (stencil[i]) result[static_cast<size_t>(map[i])] = first[i];
  });
}

template <typename InIt, typename OutIt>
OutIt copy(InIt first, InIt last, OutIt out, command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  const size_t n = static_cast<size_t>(last - first);
  if (n > 0) {
    gpusim::CopyDeviceToDevice(queue.stream(), &*out, &*first, n * sizeof(T));
  }
  return out + n;
}

// --------------------------------------------------------------------------
// reduce / count
// --------------------------------------------------------------------------

template <typename It, typename T, typename BinOp>
T reduce(It first, It last, T init, BinOp op, command_queue& queue) {
  queue.ensure_program("bcsim.reduce." + detail::type_tag<T>() + "." +
                       detail::functor_name(op));
  return gpusim::Reduce(queue.stream(), &*first,
                        static_cast<size_t>(last - first), init, op,
                        "compute::reduce");
}

template <typename It>
detail::value_type_of<It> reduce(It first, It last, command_queue& queue) {
  using T = detail::value_type_of<It>;
  return reduce(first, last, T{}, plus<T>(), queue);
}

template <typename It, typename Pred>
size_t count_if(It first, It last, Pred pred, command_queue& queue) {
  using T = detail::value_type_of<It>;
  queue.ensure_program("bcsim.count_if." + detail::type_tag<T>() + "." +
                       detail::functor_name(pred));
  queue.ensure_program("bcsim.reduce.u32.plus");
  return gpusim::CountIf(queue.stream(), &*first,
                         static_cast<size_t>(last - first), pred);
}

// --------------------------------------------------------------------------
// scans
// --------------------------------------------------------------------------

template <typename InIt, typename OutIt, typename T, typename BinOp>
OutIt exclusive_scan(InIt first, InIt last, OutIt out, T init, BinOp op,
                     command_queue& queue) {
  queue.ensure_program("bcsim.scan.local." + detail::type_tag<T>() + "." +
                       detail::functor_name(op));
  queue.ensure_program("bcsim.scan.add." + detail::type_tag<T>() + "." +
                       detail::functor_name(op));
  const size_t n = static_cast<size_t>(last - first);
  gpusim::ExclusiveScan(queue.stream(), &*first, &*out, n, init, op);
  return out + n;
}

template <typename InIt, typename OutIt>
OutIt exclusive_scan(InIt first, InIt last, OutIt out, command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  return exclusive_scan(first, last, out, T{}, plus<T>(), queue);
}

template <typename InIt, typename OutIt, typename BinOp>
OutIt inclusive_scan(InIt first, InIt last, OutIt out, BinOp op,
                     command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  queue.ensure_program("bcsim.scan.local." + detail::type_tag<T>() + "." +
                       detail::functor_name(op));
  queue.ensure_program("bcsim.scan.add." + detail::type_tag<T>() + "." +
                       detail::functor_name(op));
  const size_t n = static_cast<size_t>(last - first);
  gpusim::InclusiveScan(queue.stream(), &*first, &*out, n, op);
  return out + n;
}

template <typename InIt, typename OutIt>
OutIt inclusive_scan(InIt first, InIt last, OutIt out, command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  return inclusive_scan(first, last, out, plus<T>(), queue);
}

// --------------------------------------------------------------------------
// compaction
// --------------------------------------------------------------------------

template <typename InIt, typename OutIt, typename Pred>
OutIt copy_if(InIt first, InIt last, OutIt out, Pred pred,
              command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  queue.ensure_program("bcsim.copy_if.flags." + detail::type_tag<T>() + "." +
                       detail::functor_name(pred));
  queue.ensure_program("bcsim.scan.local.u32.plus");
  queue.ensure_program("bcsim.scan.add.u32.plus");
  queue.ensure_program("bcsim.copy_if.scatter." + detail::type_tag<T>());
  const size_t n = static_cast<size_t>(last - first);
  const size_t count = gpusim::CopyIf(queue.stream(), &*first, n, &*out, pred);
  return out + count;
}

// --------------------------------------------------------------------------
// sort / grouping
// --------------------------------------------------------------------------

template <typename It>
void sort(It first, It last, command_queue& queue) {
  using K = detail::value_type_of<It>;
  queue.ensure_program("bcsim.radix.histogram." + detail::type_tag<K>());
  queue.ensure_program("bcsim.scan.local.u32.plus");
  queue.ensure_program("bcsim.scan.add.u32.plus");
  queue.ensure_program("bcsim.radix.scatter." + detail::type_tag<K>());
  gpusim::RadixSortKeys(queue.stream(), &*first,
                        static_cast<size_t>(last - first));
}

template <typename KeyIt, typename ValIt>
void sort_by_key(KeyIt keys_first, KeyIt keys_last, ValIt values_first,
                 command_queue& queue) {
  using K = detail::value_type_of<KeyIt>;
  using V = detail::value_type_of<ValIt>;
  queue.ensure_program("bcsim.radix.histogram." + detail::type_tag<K>());
  queue.ensure_program("bcsim.scan.local.u32.plus");
  queue.ensure_program("bcsim.scan.add.u32.plus");
  queue.ensure_program("bcsim.radix.scatter_kv." + detail::type_tag<K>() +
                       "." + detail::type_tag<V>());
  gpusim::RadixSortPairs(queue.stream(), &*keys_first, &*values_first,
                         static_cast<size_t>(keys_last - keys_first));
}

template <typename KeyIt, typename ValIt, typename KeyOutIt, typename ValOutIt,
          typename BinOp>
std::pair<KeyOutIt, ValOutIt> reduce_by_key(KeyIt keys_first, KeyIt keys_last,
                                            ValIt values_first,
                                            KeyOutIt keys_out,
                                            ValOutIt values_out, BinOp op,
                                            command_queue& queue) {
  using K = detail::value_type_of<KeyIt>;
  using V = detail::value_type_of<ValIt>;
  queue.ensure_program("bcsim.rbk.flags." + detail::type_tag<K>());
  queue.ensure_program("bcsim.scan.local.u32.plus");
  queue.ensure_program("bcsim.scan.add.u32.plus");
  queue.ensure_program("bcsim.rbk.combine." + detail::type_tag<K>() + "." +
                       detail::type_tag<V>() + "." + detail::functor_name(op));
  const size_t n = static_cast<size_t>(keys_last - keys_first);
  const size_t groups =
      gpusim::ReduceByKey(queue.stream(), &*keys_first, &*values_first, n,
                          &*keys_out, &*values_out, op);
  return {keys_out + groups, values_out + groups};
}

/// boost::compute::accumulate (serial semantics, parallel realization —
/// requires an associative op like compute::accumulate's fast path).
template <typename It, typename T, typename BinOp>
T accumulate(It first, It last, T init, BinOp op, command_queue& queue) {
  return reduce(first, last, init, op, queue);
}

template <typename It, typename T>
T accumulate(It first, It last, T init, command_queue& queue) {
  return reduce(first, last, init, plus<T>(), queue);
}

/// boost::compute::find: iterator to the first occurrence of value (or
/// last). Realized as a flag kernel + index min-reduction.
template <typename It, typename T>
It find(It first, It last, T value, command_queue& queue) {
  using U = detail::value_type_of<It>;
  queue.ensure_program("bcsim.find.flags." + detail::type_tag<U>());
  queue.ensure_program("bcsim.reduce.u64.min");
  const size_t n = static_cast<size_t>(last - first);
  if (n == 0) return last;
  gpusim::DeviceArray<uint64_t> idx(n, queue.get_context().get_device());
  gpusim::KernelStats stats;
  stats.name = "compute::find(flags)";
  stats.bytes_read = n * sizeof(U);
  stats.bytes_written = n * sizeof(uint64_t);
  uint64_t* ix = idx.data();
  gpusim::ParallelFor(queue.stream(), n, stats, [=](size_t i) {
    ix[i] = first[i] == value ? static_cast<uint64_t>(i)
                              : std::numeric_limits<uint64_t>::max();
  });
  const uint64_t best = gpusim::Reduce(
      queue.stream(), idx.data(), n, std::numeric_limits<uint64_t>::max(),
      [](uint64_t a, uint64_t b) { return a < b ? a : b; },
      "compute::find(reduce)");
  return best == std::numeric_limits<uint64_t>::max()
             ? last
             : first + static_cast<std::ptrdiff_t>(best);
}

/// boost::compute::equal.
template <typename It1, typename It2>
bool equal(It1 first1, It1 last1, It2 first2, command_queue& queue) {
  using A = detail::value_type_of<It1>;
  queue.ensure_program("bcsim.equal." + detail::type_tag<A>());
  queue.ensure_program("bcsim.reduce.u32.plus");
  const size_t n = static_cast<size_t>(last1 - first1);
  gpusim::DeviceArray<uint32_t> flags(n, queue.get_context().get_device());
  gpusim::KernelStats stats;
  stats.name = "compute::equal(flags)";
  stats.bytes_read = 2 * n * sizeof(A);
  stats.bytes_written = n * sizeof(uint32_t);
  uint32_t* f = flags.data();
  gpusim::ParallelFor(queue.stream(), n, stats, [=](size_t i) {
    f[i] = first1[i] == first2[i] ? 1u : 0u;
  });
  const uint32_t matches = gpusim::Reduce(
      queue.stream(), flags.data(), n, uint32_t{0},
      [](uint32_t a, uint32_t b) { return a + b; }, "compute::equal(reduce)");
  return matches == n;
}

/// boost::compute::adjacent_difference.
template <typename InIt, typename OutIt, typename BinOp>
OutIt adjacent_difference(InIt first, InIt last, OutIt out, BinOp op,
                          command_queue& queue) {
  using T = detail::value_type_of<InIt>;
  queue.ensure_program("bcsim.adjacent_difference." + detail::type_tag<T>() +
                       "." + detail::functor_name(op));
  const size_t n = static_cast<size_t>(last - first);
  gpusim::KernelStats stats;
  stats.name = "compute::adjacent_difference";
  stats.bytes_read = 2 * n * sizeof(T);
  stats.bytes_written = n * sizeof(T);
  gpusim::ParallelFor(queue.stream(), n, stats, [=](size_t i) {
    out[i] = i == 0 ? first[0] : op(first[i], first[i - 1]);
  });
  return out + n;
}

/// unique over a sorted range; returns one past the last unique element.
template <typename It>
It unique(It first, It last, command_queue& queue) {
  using T = detail::value_type_of<It>;
  queue.ensure_program("bcsim.unique.flags." + detail::type_tag<T>());
  queue.ensure_program("bcsim.scan.local.u32.plus");
  queue.ensure_program("bcsim.scan.add.u32.plus");
  queue.ensure_program("bcsim.unique.scatter." + detail::type_tag<T>());
  const size_t n = static_cast<size_t>(last - first);
  gpusim::DeviceArray<T> tmp(n, queue.get_context().get_device());
  const size_t count =
      gpusim::UniqueSorted(queue.stream(), &*first, n, tmp.data());
  if (count > 0) {
    gpusim::CopyDeviceToDevice(queue.stream(), &*first, tmp.data(),
                               count * sizeof(T));
  }
  return first + count;
}

template <typename KeyIt, typename ValIt, typename KeyOutIt, typename ValOutIt>
std::pair<KeyOutIt, ValOutIt> reduce_by_key(KeyIt keys_first, KeyIt keys_last,
                                            ValIt values_first,
                                            KeyOutIt keys_out,
                                            ValOutIt values_out,
                                            command_queue& queue) {
  using V = detail::value_type_of<ValIt>;
  return reduce_by_key(keys_first, keys_last, values_first, keys_out,
                       values_out, plus<V>(), queue);
}

}  // namespace bcsim

#endif  // BCSIM_ALGORITHM_H_
