// Umbrella header for the Boost.Compute-like library simulation.
#ifndef BCSIM_BCSIM_H_
#define BCSIM_BCSIM_H_

#include "bcsim/algorithm.h"
#include "bcsim/core.h"
#include "bcsim/functional.h"
#include "bcsim/vector.h"

#endif  // BCSIM_BCSIM_H_
