// Thrust binding of the operator framework.
//
// Realizes each database operator with the Thrust calls from Table II:
//   Selection            transform() & exclusive_scan() & scatter_if()   (~)
//   Conjunction/Disj.    bit_and<T>() / bit_or<T>() over predicate flags (+)
//   Nested-loops join    for_each_n() over the probe side                (+)
//   Grouped aggregation  sort_by_key() + reduce_by_key()                 (+)
//   Reduction            reduce()                                        (+)
//   Sort / sort-by-key   sort() / sort_by_key()                          (+)
//   Prefix sum           exclusive_scan()                                (+)
//   Scatter & gather     scatter() / gather()                            (+)
//   Product              transform() & multiplies<T>()                   (+)
// Hash join and merge join have no Thrust realization (Table II "-").
#include <limits>

#include "backends/backends.h"
#include "backends/common.h"
#include "core/backend.h"
#include "gpusim/atomic_ops.h"
#include "thrustsim/thrustsim.h"

namespace backends {
namespace {

using core::AggOp;
using core::CompareOp;
using core::DbOperator;
using core::GroupByResult;
using core::JoinResult;
using core::OperatorRealization;
using core::Predicate;
using core::SelectionResult;
using core::SupportLevel;
using storage::DataType;
using storage::DeviceColumn;

class ThrustBackend : public core::Backend {
 public:
  ThrustBackend()
      : stream_(gpusim::Device::Current(), gpusim::ApiProfile::Cuda()) {
    stream_.set_label(kThrust);
  }

  std::string name() const override { return kThrust; }
  gpusim::Stream& stream() override { return stream_; }

  OperatorRealization Realization(DbOperator op) const override {
    switch (op) {
      case DbOperator::kSelection:
        return {SupportLevel::kPartial,
                "transform() & exclusive_scan() & gather()"};
      case DbOperator::kConjunction:
        return {SupportLevel::kFull, "bit_and<T>()"};
      case DbOperator::kDisjunction:
        return {SupportLevel::kFull, "bit_or<T>()"};
      case DbOperator::kNestedLoopsJoin:
        return {SupportLevel::kFull, "for_each_n()"};
      case DbOperator::kMergeJoin:
      case DbOperator::kHashJoin:
        return {SupportLevel::kNone, ""};
      case DbOperator::kGroupedAggregation:
        return {SupportLevel::kFull, "reduce_by_key()"};
      case DbOperator::kReduction:
        return {SupportLevel::kFull, "reduce()"};
      case DbOperator::kSortByKey:
        return {SupportLevel::kFull, "sort_by_key()"};
      case DbOperator::kSort:
        return {SupportLevel::kFull, "sort()"};
      case DbOperator::kPrefixSum:
        return {SupportLevel::kFull, "exclusive_scan()"};
      case DbOperator::kScatterGather:
        return {SupportLevel::kFull, "scatter(), gather()"};
      case DbOperator::kProduct:
        return {SupportLevel::kFull, "transform() & multiplies<T>()"};
    }
    return {SupportLevel::kNone, ""};
  }

  // -- Selection -----------------------------------------------------------

  SelectionResult Select(const DeviceColumn& column,
                         const Predicate& pred) override {
    const size_t n = column.size();
    gpusim::DeviceArray<uint32_t> flags(n, device());
    PredicateFlags(column, pred, flags.data());
    return FinishSelection(flags.data(), n);
  }

  SelectionResult SelectConjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    return SelectCombined(columns, preds, /*conjunctive=*/true);
  }

  SelectionResult SelectDisjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    return SelectCombined(columns, preds, /*conjunctive=*/false);
  }

  SelectionResult SelectCompareColumns(const DeviceColumn& a, CompareOp op,
                                       const DeviceColumn& b) override {
    const size_t n = a.size();
    gpusim::DeviceArray<uint32_t> flags(n, device());
    BACKENDS_DISPATCH(a.type(), {
      uint32_t* f = flags.data();
      thrustsim::transform(pol(), a.data<T>(), a.data<T>() + n, b.data<T>(),
                           f, [op](T x, T y) {
                             return ApplyCompare(op, x, y) ? 1u : 0u;
                           });
    });
    return FinishSelection(flags.data(), n);
  }

  // -- Joins ----------------------------------------------------------------

  JoinResult NestedLoopsJoin(const DeviceColumn& left_keys,
                             const DeviceColumn& right_keys) override {
    const size_t nl = left_keys.size();
    const size_t nr = right_keys.size();
    const int32_t* left = left_keys.data<int32_t>();
    const int32_t* right = right_keys.data<int32_t>();

    JoinResult out;
    out.left_rows = DeviceColumn(DataType::kInt32, nr, device());
    out.right_rows = DeviceColumn(DataType::kInt32, nr, device());
    gpusim::DeviceArray<uint32_t> counter(1, device());
    gpusim::MemsetDevice(stream_, counter.data(), 0, sizeof(uint32_t));

    int32_t* ol = out.left_rows.data<int32_t>();
    int32_t* orr = out.right_rows.data<int32_t>();
    uint32_t* c = counter.data();
    // for_each_n over the probe side; the functor scans the (unique-key)
    // build side and appends via an atomic ticket.
    thrustsim::for_each_index(
        pol(), nr,
        [=](size_t i) {
          const int32_t key = right[i];
          for (size_t j = 0; j < nl; ++j) {
            if (left[j] == key) {
              const uint32_t t = gpusim::AtomicAdd(c, uint32_t{1});
              ol[t] = static_cast<int32_t>(j);
              orr[t] = static_cast<int32_t>(i);
              break;
            }
          }
        },
        /*extra_read_bytes=*/nr * sizeof(int32_t) +
            static_cast<uint64_t>(nr) * nl * sizeof(int32_t),
        /*extra_ops=*/static_cast<uint64_t>(nr) * nl,
        /*extra_written_bytes=*/nr * 2 * sizeof(int32_t));
    uint32_t count = 0;
    gpusim::CopyDeviceToHost(stream_, &count, counter.data(),
                             sizeof(uint32_t));
    out.count = count;
    out.left_rows = ShrinkToColumn(out.left_rows.data<int32_t>(), count,
                                   DataType::kInt32);
    out.right_rows = ShrinkToColumn(out.right_rows.data<int32_t>(), count,
                                    DataType::kInt32);
    return out;
  }

  // -- Aggregation -----------------------------------------------------------

  GroupByResult GroupByAggregate(const DeviceColumn& keys,
                                 const DeviceColumn& values,
                                 AggOp op) override {
    const size_t n = keys.size();
    gpusim::DeviceArray<int32_t> work_keys(n, device());
    gpusim::CopyDeviceToDevice(stream_, work_keys.data(),
                               keys.data<int32_t>(), n * sizeof(int32_t));

    GroupByResult out;
    if (op == AggOp::kCount) {
      gpusim::DeviceArray<int64_t> ones(n, device());
      thrustsim::fill(pol(), ones.data(), ones.data() + n, int64_t{1});
      thrustsim::sort_by_key(pol(), work_keys.data(), work_keys.data() + n,
                             ones.data());
      gpusim::DeviceArray<int32_t> out_keys(n, device());
      gpusim::DeviceArray<int64_t> out_vals(n, device());
      auto ends = thrustsim::reduce_by_key(
          pol(), work_keys.data(), work_keys.data() + n, ones.data(),
          out_keys.data(), out_vals.data(), thrustsim::plus<int64_t>());
      const size_t groups =
          static_cast<size_t>(ends.first - out_keys.data());
      out.num_groups = groups;
      out.keys = ShrinkToColumn(out_keys.data(), groups, DataType::kInt32);
      out.aggregate = ShrinkToColumn(out_vals.data(), groups, DataType::kInt64);
      return out;
    }

    BACKENDS_DISPATCH(values.type(), {
      gpusim::DeviceArray<T> work_vals(n, device());
      gpusim::CopyDeviceToDevice(stream_, work_vals.data(), values.data<T>(),
                                 n * sizeof(T));
      thrustsim::sort_by_key(pol(), work_keys.data(), work_keys.data() + n,
                             work_vals.data());
      gpusim::DeviceArray<int32_t> out_keys(n, device());
      gpusim::DeviceArray<T> out_vals(n, device());
      std::pair<int32_t*, T*> ends{out_keys.data(), out_vals.data()};
      switch (op) {
        case AggOp::kSum:
          ends = thrustsim::reduce_by_key(
              pol(), work_keys.data(), work_keys.data() + n, work_vals.data(),
              out_keys.data(), out_vals.data(), thrustsim::plus<T>());
          break;
        case AggOp::kMin:
          ends = thrustsim::reduce_by_key(
              pol(), work_keys.data(), work_keys.data() + n, work_vals.data(),
              out_keys.data(), out_vals.data(), thrustsim::minimum<T>());
          break;
        case AggOp::kMax:
          ends = thrustsim::reduce_by_key(
              pol(), work_keys.data(), work_keys.data() + n, work_vals.data(),
              out_keys.data(), out_vals.data(), thrustsim::maximum<T>());
          break;
        case AggOp::kCount:
          break;  // handled above
      }
      const size_t groups = static_cast<size_t>(ends.first - out_keys.data());
      out.num_groups = groups;
      out.keys = ShrinkToColumn(out_keys.data(), groups, DataType::kInt32);
      // Aggregates are reported as float64 (framework convention).
      DeviceColumn agg(DataType::kFloat64, groups, device());
      thrustsim::transform(pol(), out_vals.data(), out_vals.data() + groups,
                           agg.data<double>(),
                           [](T v) { return static_cast<double>(v); });
      out.aggregate = std::move(agg);
    });
    return out;
  }

  double ReduceColumn(const DeviceColumn& values, AggOp op) override {
    if (op == AggOp::kCount) return static_cast<double>(values.size());
    double result = 0.0;
    BACKENDS_DISPATCH(values.type(), {
      const T* data = values.data<T>();
      const size_t n = values.size();
      switch (op) {
        case AggOp::kSum:
          result = static_cast<double>(thrustsim::reduce(
              pol(), data, data + n, T{}, thrustsim::plus<T>()));
          break;
        case AggOp::kMin:
          result = static_cast<double>(
              thrustsim::reduce(pol(), data, data + n,
                                std::numeric_limits<T>::max(),
                                thrustsim::minimum<T>()));
          break;
        case AggOp::kMax:
          result = static_cast<double>(
              thrustsim::reduce(pol(), data, data + n,
                                std::numeric_limits<T>::lowest(),
                                thrustsim::maximum<T>()));
          break;
        case AggOp::kCount:
          break;  // handled above
      }
    });
    return result;
  }

  // -- Sorting ----------------------------------------------------------------

  DeviceColumn Sort(const DeviceColumn& column) override {
    DeviceColumn out(column.type(), column.size(), device());
    BACKENDS_DISPATCH(column.type(), {
      gpusim::CopyDeviceToDevice(stream_, out.data<T>(), column.data<T>(),
                                 column.size() * sizeof(T));
      thrustsim::sort(pol(), out.data<T>(), out.data<T>() + out.size());
    });
    return out;
  }

  std::pair<DeviceColumn, DeviceColumn> SortByKey(
      const DeviceColumn& keys, const DeviceColumn& values) override {
    DeviceColumn out_keys(keys.type(), keys.size(), device());
    DeviceColumn out_vals(values.type(), values.size(), device());
    BACKENDS_DISPATCH(keys.type(), {
      using K = T;
      gpusim::CopyDeviceToDevice(stream_, out_keys.data<K>(), keys.data<K>(),
                                 keys.size() * sizeof(K));
      BACKENDS_DISPATCH(values.type(), {
        gpusim::CopyDeviceToDevice(stream_, out_vals.data<T>(),
                                   values.data<T>(),
                                   values.size() * sizeof(T));
        thrustsim::sort_by_key(pol(), out_keys.data<K>(),
                               out_keys.data<K>() + keys.size(),
                               out_vals.data<T>());
      });
    });
    return {std::move(out_keys), std::move(out_vals)};
  }

  DeviceColumn Unique(const DeviceColumn& column) override {
    DeviceColumn sorted = Sort(column);
    size_t count = 0;
    BACKENDS_DISPATCH(column.type(), {
      T* data = sorted.data<T>();
      T* end = thrustsim::unique(pol(), data, data + sorted.size());
      count = static_cast<size_t>(end - data);
    });
    DeviceColumn out(column.type(), count, device());
    if (count > 0) {
      gpusim::CopyDeviceToDevice(stream_, out.raw_data(), sorted.raw_data(),
                                 count * storage::DataTypeSize(column.type()));
    }
    return out;
  }

  // -- Primitives ---------------------------------------------------------------

  DeviceColumn PrefixSum(const DeviceColumn& column) override {
    DeviceColumn out(column.type(), column.size(), device());
    BACKENDS_DISPATCH(column.type(), {
      thrustsim::exclusive_scan(pol(), column.data<T>(),
                                column.data<T>() + column.size(),
                                out.data<T>(), T{}, thrustsim::plus<T>());
    });
    return out;
  }

  DeviceColumn Gather(const DeviceColumn& src,
                      const DeviceColumn& indices) override {
    DeviceColumn out(src.type(), indices.size(), device());
    const int32_t* map = indices.data<int32_t>();
    BACKENDS_DISPATCH(src.type(), {
      thrustsim::gather(pol(), map, map + indices.size(), src.data<T>(),
                        out.data<T>());
    });
    return out;
  }

  DeviceColumn Scatter(const DeviceColumn& src, const DeviceColumn& indices,
                       size_t out_size) override {
    DeviceColumn out(src.type(), out_size, device());
    const int32_t* map = indices.data<int32_t>();
    BACKENDS_DISPATCH(src.type(), {
      thrustsim::fill(pol(), out.data<T>(), out.data<T>() + out_size, T{});
      thrustsim::scatter(pol(), src.data<T>(), src.data<T>() + src.size(),
                         map, out.data<T>());
    });
    return out;
  }

  DeviceColumn Product(const DeviceColumn& a, const DeviceColumn& b) override {
    DeviceColumn out(a.type(), a.size(), device());
    BACKENDS_DISPATCH(a.type(), {
      thrustsim::transform(pol(), a.data<T>(), a.data<T>() + a.size(),
                           b.data<T>(), out.data<T>(),
                           thrustsim::multiplies<T>());
    });
    return out;
  }

  DeviceColumn AddScalar(const DeviceColumn& a, double alpha) override {
    DeviceColumn out(a.type(), a.size(), device());
    BACKENDS_DISPATCH(a.type(), {
      const T s = static_cast<T>(alpha);
      thrustsim::transform(pol(), a.data<T>(), a.data<T>() + a.size(),
                           out.data<T>(),
                           [=](T v) { return static_cast<T>(v + s); });
    });
    return out;
  }

  DeviceColumn SubtractFromScalar(double alpha,
                                  const DeviceColumn& a) override {
    DeviceColumn out(a.type(), a.size(), device());
    BACKENDS_DISPATCH(a.type(), {
      const T s = static_cast<T>(alpha);
      thrustsim::transform(pol(), a.data<T>(), a.data<T>() + a.size(),
                           out.data<T>(),
                           [=](T v) { return static_cast<T>(s - v); });
    });
    return out;
  }

 private:
  gpusim::Device& device() { return stream_.device(); }
  thrustsim::execution_policy pol() { return thrustsim::cuda::par.on(stream_); }

  /// Copies the first `count` elements of a work buffer into a fresh column.
  template <typename T>
  DeviceColumn ShrinkToColumn(const T* data, size_t count,
                              DataType type) {
    DeviceColumn out(type, count, device());
    if (count > 0) {
      gpusim::CopyDeviceToDevice(stream_, out.raw_data(), data,
                                 count * sizeof(T));
    }
    return out;
  }

  /// transform(): writes 0/1 flags for one predicate.
  void PredicateFlags(const DeviceColumn& column, const Predicate& pred,
                      uint32_t* flags) {
    const size_t n = column.size();
    BACKENDS_DISPATCH(column.type(), {
      const T* data = column.data<T>();
      const T lit = PredLiteral<T>(pred);
      const CompareOp op = pred.op;
      thrustsim::transform(pol(), data, data + n, flags, [=](T v) {
        return ApplyCompare(op, v, lit) ? 1u : 0u;
      });
    });
  }

  /// exclusive_scan() + scatter_if(counting): flags -> compacted row ids.
  SelectionResult FinishSelection(const uint32_t* flags, size_t n) {
    SelectionResult out;
    if (n == 0) {
      out.row_ids = DeviceColumn(DataType::kInt32, 0, device());
      return out;
    }
    gpusim::DeviceArray<uint32_t> positions(n, device());
    thrustsim::exclusive_scan(pol(), flags, flags + n, positions.data(),
                              uint32_t{0}, thrustsim::plus<uint32_t>());
    uint32_t last_pos = 0, last_flag = 0;
    gpusim::CopyDeviceToHost(stream_, &last_pos, positions.data() + (n - 1),
                             sizeof(uint32_t));
    gpusim::CopyDeviceToHost(stream_, &last_flag, flags + (n - 1),
                             sizeof(uint32_t));
    out.count = last_pos + last_flag;
    out.row_ids = DeviceColumn(DataType::kInt32, out.count, device());
    thrustsim::scatter_if(pol(), thrustsim::make_counting_iterator<int32_t>(0),
                          thrustsim::make_counting_iterator<int32_t>(
                              static_cast<int32_t>(n)),
                          positions.data(), flags,
                          out.row_ids.data<int32_t>());
    return out;
  }

  SelectionResult SelectCombined(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds, bool conjunctive) {
    if (columns.empty() || columns.size() != preds.size()) {
      throw std::invalid_argument("SelectCombined: bad predicate list");
    }
    const size_t n = columns[0]->size();
    gpusim::DeviceArray<uint32_t> acc(n, device());
    PredicateFlags(*columns[0], preds[0], acc.data());
    gpusim::DeviceArray<uint32_t> flags(n, device());
    for (size_t p = 1; p < preds.size(); ++p) {
      PredicateFlags(*columns[p], preds[p], flags.data());
      if (conjunctive) {
        thrustsim::transform(pol(), acc.data(), acc.data() + n, flags.data(),
                             acc.data(), thrustsim::bit_and<uint32_t>());
      } else {
        thrustsim::transform(pol(), acc.data(), acc.data() + n, flags.data(),
                             acc.data(), thrustsim::bit_or<uint32_t>());
      }
    }
    return FinishSelection(acc.data(), n);
  }

  gpusim::Stream stream_;
};

}  // namespace

std::unique_ptr<core::Backend> CreateThrustBackend() {
  return std::make_unique<ThrustBackend>();
}

}  // namespace backends
