// Registration of the built-in backends with the framework registry.
#include "backends/backends.h"
#include "core/registry.h"

namespace core {

void RegisterBuiltinBackends() {
  auto& registry = BackendRegistry::Instance();
  registry.Register(backends::kThrust, backends::CreateThrustBackend);
  registry.Register(backends::kBoostCompute,
                    backends::CreateBoostComputeBackend);
  registry.Register(backends::kArrayFire, backends::CreateArrayFireBackend);
  registry.Register(backends::kHandwritten,
                    backends::CreateHandwrittenBackend);
  registry.Register(backends::kHybrid, backends::CreateHybridBackend);
}

}  // namespace core
