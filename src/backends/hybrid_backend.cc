// Hybrid backend: per-operator cost-based dispatch across the four library
// bindings, exposed through the ordinary core::Backend interface so the
// hand-coded queries, the scheduler, and the benches can use the planner's
// dispatch policy without being rewritten as plans.
//
// Every call is priced per candidate with plan::CostEstimator (actual input
// sizes, heuristic output cardinalities) plus a boundary charge for inputs
// that were materialized by a differently-chosen backend; the cheapest
// candidate executes the call on its own stream. Result buffers are tagged
// with the backend that produced them (buffer-address provenance) so later
// calls know when a boundary device-to-device copy must be charged.
//
// The sub-backend's stream delta is mirrored onto the hybrid stream with
// ChargeOverhead so that stream-timeline deltas (what QueryScheduler
// measures) cover all dispatched work. The device-global simulated_ns
// counter sees both the sub-stream and the mirror charge; per-stream
// timelines — the quantity every report in this repo uses — stay exact.
//
// Resilience: dispatch ranks candidates by cost and consults the
// per-backend circuit breakers (core/resilience.h) — candidates with an
// open circuit are skipped while a healthy alternative exists. Execution
// retries transient faults on the chosen backend, reclaims + retries once
// on device OOM, and falls back to the next-cheapest capable candidate on a
// fatal failure (recording it against the failed backend's breaker), so a
// "dead" sub-backend degrades dispatch instead of failing queries. With no
// injector attached and all breakers closed the chosen candidate, the
// charged commands, and the simulated timeline are identical to the
// non-resilient path.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "backends/backends.h"
#include "core/backend.h"
#include "core/error.h"
#include "core/resilience.h"
#include "plan/cost_estimator.h"

namespace backends {
namespace {

using core::AggOp;
using core::CompareOp;
using core::DbOperator;
using core::Predicate;
using storage::DeviceColumn;

const std::vector<std::string>& Candidates() {
  static const std::vector<std::string>* order = new std::vector<std::string>{
      kHandwritten, kThrust, kArrayFire, kBoostCompute};
  return *order;
}

class HybridBackend : public core::Backend {
 public:
  HybridBackend()
      : stream_(gpusim::Device::Current(), gpusim::ApiProfile::Cuda()),
        resilience_(&core::ResilienceManager::Global()) {
    stream_.set_label(kHybrid);
    subs_.emplace(kHandwritten, CreateHandwrittenBackend());
    subs_.emplace(kThrust, CreateThrustBackend());
    subs_.emplace(kArrayFire, CreateArrayFireBackend());
    subs_.emplace(kBoostCompute, CreateBoostComputeBackend());
  }

  std::string name() const override { return kHybrid; }
  gpusim::Stream& stream() override { return stream_; }
  /// Owns an ArrayFire instance (process-global JIT state).
  bool concurrency_safe() const override { return false; }

  core::OperatorRealization Realization(DbOperator op) const override {
    const std::string chosen = PreferredFor(op);
    core::OperatorRealization r = Sub(chosen).Realization(op);
    if (r.level != core::SupportLevel::kNone) {
      r.functions = "via " + chosen + ": " + r.functions;
    }
    return r;
  }

  // -- Selection ------------------------------------------------------------

  core::SelectionResult Select(const DeviceColumn& column,
                               const Predicate& pred) override {
    const size_t n = column.size();
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.Select(c, n, n / 3, ElemBytes(column), 1);
        },
        {&column});
    auto r = Run(ranked, {&column},
                 [&](core::Backend& s) { return s.Select(column, pred); });
    Tag(r.row_ids, last_run_);
    return r;
  }

  core::SelectionResult SelectConjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    return MultiSelect(columns, preds, /*conjunctive=*/true);
  }

  core::SelectionResult SelectDisjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    return MultiSelect(columns, preds, /*conjunctive=*/false);
  }

  core::SelectionResult SelectCompareColumns(const DeviceColumn& a,
                                             CompareOp op,
                                             const DeviceColumn& b) override {
    const size_t n = a.size();
    const auto ranked = Rank(
        [&](const std::string& cand) {
          return est_.SelectCompare(cand, n, n / 2, ElemBytes(a));
        },
        {&a, &b});
    auto r = Run(ranked, {&a, &b}, [&](core::Backend& s) {
      return s.SelectCompareColumns(a, op, b);
    });
    Tag(r.row_ids, last_run_);
    return r;
  }

  // -- Joins ----------------------------------------------------------------

  core::JoinResult NestedLoopsJoin(const DeviceColumn& left_keys,
                                   const DeviceColumn& right_keys) override {
    return JoinImpl(left_keys, right_keys, plan::JoinAlgo::kNestedLoops,
                    DbOperator::kNestedLoopsJoin);
  }

  core::JoinResult HashJoin(const DeviceColumn& left_keys,
                            const DeviceColumn& right_keys) override {
    return JoinImpl(left_keys, right_keys, plan::JoinAlgo::kHash,
                    DbOperator::kHashJoin);
  }

  // -- Aggregation -----------------------------------------------------------

  core::GroupByResult GroupByAggregate(const DeviceColumn& keys,
                                       const DeviceColumn& values,
                                       AggOp op) override {
    const size_t n = keys.size();
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.GroupBy(c, n, std::min<size_t>(std::max<size_t>(n, 1),
                                                     128),
                              ElemBytes(values));
        },
        {&keys, &values});
    auto r = Run(ranked, {&keys, &values}, [&](core::Backend& s) {
      return s.GroupByAggregate(keys, values, op);
    });
    Tag(r.keys, last_run_);
    Tag(r.aggregate, last_run_);
    return r;
  }

  double ReduceColumn(const DeviceColumn& values, AggOp op) override {
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.Reduce(c, values.size(), ElemBytes(values));
        },
        {&values});
    return Run(ranked, {&values},
               [&](core::Backend& s) { return s.ReduceColumn(values, op); });
  }

  // -- Sorting ---------------------------------------------------------------

  DeviceColumn Sort(const DeviceColumn& column) override {
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.Sort(c, column.size(), ElemBytes(column));
        },
        {&column});
    auto r = Run(ranked, {&column},
                 [&](core::Backend& s) { return s.Sort(column); });
    Tag(r, last_run_);
    return r;
  }

  std::pair<DeviceColumn, DeviceColumn> SortByKey(
      const DeviceColumn& keys, const DeviceColumn& values) override {
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.SortByKey(c, keys.size(), ElemBytes(keys),
                                ElemBytes(values));
        },
        {&keys, &values});
    auto r = Run(ranked, {&keys, &values}, [&](core::Backend& s) {
      return s.SortByKey(keys, values);
    });
    Tag(r.first, last_run_);
    Tag(r.second, last_run_);
    return r;
  }

  DeviceColumn Unique(const DeviceColumn& column) override {
    const size_t n = column.size();
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.Unique(c, n, std::max<size_t>(n / 2, 1),
                             ElemBytes(column));
        },
        {&column});
    auto r = Run(ranked, {&column},
                 [&](core::Backend& s) { return s.Unique(column); });
    Tag(r, last_run_);
    return r;
  }

  // -- Parallel primitives ---------------------------------------------------

  DeviceColumn PrefixSum(const DeviceColumn& column) override {
    // No dedicated estimate; a scan moves about as many bytes as a reduce.
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.Reduce(c, column.size(), ElemBytes(column));
        },
        {&column});
    auto r = Run(ranked, {&column},
                 [&](core::Backend& s) { return s.PrefixSum(column); });
    Tag(r, last_run_);
    return r;
  }

  DeviceColumn Gather(const DeviceColumn& src,
                      const DeviceColumn& indices) override {
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.Gather(c, indices.size(), ElemBytes(src));
        },
        {&src, &indices});
    auto r = Run(ranked, {&src, &indices},
                 [&](core::Backend& s) { return s.Gather(src, indices); });
    Tag(r, last_run_);
    return r;
  }

  DeviceColumn Scatter(const DeviceColumn& src, const DeviceColumn& indices,
                       size_t out_size) override {
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.Gather(c, src.size(), ElemBytes(src));
        },
        {&src, &indices});
    auto r = Run(ranked, {&src, &indices}, [&](core::Backend& s) {
      return s.Scatter(src, indices, out_size);
    });
    Tag(r, last_run_);
    return r;
  }

  DeviceColumn Product(const DeviceColumn& a, const DeviceColumn& b) override {
    const auto ranked = Rank(
        [&](const std::string& cand) {
          return est_.Map(cand, a.size(), ElemBytes(a), 2);
        },
        {&a, &b});
    auto r = Run(ranked, {&a, &b},
                 [&](core::Backend& s) { return s.Product(a, b); });
    Tag(r, last_run_);
    return r;
  }

  DeviceColumn AddScalar(const DeviceColumn& a, double alpha) override {
    const auto ranked = Rank(
        [&](const std::string& cand) {
          return est_.Map(cand, a.size(), ElemBytes(a), 1);
        },
        {&a});
    auto r = Run(ranked, {&a},
                 [&](core::Backend& s) { return s.AddScalar(a, alpha); });
    Tag(r, last_run_);
    return r;
  }

  DeviceColumn SubtractFromScalar(double alpha, const DeviceColumn& a)
      override {
    const auto ranked = Rank(
        [&](const std::string& cand) {
          return est_.Map(cand, a.size(), ElemBytes(a), 1);
        },
        {&a});
    auto r = Run(ranked, {&a}, [&](core::Backend& s) {
      return s.SubtractFromScalar(alpha, a);
    });
    Tag(r, last_run_);
    return r;
  }

 private:
  static uint64_t ElemBytes(const DeviceColumn& c) {
    return storage::DataTypeSize(c.type());
  }

  core::Backend& Sub(const std::string& name) const {
    return *subs_.at(name);
  }

  /// Candidates ordered by `cost` plus per-candidate boundary charges for
  /// foreign inputs, cheapest first; ties break toward the earlier
  /// candidate, so dispatch is deterministic. Candidates whose circuit
  /// breaker denies traffic are dropped — unless that would drop everyone,
  /// in which case the unfiltered ranking is returned (a fully-open board
  /// should still attempt the cheapest option rather than refuse the call).
  template <typename CostFn>
  std::vector<std::string> Rank(
      CostFn cost, const std::vector<const DeviceColumn*>& inputs) const {
    return RankFrom(Candidates(), [&](const std::string& c) {
      uint64_t t = cost(c);
      for (const DeviceColumn* in : inputs) {
        auto it = provenance_.find(in->raw_data());
        if (it != provenance_.end() && it->second != c) {
          t += est_.BoundaryTransfer(c, in->byte_size());
        }
      }
      return t;
    });
  }

  template <typename CostFn>
  std::vector<std::string> RankFrom(const std::vector<std::string>& pool,
                                    CostFn total_cost) const {
    std::vector<std::pair<uint64_t, size_t>> scored;
    scored.reserve(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      scored.emplace_back(total_cost(pool[i]), i);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<std::string> ranked, allowed;
    ranked.reserve(pool.size());
    for (const auto& [t, i] : scored) {
      (void)t;
      ranked.push_back(pool[i]);
      if (resilience_->Allow(pool[i])) allowed.push_back(pool[i]);
    }
    return allowed.empty() ? ranked : allowed;
  }

  /// Runs `fn` on the ranked candidates with recovery: transient faults
  /// retry on the same candidate (no sleep — operator-level retries are
  /// immediate; backoff lives in the scheduler), OOM reclaims the pool and
  /// retries once, and a candidate that exhausts its budget feeds its
  /// breaker and hands the call to the next-cheapest candidate. The backend
  /// that actually produced the result lands in last_run_ (for provenance
  /// tags). Rethrows the final error when every candidate failed.
  template <typename Fn>
  auto Run(const std::vector<std::string>& ranked,
           const std::vector<const DeviceColumn*>& inputs, Fn fn)
      -> decltype(fn(std::declval<core::Backend&>())) {
    std::exception_ptr last_error;
    for (size_t ci = 0; ci < ranked.size(); ++ci) {
      const std::string& b = ranked[ci];
      if (ci > 0) resilience_->NoteReroute();
      bool reclaimed = false;
      for (int attempt = 1;; ++attempt) {
        try {
          auto result = RunOn(b, inputs, fn);
          resilience_->RecordSuccess(b);
          last_run_ = b;
          return result;
        } catch (...) {
          last_error = std::current_exception();
          const core::ErrorClass cls = core::Classify(last_error);
          resilience_->NoteFaultSeen();
          if (cls == core::ErrorClass::kTransient &&
              attempt < retry_.max_attempts) {
            resilience_->NoteRetry(0);
            continue;
          }
          if (cls == core::ErrorClass::kResource && !reclaimed) {
            stream_.device().TrimPool();
            resilience_->NoteOomReclaim();
            reclaimed = true;
            continue;
          }
          resilience_->RecordFailure(b);
          break;
        }
      }
    }
    std::rethrow_exception(last_error);
  }

  /// One attempt of `fn` on sub-backend `b`: charges boundary copies for
  /// foreign inputs on b's stream, executes, and mirrors b's stream delta
  /// onto the hybrid stream — also on failure, since a faulted attempt's
  /// partial work still consumed device time.
  template <typename Fn>
  auto RunOn(const std::string& b,
             const std::vector<const DeviceColumn*>& inputs, Fn fn)
      -> decltype(fn(std::declval<core::Backend&>())) {
    core::Backend& sub = Sub(b);
    gpusim::Stream& ss = sub.stream();
    const uint64_t t0 = ss.now_ns();
    try {
      for (const DeviceColumn* in : inputs) {
        auto it = provenance_.find(in->raw_data());
        if (it != provenance_.end() && it->second != b) {
          ss.ChargeTransfer(gpusim::Stream::TransferKind::kDeviceToDevice,
                            in->byte_size());
          provenance_[in->raw_data()] = b;  // now materialized on b's side
        }
      }
      auto result = fn(sub);
      stream_.ChargeOverhead(ss.now_ns() - t0);
      return result;
    } catch (...) {
      stream_.ChargeOverhead(ss.now_ns() - t0);
      throw;
    }
  }

  void Tag(const DeviceColumn& col, const std::string& b) {
    if (col.raw_data() != nullptr) provenance_[col.raw_data()] = b;
  }

  core::SelectionResult MultiSelect(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds, bool conjunctive) {
    const size_t n = columns.empty() ? 0 : columns[0]->size();
    uint64_t bytes = 0;
    for (const DeviceColumn* c : columns) bytes += ElemBytes(*c);
    // Ranked without boundary pricing (columns are base-table inputs in
    // every query shape we run; matches the historical dispatch decision).
    const auto ranked = Rank(
        [&](const std::string& c) {
          return est_.Select(c, n, n / 3, bytes, preds.size());
        },
        {});
    auto r = Run(ranked, columns, [&](core::Backend& s) {
      return conjunctive ? s.SelectConjunctive(columns, preds)
                         : s.SelectDisjunctive(columns, preds);
    });
    Tag(r.row_ids, last_run_);
    return r;
  }

  core::JoinResult JoinImpl(const DeviceColumn& left_keys,
                            const DeviceColumn& right_keys,
                            plan::JoinAlgo algo, DbOperator op) {
    // Only capability-matching candidates may run the requested algorithm.
    std::vector<std::string> capable;
    for (const std::string& c : Candidates()) {
      if (Sub(c).Realization(op).level != core::SupportLevel::kNone) {
        capable.push_back(c);
      }
    }
    if (capable.empty()) throw core::UnsupportedOperator(name(), op);
    const size_t nb = left_keys.size(), np = right_keys.size();
    const auto ranked = RankFrom(capable, [&](const std::string& c) {
      uint64_t t = est_.Join(c, algo, nb, np, std::max<size_t>(np / 2, 1));
      for (const DeviceColumn* in : {&left_keys, &right_keys}) {
        auto it = provenance_.find(in->raw_data());
        if (it != provenance_.end() && it->second != c) {
          t += est_.BoundaryTransfer(c, in->byte_size());
        }
      }
      return t;
    });
    auto r = Run(ranked, {&left_keys, &right_keys}, [&](core::Backend& s) {
      return algo == plan::JoinAlgo::kHash
                 ? s.HashJoin(left_keys, right_keys)
                 : s.NestedLoopsJoin(left_keys, right_keys);
    });
    Tag(r.left_rows, last_run_);
    Tag(r.right_rows, last_run_);
    return r;
  }

  /// The candidate the planner would pick for `op` at a nominal workload
  /// (100k rows) — drives the support-matrix / Realization display.
  std::string PreferredFor(DbOperator op) const {
    const size_t n = 100000;
    std::vector<std::string> capable;
    for (const std::string& c : Candidates()) {
      if (Sub(c).Realization(op).level != core::SupportLevel::kNone) {
        capable.push_back(c);
      }
    }
    if (capable.empty()) return Candidates().front();
    std::string best;
    uint64_t best_cost = 0;
    for (const std::string& c : capable) {
      uint64_t t = 0;
      switch (op) {
        case DbOperator::kSelection:
          t = est_.Select(c, n, n / 3, 8, 1);
          break;
        case DbOperator::kConjunction:
        case DbOperator::kDisjunction:
          t = est_.Select(c, n, n / 27, 20, 3);
          break;
        case DbOperator::kNestedLoopsJoin:
          t = est_.Join(c, plan::JoinAlgo::kNestedLoops, 1000, n, n / 2);
          break;
        case DbOperator::kHashJoin:
          t = est_.Join(c, plan::JoinAlgo::kHash, 1000, n, n / 2);
          break;
        case DbOperator::kMergeJoin:
          t = 0;
          break;
        case DbOperator::kGroupedAggregation:
          t = est_.GroupBy(c, n, 128, 8);
          break;
        case DbOperator::kReduction:
          t = est_.Reduce(c, n, 8);
          break;
        case DbOperator::kSortByKey:
          t = est_.SortByKey(c, n, 8, 4);
          break;
        case DbOperator::kSort:
          t = est_.Sort(c, n, 8);
          break;
        case DbOperator::kPrefixSum:
          t = est_.Reduce(c, n, 4);
          break;
        case DbOperator::kScatterGather:
          t = est_.Gather(c, n, 8);
          break;
        case DbOperator::kProduct:
          t = est_.Map(c, n, 8, 2);
          break;
      }
      if (best.empty() || t < best_cost) {
        best = c;
        best_cost = t;
      }
    }
    return best;
  }

  gpusim::Stream stream_;
  plan::CostEstimator est_;
  core::ResilienceManager* resilience_;
  core::RetryPolicy retry_;
  std::string last_run_;  ///< backend that produced the latest Run result
  std::map<std::string, std::unique_ptr<core::Backend>> subs_;
  /// Buffer address -> backend that materialized it. Base-table columns are
  /// absent (shared, no boundary charge).
  std::map<const void*, std::string> provenance_;
};

}  // namespace

std::unique_ptr<core::Backend> CreateHybridBackend() {
  return std::make_unique<HybridBackend>();
}

}  // namespace backends
