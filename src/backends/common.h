// Shared helpers for backend implementations.
#ifndef BACKENDS_COMMON_H_
#define BACKENDS_COMMON_H_

#include <cstdint>

#include "core/backend.h"
#include "storage/device_column.h"

namespace backends {

/// The predicate literal as the column's element type.
template <typename T>
T PredLiteral(const core::Predicate& p) {
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(p.value_f);
  } else {
    return static_cast<T>(p.value_i);
  }
}

/// Evaluates `value <op> literal`.
template <typename T>
inline bool ApplyCompare(core::CompareOp op, T value, T literal) {
  switch (op) {
    case core::CompareOp::kLt: return value < literal;
    case core::CompareOp::kLe: return value <= literal;
    case core::CompareOp::kGt: return value > literal;
    case core::CompareOp::kGe: return value >= literal;
    case core::CompareOp::kEq: return value == literal;
    case core::CompareOp::kNe: return value != literal;
  }
  return false;
}

/// Dispatches the statement block with `T` bound to the element type of a
/// column type. Variadic so commas in the block need no extra parentheses.
#define BACKENDS_DISPATCH(DT, ...)                                           \
  switch (DT) {                                                              \
    case storage::DataType::kInt32: { using T = int32_t; __VA_ARGS__; break; }  \
    case storage::DataType::kInt64: { using T = int64_t; __VA_ARGS__; break; }  \
    case storage::DataType::kFloat64: { using T = double; __VA_ARGS__; break; } \
    case storage::DataType::kFloat32: { using T = float; __VA_ARGS__; break; }  \
  }

}  // namespace backends

#endif  // BACKENDS_COMMON_H_
