// Handwritten-kernel binding of the operator framework: the expert baseline.
//
// Selection (including multi-predicate) runs as ONE fused kernel; grouped
// aggregation and joins use hash tables — the operators Table II shows no
// library supports. This backend is what the paper's "handwritten operator
// implementations" compare against.
#include <array>
#include <functional>
#include <limits>

#include "backends/backends.h"
#include "backends/common.h"
#include "core/backend.h"
#include "gpusim/algorithms.h"
#include "handwritten/handwritten.h"
#include "storage/encoded_column.h"
#include "storage/encoding.h"

namespace backends {
namespace {

using core::AggOp;
using core::CompareOp;
using core::DbOperator;
using core::GroupByResult;
using core::JoinResult;
using core::OperatorRealization;
using core::Predicate;
using core::SelectionResult;
using core::SupportLevel;
using storage::DataType;
using storage::DeviceColumn;

/// POD predicate evaluator usable inside kernels (no virtual dispatch).
struct PredEval {
  DataType type = DataType::kInt32;
  const void* data = nullptr;
  CompareOp op = CompareOp::kLt;
  double lit_f = 0.0;
  int64_t lit_i = 0;

  bool operator()(size_t row) const {
    switch (type) {
      case DataType::kInt32:
        return ApplyCompare(op, static_cast<int64_t>(
                                    static_cast<const int32_t*>(data)[row]),
                            lit_i);
      case DataType::kInt64:
        return ApplyCompare(op, static_cast<const int64_t*>(data)[row], lit_i);
      case DataType::kFloat64:
        return ApplyCompare(op, static_cast<const double*>(data)[row], lit_f);
      case DataType::kFloat32:
        return ApplyCompare(
            op, static_cast<double>(static_cast<const float*>(data)[row]),
            lit_f);
    }
    return false;
  }
};

constexpr size_t kMaxFusedPredicates = 8;

class HandwrittenBackend : public core::Backend {
 public:
  HandwrittenBackend()
      : stream_(gpusim::Device::Current(), gpusim::ApiProfile::Cuda()) {
    stream_.set_label(kHandwritten);
  }

  std::string name() const override { return kHandwritten; }
  gpusim::Stream& stream() override { return stream_; }

  OperatorRealization Realization(DbOperator op) const override {
    switch (op) {
      case DbOperator::kSelection:
        return {SupportLevel::kFull, "fused predicate kernel"};
      case DbOperator::kConjunction:
      case DbOperator::kDisjunction:
        return {SupportLevel::kFull, "fused multi-predicate kernel"};
      case DbOperator::kNestedLoopsJoin:
        return {SupportLevel::kFull, "count+fill kernels"};
      case DbOperator::kMergeJoin:
        return {SupportLevel::kNone, ""};
      case DbOperator::kHashJoin:
        return {SupportLevel::kFull, "open-addressing build/probe kernels"};
      case DbOperator::kGroupedAggregation:
        return {SupportLevel::kFull, "atomic hash aggregation"};
      case DbOperator::kReduction:
        return {SupportLevel::kFull, "tree reduction kernel"};
      case DbOperator::kSortByKey:
      case DbOperator::kSort:
        return {SupportLevel::kFull, "LSD radix sort kernels"};
      case DbOperator::kPrefixSum:
        return {SupportLevel::kFull, "multi-level Blelloch scan"};
      case DbOperator::kScatterGather:
        return {SupportLevel::kFull, "direct kernels"};
      case DbOperator::kProduct:
        return {SupportLevel::kFull, "fused multiply kernel"};
    }
    return {SupportLevel::kNone, ""};
  }

  SelectionResult Select(const DeviceColumn& column,
                         const Predicate& pred) override {
    SelectionResult out;
    out.row_ids = DeviceColumn(DataType::kInt32, column.size(), device());
    size_t count = 0;
    BACKENDS_DISPATCH(column.type(), {
      const T lit = PredLiteral<T>(pred);
      const CompareOp op = pred.op;
      count = handwritten::SelectIndices(
          stream_, column.data<T>(), column.size(),
          reinterpret_cast<uint32_t*>(out.row_ids.data<int32_t>()),
          [=](T v) { return ApplyCompare(op, v, lit); });
    });
    out.count = count;
    out.row_ids = Shrink(out.row_ids, count);
    return out;
  }

  SelectionResult SelectConjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    return SelectFused(columns, preds, /*conjunctive=*/true);
  }

  SelectionResult SelectDisjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    return SelectFused(columns, preds, /*conjunctive=*/false);
  }

  SelectionResult SelectCompareColumns(const DeviceColumn& a, CompareOp op,
                                       const DeviceColumn& b) override {
    const size_t n = a.size();
    SelectionResult out;
    out.row_ids = DeviceColumn(DataType::kInt32, n, device());
    size_t count = 0;
    BACKENDS_DISPATCH(a.type(), {
      const T* pa = a.data<T>();
      const T* pb = b.data<T>();
      gpusim::DeviceArray<uint32_t> counter(1, device());
      gpusim::MemsetDevice(stream_, counter.data(), 0, sizeof(uint32_t));
      gpusim::KernelStats stats;
      stats.name = "hw::select_cmp_cols";
      stats.bytes_read = n * 2 * sizeof(T);
      stats.bytes_written = n * sizeof(uint32_t);
      uint32_t* c = counter.data();
      uint32_t* rows =
          reinterpret_cast<uint32_t*>(out.row_ids.data<int32_t>());
      gpusim::ParallelFor(stream_, n, stats, [=](size_t i) {
        if (ApplyCompare(op, pa[i], pb[i])) {
          rows[gpusim::AtomicAdd(c, uint32_t{1})] = static_cast<uint32_t>(i);
        }
      });
      uint32_t got = 0;
      gpusim::CopyDeviceToHost(stream_, &got, counter.data(),
                               sizeof(uint32_t));
      count = got;
    });
    out.count = count;
    out.row_ids = Shrink(out.row_ids, count);
    return out;
  }

  /// Encoded conjunctive selection as ONE fused kernel over the encoded
  /// payloads (atomic-ticket compaction), mirroring SelectFused: predicates
  /// on packed columns compare codes via core::RewritePredicate, RLE
  /// predicates compare run values. One 4-byte count readback.
  SelectionResult SelectConjunctiveEncoded(
      const std::vector<core::ScanColumnRef>& columns,
      const std::vector<Predicate>& preds) override {
    if (columns.empty() || columns.size() != preds.size()) {
      throw std::invalid_argument(
          "SelectConjunctiveEncoded: bad predicate list");
    }
    const size_t n = columns[0].size();
    std::vector<std::function<bool(size_t)>> matchers;
    matchers.reserve(preds.size());
    uint64_t bytes_per_row_scan = 0;
    for (size_t p = 0; p < preds.size(); ++p) {
      matchers.push_back(core::MakeScanMatcher(columns[p], preds[p]));
      bytes_per_row_scan += core::ScanColumnSeqBytes(columns[p]);
    }

    SelectionResult out;
    out.row_ids = DeviceColumn(DataType::kInt32, n, device());
    gpusim::DeviceArray<uint32_t> counter(1, device());
    gpusim::MemsetDevice(stream_, counter.data(), 0, sizeof(uint32_t));
    gpusim::KernelStats stats;
    stats.name = "hw::select_encoded_fused";
    stats.bytes_read = bytes_per_row_scan;
    stats.bytes_written = n * sizeof(uint32_t);
    stats.ops = n * preds.size();
    uint32_t* c = counter.data();
    uint32_t* rows = reinterpret_cast<uint32_t*>(out.row_ids.data<int32_t>());
    const auto* ms = matchers.data();
    const size_t num_preds = matchers.size();
    gpusim::ParallelFor(stream_, n, stats, [=](size_t i) {
      for (size_t p = 0; p < num_preds; ++p) {
        if (!ms[p](i)) return;
      }
      rows[gpusim::AtomicAdd(c, uint32_t{1})] = static_cast<uint32_t>(i);
    });
    uint32_t count = 0;
    gpusim::CopyDeviceToHost(stream_, &count, counter.data(),
                             sizeof(uint32_t));
    out.count = count;
    out.row_ids = Shrink(out.row_ids, count);
    return out;
  }

  JoinResult NestedLoopsJoin(const DeviceColumn& left_keys,
                             const DeviceColumn& right_keys) override {
    gpusim::DeviceArray<uint32_t> rights, lefts;
    const size_t count = handwritten::NestedLoopsJoin(
        stream_, right_keys.data<int32_t>(), right_keys.size(),
        left_keys.data<int32_t>(), left_keys.size(), &rights, &lefts);
    JoinResult out;
    out.count = count;
    out.left_rows = CopyToColumn(lefts.data(), count);
    out.right_rows = CopyToColumn(rights.data(), count);
    return out;
  }

  JoinResult HashJoin(const DeviceColumn& left_keys,
                      const DeviceColumn& right_keys) override {
    handwritten::HashJoin<int32_t> table(stream_, left_keys.data<int32_t>(),
                                         left_keys.size());
    gpusim::DeviceArray<uint32_t> build_rows(right_keys.size(), device());
    gpusim::DeviceArray<uint32_t> probe_rows(right_keys.size(), device());
    const size_t count =
        table.Probe(right_keys.data<int32_t>(), right_keys.size(),
                    build_rows.data(), probe_rows.data());
    JoinResult out;
    out.count = count;
    out.left_rows = CopyToColumn(build_rows.data(), count);
    out.right_rows = CopyToColumn(probe_rows.data(), count);
    return out;
  }

  GroupByResult GroupByAggregate(const DeviceColumn& keys,
                                 const DeviceColumn& values,
                                 AggOp op) override {
    const int32_t* k = keys.data<int32_t>();
    const size_t n = keys.size();
    GroupByResult out;
    if (op == AggOp::kCount) {
      gpusim::DeviceArray<int64_t> ones(n, device());
      gpusim::Fill(stream_, ones.data(), n, int64_t{1});
      auto grouped = handwritten::HashGroupByReduce(
          stream_, k, ones.data(), n, int64_t{0},
          [](int64_t a, int64_t b) { return a + b; });
      out.num_groups = grouped.num_groups;
      out.keys = CopyToColumn(
          reinterpret_cast<uint32_t*>(grouped.keys.data()), grouped.num_groups);
      DeviceColumn agg(DataType::kInt64, grouped.num_groups, device());
      if (grouped.num_groups > 0) {
        gpusim::CopyDeviceToDevice(stream_, agg.raw_data(),
                                   grouped.sums.data(),
                                   grouped.num_groups * sizeof(int64_t));
      }
      out.aggregate = std::move(agg);
      return out;
    }
    BACKENDS_DISPATCH(values.type(), {
      T identity{};
      if (op == AggOp::kMin) identity = std::numeric_limits<T>::max();
      if (op == AggOp::kMax) identity = std::numeric_limits<T>::lowest();
      const AggOp aop = op;
      auto grouped = handwritten::HashGroupByReduce(
          stream_, k, values.data<T>(), n, identity, [aop](T a, T b) {
            switch (aop) {
              case AggOp::kSum: return static_cast<T>(a + b);
              case AggOp::kMin: return b < a ? b : a;
              case AggOp::kMax: return a < b ? b : a;
              default: return static_cast<T>(a + b);
            }
          });
      out.num_groups = grouped.num_groups;
      out.keys = CopyToColumn(
          reinterpret_cast<uint32_t*>(grouped.keys.data()), grouped.num_groups);
      DeviceColumn agg(DataType::kFloat64, grouped.num_groups, device());
      const T* sums = grouped.sums.data();
      double* aggp = agg.data<double>();
      gpusim::KernelStats stats;
      stats.name = "hw::agg_to_f64";
      stats.bytes_read = grouped.num_groups * sizeof(T);
      stats.bytes_written = grouped.num_groups * sizeof(double);
      gpusim::ParallelFor(stream_, grouped.num_groups, stats, [=](size_t i) {
        aggp[i] = static_cast<double>(sums[i]);
      });
      out.aggregate = std::move(agg);
    });
    return out;
  }

  /// Encoded group keys over a small dense code domain (Q1's dictionary- or
  /// bit-packed l_rfls): ONE combining pass into a domain-sized dense table —
  /// no hash probes, no flag/scan/compact pipeline, and no count readback,
  /// since every code is a group (absent codes come back with identity
  /// aggregates, as the interface allows). Wide or RLE key domains fall back
  /// to the decode-then-hash default.
  GroupByResult GroupByAggregateEncoded(
      const storage::EncodedDeviceColumn& keys,
      const SelectionResult& rows, const DeviceColumn& values,
      AggOp op) override {
    const bool dict = keys.encoding == storage::Encoding::kDictionary;
    const bool packed = keys.encoding == storage::Encoding::kBitPack ||
                        keys.encoding == storage::Encoding::kFor;
    size_t domain = 0;
    if (dict) {
      domain = keys.host_dict_i64.size();
    } else if (packed && keys.bit_width <= 12) {
      domain = size_t{1} << keys.bit_width;
    }
    if (keys.type != DataType::kInt32 || domain == 0 || domain > 4096) {
      return core::Backend::GroupByAggregateEncoded(keys, rows, values, op);
    }

    const size_t n = rows.count;
    const int32_t* row_ids = n > 0 ? rows.row_ids.data<int32_t>() : nullptr;
    const uint64_t* words = keys.words_data();
    const unsigned bits = keys.bit_width;
    const uint64_t key_bytes = (bits + 7) / 8;

    GroupByResult out;
    out.num_groups = domain;

    // Group keys: dictionary entries are already device-resident at the
    // logical type; packed domains materialize reference + code.
    out.keys = DeviceColumn(DataType::kInt32, domain, device());
    if (dict) {
      gpusim::CopyDeviceToDevice(stream_, out.keys.raw_data(),
                                 keys.dict.raw_data(),
                                 domain * sizeof(int32_t));
    } else {
      int32_t* kp = out.keys.data<int32_t>();
      const int64_t reference = keys.reference;
      gpusim::KernelStats kstats;
      kstats.name = "hw::dense_group_keys";
      kstats.bytes_written = domain * sizeof(int32_t);
      gpusim::ParallelFor(stream_, domain, kstats, [=](size_t g) {
        kp[g] = static_cast<int32_t>(reference + static_cast<int64_t>(g));
      });
    }

    if (op == AggOp::kCount) {
      gpusim::DeviceArray<int64_t> sums(domain, device());
      gpusim::Fill(stream_, sums.data(), domain, int64_t{0});
      gpusim::KernelStats stats;
      stats.name = "hw::dense_group_count";
      stats.bytes_read = n * (sizeof(int32_t) + key_bytes);
      stats.bytes_written = n * sizeof(int64_t);
      stats.ops = 2 * n;
      int64_t* sp = sums.data();
      gpusim::ParallelFor(stream_, n, stats, [=](size_t i) {
        const size_t row = static_cast<size_t>(row_ids[i]);
        const uint64_t code = storage::UnpackBit(words, bits, row);
        gpusim::detail::AtomicCombine(
            &sp[code], int64_t{1},
            [](int64_t a, int64_t b) { return a + b; });
      });
      DeviceColumn agg(DataType::kInt64, domain, device());
      gpusim::CopyDeviceToDevice(stream_, agg.raw_data(), sums.data(),
                                 domain * sizeof(int64_t));
      out.aggregate = std::move(agg);
      return out;
    }

    // Sum/min/max accumulate straight into the f64 aggregate layout the
    // hash realization also produces (no separate conversion kernel).
    gpusim::DeviceArray<double> sums(domain, device());
    double identity = 0.0;
    if (op == AggOp::kMin) identity = std::numeric_limits<double>::max();
    if (op == AggOp::kMax) identity = std::numeric_limits<double>::lowest();
    gpusim::Fill(stream_, sums.data(), domain, identity);
    BACKENDS_DISPATCH(values.type(), {
      const T* pv = n > 0 ? values.data<T>() : nullptr;
      const AggOp aop = op;
      gpusim::KernelStats stats;
      stats.name = "hw::dense_group_reduce";
      stats.bytes_read = n * (sizeof(int32_t) + key_bytes + sizeof(T));
      stats.bytes_written = n * sizeof(double);
      stats.ops = 3 * n;
      double* sp = sums.data();
      gpusim::ParallelFor(stream_, n, stats, [=](size_t i) {
        const size_t row = static_cast<size_t>(row_ids[i]);
        const uint64_t code = storage::UnpackBit(words, bits, row);
        const double v = static_cast<double>(pv[i]);
        gpusim::detail::AtomicCombine(&sp[code], v,
                                      [aop](double a, double b) {
                                        switch (aop) {
                                          case AggOp::kMin:
                                            return b < a ? b : a;
                                          case AggOp::kMax:
                                            return a < b ? b : a;
                                          default:
                                            return a + b;
                                        }
                                      });
      });
    });
    DeviceColumn agg(DataType::kFloat64, domain, device());
    gpusim::CopyDeviceToDevice(stream_, agg.raw_data(), sums.data(),
                               domain * sizeof(double));
    out.aggregate = std::move(agg);
    return out;
  }

  double ReduceColumn(const DeviceColumn& values, AggOp op) override {
    if (op == AggOp::kCount) return static_cast<double>(values.size());
    double result = 0.0;
    BACKENDS_DISPATCH(values.type(), {
      const T* data = values.data<T>();
      const size_t n = values.size();
      switch (op) {
        case AggOp::kSum:
          result = static_cast<double>(gpusim::Reduce(
              stream_, data, n, T{},
              [](T a, T b) { return static_cast<T>(a + b); }, "hw::sum"));
          break;
        case AggOp::kMin:
          result = static_cast<double>(gpusim::Reduce(
              stream_, data, n, std::numeric_limits<T>::max(),
              [](T a, T b) { return b < a ? b : a; }, "hw::min"));
          break;
        case AggOp::kMax:
          result = static_cast<double>(gpusim::Reduce(
              stream_, data, n, std::numeric_limits<T>::lowest(),
              [](T a, T b) { return a < b ? b : a; }, "hw::max"));
          break;
        case AggOp::kCount:
          break;  // handled above
      }
    });
    return result;
  }

  DeviceColumn Sort(const DeviceColumn& column) override {
    DeviceColumn out(column.type(), column.size(), device());
    BACKENDS_DISPATCH(column.type(), {
      gpusim::CopyDeviceToDevice(stream_, out.data<T>(), column.data<T>(),
                                 column.size() * sizeof(T));
      gpusim::RadixSortKeys(stream_, out.data<T>(), out.size());
    });
    return out;
  }

  std::pair<DeviceColumn, DeviceColumn> SortByKey(
      const DeviceColumn& keys, const DeviceColumn& values) override {
    DeviceColumn out_keys(keys.type(), keys.size(), device());
    DeviceColumn out_vals(values.type(), values.size(), device());
    BACKENDS_DISPATCH(keys.type(), {
      using K = T;
      gpusim::CopyDeviceToDevice(stream_, out_keys.data<K>(), keys.data<K>(),
                                 keys.size() * sizeof(K));
      BACKENDS_DISPATCH(values.type(), {
        gpusim::CopyDeviceToDevice(stream_, out_vals.data<T>(),
                                   values.data<T>(),
                                   values.size() * sizeof(T));
        gpusim::RadixSortPairs(stream_, out_keys.data<K>(), out_vals.data<T>(),
                               keys.size());
      });
    });
    return {std::move(out_keys), std::move(out_vals)};
  }

  DeviceColumn Unique(const DeviceColumn& column) override {
    DeviceColumn sorted = Sort(column);
    size_t count = 0;
    DeviceColumn tmp(column.type(), column.size(), device());
    BACKENDS_DISPATCH(column.type(), {
      count = gpusim::UniqueSorted(stream_, sorted.data<T>(), sorted.size(),
                                   tmp.data<T>());
    });
    DeviceColumn out(column.type(), count, device());
    if (count > 0) {
      gpusim::CopyDeviceToDevice(stream_, out.raw_data(), tmp.raw_data(),
                                 count * storage::DataTypeSize(column.type()));
    }
    return out;
  }

  DeviceColumn PrefixSum(const DeviceColumn& column) override {
    DeviceColumn out(column.type(), column.size(), device());
    BACKENDS_DISPATCH(column.type(), {
      gpusim::ExclusiveScan(stream_, column.data<T>(), out.data<T>(),
                            column.size(), T{},
                            [](T a, T b) { return static_cast<T>(a + b); });
    });
    return out;
  }

  DeviceColumn Gather(const DeviceColumn& src,
                      const DeviceColumn& indices) override {
    DeviceColumn out(src.type(), indices.size(), device());
    const int32_t* map = indices.data<int32_t>();
    BACKENDS_DISPATCH(src.type(), {
      gpusim::Gather(stream_, map, indices.size(), src.data<T>(),
                     out.data<T>());
    });
    return out;
  }

  DeviceColumn Scatter(const DeviceColumn& src, const DeviceColumn& indices,
                       size_t out_size) override {
    DeviceColumn out(src.type(), out_size, device());
    const int32_t* map = indices.data<int32_t>();
    BACKENDS_DISPATCH(src.type(), {
      gpusim::Fill(stream_, out.data<T>(), out_size, T{});
      gpusim::Scatter(stream_, src.data<T>(), map, src.size(), out.data<T>());
    });
    return out;
  }

  DeviceColumn Product(const DeviceColumn& a, const DeviceColumn& b) override {
    DeviceColumn out(a.type(), a.size(), device());
    BACKENDS_DISPATCH(a.type(), {
      const T* pa = a.data<T>();
      const T* pb = b.data<T>();
      T* po = out.data<T>();
      gpusim::KernelStats stats;
      stats.name = "hw::product";
      stats.bytes_read = a.size() * 2 * sizeof(T);
      stats.bytes_written = a.size() * sizeof(T);
      gpusim::ParallelFor(stream_, a.size(), stats,
                          [=](size_t i) { po[i] = pa[i] * pb[i]; });
    });
    return out;
  }

  DeviceColumn AddScalar(const DeviceColumn& a, double alpha) override {
    return MapScalar(a, alpha, /*subtract_from=*/false);
  }

  DeviceColumn SubtractFromScalar(double alpha,
                                  const DeviceColumn& a) override {
    return MapScalar(a, alpha, /*subtract_from=*/true);
  }

 private:
  gpusim::Device& device() { return stream_.device(); }

  DeviceColumn MapScalar(const DeviceColumn& a, double alpha,
                         bool subtract_from) {
    DeviceColumn out(a.type(), a.size(), device());
    BACKENDS_DISPATCH(a.type(), {
      const T* pa = a.data<T>();
      T* po = out.data<T>();
      const T s = static_cast<T>(alpha);
      gpusim::KernelStats stats;
      stats.name = "hw::map_scalar";
      stats.bytes_read = a.size() * sizeof(T);
      stats.bytes_written = a.size() * sizeof(T);
      gpusim::ParallelFor(stream_, a.size(), stats, [=](size_t i) {
        po[i] = subtract_from ? static_cast<T>(s - pa[i])
                              : static_cast<T>(pa[i] + s);
      });
    });
    return out;
  }

  DeviceColumn CopyToColumn(const uint32_t* data, size_t count) {
    DeviceColumn out(DataType::kInt32, count, device());
    if (count > 0) {
      gpusim::CopyDeviceToDevice(stream_, out.raw_data(), data,
                                 count * sizeof(uint32_t));
    }
    return out;
  }

  DeviceColumn Shrink(const DeviceColumn& column, size_t count) {
    DeviceColumn out(column.type(), count, device());
    if (count > 0) {
      gpusim::CopyDeviceToDevice(
          stream_, out.raw_data(), column.raw_data(),
          count * storage::DataTypeSize(column.type()));
    }
    return out;
  }

  SelectionResult SelectFused(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds, bool conjunctive) {
    if (columns.empty() || columns.size() != preds.size() ||
        columns.size() > kMaxFusedPredicates) {
      throw std::invalid_argument("SelectFused: bad predicate list");
    }
    const size_t n = columns[0]->size();
    std::array<PredEval, kMaxFusedPredicates> evals{};
    uint64_t bytes_per_row = 0;
    for (size_t p = 0; p < preds.size(); ++p) {
      evals[p].type = columns[p]->type();
      evals[p].data = columns[p]->raw_data();
      evals[p].op = preds[p].op;
      evals[p].lit_f = preds[p].value_f;
      evals[p].lit_i = preds[p].value_i;
      bytes_per_row += storage::DataTypeSize(columns[p]->type());
    }
    const size_t num_preds = preds.size();

    SelectionResult out;
    out.row_ids = DeviceColumn(DataType::kInt32, n, device());
    gpusim::DeviceArray<uint32_t> counter(1, device());
    gpusim::MemsetDevice(stream_, counter.data(), 0, sizeof(uint32_t));
    gpusim::KernelStats stats;
    stats.name = "hw::select_multi_fused";
    stats.bytes_read = n * bytes_per_row;
    stats.bytes_written = n * sizeof(uint32_t);
    stats.ops = n * num_preds;
    uint32_t* c = counter.data();
    uint32_t* rows = reinterpret_cast<uint32_t*>(out.row_ids.data<int32_t>());
    gpusim::ParallelFor(stream_, n, stats, [=](size_t i) {
      bool keep = conjunctive;
      for (size_t p = 0; p < num_preds; ++p) {
        const bool hit = evals[p](i);
        if (conjunctive && !hit) {
          keep = false;
          break;
        }
        if (!conjunctive && hit) {
          keep = true;
          break;
        }
      }
      if (keep) {
        const uint32_t slot = gpusim::AtomicAdd(c, uint32_t{1});
        rows[slot] = static_cast<uint32_t>(i);
      }
    });
    uint32_t count = 0;
    gpusim::CopyDeviceToHost(stream_, &count, counter.data(),
                             sizeof(uint32_t));
    out.count = count;
    out.row_ids = Shrink(out.row_ids, count);
    return out;
  }

  gpusim::Stream stream_;
};

}  // namespace

std::unique_ptr<core::Backend> CreateHandwrittenBackend() {
  return std::make_unique<HandwrittenBackend>();
}

}  // namespace backends
