// Factories for the built-in library backends.
#ifndef BACKENDS_BACKENDS_H_
#define BACKENDS_BACKENDS_H_

#include <memory>

#include "core/backend.h"

namespace backends {

/// Thrust binding: eager CUDA-style execution, one kernel per algorithm call.
std::unique_ptr<core::Backend> CreateThrustBackend();

/// Boost.Compute binding: OpenCL-style execution with run-time program
/// compilation. Each instance owns a fresh context (cold program cache).
std::unique_ptr<core::Backend> CreateBoostComputeBackend();

/// ArrayFire binding: lazy arrays with JIT fusion of element-wise chains.
std::unique_ptr<core::Backend> CreateArrayFireBackend();

/// Handwritten binding: fused custom kernels, hash join, hash aggregation.
std::unique_ptr<core::Backend> CreateHandwrittenBackend();

/// Hybrid binding: cost-based per-operator dispatch across the four
/// backends above (the planner's dispatch policy behind the plain Backend
/// interface).
std::unique_ptr<core::Backend> CreateHybridBackend();

/// Canonical registry names.
inline constexpr const char* kThrust = "Thrust";
inline constexpr const char* kBoostCompute = "Boost.Compute";
inline constexpr const char* kArrayFire = "ArrayFire";
inline constexpr const char* kHandwritten = "Handwritten";
inline constexpr const char* kHybrid = "Hybrid";

}  // namespace backends

#endif  // BACKENDS_BACKENDS_H_
