// ArrayFire binding of the operator framework.
//
// Table II realizations:
//   Selection            where(<fused predicate expression>)             (+)
//   Conjunction          setIntersect() over per-predicate where() sets  (+)
//   Disjunction          setUnion()                                      (+)
//   Nested-loops join    no direct operator: host loop of where() calls  (~)
//   Grouped aggregation  sort() + sumByKey()/countByKey()                (+)
//   Reduction            sum<T>()                                        (+)
//   Sort / sort-by-key   sort()                                          (+)
//   Prefix sum           scan()/accum()                                  (+)
//   Scatter & gather     lookup() / indexed assignment                   (~)
//   Product              operator*() (JIT-fused)                         (+)
// Hash join and merge join have no ArrayFire realization (Table II "-").
#include <limits>

#include "afsim/afsim.h"
#include "backends/backends.h"
#include "backends/common.h"
#include "core/backend.h"

namespace backends {
namespace {

using core::AggOp;
using core::CompareOp;
using core::DbOperator;
using core::GroupByResult;
using core::JoinResult;
using core::OperatorRealization;
using core::Predicate;
using core::SelectionResult;
using core::SupportLevel;
using storage::DataType;
using storage::DeviceColumn;

afsim::dtype ToAfDtype(DataType t) {
  switch (t) {
    case DataType::kInt32: return afsim::dtype::s32;
    case DataType::kInt64: return afsim::dtype::s64;
    case DataType::kFloat64: return afsim::dtype::f64;
    case DataType::kFloat32: return afsim::dtype::f32;
  }
  return afsim::dtype::f64;
}

DataType ToDataType(afsim::dtype t) {
  switch (t) {
    case afsim::dtype::s32: return DataType::kInt32;
    case afsim::dtype::u32: return DataType::kInt32;  // row ids
    case afsim::dtype::s64: return DataType::kInt64;
    case afsim::dtype::f64: return DataType::kFloat64;
    case afsim::dtype::f32: return DataType::kFloat32;
    default:
      throw std::invalid_argument("ArrayFireBackend: no column type for af " +
                                  std::string(afsim::dtype_name(t)));
  }
}

/// Zero-copy view of a storage column as an af array.
afsim::array Wrap(const DeviceColumn& column) {
  return afsim::from_buffer(column.buffer_ptr(), ToAfDtype(column.type()),
                            column.size());
}

/// Zero-copy view of an evaluated af array as a storage column.
DeviceColumn Unwrap(const afsim::array& a) {
  a.eval();
  return DeviceColumn(ToDataType(a.type()), a.elements(), a.node()->buffer);
}

/// Builds the lazy predicate expression `column <op> literal`.
afsim::array PredicateExpr(const afsim::array& col, const Predicate& pred) {
  const double v = pred.value_f;
  switch (pred.op) {
    case CompareOp::kLt: return col < v;
    case CompareOp::kLe: return col <= v;
    case CompareOp::kGt: return col > v;
    case CompareOp::kGe: return col >= v;
    case CompareOp::kEq: return col == v;
    case CompareOp::kNe: return col != v;
  }
  return col < v;
}

class ArrayFireBackend : public core::Backend {
 public:
  ArrayFireBackend() {
    // afsim funnels all work through one global stream; label it so fault
    // rules can target ArrayFire specifically.
    afsim::default_stream().set_label(kArrayFire);
  }

  std::string name() const override { return kArrayFire; }
  gpusim::Stream& stream() override { return afsim::default_stream(); }

  /// All afsim arrays funnel their lazy-JIT bookkeeping through the library's
  /// one global stream, so two ArrayFire clients on separate host threads
  /// would race on a single timeline.
  bool concurrency_safe() const override { return false; }

  OperatorRealization Realization(DbOperator op) const override {
    switch (op) {
      case DbOperator::kSelection:
        return {SupportLevel::kFull, "where(operator())"};
      case DbOperator::kConjunction:
        return {SupportLevel::kFull, "setIntersect()"};
      case DbOperator::kDisjunction:
        return {SupportLevel::kFull, "setUnion()"};
      case DbOperator::kNestedLoopsJoin:
        return {SupportLevel::kPartial, "where() per outer row"};
      case DbOperator::kMergeJoin:
      case DbOperator::kHashJoin:
        return {SupportLevel::kNone, ""};
      case DbOperator::kGroupedAggregation:
        return {SupportLevel::kFull, "sumByKey(), countByKey()"};
      case DbOperator::kReduction:
        return {SupportLevel::kFull, "sum<T>()"};
      case DbOperator::kSortByKey:
        return {SupportLevel::kFull, "sort()"};
      case DbOperator::kSort:
        return {SupportLevel::kFull, "sort()"};
      case DbOperator::kPrefixSum:
        return {SupportLevel::kFull, "scan()"};
      case DbOperator::kScatterGather:
        return {SupportLevel::kPartial, "lookup(), operator()="};
      case DbOperator::kProduct:
        return {SupportLevel::kFull, "operator*()"};
    }
    return {SupportLevel::kNone, ""};
  }

  SelectionResult Select(const DeviceColumn& column,
                         const Predicate& pred) override {
    // The predicate is one fused JIT kernel inside where().
    afsim::array idx = afsim::where(PredicateExpr(Wrap(column), pred));
    return ToSelection(idx);
  }

  SelectionResult SelectConjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    // Table II: conjunction = setIntersect of per-predicate index sets.
    afsim::array acc = afsim::where(PredicateExpr(Wrap(*columns[0]), preds[0]));
    for (size_t p = 1; p < preds.size(); ++p) {
      afsim::array next =
          afsim::where(PredicateExpr(Wrap(*columns[p]), preds[p]));
      // where() emits ascending unique indices, so the inputs are sets.
      acc = afsim::setIntersect(acc, next, /*is_unique=*/true);
    }
    return ToSelection(acc);
  }

  SelectionResult SelectDisjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    afsim::array acc = afsim::where(PredicateExpr(Wrap(*columns[0]), preds[0]));
    for (size_t p = 1; p < preds.size(); ++p) {
      afsim::array next =
          afsim::where(PredicateExpr(Wrap(*columns[p]), preds[p]));
      acc = afsim::setUnion(acc, next, /*is_unique=*/true);
    }
    return ToSelection(acc);
  }

  SelectionResult SelectCompareColumns(const DeviceColumn& a, CompareOp op,
                                       const DeviceColumn& b) override {
    afsim::array lhs = Wrap(a);
    afsim::array rhs = Wrap(b);
    afsim::array mask;
    switch (op) {
      case CompareOp::kLt: mask = lhs < rhs; break;
      case CompareOp::kLe: mask = lhs <= rhs; break;
      case CompareOp::kGt: mask = lhs > rhs; break;
      case CompareOp::kGe: mask = lhs >= rhs; break;
      case CompareOp::kEq: mask = lhs == rhs; break;
      case CompareOp::kNe: mask = lhs != rhs; break;
    }
    return ToSelection(afsim::where(mask));
  }

  JoinResult NestedLoopsJoin(const DeviceColumn& left_keys,
                             const DeviceColumn& right_keys) override {
    // ArrayFire offers no relational join; the ad-hoc realization issues one
    // where(right == key) per build row and assembles pairs on the host —
    // the "partial support" interoperability cost in its rawest form.
    afsim::array right = Wrap(right_keys);
    const std::vector<int32_t> left_host =
        Wrap(left_keys).host<int32_t>();  // one bulk D2H
    std::vector<int32_t> pairs_left;
    std::vector<int32_t> pairs_right;
    for (size_t j = 0; j < left_host.size(); ++j) {
      afsim::array matches =
          afsim::where(right == static_cast<double>(left_host[j]));
      const std::vector<uint32_t> rows = matches.host<uint32_t>();
      for (uint32_t r : rows) {
        pairs_left.push_back(static_cast<int32_t>(j));
        pairs_right.push_back(static_cast<int32_t>(r));
      }
    }
    JoinResult out;
    out.count = pairs_left.size();
    out.left_rows = Unwrap(afsim::from_vector(pairs_left));
    out.right_rows = Unwrap(afsim::from_vector(pairs_right));
    return out;
  }

  GroupByResult GroupByAggregate(const DeviceColumn& keys,
                                 const DeviceColumn& values,
                                 AggOp op) override {
    afsim::array k = Wrap(keys);
    GroupByResult out;
    if (op == AggOp::kCount) {
      afsim::array sorted = afsim::sort(k);
      afsim::array out_keys, out_counts;
      afsim::countByKey(&out_keys, &out_counts, sorted);
      out.num_groups = out_keys.elements();
      out.keys = Unwrap(out_keys);
      out.aggregate = Unwrap(afsim::cast(out_counts, afsim::dtype::s64));
      return out;
    }
    afsim::array v = Wrap(values);
    afsim::array sk, sv;
    afsim::sort(&sk, &sv, k, v);
    afsim::array out_keys, out_vals;
    switch (op) {
      case AggOp::kSum:
        afsim::sumByKey(&out_keys, &out_vals, sk, sv);
        break;
      case AggOp::kMin:
        afsim::minByKey(&out_keys, &out_vals, sk, sv);
        break;
      case AggOp::kMax:
        afsim::maxByKey(&out_keys, &out_vals, sk, sv);
        break;
      case AggOp::kCount:
        break;  // handled above
    }
    out.num_groups = out_keys.elements();
    out.keys = Unwrap(out_keys);
    out.aggregate = Unwrap(afsim::cast(out_vals, afsim::dtype::f64));
    return out;
  }

  double ReduceColumn(const DeviceColumn& values, AggOp op) override {
    if (op == AggOp::kCount) return static_cast<double>(values.size());
    afsim::array a = Wrap(values);
    switch (op) {
      case AggOp::kSum:
        switch (values.type()) {
          case DataType::kInt32: return afsim::sum<int32_t>(a);
          case DataType::kInt64:
            return static_cast<double>(afsim::sum<int64_t>(a));
          case DataType::kFloat64: return afsim::sum<double>(a);
          case DataType::kFloat32: return afsim::sum<float>(a);
        }
        break;
      case AggOp::kMin: return afsim::detail::reduce_min(a);
      case AggOp::kMax: return afsim::detail::reduce_max(a);
      case AggOp::kCount: break;  // handled above
    }
    return 0.0;
  }

  DeviceColumn Sort(const DeviceColumn& column) override {
    return Unwrap(afsim::sort(Wrap(column)));
  }

  std::pair<DeviceColumn, DeviceColumn> SortByKey(
      const DeviceColumn& keys, const DeviceColumn& values) override {
    afsim::array sk, sv;
    afsim::sort(&sk, &sv, Wrap(keys), Wrap(values));
    return {Unwrap(sk), Unwrap(sv)};
  }

  DeviceColumn Unique(const DeviceColumn& column) override {
    return Unwrap(afsim::setUnique(Wrap(column)));
  }

  DeviceColumn PrefixSum(const DeviceColumn& column) override {
    return Unwrap(afsim::scan(Wrap(column), /*inclusive_scan=*/false));
  }

  DeviceColumn Gather(const DeviceColumn& src,
                      const DeviceColumn& indices) override {
    // Indices arrive as kInt32 row ids; view them as s32 for lookup().
    afsim::array idx = afsim::from_buffer(indices.buffer_ptr(),
                                          afsim::dtype::s32, indices.size());
    return Unwrap(afsim::lookup(Wrap(src), idx));
  }

  DeviceColumn Scatter(const DeviceColumn& src, const DeviceColumn& indices,
                       size_t out_size) override {
    afsim::array target =
        afsim::constant(0.0, out_size, ToAfDtype(src.type()));
    target.eval();
    afsim::array idx = afsim::from_buffer(indices.buffer_ptr(),
                                          afsim::dtype::s32, indices.size());
    afsim::assign_indexed(target, idx, Wrap(src));
    return Unwrap(target);
  }

  DeviceColumn Product(const DeviceColumn& a, const DeviceColumn& b) override {
    return Unwrap(Wrap(a) * Wrap(b));
  }

  DeviceColumn AddScalar(const DeviceColumn& a, double alpha) override {
    return Unwrap(Wrap(a) + alpha);
  }

  DeviceColumn SubtractFromScalar(double alpha,
                                  const DeviceColumn& a) override {
    return Unwrap(alpha - Wrap(a));
  }

 protected:
  /// Every encoded-domain kernel is an af JIT node on the global stream;
  /// charge the lazy-graph bookkeeping the library pays per node.
  void EncodedOpPrologue(const char* op, int kernels) override {
    (void)op;
    afsim::default_stream().ChargeOverhead(
        static_cast<uint64_t>(kernels) * afsim::kJitNodeOverheadNs);
  }

 private:
  /// Converts a u32 where()-style index array into a SelectionResult.
  SelectionResult ToSelection(const afsim::array& idx) {
    idx.eval();
    SelectionResult out;
    out.count = idx.elements();
    out.row_ids =
        DeviceColumn(DataType::kInt32, idx.elements(), idx.node()->buffer);
    return out;
  }
};

}  // namespace

std::unique_ptr<core::Backend> CreateArrayFireBackend() {
  return std::make_unique<ArrayFireBackend>();
}

}  // namespace backends
