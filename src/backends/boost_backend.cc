// Boost.Compute binding of the operator framework.
//
// Same operator pipelines as the Thrust binding (Table II maps both to the
// same algorithm names), but executed through bcsim: every algorithm call
// goes to an OpenCL-profile queue, and the first use of each generated
// kernel source pays the run-time program compilation — the overhead
// bench_compile_overhead isolates. Each backend instance owns a fresh
// context, i.e. a cold program cache.
#include <limits>

#include "backends/backends.h"
#include "backends/common.h"
#include "bcsim/bcsim.h"
#include "core/backend.h"
#include "gpusim/atomic_ops.h"

namespace backends {
namespace {

using core::AggOp;
using core::CompareOp;
using core::DbOperator;
using core::GroupByResult;
using core::JoinResult;
using core::OperatorRealization;
using core::Predicate;
using core::SelectionResult;
using core::SupportLevel;
using storage::DataType;
using storage::DeviceColumn;

const char* CmpSuffix(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "lt";
    case CompareOp::kLe: return "le";
    case CompareOp::kGt: return "gt";
    case CompareOp::kGe: return "ge";
    case CompareOp::kEq: return "eq";
    case CompareOp::kNe: return "ne";
  }
  return "?";
}

class BoostComputeBackend : public core::Backend {
 public:
  BoostComputeBackend()
      : ctx_(bcsim::device(gpusim::Device::Current())), queue_(ctx_) {
    queue_.stream().set_label(kBoostCompute);
  }

  std::string name() const override { return kBoostCompute; }
  gpusim::Stream& stream() override { return queue_.stream(); }

  /// The backend's context; exposes the program-cache size for the
  /// compile-overhead experiment.
  const bcsim::context& context() const { return ctx_; }

  OperatorRealization Realization(DbOperator op) const override {
    switch (op) {
      case DbOperator::kSelection:
        return {SupportLevel::kPartial,
                "transform() & exclusive_scan() & gather()"};
      case DbOperator::kConjunction:
        return {SupportLevel::kFull, "bit_and<T>()"};
      case DbOperator::kDisjunction:
        return {SupportLevel::kFull, "bit_or<T>()"};
      case DbOperator::kNestedLoopsJoin:
        return {SupportLevel::kFull, "for_each_n()"};
      case DbOperator::kMergeJoin:
      case DbOperator::kHashJoin:
        return {SupportLevel::kNone, ""};
      case DbOperator::kGroupedAggregation:
        return {SupportLevel::kFull, "reduce_by_key()"};
      case DbOperator::kReduction:
        return {SupportLevel::kFull, "reduce()"};
      case DbOperator::kSortByKey:
        return {SupportLevel::kFull, "sort_by_key()"};
      case DbOperator::kSort:
        return {SupportLevel::kFull, "sort()"};
      case DbOperator::kPrefixSum:
        return {SupportLevel::kFull, "exclusive_scan()"};
      case DbOperator::kScatterGather:
        return {SupportLevel::kFull, "scatter(), gather()"};
      case DbOperator::kProduct:
        return {SupportLevel::kFull, "transform() & multiplies<T>()"};
    }
    return {SupportLevel::kNone, ""};
  }

  SelectionResult Select(const DeviceColumn& column,
                         const Predicate& pred) override {
    const size_t n = column.size();
    gpusim::DeviceArray<uint32_t> flags(n, device());
    PredicateFlags(column, pred, flags.data());
    return FinishSelection(flags.data(), n);
  }

  SelectionResult SelectConjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    return SelectCombined(columns, preds, /*conjunctive=*/true);
  }

  SelectionResult SelectDisjunctive(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) override {
    return SelectCombined(columns, preds, /*conjunctive=*/false);
  }

  SelectionResult SelectCompareColumns(const DeviceColumn& a, CompareOp op,
                                       const DeviceColumn& b) override {
    const size_t n = a.size();
    gpusim::DeviceArray<uint32_t> flags(n, device());
    BACKENDS_DISPATCH(a.type(), {
      auto fn = bcsim::make_function(
          std::string("cmp_cols_") + CmpSuffix(op),
          [op](T x, T y) { return ApplyCompare(op, x, y) ? 1u : 0u; });
      bcsim::transform(a.data<T>(), a.data<T>() + n, b.data<T>(),
                       flags.data(), fn, queue_);
    });
    return FinishSelection(flags.data(), n);
  }

  JoinResult NestedLoopsJoin(const DeviceColumn& left_keys,
                             const DeviceColumn& right_keys) override {
    const size_t nl = left_keys.size();
    const size_t nr = right_keys.size();
    const int32_t* left = left_keys.data<int32_t>();
    const int32_t* right = right_keys.data<int32_t>();

    JoinResult out;
    out.left_rows = DeviceColumn(DataType::kInt32, nr, device());
    out.right_rows = DeviceColumn(DataType::kInt32, nr, device());
    gpusim::DeviceArray<uint32_t> counter(1, device());
    gpusim::MemsetDevice(queue_.stream(), counter.data(), 0,
                         sizeof(uint32_t));

    int32_t* ol = out.left_rows.data<int32_t>();
    int32_t* orr = out.right_rows.data<int32_t>();
    uint32_t* c = counter.data();
    auto probe = bcsim::make_function("nlj_probe_s32", [=](int32_t key_row) {
      const size_t i = static_cast<size_t>(key_row);
      const int32_t key = right[i];
      for (size_t j = 0; j < nl; ++j) {
        if (left[j] == key) {
          const uint32_t t = gpusim::AtomicAdd(c, uint32_t{1});
          ol[t] = static_cast<int32_t>(j);
          orr[t] = static_cast<int32_t>(i);
          break;
        }
      }
    });
    // for_each_n over a counting sequence of probe row ids. Charge the
    // nested scan's traffic explicitly (the functor reads the build side).
    {
      gpusim::KernelStats stats;
      stats.name = "compute::for_each_n(nlj)";
      stats.bytes_read = nr * sizeof(int32_t) +
                         static_cast<uint64_t>(nr) * nl * sizeof(int32_t);
      stats.bytes_written = nr * 2 * sizeof(int32_t);
      stats.ops = static_cast<uint64_t>(nr) * nl;
      queue_.ensure_program("bcsim.for_each.nlj_probe_s32");
      gpusim::ParallelFor(queue_.stream(), nr, stats,
                          [&probe](size_t i) { probe(static_cast<int32_t>(i)); });
    }
    uint32_t count = 0;
    gpusim::CopyDeviceToHost(queue_.stream(), &count, counter.data(),
                             sizeof(uint32_t));
    out.count = count;
    out.left_rows = ShrinkToColumn(out.left_rows.data<int32_t>(), count,
                                   DataType::kInt32);
    out.right_rows = ShrinkToColumn(out.right_rows.data<int32_t>(), count,
                                    DataType::kInt32);
    return out;
  }

  GroupByResult GroupByAggregate(const DeviceColumn& keys,
                                 const DeviceColumn& values,
                                 AggOp op) override {
    const size_t n = keys.size();
    gpusim::DeviceArray<int32_t> work_keys(n, device());
    gpusim::CopyDeviceToDevice(queue_.stream(), work_keys.data(),
                               keys.data<int32_t>(), n * sizeof(int32_t));

    GroupByResult out;
    if (op == AggOp::kCount) {
      gpusim::DeviceArray<int64_t> ones(n, device());
      bcsim::fill(ones.data(), ones.data() + n, int64_t{1}, queue_);
      bcsim::sort_by_key(work_keys.data(), work_keys.data() + n, ones.data(),
                         queue_);
      gpusim::DeviceArray<int32_t> out_keys(n, device());
      gpusim::DeviceArray<int64_t> out_vals(n, device());
      auto ends = bcsim::reduce_by_key(work_keys.data(), work_keys.data() + n,
                                       ones.data(), out_keys.data(),
                                       out_vals.data(),
                                       bcsim::plus<int64_t>(), queue_);
      const size_t groups = static_cast<size_t>(ends.first - out_keys.data());
      out.num_groups = groups;
      out.keys = ShrinkToColumn(out_keys.data(), groups, DataType::kInt32);
      out.aggregate = ShrinkToColumn(out_vals.data(), groups, DataType::kInt64);
      return out;
    }

    BACKENDS_DISPATCH(values.type(), {
      gpusim::DeviceArray<T> work_vals(n, device());
      gpusim::CopyDeviceToDevice(queue_.stream(), work_vals.data(),
                                 values.data<T>(), n * sizeof(T));
      bcsim::sort_by_key(work_keys.data(), work_keys.data() + n,
                         work_vals.data(), queue_);
      gpusim::DeviceArray<int32_t> out_keys(n, device());
      gpusim::DeviceArray<T> out_vals(n, device());
      std::pair<int32_t*, T*> ends{out_keys.data(), out_vals.data()};
      switch (op) {
        case AggOp::kSum:
          ends = bcsim::reduce_by_key(work_keys.data(), work_keys.data() + n,
                                      work_vals.data(), out_keys.data(),
                                      out_vals.data(), bcsim::plus<T>(),
                                      queue_);
          break;
        case AggOp::kMin:
          ends = bcsim::reduce_by_key(work_keys.data(), work_keys.data() + n,
                                      work_vals.data(), out_keys.data(),
                                      out_vals.data(), bcsim::min_op<T>(),
                                      queue_);
          break;
        case AggOp::kMax:
          ends = bcsim::reduce_by_key(work_keys.data(), work_keys.data() + n,
                                      work_vals.data(), out_keys.data(),
                                      out_vals.data(), bcsim::max_op<T>(),
                                      queue_);
          break;
        case AggOp::kCount:
          break;  // handled above
      }
      const size_t groups = static_cast<size_t>(ends.first - out_keys.data());
      out.num_groups = groups;
      out.keys = ShrinkToColumn(out_keys.data(), groups, DataType::kInt32);
      DeviceColumn agg(DataType::kFloat64, groups, device());
      bcsim::transform(out_vals.data(), out_vals.data() + groups,
                       agg.data<double>(),
                       bcsim::make_function(
                           "to_f64", [](T v) { return static_cast<double>(v); }),
                       queue_);
      out.aggregate = std::move(agg);
    });
    return out;
  }

  double ReduceColumn(const DeviceColumn& values, AggOp op) override {
    if (op == AggOp::kCount) return static_cast<double>(values.size());
    double result = 0.0;
    BACKENDS_DISPATCH(values.type(), {
      const T* data = values.data<T>();
      const size_t n = values.size();
      switch (op) {
        case AggOp::kSum:
          result = static_cast<double>(
              bcsim::reduce(data, data + n, T{}, bcsim::plus<T>(), queue_));
          break;
        case AggOp::kMin:
          result = static_cast<double>(
              bcsim::reduce(data, data + n, std::numeric_limits<T>::max(),
                            bcsim::min_op<T>(), queue_));
          break;
        case AggOp::kMax:
          result = static_cast<double>(
              bcsim::reduce(data, data + n, std::numeric_limits<T>::lowest(),
                            bcsim::max_op<T>(), queue_));
          break;
        case AggOp::kCount:
          break;  // handled above
      }
    });
    return result;
  }

  DeviceColumn Sort(const DeviceColumn& column) override {
    DeviceColumn out(column.type(), column.size(), device());
    BACKENDS_DISPATCH(column.type(), {
      gpusim::CopyDeviceToDevice(queue_.stream(), out.data<T>(),
                                 column.data<T>(), column.size() * sizeof(T));
      bcsim::sort(out.data<T>(), out.data<T>() + out.size(), queue_);
    });
    return out;
  }

  std::pair<DeviceColumn, DeviceColumn> SortByKey(
      const DeviceColumn& keys, const DeviceColumn& values) override {
    DeviceColumn out_keys(keys.type(), keys.size(), device());
    DeviceColumn out_vals(values.type(), values.size(), device());
    BACKENDS_DISPATCH(keys.type(), {
      using K = T;
      gpusim::CopyDeviceToDevice(queue_.stream(), out_keys.data<K>(),
                                 keys.data<K>(), keys.size() * sizeof(K));
      BACKENDS_DISPATCH(values.type(), {
        gpusim::CopyDeviceToDevice(queue_.stream(), out_vals.data<T>(),
                                   values.data<T>(),
                                   values.size() * sizeof(T));
        bcsim::sort_by_key(out_keys.data<K>(),
                           out_keys.data<K>() + keys.size(),
                           out_vals.data<T>(), queue_);
      });
    });
    return {std::move(out_keys), std::move(out_vals)};
  }

  DeviceColumn Unique(const DeviceColumn& column) override {
    DeviceColumn sorted = Sort(column);
    size_t count = 0;
    BACKENDS_DISPATCH(column.type(), {
      T* data = sorted.data<T>();
      T* end = bcsim::unique(data, data + sorted.size(), queue_);
      count = static_cast<size_t>(end - data);
    });
    DeviceColumn out(column.type(), count, device());
    if (count > 0) {
      gpusim::CopyDeviceToDevice(queue_.stream(), out.raw_data(),
                                 sorted.raw_data(),
                                 count * storage::DataTypeSize(column.type()));
    }
    return out;
  }

  DeviceColumn PrefixSum(const DeviceColumn& column) override {
    DeviceColumn out(column.type(), column.size(), device());
    BACKENDS_DISPATCH(column.type(), {
      bcsim::exclusive_scan(column.data<T>(),
                            column.data<T>() + column.size(), out.data<T>(),
                            T{}, bcsim::plus<T>(), queue_);
    });
    return out;
  }

  DeviceColumn Gather(const DeviceColumn& src,
                      const DeviceColumn& indices) override {
    DeviceColumn out(src.type(), indices.size(), device());
    const int32_t* map = indices.data<int32_t>();
    BACKENDS_DISPATCH(src.type(), {
      bcsim::gather(map, map + indices.size(), src.data<T>(), out.data<T>(),
                    queue_);
    });
    return out;
  }

  DeviceColumn Scatter(const DeviceColumn& src, const DeviceColumn& indices,
                       size_t out_size) override {
    DeviceColumn out(src.type(), out_size, device());
    const int32_t* map = indices.data<int32_t>();
    BACKENDS_DISPATCH(src.type(), {
      bcsim::fill(out.data<T>(), out.data<T>() + out_size, T{}, queue_);
      bcsim::scatter(src.data<T>(), src.data<T>() + src.size(), map,
                     out.data<T>(), queue_);
    });
    return out;
  }

  DeviceColumn Product(const DeviceColumn& a, const DeviceColumn& b) override {
    DeviceColumn out(a.type(), a.size(), device());
    BACKENDS_DISPATCH(a.type(), {
      bcsim::transform(a.data<T>(), a.data<T>() + a.size(), b.data<T>(),
                       out.data<T>(), bcsim::multiplies<T>(), queue_);
    });
    return out;
  }

  DeviceColumn AddScalar(const DeviceColumn& a, double alpha) override {
    DeviceColumn out(a.type(), a.size(), device());
    BACKENDS_DISPATCH(a.type(), {
      const T s = static_cast<T>(alpha);
      bcsim::transform(a.data<T>(), a.data<T>() + a.size(), out.data<T>(),
                       bcsim::make_function(
                           "add_scalar",
                           [=](T v) { return static_cast<T>(v + s); }),
                       queue_);
    });
    return out;
  }

  DeviceColumn SubtractFromScalar(double alpha,
                                  const DeviceColumn& a) override {
    DeviceColumn out(a.type(), a.size(), device());
    BACKENDS_DISPATCH(a.type(), {
      const T s = static_cast<T>(alpha);
      bcsim::transform(a.data<T>(), a.data<T>() + a.size(), out.data<T>(),
                       bcsim::make_function(
                           "sub_from_scalar",
                           [=](T v) { return static_cast<T>(s - v); }),
                       queue_);
    });
    return out;
  }

 protected:
  /// Each encoded-domain operator is a distinct OpenCL program; the queue's
  /// program cache charges its one-time clBuildProgram before the default
  /// pipeline's kernels run, exactly as the raw operators do.
  void EncodedOpPrologue(const char* op, int kernels) override {
    (void)kernels;
    queue_.ensure_program(std::string("bcsim.encoded.") + op);
  }

 private:
  gpusim::Device& device() { return queue_.get_context().get_device(); }

  template <typename T>
  DeviceColumn ShrinkToColumn(const T* data, size_t count, DataType type) {
    DeviceColumn out(type, count, device());
    if (count > 0) {
      gpusim::CopyDeviceToDevice(queue_.stream(), out.raw_data(), data,
                                 count * sizeof(T));
    }
    return out;
  }

  void PredicateFlags(const DeviceColumn& column, const Predicate& pred,
                      uint32_t* flags) {
    const size_t n = column.size();
    BACKENDS_DISPATCH(column.type(), {
      const T* data = column.data<T>();
      const T lit = PredLiteral<T>(pred);
      const CompareOp op = pred.op;
      auto fn = bcsim::make_function(
          std::string("pred_") + CmpSuffix(op),
          [=](T v) { return ApplyCompare(op, v, lit) ? 1u : 0u; });
      bcsim::transform(data, data + n, flags, fn, queue_);
    });
  }

  SelectionResult FinishSelection(const uint32_t* flags, size_t n) {
    SelectionResult out;
    if (n == 0) {
      out.row_ids = DeviceColumn(DataType::kInt32, 0, device());
      return out;
    }
    gpusim::DeviceArray<uint32_t> positions(n, device());
    bcsim::exclusive_scan(flags, flags + n, positions.data(), uint32_t{0},
                          bcsim::plus<uint32_t>(), queue_);
    uint32_t last_pos = 0, last_flag = 0;
    gpusim::CopyDeviceToHost(queue_.stream(), &last_pos,
                             positions.data() + (n - 1), sizeof(uint32_t));
    gpusim::CopyDeviceToHost(queue_.stream(), &last_flag, flags + (n - 1),
                             sizeof(uint32_t));
    out.count = last_pos + last_flag;
    out.row_ids = DeviceColumn(DataType::kInt32, out.count, device());
    bcsim::scatter_if(bcsim::make_counting_iterator<int32_t>(0),
                      bcsim::make_counting_iterator<int32_t>(
                          static_cast<int32_t>(n)),
                      positions.data(), flags, out.row_ids.data<int32_t>(),
                      queue_);
    return out;
  }

  SelectionResult SelectCombined(
      const std::vector<const DeviceColumn*>& columns,
      const std::vector<Predicate>& preds, bool conjunctive) {
    if (columns.empty() || columns.size() != preds.size()) {
      throw std::invalid_argument("SelectCombined: bad predicate list");
    }
    const size_t n = columns[0]->size();
    gpusim::DeviceArray<uint32_t> acc(n, device());
    PredicateFlags(*columns[0], preds[0], acc.data());
    gpusim::DeviceArray<uint32_t> flags(n, device());
    for (size_t p = 1; p < preds.size(); ++p) {
      PredicateFlags(*columns[p], preds[p], flags.data());
      if (conjunctive) {
        bcsim::transform(acc.data(), acc.data() + n, flags.data(), acc.data(),
                         bcsim::bit_and<uint32_t>(), queue_);
      } else {
        bcsim::transform(acc.data(), acc.data() + n, flags.data(), acc.data(),
                         bcsim::bit_or<uint32_t>(), queue_);
      }
    }
    return FinishSelection(acc.data(), n);
  }

  bcsim::context ctx_;
  bcsim::command_queue queue_;
};

}  // namespace

std::unique_ptr<core::Backend> CreateBoostComputeBackend() {
  return std::make_unique<BoostComputeBackend>();
}

}  // namespace backends
