#include "gpusim/trace.h"

namespace gpusim {
namespace {

/// JSON string escaping for event names (quotes and backslashes only; names
/// are programmatic identifiers).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void Tracer::ExportChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << Escape(e.name) << "\",\"cat\":\"" << e.category
       << "\",\"ph\":\"X\",\"ts\":" << e.start_ns / 1e3
       << ",\"dur\":" << e.duration_ns / 1e3
       << ",\"pid\":1,\"tid\":" << e.stream_id << "}";
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
}

}  // namespace gpusim
