#include "gpusim/device.h"

#include <bit>
#include <cstdlib>
#include <functional>
#include <string>

#include "gpusim/fault.h"

namespace gpusim {

Device::Device(const DeviceProperties& props, unsigned host_threads)
    : cost_model_(props), pool_(host_threads) {}

Device::~Device() {
  TrimPool();
  for (auto& shard : ptr_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [ptr, size] : shard.blocks) {
      (void)size;
      std::free(const_cast<void*>(ptr));
    }
    shard.blocks.clear();
  }
}

Device& Device::Default() {
  static Device* device = new Device();
  return *device;
}

size_t Device::PoolBlockBytes(size_t bytes) {
  if (bytes <= kMinBlockBytes) return kMinBlockBytes;
  if (bytes > kLargeBlockBytes) return bytes;  // exact-size large cache
  return std::bit_ceil(bytes);
}

size_t Device::SizeClassIndex(size_t block_bytes) {
  // block_bytes is a power of two in [kMinBlockBytes, kLargeBlockBytes].
  return static_cast<size_t>(std::countr_zero(block_bytes)) -
         static_cast<size_t>(std::countr_zero(kMinBlockBytes));
}

Device::PtrShard& Device::ShardFor(const void* ptr) const {
  // Mix the address bits; aligned pointers share low zero bits.
  const size_t h = std::hash<const void*>{}(ptr);
  return ptr_shards_[h % kNumPtrShards];
}

void* Device::PopFreeBlock(size_t block_bytes) {
  if (block_bytes > kLargeBlockBytes) {
    std::lock_guard<std::mutex> lock(large_mu_);
    auto it = large_cache_.find(block_bytes);
    if (it == large_cache_.end()) return nullptr;
    void* ptr = it->second;
    large_cache_.erase(it);
    return ptr;
  }
  SizeClass& sc = size_classes_[SizeClassIndex(block_bytes)];
  std::lock_guard<std::mutex> lock(sc.mu);
  if (sc.blocks.empty()) return nullptr;
  void* ptr = sc.blocks.back();
  sc.blocks.pop_back();
  return ptr;
}

void Device::PushFreeBlock(void* ptr, size_t block_bytes) {
  if (block_bytes > kLargeBlockBytes) {
    std::lock_guard<std::mutex> lock(large_mu_);
    large_cache_.emplace(block_bytes, ptr);
    return;
  }
  SizeClass& sc = size_classes_[SizeClassIndex(block_bytes)];
  std::lock_guard<std::mutex> lock(sc.mu);
  sc.blocks.push_back(ptr);
}

void Device::TrimPool() {
  size_t released = 0;
  std::vector<void*> trimmed;
  for (auto& sc : size_classes_) {
    std::lock_guard<std::mutex> lock(sc.mu);
    const size_t block = kMinBlockBytes << (&sc - size_classes_);
    for (void* ptr : sc.blocks) {
      trimmed.push_back(ptr);
      std::free(ptr);
      released += block;
    }
    sc.blocks.clear();
  }
  {
    std::lock_guard<std::mutex> lock(large_mu_);
    for (auto& [size, ptr] : large_cache_) {
      trimmed.push_back(ptr);
      std::free(ptr);
      released += size;
    }
    large_cache_.clear();
  }
  counters_.bytes_pooled.fetch_sub(released, std::memory_order_relaxed);
  // Trimmed addresses went back to the host heap and may be re-issued by
  // malloc; stop remembering them as "freed to pool" so a recycled address
  // isn't misreported as a double free.
  for (void* ptr : trimmed) {
    PtrShard& shard = ShardFor(ptr);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.freed.erase(ptr);
  }
}

void* Device::Allocate(size_t bytes) {
  if (FaultInjector* injector =
          fault_injector_.load(std::memory_order_relaxed)) {
    const FaultKind kind = injector->Check(
        FaultSite::kMalloc, FaultInjector::kDeviceScopeId, std::string());
    if (kind != FaultKind::kNone) {
      if (Tracer* t = tracer()) {
        t->Record(TraceEvent{FaultKindName(kind), "fault", 0, 0,
                             FaultInjector::kDeviceScopeId});
      }
      ThrowFault(kind, FaultSite::kMalloc);
    }
  }

  const size_t requested = bytes == 0 ? 1 : bytes;  // mirrors cudaMalloc(0)
  const size_t block = PoolBlockBytes(requested);

  void* ptr = PopFreeBlock(block);
  const bool pool_hit = ptr != nullptr;
  if (!pool_hit) {
    counters_.pool_misses.fetch_add(1, std::memory_order_relaxed);
    const size_t capacity = properties().global_memory_bytes;
    size_t live = bytes_live_.load(std::memory_order_relaxed);
    if (live + bytes_pooled() + block > capacity) {
      // Cached blocks of the wrong class are still backed by simulated
      // memory; give them back before declaring the device full.
      TrimPool();
      live = bytes_live_.load(std::memory_order_relaxed);
    }
    if (live + block > capacity) {
      throw OutOfDeviceMemory("device allocation of " + std::to_string(bytes) +
                              " bytes (reserving " + std::to_string(block) +
                              ") exceeds simulated global memory (" +
                              std::to_string(live) + " bytes in use)");
    }
    ptr = std::malloc(block);
    if (ptr == nullptr) throw std::bad_alloc();
  }

  // Register the pointer before touching the pooled-bytes gauge: if the
  // table insert throws, the block is re-parked (or released) and every
  // counter still matches the pool's actual contents.
  try {
    PtrShard& shard = ShardFor(ptr);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.blocks.emplace(ptr, block);
    shard.freed.erase(ptr);
  } catch (...) {
    if (pool_hit) {
      PushFreeBlock(ptr, block);  // bytes_pooled was never debited
    } else {
      std::free(ptr);
    }
    throw;
  }
  if (pool_hit) {
    counters_.pool_hits.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_pooled.fetch_sub(block, std::memory_order_relaxed);
  }
  bytes_live_.fetch_add(block, std::memory_order_relaxed);
  counters_.allocations.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_allocated.fetch_add(requested, std::memory_order_relaxed);
  return ptr;
}

void Device::Free(void* ptr) {
  if (ptr == nullptr) return;
  size_t block = 0;
  {
    PtrShard& shard = ShardFor(ptr);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.blocks.find(ptr);
    if (it == shard.blocks.end()) {
      if (shard.freed.count(ptr) != 0) {
        throw std::invalid_argument(
            "Device::Free: double free (pointer already returned to pool)");
      }
      throw std::invalid_argument("Device::Free of unknown pointer");
    }
    block = it->second;
    shard.blocks.erase(it);
    shard.freed.insert(ptr);
  }
  bytes_live_.fetch_sub(block, std::memory_order_relaxed);
  PushFreeBlock(ptr, block);
  counters_.bytes_pooled.fetch_add(block, std::memory_order_relaxed);
}

bool Device::OwnsPointer(const void* ptr) const {
  PtrShard& shard = ShardFor(ptr);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.blocks.count(ptr) > 0;
}

}  // namespace gpusim
