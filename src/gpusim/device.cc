#include "gpusim/device.h"

#include <cstdlib>
#include <string>

namespace gpusim {

Device::Device(const DeviceProperties& props, unsigned host_threads)
    : cost_model_(props), pool_(host_threads) {}

Device::~Device() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  for (auto& [ptr, size] : allocations_) {
    (void)size;
    std::free(const_cast<void*>(ptr));
  }
}

Device& Device::Default() {
  static Device* device = new Device();
  return *device;
}

void* Device::Allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;  // keep pointers unique, mirrors cudaMalloc(0)
  const size_t in_use = bytes_in_use_.load(std::memory_order_relaxed);
  if (in_use + bytes > properties().global_memory_bytes) {
    throw OutOfDeviceMemory("device allocation of " + std::to_string(bytes) +
                            " bytes exceeds simulated global memory (" +
                            std::to_string(in_use) + " bytes in use)");
  }
  void* ptr = std::malloc(bytes);
  if (ptr == nullptr) throw std::bad_alloc();
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    allocations_.emplace(ptr, bytes);
  }
  bytes_in_use_.fetch_add(bytes, std::memory_order_relaxed);
  counters_.allocations.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_allocated.fetch_add(bytes, std::memory_order_relaxed);
  return ptr;
}

void Device::Free(void* ptr) {
  if (ptr == nullptr) return;
  size_t size = 0;
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    auto it = allocations_.find(ptr);
    if (it == allocations_.end()) {
      throw std::invalid_argument("Device::Free of unknown pointer");
    }
    size = it->second;
    allocations_.erase(it);
  }
  bytes_in_use_.fetch_sub(size, std::memory_order_relaxed);
  std::free(ptr);
}

bool Device::OwnsPointer(const void* ptr) const {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  return allocations_.count(ptr) > 0;
}

}  // namespace gpusim
