#include "gpusim/device.h"

#include <bit>
#include <cstdlib>
#include <functional>
#include <string>

#include "gpusim/fault.h"

namespace gpusim {

thread_local std::shared_ptr<Device::Reservation>* Device::tls_reservation_ =
    nullptr;

thread_local Device* Device::tls_current_ = nullptr;

Device::Device(const DeviceProperties& props, unsigned host_threads)
    : cost_model_(props),
      pool_(host_threads),
      capacity_bytes_(props.global_memory_bytes) {}

Device::~Device() {
  TrimPool();
  for (auto& shard : ptr_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [ptr, entry] : shard.blocks) {
      (void)entry;
      std::free(const_cast<void*>(ptr));
    }
    shard.blocks.clear();
  }
}

Device& Device::Default() {
  static Device* device = new Device();
  return *device;
}

Device& Device::Current() {
  return tls_current_ != nullptr ? *tls_current_ : Default();
}

Device::DeviceGuard::DeviceGuard(Device& device) : previous_(tls_current_) {
  tls_current_ = &device;
}

Device::DeviceGuard::~DeviceGuard() { tls_current_ = previous_; }

size_t Device::PoolBlockBytes(size_t bytes) {
  if (bytes <= kMinBlockBytes) return kMinBlockBytes;
  if (bytes > kLargeBlockBytes) return bytes;  // exact-size large cache
  return std::bit_ceil(bytes);
}

size_t Device::SizeClassIndex(size_t block_bytes) {
  // block_bytes is a power of two in [kMinBlockBytes, kLargeBlockBytes].
  return static_cast<size_t>(std::countr_zero(block_bytes)) -
         static_cast<size_t>(std::countr_zero(kMinBlockBytes));
}

Device::PtrShard& Device::ShardFor(const void* ptr) const {
  // Mix the address bits; aligned pointers share low zero bits.
  const size_t h = std::hash<const void*>{}(ptr);
  return ptr_shards_[h % kNumPtrShards];
}

void* Device::PopFreeBlock(size_t block_bytes) {
  if (block_bytes > kLargeBlockBytes) {
    std::lock_guard<std::mutex> lock(large_mu_);
    auto it = large_cache_.find(block_bytes);
    if (it == large_cache_.end()) return nullptr;
    void* ptr = it->second;
    large_cache_.erase(it);
    return ptr;
  }
  SizeClass& sc = size_classes_[SizeClassIndex(block_bytes)];
  std::lock_guard<std::mutex> lock(sc.mu);
  if (sc.blocks.empty()) return nullptr;
  void* ptr = sc.blocks.back();
  sc.blocks.pop_back();
  return ptr;
}

void Device::PushFreeBlock(void* ptr, size_t block_bytes) {
  if (block_bytes > kLargeBlockBytes) {
    std::lock_guard<std::mutex> lock(large_mu_);
    large_cache_.emplace(block_bytes, ptr);
    return;
  }
  SizeClass& sc = size_classes_[SizeClassIndex(block_bytes)];
  std::lock_guard<std::mutex> lock(sc.mu);
  sc.blocks.push_back(ptr);
}

void Device::TrimPool() {
  size_t released = 0;
  std::vector<void*> trimmed;
  for (auto& sc : size_classes_) {
    std::lock_guard<std::mutex> lock(sc.mu);
    const size_t block = kMinBlockBytes << (&sc - size_classes_);
    for (void* ptr : sc.blocks) {
      trimmed.push_back(ptr);
      std::free(ptr);
      released += block;
    }
    sc.blocks.clear();
  }
  {
    std::lock_guard<std::mutex> lock(large_mu_);
    for (auto& [size, ptr] : large_cache_) {
      trimmed.push_back(ptr);
      std::free(ptr);
      released += size;
    }
    large_cache_.clear();
  }
  counters_.bytes_pooled.fetch_sub(released, std::memory_order_relaxed);
  committed_.fetch_sub(released, std::memory_order_relaxed);
  // Trimmed addresses went back to the host heap and may be re-issued by
  // malloc; stop remembering them as "freed to pool" so a recycled address
  // isn't misreported as a double free.
  for (void* ptr : trimmed) {
    PtrShard& shard = ShardFor(ptr);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.freed.erase(ptr);
  }
}

void* Device::Allocate(size_t bytes) {
  if (FaultInjector* injector =
          fault_injector_.load(std::memory_order_relaxed)) {
    const FaultKind kind = injector->Check(
        FaultSite::kMalloc, FaultInjector::kDeviceScopeId, std::string());
    if (kind != FaultKind::kNone) {
      if (Tracer* t = tracer()) {
        t->Record(TraceEvent{FaultKindName(kind), "fault", 0, 0,
                             FaultInjector::kDeviceScopeId});
      }
      ThrowFault(kind, FaultSite::kMalloc);
    }
  }

  const size_t requested = bytes == 0 ? 1 : bytes;  // mirrors cudaMalloc(0)
  const size_t block = PoolBlockBytes(requested);

  void* ptr = PopFreeBlock(block);
  const bool pool_hit = ptr != nullptr;
  std::shared_ptr<Reservation> backing;
  if (!pool_hit) {
    counters_.pool_misses.fetch_add(1, std::memory_order_relaxed);
    // Reservation conversion: a thread bound to a reservation with enough
    // balance turns reserved bytes into live ones — committed is untouched,
    // so an admitted query cannot be beaten to its own memory. The CAS loop
    // loses cleanly against a concurrent ReleaseReservation (remaining
    // drops to 0 and we fall through to the global admission path).
    if (std::shared_ptr<Reservation>* bound = tls_reservation_) {
      Reservation* r = bound->get();
      size_t rem = r->remaining.load(std::memory_order_relaxed);
      while (rem >= block) {
        if (r->remaining.compare_exchange_weak(rem, rem - block,
                                               std::memory_order_relaxed)) {
          backing = *bound;
          counters_.bytes_reserved.fetch_sub(block,
                                             std::memory_order_relaxed);
          break;
        }
      }
    }
    if (backing == nullptr && !TryCommit(block)) {
      // Cached blocks of the wrong class are still backed by simulated
      // memory; give them back before declaring the device full.
      TrimPool();
      if (!TryCommit(block)) {
        throw OutOfDeviceMemory(
            "device allocation of " + std::to_string(bytes) +
            " bytes (reserving " + std::to_string(block) +
            ") exceeds simulated global memory (" +
            std::to_string(committed_bytes()) + " of " +
            std::to_string(memory_capacity()) + " bytes committed)");
      }
    }
    ptr = std::malloc(block);
    if (ptr == nullptr) {
      if (backing != nullptr) {
        backing->remaining.fetch_add(block, std::memory_order_relaxed);
        counters_.bytes_reserved.fetch_add(block, std::memory_order_relaxed);
      } else {
        committed_.fetch_sub(block, std::memory_order_relaxed);
      }
      throw std::bad_alloc();
    }
  }

  // Register the pointer before touching the pooled-bytes gauge: if the
  // table insert throws, the block is re-parked (or released) and every
  // counter still matches the pool's actual contents.
  try {
    PtrShard& shard = ShardFor(ptr);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.blocks.emplace(ptr, PtrEntry{block, backing});
    shard.freed.erase(ptr);
  } catch (...) {
    if (pool_hit) {
      PushFreeBlock(ptr, block);  // bytes_pooled was never debited
    } else {
      std::free(ptr);
      if (backing != nullptr) {
        backing->remaining.fetch_add(block, std::memory_order_relaxed);
        counters_.bytes_reserved.fetch_add(block, std::memory_order_relaxed);
      } else {
        committed_.fetch_sub(block, std::memory_order_relaxed);
      }
    }
    throw;
  }
  if (pool_hit) {
    counters_.pool_hits.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_pooled.fetch_sub(block, std::memory_order_relaxed);
  }
  bytes_live_.fetch_add(block, std::memory_order_relaxed);
  counters_.allocations.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_allocated.fetch_add(requested, std::memory_order_relaxed);
  NotePeak();
  return ptr;
}

void Device::Free(void* ptr) {
  if (ptr == nullptr) return;
  PtrEntry entry;
  {
    PtrShard& shard = ShardFor(ptr);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.blocks.find(ptr);
    if (it == shard.blocks.end()) {
      if (shard.freed.count(ptr) != 0) {
        throw std::invalid_argument(
            "Device::Free: double free (pointer already returned to pool)");
      }
      throw std::invalid_argument("Device::Free of unknown pointer");
    }
    entry = it->second;
    shard.blocks.erase(it);
    // Reservation-backed blocks go straight back to the host heap (below),
    // so — like trimmed blocks — their addresses may be recycled by malloc
    // and must not be remembered as "freed to pool".
    if (entry.backing == nullptr) shard.freed.insert(ptr);
  }
  bytes_live_.fetch_sub(entry.bytes, std::memory_order_relaxed);
  if (entry.backing != nullptr) {
    // Credit the reservation back (live -> reserved, committed unchanged) so
    // an admitted query can cycle alloc/free within its grant; once the
    // reservation is released, the bytes instead leave committed entirely.
    // Parking backed blocks in the pool would double-count them (pooled and
    // reserved at once), so they bypass it.
    bool credited = false;
    {
      std::lock_guard<std::mutex> lock(res_mu_);
      if (entry.backing->active.load(std::memory_order_relaxed)) {
        entry.backing->remaining.fetch_add(entry.bytes,
                                           std::memory_order_relaxed);
        counters_.bytes_reserved.fetch_add(entry.bytes,
                                           std::memory_order_relaxed);
        credited = true;
      }
    }
    if (!credited) committed_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    std::free(ptr);
    return;
  }
  PushFreeBlock(ptr, entry.bytes);
  counters_.bytes_pooled.fetch_add(entry.bytes, std::memory_order_relaxed);
}

bool Device::TryCommit(size_t bytes) {
  const size_t capacity = capacity_bytes_.load(std::memory_order_relaxed);
  size_t cur = committed_.load(std::memory_order_relaxed);
  while (cur + bytes <= capacity) {
    if (committed_.compare_exchange_weak(cur, cur + bytes,
                                         std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void Device::NotePeak() {
  const uint64_t demand =
      bytes_live_.load(std::memory_order_relaxed) +
      counters_.bytes_reserved.load(std::memory_order_relaxed);
  uint64_t peak = counters_.peak_bytes.load(std::memory_order_relaxed);
  while (demand > peak &&
         !counters_.peak_bytes.v.compare_exchange_weak(
             peak, demand, std::memory_order_relaxed)) {
  }
}

bool Device::TryReserve(uint64_t stream_id, size_t bytes) {
  if (bytes == 0) return true;
  if (!TryCommit(bytes)) {
    TrimPool();
    if (!TryCommit(bytes)) return false;
  }
  {
    std::lock_guard<std::mutex> lock(res_mu_);
    std::shared_ptr<Reservation>& slot = reservations_[stream_id];
    if (slot == nullptr) {
      slot = std::make_shared<Reservation>();
      slot->stream_id = stream_id;
    }
    slot->remaining.fetch_add(bytes, std::memory_order_relaxed);
  }
  counters_.bytes_reserved.fetch_add(bytes, std::memory_order_relaxed);
  NotePeak();
  return true;
}

void Device::ReleaseReservation(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(res_mu_);
  auto it = reservations_.find(stream_id);
  if (it == reservations_.end()) return;
  std::shared_ptr<Reservation> res = it->second;
  reservations_.erase(it);
  res->active.store(false, std::memory_order_relaxed);
  const size_t rem = res->remaining.exchange(0, std::memory_order_relaxed);
  counters_.bytes_reserved.fetch_sub(rem, std::memory_order_relaxed);
  committed_.fetch_sub(rem, std::memory_order_relaxed);
}

size_t Device::ReservationRemaining(uint64_t stream_id) const {
  std::lock_guard<std::mutex> lock(res_mu_);
  auto it = reservations_.find(stream_id);
  return it == reservations_.end()
             ? 0
             : it->second->remaining.load(std::memory_order_relaxed);
}

Device::ReservationScope::ReservationScope(Device& device, uint64_t stream_id)
    : previous_(tls_reservation_) {
  {
    std::lock_guard<std::mutex> lock(device.res_mu_);
    auto it = device.reservations_.find(stream_id);
    if (it != device.reservations_.end()) reservation_ = it->second;
  }
  // A stream without a reservation unbinds the thread rather than
  // inheriting the enclosing scope's (that would charge a different
  // stream's grant).
  tls_reservation_ = reservation_ != nullptr ? &reservation_ : nullptr;
}

Device::ReservationScope::~ReservationScope() { tls_reservation_ = previous_; }

bool Device::OwnsPointer(const void* ptr) const {
  PtrShard& shard = ShardFor(ptr);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.blocks.count(ptr) > 0;
}

}  // namespace gpusim
