// Work counters maintained by the simulated device.
//
// Every kernel launch, memory transfer, allocation, and (for OpenCL-style
// libraries) program compilation is recorded here. Benchmarks snapshot the
// counters around a measured region and report the difference, which makes
// the measured quantities deterministic and independent of the host CPU.
#ifndef GPUSIM_COUNTERS_H_
#define GPUSIM_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace gpusim {

/// One cache-line-padded atomic counter. The hot counters
/// (kernels_launched, bytes_read, bytes_written, simulated_ns) are bumped on
/// every kernel launch; with concurrent streams on separate host threads,
/// packing them into adjacent words would turn every bump into a
/// false-sharing miss, so each counter owns a full cache line.
struct alignas(64) PaddedCounter {
  uint64_t fetch_add(uint64_t d,
                     std::memory_order o = std::memory_order_relaxed) {
    return v.fetch_add(d, o);
  }
  uint64_t fetch_sub(uint64_t d,
                     std::memory_order o = std::memory_order_relaxed) {
    return v.fetch_sub(d, o);
  }
  uint64_t load(std::memory_order o = std::memory_order_relaxed) const {
    return v.load(o);
  }
  void store(uint64_t x, std::memory_order o = std::memory_order_relaxed) {
    v.store(x, o);
  }

  std::atomic<uint64_t> v{0};
};

static_assert(sizeof(PaddedCounter) == 64,
              "each counter must own a full cache line");

/// Aggregate work counters for a device. All members are monotonically
/// increasing except `bytes_pooled` / `bytes_reserved`, which are gauges of
/// the bytes currently cached by the pooling allocator / held by admission
/// reservations, and `peak_bytes`, a monotone high-water mark of
/// live + reserved demand; use Snapshot() and Delta() to measure a region.
struct Counters {
  PaddedCounter kernels_launched;
  PaddedCounter bytes_read;         ///< device memory read by kernels
  PaddedCounter bytes_written;      ///< device memory written by kernels
  PaddedCounter bytes_h2d;          ///< host -> device transfers
  PaddedCounter bytes_h2d_encoded;  ///< H2D bytes that moved in encoded form
  PaddedCounter bytes_saved_vs_raw; ///< raw bytes minus encoded bytes shipped
  PaddedCounter bytes_d2h;          ///< device -> host transfers
  PaddedCounter bytes_d2d;          ///< device -> device copies
  PaddedCounter bytes_p2p;          ///< exchange bytes over peer links
  PaddedCounter bytes_via_host;     ///< exchange bytes routed through host
  PaddedCounter exchanges;          ///< number of cross-device exchanges
  PaddedCounter transfers;          ///< number of explicit transfers
  PaddedCounter allocations;
  PaddedCounter bytes_allocated;
  PaddedCounter pool_hits;          ///< allocations served from the pool
  PaddedCounter pool_misses;        ///< allocations that hit malloc
  PaddedCounter bytes_pooled;       ///< gauge: bytes cached in the pool
  PaddedCounter bytes_reserved;     ///< gauge: unconverted reservation bytes
  PaddedCounter peak_bytes;         ///< high-water of live + reserved bytes
  PaddedCounter programs_compiled;  ///< OpenCL-style JIT compiles
  PaddedCounter compile_ns;         ///< simulated time spent compiling
  PaddedCounter simulated_ns;       ///< total simulated device time
};

/// Plain-value copy of Counters taken at one instant.
struct CounterSnapshot {
  uint64_t kernels_launched = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_h2d = 0;
  uint64_t bytes_h2d_encoded = 0;
  uint64_t bytes_saved_vs_raw = 0;
  uint64_t bytes_d2h = 0;
  uint64_t bytes_d2d = 0;
  uint64_t bytes_p2p = 0;
  uint64_t bytes_via_host = 0;
  uint64_t exchanges = 0;
  uint64_t transfers = 0;
  uint64_t allocations = 0;
  uint64_t bytes_allocated = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t bytes_pooled = 0;    ///< gauge (see Counters::bytes_pooled)
  uint64_t bytes_reserved = 0;  ///< gauge (see Counters::bytes_reserved)
  uint64_t peak_bytes = 0;      ///< high-water (see Counters::peak_bytes)
  uint64_t programs_compiled = 0;
  uint64_t compile_ns = 0;
  uint64_t simulated_ns = 0;

  static CounterSnapshot Take(const Counters& c) {
    CounterSnapshot s;
    s.kernels_launched = c.kernels_launched.load(std::memory_order_relaxed);
    s.bytes_read = c.bytes_read.load(std::memory_order_relaxed);
    s.bytes_written = c.bytes_written.load(std::memory_order_relaxed);
    s.bytes_h2d = c.bytes_h2d.load(std::memory_order_relaxed);
    s.bytes_h2d_encoded =
        c.bytes_h2d_encoded.load(std::memory_order_relaxed);
    s.bytes_saved_vs_raw =
        c.bytes_saved_vs_raw.load(std::memory_order_relaxed);
    s.bytes_d2h = c.bytes_d2h.load(std::memory_order_relaxed);
    s.bytes_d2d = c.bytes_d2d.load(std::memory_order_relaxed);
    s.bytes_p2p = c.bytes_p2p.load(std::memory_order_relaxed);
    s.bytes_via_host = c.bytes_via_host.load(std::memory_order_relaxed);
    s.exchanges = c.exchanges.load(std::memory_order_relaxed);
    s.transfers = c.transfers.load(std::memory_order_relaxed);
    s.allocations = c.allocations.load(std::memory_order_relaxed);
    s.bytes_allocated = c.bytes_allocated.load(std::memory_order_relaxed);
    s.pool_hits = c.pool_hits.load(std::memory_order_relaxed);
    s.pool_misses = c.pool_misses.load(std::memory_order_relaxed);
    s.bytes_pooled = c.bytes_pooled.load(std::memory_order_relaxed);
    s.bytes_reserved = c.bytes_reserved.load(std::memory_order_relaxed);
    s.peak_bytes = c.peak_bytes.load(std::memory_order_relaxed);
    s.programs_compiled = c.programs_compiled.load(std::memory_order_relaxed);
    s.compile_ns = c.compile_ns.load(std::memory_order_relaxed);
    s.simulated_ns = c.simulated_ns.load(std::memory_order_relaxed);
    return s;
  }

  /// Component-wise difference (*this - earlier).
  CounterSnapshot Delta(const CounterSnapshot& earlier) const {
    CounterSnapshot d;
    d.kernels_launched = kernels_launched - earlier.kernels_launched;
    d.bytes_read = bytes_read - earlier.bytes_read;
    d.bytes_written = bytes_written - earlier.bytes_written;
    d.bytes_h2d = bytes_h2d - earlier.bytes_h2d;
    d.bytes_h2d_encoded = bytes_h2d_encoded - earlier.bytes_h2d_encoded;
    d.bytes_saved_vs_raw = bytes_saved_vs_raw - earlier.bytes_saved_vs_raw;
    d.bytes_d2h = bytes_d2h - earlier.bytes_d2h;
    d.bytes_d2d = bytes_d2d - earlier.bytes_d2d;
    d.bytes_p2p = bytes_p2p - earlier.bytes_p2p;
    d.bytes_via_host = bytes_via_host - earlier.bytes_via_host;
    d.exchanges = exchanges - earlier.exchanges;
    d.transfers = transfers - earlier.transfers;
    d.allocations = allocations - earlier.allocations;
    d.bytes_allocated = bytes_allocated - earlier.bytes_allocated;
    d.pool_hits = pool_hits - earlier.pool_hits;
    d.pool_misses = pool_misses - earlier.pool_misses;
    // bytes_pooled / bytes_reserved are gauges (can shrink) and peak_bytes
    // is an all-time high-water mark; a wrapped difference would be
    // meaningless, so Delta carries the later snapshot's value.
    d.bytes_pooled = bytes_pooled;
    d.bytes_reserved = bytes_reserved;
    d.peak_bytes = peak_bytes;
    d.programs_compiled = programs_compiled - earlier.programs_compiled;
    d.compile_ns = compile_ns - earlier.compile_ns;
    d.simulated_ns = simulated_ns - earlier.simulated_ns;
    return d;
  }
};

}  // namespace gpusim

#endif  // GPUSIM_COUNTERS_H_
