#include "gpusim/thread_pool.h"

#include <exception>

namespace gpusim {

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned n = num_threads == 0 ? std::thread::hardware_concurrency() : num_threads;
  if (n == 0) n = 1;
  // The calling thread participates in every job, so spawn n-1 workers.
  for (unsigned i = 1; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::RunChunks(Job* job) {
  while (true) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->num_chunks) break;
    try {
      (*job->body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->error_mu);
      if (!job->error) job->error = std::current_exception();
    }
    job->done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || current_job_ != nullptr; });
      if (shutdown_) return;
      job = current_job_;
    }
    RunChunks(job);
    done_cv_.notify_all();
    // Wait until the job is retired before looking for the next one, so we
    // never run chunks of a stale job pointer.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this, job] { return current_job_ != job || shutdown_; });
  }
}

void ThreadPool::ParallelFor(size_t num_chunks,
                             const std::function<void(size_t)>& body) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1) {
    // Inline fast path (single-core hosts and tiny grids).
    for (size_t i = 0; i < num_chunks; ++i) body(i);
    return;
  }
  Job job;
  job.body = &body;
  job.num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_job_ = &job;
  }
  cv_.notify_all();
  RunChunks(&job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&job] {
      return job.done.load(std::memory_order_acquire) >= job.num_chunks;
    });
    current_job_ = nullptr;
  }
  done_cv_.notify_all();
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace gpusim
