#include "gpusim/thread_pool.h"

#include <algorithm>

namespace gpusim {
namespace {

/// Pause instruction for spin loops (no-op fallback).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Spin budget before a worker parks / a submitter blocks on the tail of a
/// job. Back-to-back kernel launches arrive within this window, so workers
/// normally never touch the condition variable between launches.
constexpr int kSpinIters = 4096;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned n = num_threads == 0 ? std::thread::hardware_concurrency() : num_threads;
  if (n == 0) n = 1;
  num_threads_ = n;
  inline_chunk_threshold_ = PoolInlineChunkThreshold(n);
  // Workers are spawned lazily by the first Dispatch (see SpawnWorkers).
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  s.jobs_dispatched = stats_.jobs_dispatched.load(std::memory_order_relaxed);
  s.jobs_inline = stats_.jobs_inline.load(std::memory_order_relaxed);
  s.jobs_overflow = stats_.jobs_overflow.load(std::memory_order_relaxed);
  s.chunks_caller = stats_.chunks_caller.load(std::memory_order_relaxed);
  s.chunks_worker = stats_.chunks_worker.load(std::memory_order_relaxed);
  s.max_live_jobs = stats_.max_live_jobs.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::SpawnWorkers() {
  // Every submitting thread participates in its own job, so n-1 workers
  // suffice to keep n host threads busy on one big launch.
  workers_.reserve(num_threads_ - 1);
  for (unsigned i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::Slot* ThreadPool::ClaimSlot() {
  const size_t start =
      static_cast<size_t>(claim_hint_.fetch_add(1, std::memory_order_relaxed));
  for (size_t k = 0; k < kNumSlots; ++k) {
    Slot& s = slots_[(start + k) % kNumSlots];
    uint32_t expected = kFree;
    // Acquire pairs with the previous owner's release store of kFree, so the
    // slot's fields are quiescent before they are rewritten.
    if (s.state.compare_exchange_strong(expected, kWriting,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      return &s;
    }
  }
  return nullptr;
}

size_t ThreadPool::RunChunks(Slot& slot) {
  const size_t num_chunks = slot.num_chunks.load(std::memory_order_relaxed);
  size_t ran = 0;
  for (;;) {
    const size_t i = slot.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_chunks) break;
    try {
      slot.body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(slot.error_mu);
      if (!slot.error) slot.error = std::current_exception();
    }
    ++ran;
    // seq_cst pairs with the owner's parked-flag store + done load (Dekker):
    // either this thread sees the owner parked, or the owner sees the final
    // done count before sleeping.
    if (slot.done.fetch_add(1, std::memory_order_seq_cst) + 1 == num_chunks) {
      if (slot.owner_parked.load(std::memory_order_seq_cst)) {
        {
          std::lock_guard<std::mutex> lock(slot.done_mu);
        }
        slot.done_cv.notify_all();
      }
    }
  }
  return ran;
}

void ThreadPool::WorkerLoop(unsigned index) {
  for (;;) {
    if (shutdown_.load(std::memory_order_relaxed)) return;

    if (live_jobs_.load(std::memory_order_acquire) == 0) {
      // Idle: spin briefly, then park until a job is published.
      int spin = 0;
      while (live_jobs_.load(std::memory_order_acquire) == 0) {
        if (shutdown_.load(std::memory_order_relaxed)) return;
        if (++spin >= kSpinIters) {
          std::unique_lock<std::mutex> lock(mu_);
          parked_.fetch_add(1, std::memory_order_seq_cst);
          cv_.wait(lock, [&] {
            return shutdown_.load(std::memory_order_relaxed) ||
                   live_jobs_.load(std::memory_order_seq_cst) > 0;
          });
          parked_.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
        CpuRelax();
      }
      continue;
    }

    // Scan the table and help every live job. Starting at a per-worker
    // offset spreads workers across concurrent jobs instead of having them
    // all pile onto slot 0.
    size_t ran = 0;
    for (size_t k = 0; k < kNumSlots; ++k) {
      Slot& s = slots_[(index + k) % kNumSlots];
      if (s.state.load(std::memory_order_acquire) != kLive) continue;
      if (s.next.load(std::memory_order_relaxed) >=
          s.num_chunks.load(std::memory_order_relaxed)) {
        continue;
      }
      // Membership handshake: register as a visitor, then confirm the job is
      // still live. If the owner retired the slot in between, it is spinning
      // on visitors == 0 and this worker must back out without touching the
      // job fields; if a *new* job was published here meanwhile, helping it
      // is equally correct (all fields are re-read after the check).
      s.visitors.fetch_add(1, std::memory_order_seq_cst);
      if (s.state.load(std::memory_order_seq_cst) == kLive) {
        ran += RunChunks(s);
      }
      s.visitors.fetch_sub(1, std::memory_order_release);
    }
    if (ran > 0) {
      stats_.chunks_worker.fetch_add(ran, std::memory_order_relaxed);
    } else {
      // Live jobs exist but every chunk is claimed (tails draining): yield
      // the core briefly rather than hammering the slot states.
      CpuRelax();
    }
  }
}

void ThreadPool::Dispatch(size_t num_chunks, ChunkFnRef body) {
  std::call_once(spawn_once_, [this] { SpawnWorkers(); });

  Slot* claimed = ClaimSlot();
  if (claimed == nullptr) {
    // Every slot is busy: more submitters than the table holds. Run the grid
    // inline — correct (chunks are independent), and it applies natural
    // backpressure to the over-subscribed submitters.
    stats_.jobs_overflow.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < num_chunks; ++i) body(i);
    return;
  }
  Slot& s = *claimed;
  s.body = body;
  s.num_chunks.store(num_chunks, std::memory_order_relaxed);
  s.next.store(0, std::memory_order_relaxed);
  s.done.store(0, std::memory_order_relaxed);
  s.error = nullptr;
  s.owner_parked.store(false, std::memory_order_relaxed);

  const uint32_t live = live_jobs_.fetch_add(1, std::memory_order_seq_cst) + 1;
  uint64_t hi = stats_.max_live_jobs.v.load(std::memory_order_relaxed);
  while (hi < live && !stats_.max_live_jobs.v.compare_exchange_weak(
                          hi, live, std::memory_order_relaxed)) {
  }
  s.state.store(kLive, std::memory_order_release);  // publish

  // Wake workers only if some are actually parked; spinning workers pick the
  // job up from live_jobs_ without any lock traffic.
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
    }
    cv_.notify_all();
  }

  stats_.jobs_dispatched.fetch_add(1, std::memory_order_relaxed);
  const size_t mine = RunChunks(s);
  stats_.chunks_caller.fetch_add(mine, std::memory_order_relaxed);

  // Wait for workers to drain the tail of the job: spin, then park.
  const auto all_done = [&] {
    return s.done.load(std::memory_order_seq_cst) >= num_chunks;
  };
  if (!all_done()) {
    for (int spin = 0; spin < kSpinIters && !all_done(); ++spin) CpuRelax();
    if (!all_done()) {
      std::unique_lock<std::mutex> lock(s.done_mu);
      s.owner_parked.store(true, std::memory_order_seq_cst);
      s.done_cv.wait(lock, all_done);
      s.owner_parked.store(false, std::memory_order_relaxed);
    }
  }

  // Retire: bar further workers from entering, then wait until none is left
  // inside the slot so its fields (including the stack-owned body) can be
  // reused by the next claimant.
  s.state.store(kDraining, std::memory_order_seq_cst);
  while (s.visitors.load(std::memory_order_seq_cst) != 0) CpuRelax();

  std::exception_ptr error = s.error;
  s.error = nullptr;
  s.body = ChunkFnRef();
  s.state.store(kFree, std::memory_order_release);
  live_jobs_.fetch_sub(1, std::memory_order_release);

  if (error) std::rethrow_exception(error);
}

}  // namespace gpusim
