#include "gpusim/thread_pool.h"

#include <algorithm>
#include <limits>

namespace gpusim {
namespace {

/// Pause instruction for spin loops (no-op fallback).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Spin budget before a worker parks / the caller blocks on the tail of a
/// job. Back-to-back kernel launches arrive within this window, so workers
/// normally never touch the condition variable between launches.
constexpr int kSpinIters = 4096;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned n = num_threads == 0 ? std::thread::hardware_concurrency() : num_threads;
  if (n == 0) n = 1;
  num_threads_ = n;
  // Grids with fewer chunks than this run inline: a rendezvous with the
  // workers costs more than the chunks themselves. With no workers at all,
  // everything is inline.
  inline_chunk_threshold_ =
      n == 1 ? std::numeric_limits<size_t>::max() : std::max<size_t>(1, n / 4);
  // Workers are spawned lazily by the first Dispatch (see SpawnWorkers).
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::SpawnWorkers() {
  // The calling thread participates in every job, so spawn n-1 workers.
  workers_.reserve(num_threads_ - 1);
  for (unsigned i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  workers_spawned_ = true;
}

void ThreadPool::RunChunks() {
  Job& job = job_;
  for (;;) {
    const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.num_chunks) break;
    try {
      job.body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    // seq_cst pairs with the caller's parked-flag store + done load (Dekker):
    // either the worker sees the caller parked, or the caller sees the final
    // done count before sleeping.
    if (job.done.fetch_add(1, std::memory_order_seq_cst) + 1 ==
        job.num_chunks) {
      if (caller_parked_.load(std::memory_order_seq_cst)) {
        {
          std::lock_guard<std::mutex> lock(done_mu_);
        }
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t last = 0;  // sequence of the newest job this worker has retired
  for (;;) {
    // Wait for a job newer than `last`: spin first, then park.
    uint64_t pub = pub_seq_.load(std::memory_order_acquire);
    if (pub == last) {
      for (int spin = 0; spin < kSpinIters && pub == last; ++spin) {
        CpuRelax();
        if (shutdown_.load(std::memory_order_relaxed)) return;
        pub = pub_seq_.load(std::memory_order_acquire);
      }
      if (pub == last) {
        std::unique_lock<std::mutex> lock(mu_);
        parked_.fetch_add(1, std::memory_order_seq_cst);
        cv_.wait(lock, [&] {
          return shutdown_.load(std::memory_order_relaxed) ||
                 pub_seq_.load(std::memory_order_seq_cst) != last;
        });
        parked_.fetch_sub(1, std::memory_order_relaxed);
        continue;  // re-evaluate from the top
      }
    }
    if (shutdown_.load(std::memory_order_relaxed)) return;

    // Register before touching the slot, then confirm the job is still live.
    // The seq_cst handshake with Dispatch's retire sequence (store done_seq_,
    // then read active_) guarantees: if the caller saw active_ == 0 and moved
    // on, this worker sees done_seq_ >= pub and backs out without touching
    // the (possibly being rewritten) slot.
    active_.fetch_add(1, std::memory_order_seq_cst);
    pub = pub_seq_.load(std::memory_order_seq_cst);
    const uint64_t retired = done_seq_.load(std::memory_order_seq_cst);
    if (pub == last || retired >= pub) {
      active_.fetch_sub(1, std::memory_order_release);
      last = std::max(last, retired);
      continue;
    }
    last = pub;
    RunChunks();
    active_.fetch_sub(1, std::memory_order_release);
  }
}

void ThreadPool::Dispatch(size_t num_chunks, ChunkFnRef body) {
  std::lock_guard<std::mutex> launch_lock(launch_mu_);
  if (!workers_spawned_) SpawnWorkers();

  job_.body = body;
  job_.num_chunks = num_chunks;
  job_.next.store(0, std::memory_order_relaxed);
  job_.done.store(0, std::memory_order_relaxed);
  job_.error = nullptr;
  const uint64_t seq = pub_seq_.load(std::memory_order_relaxed) + 1;
  pub_seq_.store(seq, std::memory_order_seq_cst);  // publish

  // Wake workers only if some are actually parked; spinning workers pick the
  // job up from pub_seq_ without any lock traffic.
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
    }
    cv_.notify_all();
  }

  RunChunks();

  // Wait for workers to drain the tail of the job: spin, then park.
  const auto all_done = [&] {
    return job_.done.load(std::memory_order_seq_cst) >= job_.num_chunks;
  };
  if (!all_done()) {
    for (int spin = 0; spin < kSpinIters && !all_done(); ++spin) CpuRelax();
    if (!all_done()) {
      std::unique_lock<std::mutex> lock(done_mu_);
      caller_parked_.store(true, std::memory_order_seq_cst);
      done_cv_.wait(lock, all_done);
      caller_parked_.store(false, std::memory_order_relaxed);
    }
  }

  // Retire the job, then wait until no worker is left inside the slot so it
  // can be rewritten by the next Dispatch.
  done_seq_.store(seq, std::memory_order_seq_cst);
  while (active_.load(std::memory_order_seq_cst) != 0) CpuRelax();

  if (job_.error) {
    std::exception_ptr error = job_.error;
    job_.error = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace gpusim
