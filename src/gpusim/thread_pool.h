// Concurrent work-sharing thread pool executing simulated kernel grids.
//
// The pool maps thread blocks of a launch onto host worker threads. On a
// single-core host it degenerates to inline execution, which is still a
// faithful *functional* simulation; timing comes from the cost model, not
// from wall clock.
//
// Hot-path design (this is the per-simulated-kernel-launch path, so host
// overhead here is what the source paper calls per-call library overhead):
//  * ParallelFor is a template taking any callable; the dispatch path wraps
//    it in a non-owning ChunkFnRef (two raw pointers) instead of a
//    heap-allocating std::function.
//  * Multi-submitter: jobs live in a fixed table of cache-line-aligned
//    slots. Any host thread claims a free slot with one CAS, fills it, and
//    publishes it with a release store — no global launch lock, so
//    concurrent streams dispatch kernels in parallel. If every slot is
//    taken the caller runs its grid inline, which doubles as backpressure.
//  * Workers scan the slot table and help every live job, so a single big
//    launch still fans out across all workers while independent launches
//    from different streams overlap. Between jobs workers spin briefly on
//    the live-job count and only park on the condition variable after the
//    spin budget runs out; a submitter only takes the mutex + notifies when
//    the parked-worker count is nonzero.
//  * Errors are per job: an exception thrown by a chunk body is captured in
//    the job's slot and rethrown on that job's submitting thread only;
//    unrelated concurrent jobs are unaffected.
//  * Grids that are small relative to the worker count run inline on the
//    calling thread, skipping the rendezvous entirely (cutover shared with
//    kernel.h via launch_config.h).
#ifndef GPUSIM_THREAD_POOL_H_
#define GPUSIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "gpusim/launch_config.h"

namespace gpusim {

/// Non-owning, non-allocating reference to a callable taking a chunk index.
/// The referent must outlive every call; ParallelFor blocks until the job is
/// done, so stack lambdas at the call site are safe.
class ChunkFnRef {
 public:
  ChunkFnRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_const_t<F>, ChunkFnRef>>>
  ChunkFnRef(F& f)  // NOLINT: implicit by design, mirrors function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* obj, size_t i) { (*static_cast<F*>(obj))(i); }) {}

  void operator()(size_t i) const { fn_(obj_, i); }

 private:
  void* obj_ = nullptr;
  void (*fn_)(void*, size_t) = nullptr;
};

/// Plain-value snapshot of pool activity (see ThreadPool::stats()).
struct ThreadPoolStats {
  uint64_t jobs_dispatched = 0;  ///< jobs that went through the slot table
  uint64_t jobs_inline = 0;      ///< small grids run on the caller
  uint64_t jobs_overflow = 0;    ///< slot table full -> ran inline
  uint64_t chunks_caller = 0;    ///< chunks executed by submitting threads
  uint64_t chunks_worker = 0;    ///< chunks executed by pool workers
  uint64_t max_live_jobs = 0;    ///< high-water mark of concurrent jobs
};

/// Fixed-size pool executing chunked parallel-for jobs from any number of
/// concurrent submitting threads.
class ThreadPool {
 public:
  /// @param num_threads 0 means hardware concurrency. Worker threads are
  /// spawned lazily on the first dispatched job, so pools that only ever run
  /// small grids never pay thread-creation cost.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(chunk_index) for chunk_index in [0, num_chunks), distributing
  /// chunks across the pool's workers plus the calling thread. Blocks until
  /// all chunks are done. Safe to call from any number of threads
  /// concurrently, including from inside a chunk body (nested dispatch).
  /// Exceptions thrown by the body are rethrown on the calling thread
  /// (first one wins, per job).
  template <typename Body>
  void ParallelFor(size_t num_chunks, Body&& body) {
    if (num_chunks == 0) return;
    if (num_chunks <= inline_chunk_threshold_) {
      // Inline fast path: single-core hosts and grids too small to amortize
      // a worker rendezvous.
      stats_.jobs_inline.fetch_add(1, std::memory_order_relaxed);
      for (size_t i = 0; i < num_chunks; ++i) body(i);
      return;
    }
    ChunkFnRef ref(body);
    Dispatch(num_chunks, ref);
  }

  unsigned num_threads() const { return num_threads_; }

  /// Snapshot of the pool's activity counters (relaxed reads).
  ThreadPoolStats stats() const;

  /// Number of job slots. More concurrent submitters than this fall back to
  /// inline execution of their own grid (counted as jobs_overflow).
  static constexpr size_t kNumSlots = 32;

 private:
  /// Slot lifecycle, all transitions on `state`:
  ///   kFree -(submitter CAS)-> kWriting -(release store)-> kLive
  ///   kLive -(submitter, job complete)-> kDraining -(workers out)-> kFree
  /// Workers enter a slot with the two-step membership handshake
  /// (visitors++, then re-check state seq_cst) so a submitter that observed
  /// visitors == 0 in kDraining can recycle the slot knowing no worker will
  /// touch its fields.
  enum SlotState : uint32_t { kFree = 0, kWriting = 1, kLive = 2, kDraining = 3 };

  struct alignas(64) Slot {
    std::atomic<uint32_t> state{kFree};
    std::atomic<unsigned> visitors{0};  ///< workers inside RunChunks
    ChunkFnRef body;
    /// Atomic because the workers' cheap pre-filter (next >= num_chunks)
    /// reads it outside the visitor handshake, racing benignly with the
    /// next owner's rewrite.
    std::atomic<size_t> num_chunks{0};
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mu;
    /// Submitter parking while workers drain the tail of the job.
    std::atomic<bool> owner_parked{false};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  /// One cache-line-padded relaxed counter (see ThreadPoolStats).
  struct alignas(64) StatCell {
    std::atomic<uint64_t> v{0};
    void fetch_add(uint64_t d, std::memory_order o) { v.fetch_add(d, o); }
    uint64_t load(std::memory_order o) const { return v.load(o); }
  };
  struct StatCells {
    StatCell jobs_dispatched, jobs_inline, jobs_overflow;
    StatCell chunks_caller, chunks_worker, max_live_jobs;
  };

  void Dispatch(size_t num_chunks, ChunkFnRef body);
  Slot* ClaimSlot();
  size_t RunChunks(Slot& slot);
  void WorkerLoop(unsigned index);
  void SpawnWorkers();

  unsigned num_threads_ = 1;
  size_t inline_chunk_threshold_ = 1;
  std::vector<std::thread> workers_;
  std::once_flag spawn_once_;

  Slot slots_[kNumSlots];
  /// Number of published, unretired jobs; the workers' wait condition.
  std::atomic<uint32_t> live_jobs_{0};
  /// Rotating start index for slot claims, spreading submitters over slots.
  std::atomic<uint64_t> claim_hint_{0};
  std::atomic<bool> shutdown_{false};

  // Worker parking. parked_ is only written around waits on cv_.
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<unsigned> parked_{0};

  mutable StatCells stats_;
};

}  // namespace gpusim

#endif  // GPUSIM_THREAD_POOL_H_
