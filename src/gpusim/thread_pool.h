// Minimal work-sharing thread pool used to execute simulated kernel grids.
//
// The pool maps thread blocks of a launch onto host worker threads. On a
// single-core host it degenerates to inline execution, which is still a
// faithful *functional* simulation; timing comes from the cost model, not
// from wall clock.
//
// Hot-path design (this is the per-simulated-kernel-launch path, so host
// overhead here is what the source paper calls per-call library overhead):
//  * ParallelFor is a template taking any callable; the dispatch path wraps
//    it in a non-owning ChunkFnRef (two raw pointers) instead of a
//    heap-allocating std::function.
//  * Job arrival is lock-free: the caller writes the job slot and publishes
//    it with one release increment of a sequence counter. Workers spin
//    briefly on the counter between jobs and only park on the condition
//    variable after the spin budget runs out; the caller in turn only takes
//    the mutex + notifies when the parked-worker count is nonzero.
//  * Grids that are small relative to the worker count run inline on the
//    calling thread, skipping the rendezvous entirely.
#ifndef GPUSIM_THREAD_POOL_H_
#define GPUSIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gpusim {

/// Non-owning, non-allocating reference to a callable taking a chunk index.
/// The referent must outlive every call; ParallelFor blocks until the job is
/// done, so stack lambdas at the call site are safe.
class ChunkFnRef {
 public:
  ChunkFnRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_const_t<F>, ChunkFnRef>>>
  ChunkFnRef(F& f)  // NOLINT: implicit by design, mirrors function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* obj, size_t i) { (*static_cast<F*>(obj))(i); }) {}

  void operator()(size_t i) const { fn_(obj_, i); }

 private:
  void* obj_ = nullptr;
  void (*fn_)(void*, size_t) = nullptr;
};

/// Fixed-size pool executing chunked parallel-for jobs.
class ThreadPool {
 public:
  /// @param num_threads 0 means hardware concurrency. Worker threads are
  /// spawned lazily on the first dispatched job, so pools that only ever run
  /// small grids never pay thread-creation cost.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(chunk_index) for chunk_index in [0, num_chunks), distributing
  /// chunks across the pool's workers plus the calling thread. Blocks until
  /// all chunks are done. Exceptions thrown by the body are rethrown on the
  /// calling thread (first one wins).
  template <typename Body>
  void ParallelFor(size_t num_chunks, Body&& body) {
    if (num_chunks == 0) return;
    if (num_chunks <= inline_chunk_threshold_) {
      // Inline fast path: single-core hosts and grids too small to amortize
      // a worker rendezvous.
      for (size_t i = 0; i < num_chunks; ++i) body(i);
      return;
    }
    ChunkFnRef ref(body);
    Dispatch(num_chunks, ref);
  }

  unsigned num_threads() const { return num_threads_; }

 private:
  /// The one in-flight job. A single slot suffices: Dispatch serializes
  /// callers and does not return until the job is done *and* no worker is
  /// still inside RunChunks, so the slot is quiescent before reuse.
  struct Job {
    ChunkFnRef body;
    size_t num_chunks = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void Dispatch(size_t num_chunks, ChunkFnRef body);
  void RunChunks();
  void WorkerLoop();
  void SpawnWorkers();

  unsigned num_threads_ = 1;
  size_t inline_chunk_threshold_ = 1;
  std::vector<std::thread> workers_;
  bool workers_spawned_ = false;

  Job job_;
  /// Publication counter: incremented (release) once per dispatched job.
  std::atomic<uint64_t> pub_seq_{0};
  /// Retirement counter: set to the job's sequence once all chunks ran.
  /// Paired store/load fences with `active_` form the Dekker handshake that
  /// keeps late-arriving workers out of a retired slot.
  std::atomic<uint64_t> done_seq_{0};
  /// Workers currently inside RunChunks.
  std::atomic<unsigned> active_{0};
  std::atomic<bool> shutdown_{false};

  std::mutex launch_mu_;  ///< serializes concurrent Dispatch callers

  // Worker parking. parked_ is only written under mu_.
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<unsigned> parked_{0};

  // Caller parking while workers drain the tail of a job.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<bool> caller_parked_{false};
};

}  // namespace gpusim

#endif  // GPUSIM_THREAD_POOL_H_
