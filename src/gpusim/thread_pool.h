// Minimal work-sharing thread pool used to execute simulated kernel grids.
//
// The pool maps thread blocks of a launch onto host worker threads. On a
// single-core host it degenerates to inline execution, which is still a
// faithful *functional* simulation; timing comes from the cost model, not
// from wall clock.
#ifndef GPUSIM_THREAD_POOL_H_
#define GPUSIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpusim {

/// Fixed-size pool executing chunked parallel-for jobs.
class ThreadPool {
 public:
  /// @param num_threads 0 means hardware concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(chunk_index) for chunk_index in [0, num_chunks), distributing
  /// chunks across the pool's workers plus the calling thread. Blocks until
  /// all chunks are done. Exceptions thrown by the body are rethrown on the
  /// calling thread (first one wins).
  void ParallelFor(size_t num_chunks, const std::function<void(size_t)>& body);

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

 private:
  struct Job {
    const std::function<void(size_t)>* body = nullptr;
    std::atomic<size_t> next{0};
    size_t num_chunks = 0;
    std::atomic<size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void WorkerLoop();
  static void RunChunks(Job* job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* current_job_ = nullptr;
  bool shutdown_ = false;
};

}  // namespace gpusim

#endif  // GPUSIM_THREAD_POOL_H_
