// Device atomics.
//
// Kernels that build histograms or hash tables use these helpers, which map
// CUDA's atomic intrinsics onto std::atomic_ref so the same kernel code is
// correct when the simulated grid runs on multiple host threads.
#ifndef GPUSIM_ATOMIC_OPS_H_
#define GPUSIM_ATOMIC_OPS_H_

#include <atomic>
#include <cstdint>

namespace gpusim {

/// atomicAdd(address, val): returns the old value.
template <typename T>
inline T AtomicAdd(T* address, T val) {
  return std::atomic_ref<T>(*address).fetch_add(val,
                                                std::memory_order_relaxed);
}

/// Word load of a slot other grid threads may CAS concurrently (hash-table
/// probe loops). On a real GPU any aligned word load is atomic; on host
/// threads the plain read would be a data race, so route it through
/// atomic_ref (free on x86, pairs with AtomicCas's release).
template <typename T>
inline T AtomicLoad(T* address) {
  return std::atomic_ref<T>(*address).load(std::memory_order_acquire);
}

/// atomicCAS(address, compare, val): returns the old value.
template <typename T>
inline T AtomicCas(T* address, T compare, T val) {
  std::atomic_ref<T> ref(*address);
  ref.compare_exchange_strong(compare, val, std::memory_order_acq_rel);
  return compare;  // compare_exchange updates `compare` to the old value
}

/// atomicExch(address, val): returns the old value.
template <typename T>
inline T AtomicExchange(T* address, T val) {
  return std::atomic_ref<T>(*address).exchange(val, std::memory_order_acq_rel);
}

/// atomicMin / atomicMax.
template <typename T>
inline T AtomicMin(T* address, T val) {
  std::atomic_ref<T> ref(*address);
  T old = ref.load(std::memory_order_relaxed);
  while (val < old &&
         !ref.compare_exchange_weak(old, val, std::memory_order_acq_rel)) {
  }
  return old;
}

template <typename T>
inline T AtomicMax(T* address, T val) {
  std::atomic_ref<T> ref(*address);
  T old = ref.load(std::memory_order_relaxed);
  while (old < val &&
         !ref.compare_exchange_weak(old, val, std::memory_order_acq_rel)) {
  }
  return old;
}

}  // namespace gpusim

#endif  // GPUSIM_ATOMIC_OPS_H_
