// Kernel/transfer tracing for the simulated device.
//
// When a Tracer is attached to a Device, every kernel launch, transfer, and
// program compilation is recorded with its simulated start time and
// duration, per stream. Traces export to the Chrome trace-event JSON format
// (chrome://tracing, Perfetto), giving the same operator-timeline view an
// nvprof/nsys capture of the real libraries would.
#ifndef GPUSIM_TRACE_H_
#define GPUSIM_TRACE_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace gpusim {

/// One traced device command.
struct TraceEvent {
  std::string name;
  /// "kernel"|"transfer"|"compile"|"fault", or "memory" for admission /
  /// partition / spill markers (plan/partition.h), which carry zero duration.
  const char* category = "kernel";
  uint64_t start_ns = 0;            ///< stream-relative simulated time
  uint64_t duration_ns = 0;
  uint64_t stream_id = 0;
};

/// Collects TraceEvents; thread-safe.
class Tracer {
 public:
  void Record(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(event));
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  std::vector<TraceEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

  /// Writes the Chrome trace-event JSON array ("traceEvents" format).
  /// Timestamps are microseconds as the format requires.
  void ExportChromeTrace(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace gpusim

#endif  // GPUSIM_TRACE_H_
