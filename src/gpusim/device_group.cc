#include "gpusim/device_group.h"

#include <algorithm>
#include <stdexcept>

#include "gpusim/trace.h"

namespace gpusim {

namespace {
/// Per-hop launch latency of a staged copy through host memory. Matches the
/// CUDA-profile transfer latency so a via-host exchange prices exactly like
/// the two explicit cudaMemcpy calls it stands in for.
constexpr uint64_t kHostHopLatencyNs = 10'000;

/// SplitMix64 finalizer shared by the injector-seed and auto-reset draws.
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

const char* DeviceStateName(DeviceState state) {
  switch (state) {
    case DeviceState::kAlive:
      return "alive";
    case DeviceState::kLost:
      return "lost";
    case DeviceState::kProbing:
      return "probing";
    case DeviceState::kReadmitting:
      return "readmitting";
  }
  return "unknown";
}

const char* LifecycleEventName(LifecycleEvent::Kind kind) {
  switch (kind) {
    case LifecycleEvent::Kind::kLost:
      return "device_lost";
    case LifecycleEvent::Kind::kReset:
      return "device_reset";
    case LifecycleEvent::Kind::kProbeOk:
      return "probe_ok";
    case LifecycleEvent::Kind::kProbeFailed:
      return "probe_failed";
    case LifecycleEvent::Kind::kReadmitted:
      return "device_readmitted";
  }
  return "unknown";
}

DeviceGroup::DeviceGroup(int num_devices, const GroupTopology& topology,
                         const DeviceProperties& props,
                         unsigned host_threads_per_device)
    : topology_(topology) {
  if (num_devices < 1) {
    throw std::invalid_argument("DeviceGroup needs at least one device");
  }
  devices_.reserve(static_cast<size_t>(num_devices));
  state_.reserve(static_cast<size_t>(num_devices));
  injectors_.resize(static_cast<size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    devices_.push_back(
        std::make_unique<Device>(props, host_threads_per_device));
    devices_.back()->set_ordinal(i);
    state_.push_back(std::make_unique<std::atomic<uint8_t>>(
        static_cast<uint8_t>(DeviceState::kAlive)));
  }
  exchanged_.reserve(static_cast<size_t>(num_devices) * num_devices);
  for (int i = 0; i < num_devices * num_devices; ++i) {
    exchanged_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

FaultInjector& DeviceGroup::ArmFaultInjector(int i, uint64_t seed) {
  auto& slot = injectors_[static_cast<size_t>(i)];
  if (slot == nullptr) {
    // Mix the device index into the seed (SplitMix64 finalizer) so sibling
    // devices armed from one base seed draw independent schedules.
    const uint64_t mixed = Mix64(
        seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1));
    slot = std::make_unique<FaultInjector>(mixed);
    device(i).set_fault_injector(slot.get());
  }
  return *slot;
}

void DeviceGroup::Transition(int i, DeviceState next,
                             LifecycleEvent::Kind kind) {
  // Caller holds lifecycle_mu_.
  state_[static_cast<size_t>(i)]->store(static_cast<uint8_t>(next),
                                        std::memory_order_release);
  LifecycleEvent event;
  event.kind = kind;
  event.device = i;
  event.sequence = lifecycle_sequence_++;
  lifecycle_log_.push_back(event);
  // Lifecycle transitions show up on the device's trace in the fault
  // category (zero duration), next to the injected faults that caused them.
  if (Tracer* tracer = device(i).tracer()) {
    tracer->Record(TraceEvent{LifecycleEventName(kind), "fault", 0, 0, 0});
  }
}

void DeviceGroup::MarkLost(int i) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (state(i) == DeviceState::kLost) return;  // idempotent
  Transition(i, DeviceState::kLost, LifecycleEvent::Kind::kLost);
  ++fleet_stats_.losses;
  if (auto_reset_armed_) lost_ticks_[static_cast<size_t>(i)] = 0;
}

bool DeviceGroup::MarkReset(int i) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (state(i) != DeviceState::kLost) return false;
  // The reset brings the context back: clear the injector's sticky loss but
  // keep its rules and per-stream call counts — an at_call kill that already
  // fired stays fired, while probability rules keep drawing.
  if (FaultInjector* inj = device(i).fault_injector()) inj->ClearStickyLoss();
  Transition(i, DeviceState::kProbing, LifecycleEvent::Kind::kReset);
  ++fleet_stats_.resets;
  return true;
}

bool DeviceGroup::Probe(int i) {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (state(i) != DeviceState::kProbing) return false;
    ++fleet_stats_.probes;
  }
  // Charge a real (small, fixed-size) probe kernel on a fresh stream labelled
  // "probe": fault rules see the launch like any other, so a rule scoped to
  // the probe can fail it, and a re-armed DeviceLost sends the device back to
  // Lost — the half-open-probe contract.
  Stream probe_stream(device(i));
  probe_stream.set_label("probe");
  KernelStats probe;
  probe.name = "fleet_probe";
  probe.bytes_read = 1u << 20;
  probe.ops = 1u << 20;
  try {
    probe_stream.ChargeKernel(probe);
  } catch (const DeviceLost&) {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    ++fleet_stats_.probe_failures;
    Transition(i, DeviceState::kLost, LifecycleEvent::Kind::kProbeFailed);
    if (auto_reset_armed_) lost_ticks_[static_cast<size_t>(i)] = 0;
    return false;
  } catch (const std::exception&) {
    // Transient probe failure: stay Probing, retry on a later round.
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    ++fleet_stats_.probe_failures;
    LifecycleEvent event;
    event.kind = LifecycleEvent::Kind::kProbeFailed;
    event.device = i;
    event.sequence = lifecycle_sequence_++;
    lifecycle_log_.push_back(event);
    return false;
  }
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  Transition(i, DeviceState::kReadmitting, LifecycleEvent::Kind::kProbeOk);
  return true;
}

bool DeviceGroup::CompleteReadmission(int i) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (state(i) != DeviceState::kReadmitting) return false;
  Transition(i, DeviceState::kAlive, LifecycleEvent::Kind::kReadmitted);
  ++fleet_stats_.readmissions;
  return true;
}

void DeviceGroup::ArmAutoReset(uint64_t seed, int min_ticks, int max_ticks) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (min_ticks < 1) min_ticks = 1;
  if (max_ticks < min_ticks) max_ticks = min_ticks;
  auto_reset_armed_ = true;
  auto_reset_after_.assign(static_cast<size_t>(size()), 0);
  lost_ticks_.assign(static_cast<size_t>(size()), 0);
  const uint64_t span = static_cast<uint64_t>(max_ticks - min_ticks + 1);
  for (int i = 0; i < size(); ++i) {
    const uint64_t draw = Mix64(
        seed ^ (0xda942042e4dd58b5ULL * (static_cast<uint64_t>(i) + 1)));
    auto_reset_after_[static_cast<size_t>(i)] =
        min_ticks + static_cast<int>(draw % span);
  }
}

std::vector<int> DeviceGroup::TickLostDevices() {
  std::vector<int> reset_now;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!auto_reset_armed_) return reset_now;
    for (int i = 0; i < size(); ++i) {
      if (state(i) != DeviceState::kLost) continue;
      if (++lost_ticks_[static_cast<size_t>(i)] >=
          auto_reset_after_[static_cast<size_t>(i)]) {
        reset_now.push_back(i);
      }
    }
  }
  // MarkReset re-takes the lock per device (it also talks to the injector).
  std::vector<int> reset_ok;
  for (int i : reset_now) {
    if (MarkReset(i)) reset_ok.push_back(i);
  }
  return reset_ok;
}

bool DeviceGroup::IsAlive(int i) const {
  return state(i) == DeviceState::kAlive;
}

std::vector<int> DeviceGroup::AliveDevices() const {
  std::vector<int> alive;
  for (int i = 0; i < size(); ++i) {
    if (IsAlive(i)) alive.push_back(i);
  }
  return alive;
}

int DeviceGroup::AliveCount() const {
  return static_cast<int>(AliveDevices().size());
}

std::vector<int> DeviceGroup::ProbingDevices() const {
  std::vector<int> probing;
  for (int i = 0; i < size(); ++i) {
    if (state(i) == DeviceState::kProbing) probing.push_back(i);
  }
  return probing;
}

FleetStats DeviceGroup::fleet_stats() const {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  return fleet_stats_;
}

std::vector<LifecycleEvent> DeviceGroup::lifecycle_log() const {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  return lifecycle_log_;
}

bool DeviceGroup::IsPeer(int src, int dst) const {
  if (src == dst) return false;
  const int island = std::max(topology_.peer_island_size, 1);
  return src / island == dst / island;
}

LinkPath DeviceGroup::Link(int src, int dst) const {
  LinkPath path;
  if (src == dst) {
    path.same_device = true;
    path.bandwidth_bps = device(src).properties().memory_bandwidth_bps;
    path.hops = 0;
    return path;
  }
  if (IsPeer(src, dst)) {
    path.peer = true;
    path.bandwidth_bps = topology_.p2p_bandwidth_bps;
    path.latency_ns = topology_.p2p_latency_ns;
    path.hops = 1;
    return path;
  }
  // Through host: store-and-forward over both PCIe links. The effective
  // end-to-end bandwidth is the harmonic combination (each byte crosses
  // both links serially); latency is one hop's worth per link.
  const double src_bw = device(src).properties().pcie_bandwidth_bps;
  const double dst_bw = device(dst).properties().pcie_bandwidth_bps;
  path.bandwidth_bps = 1.0 / (1.0 / src_bw + 1.0 / dst_bw);
  path.latency_ns = 2 * kHostHopLatencyNs;
  path.hops = 2;
  return path;
}

uint64_t DeviceGroup::TransferNs(int src, int dst, uint64_t bytes) const {
  const LinkPath path = Link(src, dst);
  if (path.same_device) {
    // An ordinary on-device copy: read + write through global memory.
    return device(src).cost_model().DeviceCopyTime(bytes, ApiProfile::Cuda());
  }
  const double body = static_cast<double>(bytes) / path.bandwidth_bps * 1e9;
  return path.latency_ns + static_cast<uint64_t>(body);
}

void DeviceGroup::ChargeExchange(int src, Stream& src_stream, int dst,
                                 Stream& dst_stream, uint64_t bytes) {
  if (&src_stream.device() != &device(src) ||
      &dst_stream.device() != &device(dst)) {
    throw std::invalid_argument(
        "ChargeExchange: stream does not belong to the named device");
  }
  if (src == dst) {
    src_stream.ChargeTransfer(Stream::TransferKind::kDeviceToDevice, bytes);
    return;
  }
  // Consult the source device's fault plan BEFORE pricing anything: a faulted
  // exchange leaves both timelines untouched, so a replay charges exactly
  // once. (ChargeOverhead below has no fault hook of its own.)
  if (FaultInjector* inj = device(src).fault_injector()) {
    const FaultKind kind =
        inj->Check(FaultSite::kTransfer, src_stream.id(), src_stream.label());
    if (kind != FaultKind::kNone) ThrowFault(kind, FaultSite::kTransfer);
  }
  const LinkPath path = Link(src, dst);
  const uint64_t t = TransferNs(src, dst, bytes);
  // The sender's queue pays the wire time; the receiver's queue may not run
  // ahead of the data (event sync), but is charged no additional time.
  src_stream.ChargeOverhead(t);
  dst_stream.Wait(src_stream.Record());

  auto& sc = device(src).counters();
  auto& dc = device(dst).counters();
  if (path.peer) {
    sc.bytes_p2p.fetch_add(bytes, std::memory_order_relaxed);
    dc.bytes_p2p.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    sc.bytes_via_host.fetch_add(bytes, std::memory_order_relaxed);
    dc.bytes_via_host.fetch_add(bytes, std::memory_order_relaxed);
  }
  sc.exchanges.fetch_add(1, std::memory_order_relaxed);
  dc.exchanges.fetch_add(1, std::memory_order_relaxed);
  exchanged_[PairIndex(src, dst)]->fetch_add(bytes,
                                             std::memory_order_relaxed);
}

uint64_t DeviceGroup::ExchangedBytes(int src, int dst) const {
  return exchanged_[PairIndex(src, dst)]->load(std::memory_order_relaxed);
}

std::vector<uint64_t> DeviceGroup::PerDevicePeakBytes() const {
  std::vector<uint64_t> peaks;
  peaks.reserve(devices_.size());
  for (const auto& d : devices_) peaks.push_back(d->peak_bytes());
  return peaks;
}

}  // namespace gpusim
