#include "gpusim/device_group.h"

#include <algorithm>
#include <stdexcept>

namespace gpusim {

namespace {
/// Per-hop launch latency of a staged copy through host memory. Matches the
/// CUDA-profile transfer latency so a via-host exchange prices exactly like
/// the two explicit cudaMemcpy calls it stands in for.
constexpr uint64_t kHostHopLatencyNs = 10'000;
}  // namespace

DeviceGroup::DeviceGroup(int num_devices, const GroupTopology& topology,
                         const DeviceProperties& props,
                         unsigned host_threads_per_device)
    : topology_(topology) {
  if (num_devices < 1) {
    throw std::invalid_argument("DeviceGroup needs at least one device");
  }
  devices_.reserve(static_cast<size_t>(num_devices));
  lost_.reserve(static_cast<size_t>(num_devices));
  injectors_.resize(static_cast<size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    devices_.push_back(
        std::make_unique<Device>(props, host_threads_per_device));
    devices_.back()->set_ordinal(i);
    lost_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  exchanged_.reserve(static_cast<size_t>(num_devices) * num_devices);
  for (int i = 0; i < num_devices * num_devices; ++i) {
    exchanged_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

FaultInjector& DeviceGroup::ArmFaultInjector(int i, uint64_t seed) {
  auto& slot = injectors_[static_cast<size_t>(i)];
  if (slot == nullptr) {
    // Mix the device index into the seed (SplitMix64 finalizer) so sibling
    // devices armed from one base seed draw independent schedules.
    uint64_t mixed = seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1);
    mixed = (mixed ^ (mixed >> 30)) * 0xbf58476d1ce4e5b9ULL;
    mixed = (mixed ^ (mixed >> 27)) * 0x94d049bb133111ebULL;
    mixed ^= mixed >> 31;
    slot = std::make_unique<FaultInjector>(mixed);
    device(i).set_fault_injector(slot.get());
  }
  return *slot;
}

void DeviceGroup::MarkLost(int i) {
  lost_[static_cast<size_t>(i)]->store(true, std::memory_order_release);
}

bool DeviceGroup::IsAlive(int i) const {
  return !lost_[static_cast<size_t>(i)]->load(std::memory_order_acquire);
}

std::vector<int> DeviceGroup::AliveDevices() const {
  std::vector<int> alive;
  for (int i = 0; i < size(); ++i) {
    if (IsAlive(i)) alive.push_back(i);
  }
  return alive;
}

int DeviceGroup::AliveCount() const {
  return static_cast<int>(AliveDevices().size());
}

bool DeviceGroup::IsPeer(int src, int dst) const {
  if (src == dst) return false;
  const int island = std::max(topology_.peer_island_size, 1);
  return src / island == dst / island;
}

LinkPath DeviceGroup::Link(int src, int dst) const {
  LinkPath path;
  if (src == dst) {
    path.same_device = true;
    path.bandwidth_bps = device(src).properties().memory_bandwidth_bps;
    path.hops = 0;
    return path;
  }
  if (IsPeer(src, dst)) {
    path.peer = true;
    path.bandwidth_bps = topology_.p2p_bandwidth_bps;
    path.latency_ns = topology_.p2p_latency_ns;
    path.hops = 1;
    return path;
  }
  // Through host: store-and-forward over both PCIe links. The effective
  // end-to-end bandwidth is the harmonic combination (each byte crosses
  // both links serially); latency is one hop's worth per link.
  const double src_bw = device(src).properties().pcie_bandwidth_bps;
  const double dst_bw = device(dst).properties().pcie_bandwidth_bps;
  path.bandwidth_bps = 1.0 / (1.0 / src_bw + 1.0 / dst_bw);
  path.latency_ns = 2 * kHostHopLatencyNs;
  path.hops = 2;
  return path;
}

uint64_t DeviceGroup::TransferNs(int src, int dst, uint64_t bytes) const {
  const LinkPath path = Link(src, dst);
  if (path.same_device) {
    // An ordinary on-device copy: read + write through global memory.
    return device(src).cost_model().DeviceCopyTime(bytes, ApiProfile::Cuda());
  }
  const double body = static_cast<double>(bytes) / path.bandwidth_bps * 1e9;
  return path.latency_ns + static_cast<uint64_t>(body);
}

void DeviceGroup::ChargeExchange(int src, Stream& src_stream, int dst,
                                 Stream& dst_stream, uint64_t bytes) {
  if (&src_stream.device() != &device(src) ||
      &dst_stream.device() != &device(dst)) {
    throw std::invalid_argument(
        "ChargeExchange: stream does not belong to the named device");
  }
  if (src == dst) {
    src_stream.ChargeTransfer(Stream::TransferKind::kDeviceToDevice, bytes);
    return;
  }
  // Consult the source device's fault plan BEFORE pricing anything: a faulted
  // exchange leaves both timelines untouched, so a replay charges exactly
  // once. (ChargeOverhead below has no fault hook of its own.)
  if (FaultInjector* inj = device(src).fault_injector()) {
    const FaultKind kind =
        inj->Check(FaultSite::kTransfer, src_stream.id(), src_stream.label());
    if (kind != FaultKind::kNone) ThrowFault(kind, FaultSite::kTransfer);
  }
  const LinkPath path = Link(src, dst);
  const uint64_t t = TransferNs(src, dst, bytes);
  // The sender's queue pays the wire time; the receiver's queue may not run
  // ahead of the data (event sync), but is charged no additional time.
  src_stream.ChargeOverhead(t);
  dst_stream.Wait(src_stream.Record());

  auto& sc = device(src).counters();
  auto& dc = device(dst).counters();
  if (path.peer) {
    sc.bytes_p2p.fetch_add(bytes, std::memory_order_relaxed);
    dc.bytes_p2p.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    sc.bytes_via_host.fetch_add(bytes, std::memory_order_relaxed);
    dc.bytes_via_host.fetch_add(bytes, std::memory_order_relaxed);
  }
  sc.exchanges.fetch_add(1, std::memory_order_relaxed);
  dc.exchanges.fetch_add(1, std::memory_order_relaxed);
  exchanged_[PairIndex(src, dst)]->fetch_add(bytes,
                                             std::memory_order_relaxed);
}

uint64_t DeviceGroup::ExchangedBytes(int src, int dst) const {
  return exchanged_[PairIndex(src, dst)]->load(std::memory_order_relaxed);
}

std::vector<uint64_t> DeviceGroup::PerDevicePeakBytes() const {
  std::vector<uint64_t> peaks;
  peaks.reserve(devices_.size());
  for (const auto& d : devices_) peaks.push_back(d->peak_bytes());
  return peaks;
}

}  // namespace gpusim
