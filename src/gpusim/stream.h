// Streams and events.
//
// A Stream is an ordered command queue on a Device, tagged with the API
// profile of the library that owns it (CUDA-style or OpenCL-style). Since the
// simulator executes commands synchronously on the host, a stream's job is
// timeline accounting: every launch/transfer/compile advances the stream's
// simulated clock by the cost model's price for that command.
#ifndef GPUSIM_STREAM_H_
#define GPUSIM_STREAM_H_

#include <cstdint>
#include <string>
#include <unordered_set>

#include "gpusim/device.h"
#include "gpusim/fault.h"

namespace gpusim {

/// A point on a stream's simulated timeline.
struct Event {
  uint64_t timestamp_ns = 0;
};

/// Ordered command queue with a simulated clock.
class Stream {
 public:
  explicit Stream(Device& device = Device::Default(),
                  ApiProfile profile = ApiProfile::Cuda())
      : device_(device), profile_(profile), id_(device.NextStreamId()) {}

  /// Unique id of this stream on its device (trace attribution).
  uint64_t id() const { return id_; }

  Device& device() { return device_; }
  const ApiProfile& profile() const { return profile_; }

  /// Free-form owner tag, set by backends to their registry name. Fault
  /// rules scope on it, so one backend's streams can fail while others stay
  /// healthy (see gpusim/fault.h).
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Simulated time elapsed on this stream since construction.
  uint64_t now_ns() const { return timeline_ns_; }

  /// Charges a kernel launch to the stream and device counters.
  void ChargeKernel(const KernelStats& stats) {
    CheckFault(FaultSite::kKernel);
    const uint64_t t = device_.cost_model().KernelTime(stats, profile_);
    Trace(stats.name, "kernel", t);
    Advance(t);
    auto& c = device_.counters();
    c.kernels_launched.fetch_add(1, std::memory_order_relaxed);
    c.bytes_read.fetch_add(stats.bytes_read, std::memory_order_relaxed);
    c.bytes_written.fetch_add(stats.bytes_written, std::memory_order_relaxed);
  }

  /// Charges an explicit host<->device transfer.
  enum class TransferKind { kHostToDevice, kDeviceToHost, kDeviceToDevice };
  void ChargeTransfer(TransferKind kind, uint64_t bytes) {
    CheckFault(FaultSite::kTransfer);
    auto& c = device_.counters();
    uint64_t t = 0;
    switch (kind) {
      case TransferKind::kHostToDevice:
        c.bytes_h2d.fetch_add(bytes, std::memory_order_relaxed);
        t = device_.cost_model().TransferTime(bytes, profile_);
        break;
      case TransferKind::kDeviceToHost:
        c.bytes_d2h.fetch_add(bytes, std::memory_order_relaxed);
        t = device_.cost_model().TransferTime(bytes, profile_);
        break;
      case TransferKind::kDeviceToDevice:
        c.bytes_d2d.fetch_add(bytes, std::memory_order_relaxed);
        t = device_.cost_model().DeviceCopyTime(bytes, profile_);
        break;
    }
    c.transfers.fetch_add(1, std::memory_order_relaxed);
    Trace(kind == TransferKind::kHostToDevice   ? "memcpy_h2d"
          : kind == TransferKind::kDeviceToHost ? "memcpy_d2h"
                                                : "memcpy_d2d",
          "transfer", t);
    Advance(t);
  }

  /// Charges a run-time program compilation (OpenCL-style JIT). The caller
  /// is responsible for caching; every call to this function pays.
  void ChargeProgramCompile() {
    auto& c = device_.counters();
    c.programs_compiled.fetch_add(1, std::memory_order_relaxed);
    c.compile_ns.fetch_add(profile_.program_compile_ns,
                           std::memory_order_relaxed);
    Trace("clBuildProgram", "compile", profile_.program_compile_ns);
    Advance(profile_.program_compile_ns);
  }

  /// Charges host-side API/framework overhead (e.g. lazy-graph bookkeeping).
  void ChargeOverhead(uint64_t ns) { Advance(ns); }

  /// Attributes an H2D transfer that moved `encoded_bytes` on the wire in
  /// place of `raw_bytes` of decoded data. The copy itself is priced by
  /// ChargeTransfer (which already saw only the encoded bytes); this merely
  /// records the encoded traffic and the savings for reporting, so it
  /// advances no simulated time.
  void NoteEncodedTransfer(uint64_t encoded_bytes, uint64_t raw_bytes) {
    auto& c = device_.counters();
    c.bytes_h2d_encoded.fetch_add(encoded_bytes, std::memory_order_relaxed);
    if (raw_bytes > encoded_bytes) {
      c.bytes_saved_vs_raw.fetch_add(raw_bytes - encoded_bytes,
                                     std::memory_order_relaxed);
    }
  }

  /// Records the current position of the stream's timeline.
  Event Record() const { return Event{timeline_ns_}; }

  /// Makes this stream wait for an event (timeline jumps forward if needed).
  void Wait(const Event& e) {
    if (e.timestamp_ns > timeline_ns_) timeline_ns_ = e.timestamp_ns;
  }

  /// Blocks until all queued work completed. Functionally a no-op (the
  /// simulator is synchronous); kept for API fidelity.
  void Synchronize() {}

 private:
  // Fires before the command is priced or charged, so a faulted call leaves
  // the stream's timeline untouched and a replay charges it exactly once.
  // With no injector attached this is one relaxed load and a branch.
  void CheckFault(FaultSite site) {
    FaultInjector* injector = device_.fault_injector();
    if (injector == nullptr) return;
    const FaultKind kind = injector->Check(site, id_, label_);
    if (kind == FaultKind::kNone) return;
    Trace(FaultKindName(kind), "fault", 0);
    ThrowFault(kind, site);
  }

  void Advance(uint64_t ns) {
    timeline_ns_ += ns;
    device_.counters().simulated_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  void Trace(const char* name, const char* category, uint64_t duration_ns) {
    if (Tracer* tracer = device_.tracer()) {
      tracer->Record(TraceEvent{name, category, timeline_ns_, duration_ns,
                                id_});
    }
  }

  Device& device_;
  ApiProfile profile_;
  uint64_t id_ = 0;
  uint64_t timeline_ns_ = 0;
  std::string label_;
};

}  // namespace gpusim

#endif  // GPUSIM_STREAM_H_
