// A group of N simulated devices with a topology-aware transfer model.
//
// Production multi-GPU machines are not flat: devices sit on peer islands
// (NVLink bridges, PCIe switches) where direct peer-to-peer copies run at
// link bandwidth, while cross-island traffic bounces through host memory and
// pays both PCIe hops. DeviceGroup models exactly that: it owns N Device
// instances (each with its own allocator, capacity, counters, and fault
// hook — a single-device group is byte-for-byte the existing Device) plus a
// GroupTopology describing which pairs are peers and what each path costs.
//
// Exchange traffic between devices is charged with ChargeExchange: the
// source stream pays the send, the destination stream synchronizes on its
// completion (Record/Wait) and is then charged nothing extra — matching how
// cudaMemcpyPeerAsync serializes against both streams. Per-pair byte totals
// and per-device p2p/via-host counters feed the multi-device benches.
//
// Fleet health is first-class: each device can carry its own seeded
// FaultInjector (ArmFaultInjector), so fault rules — a sticky DeviceLost, a
// transient p2p-link TransferFault — are scoped to one device of the group.
// ChargeExchange consults the source device's injector at the transfer site
// BEFORE pricing anything, so a faulted exchange leaves both timelines
// untouched and a replay charges exactly once.
//
// Device lifecycle is a four-state machine:
//
//       MarkLost            MarkReset           Probe ok
//   Alive ------> Lost ---------------> Probing ---------> Readmitting
//     ^             ^                    |    ^                |
//     |             '---- Probe fires ---'    |                |
//     |                   DeviceLost      transient probe      |
//     '------------------- CompleteReadmission ----------------'
//
// MarkLost is what the executor calls when a sticky DeviceLost surfaces;
// MarkReset models the operator (or a seeded auto-reset policy, see
// ArmAutoReset) power-cycling the device: the injector's sticky loss is
// cleared but its rules and call counts survive. Probe charges a real probe
// kernel on a fresh "probe"-labelled stream, so fault rules can kill or
// transiently fail the probe itself — a half-open check, exactly like the
// circuit breaker's. Only CompleteReadmission puts the ordinal back into
// AliveDevices(); plan::RunSharded calls it after broadcast state has been
// re-uploaded, so a readmitted device is never handed work it cannot serve.
#ifndef GPUSIM_DEVICE_GROUP_H_
#define GPUSIM_DEVICE_GROUP_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/fault.h"
#include "gpusim/stream.h"

namespace gpusim {

/// Shape and speed of the inter-device fabric.
struct GroupTopology {
  /// Devices [k*peer_island_size, (k+1)*peer_island_size) form one peer
  /// island; pairs inside an island exchange over a direct link, pairs in
  /// different islands route through host memory. island size 1 = no p2p.
  int peer_island_size = 4;
  /// Direct peer link bandwidth (bytes/second), NVLink-bridge class.
  double p2p_bandwidth_bps = 48.0e9;
  /// Per-exchange latency on a direct peer link.
  uint64_t p2p_latency_ns = 3'000;
};

/// One resolved source->destination path through the fabric.
struct LinkPath {
  bool peer = false;          ///< direct p2p link (same island)?
  bool same_device = false;   ///< src == dst: an ordinary device copy
  double bandwidth_bps = 0;   ///< effective end-to-end bandwidth
  uint64_t latency_ns = 0;    ///< end-to-end latency per exchange
  int hops = 0;               ///< 0 local, 1 peer, 2 via host
};

/// Where a device sits in its lifecycle. Only kAlive devices take work.
enum class DeviceState : uint8_t {
  kAlive = 0,        ///< healthy, eligible for placement
  kLost = 1,         ///< sticky DeviceLost surfaced; no work placed
  kProbing = 2,      ///< reset issued, awaiting a successful probe
  kReadmitting = 3,  ///< probe passed; state re-upload in flight
};

const char* DeviceStateName(DeviceState state);

/// One lifecycle transition (the group's audit log, in transition order).
struct LifecycleEvent {
  enum class Kind : uint8_t {
    kLost = 0,
    kReset,        ///< Lost -> Probing (sticky loss cleared)
    kProbeOk,      ///< Probing -> Readmitting
    kProbeFailed,  ///< probe faulted; Probing or back to Lost
    kReadmitted,   ///< Readmitting -> Alive
  };
  Kind kind = Kind::kLost;
  int device = -1;
  uint64_t sequence = 0;  ///< monotone across the group
};

const char* LifecycleEventName(LifecycleEvent::Kind kind);

/// Plain-value counters of lifecycle activity across the fleet.
struct FleetStats {
  uint64_t losses = 0;
  uint64_t resets = 0;
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t readmissions = 0;
};

/// N simulated devices plus the links between them. Thread-safe after
/// construction; per-device state lives on the Devices themselves.
class DeviceGroup {
 public:
  /// Creates `num_devices` identical devices. `host_threads_per_device`
  /// sizes each device's kernel thread pool (kept small by default so an
  /// 8-device group does not oversubscribe the host; simulated timings do
  /// not depend on it).
  explicit DeviceGroup(int num_devices,
                       const GroupTopology& topology = GroupTopology(),
                       const DeviceProperties& props = DeviceProperties(),
                       unsigned host_threads_per_device = 2);

  int size() const { return static_cast<int>(devices_.size()); }
  Device& device(int i) { return *devices_[static_cast<size_t>(i)]; }
  const Device& device(int i) const { return *devices_[static_cast<size_t>(i)]; }
  const GroupTopology& topology() const { return topology_; }

  /// True when src and dst sit on the same peer island (and differ).
  bool IsPeer(int src, int dst) const;

  /// Resolves the path an exchange from src to dst takes.
  LinkPath Link(int src, int dst) const;

  /// Prices an exchange of `bytes` from src to dst in simulated ns without
  /// charging anything (the cost-estimator hook). Peer paths pay link
  /// latency + bytes at p2p bandwidth; via-host paths pay a D2H hop on the
  /// source PCIe link plus an H2D hop on the destination's.
  uint64_t TransferNs(int src, int dst, uint64_t bytes) const;

  /// Charges an exchange to both streams: the source stream advances by the
  /// priced path time, the destination stream waits for the source's new
  /// front (an event sync), and per-device exchange counters are bumped on
  /// both ends. src_stream/dst_stream must belong to device(src)/device(dst).
  void ChargeExchange(int src, Stream& src_stream, int dst,
                      Stream& dst_stream, uint64_t bytes);

  /// Total bytes exchanged src->dst so far (both directions tracked
  /// separately).
  uint64_t ExchangedBytes(int src, int dst) const;

  /// Sum of committed peak bytes across devices, and the per-device peaks.
  std::vector<uint64_t> PerDevicePeakBytes() const;

  // -- Fleet health ---------------------------------------------------------

  /// Creates (or returns) a group-owned FaultInjector for device `i`, seeded
  /// from `seed` mixed with the device index, and attaches it to the device.
  /// Rules added to it are scoped to that device alone. The injector lives
  /// as long as the group.
  FaultInjector& ArmFaultInjector(int i, uint64_t seed);

  /// The injector attached to device `i` (owned or external), or nullptr.
  FaultInjector* fault_injector(int i) const {
    return device(i).fault_injector();
  }

  /// Takes the device out of placement (any state -> Lost). Called when a
  /// sticky DeviceLost surfaces. Idempotent; the only way back to Alive is
  /// MarkReset -> Probe -> CompleteReadmission.
  void MarkLost(int i);

  /// Models a device reset (Lost -> Probing): clears the attached injector's
  /// sticky loss so the next probe has a chance, but leaves rules and call
  /// counts in place. Returns false (no-op) unless the device is Lost.
  bool MarkReset(int i);

  /// Half-open probe of a Probing device: charges a real probe kernel on a
  /// fresh stream labelled "probe" so fault rules apply to the probe itself.
  /// Success moves the device to Readmitting and returns true. A DeviceLost
  /// during the probe sends it back to Lost; a transient fault leaves it
  /// Probing for a later retry; both return false.
  bool Probe(int i);

  /// Readmitting -> Alive, after the caller has restored any device-resident
  /// state (broadcast tables, residency). Returns false unless Readmitting.
  bool CompleteReadmission(int i);

  DeviceState state(int i) const {
    return static_cast<DeviceState>(
        state_[static_cast<size_t>(i)]->load(std::memory_order_acquire));
  }

  /// Arms a deterministic auto-reset policy: a device that has been Lost for
  /// a per-device number of TickLostDevices calls (drawn from `seed` in
  /// [min_ticks, max_ticks]) is MarkReset automatically on that tick.
  /// plan::RunSharded ticks once per recovery round, so "ticks" are rounds.
  void ArmAutoReset(uint64_t seed, int min_ticks = 1, int max_ticks = 3);

  /// Advances the auto-reset clock for every Lost device; returns devices
  /// that moved to Probing this tick (ascending). No-op unless ArmAutoReset
  /// was called.
  std::vector<int> TickLostDevices();

  /// True while the device is in the Alive state.
  bool IsAlive(int i) const;

  /// Devices in the Alive state, in ascending order (possibly empty).
  std::vector<int> AliveDevices() const;

  int AliveCount() const;

  /// Devices currently in the Probing state, ascending.
  std::vector<int> ProbingDevices() const;

  FleetStats fleet_stats() const;
  std::vector<LifecycleEvent> lifecycle_log() const;

 private:
  void Transition(int i, DeviceState next, LifecycleEvent::Kind kind);
  size_t PairIndex(int src, int dst) const {
    return static_cast<size_t>(src) * devices_.size() +
           static_cast<size_t>(dst);
  }

  GroupTopology topology_;
  std::vector<std::unique_ptr<Device>> devices_;
  /// Flat [src][dst] matrix of exchanged bytes.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> exchanged_;
  /// Per-device lifecycle state (DeviceState as uint8_t). Reads are lock-free
  /// (IsAlive sits on hot paths); transitions serialize on lifecycle_mu_.
  std::vector<std::unique_ptr<std::atomic<uint8_t>>> state_;
  std::vector<std::unique_ptr<FaultInjector>> injectors_;

  mutable std::mutex lifecycle_mu_;
  std::vector<LifecycleEvent> lifecycle_log_;
  FleetStats fleet_stats_;
  uint64_t lifecycle_sequence_ = 0;
  /// Auto-reset policy: ticks a device must stay Lost before MarkReset.
  bool auto_reset_armed_ = false;
  std::vector<int> auto_reset_after_;  ///< per-device threshold, in ticks
  std::vector<int> lost_ticks_;        ///< ticks spent Lost since last loss
};

}  // namespace gpusim

#endif  // GPUSIM_DEVICE_GROUP_H_
