// Device-side algorithm primitives with GPU-faithful pass structure.
//
// Each primitive here is decomposed into the same sequence of kernel launches
// a real GPU implementation uses (per-block partials + tree reduction,
// multi-level Blelloch scan, LSD radix sort with per-tile histograms, flag +
// scan + scatter stream compaction). The libraries under test (thrustsim,
// bcsim, afsim) wrap these primitives with their own APIs and charge their
// own API profiles through the Stream they pass in, so launch counts, bytes
// moved, and therefore simulated time differ per library exactly as the call
// structure differs.
#ifndef GPUSIM_ALGORITHMS_H_
#define GPUSIM_ALGORITHMS_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>

#include "gpusim/atomic_ops.h"
#include "gpusim/kernel.h"
#include "gpusim/memory.h"

namespace gpusim {

/// Elements processed per simulated thread block in multi-pass primitives.
inline constexpr size_t kTileSize = 1024;

namespace detail {
inline size_t NumTiles(size_t n) { return (n + kTileSize - 1) / kTileSize; }
}  // namespace detail

// ---------------------------------------------------------------------------
// Fill / sequence
// ---------------------------------------------------------------------------

/// out[i] = value for i in [0, n).
template <typename T>
void Fill(Stream& stream, T* out, size_t n, T value) {
  KernelStats stats;
  stats.name = "fill";
  stats.bytes_written = n * sizeof(T);
  ParallelFor(stream, n, stats, [=](size_t i) { out[i] = value; });
}

/// out[i] = start + i * step.
template <typename T>
void Sequence(Stream& stream, T* out, size_t n, T start = T{0}, T step = T{1}) {
  KernelStats stats;
  stats.name = "sequence";
  stats.bytes_written = n * sizeof(T);
  ParallelFor(stream, n, stats,
              [=](size_t i) { out[i] = start + static_cast<T>(i) * step; });
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

/// Tree reduction: per-block partials, repeated until one value remains,
/// then a single-element device-to-host copy. Returns op(init, reduce(in)).
template <typename T, typename BinOp>
T Reduce(Stream& stream, const T* in, size_t n, T init, BinOp op,
         const char* name = "reduce") {
  if (n == 0) return init;
  Device& device = stream.device();
  size_t num_tiles = detail::NumTiles(n);
  DeviceArray<T> partials(num_tiles, device);
  DeviceArray<T> partials2(detail::NumTiles(num_tiles), device);

  {
    KernelStats stats;
    stats.name = name;
    stats.bytes_read = n * sizeof(T);
    stats.bytes_written = num_tiles * sizeof(T);
    stats.ops = n;
    T* out = partials.data();
    LaunchBlocks(stream, num_tiles, kDefaultBlockSize, stats,
                 [=](const BlockContext& ctx) {
                   const size_t begin = ctx.block_id * kTileSize;
                   const size_t end = std::min(begin + kTileSize, n);
                   T acc = in[begin];
                   for (size_t i = begin + 1; i < end; ++i) acc = op(acc, in[i]);
                   out[ctx.block_id] = acc;
                 });
  }

  T* src = partials.data();
  T* dst = partials2.data();
  size_t m = num_tiles;
  while (m > 1) {
    const size_t tiles = detail::NumTiles(m);
    KernelStats stats;
    stats.name = "reduce_partials";
    stats.bytes_read = m * sizeof(T);
    stats.bytes_written = tiles * sizeof(T);
    stats.ops = m;
    const T* s = src;
    T* d = dst;
    const size_t mm = m;
    LaunchBlocks(stream, tiles, kDefaultBlockSize, stats,
                 [=](const BlockContext& ctx) {
                   const size_t begin = ctx.block_id * kTileSize;
                   const size_t end = std::min(begin + kTileSize, mm);
                   T acc = s[begin];
                   for (size_t i = begin + 1; i < end; ++i) acc = op(acc, s[i]);
                   d[ctx.block_id] = acc;
                 });
    std::swap(src, dst);
    m = tiles;
  }

  T result;
  CopyDeviceToHost(stream, &result, src, sizeof(T));
  return op(init, result);
}

// ---------------------------------------------------------------------------
// Scans (multi-level Blelloch structure)
// ---------------------------------------------------------------------------

namespace detail {

/// Per-tile scan writing tile totals; then recursive scan of totals; then a
/// uniform-add pass. `kInclusive` selects inclusive vs exclusive semantics.
template <bool kInclusive, typename T, typename BinOp>
void ScanImpl(Stream& stream, const T* in, T* out, size_t n, T identity,
              BinOp op) {
  if (n == 0) return;
  Device& device = stream.device();
  const size_t num_tiles = NumTiles(n);
  DeviceArray<T> tile_sums(num_tiles, device);

  {
    KernelStats stats;
    stats.name = kInclusive ? "scan_tiles_inclusive" : "scan_tiles_exclusive";
    stats.bytes_read = n * sizeof(T);
    stats.bytes_written = (n + num_tiles) * sizeof(T);
    stats.ops = n;
    T* sums = tile_sums.data();
    LaunchBlocks(stream, num_tiles, kDefaultBlockSize, stats,
                 [=](const BlockContext& ctx) {
                   const size_t begin = ctx.block_id * kTileSize;
                   const size_t end = std::min(begin + kTileSize, n);
                   T acc = identity;
                   for (size_t i = begin; i < end; ++i) {
                     const T v = in[i];
                     if constexpr (kInclusive) {
                       acc = op(acc, v);
                       out[i] = acc;
                     } else {
                       out[i] = acc;
                       acc = op(acc, v);
                     }
                   }
                   sums[ctx.block_id] = acc;
                 });
  }

  if (num_tiles > 1) {
    DeviceArray<T> sums_scanned(num_tiles, device);
    ScanImpl<false>(stream, tile_sums.data(), sums_scanned.data(), num_tiles,
                    identity, op);
    KernelStats stats;
    stats.name = "scan_uniform_add";
    stats.bytes_read = (n + num_tiles) * sizeof(T);
    stats.bytes_written = n * sizeof(T);
    stats.ops = n;
    const T* offsets = sums_scanned.data();
    LaunchBlocks(stream, num_tiles, kDefaultBlockSize, stats,
                 [=](const BlockContext& ctx) {
                   const size_t begin = ctx.block_id * kTileSize;
                   const size_t end = std::min(begin + kTileSize, n);
                   const T offset = offsets[ctx.block_id];
                   for (size_t i = begin; i < end; ++i) {
                     out[i] = op(offset, out[i]);
                   }
                 });
  }
}

}  // namespace detail

/// Exclusive scan: out[0] = init, out[i] = op(out[i-1], in[i-1]).
template <typename T, typename BinOp>
void ExclusiveScan(Stream& stream, const T* in, T* out, size_t n, T init,
                   BinOp op) {
  detail::ScanImpl<false>(stream, in, out, n, T{}, op);
  if (init != T{}) {
    KernelStats stats;
    stats.name = "scan_apply_init";
    stats.bytes_read = n * sizeof(T);
    stats.bytes_written = n * sizeof(T);
    ParallelFor(stream, n, stats, [=](size_t i) { out[i] = op(init, out[i]); });
  }
}

/// Inclusive scan: out[i] = op(in[0], ..., in[i]).
template <typename T, typename BinOp>
void InclusiveScan(Stream& stream, const T* in, T* out, size_t n, BinOp op) {
  detail::ScanImpl<true>(stream, in, out, n, T{}, op);
}

// ---------------------------------------------------------------------------
// Gather / scatter
// ---------------------------------------------------------------------------

/// dst[i] = src[map[i]] for i in [0, n).
template <typename T, typename I>
void Gather(Stream& stream, const I* map, size_t n, const T* src, T* dst) {
  KernelStats stats;
  stats.name = "gather";
  stats.bytes_read = n * (sizeof(T) + sizeof(I));
  stats.bytes_written = n * sizeof(T);
  ParallelFor(stream, n, stats,
              [=](size_t i) { dst[i] = src[static_cast<size_t>(map[i])]; });
}

/// dst[map[i]] = src[i] for i in [0, n).
template <typename T, typename I>
void Scatter(Stream& stream, const T* src, const I* map, size_t n, T* dst) {
  KernelStats stats;
  stats.name = "scatter";
  stats.bytes_read = n * (sizeof(T) + sizeof(I));
  stats.bytes_written = n * sizeof(T);
  ParallelFor(stream, n, stats,
              [=](size_t i) { dst[static_cast<size_t>(map[i])] = src[i]; });
}

// ---------------------------------------------------------------------------
// Stream compaction (flag + scan + scatter)
// ---------------------------------------------------------------------------

/// Writes in[i] to out (densely) for every i with pred(in[i]). Returns the
/// number of elements written. Three kernels plus a scan, matching the
/// canonical GPU compaction pipeline.
template <typename T, typename Pred>
size_t CopyIf(Stream& stream, const T* in, size_t n, T* out, Pred pred) {
  if (n == 0) return 0;
  Device& device = stream.device();
  DeviceArray<uint32_t> flags(n, device);
  DeviceArray<uint32_t> positions(n, device);

  {
    KernelStats stats;
    stats.name = "copy_if_flags";
    stats.bytes_read = n * sizeof(T);
    stats.bytes_written = n * sizeof(uint32_t);
    uint32_t* f = flags.data();
    ParallelFor(stream, n, stats,
                [=](size_t i) { f[i] = pred(in[i]) ? 1u : 0u; });
  }
  ExclusiveScan(stream, flags.data(), positions.data(), n, uint32_t{0},
                [](uint32_t a, uint32_t b) { return a + b; });

  uint32_t last_pos = 0, last_flag = 0;
  CopyDeviceToHost(stream, &last_pos, positions.data() + (n - 1),
                   sizeof(uint32_t));
  CopyDeviceToHost(stream, &last_flag, flags.data() + (n - 1),
                   sizeof(uint32_t));
  const size_t count = last_pos + last_flag;

  {
    KernelStats stats;
    stats.name = "copy_if_scatter";
    stats.bytes_read = n * (sizeof(T) + 2 * sizeof(uint32_t));
    stats.bytes_written = count * sizeof(T);
    const uint32_t* f = flags.data();
    const uint32_t* pos = positions.data();
    ParallelFor(stream, n, stats, [=](size_t i) {
      if (f[i]) out[pos[i]] = in[i];
    });
  }
  return count;
}

/// Like CopyIf but the predicate sees the *index*, and the copied value is
/// taken from `values`. Used to compact row ids by a selection predicate on
/// another column (the transform & scan & gather pipeline of Table II).
template <typename T, typename Pred>
size_t CopyIndexIf(Stream& stream, size_t n, const T* values, T* out,
                   Pred pred) {
  if (n == 0) return 0;
  Device& device = stream.device();
  DeviceArray<uint32_t> flags(n, device);
  DeviceArray<uint32_t> positions(n, device);
  {
    KernelStats stats;
    stats.name = "copy_index_if_flags";
    stats.bytes_written = n * sizeof(uint32_t);
    uint32_t* f = flags.data();
    ParallelFor(stream, n, stats, [=](size_t i) { f[i] = pred(i) ? 1u : 0u; });
  }
  ExclusiveScan(stream, flags.data(), positions.data(), n, uint32_t{0},
                [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t last_pos = 0, last_flag = 0;
  CopyDeviceToHost(stream, &last_pos, positions.data() + (n - 1),
                   sizeof(uint32_t));
  CopyDeviceToHost(stream, &last_flag, flags.data() + (n - 1),
                   sizeof(uint32_t));
  const size_t count = last_pos + last_flag;
  {
    KernelStats stats;
    stats.name = "copy_index_if_scatter";
    stats.bytes_read = n * (sizeof(T) + 2 * sizeof(uint32_t));
    stats.bytes_written = count * sizeof(T);
    const uint32_t* f = flags.data();
    const uint32_t* pos = positions.data();
    ParallelFor(stream, n, stats, [=](size_t i) {
      if (f[i]) out[pos[i]] = values[i];
    });
  }
  return count;
}

/// Counts elements satisfying pred (flag kernel + tree reduction).
template <typename T, typename Pred>
size_t CountIf(Stream& stream, const T* in, size_t n, Pred pred) {
  if (n == 0) return 0;
  Device& device = stream.device();
  DeviceArray<uint32_t> flags(n, device);
  {
    KernelStats stats;
    stats.name = "count_if_flags";
    stats.bytes_read = n * sizeof(T);
    stats.bytes_written = n * sizeof(uint32_t);
    uint32_t* f = flags.data();
    ParallelFor(stream, n, stats,
                [=](size_t i) { f[i] = pred(in[i]) ? 1u : 0u; });
  }
  return Reduce(stream, flags.data(), n, uint32_t{0},
                [](uint32_t a, uint32_t b) { return a + b; }, "count_if");
}

// ---------------------------------------------------------------------------
// Radix sort (LSD, 8-bit digits, per-tile histograms)
// ---------------------------------------------------------------------------

/// Bijective mapping of a key type onto unsigned integers that preserves the
/// key's ordering, as used by GPU radix sorts.
template <typename K>
struct RadixTraits;

template <>
struct RadixTraits<uint32_t> {
  using Unsigned = uint32_t;
  static Unsigned Encode(uint32_t k) { return k; }
  static uint32_t Decode(Unsigned u) { return u; }
};

template <>
struct RadixTraits<uint64_t> {
  using Unsigned = uint64_t;
  static Unsigned Encode(uint64_t k) { return k; }
  static uint64_t Decode(Unsigned u) { return u; }
};

template <>
struct RadixTraits<int32_t> {
  using Unsigned = uint32_t;
  static Unsigned Encode(int32_t k) {
    return static_cast<uint32_t>(k) ^ 0x80000000u;
  }
  static int32_t Decode(Unsigned u) {
    return static_cast<int32_t>(u ^ 0x80000000u);
  }
};

template <>
struct RadixTraits<int64_t> {
  using Unsigned = uint64_t;
  static Unsigned Encode(int64_t k) {
    return static_cast<uint64_t>(k) ^ 0x8000000000000000ull;
  }
  static int64_t Decode(Unsigned u) {
    return static_cast<int64_t>(u ^ 0x8000000000000000ull);
  }
};

template <>
struct RadixTraits<float> {
  using Unsigned = uint32_t;
  static Unsigned Encode(float k) {
    uint32_t u;
    std::memcpy(&u, &k, sizeof(u));
    return (u & 0x80000000u) ? ~u : (u | 0x80000000u);
  }
  static float Decode(Unsigned u) {
    u = (u & 0x80000000u) ? (u & ~0x80000000u) : ~u;
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
  }
};

template <>
struct RadixTraits<double> {
  using Unsigned = uint64_t;
  static Unsigned Encode(double k) {
    uint64_t u;
    std::memcpy(&u, &k, sizeof(u));
    return (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
  }
  static double Decode(Unsigned u) {
    u = (u & 0x8000000000000000ull) ? (u & ~0x8000000000000000ull) : ~u;
    double f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
  }
};

namespace detail {

inline constexpr uint32_t kRadixBits = 8;
inline constexpr uint32_t kRadixBuckets = 1u << kRadixBits;

/// One stable LSD pass over `shift`-th digit: histogram, scan, scatter.
/// kHasValues controls whether the payload arrays participate.
template <bool kHasValues, typename U, typename V>
void RadixPass(Stream& stream, const U* keys_in, U* keys_out, const V* vals_in,
               V* vals_out, size_t n, uint32_t shift, uint32_t* counts,
               uint32_t* offsets, size_t num_tiles) {
  // Per-tile digit histograms stored digit-major: counts[d * num_tiles + t],
  // so a single exclusive scan of the whole array yields global offsets for
  // each (digit, tile) pair — the standard GPU radix layout.
  {
    KernelStats stats;
    stats.name = "radix_histogram";
    stats.bytes_read = n * sizeof(U);
    stats.bytes_written = num_tiles * kRadixBuckets * sizeof(uint32_t);
    stats.ops = n;
    LaunchBlocks(stream, num_tiles, kDefaultBlockSize, stats,
                 [=](const BlockContext& ctx) {
                   uint32_t local[kRadixBuckets] = {0};
                   const size_t begin = ctx.block_id * kTileSize;
                   const size_t end = std::min(begin + kTileSize, n);
                   for (size_t i = begin; i < end; ++i) {
                     const uint32_t d =
                         static_cast<uint32_t>(keys_in[i] >> shift) &
                         (kRadixBuckets - 1);
                     ++local[d];
                   }
                   for (uint32_t d = 0; d < kRadixBuckets; ++d) {
                     counts[static_cast<size_t>(d) * num_tiles + ctx.block_id] =
                         local[d];
                   }
                 });
  }
  ExclusiveScan(stream, counts, offsets, num_tiles * kRadixBuckets,
                uint32_t{0}, [](uint32_t a, uint32_t b) { return a + b; });
  {
    KernelStats stats;
    stats.name = "radix_scatter";
    stats.bytes_read = n * (sizeof(U) + (kHasValues ? sizeof(V) : 0));
    stats.bytes_written = n * (sizeof(U) + (kHasValues ? sizeof(V) : 0));
    stats.ops = n;
    LaunchBlocks(stream, num_tiles, kDefaultBlockSize, stats,
                 [=](const BlockContext& ctx) {
                   uint32_t local[kRadixBuckets];
                   for (uint32_t d = 0; d < kRadixBuckets; ++d) {
                     local[d] = offsets[static_cast<size_t>(d) * num_tiles +
                                        ctx.block_id];
                   }
                   const size_t begin = ctx.block_id * kTileSize;
                   const size_t end = std::min(begin + kTileSize, n);
                   for (size_t i = begin; i < end; ++i) {
                     const uint32_t d =
                         static_cast<uint32_t>(keys_in[i] >> shift) &
                         (kRadixBuckets - 1);
                     const uint32_t p = local[d]++;
                     keys_out[p] = keys_in[i];
                     if constexpr (kHasValues) vals_out[p] = vals_in[i];
                   }
                 });
  }
}

template <bool kHasValues, typename K, typename V>
void RadixSortImpl(Stream& stream, K* keys, V* values, size_t n) {
  if (n <= 1) return;
  using Traits = RadixTraits<K>;
  using U = typename Traits::Unsigned;
  Device& device = stream.device();
  const size_t num_tiles = NumTiles(n);

  DeviceArray<U> ukeys_a(n, device);
  DeviceArray<U> ukeys_b(n, device);
  DeviceArray<V> vals_b(kHasValues ? n : 0, device);
  DeviceArray<uint32_t> counts(num_tiles * kRadixBuckets, device);
  DeviceArray<uint32_t> offsets(num_tiles * kRadixBuckets, device);

  {
    KernelStats stats;
    stats.name = "radix_encode";
    stats.bytes_read = n * sizeof(K);
    stats.bytes_written = n * sizeof(U);
    U* out = ukeys_a.data();
    ParallelFor(stream, n, stats,
                [=](size_t i) { out[i] = Traits::Encode(keys[i]); });
  }

  U* src_k = ukeys_a.data();
  U* dst_k = ukeys_b.data();
  V* src_v = values;
  V* dst_v = kHasValues ? vals_b.data() : nullptr;
  const uint32_t passes = sizeof(U);
  for (uint32_t p = 0; p < passes; ++p) {
    RadixPass<kHasValues>(stream, src_k, dst_k, src_v, dst_v, n,
                          p * kRadixBits, counts.data(), offsets.data(),
                          num_tiles);
    std::swap(src_k, dst_k);
    if constexpr (kHasValues) std::swap(src_v, dst_v);
  }
  // sizeof(U) is even (4 or 8), so after the swaps src_k == ukeys_a and for
  // values src_v == values: payload ends in the caller's buffer.
  {
    KernelStats stats;
    stats.name = "radix_decode";
    stats.bytes_read = n * sizeof(U);
    stats.bytes_written = n * sizeof(K);
    const U* in = src_k;
    ParallelFor(stream, n, stats,
                [=](size_t i) { keys[i] = Traits::Decode(in[i]); });
  }
}

}  // namespace detail

/// In-place ascending radix sort of keys.
template <typename K>
void RadixSortKeys(Stream& stream, K* keys, size_t n) {
  detail::RadixSortImpl<false, K, uint8_t>(stream, keys, nullptr, n);
}

/// In-place ascending stable radix sort of (key, value) pairs.
template <typename K, typename V>
void RadixSortPairs(Stream& stream, K* keys, V* values, size_t n) {
  detail::RadixSortImpl<true>(stream, keys, values, n);
}

// ---------------------------------------------------------------------------
// Reduce by key (requires sorted keys; head flags + scan + atomic combine)
// ---------------------------------------------------------------------------

namespace detail {

/// CAS-loop combine for generic commutative+associative ops.
template <typename V, typename BinOp>
void AtomicCombine(V* address, V val, BinOp op) {
  std::atomic_ref<V> ref(*address);
  V old = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(old, op(old, val),
                                    std::memory_order_acq_rel)) {
  }
}

}  // namespace detail

/// Segmented reduction over equal consecutive keys, the GPU realization of
/// grouped aggregation after a sort-by-key (Table II: reduce_by_key /
/// sumByKey). `op` must be commutative and associative; like Thrust's
/// reduce_by_key, only actual segment elements are combined (each segment is
/// seeded from its head element, so no identity value is needed). Returns
/// the number of distinct segments; out_keys/out_vals must have room for n
/// entries.
template <typename K, typename V, typename BinOp>
size_t ReduceByKey(Stream& stream, const K* keys, const V* vals, size_t n,
                   K* out_keys, V* out_vals, BinOp op) {
  if (n == 0) return 0;
  Device& device = stream.device();
  DeviceArray<uint32_t> flags(n, device);
  DeviceArray<uint32_t> segids(n, device);

  {
    KernelStats stats;
    stats.name = "rbk_head_flags";
    stats.bytes_read = 2 * n * sizeof(K);
    stats.bytes_written = n * sizeof(uint32_t);
    uint32_t* f = flags.data();
    ParallelFor(stream, n, stats, [=](size_t i) {
      f[i] = (i == 0 || keys[i] != keys[i - 1]) ? 1u : 0u;
    });
  }
  InclusiveScan(stream, flags.data(), segids.data(), n,
                [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t num_segments = 0;
  CopyDeviceToHost(stream, &num_segments, segids.data() + (n - 1),
                   sizeof(uint32_t));

  {
    KernelStats stats;
    stats.name = "rbk_seed_heads";
    stats.bytes_read = n * (sizeof(K) + sizeof(V) + 2 * sizeof(uint32_t));
    stats.bytes_written = num_segments * (sizeof(K) + sizeof(V));
    const uint32_t* f = flags.data();
    const uint32_t* s = segids.data();
    ParallelFor(stream, n, stats, [=](size_t i) {
      if (f[i]) {
        const size_t seg = s[i] - 1;
        out_keys[seg] = keys[i];
        out_vals[seg] = vals[i];
      }
    });
  }
  {
    KernelStats stats;
    stats.name = "rbk_combine";
    stats.bytes_read = n * (sizeof(V) + 2 * sizeof(uint32_t));
    stats.bytes_written = num_segments * sizeof(V);
    stats.ops = 2 * n;
    const uint32_t* f = flags.data();
    const uint32_t* s = segids.data();
    ParallelFor(stream, n, stats, [=](size_t i) {
      if (!f[i]) {
        detail::AtomicCombine(&out_vals[s[i] - 1], vals[i], op);
      }
    });
  }
  return num_segments;
}

// ---------------------------------------------------------------------------
// Unique / merge-based set operations over sorted inputs
// ---------------------------------------------------------------------------

/// Compacts consecutive duplicates of a *sorted* array into out; returns the
/// number of unique elements.
template <typename T>
size_t UniqueSorted(Stream& stream, const T* in, size_t n, T* out) {
  if (n == 0) return 0;
  Device& device = stream.device();
  DeviceArray<uint32_t> flags(n, device);
  DeviceArray<uint32_t> positions(n, device);
  {
    KernelStats stats;
    stats.name = "unique_flags";
    stats.bytes_read = 2 * n * sizeof(T);
    stats.bytes_written = n * sizeof(uint32_t);
    uint32_t* f = flags.data();
    ParallelFor(stream, n, stats, [=](size_t i) {
      f[i] = (i == 0 || in[i] != in[i - 1]) ? 1u : 0u;
    });
  }
  ExclusiveScan(stream, flags.data(), positions.data(), n, uint32_t{0},
                [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t last_pos = 0, last_flag = 0;
  CopyDeviceToHost(stream, &last_pos, positions.data() + (n - 1),
                   sizeof(uint32_t));
  CopyDeviceToHost(stream, &last_flag, flags.data() + (n - 1),
                   sizeof(uint32_t));
  const size_t count = last_pos + last_flag;
  {
    KernelStats stats;
    stats.name = "unique_scatter";
    stats.bytes_read = n * (sizeof(T) + 2 * sizeof(uint32_t));
    stats.bytes_written = count * sizeof(T);
    const uint32_t* f = flags.data();
    const uint32_t* pos = positions.data();
    ParallelFor(stream, n, stats, [=](size_t i) {
      if (f[i]) out[pos[i]] = in[i];
    });
  }
  return count;
}

/// Binary search for `key` in sorted [data, data+n): true if present.
template <typename T>
inline bool BinarySearchContains(const T* data, size_t n, T key) {
  size_t lo = 0, hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < n && data[lo] == key;
}

/// Intersection of two sorted unique arrays; returns the output size.
/// One flag kernel with per-element binary search + compaction, the way
/// ArrayFire's setIntersect is realized on GPUs.
template <typename T>
size_t SetIntersectSorted(Stream& stream, const T* a, size_t na, const T* b,
                          size_t nb, T* out) {
  if (na == 0 || nb == 0) return 0;
  const double log_nb = nb > 1 ? std::log2(static_cast<double>(nb)) : 1.0;
  KernelStats probe_stats;
  probe_stats.name = "set_intersect_probe";
  probe_stats.bytes_read =
      na * sizeof(T) + static_cast<uint64_t>(na * log_nb * sizeof(T));
  probe_stats.ops = static_cast<uint64_t>(na * log_nb);
  // CopyIf charges its own kernels; fold the probe cost into the predicate
  // kernel by pre-charging the binary-search traffic here.
  stream.ChargeKernel(probe_stats);
  return CopyIf(stream, a, na, out,
                [=](T key) { return BinarySearchContains(b, nb, key); });
}

}  // namespace gpusim

#endif  // GPUSIM_ALGORITHMS_H_
