// Host-side launch geometry shared by the kernel API and the thread pool.
//
// ParallelFor (kernel.h) decides how a simulated grid is cut into host
// chunks, and ThreadPool (thread_pool.h) decides when a chunked job is too
// small to be worth a worker rendezvous. Both cutovers are functions of the
// same quantities, so they live here: keeping them in one place guarantees
// the inline thresholds cannot drift apart (a grid that kernel.h hands to
// the pool is always big enough that the pool would not have inlined it for
// being degenerate, and vice versa).
//
// None of this affects simulated time: chunking is pure host-side execution
// strategy, charged before any chunk runs.
#ifndef GPUSIM_LAUNCH_CONFIG_H_
#define GPUSIM_LAUNCH_CONFIG_H_

#include <algorithm>
#include <cstddef>
#include <limits>

namespace gpusim {

/// Number of simulated threads per block used by ParallelFor chunking.
inline constexpr size_t kDefaultBlockSize = 256;

/// Smallest host-side chunk, in simulated threads: one chunk covers many
/// simulated blocks to amortize host scheduling.
inline constexpr size_t kMinChunkThreads = kDefaultBlockSize * 16;

/// Grids of at most this many simulated threads run inline on the calling
/// thread, skipping the thread pool (and its chunking arithmetic) entirely.
/// Equals the minimum host-side chunk, so the cutover is exactly the point
/// where the grid would have produced a single chunk anyway.
inline constexpr size_t kInlineGridThreshold = kMinChunkThreads;

/// Host chunk size (in simulated threads) for an n-thread grid on a pool of
/// `pool_threads` workers: roughly eight chunks per worker for load balance,
/// never below kMinChunkThreads.
constexpr size_t HostChunkThreads(size_t n, unsigned pool_threads) {
  return std::max<size_t>(
      kMinChunkThreads, n / (static_cast<size_t>(pool_threads) * 8 + 1));
}

/// Number of host chunks an n-thread grid yields at the given chunk size.
constexpr size_t NumHostChunks(size_t n, size_t chunk) {
  return (n + chunk - 1) / chunk;
}

/// Pool-level cutover: jobs with at most this many chunks run inline on the
/// submitting thread because a rendezvous with the workers costs more than
/// the chunks themselves. With no workers at all everything is inline.
constexpr size_t PoolInlineChunkThreshold(unsigned pool_threads) {
  return pool_threads <= 1 ? std::numeric_limits<size_t>::max()
                           : std::max<size_t>(1, pool_threads / 4);
}

}  // namespace gpusim

#endif  // GPUSIM_LAUNCH_CONFIG_H_
