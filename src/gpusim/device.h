// The simulated GPU device.
//
// A Device owns: a device-memory allocator (host heap, but tracked and
// capacity-checked against the simulated global memory size), a cost model,
// aggregate work counters, and the thread pool used to execute kernel grids.
// Streams (gpusim/stream.h) carry per-API-profile timelines on top of a
// device.
#ifndef GPUSIM_DEVICE_H_
#define GPUSIM_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "gpusim/cost_model.h"
#include "gpusim/counters.h"
#include "gpusim/thread_pool.h"
#include "gpusim/trace.h"

namespace gpusim {

/// Thrown when a simulated allocation exceeds the device's global memory.
class OutOfDeviceMemory : public std::runtime_error {
 public:
  explicit OutOfDeviceMemory(const std::string& what)
      : std::runtime_error(what) {}
};

/// A simulated GPU. Thread-safe.
class Device {
 public:
  explicit Device(const DeviceProperties& props = DeviceProperties(),
                  unsigned host_threads = 0);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Process-wide default device (created on first use).
  static Device& Default();

  /// Allocates `bytes` of simulated device memory. Throws OutOfDeviceMemory
  /// if the simulated capacity would be exceeded. The returned pointer is a
  /// host pointer usable only inside kernels / transfer APIs by convention.
  void* Allocate(size_t bytes);

  /// Frees memory returned by Allocate(). nullptr is a no-op.
  void Free(void* ptr);

  /// True if `ptr` was returned by Allocate() on this device and not freed.
  bool OwnsPointer(const void* ptr) const;

  size_t bytes_in_use() const { return bytes_in_use_.load(std::memory_order_relaxed); }

  const CostModel& cost_model() const { return cost_model_; }
  const DeviceProperties& properties() const { return cost_model_.properties(); }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  ThreadPool& pool() { return pool_; }

  CounterSnapshot Snapshot() const { return CounterSnapshot::Take(counters_); }

  /// Attaches (or detaches with nullptr) a tracer; not owned. All streams on
  /// this device record their commands into it.
  void set_tracer(Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }

  /// Issues a unique id for a new stream (for trace attribution).
  uint64_t NextStreamId() {
    return next_stream_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  CostModel cost_model_;
  Counters counters_;
  ThreadPool pool_;
  mutable std::mutex alloc_mu_;
  std::unordered_map<const void*, size_t> allocations_;
  std::atomic<size_t> bytes_in_use_{0};
  std::atomic<Tracer*> tracer_{nullptr};
  std::atomic<uint64_t> next_stream_id_{0};
};

}  // namespace gpusim

#endif  // GPUSIM_DEVICE_H_
