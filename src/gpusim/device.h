// The simulated GPU device.
//
// A Device owns: a device-memory allocator (host heap, but tracked and
// capacity-checked against the simulated global memory size), a cost model,
// aggregate work counters, and the thread pool used to execute kernel grids.
// Streams (gpusim/stream.h) carry per-API-profile timelines on top of a
// device.
//
// The allocator is a caching, size-class-based pool (the design of CUB's
// CachingDeviceAllocator / RAPIDS RMM's pool resource): Free() parks blocks
// on per-size-class free lists instead of returning them to the host heap,
// and Allocate() serves repeat requests from those lists. Requests up to
// kLargeBlockBytes round up to the next power of two; larger blocks are
// cached by exact size. The pool is invisible to the cost model — streams
// are never charged for allocation, hit or miss — so simulated timings are
// bit-identical with a cold or warm pool. Hit/miss/pooled-bytes statistics
// are exported through Counters.
//
// Capacity accounting is centralized in one authoritative committed-bytes
// atomic (live + pooled + reserved): every true increase — a pool-miss
// allocation or an admission reservation — admits via a CAS against the
// (settable) capacity, while the frequent state transitions (pool hit,
// free-to-pool, reservation conversion) are committed-neutral swaps. This
// closes the window where two concurrent pool-miss allocations could both
// pass a racy check and overshoot the simulated capacity.
//
// Per-stream reservations (TryReserve / ReleaseReservation) let an admission
// controller (core::MemoryGovernor) set memory aside for a query before it
// runs: a thread that binds itself to a stream's reservation with
// ReservationScope converts reserved bytes into live allocations without a
// second capacity check, so an admitted query cannot lose its memory to a
// concurrent client between admission and allocation.
#ifndef GPUSIM_DEVICE_H_
#define GPUSIM_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gpusim/cost_model.h"
#include "gpusim/counters.h"
#include "gpusim/thread_pool.h"
#include "gpusim/trace.h"

namespace gpusim {

class FaultInjector;

/// Thrown when a simulated allocation exceeds the device's global memory.
class OutOfDeviceMemory : public std::runtime_error {
 public:
  explicit OutOfDeviceMemory(const std::string& what)
      : std::runtime_error(what) {}
};

/// A simulated GPU. Thread-safe.
class Device {
  struct Reservation;  // per-stream admission reservation (private)

 public:
  explicit Device(const DeviceProperties& props = DeviceProperties(),
                  unsigned host_threads = 0);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Process-wide default device (created on first use).
  static Device& Default();

  /// The calling thread's current device: the innermost DeviceGuard's target,
  /// or Default() when no guard is active. Backends resolve their device
  /// through this at construction, so a multi-device driver can bind each
  /// worker thread's backend to its shard's device without any backend-API
  /// change (the cudaSetDevice idiom).
  static Device& Current();

  /// RAII device binding for the current thread (nests; innermost wins).
  class DeviceGuard {
   public:
    explicit DeviceGuard(Device& device);
    ~DeviceGuard();
    DeviceGuard(const DeviceGuard&) = delete;
    DeviceGuard& operator=(const DeviceGuard&) = delete;

   private:
    Device* previous_;
  };

  /// Allocates `bytes` of simulated device memory, rounded up to the pool's
  /// block granularity (see PoolBlockBytes). Served from the pool's free
  /// lists when a cached block of the right class exists. Throws
  /// OutOfDeviceMemory if live + requested reserved bytes would exceed the
  /// simulated capacity even after releasing all pooled blocks. The returned
  /// pointer is a host pointer usable only inside kernels / transfer APIs by
  /// convention.
  void* Allocate(size_t bytes);

  /// Returns memory from Allocate() to the pool (not the host heap).
  /// nullptr is a no-op.
  void Free(void* ptr);

  /// True if `ptr` was returned by Allocate() on this device and not freed.
  /// Pointers sitting in the pool's free lists are not owned.
  bool OwnsPointer(const void* ptr) const;

  /// Reserved bytes of live allocations (size-class granularity).
  size_t bytes_in_use() const { return bytes_live_.load(std::memory_order_relaxed); }

  /// Bytes currently cached in the pool's free lists.
  size_t bytes_pooled() const {
    return counters_.bytes_pooled.load(std::memory_order_relaxed);
  }

  /// Releases every cached block back to the host heap. Called automatically
  /// when an allocation would otherwise exceed the simulated capacity.
  void TrimPool();

  /// Simulated memory capacity allocations and reservations are admitted
  /// against. Defaults to properties().global_memory_bytes; benches and
  /// tools shrink it to model memory pressure. Capacity only gates
  /// admission — it never feeds the cost model, so simulated timings are
  /// unchanged by any setting that still lets allocations succeed.
  size_t memory_capacity() const {
    return capacity_bytes_.load(std::memory_order_relaxed);
  }
  void set_memory_capacity(size_t bytes) {
    capacity_bytes_.store(bytes, std::memory_order_relaxed);
  }

  /// Bytes counted against capacity right now: live + pooled + reserved.
  size_t committed_bytes() const {
    return committed_.load(std::memory_order_relaxed);
  }

  /// Unconverted reservation bytes across all streams.
  size_t reserved_bytes() const {
    return counters_.bytes_reserved.load(std::memory_order_relaxed);
  }

  /// All-time high-water mark of live + reserved bytes.
  uint64_t peak_bytes() const {
    return counters_.peak_bytes.load(std::memory_order_relaxed);
  }

  /// Sets `bytes` aside for `stream_id`, counted against capacity. Trims the
  /// pool when that is what admission needs; returns false when the bytes
  /// do not fit even with an empty pool. A stream's reservations accumulate;
  /// ReleaseReservation drops whatever remains unconverted.
  bool TryReserve(uint64_t stream_id, size_t bytes);

  /// Returns a stream's unconverted reservation balance to the capacity pool
  /// (live allocations drawn from it stay live). No-op without a reservation.
  void ReleaseReservation(uint64_t stream_id);

  /// Unconverted bytes remaining in a stream's reservation (0 = none).
  size_t ReservationRemaining(uint64_t stream_id) const;

  /// Binds the current thread's allocations to a stream's reservation: while
  /// in scope, pool-miss allocations draw down the reservation balance
  /// instead of re-checking capacity, and frees of those blocks credit the
  /// balance back. Scopes nest (the innermost wins); cheap to construct when
  /// the stream holds no reservation.
  class ReservationScope {
   public:
    ReservationScope(Device& device, uint64_t stream_id);
    ~ReservationScope();
    ReservationScope(const ReservationScope&) = delete;
    ReservationScope& operator=(const ReservationScope&) = delete;

   private:
    std::shared_ptr<Reservation> reservation_;  // keeps the binding alive
    std::shared_ptr<Reservation>* previous_;    // enclosing scope's binding
  };

  /// The reserved block size a request of `bytes` maps to: power-of-two size
  /// classes in [kMinBlockBytes, kLargeBlockBytes], exact size above.
  static size_t PoolBlockBytes(size_t bytes);

  /// Pool geometry.
  static constexpr size_t kMinBlockBytes = 256;
  static constexpr size_t kLargeBlockBytes = size_t{1} << 22;  // 4 MiB

  const CostModel& cost_model() const { return cost_model_; }
  const DeviceProperties& properties() const { return cost_model_.properties(); }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  ThreadPool& pool() { return pool_; }

  CounterSnapshot Snapshot() const { return CounterSnapshot::Take(counters_); }

  /// Attaches (or detaches with nullptr) a tracer; not owned. All streams on
  /// this device record their commands into it.
  void set_tracer(Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }

  /// Issues a unique id for a new stream (for trace attribution).
  uint64_t NextStreamId() {
    return next_stream_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Position of this device in its DeviceGroup (0 for the default device
  /// and for free-standing devices). Health state — circuit breakers in
  /// core::ResilienceManager — is keyed by (backend name, ordinal), so one
  /// device's sticky failure never poisons the same backend elsewhere.
  int ordinal() const { return ordinal_; }
  void set_ordinal(int ordinal) { ordinal_ = ordinal; }

  /// Attaches (or detaches with nullptr) a fault injector; not owned, and it
  /// must outlive the attachment. The instrumented paths — Allocate plus the
  /// stream charge paths — consult it with a single relaxed load, so the
  /// detached hot path pays one branch and nothing else.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return fault_injector_.load(std::memory_order_relaxed);
  }

 private:
  // 256 B .. 4 MiB inclusive, one class per power of two.
  static constexpr size_t kNumSizeClasses = 15;
  static constexpr size_t kNumPtrShards = 16;

  /// Free list of one power-of-two size class. Sharded locking: each class
  /// (and the large-block cache) has its own mutex, so concurrent alloc/free
  /// traffic only contends when it targets the same class.
  struct SizeClass {
    std::mutex mu;
    std::vector<void*> blocks;
  };

  /// One stream's admission reservation. `remaining` is drawn down by
  /// reservation-backed allocations (CAS decrement) and credited back when
  /// those blocks are freed; ReleaseReservation zeroes it (exchange), so a
  /// racing conversion either wins before the release or observes 0 and
  /// falls back to the global admission path.
  struct Reservation {
    uint64_t stream_id = 0;
    std::atomic<size_t> remaining{0};
    std::atomic<bool> active{true};
  };

  /// The reservation the current thread's allocations draw from (set by
  /// ReservationScope; null when unbound).
  static thread_local std::shared_ptr<Reservation>* tls_reservation_;

  /// The device Current() resolves to on this thread (set by DeviceGuard;
  /// null = Default()).
  static thread_local Device* tls_current_;

  /// One live pointer's bookkeeping: the reserved block size plus, for
  /// reservation-backed allocations, the reservation to credit on Free.
  struct PtrEntry {
    size_t bytes = 0;
    std::shared_ptr<Reservation> backing;  // null for unbacked blocks
  };

  /// Live-pointer tables, sharded by pointer hash to keep OwnsPointer / Free
  /// lookups off a single global lock. Maps pointer -> block bookkeeping.
  /// `freed` remembers pointers currently parked in the pool's free lists so
  /// Free() can distinguish a double free from a pointer this device never
  /// allocated; entries leave the set when the block is reused or trimmed.
  struct PtrShard {
    mutable std::mutex mu;
    std::unordered_map<const void*, PtrEntry> blocks;
    std::unordered_set<const void*> freed;
  };

  static size_t SizeClassIndex(size_t block_bytes);
  PtrShard& ShardFor(const void* ptr) const;
  void* PopFreeBlock(size_t block_bytes);
  void PushFreeBlock(void* ptr, size_t block_bytes);

  /// CAS-admits `bytes` of new committed memory against the capacity.
  bool TryCommit(size_t bytes);
  /// Raises the live+reserved high-water mark after an increase.
  void NotePeak();

  CostModel cost_model_;
  Counters counters_;
  ThreadPool pool_;
  mutable SizeClass size_classes_[kNumSizeClasses];
  mutable std::mutex large_mu_;
  std::unordered_multimap<size_t, void*> large_cache_;
  mutable PtrShard ptr_shards_[kNumPtrShards];
  std::atomic<size_t> bytes_live_{0};
  std::atomic<size_t> capacity_bytes_;
  /// Authoritative capacity gauge: live + pooled + reserved. Every increase
  /// goes through TryCommit; committed-neutral transitions never touch it.
  std::atomic<size_t> committed_{0};
  mutable std::mutex res_mu_;  ///< guards reservations_
  std::unordered_map<uint64_t, std::shared_ptr<Reservation>> reservations_;
  std::atomic<Tracer*> tracer_{nullptr};
  std::atomic<FaultInjector*> fault_injector_{nullptr};
  std::atomic<uint64_t> next_stream_id_{0};
  int ordinal_ = 0;
};

}  // namespace gpusim

#endif  // GPUSIM_DEVICE_H_
