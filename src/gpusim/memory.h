// Device memory: RAII buffers and explicit transfers.
//
// Mirrors the CUDA/OpenCL discipline the paper's libraries sit on: device
// allocations are distinct from host memory, and all host<->device movement
// goes through explicit, priced copy calls.
#ifndef GPUSIM_MEMORY_H_
#define GPUSIM_MEMORY_H_

#include <cstddef>
#include <cstring>
#include <utility>
#include <vector>

#include "gpusim/stream.h"

namespace gpusim {

/// Untyped RAII device allocation.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(size_t bytes, Device& device = Device::Default())
      : device_(&device), bytes_(bytes) {
    ptr_ = device.Allocate(bytes);
  }
  ~DeviceBuffer() { Reset(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Reset();
      device_ = other.device_;
      ptr_ = other.ptr_;
      bytes_ = other.bytes_;
      other.ptr_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  void Reset() {
    if (ptr_ != nullptr) device_->Free(ptr_);
    ptr_ = nullptr;
    bytes_ = 0;
  }

  void* data() { return ptr_; }
  const void* data() const { return ptr_; }
  size_t size_bytes() const { return bytes_; }
  bool empty() const { return bytes_ == 0; }
  Device* device() const { return device_; }

 private:
  Device* device_ = nullptr;
  void* ptr_ = nullptr;
  size_t bytes_ = 0;
};

/// Typed RAII device array of trivially-copyable T.
template <typename T>
class DeviceArray {
 public:
  DeviceArray() = default;
  explicit DeviceArray(size_t n, Device& device = Device::Default())
      : buffer_(n * sizeof(T), device), size_(n) {}

  T* data() { return static_cast<T*>(buffer_.data()); }
  const T* data() const { return static_cast<const T*>(buffer_.data()); }
  size_t size() const { return size_; }
  size_t size_bytes() const { return size_ * sizeof(T); }
  bool empty() const { return size_ == 0; }

  DeviceBuffer& buffer() { return buffer_; }

 private:
  DeviceBuffer buffer_;
  size_t size_ = 0;
};

/// Copies host memory into device memory, charging the stream.
inline void CopyHostToDevice(Stream& stream, void* dst, const void* src,
                             size_t bytes) {
  std::memcpy(dst, src, bytes);
  stream.ChargeTransfer(Stream::TransferKind::kHostToDevice, bytes);
}

/// Copies device memory back to host memory, charging the stream.
inline void CopyDeviceToHost(Stream& stream, void* dst, const void* src,
                             size_t bytes) {
  std::memcpy(dst, src, bytes);
  stream.ChargeTransfer(Stream::TransferKind::kDeviceToHost, bytes);
}

/// Device-to-device copy (priced as a read+write kernel over global memory).
inline void CopyDeviceToDevice(Stream& stream, void* dst, const void* src,
                               size_t bytes) {
  std::memmove(dst, src, bytes);
  stream.ChargeTransfer(Stream::TransferKind::kDeviceToDevice, bytes);
}

/// cudaMemset equivalent: fills device memory with a byte value.
inline void MemsetDevice(Stream& stream, void* dst, int value, size_t bytes) {
  std::memset(dst, value, bytes);
  KernelStats stats;
  stats.name = "memset";
  stats.bytes_written = bytes;
  stream.ChargeKernel(stats);
}

/// Convenience: upload a host vector into a new typed device array.
template <typename T>
DeviceArray<T> ToDevice(Stream& stream, const std::vector<T>& host,
                        Device& device = Device::Default()) {
  DeviceArray<T> out(host.size(), device);
  if (!host.empty()) {
    CopyHostToDevice(stream, out.data(), host.data(), host.size() * sizeof(T));
  }
  return out;
}

/// Convenience: download a typed device array into a host vector.
template <typename T>
std::vector<T> ToHost(Stream& stream, const DeviceArray<T>& dev) {
  std::vector<T> out(dev.size());
  if (!out.empty()) {
    CopyDeviceToHost(stream, out.data(), dev.data(), dev.size() * sizeof(T));
  }
  return out;
}

}  // namespace gpusim

#endif  // GPUSIM_MEMORY_H_
