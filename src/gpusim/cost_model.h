// Analytic timing model for the simulated device.
//
// The simulator executes real algorithms functionally on the host; this model
// converts the *counted* work of each device operation (bytes touched,
// arithmetic operations, launches, transfers, compiles) into simulated device
// time. The parameters approximate a mid-range discrete GPU of the paper's
// era (GTX-1080-Ti class) attached over PCIe 3.0 x16.
#ifndef GPUSIM_COST_MODEL_H_
#define GPUSIM_COST_MODEL_H_

#include <algorithm>
#include <cstdint>

namespace gpusim {

/// Per-API-runtime overheads. CUDA-style runtimes (Thrust, ArrayFire's CUDA
/// backend) have lower launch latency than OpenCL-style ones (Boost.Compute);
/// OpenCL additionally compiles kernels from source at run time.
struct ApiProfile {
  const char* name = "cuda";
  uint64_t launch_overhead_ns = 5'000;    ///< per kernel launch
  uint64_t transfer_latency_ns = 10'000;  ///< per explicit host<->device copy
  double throughput_scale = 1.0;          ///< <1.0 models less tuned codegen
  uint64_t program_compile_ns = 0;        ///< per unique program (OpenCL JIT)

  static ApiProfile Cuda() { return ApiProfile{}; }

  static ApiProfile OpenCl() {
    ApiProfile p;
    p.name = "opencl";
    p.launch_overhead_ns = 12'000;
    p.transfer_latency_ns = 14'000;
    p.throughput_scale = 0.85;
    p.program_compile_ns = 38'000'000;  // ~38 ms per program build
    return p;
  }
};

/// Hardware parameters of the simulated device.
struct DeviceProperties {
  const char* name = "SimGPU-1080";
  int sm_count = 28;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  uint64_t global_memory_bytes = 11ull << 30;
  /// Effective global-memory bandwidth (bytes/second).
  double memory_bandwidth_bps = 420.0e9;
  /// Effective simple-op throughput (operations/second) across the device.
  double compute_throughput_ops = 9.0e12;
  /// Host<->device interconnect bandwidth (bytes/second), PCIe 3.0 x16.
  double pcie_bandwidth_bps = 12.0e9;
};

/// Work declared by one kernel launch; the cost model prices it.
struct KernelStats {
  const char* name = "kernel";
  uint64_t bytes_read = 0;     ///< global memory read by the whole grid
  uint64_t bytes_written = 0;  ///< global memory written by the whole grid
  uint64_t ops = 0;            ///< arithmetic/compare ops by the whole grid
  /// For latency-bound kernels (e.g. nested loops with divergent trip
  /// counts) the model uses max(memory, compute, serial_ns).
  uint64_t serial_ns = 0;
};

/// Prices device operations in simulated nanoseconds.
class CostModel {
 public:
  explicit CostModel(const DeviceProperties& props) : props_(props) {}

  /// Simulated duration of a kernel launch under the given API profile.
  uint64_t KernelTime(const KernelStats& s, const ApiProfile& api) const {
    const double scale = api.throughput_scale > 0 ? api.throughput_scale : 1.0;
    const double mem_ns = static_cast<double>(s.bytes_read + s.bytes_written) /
                          (props_.memory_bandwidth_bps * scale) * 1e9;
    const double compute_ns = static_cast<double>(s.ops) /
                              (props_.compute_throughput_ops * scale) * 1e9;
    const double body =
        std::max({mem_ns, compute_ns, static_cast<double>(s.serial_ns)});
    return api.launch_overhead_ns + static_cast<uint64_t>(body);
  }

  /// Simulated duration of an explicit host<->device transfer.
  uint64_t TransferTime(uint64_t bytes, const ApiProfile& api) const {
    const double body =
        static_cast<double>(bytes) / props_.pcie_bandwidth_bps * 1e9;
    return api.transfer_latency_ns + static_cast<uint64_t>(body);
  }

  /// Device-to-device copy: through global memory, both read and write.
  uint64_t DeviceCopyTime(uint64_t bytes, const ApiProfile& api) const {
    KernelStats s;
    s.bytes_read = bytes;
    s.bytes_written = bytes;
    return KernelTime(s, api);
  }

  const DeviceProperties& properties() const { return props_; }

 private:
  DeviceProperties props_;
};

}  // namespace gpusim

#endif  // GPUSIM_COST_MODEL_H_
