// Kernel launch API of the simulated device.
//
// Two launch shapes cover the algorithms in this repository:
//  * ParallelFor   — a grid of independent threads, f(i) per global index.
//  * LaunchBlocks  — a grid of cooperative thread *blocks*; the body runs
//                    once per block and may loop over the block's threads,
//                    modelling shared-memory algorithms (tile reduce, block
//                    scan, histogram) whose intra-block execution is
//                    sequentialized, which preserves semantics.
//
// Both charge the owning stream with the declared KernelStats. Grids are
// distributed over the device's host thread pool.
#ifndef GPUSIM_KERNEL_H_
#define GPUSIM_KERNEL_H_

#include <algorithm>
#include <cstddef>

#include "gpusim/launch_config.h"
#include "gpusim/stream.h"

namespace gpusim {

/// Launches `n` independent simulated threads; body(i) for i in [0, n).
/// The body must be safe to run concurrently for distinct i.
template <typename Body>
void ParallelFor(Stream& stream, size_t n, KernelStats stats, Body&& body) {
  stats.ops = std::max<uint64_t>(stats.ops, n);  // at least one op per thread
  stream.ChargeKernel(stats);
  if (n == 0) return;
  if (n <= kInlineGridThreshold) {
    // Small-grid fast path: the pool dispatch would cost more host time than
    // the loop itself. Simulated time is unaffected (charged above).
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Use coarse host-side chunks: each chunk covers many simulated blocks to
  // amortize scheduling on the host (geometry shared with the pool via
  // launch_config.h).
  const size_t chunk =
      HostChunkThreads(n, stream.device().pool().num_threads());
  const size_t num_chunks = NumHostChunks(n, chunk);
  stream.device().pool().ParallelFor(num_chunks, [&](size_t c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(begin + chunk, n);
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

/// Context passed to a block kernel body.
struct BlockContext {
  size_t block_id = 0;
  size_t num_blocks = 0;
  size_t block_size = 0;
};

/// Launches `num_blocks` cooperative blocks; body(ctx) once per block.
template <typename Body>
void LaunchBlocks(Stream& stream, size_t num_blocks, size_t block_size,
                  KernelStats stats, Body&& body) {
  stats.ops = std::max<uint64_t>(stats.ops, num_blocks * block_size);
  stream.ChargeKernel(stats);
  if (num_blocks == 0) return;
  stream.device().pool().ParallelFor(num_blocks, [&](size_t b) {
    BlockContext ctx;
    ctx.block_id = b;
    ctx.num_blocks = num_blocks;
    ctx.block_size = block_size;
    body(ctx);
  });
}

}  // namespace gpusim

#endif  // GPUSIM_KERNEL_H_
