// Deterministic fault injection for the simulated device.
//
// A FaultInjector is attached to a Device (Device::set_fault_injector) and
// consulted at the three call sites real GPU deployments fail at: device
// allocation (cudaMalloc), kernel launch, and explicit transfers (memcpy).
// When no injector is attached the hot-path cost is a single relaxed pointer
// load — the fault-free simulated timeline is bit-identical with the
// machinery compiled in (tests/timing_invariance_test.cc pins this).
//
// Rules are typed (which fault), sited (which call path), optionally scoped
// to a stream label (so one backend's streams can "die" while others stay
// healthy), and triggered either by per-stream call count (at_call /
// every_calls) or by a per-stream seeded Bernoulli draw (probability).
// Per-stream trigger state makes a stream's fault schedule a pure function
// of the seed and that stream's own call sequence, independent of how the
// host interleaves concurrent streams.
//
// DeviceLost is sticky: once fired for a label, every later check from a
// stream with that label reports DeviceLost again (an empty label kills the
// whole device) — modelling a context that never comes back.
#ifndef GPUSIM_FAULT_H_
#define GPUSIM_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gpusim {

/// A kernel launch that failed transiently (the cudaErrorLaunchFailure /
/// ECC-retry class): the same launch is expected to succeed if replayed.
class TransientKernelFault : public std::runtime_error {
 public:
  explicit TransientKernelFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// A host<->device or device<->device copy that failed transiently.
class TransferFault : public std::runtime_error {
 public:
  explicit TransferFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// The device (or one backend's view of it) is gone and will not recover —
/// the cudaErrorDevicesUnavailable / sticky-context-error class.
class DeviceLost : public std::runtime_error {
 public:
  explicit DeviceLost(const std::string& what) : std::runtime_error(what) {}
};

/// Instrumented call paths.
enum class FaultSite : uint8_t { kMalloc = 0, kKernel = 1, kTransfer = 2 };

/// Typed faults an injector can fire. kOutOfMemory maps to the existing
/// gpusim::OutOfDeviceMemory (device.h) so callers cannot tell an injected
/// OOM from a genuine capacity miss.
enum class FaultKind : uint8_t {
  kNone = 0,
  kTransientKernel,
  kTransfer,
  kOutOfMemory,
  kDeviceLost,
};

const char* FaultSiteName(FaultSite site);
const char* FaultKindName(FaultKind kind);

/// Throws the exception type mapped to `kind`; no-op for kNone.
void ThrowFault(FaultKind kind, FaultSite site);

/// One entry of a fault plan. Trigger precedence: at_call, then every_calls,
/// then probability (exactly one should be set). Counts and draws are kept
/// per stream, so concurrent streams each see a deterministic schedule.
struct FaultRule {
  FaultSite site = FaultSite::kKernel;
  FaultKind kind = FaultKind::kTransientKernel;
  /// Only streams whose label matches fire this rule; empty matches any
  /// stream. Malloc-site checks are device-scoped (label ""), so OOM rules
  /// should leave this empty.
  std::string stream_label;
  uint64_t at_call = 0;      ///< fire on the Nth matching call (1-based)
  uint64_t every_calls = 0;  ///< fire on every Nth matching call
  double probability = 0.0;  ///< per-call Bernoulli draw, seeded per stream
  int64_t max_fires = -1;    ///< total fires across all streams; -1 unlimited
};

/// One fired fault (the injector's event log).
struct InjectedFault {
  FaultSite site = FaultSite::kKernel;
  FaultKind kind = FaultKind::kNone;
  uint64_t stream_id = 0;
  std::string stream_label;
  uint64_t call_index = 0;  ///< per-stream call count at `site` when fired
  size_t rule = 0;          ///< index returned by AddRule
};

/// Plain-value counters of injector activity.
struct FaultInjectorStats {
  uint64_t checks = 0;            ///< calls inspected while attached
  uint64_t injected_kernel = 0;
  uint64_t injected_transfer = 0;
  uint64_t injected_oom = 0;
  uint64_t injected_device_lost = 0;
  uint64_t sticky_replays = 0;    ///< DeviceLost re-reported after the fire

  uint64_t injected_total() const {
    return injected_kernel + injected_transfer + injected_oom +
           injected_device_lost;
  }
};

/// Seeded, thread-safe fault plan. Attach with Device::set_fault_injector;
/// the injector must outlive its attachment.
class FaultInjector {
 public:
  /// Streams with no id (device-scoped malloc checks) use this sentinel.
  static constexpr uint64_t kDeviceScopeId = ~uint64_t{0};

  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Appends a rule; returns its index (stable, used in the event log).
  size_t AddRule(const FaultRule& rule);

  /// Consulted by the instrumented call sites. Returns the fault to fire at
  /// this call (kNone almost always). First matching rule wins; a fired
  /// DeviceLost becomes sticky for the rule's label scope.
  FaultKind Check(FaultSite site, uint64_t stream_id,
                  const std::string& stream_label);

  /// True once a sticky DeviceLost fired for `label` (or device-wide).
  bool IsLost(const std::string& label) const;

  FaultInjectorStats stats() const;
  std::vector<InjectedFault> log() const;

  /// Clears trigger state, sticky losses, stats, and the log; keeps rules.
  void Reset();

  /// Clears only the sticky DeviceLost state (device-wide and per-label) —
  /// the model of a device reset: the context comes back, but per-stream
  /// call counts, rules, stats, and the log all survive, so an `at_call`
  /// rule that already fired does not fire again while `every_calls` /
  /// `probability` rules keep drawing from the same schedule.
  void ClearStickyLoss();

 private:
  struct StreamState {
    uint64_t rng = 0;
    bool rng_seeded = false;
    std::unordered_map<size_t, uint64_t> calls;  ///< rule index -> call count
  };

  uint64_t seed_ = 0;
  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  std::vector<uint64_t> rule_fires_;
  std::unordered_map<uint64_t, StreamState> streams_;
  std::unordered_set<std::string> lost_labels_;
  bool device_lost_ = false;
  std::vector<InjectedFault> log_;
  FaultInjectorStats stats_;
};

}  // namespace gpusim

#endif  // GPUSIM_FAULT_H_
