#include "gpusim/fault.h"

#include <string>

#include "gpusim/device.h"

namespace gpusim {
namespace {

// SplitMix64: tiny, well-mixed generator; one state word per stream keeps
// probability draws independent of other streams' call interleavings.
uint64_t NextRandom(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double NextUniform(uint64_t& state) {
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kMalloc:
      return "malloc";
    case FaultSite::kKernel:
      return "kernel";
    case FaultSite::kTransfer:
      return "transfer";
  }
  return "unknown";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransientKernel:
      return "transient_kernel_fault";
    case FaultKind::kTransfer:
      return "transfer_fault";
    case FaultKind::kOutOfMemory:
      return "out_of_device_memory";
    case FaultKind::kDeviceLost:
      return "device_lost";
  }
  return "unknown";
}

void ThrowFault(FaultKind kind, FaultSite site) {
  const std::string where = FaultSiteName(site);
  switch (kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kTransientKernel:
      throw TransientKernelFault("injected transient kernel fault at " +
                                 where);
    case FaultKind::kTransfer:
      throw TransferFault("injected transfer fault at " + where);
    case FaultKind::kOutOfMemory:
      throw OutOfDeviceMemory("injected device OOM at " + where);
    case FaultKind::kDeviceLost:
      throw DeviceLost("injected device lost at " + where);
  }
}

size_t FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(rule);
  rule_fires_.push_back(0);
  return rules_.size() - 1;
}

FaultKind FaultInjector::Check(FaultSite site, uint64_t stream_id,
                               const std::string& stream_label) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.checks;

  // Sticky loss: once a label (or the whole device) is gone it stays gone.
  if (device_lost_ ||
      (!stream_label.empty() && lost_labels_.count(stream_label) != 0)) {
    ++stats_.sticky_replays;
    return FaultKind::kDeviceLost;
  }

  StreamState& st = streams_[stream_id];
  if (!st.rng_seeded) {
    st.rng = seed_ ^ (stream_id * 0xD6E8FEB86659FD93ull);
    st.rng_seeded = true;
  }

  for (size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.site != site) continue;
    if (!r.stream_label.empty() && r.stream_label != stream_label) continue;
    const uint64_t calls = ++st.calls[i];
    if (r.max_fires >= 0 &&
        rule_fires_[i] >= static_cast<uint64_t>(r.max_fires)) {
      continue;
    }
    bool fire = false;
    if (r.at_call != 0) {
      fire = calls == r.at_call;
    } else if (r.every_calls != 0) {
      fire = calls % r.every_calls == 0;
    } else if (r.probability > 0.0) {
      fire = NextUniform(st.rng) < r.probability;
    }
    if (!fire) continue;

    ++rule_fires_[i];
    switch (r.kind) {
      case FaultKind::kTransientKernel:
        ++stats_.injected_kernel;
        break;
      case FaultKind::kTransfer:
        ++stats_.injected_transfer;
        break;
      case FaultKind::kOutOfMemory:
        ++stats_.injected_oom;
        break;
      case FaultKind::kDeviceLost:
        ++stats_.injected_device_lost;
        if (r.stream_label.empty()) {
          device_lost_ = true;
        } else {
          lost_labels_.insert(r.stream_label);
        }
        break;
      case FaultKind::kNone:
        break;
    }
    InjectedFault event;
    event.site = site;
    event.kind = r.kind;
    event.stream_id = stream_id;
    event.stream_label = stream_label;
    event.call_index = calls;
    event.rule = i;
    log_.push_back(std::move(event));
    return r.kind;
  }
  return FaultKind::kNone;
}

bool FaultInjector::IsLost(const std::string& label) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (device_lost_) return true;
  return !label.empty() && lost_labels_.count(label) != 0;
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<InjectedFault> FaultInjector::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

void FaultInjector::ClearStickyLoss() {
  std::lock_guard<std::mutex> lock(mu_);
  lost_labels_.clear();
  device_lost_ = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t& fires : rule_fires_) fires = 0;
  streams_.clear();
  lost_labels_.clear();
  device_lost_ = false;
  log_.clear();
  stats_ = FaultInjectorStats{};
}

}  // namespace gpusim
