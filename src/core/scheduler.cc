#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/metrics.h"
#include "core/registry.h"

namespace core {

QueryScheduler::QueryScheduler(SchedulerOptions options)
    : options_(std::move(options)) {
  if (options_.num_clients == 0) options_.num_clients = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  resilience_ = options_.resilience != nullptr ? options_.resilience
                                               : &ResilienceManager::Global();

  // Probe the backend on the construction thread: surfaces unknown-name
  // errors eagerly and lets us refuse multi-client use of backends that
  // funnel work through process-global library state.
  auto probe = BackendRegistry::Instance().Create(options_.backend_name);
  if (options_.num_clients > 1 && !probe->concurrency_safe()) {
    throw std::invalid_argument(
        "backend '" + options_.backend_name +
        "' is not concurrency-safe; run it with num_clients == 1");
  }
  device_ = &probe->stream().device();

  client_sim_ns_.reserve(options_.num_clients);
  for (unsigned i = 0; i < options_.num_clients; ++i) {
    client_sim_ns_.push_back(std::make_unique<gpusim::PaddedCounter>());
  }
  clients_.reserve(options_.num_clients);
  for (unsigned i = 0; i < options_.num_clients; ++i) {
    clients_.emplace_back([this, i] { ClientLoop(i); });
  }
}

QueryScheduler::~QueryScheduler() { Shutdown(); }

ScheduledQueryStatus QueryScheduler::Submit(std::string label, QueryFn query,
                                            uint64_t* id) {
  return Submit(std::move(label), std::move(query), SubmitOptions{}, id);
}

ScheduledQueryStatus QueryScheduler::Submit(std::string label, QueryFn query,
                                            uint64_t footprint_bytes,
                                            uint64_t* id) {
  SubmitOptions submit;
  submit.footprint_bytes = footprint_bytes;
  return Submit(std::move(label), std::move(query), std::move(submit), id);
}

ScheduledQueryStatus QueryScheduler::Submit(std::string label, QueryFn query,
                                            SubmitOptions submit,
                                            uint64_t* id) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_not_full_.wait(lock, [&] {
    return stop_ || queue_.size() < options_.queue_capacity;
  });
  if (stop_) return ScheduledQueryStatus::kShutDown;
  if (!saw_submit_) {
    saw_submit_ = true;
    first_submit_ = std::chrono::steady_clock::now();
  }
  const uint64_t assigned = next_id_++;
  if (id != nullptr) *id = assigned;
  Item item;
  item.id = assigned;
  item.label = std::move(label);
  item.fn = std::move(query);
  item.footprint_bytes = submit.footprint_bytes;
  item.deadline_ms = submit.deadline_ms;
  item.tenant = std::move(submit.tenant);
  item.on_complete = std::move(submit.on_complete);
  item.enqueued = std::chrono::steady_clock::now();
  if (item.tenant.id >= 0 && item.tenant.weight <= 0) item.tenant.weight = 1;
  // A tenant entering (or re-entering) the backlog starts at the current
  // virtual time: idle periods bank no credit with which to flood later. A
  // tenant that already has queued work keeps its (lagging) service level —
  // that lag is exactly its earned share.
  if (item.tenant.id >= 0) {
    auto [it, inserted] =
        tenant_service_.try_emplace(item.tenant.id, virtual_time_);
    if (!inserted && tenant_queued_[item.tenant.id] == 0) {
      it->second = std::max(it->second, virtual_time_);
    }
    ++tenant_queued_[item.tenant.id];
  }
  queue_.push_back(std::move(item));
  queue_not_empty_.notify_one();
  return ScheduledQueryStatus::kAccepted;
}

bool QueryScheduler::TrySubmit(std::string label, QueryFn query,
                               uint64_t* id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ || queue_.size() >= options_.queue_capacity) return false;
  if (!saw_submit_) {
    saw_submit_ = true;
    first_submit_ = std::chrono::steady_clock::now();
  }
  const uint64_t assigned = next_id_++;
  if (id != nullptr) *id = assigned;
  Item item;
  item.id = assigned;
  item.label = std::move(label);
  item.fn = std::move(query);
  item.enqueued = std::chrono::steady_clock::now();
  queue_.push_back(std::move(item));
  queue_not_empty_.notify_one();
  return true;
}

size_t QueryScheduler::PickIndexLocked(
    std::chrono::steady_clock::time_point now) {
  // Aging first: any tagged query past its starvation bound wins outright,
  // oldest submission first, so a flood can delay a low-weight tenant by at
  // most its aging horizon plus one in-flight query.
  size_t aged = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    const Item& it = queue_[i];
    if (it.tenant.id < 0 || it.tenant.starvation_bound_ms == 0) continue;
    const double waited_ms =
        std::chrono::duration<double, std::milli>(now - it.enqueued).count();
    if (waited_ms <= static_cast<double>(it.tenant.starvation_bound_ms)) {
      continue;
    }
    if (aged == queue_.size() || it.id < queue_[aged].id) aged = i;
  }
  if (aged < queue_.size()) return aged;

  // Weighted fair share: the queued tenant with the least virtual service
  // goes next; untagged queries ride along as a shared weight-1 tenant.
  // Within a tenant — and on exact service ties — the lowest submission id
  // wins, which degenerates to strict FIFO when everything is untagged.
  size_t best = 0;
  double best_service = 0;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const Item& it = queue_[i];
    const auto found = tenant_service_.find(it.tenant.id);
    const double service =
        found != tenant_service_.end() ? found->second : virtual_time_;
    if (i == 0 || service < best_service ||
        (service == best_service && it.id < queue_[best].id)) {
      best = i;
      best_service = service;
    }
  }
  return best;
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void QueryScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && clients_.empty()) return;
    stop_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (auto& t : clients_) t.join();
  clients_.clear();
}

size_t QueryScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::vector<QueryRecord> QueryScheduler::Records() const {
  std::vector<QueryRecord> out;
  {
    std::lock_guard<std::mutex> lock(records_mu_);
    out = records_;
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.id < b.id;
            });
  return out;
}

SchedulerReport QueryScheduler::Report() const {
  SchedulerReport r;
  std::vector<double> wall, sim;
  {
    std::lock_guard<std::mutex> lock(records_mu_);
    r.completed = records_.size();
    wall.reserve(records_.size());
    sim.reserve(records_.size());
    for (const QueryRecord& q : records_) {
      if (!q.ok) ++r.failed;
      wall.push_back(q.wall_ms);
      sim.push_back(static_cast<double>(q.simulated_ns) / 1e6);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (saw_submit_ && r.completed > 0) {
      r.wall_seconds =
          std::chrono::duration<double>(last_complete_ - first_submit_)
              .count();
    }
  }
  if (r.wall_seconds > 0) {
    r.queries_per_sec = static_cast<double>(r.completed) / r.wall_seconds;
  }
  r.wall_ms = SummarizeLatencies(std::move(wall));
  r.simulated_ms = SummarizeLatencies(std::move(sim));
  r.client_simulated_ns.reserve(client_sim_ns_.size());
  for (const auto& c : client_sim_ns_) {
    r.client_simulated_ns.push_back(c->load());
  }
  r.resilience = resilience_->Snapshot();
  if (device_ != nullptr) {
    r.device_peak_bytes = device_->peak_bytes();
    r.device_reserved_bytes = device_->reserved_bytes();
    const gpusim::CounterSnapshot counters = device_->Snapshot();
    r.bytes_h2d_encoded = counters.bytes_h2d_encoded;
    r.bytes_saved_vs_raw = counters.bytes_saved_vs_raw;
  }
  if (options_.governor != nullptr) r.governor = options_.governor->Stats();
  return r;
}

void QueryScheduler::ClientLoop(unsigned client_index) {
  // Each client owns a full backend instance — and with it a private Stream
  // whose simulated timeline is independent of every other client's.
  std::unique_ptr<Backend> backend =
      BackendRegistry::Instance().Create(options_.backend_name);

  for (;;) {
    Item item;
    double queue_wait_ms = 0;
    bool aged = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_not_empty_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to serve
      const auto now = std::chrono::steady_clock::now();
      const size_t pick = PickIndexLocked(now);
      item = std::move(queue_[pick]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      queue_wait_ms =
          std::chrono::duration<double, std::milli>(now - item.enqueued)
              .count();
      aged = item.tenant.id >= 0 && item.tenant.starvation_bound_ms > 0 &&
             queue_wait_ms > static_cast<double>(item.tenant.starvation_bound_ms);
      if (item.tenant.id >= 0) {
        // Charge 1/weight of virtual service for this slot and advance the
        // global virtual time to the service level being served (start-time
        // fair queuing): newly backlogged tenants join at this level.
        auto queued_it = tenant_queued_.find(item.tenant.id);
        if (queued_it != tenant_queued_.end() && queued_it->second > 0) {
          --queued_it->second;
        }
        double& service = tenant_service_[item.tenant.id];
        virtual_time_ = std::max(virtual_time_, service);
        service += 1.0 / item.tenant.weight;
      }
      ++in_flight_;
      queue_not_full_.notify_one();
    }

    QueryRecord record;
    record.id = item.id;
    record.label = std::move(item.label);
    record.client = client_index;
    record.tenant_id = item.tenant.id;
    record.tenant = item.tenant.name;
    record.queue_wait_ms = queue_wait_ms;
    record.aged = aged;
    record.footprint_bytes = item.footprint_bytes;
    const uint64_t deadline_ms =
        item.deadline_ms != 0 ? item.deadline_ms : options_.deadline_ms;
    const RetryPolicy& retry = options_.retry;
    const uint64_t sim_start = backend->stream().now_ns();
    const auto wall_start = std::chrono::steady_clock::now();

    // Memory admission: footprint-declaring queries pass through the
    // governor on this thread before they run; a rejected query fails as a
    // resource error without ever executing. The grant lives on the client's
    // stream as a device reservation until the query finishes.
    MemoryGovernor* governor =
        item.footprint_bytes > 0 ? options_.governor : nullptr;
    bool admitted = true;
    if (governor != nullptr) {
      const AdmissionTicket ticket = governor->Admit(
          backend->stream().id(), item.footprint_bytes, deadline_ms);
      record.granted_bytes = ticket.granted_bytes;
      record.admission_wait_ms = ticket.wait_ms;
      record.admission_queued = ticket.queued;
      if (!ticket.admitted()) {
        admitted = false;
        record.ok = false;
        record.admission_rejected = true;
        record.error = "memory admission rejected (queue timeout)";
        record.error_class = ErrorClass::kResource;
        resilience_->NotePermanentFailure();
      }
    }

    // Recovery loop: transient faults retry with capped exponential backoff,
    // OutOfDeviceMemory gets TrimPool + retry (not charged against the
    // attempt budget), fatal errors fail the query immediately. Queries are
    // idempotent (QueryFn contract), so a replay recomputes from its inputs.
    for (int attempt = 1; admitted; ++attempt) {
      record.attempts = attempt;
      try {
        item.fn(*backend);
        record.ok = true;
        record.error.clear();
        break;
      } catch (...) {
        const std::exception_ptr error = std::current_exception();
        const ErrorClass cls = Classify(error);
        resilience_->NoteFaultSeen();
        record.error = ErrorMessage(error);
        record.error_class = cls;
        const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() -
                                      wall_start)
                                      .count();
        const bool within_deadline =
            deadline_ms == 0 || elapsed_ms < static_cast<double>(deadline_ms);
        // A reclaim-then-retry only makes sense while reclaiming can change
        // the memory state: the first OOM always gets one (the pool may
        // hide exactly the bytes needed, and an injected one-shot OOM is
        // indistinguishable from that), but repeats require a non-empty
        // pool — under real, persistent pressure TrimPool frees nothing and
        // the old unconditional retry was a livelock that burned the whole
        // reclaim budget. Queries built for degradation absorb recurring
        // OOM themselves by partitioning (plan/partition.h).
        if (within_deadline && cls == ErrorClass::kResource &&
            record.oom_reclaims < retry.max_reclaims &&
            (record.oom_reclaims == 0 ||
             backend->stream().device().bytes_pooled() > 0)) {
          backend->stream().device().TrimPool();
          ++record.oom_reclaims;
          resilience_->NoteOomReclaim();
          continue;
        }
        if (within_deadline && cls == ErrorClass::kTransient &&
            attempt < retry.max_attempts) {
          const uint64_t backoff = retry.BackoffNs(attempt);
          record.backoff_ns += backoff;
          resilience_->NoteRetry(backoff);
          if (backoff > 0) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
          }
          continue;
        }
        if (!within_deadline) {
          record.deadline_exceeded = true;
          resilience_->NoteDeadlineMiss();
        }
        resilience_->NotePermanentFailure();
        break;
      }
    }
    if (governor != nullptr && admitted) {
      governor->Release(backend->stream().id());
    }
    const auto wall_end = std::chrono::steady_clock::now();
    record.simulated_ns = backend->stream().now_ns() - sim_start;
    record.wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start)
            .count();
    if (record.ok && deadline_ms != 0 &&
        record.wall_ms > static_cast<double>(deadline_ms)) {
      record.deadline_exceeded = true;
      resilience_->NoteDeadlineMiss();
    }
    client_sim_ns_[client_index]->fetch_add(record.simulated_ns);

    {
      std::lock_guard<std::mutex> lock(records_mu_);
      records_.push_back(record);
    }
    if (item.on_complete) item.on_complete(record);
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_complete_ = wall_end;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
    }
  }
}

}  // namespace core
