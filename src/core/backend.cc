#include "core/backend.h"

namespace core {

const std::vector<DbOperator>& AllDbOperators() {
  static const std::vector<DbOperator>* ops = new std::vector<DbOperator>{
      DbOperator::kSelection,      DbOperator::kConjunction,
      DbOperator::kDisjunction,    DbOperator::kNestedLoopsJoin,
      DbOperator::kMergeJoin,      DbOperator::kHashJoin,
      DbOperator::kGroupedAggregation, DbOperator::kReduction,
      DbOperator::kSortByKey,      DbOperator::kSort,
      DbOperator::kPrefixSum,      DbOperator::kScatterGather,
      DbOperator::kProduct,
  };
  return *ops;
}

const char* DbOperatorName(DbOperator op) {
  switch (op) {
    case DbOperator::kSelection: return "Selection";
    case DbOperator::kConjunction: return "Conjunction";
    case DbOperator::kDisjunction: return "Disjunction";
    case DbOperator::kNestedLoopsJoin: return "Nested-Loops Join";
    case DbOperator::kMergeJoin: return "Merge Join";
    case DbOperator::kHashJoin: return "Hash Join";
    case DbOperator::kGroupedAggregation: return "Grouped Aggregation";
    case DbOperator::kReduction: return "Reduction";
    case DbOperator::kSortByKey: return "Sort by Key";
    case DbOperator::kSort: return "Sort";
    case DbOperator::kPrefixSum: return "Prefix Sum";
    case DbOperator::kScatterGather: return "Scatter & Gather";
    case DbOperator::kProduct: return "Product";
  }
  return "?";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum: return "sum";
    case AggOp::kCount: return "count";
    case AggOp::kMin: return "min";
    case AggOp::kMax: return "max";
  }
  return "?";
}

}  // namespace core
