#include "core/backend.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "gpusim/algorithms.h"
#include "gpusim/kernel.h"
#include "gpusim/memory.h"

namespace core {

const std::vector<DbOperator>& AllDbOperators() {
  static const std::vector<DbOperator>* ops = new std::vector<DbOperator>{
      DbOperator::kSelection,      DbOperator::kConjunction,
      DbOperator::kDisjunction,    DbOperator::kNestedLoopsJoin,
      DbOperator::kMergeJoin,      DbOperator::kHashJoin,
      DbOperator::kGroupedAggregation, DbOperator::kReduction,
      DbOperator::kSortByKey,      DbOperator::kSort,
      DbOperator::kPrefixSum,      DbOperator::kScatterGather,
      DbOperator::kProduct,
  };
  return *ops;
}

const char* DbOperatorName(DbOperator op) {
  switch (op) {
    case DbOperator::kSelection: return "Selection";
    case DbOperator::kConjunction: return "Conjunction";
    case DbOperator::kDisjunction: return "Disjunction";
    case DbOperator::kNestedLoopsJoin: return "Nested-Loops Join";
    case DbOperator::kMergeJoin: return "Merge Join";
    case DbOperator::kHashJoin: return "Hash Join";
    case DbOperator::kGroupedAggregation: return "Grouped Aggregation";
    case DbOperator::kReduction: return "Reduction";
    case DbOperator::kSortByKey: return "Sort by Key";
    case DbOperator::kSort: return "Sort";
    case DbOperator::kPrefixSum: return "Prefix Sum";
    case DbOperator::kScatterGather: return "Scatter & Gather";
    case DbOperator::kProduct: return "Product";
  }
  return "?";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum: return "sum";
    case AggOp::kCount: return "count";
    case AggOp::kMin: return "min";
    case AggOp::kMax: return "max";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Encoded-domain predicate rewriting
// ---------------------------------------------------------------------------

namespace {

using storage::DataType;
using storage::DeviceColumn;
using storage::EncodedDeviceColumn;
using storage::Encoding;

EncodedPredicate AlwaysTrue() {
  EncodedPredicate p;
  p.kind = EncodedPredicate::Kind::kAlwaysTrue;
  return p;
}

EncodedPredicate AlwaysFalse() {
  EncodedPredicate p;
  p.kind = EncodedPredicate::Kind::kAlwaysFalse;
  return p;
}

EncodedPredicate CodeCompare(CompareOp op, uint64_t code) {
  EncodedPredicate p;
  p.op = op;
  p.code = code;
  return p;
}

/// Canonicalizes an int64 threshold comparison into code space [0, max_code].
/// `t` is the literal translated into code space (kLt means code < t).
EncodedPredicate FoldThreshold(CompareOp op, int64_t t, uint64_t max_code) {
  switch (op) {
    case CompareOp::kLe: return FoldThreshold(CompareOp::kLt, t + 1, max_code);
    case CompareOp::kGt: return FoldThreshold(CompareOp::kGe, t + 1, max_code);
    case CompareOp::kLt:
      if (t <= 0) return AlwaysFalse();
      if (static_cast<uint64_t>(t) > max_code) return AlwaysTrue();
      return CodeCompare(CompareOp::kLt, static_cast<uint64_t>(t));
    case CompareOp::kGe:
      if (t <= 0) return AlwaysTrue();
      if (static_cast<uint64_t>(t) > max_code) return AlwaysFalse();
      return CodeCompare(CompareOp::kGe, static_cast<uint64_t>(t));
    case CompareOp::kEq:
      if (t < 0 || static_cast<uint64_t>(t) > max_code) return AlwaysFalse();
      return CodeCompare(CompareOp::kEq, static_cast<uint64_t>(t));
    case CompareOp::kNe:
      if (t < 0 || static_cast<uint64_t>(t) > max_code) return AlwaysTrue();
      return CodeCompare(CompareOp::kNe, static_cast<uint64_t>(t));
  }
  return AlwaysTrue();
}

/// Dictionary rewrite in terms of the literal's lower/upper bound rank.
/// `lb`/`ub` are lower_bound/upper_bound indexes of the literal in the
/// sorted dictionary of `n` entries; `found` whether the literal is present.
EncodedPredicate FoldDictionary(CompareOp op, size_t lb, size_t ub, bool found,
                                size_t n) {
  switch (op) {
    case CompareOp::kLt:  // value < lit <=> code < lb
      if (lb == 0) return AlwaysFalse();
      if (lb >= n) return AlwaysTrue();
      return CodeCompare(CompareOp::kLt, lb);
    case CompareOp::kGe:  // value >= lit <=> code >= lb
      if (lb == 0) return AlwaysTrue();
      if (lb >= n) return AlwaysFalse();
      return CodeCompare(CompareOp::kGe, lb);
    case CompareOp::kLe:  // value <= lit <=> code < ub
      if (ub == 0) return AlwaysFalse();
      if (ub >= n) return AlwaysTrue();
      return CodeCompare(CompareOp::kLt, ub);
    case CompareOp::kGt:  // value > lit <=> code >= ub
      if (ub == 0) return AlwaysTrue();
      if (ub >= n) return AlwaysFalse();
      return CodeCompare(CompareOp::kGe, ub);
    case CompareOp::kEq:
      return found ? CodeCompare(CompareOp::kEq, lb) : AlwaysFalse();
    case CompareOp::kNe:
      return found ? CodeCompare(CompareOp::kNe, lb) : AlwaysTrue();
  }
  return AlwaysTrue();
}

/// Ceil(log2(n)), at least 1 — probe count of a binary search over n runs.
uint64_t SearchSteps(size_t n) {
  uint64_t steps = 1;
  while ((size_t{1} << steps) < n) ++steps;
  return steps;
}

/// Device bytes one random access into the encoded payload reads.
uint64_t RandAccessBytes(const EncodedDeviceColumn& e) {
  switch (e.encoding) {
    case Encoding::kRle:
      return (SearchSteps(e.num_runs()) + 1) * sizeof(uint32_t);
    case Encoding::kDictionary:
      return sizeof(uint64_t) + storage::DataTypeSize(e.type);
    default:
      return sizeof(uint64_t);
  }
}

/// Index of the run containing `row` (rle_ends is cumulative, ascending).
size_t RunIndex(const uint32_t* ends, size_t num_runs, size_t row) {
  return static_cast<size_t>(
      std::upper_bound(ends, ends + num_runs, static_cast<uint32_t>(row)) -
      ends);
}

}  // namespace

uint64_t ScanColumnSeqBytes(const ScanColumnRef& ref) {
  if (ref.raw != nullptr) return ref.raw->byte_size();
  const EncodedDeviceColumn& e = *ref.enc;
  if (e.encoding == Encoding::kRle) {
    // Row-major access binary-searches the run ends per row.
    return ref.size() * (SearchSteps(e.num_runs()) + 1) * sizeof(uint32_t);
  }
  return e.encoded_byte_size();
}

std::function<bool(size_t)> MakeScanMatcher(const ScanColumnRef& ref,
                                            const Predicate& pred) {
  if (ref.raw != nullptr) {
    const DeviceColumn& c = *ref.raw;
    const CompareOp op = pred.op;
    switch (c.type()) {
      case DataType::kInt32: {
        const int32_t* p = c.data<int32_t>();
        const int64_t lit = pred.value_i;
        return [=](size_t i) {
          return ApplyCompareOp(op, static_cast<int64_t>(p[i]), lit);
        };
      }
      case DataType::kInt64: {
        const int64_t* p = c.data<int64_t>();
        const int64_t lit = pred.value_i;
        return [=](size_t i) { return ApplyCompareOp(op, p[i], lit); };
      }
      case DataType::kFloat64: {
        const double* p = c.data<double>();
        const double lit = pred.value_f;
        return [=](size_t i) { return ApplyCompareOp(op, p[i], lit); };
      }
      case DataType::kFloat32: {
        const float* p = c.data<float>();
        const double lit = pred.value_f;
        return [=](size_t i) {
          return ApplyCompareOp(op, static_cast<double>(p[i]), lit);
        };
      }
    }
    throw std::invalid_argument("MakeMatcher: bad column type");
  }

  const EncodedDeviceColumn& e = *ref.enc;
  if (e.encoding == Encoding::kRle) {
    // RLE holds raw values per run; the predicate applies to the run value
    // found by binary search. Still never decodes a row.
    const int32_t* vals = e.rle_values.data<int32_t>();
    const uint32_t* ends = e.rle_ends_data();
    const size_t runs = e.num_runs();
    const CompareOp op = pred.op;
    const int64_t lit = pred.value_i;
    return [=](size_t i) {
      const size_t r = RunIndex(ends, runs, i);
      return ApplyCompareOp(op, static_cast<int64_t>(vals[r]), lit);
    };
  }

  const EncodedPredicate ep = RewritePredicate(e, pred);
  const uint64_t* words = e.words_data();
  const unsigned bits = e.bit_width;
  return [=](size_t i) {
    return ep.Matches(storage::UnpackBit(words, bits, i));
  };
}

namespace {

/// Per-row decoded value of an integer-typed raw/encoded column, as int64.
std::function<int64_t(size_t)> MakeIntReader(const ScanColumnRef& ref) {
  if (ref.raw != nullptr) {
    const DeviceColumn& c = *ref.raw;
    if (c.type() == DataType::kInt32) {
      const int32_t* p = c.data<int32_t>();
      return [=](size_t i) { return static_cast<int64_t>(p[i]); };
    }
    const int64_t* p = c.data<int64_t>();
    return [=](size_t i) { return p[i]; };
  }
  const EncodedDeviceColumn& e = *ref.enc;
  switch (e.encoding) {
    case Encoding::kBitPack:
    case Encoding::kFor: {
      const uint64_t* words = e.words_data();
      const unsigned bits = e.bit_width;
      const int64_t base = e.reference;
      return [=](size_t i) {
        return base +
               static_cast<int64_t>(storage::UnpackBit(words, bits, i));
      };
    }
    case Encoding::kDictionary: {
      const uint64_t* words = e.words_data();
      const unsigned bits = e.bit_width;
      if (e.type == DataType::kInt32) {
        const int32_t* dict = e.dict.data<int32_t>();
        return [=](size_t i) {
          return static_cast<int64_t>(
              dict[storage::UnpackBit(words, bits, i)]);
        };
      }
      const int64_t* dict = e.dict.data<int64_t>();
      return [=](size_t i) {
        return dict[storage::UnpackBit(words, bits, i)];
      };
    }
    case Encoding::kRle: {
      const int32_t* vals = e.rle_values.data<int32_t>();
      const uint32_t* ends = e.rle_ends_data();
      const size_t runs = e.num_runs();
      return [=](size_t i) {
        return static_cast<int64_t>(vals[RunIndex(ends, runs, i)]);
      };
    }
    case Encoding::kNone: break;
  }
  throw std::invalid_argument("MakeIntReader: bad encoding");
}

/// Per-row decoded value of a float-typed raw/encoded column, as double.
std::function<double(size_t)> MakeFloatReader(const ScanColumnRef& ref) {
  if (ref.raw != nullptr) {
    const DeviceColumn& c = *ref.raw;
    if (c.type() == DataType::kFloat64) {
      const double* p = c.data<double>();
      return [=](size_t i) { return p[i]; };
    }
    const float* p = c.data<float>();
    return [=](size_t i) { return static_cast<double>(p[i]); };
  }
  const EncodedDeviceColumn& e = *ref.enc;
  if (e.encoding != Encoding::kDictionary) {
    throw std::invalid_argument(
        "MakeFloatReader: float columns only dictionary-encode");
  }
  const uint64_t* words = e.words_data();
  const unsigned bits = e.bit_width;
  if (e.type == DataType::kFloat64) {
    const double* dict = e.dict.data<double>();
    return [=](size_t i) {
      return dict[storage::UnpackBit(words, bits, i)];
    };
  }
  const float* dict = e.dict.data<float>();
  return [=](size_t i) {
    return static_cast<double>(dict[storage::UnpackBit(words, bits, i)]);
  };
}

bool IsFloat(DataType t) {
  return t == DataType::kFloat64 || t == DataType::kFloat32;
}

/// Library-shaped tail of a selection over per-row flags: exclusive scan,
/// count readback over the link, scatter of matching row ids.
SelectionResult FinishFlagSelection(gpusim::Stream& stream,
                                    const uint32_t* flags, size_t n) {
  gpusim::Device& device = stream.device();
  gpusim::DeviceArray<uint32_t> positions(n, device);
  gpusim::ExclusiveScan(stream, flags, positions.data(), n, uint32_t{0},
                        [](uint32_t a, uint32_t b) { return a + b; });
  uint32_t last_pos = 0, last_flag = 0;
  if (n > 0) {
    gpusim::CopyDeviceToHost(stream, &last_pos, positions.data() + n - 1,
                             sizeof(uint32_t));
    gpusim::CopyDeviceToHost(stream, &last_flag, flags + n - 1,
                             sizeof(uint32_t));
  }
  const size_t count = last_pos + last_flag;

  SelectionResult out;
  out.count = count;
  out.row_ids = DeviceColumn(DataType::kInt32, count, device);
  int32_t* rows = count > 0 ? out.row_ids.data<int32_t>() : nullptr;
  const uint32_t* pos = positions.data();
  gpusim::KernelStats stats;
  stats.name = "enc::scatter_row_ids";
  stats.bytes_read = n * 2 * sizeof(uint32_t);
  stats.bytes_written = count * sizeof(int32_t);
  gpusim::ParallelFor(stream, n, stats, [=](size_t i) {
    if (flags[i] != 0) rows[pos[i]] = static_cast<int32_t>(i);
  });
  return out;
}

}  // namespace

EncodedPredicate RewritePredicate(const EncodedDeviceColumn& column,
                                  const Predicate& pred) {
  switch (column.encoding) {
    case Encoding::kBitPack:
    case Encoding::kFor: {
      const uint64_t max_code = column.bit_width >= 64
                                    ? ~uint64_t{0}
                                    : (uint64_t{1} << column.bit_width) - 1;
      return FoldThreshold(pred.op, pred.value_i - column.reference,
                           max_code);
    }
    case Encoding::kDictionary: {
      size_t lb = 0, ub = 0, n = 0;
      bool found = false;
      if (IsFloat(column.type)) {
        const auto& dict = column.host_dict_f64;
        n = dict.size();
        lb = std::lower_bound(dict.begin(), dict.end(), pred.value_f) -
             dict.begin();
        ub = std::upper_bound(dict.begin(), dict.end(), pred.value_f) -
             dict.begin();
        found = lb < n && dict[lb] == pred.value_f;
      } else {
        const auto& dict = column.host_dict_i64;
        n = dict.size();
        lb = std::lower_bound(dict.begin(), dict.end(), pred.value_i) -
             dict.begin();
        ub = std::upper_bound(dict.begin(), dict.end(), pred.value_i) -
             dict.begin();
        found = lb < n && dict[lb] == pred.value_i;
      }
      return FoldDictionary(pred.op, lb, ub, found, n);
    }
    case Encoding::kRle:
    case Encoding::kNone:
      throw std::invalid_argument(
          "RewritePredicate: no code domain for this encoding");
  }
  throw std::invalid_argument("RewritePredicate: bad encoding");
}

// ---------------------------------------------------------------------------
// Default encoded-operator realizations (library pipeline shape)
// ---------------------------------------------------------------------------

SelectionResult Backend::SelectConjunctiveEncoded(
    const std::vector<ScanColumnRef>& columns,
    const std::vector<Predicate>& preds) {
  if (columns.empty() || columns.size() != preds.size()) {
    throw std::invalid_argument(
        "SelectConjunctiveEncoded: bad predicate list");
  }
  EncodedOpPrologue("select_conjunctive_encoded", 3);
  gpusim::Stream& s = stream();
  const size_t n = columns[0].size();

  std::vector<std::function<bool(size_t)>> matchers;
  matchers.reserve(preds.size());
  uint64_t bytes_per_scan = 0;
  for (size_t p = 0; p < preds.size(); ++p) {
    matchers.push_back(MakeScanMatcher(columns[p], preds[p]));
    bytes_per_scan += ScanColumnSeqBytes(columns[p]);
  }

  gpusim::DeviceArray<uint32_t> flags(n, s.device());
  uint32_t* f = flags.data();
  const auto* ms = matchers.data();
  const size_t num_preds = matchers.size();
  gpusim::KernelStats stats;
  stats.name = "enc::pred_flags";
  stats.bytes_read = bytes_per_scan;
  stats.bytes_written = n * sizeof(uint32_t);
  stats.ops = n * num_preds;
  gpusim::ParallelFor(s, n, stats, [=](size_t i) {
    bool keep = true;
    for (size_t p = 0; p < num_preds && keep; ++p) keep = ms[p](i);
    f[i] = keep ? 1u : 0u;
  });
  return FinishFlagSelection(s, f, n);
}

SelectionResult Backend::SelectCompareColumnsEncoded(const ScanColumnRef& a,
                                                     CompareOp op,
                                                     const ScanColumnRef& b) {
  if (IsFloat(a.type()) != IsFloat(b.type())) {
    throw std::invalid_argument(
        "SelectCompareColumnsEncoded: mixed float/int operands");
  }
  EncodedOpPrologue("select_compare_encoded", 3);
  gpusim::Stream& s = stream();
  const size_t n = a.size();

  std::function<bool(size_t)> match;
  if (IsFloat(a.type())) {
    auto ra = MakeFloatReader(a);
    auto rb = MakeFloatReader(b);
    match = [=](size_t i) { return ApplyCompareOp(op, ra(i), rb(i)); };
  } else {
    // Integer sides decode to int64 on the fly; for FOR-vs-FOR this is the
    // folded pa + (refA - refB) vs pb comparison, wide enough not to wrap.
    auto ra = MakeIntReader(a);
    auto rb = MakeIntReader(b);
    match = [=](size_t i) { return ApplyCompareOp(op, ra(i), rb(i)); };
  }

  gpusim::DeviceArray<uint32_t> flags(n, s.device());
  uint32_t* f = flags.data();
  gpusim::KernelStats stats;
  stats.name = "enc::cmp_cols_flags";
  stats.bytes_read = ScanColumnSeqBytes(a) + ScanColumnSeqBytes(b);
  stats.bytes_written = n * sizeof(uint32_t);
  gpusim::ParallelFor(s, n, stats,
                      [=](size_t i) { f[i] = match(i) ? 1u : 0u; });
  return FinishFlagSelection(s, f, n);
}

storage::DeviceColumn Backend::GatherDecode(
    const storage::EncodedDeviceColumn& src,
    const storage::DeviceColumn& indices) {
  EncodedOpPrologue("gather_decode", 1);
  gpusim::Stream& s = stream();
  const size_t m = indices.size();
  const int32_t* map = indices.data<int32_t>();
  DeviceColumn out(src.type, m, s.device());

  gpusim::KernelStats stats;
  stats.name = "enc::gather_decode";
  stats.bytes_read = m * (sizeof(int32_t) + RandAccessBytes(src));
  stats.bytes_written = m * storage::DataTypeSize(src.type);

  const ScanColumnRef ref = ScanColumnRef::Encoded(src);
  switch (src.type) {
    case DataType::kInt32: {
      auto rd = MakeIntReader(ref);
      int32_t* po = m > 0 ? out.data<int32_t>() : nullptr;
      gpusim::ParallelFor(s, m, stats, [=](size_t i) {
        po[i] = static_cast<int32_t>(rd(map[i]));
      });
      break;
    }
    case DataType::kInt64: {
      auto rd = MakeIntReader(ref);
      int64_t* po = m > 0 ? out.data<int64_t>() : nullptr;
      gpusim::ParallelFor(s, m, stats,
                          [=](size_t i) { po[i] = rd(map[i]); });
      break;
    }
    case DataType::kFloat64: {
      auto rd = MakeFloatReader(ref);
      double* po = m > 0 ? out.data<double>() : nullptr;
      gpusim::ParallelFor(s, m, stats,
                          [=](size_t i) { po[i] = rd(map[i]); });
      break;
    }
    case DataType::kFloat32: {
      auto rd = MakeFloatReader(ref);
      float* po = m > 0 ? out.data<float>() : nullptr;
      gpusim::ParallelFor(s, m, stats, [=](size_t i) {
        po[i] = static_cast<float>(rd(map[i]));
      });
      break;
    }
  }
  return out;
}

storage::DeviceColumn Backend::DecodeColumn(
    const storage::EncodedDeviceColumn& src) {
  EncodedOpPrologue("decode_column", 1);
  gpusim::Stream& s = stream();
  const size_t n = src.size;
  DeviceColumn out(src.type, n, s.device());

  gpusim::KernelStats stats;
  stats.name = "enc::decode_column";
  stats.bytes_read = src.encoded_byte_size();
  stats.bytes_written = n * storage::DataTypeSize(src.type);

  const ScanColumnRef ref = ScanColumnRef::Encoded(src);
  switch (src.type) {
    case DataType::kInt32: {
      auto rd = MakeIntReader(ref);
      int32_t* po = n > 0 ? out.data<int32_t>() : nullptr;
      gpusim::ParallelFor(s, n, stats, [=](size_t i) {
        po[i] = static_cast<int32_t>(rd(i));
      });
      break;
    }
    case DataType::kInt64: {
      auto rd = MakeIntReader(ref);
      int64_t* po = n > 0 ? out.data<int64_t>() : nullptr;
      gpusim::ParallelFor(s, n, stats, [=](size_t i) { po[i] = rd(i); });
      break;
    }
    case DataType::kFloat64: {
      auto rd = MakeFloatReader(ref);
      double* po = n > 0 ? out.data<double>() : nullptr;
      gpusim::ParallelFor(s, n, stats, [=](size_t i) { po[i] = rd(i); });
      break;
    }
    case DataType::kFloat32: {
      auto rd = MakeFloatReader(ref);
      float* po = n > 0 ? out.data<float>() : nullptr;
      gpusim::ParallelFor(s, n, stats, [=](size_t i) {
        po[i] = static_cast<float>(rd(i));
      });
      break;
    }
  }
  return out;
}

double Backend::ReduceEncoded(const storage::EncodedDeviceColumn& values,
                              AggOp op) {
  if (op == AggOp::kCount) return static_cast<double>(values.size);
  gpusim::Stream& s = stream();

  switch (values.encoding) {
    case Encoding::kRle: {
      const size_t runs = values.num_runs();
      const int32_t* vals =
          runs > 0 ? values.rle_values.data<int32_t>() : nullptr;
      if (op == AggOp::kMin || op == AggOp::kMax) {
        // Runs carry every distinct neighborhood; min/max over runs is
        // min/max over rows.
        EncodedOpPrologue("reduce_encoded_rle", 1);
        if (runs == 0) return 0.0;
        const int32_t init = op == AggOp::kMin
                                 ? std::numeric_limits<int32_t>::max()
                                 : std::numeric_limits<int32_t>::lowest();
        const AggOp aop = op;
        return static_cast<double>(gpusim::Reduce(
            s, vals, runs, init,
            [aop](int32_t a, int32_t b) {
              return aop == AggOp::kMin ? (b < a ? b : a) : (a < b ? b : a);
            },
            "enc::reduce_rle_minmax"));
      }
      // RLE-aware sum: one pass over the runs, each contributing
      // value * run_length — never touches per-row data.
      EncodedOpPrologue("reduce_encoded_rle", 2);
      if (runs == 0) return 0.0;
      const uint32_t* ends = values.rle_ends_data();
      gpusim::DeviceArray<double> contrib(runs, s.device());
      double* c = contrib.data();
      gpusim::KernelStats stats;
      stats.name = "enc::rle_run_weights";
      stats.bytes_read = runs * (sizeof(int32_t) + 2 * sizeof(uint32_t));
      stats.bytes_written = runs * sizeof(double);
      gpusim::ParallelFor(s, runs, stats, [=](size_t r) {
        const uint32_t begin = r == 0 ? 0 : ends[r - 1];
        c[r] = static_cast<double>(vals[r]) *
               static_cast<double>(ends[r] - begin);
      });
      return gpusim::Reduce(s, c, runs, 0.0,
                            [](double a, double b) { return a + b; },
                            "enc::rle_run_sum");
    }

    case Encoding::kDictionary: {
      if (op == AggOp::kMin || op == AggOp::kMax) {
        // The sorted dictionary holds only present values: min/max is its
        // first/last entry — one element over the link.
        EncodedOpPrologue("reduce_encoded_dict", 0);
        if (values.host_dict_f64.empty() && values.host_dict_i64.empty()) {
          return 0.0;
        }
        s.ChargeTransfer(gpusim::Stream::TransferKind::kDeviceToHost,
                         storage::DataTypeSize(values.type));
        if (!values.host_dict_f64.empty()) {
          return op == AggOp::kMin ? values.host_dict_f64.front()
                                   : values.host_dict_f64.back();
        }
        return static_cast<double>(op == AggOp::kMin
                                       ? values.host_dict_i64.front()
                                       : values.host_dict_i64.back());
      }
      break;  // sum: decode fallback below
    }

    case Encoding::kBitPack:
    case Encoding::kFor: {
      // Unpack codes into per-row contributions, then tree-reduce. Sum folds
      // the reference analytically: sum = n * ref + sum(codes).
      EncodedOpPrologue("reduce_encoded_packed", 2);
      const size_t n = values.size;
      if (n == 0) return 0.0;
      const uint64_t* words = values.words_data();
      const unsigned bits = values.bit_width;
      if (op == AggOp::kSum) {
        gpusim::DeviceArray<int64_t> codes(n, s.device());
        int64_t* c = codes.data();
        gpusim::KernelStats stats;
        stats.name = "enc::unpack_codes";
        stats.bytes_read = values.encoded_byte_size();
        stats.bytes_written = n * sizeof(int64_t);
        gpusim::ParallelFor(s, n, stats, [=](size_t i) {
          c[i] = static_cast<int64_t>(storage::UnpackBit(words, bits, i));
        });
        const int64_t code_sum = gpusim::Reduce(
            s, c, n, int64_t{0},
            [](int64_t a, int64_t b) { return a + b; }, "enc::code_sum");
        return static_cast<double>(code_sum) +
               static_cast<double>(n) * static_cast<double>(values.reference);
      }
      // min/max: codes are order-isomorphic to values.
      gpusim::DeviceArray<int64_t> codes(n, s.device());
      int64_t* c = codes.data();
      gpusim::KernelStats stats;
      stats.name = "enc::unpack_codes";
      stats.bytes_read = values.encoded_byte_size();
      stats.bytes_written = n * sizeof(int64_t);
      gpusim::ParallelFor(s, n, stats, [=](size_t i) {
        c[i] = static_cast<int64_t>(storage::UnpackBit(words, bits, i));
      });
      const AggOp aop = op;
      const int64_t code = gpusim::Reduce(
          s, c, n,
          aop == AggOp::kMin ? std::numeric_limits<int64_t>::max()
                             : std::numeric_limits<int64_t>::lowest(),
          [aop](int64_t a, int64_t b) {
            return aop == AggOp::kMin ? (b < a ? b : a) : (a < b ? b : a);
          },
          "enc::code_minmax");
      return static_cast<double>(values.reference + code);
    }

    case Encoding::kNone:
      throw std::invalid_argument("ReduceEncoded: column is not encoded");
  }

  // No encoded-domain shortcut (e.g. dictionary sum): decode, then reduce.
  return ReduceColumn(DecodeColumn(values), op);
}

GroupByResult Backend::GroupByAggregateEncoded(
    const storage::EncodedDeviceColumn& keys, const SelectionResult& rows,
    const storage::DeviceColumn& values, AggOp op) {
  // Library pipeline shape: the keys materialize once for the survivors
  // (reading only packed codes), then the ordinary grouped aggregation
  // runs — so only the present keys come back as groups.
  return GroupByAggregate(GatherDecode(keys, rows.row_ids), values, op);
}

}  // namespace core
