// Error taxonomy for the backend boundary.
//
// Every failure escaping a backend call is classified into one of three
// classes that decide the recovery policy (DESIGN.md "Fault model &
// resilience"):
//
//   kTransient  the same call is expected to succeed if replayed
//               (TransientKernelFault, TransferFault)        -> retry with
//               capped exponential backoff
//   kResource   the device is out of memory but reclaim can help
//               (OutOfDeviceMemory)                          -> TrimPool +
//               single retry
//   kFatal      replaying cannot help (DeviceLost, UnsupportedOperator,
//               logic errors, anything unclassified)         -> fail fast,
//               feed the backend's circuit breaker
//
// Unknown exception types default to kFatal: retrying an error we do not
// understand risks re-corrupting state, and it keeps pre-taxonomy behaviour
// (a plain std::runtime_error fails the query exactly once).
#ifndef CORE_ERROR_H_
#define CORE_ERROR_H_

#include <exception>
#include <stdexcept>
#include <string>

#include "gpusim/device.h"
#include "gpusim/fault.h"

namespace core {

enum class ErrorClass : uint8_t { kTransient = 0, kResource = 1, kFatal = 2 };

inline const char* ErrorClassName(ErrorClass c) {
  switch (c) {
    case ErrorClass::kTransient:
      return "transient";
    case ErrorClass::kResource:
      return "resource";
    case ErrorClass::kFatal:
      return "fatal";
  }
  return "unknown";
}

/// A backend failure with an explicit class, for call sites that want to
/// raise a pre-classified error instead of relying on type inspection.
class BackendError : public std::runtime_error {
 public:
  BackendError(ErrorClass error_class, const std::string& what)
      : std::runtime_error(what), class_(error_class) {}
  ErrorClass error_class() const { return class_; }

 private:
  ErrorClass class_;
};

/// Maps an in-flight exception to its ErrorClass.
inline ErrorClass Classify(std::exception_ptr error) {
  if (!error) return ErrorClass::kFatal;
  try {
    std::rethrow_exception(error);
  } catch (const BackendError& e) {
    return e.error_class();
  } catch (const gpusim::TransientKernelFault&) {
    return ErrorClass::kTransient;
  } catch (const gpusim::TransferFault&) {
    return ErrorClass::kTransient;
  } catch (const gpusim::OutOfDeviceMemory&) {
    return ErrorClass::kResource;
  } catch (const gpusim::DeviceLost&) {
    return ErrorClass::kFatal;
  } catch (...) {
    return ErrorClass::kFatal;
  }
}

/// What() of an in-flight exception, for error reporting.
inline std::string ErrorMessage(std::exception_ptr error) {
  if (!error) return "";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace core

#endif  // CORE_ERROR_H_
