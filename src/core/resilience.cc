#include "core/resilience.h"

#include "gpusim/device.h"

namespace core {

const char* CircuitStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (++denied_ >= options_.open_cooldown_checks) {
        state_ = State::kHalfOpen;
        ++half_opens_;
        return true;  // this call is the probe
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    ++closes_;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        denied_ = 0;
        ++opens_;
      }
      break;
    case State::kHalfOpen:
      // Probe failed: back to open for a fresh cooldown.
      state_ = State::kOpen;
      denied_ = 0;
      ++opens_;
      break;
    case State::kOpen:
      // In-flight work failing while open neither extends nor shortens the
      // cooldown.
      break;
  }
}

void CircuitBreaker::OnProbe(bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  if (success) {
    if (state_ != State::kClosed) {
      // Count the external probe like the breaker's own half-open cycle so
      // Snapshot()'s half_opens/closes stay an honest probe ledger.
      if (state_ == State::kOpen) ++half_opens_;
      state_ = State::kClosed;
      ++closes_;
    }
    consecutive_failures_ = 0;
  } else if (state_ != State::kOpen) {
    state_ = State::kOpen;
    denied_ = 0;
    ++opens_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

uint64_t CircuitBreaker::half_opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return half_opens_;
}

uint64_t CircuitBreaker::closes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closes_;
}

ResilienceManager& ResilienceManager::Global() {
  static ResilienceManager* manager = new ResilienceManager();
  return *manager;
}

std::string ResilienceManager::Key(const std::string& backend, int device) {
  return backend + "@" + std::to_string(device);
}

int ResilienceManager::CurrentDevice() {
  return gpusim::Device::Current().ordinal();
}

CircuitBreaker& ResilienceManager::BreakerFor(const std::string& backend,
                                              int device) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = breakers_[Key(backend, device)];
  if (!slot) slot = std::make_unique<CircuitBreaker>(breaker_options_);
  return *slot;
}

bool ResilienceManager::Allow(const std::string& backend) {
  return Allow(backend, CurrentDevice());
}

void ResilienceManager::RecordSuccess(const std::string& backend) {
  RecordSuccess(backend, CurrentDevice());
}

void ResilienceManager::RecordFailure(const std::string& backend) {
  RecordFailure(backend, CurrentDevice());
}

CircuitBreaker::State ResilienceManager::StateOf(const std::string& backend) {
  return StateOf(backend, CurrentDevice());
}

bool ResilienceManager::Allow(const std::string& backend, int device) {
  return BreakerFor(backend, device).Allow();
}

void ResilienceManager::RecordSuccess(const std::string& backend, int device) {
  BreakerFor(backend, device).RecordSuccess();
}

void ResilienceManager::RecordFailure(const std::string& backend, int device) {
  BreakerFor(backend, device).RecordFailure();
}

CircuitBreaker::State ResilienceManager::StateOf(const std::string& backend,
                                                 int device) {
  return BreakerFor(backend, device).state();
}

size_t ResilienceManager::SyncDeviceProbe(int device, bool success) {
  std::string suffix = "@";
  suffix += std::to_string(device);
  std::vector<CircuitBreaker*> matched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, breaker] : breakers_) {
      if (key.size() > suffix.size() &&
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        matched.push_back(breaker.get());
      }
    }
  }
  for (CircuitBreaker* breaker : matched) breaker->OnProbe(success);
  return matched.size();
}

ResilienceStats ResilienceManager::Snapshot() const {
  ResilienceStats stats;
  stats.faults_seen = faults_seen_.load(relaxed);
  stats.retries = retries_.load(relaxed);
  stats.backoff_ns = backoff_ns_.load(relaxed);
  stats.oom_reclaims = oom_reclaims_.load(relaxed);
  stats.deadline_misses = deadline_misses_.load(relaxed);
  stats.fallback_reroutes = reroutes_.load(relaxed);
  stats.permanent_failures = permanent_failures_.load(relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, breaker] : breakers_) {
    stats.breaker_opens += breaker->opens();
    stats.breaker_half_opens += breaker->half_opens();
    stats.breaker_closes += breaker->closes();
    if (breaker->state() != CircuitBreaker::State::kClosed) {
      stats.open_backends.push_back(name);
    }
  }
  return stats;
}

void ResilienceManager::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  breakers_.clear();
  faults_seen_.store(0, relaxed);
  retries_.store(0, relaxed);
  backoff_ns_.store(0, relaxed);
  oom_reclaims_.store(0, relaxed);
  deadline_misses_.store(0, relaxed);
  reroutes_.store(0, relaxed);
  permanent_failures_.store(0, relaxed);
}

}  // namespace core
