#include "core/governor.h"

#include <algorithm>
#include <chrono>

#include "core/metrics.h"

namespace core {

MemoryGovernor::MemoryGovernor(GovernorOptions options)
    : device_(options.device != nullptr ? options.device
                                        : &gpusim::Device::Default()),
      options_(options) {}

MemoryGovernor::~MemoryGovernor() { Shutdown(); }

AdmissionTicket MemoryGovernor::Admit(uint64_t stream_id,
                                      uint64_t footprint_bytes,
                                      uint64_t timeout_ms) {
  AdmissionTicket ticket;
  ticket.requested_bytes = footprint_bytes;

  // Single-grant cap: an oversized footprint gets the cap and must
  // partition; recomputed per call because capacity is settable.
  const double cap_f = options_.max_grant_fraction *
                       static_cast<double>(device_->memory_capacity());
  const uint64_t cap = static_cast<uint64_t>(std::max(0.0, cap_f));
  const uint64_t want = std::min<uint64_t>(footprint_bytes, cap);

  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    ++rejected_;
    return ticket;
  }

  // Fast path: nobody queued ahead of us and the reservation fits now.
  // TryReserve is called under mu_ — the device never calls back into the
  // governor, so there is no lock cycle, and holding mu_ keeps the FIFO
  // decision sequence deterministic for a fixed submission order.
  if (next_ticket_ == head_ticket_ &&
      device_->TryReserve(stream_id, want)) {
    ticket.decision = AdmissionDecision::kGranted;
    ticket.granted_bytes = want;
    ++granted_;
    if (ticket.partial()) ++partial_grants_;
    return ticket;
  }

  // Queue: strict FIFO — only the head waiter may try to reserve, so later
  // arrivals can never overtake an earlier one into a freshly-freed gap.
  ticket.queued = true;
  const uint64_t my = next_ticket_++;
  const uint64_t budget_ms =
      timeout_ms != 0 ? timeout_ms : options_.queue_timeout_ms;
  const auto deadline = start + std::chrono::milliseconds(budget_ms);

  const auto advance_head = [&] {
    ++head_ticket_;
    while (abandoned_.erase(head_ticket_) != 0) ++head_ticket_;
    cv_.notify_all();
  };

  bool admitted = false;
  for (;;) {
    if (shutdown_) break;
    if (head_ticket_ == my && device_->TryReserve(stream_id, want)) {
      admitted = true;
      break;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last attempt if memory freed up exactly at the deadline.
      if (!shutdown_ && head_ticket_ == my &&
          device_->TryReserve(stream_id, want)) {
        admitted = true;
      }
      break;
    }
  }

  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (admitted) {
    advance_head();
    ticket.decision = AdmissionDecision::kQueuedThenGranted;
    ticket.granted_bytes = want;
    ticket.wait_ms = waited_ms;
    ++queued_;
    if (ticket.partial()) ++partial_grants_;
    wait_samples_ms_.push_back(waited_ms);
  } else {
    if (head_ticket_ == my) {
      advance_head();
    } else {
      abandoned_.insert(my);
    }
    ticket.wait_ms = waited_ms;
    ++rejected_;
  }
  return ticket;
}

void MemoryGovernor::Release(uint64_t stream_id) {
  device_->ReleaseReservation(stream_id);
  std::lock_guard<std::mutex> lock(mu_);
  ++released_;
  cv_.notify_all();
}

void MemoryGovernor::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

size_t MemoryGovernor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(next_ticket_ - head_ticket_) - abandoned_.size();
}

GovernorStats MemoryGovernor::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GovernorStats s;
  s.granted = granted_;
  s.queued = queued_;
  s.rejected = rejected_;
  s.partial_grants = partial_grants_;
  s.released = released_;
  std::vector<double> sorted = wait_samples_ms_;
  std::sort(sorted.begin(), sorted.end());
  s.wait_p50_ms = PercentileOfSorted(sorted, 0.50);
  s.wait_p95_ms = PercentileOfSorted(sorted, 0.95);
  s.wait_max_ms = sorted.empty() ? 0 : sorted.back();
  return s;
}

MultiGovernor::MultiGovernor(gpusim::DeviceGroup& group,
                             GovernorOptions options) {
  governors_.reserve(static_cast<size_t>(group.size()));
  for (int i = 0; i < group.size(); ++i) {
    GovernorOptions per_device = options;
    per_device.device = &group.device(i);
    governors_.push_back(std::make_unique<MemoryGovernor>(per_device));
  }
}

AdmissionTicket MultiGovernor::Admit(int device_index, uint64_t stream_id,
                                     uint64_t footprint_bytes,
                                     uint64_t timeout_ms) {
  return governor(device_index).Admit(stream_id, footprint_bytes, timeout_ms);
}

void MultiGovernor::Release(int device_index, uint64_t stream_id) {
  governor(device_index).Release(stream_id);
}

void MultiGovernor::Shutdown() {
  for (auto& g : governors_) g->Shutdown();
}

std::vector<GovernorStats> MultiGovernor::PerDeviceStats() const {
  std::vector<GovernorStats> out;
  out.reserve(governors_.size());
  for (const auto& g : governors_) out.push_back(g->Stats());
  return out;
}

GovernorStats MultiGovernor::Stats() const {
  GovernorStats total;
  for (const auto& g : governors_) {
    const GovernorStats s = g->Stats();
    total.granted += s.granted;
    total.queued += s.queued;
    total.rejected += s.rejected;
    total.partial_grants += s.partial_grants;
    total.released += s.released;
    total.wait_p50_ms = std::max(total.wait_p50_ms, s.wait_p50_ms);
    total.wait_p95_ms = std::max(total.wait_p95_ms, s.wait_p95_ms);
    total.wait_max_ms = std::max(total.wait_max_ms, s.wait_max_ms);
  }
  return total;
}

}  // namespace core
