// Recovery policies shared by the scheduler, the Hybrid backend, and the
// plan executor.
//
// RetryPolicy      capped exponential backoff for transient faults, plus the
//                  reclaim budget for OutOfDeviceMemory (TrimPool + retry).
// CircuitBreaker   per-backend health gate: N consecutive failures open the
//                  circuit; after a cooldown counted in *denied calls* (not
//                  wall time, so runs stay deterministic) one half-open
//                  probe is admitted, and its outcome closes or re-opens
//                  the circuit.
// ResilienceManager one breaker per (backend name, device ordinal) plus
//                  process-wide ResilienceStats counters. The Hybrid
//                  dispatcher and the plan optimizer consult it to route
//                  cost dispatch around unhealthy backends; the scheduler
//                  feeds it per-query outcomes. A process-wide instance
//                  (Global()) is the default so breaker state opened by a
//                  running query is visible to the next plan optimization.
//                  Keying by device ordinal too means one device's sticky
//                  DeviceLost opens only that device's breaker — the same
//                  backend on healthy siblings of a DeviceGroup keeps
//                  serving. The single-string overloads resolve the ordinal
//                  from the calling thread's gpusim::Device::Current(), so
//                  sharded workers (which run under a DeviceGuard) are
//                  scoped automatically and single-device callers keep the
//                  exact behaviour they had (everything lands on ordinal 0).
#ifndef CORE_RESILIENCE_H_
#define CORE_RESILIENCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace core {

/// Retry budget + backoff curve for one query (or one operator).
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retry.
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is min(base << (k-1), cap).
  uint64_t backoff_base_ns = 1'000'000;  // 1 ms
  uint64_t backoff_cap_ns = 8'000'000;   // 8 ms
  /// TrimPool-and-retry budget per query for OutOfDeviceMemory. These
  /// retries are not counted against max_attempts.
  int max_reclaims = 1;

  /// Backoff to sleep after the `failed_attempts`-th failed attempt.
  uint64_t BackoffNs(int failed_attempts) const {
    if (failed_attempts < 1 || backoff_base_ns == 0) return 0;
    uint64_t backoff = backoff_base_ns;
    for (int i = 1; i < failed_attempts && backoff < backoff_cap_ns; ++i) {
      backoff <<= 1;
    }
    return backoff < backoff_cap_ns ? backoff : backoff_cap_ns;
  }
};

struct CircuitBreakerOptions {
  /// Consecutive failures that open the circuit.
  int failure_threshold = 3;
  /// Denied Allow() calls before one half-open probe is admitted. Counted
  /// in calls rather than wall time so chaos runs are deterministic.
  int open_cooldown_checks = 16;
};

/// Health gate for one backend. Thread-safe.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  /// True if a call may be routed to this backend right now. While open,
  /// each denial counts toward the cooldown; the call that exhausts it is
  /// admitted as the half-open probe.
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  /// Applies the outcome of an *external* health probe (the DeviceGroup's
  /// Probe kernel) as if it were this breaker's own half-open probe: success
  /// closes the circuit from any non-closed state (counted as a half-open
  /// then a close, so the stats read like the breaker's own probe cycle);
  /// failure re-opens it with a fresh cooldown. Closed circuits are
  /// untouched on success.
  void OnProbe(bool success);

  State state() const;
  uint64_t opens() const;
  uint64_t half_opens() const;
  uint64_t closes() const;

 private:
  mutable std::mutex mu_;
  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int denied_ = 0;
  uint64_t opens_ = 0;
  uint64_t half_opens_ = 0;
  uint64_t closes_ = 0;
};

const char* CircuitStateName(CircuitBreaker::State state);

/// Aggregate resilience counters (plain values, safe to copy around).
struct ResilienceStats {
  uint64_t faults_seen = 0;      ///< exceptions caught at a resilience boundary
  uint64_t retries = 0;          ///< replays after a transient fault
  uint64_t backoff_ns = 0;       ///< total backoff slept before retries
  uint64_t oom_reclaims = 0;     ///< TrimPool-then-retry recoveries
  uint64_t deadline_misses = 0;  ///< queries past their deadline
  uint64_t fallback_reroutes = 0;  ///< ops re-routed to another backend
  uint64_t permanent_failures = 0;  ///< queries failed after all recovery
  uint64_t breaker_opens = 0;
  uint64_t breaker_half_opens = 0;
  uint64_t breaker_closes = 0;
  /// Circuits not closed right now, as "backend@ordinal" keys.
  std::vector<std::string> open_backends;
};

/// One CircuitBreaker per (backend name, device ordinal) + shared
/// ResilienceStats counters. Thread-safe; breakers are created on first
/// touch.
class ResilienceManager {
 public:
  explicit ResilienceManager(CircuitBreakerOptions breaker_options = {})
      : breaker_options_(breaker_options) {}

  /// Process-wide instance used by default everywhere.
  static ResilienceManager& Global();

  /// Single-string overloads resolve the device ordinal from the calling
  /// thread's current gpusim device (0 outside any DeviceGuard).
  bool Allow(const std::string& backend);
  void RecordSuccess(const std::string& backend);
  void RecordFailure(const std::string& backend);
  CircuitBreaker::State StateOf(const std::string& backend);

  /// Explicit-ordinal overloads for callers that track fleet health for a
  /// device other than the thread's current one (the serving tier's
  /// admission gate, tests).
  bool Allow(const std::string& backend, int device);
  void RecordSuccess(const std::string& backend, int device);
  void RecordFailure(const std::string& backend, int device);
  CircuitBreaker::State StateOf(const std::string& backend, int device);

  /// Propagates a DeviceGroup probe outcome to EVERY breaker keyed to that
  /// ordinal ("*@device"): a healed device heals all its backends' breakers
  /// at once, a failed probe re-opens them. Returns the number of breakers
  /// touched. Breakers are only created by traffic, so a device nobody has
  /// used has none to sync — that is fine.
  size_t SyncDeviceProbe(int device, bool success);

  void NoteFaultSeen() { faults_seen_.fetch_add(1, relaxed); }
  void NoteRetry(uint64_t backoff_ns) {
    retries_.fetch_add(1, relaxed);
    backoff_ns_.fetch_add(backoff_ns, relaxed);
  }
  void NoteOomReclaim() { oom_reclaims_.fetch_add(1, relaxed); }
  void NoteDeadlineMiss() { deadline_misses_.fetch_add(1, relaxed); }
  void NoteReroute() { reroutes_.fetch_add(1, relaxed); }
  void NotePermanentFailure() { permanent_failures_.fetch_add(1, relaxed); }

  ResilienceStats Snapshot() const;

  /// Drops all breakers and zeroes the counters (tests and benches; the
  /// process-wide instance is shared state).
  void Reset();

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  /// Composes the breaker key "backend@ordinal".
  static std::string Key(const std::string& backend, int device);
  /// The calling thread's device ordinal (Current device, 0 by default).
  static int CurrentDevice();

  CircuitBreaker& BreakerFor(const std::string& backend, int device);

  CircuitBreakerOptions breaker_options_;
  mutable std::mutex mu_;  // guards breakers_ (map shape only)
  std::unordered_map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::atomic<uint64_t> faults_seen_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> backoff_ns_{0};
  std::atomic<uint64_t> oom_reclaims_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> reroutes_{0};
  std::atomic<uint64_t> permanent_failures_{0};
};

}  // namespace core

#endif  // CORE_RESILIENCE_H_
