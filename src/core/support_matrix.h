// Regenerates Table II: mapping of library functions to database operators.
#ifndef CORE_SUPPORT_MATRIX_H_
#define CORE_SUPPORT_MATRIX_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/backend.h"

namespace core {

/// One row of Table II for one backend.
struct SupportEntry {
  DbOperator op;
  std::string backend;
  OperatorRealization realization;
};

/// Queries each named backend for its realization of every operator.
std::vector<SupportEntry> BuildSupportMatrix(
    const std::vector<std::string>& backend_names);

/// Prints the matrix in the paper's Table II layout: one row per operator,
/// one (support, function) column pair per backend.
void PrintSupportMatrix(std::ostream& os,
                        const std::vector<std::string>& backend_names);

}  // namespace core

#endif  // CORE_SUPPORT_MATRIX_H_
