// The operator framework — the paper's contribution.
//
// A Backend realizes the column-oriented database operators of Table II
// (selection, conjunctive/disjunctive selection, joins, grouped aggregation,
// reduction, sort, sort-by-key, prefix sum, scatter/gather, product) using
// exactly the library functions the paper maps them to. New libraries plug
// in by implementing this interface and registering a factory
// (core/registry.h), which is the framework capability the paper describes:
// "a framework ... that allows a user to plug-in new libraries and
// custom-written code".
#ifndef CORE_BACKEND_H_
#define CORE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/stream.h"
#include "storage/device_column.h"
#include "storage/encoded_column.h"

namespace core {

/// Database operators studied by the paper (rows of Table II).
enum class DbOperator {
  kSelection,
  kConjunction,
  kDisjunction,
  kNestedLoopsJoin,
  kMergeJoin,
  kHashJoin,
  kGroupedAggregation,
  kReduction,
  kSortByKey,
  kSort,
  kPrefixSum,
  kScatterGather,
  kProduct,
};

/// All operators in Table II row order.
const std::vector<DbOperator>& AllDbOperators();

/// Human-readable operator name ("Selection", "Hash Join", ...).
const char* DbOperatorName(DbOperator op);

/// Support levels from Table II: + full, ~ partial, – none.
enum class SupportLevel { kFull, kPartial, kNone };

inline const char* SupportLevelSymbol(SupportLevel s) {
  switch (s) {
    case SupportLevel::kFull: return "+";
    case SupportLevel::kPartial: return "~";
    case SupportLevel::kNone: return "-";
  }
  return "?";
}

/// How a backend realizes one operator: support level plus the library
/// functions used (the Function column of Table II).
struct OperatorRealization {
  SupportLevel level = SupportLevel::kNone;
  std::string functions;  ///< e.g. "transform() & exclusive_scan() & gather()"
};

/// Comparison operators for selection predicates.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// Aggregation functions for reductions and grouped aggregation.
enum class AggOp { kSum, kCount, kMin, kMax };

/// Display symbols ("<=", "sum", ...) for EXPLAIN-style output.
const char* CompareOpName(CompareOp op);
const char* AggOpName(AggOp op);

/// Evaluates `a <op> b` for ordered operand types.
template <typename T>
inline bool ApplyCompareOp(CompareOp op, T a, T b) {
  switch (op) {
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a <= b;
    case CompareOp::kGt: return a > b;
    case CompareOp::kGe: return a >= b;
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
  }
  return false;
}

/// A predicate `column <op> value` on a named column. The literal carries
/// both integral and floating representations; backends pick per column type.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kLt;
  double value_f = 0.0;
  int64_t value_i = 0;

  static Predicate LessThan(std::string col, double v) {
    return Make(std::move(col), CompareOp::kLt, v);
  }
  static Predicate Make(std::string col, CompareOp op, double v) {
    Predicate p;
    p.column = std::move(col);
    p.op = op;
    p.value_f = v;
    p.value_i = static_cast<int64_t>(v);
    return p;
  }
};

/// A scan input that is either a raw device column or an encoded one.
/// Exactly one of the pointers is set.
struct ScanColumnRef {
  const storage::DeviceColumn* raw = nullptr;
  const storage::EncodedDeviceColumn* enc = nullptr;

  static ScanColumnRef Raw(const storage::DeviceColumn& c) {
    ScanColumnRef r;
    r.raw = &c;
    return r;
  }
  static ScanColumnRef Encoded(const storage::EncodedDeviceColumn& c) {
    ScanColumnRef r;
    r.enc = &c;
    return r;
  }

  size_t size() const { return raw != nullptr ? raw->size() : enc->size; }
  storage::DataType type() const {
    return raw != nullptr ? raw->type() : enc->type;
  }
  /// Device bytes a full scan of this column reads.
  uint64_t scan_bytes() const {
    return raw != nullptr ? raw->byte_size() : enc->encoded_byte_size();
  }
};

/// A predicate rewritten into the encoded code domain. Because all packed
/// encodings (bit-pack, FOR, sorted dictionary) are order-isomorphic to the
/// decoded values, `column <op> literal` constant-folds into a comparison
/// against a code threshold — or vanishes entirely when the literal falls
/// outside the column's frame.
struct EncodedPredicate {
  enum class Kind { kAlwaysTrue, kAlwaysFalse, kCodeCompare };
  Kind kind = Kind::kCodeCompare;
  CompareOp op = CompareOp::kLt;  ///< canonical: kLt, kGe, kEq, or kNe
  uint64_t code = 0;              ///< folded threshold in code space

  bool Matches(uint64_t c) const {
    if (kind == Kind::kAlwaysTrue) return true;
    if (kind == Kind::kAlwaysFalse) return false;
    return ApplyCompareOp(op, c, code);
  }
};

/// Folds `pred` through the column's encoding (host-side metadata only;
/// nothing is decoded). Valid for kBitPack/kFor/kDictionary columns.
EncodedPredicate RewritePredicate(const storage::EncodedDeviceColumn& column,
                                  const Predicate& pred);

/// Kernel building blocks for encoded scans, shared by backends that fuse
/// their own selection kernels: a per-row matcher evaluating `pred` against
/// a raw or encoded scan column (predicates on packed encodings go through
/// RewritePredicate; RLE binary-searches its run ends), and the device bytes
/// one sequential scan of the column reads.
std::function<bool(size_t)> MakeScanMatcher(const ScanColumnRef& ref,
                                            const Predicate& pred);
uint64_t ScanColumnSeqBytes(const ScanColumnRef& ref);

/// Result of a selection: matching row ids (int32, device-resident).
struct SelectionResult {
  storage::DeviceColumn row_ids;  ///< DataType::kInt32
  size_t count = 0;
};

/// Result of a join: matching row-id pairs.
struct JoinResult {
  storage::DeviceColumn left_rows;   ///< kInt32
  storage::DeviceColumn right_rows;  ///< kInt32
  size_t count = 0;
};

/// Result of grouped aggregation: group keys plus one aggregate column.
struct GroupByResult {
  storage::DeviceColumn keys;       ///< same type as input keys
  storage::DeviceColumn aggregate;  ///< kFloat64 for sum/min/max, kInt64 count
  size_t num_groups = 0;
};

/// Thrown when an operator has no realization in a library (Table II "-"),
/// e.g. hash join in all three libraries.
class UnsupportedOperator : public std::runtime_error {
 public:
  UnsupportedOperator(const std::string& backend, DbOperator op)
      : std::runtime_error("operator '" + std::string(DbOperatorName(op)) +
                           "' is not supported by backend '" + backend + "'") {
  }
};

/// A pluggable library binding realizing the Table II operator set.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Library name as in the paper ("Thrust", "Boost.Compute", "ArrayFire",
  /// "Handwritten").
  virtual std::string name() const = 0;

  /// The stream all of this backend's work is charged to.
  virtual gpusim::Stream& stream() = 0;

  /// Whether independent instances of this backend can run on separate host
  /// threads at once. Backends whose underlying library routes work through
  /// process-global state (e.g. ArrayFire's implicit global JIT stream)
  /// return false; the QueryScheduler refuses to run them multi-client.
  virtual bool concurrency_safe() const { return true; }

  /// Table II entry for `op`.
  virtual OperatorRealization Realization(DbOperator op) const = 0;

  // -- Selection ----------------------------------------------------------

  /// Single-predicate selection; returns matching row ids.
  virtual SelectionResult Select(const storage::DeviceColumn& column,
                                 const Predicate& pred) = 0;

  /// Conjunctive selection over per-column predicates (pred[i] applies to
  /// columns[i]); all must hold.
  virtual SelectionResult SelectConjunctive(
      const std::vector<const storage::DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) = 0;

  /// Disjunctive selection; any predicate may hold.
  virtual SelectionResult SelectDisjunctive(
      const std::vector<const storage::DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) = 0;

  /// Column-vs-column selection: row ids where `a[i] <op> b[i]` (same-typed
  /// columns). Used for e.g. TPC-H Q4's l_commitdate < l_receiptdate.
  virtual SelectionResult SelectCompareColumns(const storage::DeviceColumn& a,
                                               CompareOp op,
                                               const storage::DeviceColumn& b) = 0;

  // -- Joins ---------------------------------------------------------------

  /// Equi-join via nested loops (the only join all libraries can express).
  /// Keys must be kInt32.
  virtual JoinResult NestedLoopsJoin(const storage::DeviceColumn& left_keys,
                                     const storage::DeviceColumn& right_keys) = 0;

  /// Hash equi-join (left side unique keys). Libraries lack hashing; only
  /// the handwritten backend overrides this.
  virtual JoinResult HashJoin(const storage::DeviceColumn& left_keys,
                              const storage::DeviceColumn& right_keys) {
    (void)right_keys;
    (void)left_keys;
    throw UnsupportedOperator(name(), DbOperator::kHashJoin);
  }

  /// Sort-merge join; unsupported everywhere (Table II).
  virtual JoinResult MergeJoin(const storage::DeviceColumn& left_keys,
                               const storage::DeviceColumn& right_keys) {
    (void)right_keys;
    (void)left_keys;
    throw UnsupportedOperator(name(), DbOperator::kMergeJoin);
  }

  // -- Aggregation ---------------------------------------------------------

  /// Grouped aggregation of `values` by kInt32 `keys` (arbitrary key order;
  /// backends sort or hash as their library dictates). kCount ignores
  /// `values`' contents.
  virtual GroupByResult GroupByAggregate(const storage::DeviceColumn& keys,
                                         const storage::DeviceColumn& values,
                                         AggOp op) = 0;

  /// Full-column reduction; result as double (count as exact integer value).
  virtual double ReduceColumn(const storage::DeviceColumn& values,
                              AggOp op) = 0;

  // -- Sorting -------------------------------------------------------------

  /// Ascending sort; returns a new sorted column.
  virtual storage::DeviceColumn Sort(const storage::DeviceColumn& column) = 0;

  /// Key-value sort; returns (sorted keys, reordered values).
  virtual std::pair<storage::DeviceColumn, storage::DeviceColumn> SortByKey(
      const storage::DeviceColumn& keys,
      const storage::DeviceColumn& values) = 0;

  /// Distinct values, ascending (duplicate elimination; sorts internally).
  /// Used to realize semi-joins (e.g. TPC-H Q4's EXISTS).
  virtual storage::DeviceColumn Unique(const storage::DeviceColumn& column) = 0;

  // -- Parallel primitives (materialization) --------------------------------

  /// Exclusive prefix sum.
  virtual storage::DeviceColumn PrefixSum(
      const storage::DeviceColumn& column) = 0;

  /// out[i] = src[indices[i]]; indices kInt32.
  virtual storage::DeviceColumn Gather(const storage::DeviceColumn& src,
                                       const storage::DeviceColumn& indices) = 0;

  /// out[indices[i]] = src[i]; out has out_size rows (zero-initialized).
  virtual storage::DeviceColumn Scatter(const storage::DeviceColumn& src,
                                        const storage::DeviceColumn& indices,
                                        size_t out_size) = 0;

  /// Element-wise product (projection arithmetic), same-typed columns.
  virtual storage::DeviceColumn Product(const storage::DeviceColumn& a,
                                        const storage::DeviceColumn& b) = 0;

  /// out[i] = a[i] + alpha (projection arithmetic, e.g. 1 + l_tax).
  virtual storage::DeviceColumn AddScalar(const storage::DeviceColumn& a,
                                          double alpha) = 0;

  /// out[i] = alpha - a[i] (projection arithmetic, e.g. 1 - l_discount).
  virtual storage::DeviceColumn SubtractFromScalar(
      double alpha, const storage::DeviceColumn& a) = 0;

  // -- Encoded-domain operators --------------------------------------------
  //
  // The compressed-scan path: predicates are constant-folded into code-space
  // comparisons (RewritePredicate), the selection kernels read only the
  // encoded payload, and survivors are decoded late by GatherDecode. The
  // base-class defaults realize the library pipeline shape (flags ->
  // exclusive scan -> scatter, with the count read back over PCIe); backends
  // override to reflect their own idiom and pricing.

  /// Conjunctive selection over mixed raw/encoded scan columns. Predicates
  /// on encoded columns are evaluated in the encoded domain; nothing is
  /// decoded.
  virtual SelectionResult SelectConjunctiveEncoded(
      const std::vector<ScanColumnRef>& columns,
      const std::vector<Predicate>& preds);

  /// Column-vs-column selection where either side may be encoded (e.g. Q4's
  /// l_commitdate < l_receiptdate with both dates frame-of-reference
  /// encoded: the comparison folds to pa + (refA - refB) vs pb in int64).
  virtual SelectionResult SelectCompareColumnsEncoded(const ScanColumnRef& a,
                                                      CompareOp op,
                                                      const ScanColumnRef& b);

  /// Late materialization: out[i] = decode(src[indices[i]]). Reads only the
  /// codes (or RLE runs, via binary search) for the surviving rows.
  virtual storage::DeviceColumn GatherDecode(
      const storage::EncodedDeviceColumn& src,
      const storage::DeviceColumn& indices);

  /// Full decode of an encoded column to its logical type (the fallback for
  /// operators with no encoded-domain realization, e.g. a join build side).
  virtual storage::DeviceColumn DecodeColumn(
      const storage::EncodedDeviceColumn& src);

  /// Encoded-domain reduction. RLE sums run as one pass over the runs
  /// (sum += value * run_length); dictionary min/max touch only the
  /// dictionary. Falls back to DecodeColumn + ReduceColumn where no
  /// encoded-domain shortcut exists.
  virtual double ReduceEncoded(const storage::EncodedDeviceColumn& values,
                               AggOp op);

  /// Grouped aggregation whose keys never decode: group codes are read
  /// straight from the packed payload for the selected rows (`rows.row_ids`
  /// aligned with `values`), and each output group carries the decoded key
  /// value. Realizations over a small dense code domain may return EVERY
  /// code as a group, including ones absent from the selection (identity
  /// aggregate, zero count) — callers must treat absent and empty groups
  /// alike. The default decodes the surviving keys (one gather-decode
  /// kernel) and runs the ordinary grouped aggregation.
  virtual GroupByResult GroupByAggregateEncoded(
      const storage::EncodedDeviceColumn& keys, const SelectionResult& rows,
      const storage::DeviceColumn& values, AggOp op);

 protected:
  /// Per-operator hook the defaults call once before launching encoded
  /// kernels; backends charge their library's fixed costs here (OpenCL
  /// program compiles, lazy-JIT graph nodes). `kernels` is the number of
  /// device kernels the default pipeline will launch for the op.
  virtual void EncodedOpPrologue(const char* op, int kernels) {
    (void)op;
    (void)kernels;
  }
};

}  // namespace core

#endif  // CORE_BACKEND_H_
