// The operator framework — the paper's contribution.
//
// A Backend realizes the column-oriented database operators of Table II
// (selection, conjunctive/disjunctive selection, joins, grouped aggregation,
// reduction, sort, sort-by-key, prefix sum, scatter/gather, product) using
// exactly the library functions the paper maps them to. New libraries plug
// in by implementing this interface and registering a factory
// (core/registry.h), which is the framework capability the paper describes:
// "a framework ... that allows a user to plug-in new libraries and
// custom-written code".
#ifndef CORE_BACKEND_H_
#define CORE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/stream.h"
#include "storage/device_column.h"

namespace core {

/// Database operators studied by the paper (rows of Table II).
enum class DbOperator {
  kSelection,
  kConjunction,
  kDisjunction,
  kNestedLoopsJoin,
  kMergeJoin,
  kHashJoin,
  kGroupedAggregation,
  kReduction,
  kSortByKey,
  kSort,
  kPrefixSum,
  kScatterGather,
  kProduct,
};

/// All operators in Table II row order.
const std::vector<DbOperator>& AllDbOperators();

/// Human-readable operator name ("Selection", "Hash Join", ...).
const char* DbOperatorName(DbOperator op);

/// Support levels from Table II: + full, ~ partial, – none.
enum class SupportLevel { kFull, kPartial, kNone };

inline const char* SupportLevelSymbol(SupportLevel s) {
  switch (s) {
    case SupportLevel::kFull: return "+";
    case SupportLevel::kPartial: return "~";
    case SupportLevel::kNone: return "-";
  }
  return "?";
}

/// How a backend realizes one operator: support level plus the library
/// functions used (the Function column of Table II).
struct OperatorRealization {
  SupportLevel level = SupportLevel::kNone;
  std::string functions;  ///< e.g. "transform() & exclusive_scan() & gather()"
};

/// Comparison operators for selection predicates.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// Aggregation functions for reductions and grouped aggregation.
enum class AggOp { kSum, kCount, kMin, kMax };

/// Display symbols ("<=", "sum", ...) for EXPLAIN-style output.
const char* CompareOpName(CompareOp op);
const char* AggOpName(AggOp op);

/// A predicate `column <op> value` on a named column. The literal carries
/// both integral and floating representations; backends pick per column type.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kLt;
  double value_f = 0.0;
  int64_t value_i = 0;

  static Predicate LessThan(std::string col, double v) {
    return Make(std::move(col), CompareOp::kLt, v);
  }
  static Predicate Make(std::string col, CompareOp op, double v) {
    Predicate p;
    p.column = std::move(col);
    p.op = op;
    p.value_f = v;
    p.value_i = static_cast<int64_t>(v);
    return p;
  }
};

/// Result of a selection: matching row ids (int32, device-resident).
struct SelectionResult {
  storage::DeviceColumn row_ids;  ///< DataType::kInt32
  size_t count = 0;
};

/// Result of a join: matching row-id pairs.
struct JoinResult {
  storage::DeviceColumn left_rows;   ///< kInt32
  storage::DeviceColumn right_rows;  ///< kInt32
  size_t count = 0;
};

/// Result of grouped aggregation: group keys plus one aggregate column.
struct GroupByResult {
  storage::DeviceColumn keys;       ///< same type as input keys
  storage::DeviceColumn aggregate;  ///< kFloat64 for sum/min/max, kInt64 count
  size_t num_groups = 0;
};

/// Thrown when an operator has no realization in a library (Table II "-"),
/// e.g. hash join in all three libraries.
class UnsupportedOperator : public std::runtime_error {
 public:
  UnsupportedOperator(const std::string& backend, DbOperator op)
      : std::runtime_error("operator '" + std::string(DbOperatorName(op)) +
                           "' is not supported by backend '" + backend + "'") {
  }
};

/// A pluggable library binding realizing the Table II operator set.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Library name as in the paper ("Thrust", "Boost.Compute", "ArrayFire",
  /// "Handwritten").
  virtual std::string name() const = 0;

  /// The stream all of this backend's work is charged to.
  virtual gpusim::Stream& stream() = 0;

  /// Whether independent instances of this backend can run on separate host
  /// threads at once. Backends whose underlying library routes work through
  /// process-global state (e.g. ArrayFire's implicit global JIT stream)
  /// return false; the QueryScheduler refuses to run them multi-client.
  virtual bool concurrency_safe() const { return true; }

  /// Table II entry for `op`.
  virtual OperatorRealization Realization(DbOperator op) const = 0;

  // -- Selection ----------------------------------------------------------

  /// Single-predicate selection; returns matching row ids.
  virtual SelectionResult Select(const storage::DeviceColumn& column,
                                 const Predicate& pred) = 0;

  /// Conjunctive selection over per-column predicates (pred[i] applies to
  /// columns[i]); all must hold.
  virtual SelectionResult SelectConjunctive(
      const std::vector<const storage::DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) = 0;

  /// Disjunctive selection; any predicate may hold.
  virtual SelectionResult SelectDisjunctive(
      const std::vector<const storage::DeviceColumn*>& columns,
      const std::vector<Predicate>& preds) = 0;

  /// Column-vs-column selection: row ids where `a[i] <op> b[i]` (same-typed
  /// columns). Used for e.g. TPC-H Q4's l_commitdate < l_receiptdate.
  virtual SelectionResult SelectCompareColumns(const storage::DeviceColumn& a,
                                               CompareOp op,
                                               const storage::DeviceColumn& b) = 0;

  // -- Joins ---------------------------------------------------------------

  /// Equi-join via nested loops (the only join all libraries can express).
  /// Keys must be kInt32.
  virtual JoinResult NestedLoopsJoin(const storage::DeviceColumn& left_keys,
                                     const storage::DeviceColumn& right_keys) = 0;

  /// Hash equi-join (left side unique keys). Libraries lack hashing; only
  /// the handwritten backend overrides this.
  virtual JoinResult HashJoin(const storage::DeviceColumn& left_keys,
                              const storage::DeviceColumn& right_keys) {
    (void)right_keys;
    (void)left_keys;
    throw UnsupportedOperator(name(), DbOperator::kHashJoin);
  }

  /// Sort-merge join; unsupported everywhere (Table II).
  virtual JoinResult MergeJoin(const storage::DeviceColumn& left_keys,
                               const storage::DeviceColumn& right_keys) {
    (void)right_keys;
    (void)left_keys;
    throw UnsupportedOperator(name(), DbOperator::kMergeJoin);
  }

  // -- Aggregation ---------------------------------------------------------

  /// Grouped aggregation of `values` by kInt32 `keys` (arbitrary key order;
  /// backends sort or hash as their library dictates). kCount ignores
  /// `values`' contents.
  virtual GroupByResult GroupByAggregate(const storage::DeviceColumn& keys,
                                         const storage::DeviceColumn& values,
                                         AggOp op) = 0;

  /// Full-column reduction; result as double (count as exact integer value).
  virtual double ReduceColumn(const storage::DeviceColumn& values,
                              AggOp op) = 0;

  // -- Sorting -------------------------------------------------------------

  /// Ascending sort; returns a new sorted column.
  virtual storage::DeviceColumn Sort(const storage::DeviceColumn& column) = 0;

  /// Key-value sort; returns (sorted keys, reordered values).
  virtual std::pair<storage::DeviceColumn, storage::DeviceColumn> SortByKey(
      const storage::DeviceColumn& keys,
      const storage::DeviceColumn& values) = 0;

  /// Distinct values, ascending (duplicate elimination; sorts internally).
  /// Used to realize semi-joins (e.g. TPC-H Q4's EXISTS).
  virtual storage::DeviceColumn Unique(const storage::DeviceColumn& column) = 0;

  // -- Parallel primitives (materialization) --------------------------------

  /// Exclusive prefix sum.
  virtual storage::DeviceColumn PrefixSum(
      const storage::DeviceColumn& column) = 0;

  /// out[i] = src[indices[i]]; indices kInt32.
  virtual storage::DeviceColumn Gather(const storage::DeviceColumn& src,
                                       const storage::DeviceColumn& indices) = 0;

  /// out[indices[i]] = src[i]; out has out_size rows (zero-initialized).
  virtual storage::DeviceColumn Scatter(const storage::DeviceColumn& src,
                                        const storage::DeviceColumn& indices,
                                        size_t out_size) = 0;

  /// Element-wise product (projection arithmetic), same-typed columns.
  virtual storage::DeviceColumn Product(const storage::DeviceColumn& a,
                                        const storage::DeviceColumn& b) = 0;

  /// out[i] = a[i] + alpha (projection arithmetic, e.g. 1 + l_tax).
  virtual storage::DeviceColumn AddScalar(const storage::DeviceColumn& a,
                                          double alpha) = 0;

  /// out[i] = alpha - a[i] (projection arithmetic, e.g. 1 - l_discount).
  virtual storage::DeviceColumn SubtractFromScalar(
      double alpha, const storage::DeviceColumn& a) = 0;
};

}  // namespace core

#endif  // CORE_BACKEND_H_
