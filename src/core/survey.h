// Regenerates Table I: the survey of GPU libraries and their properties.
#ifndef CORE_SURVEY_H_
#define CORE_SURVEY_H_

#include <ostream>
#include <string>
#include <vector>

namespace core {

/// One surveyed library (row of Table I).
struct SurveyedLibrary {
  std::string name;
  std::string wrapper_or_language;  ///< "CUDA", "OpenCL", "CUDA & OpenCL"
  std::string use_case;  ///< "Math", "Database operators", "Deep learning", ...
  std::string reference;
};

/// The survey data as printed in the paper's Table I. The paper reports 43
/// libraries in total; this is the subset its table enumerates (the source
/// text of the paper lists these rows).
const std::vector<SurveyedLibrary>& LibrarySurvey();

/// Count of surveyed libraries per use case (the paper's "7 image
/// processing, 13 math, only 5 database operators" discussion).
std::vector<std::pair<std::string, int>> SurveyUseCaseHistogram();

/// Prints Table I.
void PrintSurvey(std::ostream& os);

}  // namespace core

#endif  // CORE_SURVEY_H_
