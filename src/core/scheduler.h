// Multi-client query scheduler.
//
// The paper measures one operator or one query at a time; a serving system
// runs many concurrent clients against the same device. QueryScheduler
// models that setting: N client threads, each owning a private Backend
// instance (and therefore a private gpusim::Stream with its own simulated
// timeline), drain a bounded submission queue of query functors. Submit()
// blocks while the queue is full — backpressure toward the producers — and
// every completed query yields a QueryRecord with wall-clock and simulated
// latency. Report() aggregates throughput (queries/sec) and latency
// percentiles.
//
// Invariants:
//  * Error isolation: an exception thrown by one query marks only that
//    query's record as failed; the client thread keeps serving.
//  * Timing invariance: per-stream simulated time is a pure function of the
//    commands charged to the stream, so a query's simulated_ns is
//    bit-identical whether it ran alone or next to seven concurrent clients
//    (the cost model never observes host scheduling). tests/scheduler_test.cc
//    pins this golden property.
#ifndef CORE_SCHEDULER_H_
#define CORE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/backend.h"
#include "core/error.h"
#include "core/governor.h"
#include "core/metrics.h"
#include "core/resilience.h"
#include "gpusim/counters.h"

namespace core {

/// A unit of client work: runs against the client's private backend. The
/// functor must not retain the Backend& beyond the call. Queries may be
/// re-run after a transient or resource fault, so they must be idempotent
/// (recompute from their inputs; all TPC-H query fns are).
using QueryFn = std::function<void(Backend&)>;

struct SchedulerOptions {
  std::string backend_name;      ///< registry name (core/registry.h)
  unsigned num_clients = 1;      ///< concurrent clients, each with own stream
  size_t queue_capacity = 16;    ///< bound on queued (not yet running) queries
  RetryPolicy retry;             ///< transient-retry / OOM-reclaim budget
  /// Wall-clock budget per query, 0 = none. A query past its deadline gets
  /// no further retry attempts and its record is flagged; a query that
  /// finishes late but ok keeps ok = true.
  uint64_t deadline_ms = 0;
  /// Breakers + counters to report into; nullptr = ResilienceManager::Global().
  ResilienceManager* resilience = nullptr;
  /// Memory admission control; nullptr = none (queries run unconditionally).
  /// Queries submitted with a footprint pass through MemoryGovernor::Admit
  /// on their client thread before executing, and the grant is released when
  /// they finish. Must outlive the scheduler.
  MemoryGovernor* governor = nullptr;
};

/// Outcome of Submit(): whether the query was admitted.
enum class ScheduledQueryStatus : uint8_t {
  kAccepted = 0,
  kShutDown = 1,  ///< scheduler stopped admitting; query was not enqueued
};

/// The tenant a query is submitted on behalf of (serving tier). Untagged
/// queries (id < 0) keep the legacy strict-FIFO behavior; tagged queries are
/// dequeued by weighted fair share: each tenant accrues 1/weight of virtual
/// service per executed query and the tenant furthest behind goes next, so a
/// weight-8 interactive tenant receives 4x the slots of a weight-2 batch
/// tenant under contention while an uncontended queue drains FIFO.
///
/// Starvation is bounded by an aging rule: a query queued longer than
/// `starvation_bound_ms` (when non-zero) jumps ahead of fair-share order —
/// oldest aged query first — so even a weight-1 best-effort tenant's wait is
/// bounded by its aging horizon, not by the flood's length.
struct TenantSpec {
  int id = -1;        ///< stable tenant key; < 0 = untagged (plain FIFO)
  std::string name;   ///< label carried into QueryRecord for reporting
  double weight = 1.0;             ///< fair-share weight, > 0
  uint64_t starvation_bound_ms = 0;  ///< aging horizon; 0 = no aging boost
};


/// Outcome of one query.
struct QueryRecord {
  uint64_t id = 0;           ///< submission order, starting at 0
  std::string label;
  unsigned client = 0;       ///< index of the client that ran it
  bool ok = false;
  std::string error;         ///< exception message when !ok
  uint64_t simulated_ns = 0; ///< stream-timeline delta of the query
  double wall_ms = 0;        ///< host wall-clock latency
  int attempts = 1;          ///< executions, > 1 when retried
  ErrorClass error_class = ErrorClass::kFatal;  ///< of last failure, when !ok
  uint64_t backoff_ns = 0;   ///< total backoff slept before retries
  int oom_reclaims = 0;      ///< TrimPool-then-retry recoveries
  bool deadline_exceeded = false;  ///< wall latency passed the deadline
  uint64_t footprint_bytes = 0;    ///< declared estimate (0 = ungoverned)
  uint64_t granted_bytes = 0;      ///< admission grant (may be partial)
  double admission_wait_ms = 0;    ///< time queued for admission
  bool admission_queued = false;   ///< waited in the governor's FIFO queue
  bool admission_rejected = false; ///< rejected: query never ran
  int tenant_id = -1;              ///< TenantSpec::id (-1 = untagged)
  std::string tenant;              ///< TenantSpec::name
  double queue_wait_ms = 0;        ///< submit -> dequeue (scheduler queue)
  bool aged = false;               ///< dequeued via the starvation aging rule
};

/// Per-submission options (the richer Submit overload used by the serving
/// tier). Zero-initialized fields reproduce the legacy overloads exactly.
struct SubmitOptions {
  uint64_t footprint_bytes = 0;  ///< memory-admission estimate; 0 = ungoverned
  /// Per-query deadline override; 0 falls back to SchedulerOptions::deadline_ms.
  uint64_t deadline_ms = 0;
  TenantSpec tenant;
  /// Invoked on the client thread with the finalized record — including
  /// admission rejections, which never execute. Runs after the record is
  /// visible in Records(). Must not call back into the scheduler.
  std::function<void(const QueryRecord&)> on_complete;
};

struct SchedulerReport {
  size_t completed = 0;   ///< queries that ran (ok or failed)
  size_t failed = 0;
  double wall_seconds = 0;        ///< first Submit -> last completion
  double queries_per_sec = 0;     ///< completed / wall_seconds
  LatencySummary wall_ms;         ///< percentiles over wall-clock latency
  LatencySummary simulated_ms;    ///< percentiles over simulated latency
  std::vector<uint64_t> client_simulated_ns;  ///< per-client timeline totals
  ResilienceStats resilience;     ///< retry/breaker/reclaim counters
  uint64_t device_peak_bytes = 0;      ///< high-water of live+reserved bytes
  uint64_t device_reserved_bytes = 0;  ///< reservation gauge at report time
  uint64_t bytes_h2d_encoded = 0;   ///< h2d bytes that crossed compressed
  uint64_t bytes_saved_vs_raw = 0;  ///< transfer bytes encoding saved
  GovernorStats governor;  ///< admission stats (zeros without a governor)
};

/// Admits queries from any number of producer threads and executes them on
/// `num_clients` concurrent client threads. Thread-safe.
class QueryScheduler {
 public:
  /// Spawns the client threads. Throws std::out_of_range for an unknown
  /// backend and std::invalid_argument when the backend is not
  /// concurrency-safe (Backend::concurrency_safe) but num_clients > 1.
  explicit QueryScheduler(SchedulerOptions options);

  /// Drains outstanding work and joins the clients.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Enqueues a query, blocking while the queue is at capacity
  /// (backpressure). Returns kAccepted and (optionally) the assigned id, or
  /// kShutDown when the scheduler has stopped admitting — a typed status, so
  /// producers racing Shutdown() can tell "queue closed" from a failure.
  ScheduledQueryStatus Submit(std::string label, QueryFn query,
                              uint64_t* id = nullptr);

  /// Submit with a declared memory footprint: when the scheduler has a
  /// governor, the query passes through memory admission (grant / FIFO
  /// queue / reject) on its client thread before executing. footprint 0 is
  /// equivalent to the ungoverned overload.
  ScheduledQueryStatus Submit(std::string label, QueryFn query,
                              uint64_t footprint_bytes, uint64_t* id);

  /// Full-control Submit: memory footprint, per-query deadline, tenant
  /// fair-share tag, and a completion callback (see SubmitOptions). Tagged
  /// queries are dequeued by weighted fair share with aging instead of FIFO.
  ScheduledQueryStatus Submit(std::string label, QueryFn query,
                              SubmitOptions submit, uint64_t* id = nullptr);

  /// Non-blocking Submit: returns false (and does not enqueue) when the
  /// queue is full or the scheduler is shut down.
  bool TrySubmit(std::string label, QueryFn query, uint64_t* id = nullptr);

  /// Blocks until the queue is empty and no query is in flight.
  void Drain();

  /// Stops admission, drains outstanding queries, and joins the client
  /// threads. Idempotent; called by the destructor.
  void Shutdown();

  /// Number of queries currently queued (not yet picked up by a client).
  size_t queue_depth() const;

  /// Completed-query records in submission-id order.
  std::vector<QueryRecord> Records() const;

  /// Aggregate throughput/latency over everything completed so far.
  SchedulerReport Report() const;

  unsigned num_clients() const { return options_.num_clients; }
  const SchedulerOptions& options() const { return options_; }

 private:
  struct Item {
    uint64_t id = 0;
    std::string label;
    QueryFn fn;
    uint64_t footprint_bytes = 0;
    uint64_t deadline_ms = 0;  ///< 0 = use options_.deadline_ms
    TenantSpec tenant;
    std::function<void(const QueryRecord&)> on_complete;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Picks the queue index to dequeue next (guarded by mu_): aged queries
  /// first (oldest submission id), then the tagged/untagged item whose
  /// tenant trails in virtual service, FIFO within a tenant and on ties.
  size_t PickIndexLocked(std::chrono::steady_clock::time_point now);

  void ClientLoop(unsigned client_index);

  SchedulerOptions options_;
  ResilienceManager* resilience_ = nullptr;  ///< never null after ctor
  gpusim::Device* device_ = nullptr;  ///< the clients' device (for report)

  mutable std::mutex mu_;  ///< guards queue_, in_flight_, stop_, timestamps
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable drained_;
  std::deque<Item> queue_;
  size_t in_flight_ = 0;
  bool stop_ = false;
  uint64_t next_id_ = 0;
  /// Weighted fair share state (guarded by mu_): virtual service consumed
  /// per tenant id, and the service level of the most recent dequeue. A
  /// tenant going from idle to backlogged is clamped up to virtual_time_ so
  /// idle periods bank no credit (start-time fair queuing).
  std::unordered_map<int, double> tenant_service_;
  std::unordered_map<int, size_t> tenant_queued_;  ///< queued items per tenant
  double virtual_time_ = 0;
  bool saw_submit_ = false;
  std::chrono::steady_clock::time_point first_submit_;
  std::chrono::steady_clock::time_point last_complete_;

  mutable std::mutex records_mu_;
  std::vector<QueryRecord> records_;

  /// Per-client simulated-timeline totals, padded against false sharing
  /// (clients bump their own cell after every query).
  std::vector<std::unique_ptr<gpusim::PaddedCounter>> client_sim_ns_;

  std::vector<std::thread> clients_;
};

}  // namespace core

#endif  // CORE_SCHEDULER_H_
