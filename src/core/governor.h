// Device-memory admission control.
//
// The paper's whole-query evaluation assumes every working set fits in GPU
// memory; a serving system cannot. MemoryGovernor sits between query
// submission and execution: a query declares its estimated footprint (from
// the plan cost estimator's materialization sizes), and the governor grants
// admission immediately, queues it FIFO until memory frees up, or rejects it
// when the deadline-aware timeout expires. A grant is backed by a
// gpusim::Device per-stream reservation, so an admitted query's memory
// cannot be claimed by a concurrent client between admission and
// allocation.
//
// Admission state machine (one query):
//
//   Admit(footprint) ──grantable now──────────────▶ kGranted
//        │
//        └─not grantable──▶ [FIFO queue] ──memory released──▶
//                               │            kQueuedThenGranted
//                               └─timeout / shutdown─▶ kRejected
//
// A footprint larger than the single-query cap (max_grant_fraction x
// capacity) receives a *partial* grant of the cap: the caller is expected to
// degrade to partitioned execution within the granted budget
// (plan/partition.h) rather than be refused outright.
//
// Determinism: the queue is strict FIFO — only the head waiter may try to
// reserve, so later arrivals can never overtake — which makes the sequence
// of admission decisions a pure function of the submission order and the
// byte amounts involved (wait *times* vary with host scheduling; decisions
// do not).
#ifndef CORE_GOVERNOR_H_
#define CORE_GOVERNOR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/device_group.h"

namespace core {

struct GovernorOptions {
  /// Device whose capacity is governed; nullptr = gpusim::Device::Default().
  gpusim::Device* device = nullptr;
  /// Upper bound on time spent queued before rejection. A query with a
  /// tighter deadline passes the remaining budget to Admit() instead.
  uint64_t queue_timeout_ms = 30'000;
  /// Cap on a single grant as a fraction of device capacity. Queries with
  /// larger footprints get a partial grant and must partition.
  double max_grant_fraction = 1.0;
};

enum class AdmissionDecision : uint8_t {
  kGranted = 0,         ///< memory reserved without queuing
  kQueuedThenGranted,   ///< waited in the FIFO queue, then reserved
  kRejected,            ///< timed out (or shut down) while queued
};

/// Outcome of one Admit() call.
struct AdmissionTicket {
  AdmissionDecision decision = AdmissionDecision::kRejected;
  uint64_t requested_bytes = 0;
  /// Reserved bytes; < requested when the single-grant cap forced a partial
  /// grant (the query must partition to fit). 0 when rejected.
  uint64_t granted_bytes = 0;
  double wait_ms = 0;  ///< time spent queued (0 for immediate grants)
  /// True whenever the request entered the FIFO queue — including requests
  /// that were later rejected, so rejection reports can tell "queued then
  /// timed out" from "refused at shutdown".
  bool queued = false;

  bool admitted() const { return decision != AdmissionDecision::kRejected; }
  bool partial() const {
    return admitted() && granted_bytes < requested_bytes;
  }
};

/// Aggregate admission statistics.
struct GovernorStats {
  uint64_t granted = 0;          ///< immediate grants
  uint64_t queued = 0;           ///< grants that waited in the queue
  uint64_t rejected = 0;         ///< queue timeouts
  uint64_t partial_grants = 0;   ///< grants capped below the request
  uint64_t released = 0;         ///< Release() calls
  double wait_p50_ms = 0;        ///< over queued-then-granted waits
  double wait_p95_ms = 0;
  double wait_max_ms = 0;
};

/// Grants device-memory admission to queries. Thread-safe.
class MemoryGovernor {
 public:
  explicit MemoryGovernor(GovernorOptions options = {});
  ~MemoryGovernor();

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Requests admission for a query running on `stream_id` with an estimated
  /// footprint. Blocks (FIFO) until the reservation succeeds or the timeout
  /// expires. `timeout_ms` of 0 uses options.queue_timeout_ms; a query with
  /// a deadline passes its remaining budget. On success the device carries a
  /// reservation for `stream_id` that the query's allocations draw from
  /// (gpusim::Device::ReservationScope).
  AdmissionTicket Admit(uint64_t stream_id, uint64_t footprint_bytes,
                        uint64_t timeout_ms = 0);

  /// Releases the stream's reservation and wakes queued waiters. Must be
  /// called exactly once per admitted ticket.
  void Release(uint64_t stream_id);

  /// Stops admitting: queued waiters are rejected, later Admit() calls
  /// reject immediately. Used by scheduler shutdown.
  void Shutdown();

  GovernorStats Stats() const;

  /// Number of requests currently waiting in the FIFO queue.
  size_t queue_depth() const;

  gpusim::Device& device() const { return *device_; }

 private:
  gpusim::Device* device_;
  GovernorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ticket_ = 0;  ///< FIFO order: next queue position to issue
  uint64_t head_ticket_ = 0;  ///< position currently allowed to reserve
  /// Tickets whose waiters timed out before reaching the head; head
  /// advancement skips them so the queue cannot stall on a ghost.
  std::unordered_set<uint64_t> abandoned_;
  bool shutdown_ = false;

  // Stats (guarded by mu_).
  uint64_t granted_ = 0;
  uint64_t queued_ = 0;
  uint64_t rejected_ = 0;
  uint64_t partial_grants_ = 0;
  uint64_t released_ = 0;
  std::vector<double> wait_samples_ms_;
};

/// Admission control across a gpusim::DeviceGroup: one independent
/// MemoryGovernor per device, so each device keeps its own strict-FIFO
/// no-overtake queue and its own capacity accounting. Cross-device placement
/// is the scheduler's job (plan/exchange.h picks the shard→device map); the
/// MultiGovernor only arbitrates bytes within each device.
class MultiGovernor {
 public:
  /// Governs every device in `group`. `options.device` is ignored (each
  /// per-device governor binds its own device); the timeout and grant-cap
  /// fields apply uniformly.
  MultiGovernor(gpusim::DeviceGroup& group, GovernorOptions options = {});

  MultiGovernor(const MultiGovernor&) = delete;
  MultiGovernor& operator=(const MultiGovernor&) = delete;

  int size() const { return static_cast<int>(governors_.size()); }

  /// Admission on one device; semantics match MemoryGovernor::Admit.
  AdmissionTicket Admit(int device_index, uint64_t stream_id,
                        uint64_t footprint_bytes, uint64_t timeout_ms = 0);

  void Release(int device_index, uint64_t stream_id);

  void Shutdown();

  MemoryGovernor& governor(int device_index) {
    return *governors_.at(static_cast<size_t>(device_index));
  }

  /// Per-device stats, indexed by device.
  std::vector<GovernorStats> PerDeviceStats() const;

  /// Sum of the per-device counters (wait percentiles are the max across
  /// devices — a conservative "worst queue" view, not a merged sample set).
  GovernorStats Stats() const;

 private:
  std::vector<std::unique_ptr<MemoryGovernor>> governors_;
};

}  // namespace core

#endif  // CORE_GOVERNOR_H_
