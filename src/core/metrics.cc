#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace core {

double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank =
      static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  LatencySummary s;
  s.p50 = PercentileOfSorted(samples, 0.50);
  s.p95 = PercentileOfSorted(samples, 0.95);
  s.p99 = PercentileOfSorted(samples, 0.99);
  s.max = samples.empty() ? 0 : samples.back();
  return s;
}

void PrintMeasurement(std::ostream& os, const Measurement& m) {
  os << std::left << std::setw(32) << m.label << std::right << std::fixed
     << std::setprecision(3) << std::setw(12) << m.simulated_ms() << " ms  "
     << std::setw(6) << m.kernels << " kernels  " << std::setprecision(2)
     << std::setw(9) << m.bytes_read / (1024.0 * 1024.0) << " MiB read  "
     << std::setw(9) << m.bytes_written / (1024.0 * 1024.0) << " MiB written";
  if (m.programs_compiled > 0) {
    os << "  " << m.programs_compiled << " programs compiled ("
       << std::setprecision(1) << m.compile_ns / 1e6 << " ms)";
  }
  if (m.bytes_h2d_encoded > 0) {
    os << "  " << std::setprecision(2)
       << m.bytes_h2d_encoded / (1024.0 * 1024.0) << " MiB h2d encoded ("
       << m.bytes_saved_vs_raw / (1024.0 * 1024.0) << " MiB saved)";
  }
  if (m.pool_hits + m.pool_misses > 0) {
    os << "  pool " << m.pool_hits << "/" << (m.pool_hits + m.pool_misses)
       << " hits (" << std::setprecision(2)
       << m.bytes_pooled / (1024.0 * 1024.0) << " MiB cached)";
  }
  os << "\n";
}

}  // namespace core
