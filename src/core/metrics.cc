#include "core/metrics.h"

#include <iomanip>

namespace core {

void PrintMeasurement(std::ostream& os, const Measurement& m) {
  os << std::left << std::setw(32) << m.label << std::right << std::fixed
     << std::setprecision(3) << std::setw(12) << m.simulated_ms() << " ms  "
     << std::setw(6) << m.kernels << " kernels  " << std::setprecision(2)
     << std::setw(9) << m.bytes_read / (1024.0 * 1024.0) << " MiB read  "
     << std::setw(9) << m.bytes_written / (1024.0 * 1024.0) << " MiB written";
  if (m.programs_compiled > 0) {
    os << "  " << m.programs_compiled << " programs compiled ("
       << std::setprecision(1) << m.compile_ns / 1e6 << " ms)";
  }
  if (m.bytes_h2d_encoded > 0) {
    os << "  " << std::setprecision(2)
       << m.bytes_h2d_encoded / (1024.0 * 1024.0) << " MiB h2d encoded ("
       << m.bytes_saved_vs_raw / (1024.0 * 1024.0) << " MiB saved)";
  }
  if (m.pool_hits + m.pool_misses > 0) {
    os << "  pool " << m.pool_hits << "/" << (m.pool_hits + m.pool_misses)
       << " hits (" << std::setprecision(2)
       << m.bytes_pooled / (1024.0 * 1024.0) << " MiB cached)";
  }
  os << "\n";
}

}  // namespace core
