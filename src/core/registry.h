// Backend registry: the plug-in point of the framework.
//
// Library bindings register a named factory at static-initialization time
// (or tests/examples register custom ones at run time); benchmarks, the
// support-matrix tool, and queries instantiate backends by name.
#ifndef CORE_REGISTRY_H_
#define CORE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"

namespace core {

using BackendFactory = std::function<std::unique_ptr<Backend>()>;

/// Global name -> factory map. Thread-compatible (registration happens
/// before concurrent use).
class BackendRegistry {
 public:
  static BackendRegistry& Instance();

  /// Registers a factory; returns false (and ignores the call) if the name
  /// is taken.
  bool Register(const std::string& name, BackendFactory factory);

  /// Instantiates a backend; throws std::out_of_range for unknown names.
  std::unique_ptr<Backend> Create(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Registered names in registration order.
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, BackendFactory>> factories_;
};

/// Registers the four built-in backends (Thrust, Boost.Compute, ArrayFire,
/// Handwritten). Idempotent. Called by tools/benches/tests on startup.
void RegisterBuiltinBackends();

}  // namespace core

#endif  // CORE_REGISTRY_H_
