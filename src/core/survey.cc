#include "core/survey.h"

#include <algorithm>
#include <iomanip>
#include <map>

namespace core {

const std::vector<SurveyedLibrary>& LibrarySurvey() {
  static const std::vector<SurveyedLibrary>* rows =
      new std::vector<SurveyedLibrary>{
          {"AmgX", "CUDA", "Math", "developer.nvidia.com/amgx"},
          {"ArrayFire", "CUDA & OpenCL", "Database operators",
           "developer.nvidia.com/arrayfire"},
          {"Boost.Compute", "OpenCL", "Database operators", "[26]"},
          {"CHOLMOD", "CUDA", "Math", "developer.nvidia.com/CHOLMOD"},
          {"cuBLAS", "CUDA", "Math", "developer.nvidia.com/cublas"},
          {"CUDA math lib", "CUDA", "Math",
           "developer.nvidia.com/cuda-math-library"},
          {"cuDNN", "CUDA", "Deep learning", "developer.nvidia.com/cudnn"},
          {"cuFFT", "CUDA", "Math", "developer.nvidia.com/cuFFT"},
          {"cuRAND", "CUDA", "Math", "developer.nvidia.com/cuRAND"},
          {"cuSOLVER", "CUDA", "Math", "developer.nvidia.com/cuSOLVER"},
          {"cuSPARSE", "CUDA", "Math", "developer.nvidia.com/cuSPARSE"},
          {"cuTENSOR", "CUDA", "Math", "developer.nvidia.com/cuTENSOR"},
          {"DALI", "CUDA", "Deep learning", "developer.nvidia.com/DALI"},
          {"DeepStream SDK", "CUDA", "Deep learning",
           "developer.nvidia.com/deepstream-sdk"},
          {"EPGPU", "OpenCL", "Parallel algorithms", "[27]"},
          {"IMSL Fortran Numerical Library", "CUDA", "Math",
           "developer.nvidia.com/imsl-fortran-numerical-library"},
          {"Jarvis", "CUDA", "Deep learning",
           "developer.nvidia.com/nvidia-jarvis"},
          {"MAGMA", "CUDA & OpenCL", "Math", "developer.nvidia.com/MAGMA"},
          {"NCCL", "CUDA", "Communication libraries",
           "developer.nvidia.com/nccl"},
          {"nvGRAPH", "CUDA", "Parallel algorithms",
           "developer.nvidia.com/nvgraph"},
          {"NVIDIA Codec SDK", "CUDA", "Image and video",
           "developer.nvidia.com/nvidia-video-codec-sdk"},
          {"NVIDIA Optical Flow SDK", "CUDA", "Image and video",
           "developer.nvidia.com/opticalflow-sdk"},
          {"NVIDIA Performance Primitives", "CUDA", "Image and video",
           "developer.nvidia.com/npp"},
          {"nvJPEG", "CUDA", "Image and video", "developer.nvidia.com/nvjpeg"},
          {"NVSHMEM", "CUDA", "Communication libraries",
           "developer.nvidia.com/nvshmem"},
          {"OCL-Library", "OpenCL", "Database operators",
           "github.com/lochotzke/OCL-Library"},
          {"OpenCLHelper", "OpenCL", "Others - wrapper",
           "github.com/matze/oclkit"},
          {"OpenCV", "CUDA", "Image and video", "[28]"},
          {"SkelCL", "OpenCL", "Database operators & Parallel algorithms",
           "skelcl.github.io"},
          {"TensorRT", "CUDA", "Deep learning",
           "developer.nvidia.com/tensorrt"},
          {"Thrust", "CUDA", "Database operators", "[13]"},
          {"Triton Ocean SDK", "CUDA", "Image and video",
           "developer.nvidia.com/triton-ocean-sdk"},
          {"VexCL", "OpenCL", "Others - vector processing",
           "github.com/ddemidov/vexcl"},
          {"ViennaCL", "OpenCL", "Math", "viennacl.sourceforge.net"},
      };
  return *rows;
}

std::vector<std::pair<std::string, int>> SurveyUseCaseHistogram() {
  std::map<std::string, int> hist;
  for (const auto& row : LibrarySurvey()) ++hist[row.use_case];
  return {hist.begin(), hist.end()};
}

void PrintSurvey(std::ostream& os) {
  os << std::left << std::setw(34) << "Library" << std::setw(16)
     << "Wrapper/Language" << "  " << std::setw(42) << "Use case"
     << "Reference\n";
  os << std::string(110, '-') << "\n";
  for (const auto& row : LibrarySurvey()) {
    os << std::left << std::setw(34) << row.name << std::setw(16)
       << row.wrapper_or_language << "  " << std::setw(42) << row.use_case
       << row.reference << "\n";
  }
  os << "\nUse-case histogram:\n";
  for (const auto& [use_case, count] : SurveyUseCaseHistogram()) {
    os << "  " << std::left << std::setw(44) << use_case << count << "\n";
  }
}

}  // namespace core
