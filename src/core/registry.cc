#include "core/registry.h"

#include <stdexcept>

namespace core {

BackendRegistry& BackendRegistry::Instance() {
  static BackendRegistry* registry = new BackendRegistry();
  return *registry;
}

bool BackendRegistry::Register(const std::string& name,
                               BackendFactory factory) {
  if (Contains(name)) return false;
  factories_.emplace_back(name, std::move(factory));
  return true;
}

std::unique_ptr<Backend> BackendRegistry::Create(const std::string& name) const {
  for (const auto& [n, factory] : factories_) {
    if (n == name) return factory();
  }
  throw std::out_of_range("BackendRegistry: unknown backend '" + name + "'");
}

bool BackendRegistry::Contains(const std::string& name) const {
  for (const auto& [n, factory] : factories_) {
    if (n == name) return true;
  }
  return false;
}

std::vector<std::string> BackendRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, factory] : factories_) out.push_back(n);
  return out;
}

}  // namespace core
