// Measurement helpers: snapshot device counters and a stream timeline around
// a region and report simulated time plus work counters — and the one shared
// latency-percentile implementation every report path uses.
#ifndef CORE_METRICS_H_
#define CORE_METRICS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "gpusim/stream.h"

namespace core {

/// Nearest-rank percentile of a sorted sample (q in [0, 1]); 0 when empty.
/// The single implementation behind every p50/p95/p99 the repo reports
/// (scheduler, governor, serving tier, benches) — keeping them all on the
/// same nearest-rank convention so numbers compare across reports.
double PercentileOfSorted(const std::vector<double>& sorted, double q);

/// p50/p95/p99/max over a latency sample.
struct LatencySummary {
  double p50 = 0, p95 = 0, p99 = 0, max = 0;
};

/// Sorts the sample and summarizes it (nearest-rank percentiles).
LatencySummary SummarizeLatencies(std::vector<double> samples);

/// Deterministic measurement of one region on one stream.
struct Measurement {
  std::string label;
  uint64_t simulated_ns = 0;       ///< stream timeline advance
  uint64_t kernels = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_h2d = 0;
  uint64_t bytes_d2h = 0;
  uint64_t bytes_h2d_encoded = 0;   ///< share of h2d moved compressed
  uint64_t bytes_saved_vs_raw = 0;  ///< raw-minus-encoded transfer savings
  uint64_t bytes_d2d = 0;
  uint64_t programs_compiled = 0;
  uint64_t compile_ns = 0;
  uint64_t pool_hits = 0;     ///< device allocations served from the pool
  uint64_t pool_misses = 0;   ///< device allocations that hit the host heap
  uint64_t bytes_pooled = 0;  ///< bytes cached in the pool at region end

  double simulated_ms() const { return simulated_ns / 1e6; }
};

/// RAII-style region timer over a gpusim stream.
class ScopedMeasurement {
 public:
  explicit ScopedMeasurement(gpusim::Stream& stream, std::string label = "")
      : stream_(stream),
        label_(std::move(label)),
        start_ns_(stream.now_ns()),
        start_counters_(stream.device().Snapshot()) {}

  /// Finishes the region and returns the measurement (callable once).
  Measurement Stop() const {
    Measurement m;
    m.label = label_;
    m.simulated_ns = stream_.now_ns() - start_ns_;
    const auto delta = stream_.device().Snapshot().Delta(start_counters_);
    m.kernels = delta.kernels_launched;
    m.bytes_read = delta.bytes_read;
    m.bytes_written = delta.bytes_written;
    m.bytes_h2d = delta.bytes_h2d;
    m.bytes_d2h = delta.bytes_d2h;
    m.bytes_h2d_encoded = delta.bytes_h2d_encoded;
    m.bytes_saved_vs_raw = delta.bytes_saved_vs_raw;
    m.bytes_d2d = delta.bytes_d2d;
    m.programs_compiled = delta.programs_compiled;
    m.compile_ns = delta.compile_ns;
    m.pool_hits = delta.pool_hits;
    m.pool_misses = delta.pool_misses;
    m.bytes_pooled = delta.bytes_pooled;  // gauge: value at region end
    return m;
  }

 private:
  gpusim::Stream& stream_;
  std::string label_;
  uint64_t start_ns_;
  gpusim::CounterSnapshot start_counters_;
};

/// Prints "label: X.XXX ms  (K kernels, R MiB read, W MiB written)".
void PrintMeasurement(std::ostream& os, const Measurement& m);

}  // namespace core

#endif  // CORE_METRICS_H_
