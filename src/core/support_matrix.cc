#include "core/support_matrix.h"

#include <iomanip>

#include "core/registry.h"

namespace core {

std::vector<SupportEntry> BuildSupportMatrix(
    const std::vector<std::string>& backend_names) {
  std::vector<SupportEntry> out;
  for (const std::string& name : backend_names) {
    auto backend = BackendRegistry::Instance().Create(name);
    for (DbOperator op : AllDbOperators()) {
      out.push_back(SupportEntry{op, name, backend->Realization(op)});
    }
  }
  return out;
}

void PrintSupportMatrix(std::ostream& os,
                        const std::vector<std::string>& backend_names) {
  const auto entries = BuildSupportMatrix(backend_names);
  const size_t op_width = 22;
  const size_t cell_width = 44;

  os << std::left << std::setw(op_width) << "Database operator";
  for (const auto& name : backend_names) {
    os << "| " << std::setw(cell_width) << name;
  }
  os << "\n" << std::string(op_width + backend_names.size() * (cell_width + 2),
                            '-')
     << "\n";

  for (DbOperator op : AllDbOperators()) {
    os << std::left << std::setw(op_width) << DbOperatorName(op);
    for (const auto& name : backend_names) {
      for (const auto& e : entries) {
        if (e.op == op && e.backend == name) {
          std::string cell = std::string(SupportLevelSymbol(e.realization.level));
          if (!e.realization.functions.empty()) {
            cell += " " + e.realization.functions;
          }
          if (cell.size() > cell_width - 1) {
            cell = cell.substr(0, cell_width - 4) + "...";
          }
          os << "| " << std::setw(cell_width) << cell;
          break;
        }
      }
    }
    os << "\n";
  }
  os << "\n+ full support;  ~ partial support;  - no support\n";
}

}  // namespace core
