// Lightweight per-column encodings: dictionary, run-length, bit-packing,
// and frame-of-reference.
//
// The encoder follows mapd-core's NoneEncoder shape: a column is analyzed
// once on the host, encoded at upload time, and the device sees only the
// encoded buffer plus a small metadata block. All four schemes are
// order-preserving on the encoded domain, which is what lets the hot scan
// paths rewrite predicates into encoded-space comparisons and decode only
// the surviving rows (see core::Backend::SelectConjunctiveEncoded).
//
// Encoded layouts (all bit-packed streams are little-endian within 64-bit
// words, lowest bit first):
//   kBitPack     value = packed code            (non-negative ints)
//   kFor         value = reference + packed code (frame-of-reference)
//   kDictionary  value = dict[packed code], dict sorted ascending
//   kRle         runs of (value, cumulative end row), int32 values only
#ifndef STORAGE_ENCODING_H_
#define STORAGE_ENCODING_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"

namespace storage {

enum class Encoding {
  kNone,        ///< raw typed values
  kDictionary,  ///< sorted dictionary + bit-packed codes
  kRle,         ///< run-length: values[] + cumulative run ends[]
  kBitPack,     ///< bit-packed non-negative integers (FOR with reference 0)
  kFor,         ///< frame-of-reference + bit-packed deltas
};

const char* EncodingName(Encoding e);

// ---------------------------------------------------------------------------
// Bit packing primitives (shared by kBitPack / kFor / kDictionary codes)
// ---------------------------------------------------------------------------

/// Number of 64-bit words needed to hold n codes of `bits` bits each.
inline size_t PackedWordCount(size_t n, unsigned bits) {
  return (n * bits + 63) / 64;
}

/// Smallest width able to represent `max_code` (at least 1 bit).
unsigned BitsForMax(uint64_t max_code);

/// Packs codes little-endian into 64-bit words. `out` must hold
/// PackedWordCount(n, bits) words and be zero-initialized by the caller.
void PackBits(const uint64_t* codes, size_t n, unsigned bits, uint64_t* out);

/// Extracts code i from a packed stream.
inline uint64_t UnpackBit(const uint64_t* words, unsigned bits, size_t i) {
  const size_t bit = i * bits;
  const size_t w = bit >> 6;
  const unsigned off = static_cast<unsigned>(bit & 63);
  const uint64_t mask = bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  uint64_t v = words[w] >> off;
  if (off + bits > 64) v |= words[w + 1] << (64 - off);
  return v & mask;
}

/// Unpacks all n codes into `out`.
void UnpackBits(const uint64_t* words, size_t n, unsigned bits, uint64_t* out);

// ---------------------------------------------------------------------------
// Column statistics and encoding selection
// ---------------------------------------------------------------------------

/// One pass of lightweight statistics driving encoding selection.
struct ColumnStats {
  bool is_float = false;     ///< f32/f64 column (int stats meaningless)
  int64_t min_i = 0;         ///< integer min (int columns only)
  int64_t max_i = 0;         ///< integer max (int columns only)
  size_t distinct = 0;       ///< distinct values, capped at kMaxDictSize+1
  size_t runs = 0;           ///< number of equal-value runs
  bool monotonic = false;    ///< nondecreasing front to back
};

/// Distinct-value cap for dictionary encoding (2^16 entries).
constexpr size_t kMaxDictSize = 1u << 16;

ColumnStats AnalyzeColumn(const Column& column);

/// The outcome of encoding selection: what to use and what it will cost.
/// encoded_bytes is computable from stats alone (no packing required), which
/// is what lets EstimateQueryFootprint price encoded uploads before any data
/// moves.
struct EncodingChoice {
  Encoding encoding = Encoding::kNone;
  unsigned bit_width = 0;      ///< code width for packed schemes
  int64_t reference = 0;       ///< FOR frame base
  uint64_t encoded_bytes = 0;  ///< total device bytes after encoding
};

/// Picks the cheapest applicable encoding for a column of n rows, or kNone
/// when nothing beats the raw layout. Monotonic int columns with an average
/// run length >= 2 prefer RLE even when bit-packing is narrower: RLE keeps
/// random access O(log runs) AND gives run-level aggregation, the encoded-
/// domain operation the scan paths exploit.
EncodingChoice ChooseEncoding(const ColumnStats& stats, size_t n,
                              DataType type);

// ---------------------------------------------------------------------------
// Host-side encoded column (encode before upload, decode for verification)
// ---------------------------------------------------------------------------

/// An encoded column in host memory, ready for upload.
struct EncodedColumn {
  Encoding encoding = Encoding::kNone;
  DataType type = DataType::kInt32;  ///< decoded (logical) type
  size_t size = 0;                   ///< logical row count
  unsigned bit_width = 0;
  int64_t reference = 0;

  std::vector<uint64_t> words;    ///< bit-packed codes (pack/for/dict)
  std::vector<double> dict_f64;   ///< dictionary, sorted ascending (floats)
  std::vector<int64_t> dict_i64;  ///< dictionary, sorted ascending (ints)
  std::vector<int32_t> rle_values;
  std::vector<uint32_t> rle_ends;  ///< cumulative run end rows

  uint64_t encoded_byte_size() const;
  uint64_t raw_byte_size() const { return size * DataTypeSize(type); }
};

/// Encodes per `choice` (pass ChooseEncoding's result, or force a scheme for
/// testing). Throws std::invalid_argument if the scheme cannot represent the
/// column.
EncodedColumn EncodeColumn(const Column& column, const EncodingChoice& choice);

/// Convenience: analyze + choose + encode in one call.
EncodedColumn EncodeColumn(const Column& column);

/// Full decode back to a host column (round-trip testing / verification).
Column DecodeColumnHost(const EncodedColumn& encoded);

}  // namespace storage

#endif  // STORAGE_ENCODING_H_
