// Device-resident encoded columns.
//
// An EncodedDeviceColumn holds the encoded payload on the simulated device
// plus the metadata a backend needs to evaluate predicates in the encoded
// domain: the frame-of-reference base, code width, and (host-side, as real
// systems keep dictionaries in the catalog) the sorted dictionary. The raw
// values never exist on the device unless an operator decodes survivors.
#ifndef STORAGE_ENCODED_COLUMN_H_
#define STORAGE_ENCODED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/device_column.h"
#include "storage/encoding.h"

namespace storage {

struct EncodedDeviceColumn {
  Encoding encoding = Encoding::kNone;
  DataType type = DataType::kInt32;  ///< decoded (logical) type
  size_t size = 0;                   ///< logical row count
  unsigned bit_width = 0;
  int64_t reference = 0;
  uint64_t encoded_bytes = 0;  ///< total device bytes of the payload

  DeviceColumn words;       ///< bit-packed codes, stored as kInt64 words
  DeviceColumn dict;        ///< dictionary at the logical type
  DeviceColumn rle_values;  ///< kInt32 run values
  DeviceColumn rle_ends;    ///< kInt32 words holding cumulative uint32 ends

  /// Host copy of the dictionary (sorted ascending) for predicate rewriting;
  /// at most kMaxDictSize entries. Exactly one is populated, by type.
  std::vector<int64_t> host_dict_i64;
  std::vector<double> host_dict_f64;

  size_t num_runs() const { return rle_values.size(); }
  uint64_t encoded_byte_size() const { return encoded_bytes; }
  uint64_t raw_byte_size() const { return size * DataTypeSize(type); }

  const uint64_t* words_data() const {
    return static_cast<const uint64_t*>(words.raw_data());
  }
  const uint32_t* rle_ends_data() const {
    return static_cast<const uint32_t*>(rle_ends.raw_data());
  }
};

/// Metadata-only encoded column (no device buffers): lets
/// EstimateQueryFootprint describe encoded uploads before any data moves.
EncodedDeviceColumn MakeEncodedMeta(Encoding encoding, DataType type,
                                    size_t rows, unsigned bit_width,
                                    uint64_t encoded_bytes);

/// Uploads an encoded column (priced H2D at the encoded size; attributes the
/// savings via Stream::NoteEncodedTransfer).
EncodedDeviceColumn UploadColumnEncoded(gpusim::Stream& stream,
                                        const EncodedColumn& encoded);

/// Uploads a table with automatic per-column encoding: columns where an
/// encoding beats the raw layout go up encoded-only, the rest raw. When
/// `uploaded_bytes` is non-null it receives the total bytes that actually
/// crossed the link (encoded + raw).
DeviceTable UploadTableEncoded(gpusim::Stream& stream, const Table& table,
                               uint64_t* uploaded_bytes = nullptr);

}  // namespace storage

#endif  // STORAGE_ENCODED_COLUMN_H_
