#include "storage/encoding.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace storage {
namespace {

bool IsFloatType(DataType t) {
  return t == DataType::kFloat64 || t == DataType::kFloat32;
}

/// Applies `fn(const std::vector<T>&)` to the column's typed storage.
template <typename Fn>
void VisitColumn(const Column& column, Fn&& fn) {
  switch (column.type()) {
    case DataType::kInt32: fn(column.values<int32_t>()); break;
    case DataType::kInt64: fn(column.values<int64_t>()); break;
    case DataType::kFloat64: fn(column.values<double>()); break;
    case DataType::kFloat32: fn(column.values<float>()); break;
  }
}

template <typename T>
size_t CountDistinctCapped(const std::vector<T>& v, size_t cap) {
  std::unordered_set<T> seen;
  for (const T& x : v) {
    seen.insert(x);
    if (seen.size() > cap) return cap + 1;
  }
  return seen.size();
}

/// Sorted distinct values of v; empty when there are more than cap.
template <typename T>
std::vector<T> SortedDict(const std::vector<T>& v, size_t cap) {
  std::unordered_set<T> seen;
  for (const T& x : v) {
    seen.insert(x);
    if (seen.size() > cap) return {};
  }
  std::vector<T> dict(seen.begin(), seen.end());
  std::sort(dict.begin(), dict.end());
  return dict;
}

template <typename T>
void PackValueCodes(const std::vector<T>& v, int64_t reference, unsigned bits,
                    std::vector<uint64_t>* words) {
  std::vector<uint64_t> codes(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    const int64_t x = static_cast<int64_t>(v[i]);
    if (x < reference) {
      throw std::invalid_argument(
          "EncodeColumn: value below frame-of-reference base");
    }
    codes[i] = static_cast<uint64_t>(x - reference);
  }
  words->assign(PackedWordCount(v.size(), bits), 0);
  PackBits(codes.data(), v.size(), bits, words->data());
}

template <typename T>
void PackDictCodes(const std::vector<T>& v, const std::vector<T>& dict,
                   unsigned bits, std::vector<uint64_t>* words) {
  std::vector<uint64_t> codes(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    const auto it = std::lower_bound(dict.begin(), dict.end(), v[i]);
    if (it == dict.end() || *it != v[i]) {
      throw std::invalid_argument("EncodeColumn: value missing from dict");
    }
    codes[i] = static_cast<uint64_t>(it - dict.begin());
  }
  words->assign(PackedWordCount(v.size(), bits), 0);
  PackBits(codes.data(), v.size(), bits, words->data());
}

}  // namespace

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kNone: return "none";
    case Encoding::kDictionary: return "dict";
    case Encoding::kRle: return "rle";
    case Encoding::kBitPack: return "bitpack";
    case Encoding::kFor: return "for";
  }
  return "?";
}

unsigned BitsForMax(uint64_t max_code) {
  unsigned bits = 1;
  while (bits < 64 && (max_code >> bits) != 0) ++bits;
  return bits;
}

void PackBits(const uint64_t* codes, size_t n, unsigned bits, uint64_t* out) {
  const uint64_t mask =
      bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t c = codes[i] & mask;
    const size_t bit = i * bits;
    const size_t w = bit >> 6;
    const unsigned off = static_cast<unsigned>(bit & 63);
    out[w] |= c << off;
    if (off + bits > 64) out[w + 1] |= c >> (64 - off);
  }
}

void UnpackBits(const uint64_t* words, size_t n, unsigned bits,
                uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = UnpackBit(words, bits, i);
}

ColumnStats AnalyzeColumn(const Column& column) {
  ColumnStats stats;
  stats.is_float = IsFloatType(column.type());
  VisitColumn(column, [&](const auto& v) {
    using T = typename std::decay_t<decltype(v)>::value_type;
    if (v.empty()) return;
    stats.runs = 1;
    stats.monotonic = true;
    T lo = v[0], hi = v[0];
    for (size_t i = 1; i < v.size(); ++i) {
      if (v[i] < lo) lo = v[i];
      if (hi < v[i]) hi = v[i];
      if (v[i] != v[i - 1]) ++stats.runs;
      if (v[i] < v[i - 1]) stats.monotonic = false;
    }
    if (!stats.is_float) {
      stats.min_i = static_cast<int64_t>(lo);
      stats.max_i = static_cast<int64_t>(hi);
    }
    stats.distinct = CountDistinctCapped(v, kMaxDictSize);
  });
  return stats;
}

EncodingChoice ChooseEncoding(const ColumnStats& stats, size_t n,
                              DataType type) {
  EncodingChoice best;  // kNone
  if (n == 0) return best;
  const uint64_t raw = static_cast<uint64_t>(n) * DataTypeSize(type);
  best.encoded_bytes = raw;

  // RLE: int32 columns that arrive sorted (orderkeys) with real runs. Taken
  // outright when the runs amortize — the run-level layout is what enables
  // run-aware aggregation and O(log runs) random access, worth more to the
  // scan paths than a few bits of extra width.
  if (type == DataType::kInt32 && stats.monotonic && stats.runs > 0 &&
      n / stats.runs >= 2) {
    const uint64_t rle_bytes =
        static_cast<uint64_t>(stats.runs) * (sizeof(int32_t) +
                                             sizeof(uint32_t));
    if (rle_bytes < raw) {
      best.encoding = Encoding::kRle;
      best.encoded_bytes = rle_bytes;
      return best;
    }
  }

  // Frame-of-reference / bit-pack for integer columns.
  if (!stats.is_float &&
      (type == DataType::kInt32 || type == DataType::kInt64)) {
    const uint64_t range =
        static_cast<uint64_t>(stats.max_i - stats.min_i);
    const unsigned bits = BitsForMax(range);
    const uint64_t packed = PackedWordCount(n, bits) * sizeof(uint64_t);
    if (packed < best.encoded_bytes) {
      best.encoding =
          stats.min_i == 0 ? Encoding::kBitPack : Encoding::kFor;
      best.bit_width = bits;
      best.reference = stats.min_i;
      best.encoded_bytes = packed;
    }
  }

  // Dictionary for low-cardinality columns of any type.
  if (stats.distinct > 0 && stats.distinct <= kMaxDictSize) {
    const unsigned bits =
        BitsForMax(static_cast<uint64_t>(stats.distinct - 1));
    const uint64_t bytes = PackedWordCount(n, bits) * sizeof(uint64_t) +
                           static_cast<uint64_t>(stats.distinct) *
                               DataTypeSize(type);
    if (bytes < best.encoded_bytes) {
      best.encoding = Encoding::kDictionary;
      best.bit_width = bits;
      best.reference = 0;
      best.encoded_bytes = bytes;
    }
  }

  if (best.encoding == Encoding::kNone) best.encoded_bytes = raw;
  return best;
}

uint64_t EncodedColumn::encoded_byte_size() const {
  const size_t dict_entries = dict_f64.size() + dict_i64.size();
  return words.size() * sizeof(uint64_t) +
         static_cast<uint64_t>(dict_entries) * DataTypeSize(type) +
         rle_values.size() * sizeof(int32_t) +
         rle_ends.size() * sizeof(uint32_t);
}

EncodedColumn EncodeColumn(const Column& column,
                           const EncodingChoice& choice) {
  EncodedColumn out;
  out.encoding = choice.encoding;
  out.type = column.type();
  out.size = column.size();
  out.bit_width = choice.bit_width;
  out.reference = choice.reference;

  switch (choice.encoding) {
    case Encoding::kNone:
      throw std::invalid_argument("EncodeColumn: nothing to encode (kNone)");

    case Encoding::kBitPack:
    case Encoding::kFor:
      if (IsFloatType(column.type())) {
        throw std::invalid_argument(
            "EncodeColumn: bit-pack/FOR need integer columns");
      }
      VisitColumn(column, [&](const auto& v) {
        using T = typename std::decay_t<decltype(v)>::value_type;
        if constexpr (std::is_integral_v<T>) {
          PackValueCodes(v, choice.reference, choice.bit_width, &out.words);
        }
      });
      break;

    case Encoding::kDictionary:
      VisitColumn(column, [&](const auto& v) {
        using T = typename std::decay_t<decltype(v)>::value_type;
        auto dict = SortedDict(v, kMaxDictSize);
        if (dict.empty() && !v.empty()) {
          throw std::invalid_argument("EncodeColumn: dictionary too large");
        }
        out.bit_width = dict.empty()
                            ? 1
                            : BitsForMax(static_cast<uint64_t>(
                                  dict.size() - 1));
        PackDictCodes(v, dict, out.bit_width, &out.words);
        if constexpr (std::is_integral_v<T>) {
          out.dict_i64.assign(dict.begin(), dict.end());
        } else {
          out.dict_f64.assign(dict.begin(), dict.end());
        }
      });
      break;

    case Encoding::kRle: {
      if (column.type() != DataType::kInt32) {
        throw std::invalid_argument("EncodeColumn: RLE needs int32 columns");
      }
      const auto& v = column.values<int32_t>();
      for (size_t i = 0; i < v.size(); ++i) {
        if (out.rle_values.empty() || v[i] != out.rle_values.back()) {
          out.rle_values.push_back(v[i]);
          out.rle_ends.push_back(static_cast<uint32_t>(i + 1));
        } else {
          out.rle_ends.back() = static_cast<uint32_t>(i + 1);
        }
      }
      break;
    }
  }
  return out;
}

EncodedColumn EncodeColumn(const Column& column) {
  const EncodingChoice choice =
      ChooseEncoding(AnalyzeColumn(column), column.size(), column.type());
  if (choice.encoding == Encoding::kNone) {
    throw std::invalid_argument(
        "EncodeColumn: no encoding beats the raw layout for this column");
  }
  return EncodeColumn(column, choice);
}

Column DecodeColumnHost(const EncodedColumn& encoded) {
  const size_t n = encoded.size;
  switch (encoded.encoding) {
    case Encoding::kNone:
      throw std::invalid_argument("DecodeColumnHost: kNone has no payload");

    case Encoding::kBitPack:
    case Encoding::kFor: {
      std::vector<uint64_t> codes(n);
      UnpackBits(encoded.words.data(), n, encoded.bit_width, codes.data());
      if (encoded.type == DataType::kInt64) {
        std::vector<int64_t> v(n);
        for (size_t i = 0; i < n; ++i) {
          v[i] = encoded.reference + static_cast<int64_t>(codes[i]);
        }
        return Column(std::move(v));
      }
      std::vector<int32_t> v(n);
      for (size_t i = 0; i < n; ++i) {
        v[i] = static_cast<int32_t>(encoded.reference +
                                    static_cast<int64_t>(codes[i]));
      }
      return Column(std::move(v));
    }

    case Encoding::kDictionary: {
      std::vector<uint64_t> codes(n);
      UnpackBits(encoded.words.data(), n, encoded.bit_width, codes.data());
      switch (encoded.type) {
        case DataType::kInt32: {
          std::vector<int32_t> v(n);
          for (size_t i = 0; i < n; ++i) {
            v[i] = static_cast<int32_t>(encoded.dict_i64[codes[i]]);
          }
          return Column(std::move(v));
        }
        case DataType::kInt64: {
          std::vector<int64_t> v(n);
          for (size_t i = 0; i < n; ++i) v[i] = encoded.dict_i64[codes[i]];
          return Column(std::move(v));
        }
        case DataType::kFloat64: {
          std::vector<double> v(n);
          for (size_t i = 0; i < n; ++i) v[i] = encoded.dict_f64[codes[i]];
          return Column(std::move(v));
        }
        case DataType::kFloat32: {
          std::vector<float> v(n);
          for (size_t i = 0; i < n; ++i) {
            v[i] = static_cast<float>(encoded.dict_f64[codes[i]]);
          }
          return Column(std::move(v));
        }
      }
      break;
    }

    case Encoding::kRle: {
      std::vector<int32_t> v(n);
      size_t row = 0;
      for (size_t r = 0; r < encoded.rle_values.size(); ++r) {
        while (row < encoded.rle_ends[r]) v[row++] = encoded.rle_values[r];
      }
      return Column(std::move(v));
    }
  }
  throw std::invalid_argument("DecodeColumnHost: bad encoding");
}

}  // namespace storage
