// Device-resident columns and tables.
//
// Uploading a table to the device is an explicit, priced step — the paper's
// measurements distinguish operator time from transfer time, and
// bench_transfer quantifies the transfer side.
#ifndef STORAGE_DEVICE_COLUMN_H_
#define STORAGE_DEVICE_COLUMN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/memory.h"
#include "storage/table.h"

namespace storage {

struct EncodedDeviceColumn;  // storage/encoded_column.h

/// A device-resident typed column.
class DeviceColumn {
 public:
  DeviceColumn() = default;

  /// Allocates an uninitialized device column.
  DeviceColumn(DataType type, size_t n, gpusim::Device& device)
      : type_(type),
        size_(n),
        buffer_(std::make_shared<gpusim::DeviceBuffer>(n * DataTypeSize(type),
                                                       device)) {}

  /// Wraps an existing device buffer without copying (zero-copy interop
  /// between backends' library containers and the storage layer).
  DeviceColumn(DataType type, size_t n,
               std::shared_ptr<gpusim::DeviceBuffer> buffer)
      : type_(type), size_(n), buffer_(std::move(buffer)) {}

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  size_t byte_size() const { return size_ * DataTypeSize(type_); }

  /// Typed device pointer; throws on type mismatch.
  template <typename T>
  T* data() const {
    if (DataTypeOf<T>() != type_) {
      throw std::invalid_argument(
          std::string("DeviceColumn::data<T>: column holds ") +
          DataTypeName(type_));
    }
    return static_cast<T*>(buffer_->data());
  }

  void* raw_data() const { return buffer_ ? buffer_->data() : nullptr; }

  /// Shared handle to the underlying buffer (zero-copy interop).
  const std::shared_ptr<gpusim::DeviceBuffer>& buffer_ptr() const {
    return buffer_;
  }

  /// Downloads to a host column (priced D2H).
  Column ToHost(gpusim::Stream& stream) const;

 private:
  DataType type_ = DataType::kInt32;
  size_t size_ = 0;
  std::shared_ptr<gpusim::DeviceBuffer> buffer_;
};

/// Uploads a host column (priced H2D).
DeviceColumn UploadColumn(gpusim::Stream& stream, const Column& column);

/// A device-resident relation.
class DeviceTable {
 public:
  DeviceTable() = default;

  void AddColumn(const std::string& name, DeviceColumn column) {
    columns_.emplace(name, std::move(column));
  }

  bool HasColumn(const std::string& name) const {
    return columns_.count(name) > 0;
  }

  const DeviceColumn& column(const std::string& name) const {
    auto it = columns_.find(name);
    if (it == columns_.end()) {
      throw std::out_of_range("DeviceTable::column: no column named " + name);
    }
    return it->second;
  }

  size_t num_rows() const {
    return columns_.empty() ? num_rows_hint_
                            : columns_.begin()->second.size();
  }

  // ----- encoded columns (storage/encoded_column.h) -----
  //
  // A column lives in the table either raw (columns_) or encoded
  // (encoded_), never both: encoded uploads keep no raw device copy, that
  // is the point. Consumers check HasEncoded() first and fall back to
  // column().

  /// Registers an encoded column (defined in device_column.cc so the header
  /// can keep EncodedDeviceColumn incomplete).
  void AddEncodedColumn(const std::string& name,
                        std::shared_ptr<const EncodedDeviceColumn> column);

  bool HasEncoded(const std::string& name) const {
    return encoded_.count(name) > 0;
  }

  /// Throws std::out_of_range when the column is not encoded-resident.
  const EncodedDeviceColumn& encoded(const std::string& name) const;

  const std::shared_ptr<const EncodedDeviceColumn>& encoded_ptr(
      const std::string& name) const;

 private:
  std::unordered_map<std::string, DeviceColumn> columns_;
  std::unordered_map<std::string, std::shared_ptr<const EncodedDeviceColumn>>
      encoded_;
  size_t num_rows_hint_ = 0;  ///< row count when only encoded columns exist
};

/// Uploads every column of a host table.
DeviceTable UploadTable(gpusim::Stream& stream, const Table& table);

}  // namespace storage

#endif  // STORAGE_DEVICE_COLUMN_H_
