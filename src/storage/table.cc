#include "storage/table.h"

#include <stdexcept>

namespace storage {

void Table::AddColumn(const std::string& column_name, Column column) {
  if (columns_.count(column_name) > 0) {
    throw std::invalid_argument("Table::AddColumn: duplicate column " +
                                column_name);
  }
  if (!order_.empty() && column.size() != num_rows_) {
    throw std::invalid_argument(
        "Table::AddColumn: column " + column_name + " has " +
        std::to_string(column.size()) + " rows, table has " +
        std::to_string(num_rows_));
  }
  num_rows_ = column.size();
  order_.push_back(column_name);
  columns_.emplace(column_name, std::move(column));
}

const Column& Table::column(const std::string& column_name) const {
  auto it = columns_.find(column_name);
  if (it == columns_.end()) {
    throw std::out_of_range("Table::column: no column named " + column_name +
                            " in table " + name_);
  }
  return it->second;
}

}  // namespace storage
