#include "storage/encoded_column.h"

#include <cstring>

namespace storage {
namespace {

/// Uploads a raw host buffer into a fresh device column of `type`.
DeviceColumn UploadBytes(gpusim::Stream& stream, DataType type, size_t n,
                         const void* src, size_t bytes) {
  DeviceColumn out(type, n, stream.device());
  if (bytes > 0) gpusim::CopyHostToDevice(stream, out.raw_data(), src, bytes);
  return out;
}

}  // namespace

EncodedDeviceColumn MakeEncodedMeta(Encoding encoding, DataType type,
                                    size_t rows, unsigned bit_width,
                                    uint64_t encoded_bytes) {
  EncodedDeviceColumn out;
  out.encoding = encoding;
  out.type = type;
  out.size = rows;
  out.bit_width = bit_width;
  out.encoded_bytes = encoded_bytes;
  return out;
}

EncodedDeviceColumn UploadColumnEncoded(gpusim::Stream& stream,
                                        const EncodedColumn& encoded) {
  EncodedDeviceColumn out;
  out.encoding = encoded.encoding;
  out.type = encoded.type;
  out.size = encoded.size;
  out.bit_width = encoded.bit_width;
  out.reference = encoded.reference;
  out.encoded_bytes = encoded.encoded_byte_size();

  if (!encoded.words.empty()) {
    out.words = UploadBytes(stream, DataType::kInt64, encoded.words.size(),
                            encoded.words.data(),
                            encoded.words.size() * sizeof(uint64_t));
  }
  if (encoded.encoding == Encoding::kDictionary) {
    // The device dictionary is stored at the logical type so decode kernels
    // gather straight from it.
    switch (encoded.type) {
      case DataType::kInt32: {
        std::vector<int32_t> d(encoded.dict_i64.begin(),
                               encoded.dict_i64.end());
        out.dict = UploadBytes(stream, DataType::kInt32, d.size(), d.data(),
                               d.size() * sizeof(int32_t));
        break;
      }
      case DataType::kInt64:
        out.dict = UploadBytes(stream, DataType::kInt64,
                               encoded.dict_i64.size(),
                               encoded.dict_i64.data(),
                               encoded.dict_i64.size() * sizeof(int64_t));
        break;
      case DataType::kFloat64:
        out.dict = UploadBytes(stream, DataType::kFloat64,
                               encoded.dict_f64.size(),
                               encoded.dict_f64.data(),
                               encoded.dict_f64.size() * sizeof(double));
        break;
      case DataType::kFloat32: {
        std::vector<float> d(encoded.dict_f64.begin(),
                             encoded.dict_f64.end());
        out.dict = UploadBytes(stream, DataType::kFloat32, d.size(), d.data(),
                               d.size() * sizeof(float));
        break;
      }
    }
    out.host_dict_i64 = encoded.dict_i64;
    out.host_dict_f64 = encoded.dict_f64;
  }
  if (encoded.encoding == Encoding::kRle) {
    out.rle_values = UploadBytes(stream, DataType::kInt32,
                                 encoded.rle_values.size(),
                                 encoded.rle_values.data(),
                                 encoded.rle_values.size() * sizeof(int32_t));
    out.rle_ends = UploadBytes(stream, DataType::kInt32,
                               encoded.rle_ends.size(),
                               encoded.rle_ends.data(),
                               encoded.rle_ends.size() * sizeof(uint32_t));
  }

  stream.NoteEncodedTransfer(out.encoded_bytes, out.raw_byte_size());
  return out;
}

DeviceTable UploadTableEncoded(gpusim::Stream& stream, const Table& table,
                               uint64_t* uploaded_bytes) {
  DeviceTable out;
  uint64_t bytes = 0;
  for (const std::string& name : table.column_names()) {
    const Column& column = table.column(name);
    const EncodingChoice choice =
        ChooseEncoding(AnalyzeColumn(column), column.size(), column.type());
    if (choice.encoding == Encoding::kNone) {
      out.AddColumn(name, UploadColumn(stream, column));
      bytes += column.byte_size();
      continue;
    }
    const EncodedColumn host = EncodeColumn(column, choice);
    auto device = std::make_shared<EncodedDeviceColumn>(
        UploadColumnEncoded(stream, host));
    bytes += device->encoded_bytes;
    out.AddEncodedColumn(name, std::move(device));
  }
  if (uploaded_bytes != nullptr) *uploaded_bytes += bytes;
  return out;
}

}  // namespace storage
