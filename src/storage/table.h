// Host tables: named columns with a shared row count.
#ifndef STORAGE_TABLE_H_
#define STORAGE_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column.h"

namespace storage {

/// A host-resident relation in columnar layout.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return order_.size(); }

  /// Adds a column; all columns must have equal length.
  void AddColumn(const std::string& column_name, Column column);

  bool HasColumn(const std::string& column_name) const {
    return columns_.count(column_name) > 0;
  }

  const Column& column(const std::string& column_name) const;

  /// Column names in insertion order.
  const std::vector<std::string>& column_names() const { return order_; }

 private:
  std::string name_;
  size_t num_rows_ = 0;
  std::vector<std::string> order_;
  std::unordered_map<std::string, Column> columns_;
};

}  // namespace storage

#endif  // STORAGE_TABLE_H_
