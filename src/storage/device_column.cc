#include "storage/device_column.h"

#include "storage/encoded_column.h"

namespace storage {

void DeviceTable::AddEncodedColumn(
    const std::string& name,
    std::shared_ptr<const EncodedDeviceColumn> column) {
  if (column->size > num_rows_hint_) num_rows_hint_ = column->size;
  encoded_.emplace(name, std::move(column));
}

const EncodedDeviceColumn& DeviceTable::encoded(
    const std::string& name) const {
  return *encoded_ptr(name);
}

const std::shared_ptr<const EncodedDeviceColumn>& DeviceTable::encoded_ptr(
    const std::string& name) const {
  auto it = encoded_.find(name);
  if (it == encoded_.end()) {
    throw std::out_of_range("DeviceTable::encoded: no encoded column named " +
                            name);
  }
  return it->second;
}

Column DeviceColumn::ToHost(gpusim::Stream& stream) const {
  switch (type_) {
    case DataType::kInt32: {
      std::vector<int32_t> out(size_);
      if (size_ > 0) {
        gpusim::CopyDeviceToHost(stream, out.data(), buffer_->data(),
                                 byte_size());
      }
      return Column(std::move(out));
    }
    case DataType::kInt64: {
      std::vector<int64_t> out(size_);
      if (size_ > 0) {
        gpusim::CopyDeviceToHost(stream, out.data(), buffer_->data(),
                                 byte_size());
      }
      return Column(std::move(out));
    }
    case DataType::kFloat64: {
      std::vector<double> out(size_);
      if (size_ > 0) {
        gpusim::CopyDeviceToHost(stream, out.data(), buffer_->data(),
                                 byte_size());
      }
      return Column(std::move(out));
    }
    case DataType::kFloat32: {
      std::vector<float> out(size_);
      if (size_ > 0) {
        gpusim::CopyDeviceToHost(stream, out.data(), buffer_->data(),
                                 byte_size());
      }
      return Column(std::move(out));
    }
  }
  return Column();
}

DeviceColumn UploadColumn(gpusim::Stream& stream, const Column& column) {
  DeviceColumn out(column.type(), column.size(), stream.device());
  if (column.size() > 0) {
    gpusim::CopyHostToDevice(stream, out.raw_data(), column.raw_data(),
                             column.byte_size());
  }
  return out;
}

DeviceTable UploadTable(gpusim::Stream& stream, const Table& table) {
  DeviceTable out;
  for (const std::string& name : table.column_names()) {
    out.AddColumn(name, UploadColumn(stream, table.column(name)));
  }
  return out;
}

}  // namespace storage
