// Column-oriented storage: host columns and tables.
//
// The paper targets column-oriented analytical processing; relations are
// stored as typed value arrays. Three physical types cover the TPC-H subset
// used by the evaluation: 32/64-bit integers (ids, dates as days, flags) and
// doubles (prices, discounts, taxes).
#ifndef STORAGE_COLUMN_H_
#define STORAGE_COLUMN_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace storage {

/// Physical column type. (Order matches the Column variant's alternatives.)
enum class DataType { kInt32, kInt64, kFloat64, kFloat32 };

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt32: return "int32";
    case DataType::kInt64: return "int64";
    case DataType::kFloat64: return "float64";
    case DataType::kFloat32: return "float32";
  }
  return "?";
}

inline size_t DataTypeSize(DataType t) {
  switch (t) {
    case DataType::kInt32: return 4;
    case DataType::kInt64: return 8;
    case DataType::kFloat64: return 8;
    case DataType::kFloat32: return 4;
  }
  return 0;
}

/// Maps C++ element types onto DataType.
template <typename T>
constexpr DataType DataTypeOf();
template <>
constexpr DataType DataTypeOf<int32_t>() { return DataType::kInt32; }
template <>
constexpr DataType DataTypeOf<int64_t>() { return DataType::kInt64; }
template <>
constexpr DataType DataTypeOf<double>() { return DataType::kFloat64; }
template <>
constexpr DataType DataTypeOf<float>() { return DataType::kFloat32; }

/// A host-resident typed column.
class Column {
 public:
  Column() : data_(std::vector<int32_t>{}) {}

  template <typename T>
  explicit Column(std::vector<T> values) : data_(std::move(values)) {}

  DataType type() const {
    return static_cast<DataType>(data_.index());
  }

  size_t size() const {
    return std::visit([](const auto& v) { return v.size(); }, data_);
  }

  /// Typed access; throws if T does not match the stored type.
  template <typename T>
  const std::vector<T>& values() const {
    const auto* v = std::get_if<std::vector<T>>(&data_);
    if (v == nullptr) {
      throw std::invalid_argument(
          std::string("Column::values<T>: column holds ") +
          DataTypeName(type()));
    }
    return *v;
  }

  template <typename T>
  std::vector<T>& mutable_values() {
    auto* v = std::get_if<std::vector<T>>(&data_);
    if (v == nullptr) {
      throw std::invalid_argument(
          std::string("Column::mutable_values<T>: column holds ") +
          DataTypeName(type()));
    }
    return *v;
  }

  const void* raw_data() const {
    return std::visit(
        [](const auto& v) { return static_cast<const void*>(v.data()); },
        data_);
  }

  size_t byte_size() const { return size() * DataTypeSize(type()); }

 private:
  // Variant index order must match the DataType enum order.
  std::variant<std::vector<int32_t>, std::vector<int64_t>,
               std::vector<double>, std::vector<float>>
      data_;
};

}  // namespace storage

#endif  // STORAGE_COLUMN_H_
