// Unit tests for the device simulator substrate: memory, streams, counters,
// thread pool, cost model.
#include "gpusim/device.h"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "gpusim/kernel.h"
#include "gpusim/memory.h"
#include "gpusim/thread_pool.h"

namespace gpusim {
namespace {

TEST(DeviceTest, AllocateTracksBytesInUse) {
  Device device;
  void* a = device.Allocate(1024);
  EXPECT_EQ(device.bytes_in_use(), 1024u);
  EXPECT_TRUE(device.OwnsPointer(a));
  void* b = device.Allocate(4096);
  EXPECT_EQ(device.bytes_in_use(), 1024u + 4096u);
  device.Free(a);
  EXPECT_EQ(device.bytes_in_use(), 4096u);
  EXPECT_FALSE(device.OwnsPointer(a));
  device.Free(b);
  EXPECT_EQ(device.bytes_in_use(), 0u);
}

TEST(DeviceTest, ZeroByteAllocationIsValidAndUnique) {
  Device device;
  void* a = device.Allocate(0);
  void* b = device.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  device.Free(a);
  device.Free(b);
}

TEST(DeviceTest, ExceedingGlobalMemoryThrows) {
  DeviceProperties props;
  props.global_memory_bytes = 1 << 20;  // 1 MiB device
  Device device(props);
  void* a = device.Allocate(900 * 1024);
  EXPECT_THROW(device.Allocate(200 * 1024), OutOfDeviceMemory);
  device.Free(a);
  void* b = device.Allocate(1024 * 1024);  // fits after the free
  device.Free(b);
}

TEST(DeviceTest, FreeUnknownPointerThrows) {
  Device device;
  int on_host = 0;
  EXPECT_THROW(device.Free(&on_host), std::invalid_argument);
}

TEST(DeviceTest, AllocationCountersAccumulate) {
  Device device;
  const auto before = device.Snapshot();
  void* a = device.Allocate(100);
  void* b = device.Allocate(200);
  const auto delta = device.Snapshot().Delta(before);
  EXPECT_EQ(delta.allocations, 2u);
  EXPECT_EQ(delta.bytes_allocated, 300u);
  device.Free(a);
  device.Free(b);
}

TEST(StreamTest, KernelLaunchAdvancesTimelineByAtLeastLaunchOverhead) {
  Device device;
  Stream stream(device, ApiProfile::Cuda());
  KernelStats stats;
  stats.bytes_read = 0;
  stream.ChargeKernel(stats);
  EXPECT_GE(stream.now_ns(), ApiProfile::Cuda().launch_overhead_ns);
}

TEST(StreamTest, OpenClProfileHasHigherLaunchOverheadThanCuda) {
  Device device;
  Stream cuda(device, ApiProfile::Cuda());
  Stream opencl(device, ApiProfile::OpenCl());
  KernelStats stats;
  cuda.ChargeKernel(stats);
  opencl.ChargeKernel(stats);
  EXPECT_GT(opencl.now_ns(), cuda.now_ns());
}

TEST(StreamTest, MemoryBoundKernelPricedByBandwidth) {
  DeviceProperties props;
  props.memory_bandwidth_bps = 100e9;
  Device device(props);
  Stream stream(device, ApiProfile::Cuda());
  KernelStats stats;
  stats.bytes_read = 100'000'000;  // 1 ms at 100 GB/s
  const uint64_t before = stream.now_ns();
  stream.ChargeKernel(stats);
  const uint64_t dt = stream.now_ns() - before;
  EXPECT_NEAR(static_cast<double>(dt), 1e6 + 5000.0, 1e4);
}

TEST(StreamTest, TransfersChargePcieAndCounters) {
  Device device;
  Stream stream(device, ApiProfile::Cuda());
  const auto before = device.Snapshot();
  stream.ChargeTransfer(Stream::TransferKind::kHostToDevice, 1 << 20);
  stream.ChargeTransfer(Stream::TransferKind::kDeviceToHost, 1 << 10);
  const auto delta = device.Snapshot().Delta(before);
  EXPECT_EQ(delta.bytes_h2d, 1u << 20);
  EXPECT_EQ(delta.bytes_d2h, 1u << 10);
  EXPECT_EQ(delta.transfers, 2u);
}

TEST(StreamTest, EventsOrderStreams) {
  Device device;
  Stream a(device, ApiProfile::Cuda());
  Stream b(device, ApiProfile::Cuda());
  KernelStats stats;
  stats.bytes_read = 1 << 30;
  a.ChargeKernel(stats);
  const Event e = a.Record();
  EXPECT_LT(b.now_ns(), e.timestamp_ns);
  b.Wait(e);
  EXPECT_GE(b.now_ns(), e.timestamp_ns);
  // Waiting on a past event does not move the timeline backwards.
  const uint64_t t = b.now_ns();
  b.Wait(Event{0});
  EXPECT_EQ(b.now_ns(), t);
}

TEST(StreamTest, ProgramCompileChargesOpenClCost) {
  Device device;
  Stream stream(device, ApiProfile::OpenCl());
  const auto before = device.Snapshot();
  stream.ChargeProgramCompile();
  const auto delta = device.Snapshot().Delta(before);
  EXPECT_EQ(delta.programs_compiled, 1u);
  EXPECT_EQ(delta.compile_ns, ApiProfile::OpenCl().program_compile_ns);
  EXPECT_GE(stream.now_ns(), ApiProfile::OpenCl().program_compile_ns);
}

TEST(ThreadPoolTest, ParallelForCoversAllChunksExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroChunksIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(
                   10,
                   [&](size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, SmallGridsRunInlineAndCoverAllChunks) {
  // Grids small relative to the worker count take the inline fast path;
  // coverage must be identical either way.
  ThreadPool pool(16);
  for (size_t chunks : {size_t{1}, size_t{2}, size_t{3}, size_t{4}}) {
    std::vector<std::atomic<int>> hits(chunks);
    pool.ParallelFor(chunks, [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateFromInlinePath) {
  ThreadPool pool(16);
  EXPECT_THROW(pool.ParallelFor(
                   2,
                   [&](size_t i) {
                     if (i == 1) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ManyBackToBackJobsKeepExactCoverage) {
  // Hammers the lock-free publish/retire handshake: chunks of one job must
  // never leak into the next.
  ThreadPool pool(4);
  for (int round = 0; round < 500; ++round) {
    const size_t chunks = 16 + static_cast<size_t>(round % 17);
    std::atomic<size_t> count{0};
    pool.ParallelFor(chunks, [&](size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), chunks);
  }
}

TEST(KernelTest, ParallelForVisitsAllIndices) {
  Device device;
  Stream stream(device, ApiProfile::Cuda());
  std::vector<std::atomic<int>> hits(10000);
  KernelStats stats;
  ParallelFor(stream, hits.size(), stats,
              [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(KernelTest, LaunchBlocksCoversBlockIds) {
  Device device;
  Stream stream(device, ApiProfile::Cuda());
  std::vector<std::atomic<int>> hits(37);
  KernelStats stats;
  LaunchBlocks(stream, hits.size(), 256, stats, [&](const BlockContext& ctx) {
    EXPECT_EQ(ctx.num_blocks, 37u);
    EXPECT_EQ(ctx.block_size, 256u);
    hits[ctx.block_id].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(MemoryTest, HostDeviceRoundtrip) {
  Device device;
  Stream stream(device, ApiProfile::Cuda());
  std::vector<int> host(1000);
  std::iota(host.begin(), host.end(), -500);
  DeviceArray<int> dev = ToDevice(stream, host, device);
  const std::vector<int> back = ToHost(stream, dev);
  EXPECT_EQ(back, host);
}

TEST(MemoryTest, DeviceBufferMoveTransfersOwnership) {
  Device device;
  DeviceBuffer a(128, device);
  void* p = a.data();
  DeviceBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(b.size_bytes(), 128u);
}

TEST(MemoryTest, MemsetWritesValue) {
  Device device;
  Stream stream(device, ApiProfile::Cuda());
  DeviceArray<uint8_t> dev(64, device);
  MemsetDevice(stream, dev.data(), 0xAB, 64);
  const std::vector<uint8_t> back = ToHost(stream, dev);
  for (uint8_t v : back) EXPECT_EQ(v, 0xAB);
}

TEST(TracerTest, RecordsKernelsTransfersAndCompiles) {
  Device device;
  Tracer tracer;
  device.set_tracer(&tracer);
  Stream stream(device, ApiProfile::OpenCl());
  KernelStats stats;
  stats.name = "my_kernel";
  stats.bytes_read = 1024;
  stream.ChargeKernel(stats);
  stream.ChargeTransfer(Stream::TransferKind::kHostToDevice, 64);
  stream.ChargeProgramCompile();
  device.set_tracer(nullptr);
  stream.ChargeKernel(stats);  // not traced after detach

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "my_kernel");
  EXPECT_STREQ(events[0].category, "kernel");
  EXPECT_EQ(events[1].name, "memcpy_h2d");
  EXPECT_STREQ(events[1].category, "transfer");
  EXPECT_EQ(events[2].name, "clBuildProgram");
  EXPECT_STREQ(events[2].category, "compile");
  // Events are ordered on the stream's timeline.
  EXPECT_LE(events[0].start_ns + events[0].duration_ns, events[1].start_ns + 1);
  EXPECT_GT(events[2].duration_ns, 1'000'000u);  // the 38 ms compile
}

TEST(TracerTest, ChromeTraceExportIsWellFormedJson) {
  Device device;
  Tracer tracer;
  device.set_tracer(&tracer);
  Stream stream(device, ApiProfile::Cuda());
  KernelStats stats;
  stats.name = "kernel_with_\"quote\"";
  stream.ChargeKernel(stats);
  device.set_tracer(nullptr);
  std::ostringstream os;
  tracer.ExportChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("kernel_with_\\\"quote\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TracerTest, StreamsHaveDistinctIds) {
  Device device;
  Stream a(device), b(device), c(device);
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(b.id(), c.id());
}

TEST(TracerTest, ClearEmptiesTracer) {
  Tracer tracer;
  tracer.Record(TraceEvent{"k", "kernel", 0, 10, 0});
  EXPECT_EQ(tracer.size(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(CostModelTest, TransferSlowerThanDeviceCopyForLargePayloads) {
  const DeviceProperties props;
  const CostModel model(props);
  const ApiProfile api = ApiProfile::Cuda();
  // PCIe is ~35x slower than HBM in the default configuration.
  EXPECT_GT(model.TransferTime(1 << 30, api),
            model.DeviceCopyTime(1 << 30, api));
}

TEST(CostModelTest, ThroughputScaleSlowsKernels) {
  const DeviceProperties props;
  const CostModel model(props);
  ApiProfile fast = ApiProfile::Cuda();
  ApiProfile slow = ApiProfile::Cuda();
  slow.throughput_scale = 0.5;
  KernelStats stats;
  stats.bytes_read = 1 << 28;
  EXPECT_GT(model.KernelTime(stats, slow), model.KernelTime(stats, fast));
}

TEST(CostModelTest, SerialBoundKernelUsesSerialTime) {
  const DeviceProperties props;
  const CostModel model(props);
  KernelStats stats;
  stats.serial_ns = 123'456'789;
  stats.bytes_read = 64;
  EXPECT_GE(model.KernelTime(stats, ApiProfile::Cuda()), stats.serial_ns);
}

}  // namespace
}  // namespace gpusim
