// QueryScheduler tests: admission of N genuinely concurrent clients,
// bounded-queue backpressure, error isolation between clients, and the
// serial-vs-concurrent golden check — the same queries produce bit-identical
// per-stream simulated time at any client count and interleaving. Built into
// the concurrency_tests binary, which CI also runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "core/scheduler.h"
#include "gpusim/device.h"
#include "storage/device_column.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace core {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterBuiltinBackends(); }

  SchedulerOptions Opts(unsigned clients, size_t capacity = 16,
                        const std::string& backend = backends::kHandwritten) {
    SchedulerOptions o;
    o.backend_name = backend;
    o.num_clients = clients;
    o.queue_capacity = capacity;
    return o;
  }
};

TEST_F(SchedulerTest, RunsEverySubmittedQueryOnceAndRecordsIt) {
  QueryScheduler scheduler(Opts(3));
  std::atomic<int> runs{0};
  const int kQueries = 24;
  for (int i = 0; i < kQueries; ++i) {
    scheduler.Submit("query-" + std::to_string(i),
                     [&](Backend&) { runs.fetch_add(1); });
  }
  scheduler.Drain();
  EXPECT_EQ(runs.load(), kQueries);

  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), static_cast<size_t>(kQueries));
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(records[i].id, static_cast<uint64_t>(i));
    EXPECT_EQ(records[i].label, "query-" + std::to_string(i));
    EXPECT_TRUE(records[i].ok);
    EXPECT_LT(records[i].client, 3u);
  }
  const auto report = scheduler.Report();
  EXPECT_EQ(report.completed, static_cast<size_t>(kQueries));
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(report.queries_per_sec, 0.0);
  EXPECT_EQ(report.client_simulated_ns.size(), 3u);
}

TEST_F(SchedulerTest, AdmitsNClientsRunningConcurrently) {
  // N rendezvous queries that each wait until all N are running can only
  // complete if the scheduler truly admits N clients at once.
  const unsigned kClients = 4;
  QueryScheduler scheduler(Opts(kClients));

  std::mutex mu;
  std::condition_variable cv;
  unsigned arrived = 0;
  for (unsigned i = 0; i < kClients; ++i) {
    scheduler.Submit("rendezvous", [&](Backend&) {
      std::unique_lock<std::mutex> lock(mu);
      ++arrived;
      cv.notify_all();
      cv.wait(lock, [&] { return arrived == kClients; });
    });
  }
  scheduler.Drain();

  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), kClients);
  std::vector<bool> used(kClients, false);
  for (const auto& r : records) {
    EXPECT_TRUE(r.ok);
    used[r.client] = true;
  }
  for (unsigned i = 0; i < kClients; ++i) {
    EXPECT_TRUE(used[i]) << "client " << i << " never ran a query";
  }
}

TEST_F(SchedulerTest, BoundedQueueAppliesBackpressure) {
  QueryScheduler scheduler(Opts(1, /*capacity=*/2));

  // Block the only client, then fill the queue to its bound.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool started = false;
  scheduler.Submit("blocker", [&](Backend&) {
    std::unique_lock<std::mutex> lock(mu);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  EXPECT_TRUE(scheduler.TrySubmit("q1", [](Backend&) {}));
  EXPECT_TRUE(scheduler.TrySubmit("q2", [](Backend&) {}));
  // Queue is at capacity and the client is busy: admission must refuse.
  EXPECT_FALSE(scheduler.TrySubmit("q3", [](Backend&) {}));
  EXPECT_EQ(scheduler.queue_depth(), 2u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Drain();
  EXPECT_EQ(scheduler.queue_depth(), 0u);
  // Capacity frees up once the backlog drains.
  EXPECT_TRUE(scheduler.TrySubmit("q4", [](Backend&) {}));
  scheduler.Drain();
  EXPECT_EQ(scheduler.Records().size(), 4u);
}

TEST_F(SchedulerTest, AFailingQueryIsIsolatedFromOtherClients) {
  QueryScheduler scheduler(Opts(3));
  const int kQueries = 30;
  std::atomic<int> good_runs{0};
  for (int i = 0; i < kQueries; ++i) {
    if (i % 5 == 0) {
      scheduler.Submit("bad-" + std::to_string(i), [](Backend&) -> void {
        throw std::runtime_error("injected failure");
      });
    } else {
      scheduler.Submit("good-" + std::to_string(i),
                       [&](Backend&) { good_runs.fetch_add(1); });
    }
  }
  scheduler.Drain();

  EXPECT_EQ(good_runs.load(), kQueries - kQueries / 5);
  const auto report = scheduler.Report();
  EXPECT_EQ(report.completed, static_cast<size_t>(kQueries));
  EXPECT_EQ(report.failed, static_cast<size_t>(kQueries / 5));
  for (const auto& r : scheduler.Records()) {
    if (r.label.rfind("bad-", 0) == 0) {
      EXPECT_FALSE(r.ok);
      EXPECT_EQ(r.error, "injected failure");
    } else {
      EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
    }
  }
  // The scheduler stays serviceable after failures.
  scheduler.Submit("after", [](Backend&) {});
  scheduler.Drain();
  EXPECT_EQ(scheduler.Records().size(), static_cast<size_t>(kQueries) + 1);
}

TEST_F(SchedulerTest, RefusesMultiClientUseOfConcurrencyUnsafeBackends) {
  // ArrayFire's simulation routes all work through one global JIT stream.
  EXPECT_THROW(QueryScheduler scheduler(
                   Opts(2, 16, backends::kArrayFire)),
               std::invalid_argument);
  // Single-client use is fine.
  QueryScheduler scheduler(Opts(1, 16, backends::kArrayFire));
  scheduler.Submit("noop", [](Backend&) {});
  scheduler.Drain();
  EXPECT_EQ(scheduler.Report().failed, 0u);
}

TEST_F(SchedulerTest, UnknownBackendThrowsOnConstruction) {
  EXPECT_THROW(QueryScheduler scheduler(Opts(1, 16, "NoSuchLibrary")),
               std::out_of_range);
}

// ---------------------------------------------------------------------------
// The golden invariant: per-query simulated time is independent of host
// scheduling. Running the same TPC-H queries serially (1 client) and
// concurrently (4 clients) must charge bit-identical simulated ns to each
// query, for every backend whose instances are independent.
// ---------------------------------------------------------------------------

class SchedulerTimingGoldenTest : public SchedulerTest {};

TEST_F(SchedulerTimingGoldenTest, SerialAndConcurrentSimulatedTimeIdentical) {
  tpch::Config config;
  config.scale_factor = 0.002;  // tiny: keeps the TSan run fast
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table part = tpch::GeneratePart(config);
  gpusim::Stream setup(gpusim::Device::Default(), gpusim::ApiProfile::Cuda());
  const storage::DeviceTable dev_lineitem =
      storage::UploadTable(setup, lineitem);
  const storage::DeviceTable dev_part = storage::UploadTable(setup, part);

  const auto submit_mix = [&](QueryScheduler& scheduler, int copies) {
    for (int c = 0; c < copies; ++c) {
      scheduler.Submit("q1", [&](Backend& b) { tpch::RunQ1(b, dev_lineitem); });
      scheduler.Submit("q6", [&](Backend& b) { tpch::RunQ6(b, dev_lineitem); });
      scheduler.Submit("q14", [&](Backend& b) {
        tpch::RunQ14(b, dev_part, dev_lineitem);
      });
    }
  };

  // Thrust and Handwritten charge no per-instance JIT warmup, so every
  // instance of a query kind must cost identical simulated ns.
  for (const char* backend : {backends::kHandwritten, backends::kThrust}) {
    std::map<std::string, uint64_t> golden;
    {
      QueryScheduler serial(Opts(1, 16, backend));
      submit_mix(serial, 2);
      serial.Drain();
      for (const auto& r : serial.Records()) {
        ASSERT_TRUE(r.ok) << backend << "/" << r.label << ": " << r.error;
        const auto [it, inserted] = golden.emplace(r.label, r.simulated_ns);
        EXPECT_EQ(it->second, r.simulated_ns)
            << backend << ": repeated serial runs of " << r.label
            << " disagree" << (inserted ? " (impossible)" : "");
      }
    }
    {
      QueryScheduler concurrent(Opts(4, 16, backend));
      submit_mix(concurrent, 4);
      concurrent.Drain();
      const auto records = concurrent.Records();
      ASSERT_EQ(records.size(), 12u);
      for (const auto& r : records) {
        ASSERT_TRUE(r.ok) << backend << "/" << r.label << ": " << r.error;
        EXPECT_EQ(golden.at(r.label), r.simulated_ns)
            << backend << ": " << r.label
            << " charged different simulated time under concurrency";
      }
    }
  }
}

}  // namespace
}  // namespace core
