// Edge-case suite: empty relations, degenerate distributions, and boundary
// sizes, across the algorithm layer and all four backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "gpusim/algorithms.h"
#include "handwritten/handwritten.h"
#include "storage/device_column.h"
#include "tpch/queries.h"

namespace {

using core::AggOp;
using core::CompareOp;
using core::Predicate;
using storage::Column;
using storage::DeviceColumn;

// ---------------------------------------------------------------------------
// Algorithm-layer degenerate inputs
// ---------------------------------------------------------------------------

class AlgorithmEdgeTest : public ::testing::Test {
 protected:
  AlgorithmEdgeTest()
      : stream_(gpusim::Device::Default(), gpusim::ApiProfile::Cuda()) {}
  gpusim::Stream stream_;
};

TEST_F(AlgorithmEdgeTest, SortAllEqualKeysIsStable) {
  const size_t n = 5000;
  std::vector<int32_t> keys(n, 7);
  std::vector<uint32_t> vals(n);
  for (size_t i = 0; i < n; ++i) vals[i] = static_cast<uint32_t>(i);
  auto dk = gpusim::ToDevice(stream_, keys);
  auto dv = gpusim::ToDevice(stream_, vals);
  gpusim::RadixSortPairs(stream_, dk.data(), dv.data(), n);
  const auto gv = gpusim::ToHost(stream_, dv);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(gv[i], i);
}

TEST_F(AlgorithmEdgeTest, SortAlreadySortedAndReversed) {
  std::vector<int32_t> asc(3000), desc(3000);
  for (int i = 0; i < 3000; ++i) {
    asc[i] = i;
    desc[i] = 3000 - i;
  }
  auto da = gpusim::ToDevice(stream_, asc);
  gpusim::RadixSortKeys(stream_, da.data(), asc.size());
  EXPECT_EQ(gpusim::ToHost(stream_, da), asc);
  auto dd = gpusim::ToDevice(stream_, desc);
  gpusim::RadixSortKeys(stream_, dd.data(), desc.size());
  std::sort(desc.begin(), desc.end());
  EXPECT_EQ(gpusim::ToHost(stream_, dd), desc);
}

TEST_F(AlgorithmEdgeTest, CopyIfAllTrueAndAllFalse) {
  std::vector<int32_t> host(2048, 1);
  auto in = gpusim::ToDevice(stream_, host);
  gpusim::DeviceArray<int32_t> out(host.size(), stream_.device());
  EXPECT_EQ(gpusim::CopyIf(stream_, in.data(), host.size(), out.data(),
                           [](int32_t) { return true; }),
            host.size());
  EXPECT_EQ(gpusim::CopyIf(stream_, in.data(), host.size(), out.data(),
                           [](int32_t) { return false; }),
            0u);
}

TEST_F(AlgorithmEdgeTest, ReduceByKeySingleGroupAndAllDistinct) {
  const size_t n = 1500;
  std::vector<int32_t> one_key(n, 3);
  std::vector<int64_t> vals(n, 2);
  auto dk = gpusim::ToDevice(stream_, one_key);
  auto dv = gpusim::ToDevice(stream_, vals);
  gpusim::DeviceArray<int32_t> ok(n, stream_.device());
  gpusim::DeviceArray<int64_t> ov(n, stream_.device());
  EXPECT_EQ(gpusim::ReduceByKey(stream_, dk.data(), dv.data(), n, ok.data(),
                                ov.data(),
                                [](int64_t a, int64_t b) { return a + b; }),
            1u);
  int64_t total = 0;
  gpusim::CopyDeviceToHost(stream_, &total, ov.data(), sizeof(total));
  EXPECT_EQ(total, 2 * static_cast<int64_t>(n));

  std::vector<int32_t> distinct(n);
  for (size_t i = 0; i < n; ++i) distinct[i] = static_cast<int32_t>(i);
  auto dd = gpusim::ToDevice(stream_, distinct);
  EXPECT_EQ(gpusim::ReduceByKey(stream_, dd.data(), dv.data(), n, ok.data(),
                                ov.data(),
                                [](int64_t a, int64_t b) { return a + b; }),
            n);
}

TEST_F(AlgorithmEdgeTest, NestedLoopsJoinEmptySides) {
  std::vector<int32_t> keys{1, 2, 3};
  auto dk = gpusim::ToDevice(stream_, keys);
  gpusim::DeviceArray<uint32_t> a, b;
  EXPECT_EQ(handwritten::NestedLoopsJoin(stream_, dk.data(), size_t{0},
                                         dk.data(), keys.size(), &a, &b),
            0u);
  EXPECT_EQ(handwritten::NestedLoopsJoin(stream_, dk.data(), keys.size(),
                                         dk.data(), size_t{0}, &a, &b),
            0u);
}

TEST_F(AlgorithmEdgeTest, UniqueOnAllEqualInput) {
  std::vector<int32_t> host(4000, 9);
  auto in = gpusim::ToDevice(stream_, host);
  gpusim::DeviceArray<int32_t> out(host.size(), stream_.device());
  EXPECT_EQ(gpusim::UniqueSorted(stream_, in.data(), host.size(), out.data()),
            1u);
}

// ---------------------------------------------------------------------------
// Backend degenerate relations
// ---------------------------------------------------------------------------

class BackendEdgeTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { core::RegisterBuiltinBackends(); }
  void SetUp() override {
    backend_ = core::BackendRegistry::Instance().Create(GetParam());
  }
  std::unique_ptr<core::Backend> backend_;
};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendEdgeTest,
    ::testing::Values(backends::kThrust, backends::kBoostCompute,
                      backends::kArrayFire, backends::kHandwritten),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) { return !isalnum(c); }),
                 name.end());
      return name;
    });

TEST_P(BackendEdgeTest, SingleRowOperations) {
  const auto col =
      storage::UploadColumn(backend_->stream(), Column(std::vector<int32_t>{5}));
  const auto sel =
      backend_->Select(col, Predicate::Make("x", CompareOp::kEq, 5.0));
  EXPECT_EQ(sel.count, 1u);
  EXPECT_EQ(backend_->Sort(col).ToHost(backend_->stream()).values<int32_t>(),
            (std::vector<int32_t>{5}));
  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(col, AggOp::kSum), 5.0);
}

TEST_P(BackendEdgeTest, GroupByWithSingleGroup) {
  const auto keys = storage::UploadColumn(
      backend_->stream(), Column(std::vector<int32_t>(1000, 42)));
  const auto vals = storage::UploadColumn(
      backend_->stream(), Column(std::vector<double>(1000, 0.5)));
  const auto grouped = backend_->GroupByAggregate(keys, vals, AggOp::kSum);
  ASSERT_EQ(grouped.num_groups, 1u);
  EXPECT_EQ(grouped.keys.ToHost(backend_->stream()).values<int32_t>()[0], 42);
  EXPECT_NEAR(
      grouped.aggregate.ToHost(backend_->stream()).values<double>()[0], 500.0,
      1e-9);
}

TEST_P(BackendEdgeTest, GroupByAllDistinctKeys) {
  std::vector<int32_t> keys(2000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<int32_t>(i);
  const auto k = storage::UploadColumn(backend_->stream(), Column(keys));
  const auto v = storage::UploadColumn(
      backend_->stream(), Column(std::vector<double>(keys.size(), 1.0)));
  const auto grouped = backend_->GroupByAggregate(k, v, AggOp::kCount);
  EXPECT_EQ(grouped.num_groups, keys.size());
}

TEST_P(BackendEdgeTest, JoinWithNoMatches) {
  const auto l = storage::UploadColumn(backend_->stream(),
                                       Column(std::vector<int32_t>{1, 2, 3}));
  const auto r = storage::UploadColumn(
      backend_->stream(), Column(std::vector<int32_t>{10, 20, 30, 40}));
  const auto join = backend_->NestedLoopsJoin(l, r);
  EXPECT_EQ(join.count, 0u);
}

TEST_P(BackendEdgeTest, GatherWithEmptyIndexList) {
  const auto src = storage::UploadColumn(
      backend_->stream(), Column(std::vector<double>{1.0, 2.0}));
  const auto idx = storage::UploadColumn(backend_->stream(),
                                         Column(std::vector<int32_t>{}));
  const auto out = backend_->Gather(src, idx);
  EXPECT_EQ(out.size(), 0u);
}

TEST_P(BackendEdgeTest, UniqueOfSingletonAndAllEqual) {
  const auto one = storage::UploadColumn(backend_->stream(),
                                         Column(std::vector<int32_t>{4}));
  EXPECT_EQ(backend_->Unique(one).size(), 1u);
  const auto same = storage::UploadColumn(
      backend_->stream(), Column(std::vector<int32_t>(512, 8)));
  const auto uniq = backend_->Unique(same);
  ASSERT_EQ(uniq.size(), 1u);
  EXPECT_EQ(uniq.ToHost(backend_->stream()).values<int32_t>()[0], 8);
}

TEST_P(BackendEdgeTest, Q6WithZeroSelectivityReturnsZero) {
  tpch::Config config;
  config.scale_factor = 0.001;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const auto dev = storage::UploadTable(backend_->stream(), lineitem);
  tpch::Q6Params params;
  params.quantity_hi = -1.0;  // nothing qualifies
  EXPECT_DOUBLE_EQ(tpch::RunQ6(*backend_, dev, params), 0.0);
}

TEST_P(BackendEdgeTest, Q1WithCutoffBeforeAllDatesIsEmpty) {
  tpch::Config config;
  config.scale_factor = 0.001;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const auto dev = storage::UploadTable(backend_->stream(), lineitem);
  tpch::Q1Params params;
  params.delta_days = 10000;  // cutoff before any shipdate
  const auto rows = tpch::RunQ1(*backend_, dev, params);
  EXPECT_TRUE(rows.empty());
}

}  // namespace
