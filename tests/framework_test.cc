// Tests of the framework plumbing: registry plug-in mechanism, support
// matrix (Table II), survey (Table I), measurement helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "backends/backends.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "core/support_matrix.h"
#include "core/survey.h"

namespace {

TEST(RegistryTest, BuiltinBackendsRegisteredOnce) {
  core::RegisterBuiltinBackends();
  core::RegisterBuiltinBackends();  // idempotent
  auto& registry = core::BackendRegistry::Instance();
  for (const char* name :
       {backends::kThrust, backends::kBoostCompute, backends::kArrayFire,
        backends::kHandwritten}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    auto backend = registry.Create(name);
    EXPECT_EQ(backend->name(), name);
  }
}

TEST(RegistryTest, UnknownBackendThrows) {
  EXPECT_THROW(core::BackendRegistry::Instance().Create("cuDF"),
               std::out_of_range);
}

TEST(RegistryTest, CustomBackendPluginRegisters) {
  core::RegisterBuiltinBackends();
  auto& registry = core::BackendRegistry::Instance();
  // The framework's plug-in point: a user library registers a factory under
  // a new name and is then creatable like the built-ins.
  const bool registered = registry.Register(
      "MyCustomLib", [] { return backends::CreateHandwrittenBackend(); });
  EXPECT_TRUE(registered);
  EXPECT_TRUE(registry.Contains("MyCustomLib"));
  EXPECT_NE(registry.Create("MyCustomLib"), nullptr);
  // Duplicate registration is rejected, first factory wins.
  EXPECT_FALSE(registry.Register(
      "MyCustomLib", [] { return backends::CreateThrustBackend(); }));
}

TEST(SupportMatrixTest, ReproducesTableIIHeadlines) {
  core::RegisterBuiltinBackends();
  const std::vector<std::string> libs = {
      backends::kArrayFire, backends::kBoostCompute, backends::kThrust};
  const auto entries = core::BuildSupportMatrix(libs);
  EXPECT_EQ(entries.size(), libs.size() * core::AllDbOperators().size());

  int hash_join_support = 0;
  int merge_join_support = 0;
  for (const auto& e : entries) {
    if (e.op == core::DbOperator::kHashJoin &&
        e.realization.level != core::SupportLevel::kNone) {
      ++hash_join_support;
    }
    if (e.op == core::DbOperator::kMergeJoin &&
        e.realization.level != core::SupportLevel::kNone) {
      ++merge_join_support;
    }
  }
  // The paper's headline finding: hashing is supported by NO library.
  EXPECT_EQ(hash_join_support, 0);
  EXPECT_EQ(merge_join_support, 0);
}

TEST(SupportMatrixTest, FunctionNamesMatchPaperMapping) {
  core::RegisterBuiltinBackends();
  auto thrust = core::BackendRegistry::Instance().Create(backends::kThrust);
  EXPECT_EQ(thrust->Realization(core::DbOperator::kGroupedAggregation)
                .functions,
            "reduce_by_key()");
  EXPECT_EQ(thrust->Realization(core::DbOperator::kNestedLoopsJoin).functions,
            "for_each_n()");
  auto af = core::BackendRegistry::Instance().Create(backends::kArrayFire);
  EXPECT_EQ(af->Realization(core::DbOperator::kSelection).functions,
            "where(operator())");
  EXPECT_EQ(af->Realization(core::DbOperator::kGroupedAggregation).functions,
            "sumByKey(), countByKey()");
  EXPECT_EQ(af->Realization(core::DbOperator::kConjunction).functions,
            "setIntersect()");
}

TEST(SupportMatrixTest, PrintRendersAllOperators) {
  core::RegisterBuiltinBackends();
  std::ostringstream os;
  core::PrintSupportMatrix(
      os, {backends::kArrayFire, backends::kBoostCompute, backends::kThrust});
  const std::string text = os.str();
  for (core::DbOperator op : core::AllDbOperators()) {
    EXPECT_NE(text.find(core::DbOperatorName(op)), std::string::npos)
        << core::DbOperatorName(op);
  }
  EXPECT_NE(text.find("~ partial support"), std::string::npos);
}

TEST(SurveyTest, ContainsTheThreeStudiedLibraries) {
  const auto& rows = core::LibrarySurvey();
  EXPECT_GE(rows.size(), 30u);
  int db_libs = 0;
  bool thrust = false, boost = false, af = false;
  for (const auto& row : rows) {
    if (row.use_case.find("Database operators") != std::string::npos) {
      ++db_libs;
    }
    if (row.name == "Thrust") thrust = true;
    if (row.name == "Boost.Compute") boost = true;
    if (row.name == "ArrayFire") af = true;
  }
  EXPECT_TRUE(thrust);
  EXPECT_TRUE(boost);
  EXPECT_TRUE(af);
  // The paper: only 5 libraries target database operators.
  EXPECT_EQ(db_libs, 5);
}

TEST(SurveyTest, HistogramMatchesRows) {
  const auto hist = core::SurveyUseCaseHistogram();
  size_t total = 0;
  for (const auto& [use_case, count] : hist) total += count;
  EXPECT_EQ(total, core::LibrarySurvey().size());
}

TEST(SurveyTest, PrintsTable) {
  std::ostringstream os;
  core::PrintSurvey(os);
  EXPECT_NE(os.str().find("Thrust"), std::string::npos);
  EXPECT_NE(os.str().find("Use-case histogram"), std::string::npos);
}

TEST(MetricsTest, ScopedMeasurementCapturesRegion) {
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  core::ScopedMeasurement scope(stream, "region");
  gpusim::KernelStats stats;
  stats.bytes_read = 1 << 20;
  stats.bytes_written = 1 << 10;
  stream.ChargeKernel(stats);
  const core::Measurement m = scope.Stop();
  EXPECT_EQ(m.label, "region");
  EXPECT_EQ(m.kernels, 1u);
  EXPECT_EQ(m.bytes_read, 1u << 20);
  EXPECT_EQ(m.bytes_written, 1u << 10);
  EXPECT_GT(m.simulated_ns, 0u);
  std::ostringstream os;
  core::PrintMeasurement(os, m);
  EXPECT_NE(os.str().find("region"), std::string::npos);
}

TEST(MetricsTest, MeasurementIsolatesConcurrentStreams) {
  gpusim::Stream a(gpusim::Device::Default(), gpusim::ApiProfile::Cuda());
  gpusim::Stream b(gpusim::Device::Default(), gpusim::ApiProfile::Cuda());
  core::ScopedMeasurement scope(a, "a-only");
  gpusim::KernelStats stats;
  b.ChargeKernel(stats);  // other stream's kernel
  const core::Measurement m = scope.Stop();
  // Simulated time is per-stream; counters are device-wide by design.
  EXPECT_EQ(m.simulated_ns, 0u);
}

}  // namespace
