// Serving-tier tests: the shared percentile helper, plan fingerprints, the
// LRU plan cache and its invalidation rules (changed table stats, device
// count, backend, catalog reload), stale-plan lifetime safety, tenant QoS
// dequeue (weighted fair share + aging) on the scheduler, admission fields
// on rejected records, and the socket server end to end. Built into the
// concurrency_tests binary, which CI also runs under ThreadSanitizer.
#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "backends/backends.h"
#include "core/governor.h"
#include "core/resilience.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "core/scheduler.h"
#include "gpusim/device.h"
#include "gpusim/device_group.h"
#include "gpusim/fault.h"
#include "plan/fingerprint.h"
#include "plan/prepared.h"
#include "serve/client.h"
#include "serve/plan_cache.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace serve {
namespace {

constexpr uint64_t kMiB = uint64_t{1} << 20;

bool Near(double got, double want) {
  return std::abs(got - want) <= std::abs(want) * 1e-9 + 1e-6;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { core::RegisterBuiltinBackends(); }
};

// --------------------------------------------------------------------------
// core/metrics.h: the shared nearest-rank percentile helper
// --------------------------------------------------------------------------

TEST(MetricsTest, NearestRankPercentiles) {
  EXPECT_EQ(core::PercentileOfSorted({}, 0.5), 0.0);
  EXPECT_EQ(core::PercentileOfSorted({7.0}, 0.5), 7.0);
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(core::PercentileOfSorted(v, 0.0), 1.0);
  EXPECT_EQ(core::PercentileOfSorted(v, 0.50), 2.0);  // ceil(.5*4) = rank 2
  EXPECT_EQ(core::PercentileOfSorted(v, 0.75), 3.0);
  EXPECT_EQ(core::PercentileOfSorted(v, 0.99), 4.0);
  EXPECT_EQ(core::PercentileOfSorted(v, 1.0), 4.0);
}

TEST(MetricsTest, SummarizeLatenciesSortsItsInput) {
  const core::LatencySummary s = core::SummarizeLatencies({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.p50, 2.0);
  EXPECT_EQ(s.p95, 4.0);
  EXPECT_EQ(s.p99, 4.0);
  EXPECT_EQ(s.max, 4.0);
}

// --------------------------------------------------------------------------
// plan/fingerprint.h: shape hashes and table-stats fingerprints
// --------------------------------------------------------------------------

TEST(FingerprintTest, ShapeHashDiscriminatesQueryParamsAndEncoding) {
  plan::QueryShape a;
  a.query = plan::TpchQuery::kQ6;
  plan::QueryShape same = a;
  EXPECT_EQ(plan::QueryShapeHash(a), plan::QueryShapeHash(same));

  plan::QueryShape params = a;
  params.q6.quantity_hi += 1.0;
  EXPECT_NE(plan::QueryShapeHash(a), plan::QueryShapeHash(params));

  plan::QueryShape other_query = a;
  other_query.query = plan::TpchQuery::kQ1;
  EXPECT_NE(plan::QueryShapeHash(a), plan::QueryShapeHash(other_query));

  plan::QueryShape encoded = a;
  encoded.use_encoding = true;
  EXPECT_NE(plan::QueryShapeHash(a), plan::QueryShapeHash(encoded));

  // Only the active query's parameters discriminate: a q6 shape with
  // different q1 parameters is still the same plan.
  plan::QueryShape inactive = a;
  inactive.q1.delta_days += 30;
  EXPECT_EQ(plan::QueryShapeHash(a), plan::QueryShapeHash(inactive));
}

TEST_F(ServeTest, StatsFingerprintTracksRowCountAndEncoding) {
  auto backend = core::BackendRegistry::Instance().Create(
      backends::kHandwritten);
  tpch::Config small;
  small.scale_factor = 0.002;
  tpch::Config big;
  big.scale_factor = 0.004;
  const storage::Table li_small = tpch::GenerateLineitem(small);
  const storage::Table li_big = tpch::GenerateLineitem(big);
  plan::TpchHostTables host_small;
  host_small.lineitem = &li_small;
  plan::TpchHostTables host_big;
  host_big.lineitem = &li_big;

  const auto small_raw =
      plan::MakeResident(backend->stream(), host_small, false);
  const auto small_raw_again =
      plan::MakeResident(backend->stream(), host_small, false);
  const auto small_encoded =
      plan::MakeResident(backend->stream(), host_small, true);
  const auto big_raw = plan::MakeResident(backend->stream(), host_big, false);

  // Same upload -> same fingerprint; changed row count or encoding -> new.
  EXPECT_EQ(small_raw->stats_fingerprint, small_raw_again->stats_fingerprint);
  EXPECT_NE(small_raw->stats_fingerprint, big_raw->stats_fingerprint);
  EXPECT_NE(small_raw->stats_fingerprint, small_encoded->stats_fingerprint);
}

// --------------------------------------------------------------------------
// serve/plan_cache.h: LRU behavior and key sensitivity
// --------------------------------------------------------------------------

/// One real prepared plan to store under synthetic keys.
std::shared_ptr<const plan::PreparedTpchQuery> MakeAnyPlan(
    core::Backend& backend, const storage::Table& lineitem) {
  plan::TpchHostTables host;
  host.lineitem = &lineitem;
  plan::QueryShape shape;
  shape.query = plan::TpchQuery::kQ6;
  return plan::PrepareTpchQuery(shape,
                                plan::MakeResident(backend.stream(), host,
                                                   /*use_encoding=*/false),
                                backends::kHandwritten);
}

TEST_F(ServeTest, PlanCacheLruEvictsLeastRecentlyUsed) {
  auto backend = core::BackendRegistry::Instance().Create(
      backends::kHandwritten);
  tpch::Config config;
  config.scale_factor = 0.002;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const auto plan = MakeAnyPlan(*backend, lineitem);

  PlanCache cache(/*capacity=*/2);
  const plan::PlanCacheKey k1{1, 10, "Handwritten", 1};
  const plan::PlanCacheKey k2{2, 10, "Handwritten", 1};
  const plan::PlanCacheKey k3{3, 10, "Handwritten", 1};

  EXPECT_EQ(cache.Lookup(k1), nullptr);
  cache.Insert(k1, plan);
  cache.Insert(k2, plan);
  EXPECT_NE(cache.Lookup(k1), nullptr);  // refreshes k1; k2 is now LRU
  cache.Insert(k3, plan);                // evicts k2
  EXPECT_EQ(cache.Lookup(k2), nullptr);
  EXPECT_NE(cache.Lookup(k3), nullptr);

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);

  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.Lookup(k1), nullptr);
}

TEST_F(ServeTest, AnyKeyComponentChangeMissesTheCache) {
  auto backend = core::BackendRegistry::Instance().Create(
      backends::kHandwritten);
  tpch::Config config;
  config.scale_factor = 0.002;
  const storage::Table lineitem = tpch::GenerateLineitem(config);

  PlanCache cache(4);
  const plan::PlanCacheKey key{7, 9, "Handwritten", 1};
  cache.Insert(key, MakeAnyPlan(*backend, lineitem));

  plan::PlanCacheKey stats = key;
  stats.stats_fingerprint += 1;  // e.g. reloaded tables, new row count
  plan::PlanCacheKey devices = key;
  devices.device_count = 2;  // relayout across more devices
  plan::PlanCacheKey other_backend = key;
  other_backend.backend = "Thrust";
  plan::PlanCacheKey shape = key;
  shape.shape_hash += 1;

  EXPECT_FALSE(key == stats);
  EXPECT_FALSE(key == devices);
  EXPECT_EQ(cache.Lookup(stats), nullptr);
  EXPECT_EQ(cache.Lookup(devices), nullptr);
  EXPECT_EQ(cache.Lookup(other_backend), nullptr);
  EXPECT_EQ(cache.Lookup(shape), nullptr);
  EXPECT_NE(cache.Lookup(key), nullptr);
}

// --------------------------------------------------------------------------
// The server: reload invalidation, stale-plan safety, socket end to end
// --------------------------------------------------------------------------

TEST_F(ServeTest, ReloadInvalidatesPlanCacheAndServesNewData) {
  ServerOptions options;  // empty socket path: in-process only
  options.catalog.scale_factor = 0.004;
  options.num_clients = 2;
  QueryServer server(options);
  server.Start();
  const Session session =
      server.OpenSession("tenant-a", TenantClass::kInteractive);

  const QueryReply first = server.Execute(session, "q6");
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.rejected);
  const double ref_small = tpch::ReferenceQ6(server.catalog().lineitem());
  EXPECT_TRUE(Near(first.result.scalar, ref_small));

  const QueryReply second = server.Execute(session, "q6");
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.scalar, first.result.scalar);
  // Timing determinism: replaying the cached plan charges the same
  // simulated work, so the simulated latency is bit-identical.
  EXPECT_EQ(second.simulated_ns, first.simulated_ns);

  // Reload at a different scale factor: new row counts -> new stats
  // fingerprint -> the cached plan can never be served again.
  server.ReloadCatalog(0.008);
  const QueryReply third = server.Execute(session, "q6");
  EXPECT_FALSE(third.cache_hit) << "changed table stats must miss";
  const double ref_big = tpch::ReferenceQ6(server.catalog().lineitem());
  EXPECT_TRUE(Near(third.result.scalar, ref_big));
  EXPECT_NE(third.result.scalar, first.result.scalar)
      << "reloaded catalog should produce a different answer";

  const StatsReply stats = server.Stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.catalog_generation, 1u);
}

TEST_F(ServeTest, StalePreparedPlanKeepsItsResidencySnapshotAlive) {
  ServerOptions options;
  options.catalog.scale_factor = 0.004;
  QueryServer server(options);
  server.Start();

  // Prepare a plan against the current residency, then reload the catalog
  // out from under it. The plan co-owns its snapshot, so running it is safe
  // by construction and still answers from the OLD data.
  plan::QueryShape shape;
  shape.query = plan::TpchQuery::kQ6;
  shape.use_encoding = options.catalog.use_encoding;
  auto stale = plan::PrepareTpchQuery(shape, server.catalog().resident(),
                                      backends::kHandwritten);
  const double old_ref = tpch::ReferenceQ6(server.catalog().lineitem());

  server.ReloadCatalog(0.008);
  const double new_ref = tpch::ReferenceQ6(server.catalog().lineitem());
  ASSERT_FALSE(Near(old_ref, new_ref));

  auto backend = core::BackendRegistry::Instance().Create(
      backends::kHandwritten);
  const plan::TpchQueryResult result = stale->Run(*backend);
  EXPECT_TRUE(Near(result.scalar, old_ref));
}

TEST_F(ServeTest, SocketServerEndToEnd) {
  ServerOptions options;
  options.socket_path =
      "/tmp/serve_test_" + std::to_string(::getpid()) + ".sock";
  options.catalog.scale_factor = 0.004;
  options.num_clients = 2;
  QueryServer server(options);
  server.Start();

  Client client(options.socket_path, "socket-tenant",
                TenantClass::kInteractive);
  EXPECT_EQ(client.hello().scale_factor, 0.004);
  EXPECT_EQ(client.hello().backend, backends::kHandwritten);
  EXPECT_TRUE(client.hello().encoded);

  const QueryReply first = client.Query("q6");
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(
      Near(first.result.scalar,
           tpch::ReferenceQ6(server.catalog().lineitem())));
  const QueryReply second = client.Query("q6");
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.scalar, first.result.scalar);

  // A bad query name comes back as an error reply; the connection (and the
  // session) keep working afterwards.
  EXPECT_THROW(client.Query("q99"), std::runtime_error);
  const QueryReply q1 = client.Query("q1");
  const std::vector<tpch::Q1Row> ref_q1 =
      tpch::ReferenceQ1(server.catalog().lineitem());
  ASSERT_EQ(q1.result.q1.size(), ref_q1.size());
  for (size_t i = 0; i < ref_q1.size(); ++i) {
    EXPECT_EQ(q1.result.q1[i].count_order, ref_q1[i].count_order);
    EXPECT_TRUE(Near(q1.result.q1[i].sum_qty, ref_q1[i].sum_qty));
  }

  const StatsReply stats = client.Stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);

  client.Shutdown();
  server.WaitForShutdown();
  server.Stop();
}

// --------------------------------------------------------------------------
// Tenant policy and registry
// --------------------------------------------------------------------------

TEST(TenantTest, PolicyOrdersClassesAndParsesNames) {
  const TenantPolicy interactive = PolicyFor(TenantClass::kInteractive);
  const TenantPolicy batch = PolicyFor(TenantClass::kBatch);
  const TenantPolicy best_effort = PolicyFor(TenantClass::kBestEffort);
  EXPECT_GT(interactive.weight, batch.weight);
  EXPECT_GT(batch.weight, best_effort.weight);
  // Lower-priority classes tolerate longer waits before the aging boost.
  EXPECT_LT(interactive.starvation_bound_ms, batch.starvation_bound_ms);
  EXPECT_LT(batch.starvation_bound_ms, best_effort.starvation_bound_ms);

  EXPECT_EQ(ParseTenantClass("interactive"), TenantClass::kInteractive);
  EXPECT_EQ(ParseTenantClass("batch"), TenantClass::kBatch);
  EXPECT_EQ(ParseTenantClass("besteffort"), TenantClass::kBestEffort);
  EXPECT_EQ(ParseTenantClass("best-effort"), TenantClass::kBestEffort);
  EXPECT_THROW(ParseTenantClass("realtime"), std::invalid_argument);
}

TEST(TenantTest, RegistryAssignsStableIdsPerName) {
  TenantRegistry registry;
  const core::TenantSpec a1 =
      registry.Register("alice", TenantClass::kInteractive);
  const core::TenantSpec a2 =
      registry.Register("alice", TenantClass::kInteractive);
  const core::TenantSpec b = registry.Register("bob", TenantClass::kBatch);
  EXPECT_EQ(a1.id, a2.id) << "sessions of one tenant share an account";
  EXPECT_NE(a1.id, b.id);
  EXPECT_GT(a1.weight, b.weight);
  EXPECT_EQ(a1.name, "alice");
}

// --------------------------------------------------------------------------
// core/scheduler.h: tenant-weighted dequeue, aging, rejected-record fields
// --------------------------------------------------------------------------

class QosSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override { core::RegisterBuiltinBackends(); }

  core::SchedulerOptions Opts(unsigned clients, size_t capacity = 32) {
    core::SchedulerOptions o;
    o.backend_name = backends::kHandwritten;
    o.num_clients = clients;
    o.queue_capacity = capacity;
    return o;
  }

  /// Blocks the (single) client until Release(), so a batch of submissions
  /// queues up and the dequeue order is decided in one deterministic pass.
  core::QueryFn Gate() {
    return [this](core::Backend&) {
      std::unique_lock<std::mutex> lock(gate_mu_);
      gate_running_ = true;
      gate_cv_.notify_all();
      gate_cv_.wait(lock, [&] { return gate_open_; });
    };
  }
  void AwaitGateRunning() {
    std::unique_lock<std::mutex> lock(gate_mu_);
    gate_cv_.wait(lock, [&] { return gate_running_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(gate_mu_);
    gate_open_ = true;
    gate_cv_.notify_all();
  }

  /// Query fn that appends its label to the shared execution-order log.
  core::QueryFn Logged(const std::string& label) {
    return [this, label](core::Backend&) {
      std::lock_guard<std::mutex> lock(order_mu_);
      order_.push_back(label);
    };
  }
  std::vector<std::string> Order() {
    std::lock_guard<std::mutex> lock(order_mu_);
    return order_;
  }

 private:
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool gate_running_ = false;
  bool gate_open_ = false;
  std::mutex order_mu_;
  std::vector<std::string> order_;
};

TEST_F(QosSchedulerTest, WeightedFairShareInterleavesByWeight) {
  core::QueryScheduler scheduler(Opts(1));
  scheduler.Submit("gate", Gate());
  AwaitGateRunning();

  core::TenantSpec heavy{0, "heavy", 4.0, 0};
  core::TenantSpec light{1, "light", 1.0, 0};
  const auto submit = [&](const std::string& label,
                          const core::TenantSpec& tenant) {
    core::SubmitOptions submit_opts;
    submit_opts.tenant = tenant;
    scheduler.Submit(label, Logged(label), submit_opts);
  };
  // Interleaved submission order; fair share must reorder it 4:1.
  submit("A0", heavy);
  submit("B0", light);
  submit("A1", heavy);
  submit("B1", light);
  submit("A2", heavy);
  submit("B2", light);
  submit("A3", heavy);
  submit("B3", light);
  Release();
  scheduler.Drain();

  // Start-time fair queuing with weights 4:1: A pays 0.25 virtual service
  // per query, B pays 1.0, ties go to the earlier submission.
  const std::vector<std::string> expected = {"A0", "B0", "A1", "A2",
                                             "A3", "B1", "B2", "B3"};
  EXPECT_EQ(Order(), expected);

  // Tenant identity lands on the records.
  for (const core::QueryRecord& r : scheduler.Records()) {
    if (r.label == "gate") continue;
    EXPECT_EQ(r.tenant, r.label[0] == 'A' ? "heavy" : "light");
    EXPECT_GE(r.queue_wait_ms, 0.0);
  }
}

TEST_F(QosSchedulerTest, AgingBoundsStarvationOfALowWeightTenant) {
  core::QueryScheduler scheduler(Opts(1));

  // Phase 1: the starved tenant runs once at a tiny weight, pushing its
  // virtual service far ahead — pure fair share would now park it behind
  // any fresh tenant for a long time.
  core::TenantSpec starved{7, "starved", 0.001, 60};
  {
    core::SubmitOptions submit_opts;
    submit_opts.tenant = starved;
    scheduler.Submit("warmup", Logged("warmup"), submit_opts);
  }
  scheduler.Drain();

  // Phase 2: queue one starved-tenant query behind a fresh tenant's burst
  // and let it sit past its starvation bound before the queue drains.
  scheduler.Submit("gate", Gate());
  AwaitGateRunning();
  core::TenantSpec fresh{8, "fresh", 1.0, 0};
  {
    core::SubmitOptions submit_opts;
    submit_opts.tenant = starved;
    scheduler.Submit("L", Logged("L"), submit_opts);
  }
  for (int i = 0; i < 4; ++i) {
    core::SubmitOptions submit_opts;
    submit_opts.tenant = fresh;
    scheduler.Submit("H" + std::to_string(i), Logged("H" + std::to_string(i)),
                     submit_opts);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Release();
  scheduler.Drain();

  // The aging rule must pull L to the very front despite its huge virtual
  // service debt.
  const std::vector<std::string> order = Order();
  ASSERT_EQ(order.size(), 6u);  // warmup + L + 4x H
  EXPECT_EQ(order[1], "L") << "aged query must preempt fair-share order";

  for (const core::QueryRecord& r : scheduler.Records()) {
    if (r.label == "L") {
      EXPECT_TRUE(r.aged);
      EXPECT_GT(r.queue_wait_ms, 60.0);
    } else {
      EXPECT_FALSE(r.aged);
    }
  }
}

TEST_F(QosSchedulerTest, RejectedAdmissionPopulatesRecordAndCallback) {
  // Private governed device so this test cannot disturb (or be disturbed
  // by) the default device other tests upload to.
  gpusim::DeviceProperties props;
  props.global_memory_bytes = kMiB;
  gpusim::Device device(props);
  core::GovernorOptions governor_opts;
  governor_opts.device = &device;
  governor_opts.queue_timeout_ms = 50;
  core::MemoryGovernor governor(governor_opts);

  core::SchedulerOptions opts = Opts(2);
  opts.governor = &governor;
  opts.retry.max_attempts = 1;
  core::QueryScheduler scheduler(opts);

  // The hog is granted the whole device and sits on it past the victim's
  // admission timeout.
  std::atomic<bool> hog_running{false};
  core::SubmitOptions hog_submit;
  hog_submit.footprint_bytes = kMiB;
  scheduler.Submit(
      "hog",
      [&](core::Backend&) {
        hog_running.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
      },
      hog_submit);
  while (!hog_running.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::promise<core::QueryRecord> done;
  std::atomic<bool> victim_ran{false};
  core::SubmitOptions victim_submit;
  victim_submit.footprint_bytes = kMiB;
  victim_submit.tenant = core::TenantSpec{3, "victim-tenant", 2.0, 0};
  victim_submit.on_complete = [&](const core::QueryRecord& r) {
    done.set_value(r);
  };
  scheduler.Submit("victim", [&](core::Backend&) { victim_ran.store(true); },
                   victim_submit);

  // The completion callback fires even though the query never executed, and
  // the record carries the full admission/governor story.
  const core::QueryRecord record = done.get_future().get();
  EXPECT_FALSE(record.ok);
  EXPECT_TRUE(record.admission_rejected);
  EXPECT_TRUE(record.admission_queued)
      << "a queued-then-timed-out rejection must report that it waited";
  EXPECT_EQ(record.footprint_bytes, kMiB);
  EXPECT_EQ(record.granted_bytes, 0u);
  EXPECT_GT(record.admission_wait_ms, 0.0);
  EXPECT_EQ(record.tenant_id, 3);
  EXPECT_EQ(record.tenant, "victim-tenant");
  EXPECT_FALSE(victim_ran.load()) << "rejected query must never execute";
  scheduler.Drain();
}

// --------------------------------------------------------------------------
// Server hardening: malformed frames, client disconnects, load shedding
// --------------------------------------------------------------------------

std::string TestSocketPath(const std::string& tag) {
  return "/tmp/serve_test_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

/// Connects to the server socket without speaking the protocol — the
/// adversarial client's entry point.
int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendRaw(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: the peer may hang up first; the test only cares the
    // bytes were offered, not that anyone read them.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

size_t OpenFdCount() {
  size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

bool WaitForActiveConnections(const QueryServer& server, size_t want) {
  for (int i = 0; i < 2000; ++i) {
    if (server.ActiveConnections() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST_F(ServeTest, MalformedFramesGetTypedErrorsAndNeverKillTheServer) {
  ServerOptions options;
  options.socket_path = TestSocketPath("malformed");
  options.catalog.scale_factor = 0.002;
  QueryServer server(options);
  server.Start();

  // Oversized length prefix: rejected before any allocation, answered with
  // a typed error, session ended (the stream is desynchronized).
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    Writer w;
    w.U32(kMaxFrameBytes + 1);
    w.U8(static_cast<uint8_t>(MsgType::kHello));
    SendRaw(fd, w.bytes());
    MsgType type;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(fd, &type, &payload));
    EXPECT_EQ(type, MsgType::kError);
    ::close(fd);
  }

  // Truncated header: two bytes then EOF. Nothing to reply to; the server
  // counts it and moves on.
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    SendRaw(fd, {0xde, 0xad});
    ::close(fd);
  }

  // Well-framed but short payload for its type: typed error, and the
  // connection KEEPS WORKING — a proper hello on the same socket succeeds.
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    WriteFrame(fd, MsgType::kHello, {0x01, 0x02});
    MsgType type;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(fd, &type, &payload));
    EXPECT_EQ(type, MsgType::kError);

    HelloRequest req;
    req.tenant = "recovered";
    Writer w;
    Encode(req, w);
    WriteFrame(fd, MsgType::kHello, w.bytes());
    ASSERT_TRUE(ReadFrame(fd, &type, &payload));
    EXPECT_EQ(type, MsgType::kHelloOk);
    ::close(fd);
  }

  // Unknown message type: typed error, connection stays up.
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    WriteFrame(fd, static_cast<MsgType>(0x7f), {});
    MsgType type;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(fd, &type, &payload));
    EXPECT_EQ(type, MsgType::kError);
    ::close(fd);
  }

  // Seeded fuzz: random byte blobs. The server may answer or hang up, but
  // it must never crash and must keep accepting real clients.
  std::mt19937_64 rng(20260808);
  for (int i = 0; i < 32; ++i) {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> blob(1 + rng() % 64);
    for (uint8_t& b : blob) b = static_cast<uint8_t>(rng());
    // Keep a random frame from spelling a legitimate kShutdown request.
    if (blob.size() >= 5 &&
        blob[4] == static_cast<uint8_t>(MsgType::kShutdown)) {
      blob[4] = 0x7f;
    }
    SendRaw(fd, blob);
    ::close(fd);
  }

  // The server survived all of it: a fresh session still gets answers.
  Client client(options.socket_path, "survivor", TenantClass::kInteractive);
  const QueryReply reply = client.Query("q6");
  EXPECT_TRUE(Near(reply.result.scalar,
                   tpch::ReferenceQ6(server.catalog().lineitem())));
  const StatsReply stats = client.Stats();
  EXPECT_GE(stats.malformed, 4u);

  client.Shutdown();
  server.WaitForShutdown();
  server.Stop();
}

TEST_F(ServeTest, ClientDisconnectMidQueryLeaksNothing) {
  ServerOptions options;
  options.socket_path = TestSocketPath("disconnect");
  options.catalog.scale_factor = 0.002;
  QueryServer server(options);
  server.Start();

  const size_t fds_before = OpenFdCount();

  // 100 connect-kill cycles: handshake, fire a query, vanish without
  // reading the reply. Every cycle's thread and fd must be reclaimed by the
  // accept loop's reaping, not pile up until Stop().
  for (int cycle = 0; cycle < 100; ++cycle) {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0) << "cycle " << cycle;
    HelloRequest hello;
    hello.tenant = "ghost";
    Writer w;
    Encode(hello, w);
    WriteFrame(fd, MsgType::kHello, w.bytes());
    MsgType type;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(fd, &type, &payload));
    ASSERT_EQ(type, MsgType::kHelloOk);

    QueryRequest q;
    q.query = "q6";
    Writer qw;
    Encode(q, qw);
    WriteFrame(fd, MsgType::kQuery, qw.bytes());
    ::close(fd);  // gone before the reply
  }

  // A well-behaved session still works afterwards, and once its accept has
  // reaped the corpses it is the only live connection.
  {
    Client client(options.socket_path, "alive", TenantClass::kInteractive);
    const QueryReply reply = client.Query("q6");
    EXPECT_TRUE(Near(reply.result.scalar,
                     tpch::ReferenceQ6(server.catalog().lineitem())));
    EXPECT_TRUE(WaitForActiveConnections(server, 1))
        << "ghost connections never drained; active="
        << server.ActiveConnections();
    client.Shutdown();
  }
  server.WaitForShutdown();
  server.Stop();
  EXPECT_TRUE(WaitForActiveConnections(server, 0));

  // All sockets handed back: within a small slack of the baseline (the
  // listener itself is gone after Stop()).
  const size_t fds_after = OpenFdCount();
  EXPECT_LE(fds_after, fds_before + 2)
      << "fd leak across connect-kill cycles";
}

TEST_F(ServeTest, ConnectionCapShedsWithTypedOverloadReply) {
  ServerOptions options;
  options.socket_path = TestSocketPath("cap");
  options.catalog.scale_factor = 0.002;
  options.max_connections = 1;
  options.retry_after_ms = 75;
  QueryServer server(options);
  server.Start();

  Client first(options.socket_path, "holder", TenantClass::kInteractive);

  // The second connection is shed at accept with the typed reply and the
  // server's retry-after hint — visible on a raw socket...
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    MsgType type;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(fd, &type, &payload));
    ASSERT_EQ(type, MsgType::kOverloaded);
    Reader r(payload);
    const OverloadReply shed = DecodeOverloadReply(r);
    EXPECT_EQ(shed.retry_after_ms, 75u);
    EXPECT_NE(shed.reason.find("connection limit"), std::string::npos);
    ::close(fd);
  }
  // ...and surfaced as a typed throw through the client library.
  EXPECT_THROW(Client(options.socket_path, "late", TenantClass::kBatch),
               std::runtime_error);

  const StatsReply stats = first.Stats();
  EXPECT_GE(stats.overloaded, 2u);

  first.Shutdown();
  server.WaitForShutdown();
  server.Stop();
}

TEST_F(ServeTest, OpenBreakerShedsQueriesUntilTheProbeHeals) {
  core::ResilienceManager& rm = core::ResilienceManager::Global();
  rm.Reset();
  ServerOptions options;
  options.socket_path = TestSocketPath("breaker");
  options.catalog.scale_factor = 0.002;
  QueryServer server(options);
  server.Start();

  Client client(options.socket_path, "tenant", TenantClass::kInteractive);
  EXPECT_FALSE(client.Query("q6").overloaded);

  // Trip the breaker for the serving backend on device 0 — what a run of
  // real execution failures would do — and watch admission shed.
  rm.RecordFailure(options.catalog.backend, 0);
  rm.RecordFailure(options.catalog.backend, 0);
  rm.RecordFailure(options.catalog.backend, 0);
  const QueryReply shed = client.Query("q6");
  EXPECT_TRUE(shed.overloaded);
  EXPECT_EQ(shed.retry_after_ms, options.retry_after_ms);

  // Each shed admission advances the breaker cooldown; eventually one query
  // is admitted as the half-open probe, succeeds, and closes the breaker.
  bool healed = false;
  for (int i = 0; i < 64 && !healed; ++i) {
    healed = !client.Query("q6").overloaded;
  }
  EXPECT_TRUE(healed) << "probe never admitted";
  EXPECT_FALSE(client.Query("q6").overloaded) << "breaker should be closed";

  const StatsReply stats = client.Stats();
  EXPECT_GT(stats.overloaded, 0u);

  client.Shutdown();
  server.WaitForShutdown();
  server.Stop();
  rm.Reset();
}

// --------------------------------------------------------------------------
// Self-healing fleet: drain-aware readmission, per-tenant shed priorities,
// and the client's seeded retry helper.
// --------------------------------------------------------------------------

TEST_F(ServeTest, ReadmitDeviceRebalancesWithoutDrainAndHealsBreakers) {
  core::ResilienceManager& rm = core::ResilienceManager::Global();
  rm.Reset();
  gpusim::DeviceGroup fleet(2);
  ServerOptions options;  // in-process only
  options.catalog.scale_factor = 0.004;
  options.fleet = &fleet;
  QueryServer server(options);
  server.Start();
  const Session session =
      server.OpenSession("tenant-a", TenantClass::kInteractive);

  const QueryReply miss = server.Execute(session, "q6");
  const QueryReply hit = server.Execute(session, "q6");
  ASSERT_TRUE(hit.cache_hit);
  const double ref = tpch::ReferenceQ6(server.catalog().lineitem());
  ASSERT_TRUE(Near(hit.result.scalar, ref));

  // The serving ordinal dies and its breaker opens.
  fleet.MarkLost(0);
  rm.RecordFailure(options.catalog.backend, 0);
  rm.RecordFailure(options.catalog.backend, 0);
  rm.RecordFailure(options.catalog.backend, 0);
  ASSERT_EQ(rm.StateOf(options.catalog.backend, 0),
            core::CircuitBreaker::State::kOpen);

  ASSERT_TRUE(server.ReadmitDevice(0));
  server.WaitForRebalance();

  EXPECT_TRUE(fleet.IsAlive(0));
  EXPECT_EQ(fleet.fleet_stats().readmissions, 1u);
  EXPECT_EQ(rm.StateOf(options.catalog.backend, 0),
            core::CircuitBreaker::State::kClosed)
      << "the passing probe must heal the breaker, not just the fleet state";
  EXPECT_EQ(server.catalog().generation(), 1u)
      << "the rebalance bumps the residency generation";

  // The plan cache was cleared (new residency), but the answer and the
  // cache-hit simulated latency are unchanged: the host tables never moved.
  const QueryReply remiss = server.Execute(session, "q6");
  EXPECT_FALSE(remiss.cache_hit);
  EXPECT_TRUE(Near(remiss.result.scalar, ref));
  const QueryReply rehit = server.Execute(session, "q6");
  EXPECT_TRUE(rehit.cache_hit);
  EXPECT_EQ(rehit.simulated_ns, hit.simulated_ns)
      << "drain-free rebalance must not move the simulated query cost";
  EXPECT_EQ(rehit.result.scalar, hit.result.scalar);

  const StatsReply stats = server.Stats();
  EXPECT_EQ(stats.devices_readmitted, 1u);
  EXPECT_EQ(stats.catalog_rebalances, 1u);
  (void)miss;
  rm.Reset();
}

TEST_F(ServeTest, ReadmitDeviceRejectsBadOrdinalsAndFailedProbes) {
  core::ResilienceManager& rm = core::ResilienceManager::Global();
  rm.Reset();
  {
    ServerOptions options;  // no fleet attached
    options.catalog.scale_factor = 0.002;
    QueryServer server(options);
    server.Start();
    EXPECT_FALSE(server.ReadmitDevice(0)) << "no fleet -> nothing to readmit";
  }

  gpusim::DeviceGroup fleet(2);
  // One-shot kill scoped to the probe stream: the first readmission attempt
  // must fail and report false; the second passes.
  gpusim::FaultRule rule;
  rule.site = gpusim::FaultSite::kKernel;
  rule.kind = gpusim::FaultKind::kDeviceLost;
  rule.stream_label = "probe";
  rule.at_call = 1;
  rule.max_fires = 1;
  fleet.ArmFaultInjector(1, 11).AddRule(rule);

  ServerOptions options;
  options.catalog.scale_factor = 0.002;
  options.fleet = &fleet;
  QueryServer server(options);
  server.Start();

  EXPECT_FALSE(server.ReadmitDevice(-1));
  EXPECT_FALSE(server.ReadmitDevice(2));
  EXPECT_TRUE(server.ReadmitDevice(0)) << "an alive ordinal is a no-op true";

  fleet.MarkLost(1);
  EXPECT_FALSE(server.ReadmitDevice(1)) << "the armed probe kill must fail";
  EXPECT_EQ(fleet.state(1), gpusim::DeviceState::kLost);
  EXPECT_TRUE(server.ReadmitDevice(1)) << "the retry probe passes";
  server.WaitForRebalance();
  EXPECT_TRUE(fleet.IsAlive(1));
  EXPECT_EQ(server.Stats().devices_readmitted, 1u);
  rm.Reset();
}

TEST_F(ServeTest, TenantClassesShedInPriorityOrderWithScaledRetryAfter) {
  core::ResilienceManager::Global().Reset();
  ServerOptions options;  // in-process only
  options.catalog.scale_factor = 0.002;
  options.num_clients = 1;
  options.shed_queue_depth = 2;  // besteffort+batch shed at depth 1 of 2
  QueryServer server(options);
  server.Start();

  // Pin the scheduler at queue depth 1: the lone client thread parks on the
  // blocker while one no-op waits in the queue.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::promise<void> started;
  server.scheduler().Submit("blocker", [&started, released](core::Backend&) {
    started.set_value();
    released.wait();
  });
  started.get_future().wait();  // the client thread holds the blocker...
  server.scheduler().Submit("noop", [](core::Backend&) {});
  while (server.scheduler().queue_depth() != 1) {  // ...and the noop queues
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const Session be = server.OpenSession("t-be", TenantClass::kBestEffort);
  const Session batch = server.OpenSession("t-b", TenantClass::kBatch);
  const Session inter = server.OpenSession("t-i", TenantClass::kInteractive);

  // At the same depth, best-effort and batch shed — with their own scaled
  // retry-after hints — while interactive is still admitted.
  try {
    server.Execute(be, "q6");
    FAIL() << "best-effort must shed at half the bound";
  } catch (const Overloaded& e) {
    EXPECT_EQ(e.retry_after_ms, options.retry_after_ms * 5);
    EXPECT_NE(std::string(e.what()).find("besteffort"), std::string::npos);
  }
  try {
    server.Execute(batch, "q6");
    FAIL() << "batch must shed at three quarters of the bound";
  } catch (const Overloaded& e) {
    EXPECT_EQ(e.retry_after_ms, options.retry_after_ms * 2);
    EXPECT_NE(std::string(e.what()).find("batch"), std::string::npos);
  }

  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.set_value();
  });
  const QueryReply reply = server.Execute(inter, "q6");
  releaser.join();
  EXPECT_FALSE(reply.rejected);
  EXPECT_TRUE(Near(reply.result.scalar,
                   tpch::ReferenceQ6(server.catalog().lineitem())));
  EXPECT_EQ(server.Stats().overloaded, 2u);
}

TEST_F(ServeTest, QueryWithRetrySleepsThroughShedsUntilTheBreakerHeals) {
  core::ResilienceManager& rm = core::ResilienceManager::Global();
  rm.Reset();
  ServerOptions options;
  options.socket_path = TestSocketPath("retry");
  options.catalog.scale_factor = 0.002;
  options.retry_after_ms = 1;  // keep the test's real sleeps tiny
  QueryServer server(options);
  server.Start();

  Client client(options.socket_path, "tenant", TenantClass::kInteractive);
  const double ref = tpch::ReferenceQ6(server.catalog().lineitem());

  rm.RecordFailure(options.catalog.backend, 0);
  rm.RecordFailure(options.catalog.backend, 0);
  rm.RecordFailure(options.catalog.backend, 0);

  // Each shed attempt advances the breaker cooldown, so a generous budget
  // always reaches the half-open probe; the helper sleeps the hints out
  // instead of surfacing every shed to the caller.
  RetryOptions retry;
  retry.max_attempts = 64;
  retry.seed = 9;
  retry.max_backoff_ms = 4;
  const QueryReply reply = client.QueryWithRetry("q6", retry);
  EXPECT_FALSE(reply.overloaded) << "the budget must outlast the cooldown";
  EXPECT_TRUE(Near(reply.result.scalar, ref));
  EXPECT_GT(client.retries(), 0u);

  client.Shutdown();
  server.WaitForShutdown();
  server.Stop();
  rm.Reset();
}

}  // namespace
}  // namespace serve
