// Resilience-layer tests: retry/backoff policy math, the circuit-breaker
// state machine, fault-injector determinism, the error taxonomy, and the
// scheduler's recovery behavior (transient retry, OOM reclaim, deadlines,
// typed shutdown status) plus Hybrid's breaker-driven fallback. Built into
// the concurrency_tests binary, which CI also runs under ThreadSanitizer —
// the multi-client chaos sweep at the bottom is the data-race canary for
// the whole fault path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "backends/backends.h"
#include "core/error.h"
#include "core/registry.h"
#include "core/resilience.h"
#include "core/scheduler.h"
#include "gpusim/device.h"
#include "gpusim/device_group.h"
#include "gpusim/fault.h"
#include "gpusim/stream.h"
#include "storage/device_column.h"

namespace core {
namespace {

using gpusim::Device;
using gpusim::FaultInjector;
using gpusim::FaultKind;
using gpusim::FaultRule;
using gpusim::FaultSite;

/// Detaches the injector and resets the global resilience manager on every
/// exit path, so a failing assertion cannot poison later tests.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterBuiltinBackends();
    Device::Default().set_fault_injector(nullptr);
    ResilienceManager::Global().Reset();
  }

  void TearDown() override {
    Device::Default().set_fault_injector(nullptr);
    ResilienceManager::Global().Reset();
  }
};

// ---------------------------------------------------------------------------
// Policy math
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, RetryPolicyBackoffDoublesUpToCap) {
  RetryPolicy p;  // base 1 ms, cap 8 ms
  EXPECT_EQ(p.BackoffNs(0), 0u);
  EXPECT_EQ(p.BackoffNs(1), 1'000'000u);
  EXPECT_EQ(p.BackoffNs(2), 2'000'000u);
  EXPECT_EQ(p.BackoffNs(3), 4'000'000u);
  EXPECT_EQ(p.BackoffNs(4), 8'000'000u);
  EXPECT_EQ(p.BackoffNs(20), 8'000'000u);  // capped, no overflow
  p.backoff_base_ns = 0;
  EXPECT_EQ(p.BackoffNs(3), 0u);
}

TEST_F(ResilienceTest, CircuitBreakerOpensProbesAndRecovers) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 2;
  opts.open_cooldown_checks = 3;
  CircuitBreaker b(opts);

  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.Allow());
  b.RecordFailure();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  b.RecordFailure();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 1u);

  // Two denials, then the exhausting call is admitted as the probe.
  EXPECT_FALSE(b.Allow());
  EXPECT_FALSE(b.Allow());
  EXPECT_TRUE(b.Allow());
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);

  // A failing probe re-opens.
  b.RecordFailure();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 2u);

  // A succeeding probe closes.
  EXPECT_FALSE(b.Allow());
  EXPECT_FALSE(b.Allow());
  EXPECT_TRUE(b.Allow());
  b.RecordSuccess();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.closes(), 1u);
  EXPECT_EQ(b.half_opens(), 2u);
  EXPECT_TRUE(b.Allow());
}

TEST_F(ResilienceTest, SuccessResetsConsecutiveFailureCount) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  CircuitBreaker b(opts);
  for (int round = 0; round < 5; ++round) {
    b.RecordFailure();
    b.RecordFailure();
    b.RecordSuccess();  // never three in a row
  }
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.opens(), 0u);
}

TEST_F(ResilienceTest, BreakersAreScopedPerBackendAndDevice) {
  // Tripping the breaker for (Handwritten, device 1) must not gate the same
  // backend on device 0: a sharded run that loses one device keeps routing
  // work to the survivors.
  gpusim::DeviceGroup group(2);
  ResilienceManager& rm = ResilienceManager::Global();

  {
    gpusim::Device::DeviceGuard on1(group.device(1));
    rm.RecordFailure("Handwritten");
    rm.RecordFailure("Handwritten");
    rm.RecordFailure("Handwritten");
    EXPECT_EQ(rm.StateOf("Handwritten"), CircuitBreaker::State::kOpen);
    EXPECT_FALSE(rm.Allow("Handwritten"));
  }
  {
    gpusim::Device::DeviceGuard on0(group.device(0));
    EXPECT_EQ(rm.StateOf("Handwritten"), CircuitBreaker::State::kClosed);
    EXPECT_TRUE(rm.Allow("Handwritten"));
  }
  // The explicit-ordinal overloads address the same breakers without a
  // DeviceGuard — what the serving tier uses at admission.
  EXPECT_EQ(rm.StateOf("Handwritten", 1), CircuitBreaker::State::kOpen);
  EXPECT_EQ(rm.StateOf("Handwritten", 0), CircuitBreaker::State::kClosed);

  const ResilienceStats stats = rm.Snapshot();
  ASSERT_EQ(stats.open_backends.size(), 1u);
  EXPECT_EQ(stats.open_backends[0], "Handwritten@1");
}

TEST_F(ResilienceTest, OnProbeAppliesAnExternalProbeOutcome) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 2;
  opts.open_cooldown_checks = 3;
  CircuitBreaker b(opts);

  // A successful external probe on a closed breaker changes nothing.
  b.OnProbe(true);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.closes(), 0u);

  // Open -> a passing device probe closes without waiting out the cooldown,
  // counted as its own half-open cycle.
  b.RecordFailure();
  b.RecordFailure();
  ASSERT_EQ(b.state(), CircuitBreaker::State::kOpen);
  b.OnProbe(true);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.half_opens(), 1u);
  EXPECT_EQ(b.closes(), 1u);
  EXPECT_TRUE(b.Allow());

  // A failing probe re-opens from closed with a fresh cooldown.
  b.OnProbe(false);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 2u);
  EXPECT_FALSE(b.Allow());
}

TEST_F(ResilienceTest, SyncDeviceProbeHealsEveryBreakerAtTheOrdinal) {
  // Two backends tripped on device 1, one tripped on device 0: a passing
  // probe of device 1 heals both of device 1's breakers and leaves device
  // 0's open — the probe outcome is per-ordinal, not per-backend.
  ResilienceManager& rm = ResilienceManager::Global();
  for (int i = 0; i < 3; ++i) {
    rm.RecordFailure("Handwritten", 1);
    rm.RecordFailure("Thrust", 1);
    rm.RecordFailure("Handwritten", 0);
  }
  ASSERT_EQ(rm.StateOf("Handwritten", 1), CircuitBreaker::State::kOpen);
  ASSERT_EQ(rm.StateOf("Thrust", 1), CircuitBreaker::State::kOpen);
  ASSERT_EQ(rm.StateOf("Handwritten", 0), CircuitBreaker::State::kOpen);

  EXPECT_EQ(rm.SyncDeviceProbe(1, /*success=*/true), 2u);
  EXPECT_EQ(rm.StateOf("Handwritten", 1), CircuitBreaker::State::kClosed);
  EXPECT_EQ(rm.StateOf("Thrust", 1), CircuitBreaker::State::kClosed);
  EXPECT_EQ(rm.StateOf("Handwritten", 0), CircuitBreaker::State::kOpen);

  // A failing probe re-opens them; a device with no breakers touches none.
  EXPECT_EQ(rm.SyncDeviceProbe(1, /*success=*/false), 2u);
  EXPECT_EQ(rm.StateOf("Handwritten", 1), CircuitBreaker::State::kOpen);
  EXPECT_EQ(rm.SyncDeviceProbe(7, /*success=*/true), 0u);
}

TEST_F(ResilienceTest, GroupProbeOutcomeDrivesTheBreakers) {
  // End to end: a lost device whose breaker opened heals through the
  // lifecycle probe, exactly as RunSharded's readmission path wires it.
  gpusim::DeviceGroup group(2);
  ResilienceManager& rm = ResilienceManager::Global();
  group.MarkLost(1);
  for (int i = 0; i < 3; ++i) rm.RecordFailure("Handwritten", 1);
  ASSERT_EQ(rm.StateOf("Handwritten", 1), CircuitBreaker::State::kOpen);

  ASSERT_TRUE(group.MarkReset(1));
  const bool ok = group.Probe(1);
  ASSERT_TRUE(ok);
  rm.SyncDeviceProbe(1, ok);
  EXPECT_EQ(rm.StateOf("Handwritten", 1), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(group.CompleteReadmission(1));
  EXPECT_TRUE(rm.Allow("Handwritten", 1));
}

TEST_F(ResilienceTest, ClassifyMapsTheFaultTaxonomy) {
  EXPECT_EQ(Classify(std::make_exception_ptr(
                gpusim::TransientKernelFault("k"))),
            ErrorClass::kTransient);
  EXPECT_EQ(Classify(std::make_exception_ptr(gpusim::TransferFault("t"))),
            ErrorClass::kTransient);
  EXPECT_EQ(Classify(std::make_exception_ptr(gpusim::OutOfDeviceMemory("o"))),
            ErrorClass::kResource);
  EXPECT_EQ(Classify(std::make_exception_ptr(gpusim::DeviceLost("d"))),
            ErrorClass::kFatal);
  EXPECT_EQ(Classify(std::make_exception_ptr(std::runtime_error("x"))),
            ErrorClass::kFatal);
  EXPECT_EQ(Classify(std::make_exception_ptr(
                BackendError(ErrorClass::kResource, "capacity"))),
            ErrorClass::kResource);
}

// ---------------------------------------------------------------------------
// Fault injector
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, InjectorCountTriggersFireExactly) {
  FaultInjector inj(1);
  FaultRule at3;
  at3.site = FaultSite::kKernel;
  at3.kind = FaultKind::kTransientKernel;
  at3.at_call = 3;
  inj.AddRule(at3);
  FaultRule every2;
  every2.site = FaultSite::kTransfer;
  every2.kind = FaultKind::kTransfer;
  every2.every_calls = 2;
  every2.max_fires = 2;
  inj.AddRule(every2);

  std::vector<FaultKind> kernel_fires;
  for (int i = 0; i < 6; ++i) {
    kernel_fires.push_back(inj.Check(FaultSite::kKernel, 1, "s"));
  }
  EXPECT_EQ(kernel_fires, (std::vector<FaultKind>{
                              FaultKind::kNone, FaultKind::kNone,
                              FaultKind::kTransientKernel, FaultKind::kNone,
                              FaultKind::kNone, FaultKind::kNone}));

  // every_calls fires on calls 2 and 4, then max_fires stops it.
  std::vector<FaultKind> transfer_fires;
  for (int i = 0; i < 8; ++i) {
    transfer_fires.push_back(inj.Check(FaultSite::kTransfer, 1, "s"));
  }
  EXPECT_EQ(transfer_fires[1], FaultKind::kTransfer);
  EXPECT_EQ(transfer_fires[3], FaultKind::kTransfer);
  for (size_t i : {0u, 2u, 4u, 5u, 6u, 7u}) {
    EXPECT_EQ(transfer_fires[i], FaultKind::kNone) << i;
  }

  const gpusim::FaultInjectorStats s = inj.stats();
  EXPECT_EQ(s.injected_kernel, 1u);
  EXPECT_EQ(s.injected_transfer, 2u);
  EXPECT_EQ(s.injected_total(), 3u);
  EXPECT_EQ(s.checks, 14u);
  ASSERT_EQ(inj.log().size(), 3u);
  EXPECT_EQ(inj.log()[0].rule, 0u);
  EXPECT_EQ(inj.log()[0].call_index, 3u);

  // Counts are per stream: a different stream id starts fresh.
  EXPECT_EQ(inj.Check(FaultSite::kKernel, 2, "s"), FaultKind::kNone);

  // Reset clears trigger state but keeps the rules.
  inj.Reset();
  EXPECT_EQ(inj.stats().injected_total(), 0u);
  EXPECT_EQ(inj.log().size(), 0u);
  inj.Check(FaultSite::kKernel, 1, "s");
  inj.Check(FaultSite::kKernel, 1, "s");
  EXPECT_EQ(inj.Check(FaultSite::kKernel, 1, "s"),
            FaultKind::kTransientKernel);
}

TEST_F(ResilienceTest, InjectorProbabilityIsAPureFunctionOfSeedAndStream) {
  const auto draw = [](uint64_t seed, uint64_t stream_id) {
    FaultInjector inj(seed);
    FaultRule r;
    r.site = FaultSite::kKernel;
    r.kind = FaultKind::kTransientKernel;
    r.probability = 0.3;
    inj.AddRule(r);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(inj.Check(FaultSite::kKernel, stream_id, "") !=
                      FaultKind::kNone);
    }
    return fires;
  };
  const std::vector<bool> a = draw(7, 1);
  EXPECT_EQ(a, draw(7, 1));       // same seed+stream: identical schedule
  EXPECT_NE(a, draw(8, 1));       // seed changes the schedule
  EXPECT_NE(a, draw(7, 2));       // so does the stream identity
  const size_t fired = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fired, 20u);  // ~60 expected of 200
  EXPECT_LT(fired, 140u);
}

TEST_F(ResilienceTest, StickyDeviceLostIsScopedToTheLabel) {
  FaultInjector inj(3);
  FaultRule r;
  r.site = FaultSite::kKernel;
  r.kind = FaultKind::kDeviceLost;
  r.stream_label = "victim";
  r.at_call = 2;
  inj.AddRule(r);

  EXPECT_EQ(inj.Check(FaultSite::kKernel, 1, "victim"), FaultKind::kNone);
  EXPECT_EQ(inj.Check(FaultSite::kKernel, 1, "victim"),
            FaultKind::kDeviceLost);
  EXPECT_TRUE(inj.IsLost("victim"));
  EXPECT_FALSE(inj.IsLost("healthy"));
  // Sticky: every later check from the label replays the loss, at any site.
  EXPECT_EQ(inj.Check(FaultSite::kTransfer, 9, "victim"),
            FaultKind::kDeviceLost);
  EXPECT_GT(inj.stats().sticky_replays, 0u);
  // Other labels keep working.
  EXPECT_EQ(inj.Check(FaultSite::kKernel, 1, "healthy"), FaultKind::kNone);
  inj.Reset();
  EXPECT_FALSE(inj.IsLost("victim"));
}

TEST_F(ResilienceTest, InjectedMallocOomIsIndistinguishableFromCapacityMiss) {
  Device device;
  FaultInjector inj(5);
  FaultRule r;
  r.site = FaultSite::kMalloc;
  r.kind = FaultKind::kOutOfMemory;
  r.at_call = 1;
  inj.AddRule(r);
  device.set_fault_injector(&inj);
  EXPECT_THROW(device.Allocate(256), gpusim::OutOfDeviceMemory);
  device.set_fault_injector(nullptr);
  // The faulted call left no accounting residue.
  EXPECT_EQ(device.bytes_in_use(), 0u);
  void* p = device.Allocate(256);
  EXPECT_NE(p, nullptr);
  device.Free(p);
}

// ---------------------------------------------------------------------------
// Scheduler recovery
// ---------------------------------------------------------------------------

class SchedulerRecoveryTest : public ResilienceTest {
 protected:
  void SetUp() override {
    ResilienceTest::SetUp();
    gpusim::Stream setup(Device::Default(), gpusim::ApiProfile::Cuda());
    std::vector<double> host(4096);
    std::iota(host.begin(), host.end(), 0.0);
    expected_sum_ = std::accumulate(host.begin(), host.end(), 0.0) +
                    static_cast<double>(host.size());
    col_ = storage::UploadColumn(setup, storage::Column(host));
  }

  void TearDown() override {
    col_ = storage::DeviceColumn();
    ResilienceTest::TearDown();
  }

  /// Idempotent small query: sum(col + 1), checked against the host.
  QueryFn SumQuery(std::atomic<int>* wrong) {
    return [this, wrong](Backend& b) {
      const storage::DeviceColumn shifted = b.AddScalar(col_, 1.0);
      const double sum = b.ReduceColumn(shifted, AggOp::kSum);
      if (sum != expected_sum_) wrong->fetch_add(1);
    };
  }

  storage::DeviceColumn col_;
  double expected_sum_ = 0;
};

TEST_F(SchedulerRecoveryTest, TransientKernelFaultIsRetriedToSuccess) {
  FaultInjector inj(11);
  FaultRule r;
  r.site = FaultSite::kKernel;
  r.kind = FaultKind::kTransientKernel;
  r.at_call = 1;  // first kernel of the first query on the client stream
  inj.AddRule(r);
  Device::Default().set_fault_injector(&inj);

  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 1;
  std::atomic<int> wrong{0};
  {
    QueryScheduler scheduler(opts);
    EXPECT_EQ(scheduler.Submit("sum", SumQuery(&wrong)),
              ScheduledQueryStatus::kAccepted);
    scheduler.Drain();
    const auto records = scheduler.Records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].ok) << records[0].error;
    EXPECT_EQ(records[0].attempts, 2);
    EXPECT_GT(records[0].backoff_ns, 0u);
    const SchedulerReport report = scheduler.Report();
    EXPECT_GE(report.resilience.retries, 1u);
    EXPECT_GE(report.resilience.faults_seen, 1u);
    EXPECT_EQ(report.resilience.permanent_failures, 0u);
  }
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(inj.stats().injected_kernel, 1u);
}

TEST_F(SchedulerRecoveryTest, InjectedOomIsAbsorbedByAPoolReclaim) {
  FaultInjector inj(12);
  FaultRule r;
  r.site = FaultSite::kMalloc;
  r.kind = FaultKind::kOutOfMemory;
  r.at_call = 1;
  inj.AddRule(r);
  Device::Default().set_fault_injector(&inj);

  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 1;
  std::atomic<int> wrong{0};
  QueryScheduler scheduler(opts);
  scheduler.Submit("sum", SumQuery(&wrong));
  scheduler.Drain();
  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].ok) << records[0].error;
  EXPECT_EQ(records[0].oom_reclaims, 1);
  EXPECT_GE(scheduler.Report().resilience.oom_reclaims, 1u);
  EXPECT_EQ(wrong.load(), 0);
}

TEST_F(SchedulerRecoveryTest, PermanentFailureAfterRetryBudgetExhausts) {
  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 1;
  opts.retry.max_attempts = 3;
  opts.retry.backoff_base_ns = 1000;  // keep the test fast
  QueryScheduler scheduler(opts);
  scheduler.Submit("always-transient", [](Backend&) {
    throw gpusim::TransientKernelFault("injected forever");
  });
  scheduler.Drain();
  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_EQ(records[0].attempts, 3);
  EXPECT_EQ(records[0].error_class, ErrorClass::kTransient);
  EXPECT_GE(scheduler.Report().resilience.permanent_failures, 1u);
}

TEST_F(SchedulerRecoveryTest, FatalErrorsAreNotRetried) {
  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 1;
  QueryScheduler scheduler(opts);
  scheduler.Submit("fatal", [](Backend&) {
    throw std::logic_error("plan bug");
  });
  scheduler.Drain();
  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_EQ(records[0].attempts, 1);
  EXPECT_EQ(records[0].error_class, ErrorClass::kFatal);
}

TEST_F(SchedulerRecoveryTest, DeadlineStopsRetryAndFlagsTheRecord) {
  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 1;
  opts.deadline_ms = 1;
  opts.retry.max_attempts = 5;
  QueryScheduler scheduler(opts);
  scheduler.Submit("slow-then-faulty", [](Backend&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    throw gpusim::TransientKernelFault("too late to matter");
  });
  scheduler.Drain();
  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_EQ(records[0].attempts, 1);  // no retry past the deadline
  EXPECT_TRUE(records[0].deadline_exceeded);
  EXPECT_GE(scheduler.Report().resilience.deadline_misses, 1u);
}

TEST_F(SchedulerRecoveryTest, LateSuccessKeepsOkButFlagsDeadline) {
  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 1;
  opts.deadline_ms = 1;
  QueryScheduler scheduler(opts);
  scheduler.Submit("slow-but-fine", [](Backend&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  scheduler.Drain();
  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].ok);
  EXPECT_TRUE(records[0].deadline_exceeded);
}

TEST_F(SchedulerRecoveryTest, SubmitAfterShutdownReturnsTypedStatus) {
  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 1;
  QueryScheduler scheduler(opts);
  uint64_t id = 123;
  EXPECT_EQ(scheduler.Submit("ok", [](Backend&) {}, &id),
            ScheduledQueryStatus::kAccepted);
  EXPECT_EQ(id, 0u);
  scheduler.Shutdown();
  EXPECT_EQ(scheduler.Submit("rejected", [](Backend&) {}),
            ScheduledQueryStatus::kShutDown);
  EXPECT_FALSE(scheduler.TrySubmit("rejected", [](Backend&) {}));
  EXPECT_EQ(scheduler.Records().size(), 1u);
}

// ---------------------------------------------------------------------------
// Hybrid fallback + chaos sweep
// ---------------------------------------------------------------------------

TEST_F(SchedulerRecoveryTest, HybridRoutesAroundAStickyDeviceLoss) {
  // Kill the backend that wins essentially every cost dispatch. Each use
  // must fault exactly once per operation, reroute to the runner-up, and
  // after failure_threshold losses the breaker opens and stops routing
  // there at all.
  FaultInjector inj(21);
  FaultRule r;
  r.site = FaultSite::kKernel;
  r.kind = FaultKind::kDeviceLost;
  r.stream_label = backends::kHandwritten;
  r.at_call = 1;
  inj.AddRule(r);
  Device::Default().set_fault_injector(&inj);

  auto hybrid = BackendRegistry::Instance().Create(backends::kHybrid);
  for (int round = 0; round < 4; ++round) {
    const double sum = hybrid->ReduceColumn(col_, AggOp::kSum);
    EXPECT_EQ(sum, expected_sum_ - static_cast<double>(col_.size()))
        << "round " << round;
  }
  Device::Default().set_fault_injector(nullptr);

  ResilienceManager& rm = ResilienceManager::Global();
  const ResilienceStats stats = rm.Snapshot();
  EXPECT_GE(stats.fallback_reroutes, 3u);
  EXPECT_GE(stats.faults_seen, 3u);
  EXPECT_EQ(rm.StateOf(backends::kHandwritten), CircuitBreaker::State::kOpen);
  EXPECT_GE(inj.stats().injected_device_lost +
                inj.stats().sticky_replays, 3u);
  // The breaker list in the snapshot names the open backend, keyed by
  // (backend, device ordinal) — this all ran on the default device.
  ASSERT_EQ(stats.open_backends.size(), 1u);
  EXPECT_EQ(stats.open_backends[0],
            std::string(backends::kHandwritten) + "@0");
}

TEST_F(SchedulerRecoveryTest, AttachedInjectorWithoutRulesIsTimingInvisible) {
  const auto measure = [&] {
    auto backend = BackendRegistry::Instance().Create(backends::kThrust);
    const uint64_t t0 = backend->stream().now_ns();
    const storage::DeviceColumn shifted = backend->AddScalar(col_, 1.0);
    backend->ReduceColumn(shifted, AggOp::kSum);
    return backend->stream().now_ns() - t0;
  };
  const uint64_t detached_ns = measure();
  FaultInjector inj(99);  // no rules
  Device::Default().set_fault_injector(&inj);
  const uint64_t attached_ns = measure();
  Device::Default().set_fault_injector(nullptr);
  EXPECT_EQ(attached_ns, detached_ns);
  EXPECT_GT(inj.stats().checks, 0u);
}

TEST_F(SchedulerRecoveryTest, EightClientChaosSweepRecoversEveryQuery) {
  // Transient-only fault budget far below the retry budget: every query
  // must complete correctly. Run under TSan in CI, this is the data-race
  // canary for the injector + breaker + scheduler recovery path.
  FaultInjector inj(31);
  FaultRule kernel;
  kernel.site = FaultSite::kKernel;
  kernel.kind = FaultKind::kTransientKernel;
  kernel.probability = 0.01;
  kernel.max_fires = 12;
  inj.AddRule(kernel);
  FaultRule transfer;
  transfer.site = FaultSite::kTransfer;
  transfer.kind = FaultKind::kTransfer;
  transfer.probability = 0.01;
  transfer.max_fires = 6;
  inj.AddRule(transfer);
  FaultRule oom;
  oom.site = FaultSite::kMalloc;
  oom.kind = FaultKind::kOutOfMemory;
  oom.at_call = 20;
  oom.max_fires = 1;
  inj.AddRule(oom);
  Device::Default().set_fault_injector(&inj);

  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 8;
  opts.queue_capacity = 16;
  opts.retry.max_attempts = 24;
  opts.retry.backoff_base_ns = 10'000;  // keep the storm fast
  std::atomic<int> wrong{0};
  {
    QueryScheduler scheduler(opts);
    for (int i = 0; i < 48; ++i) {
      scheduler.Submit("chaos/" + std::to_string(i), SumQuery(&wrong));
    }
    scheduler.Drain();
    for (const QueryRecord& q : scheduler.Records()) {
      EXPECT_TRUE(q.ok) << q.label << ": " << q.error;
    }
    EXPECT_EQ(scheduler.Report().resilience.permanent_failures, 0u);
  }
  Device::Default().set_fault_injector(nullptr);
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace core
